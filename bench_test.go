package bsmp

// One benchmark per reproduced table/figure (see DESIGN.md § 4). Each
// benchmark regenerates its experiment's data and reports the headline
// model metric (virtual-time slowdowns or measured/bound ratios) via
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the whole
// evaluation. Wall time per iteration is kept modest; cmd/experiments
// runs the full-size sweeps.

import (
	"testing"

	"bsmp/internal/analytic"
	"bsmp/internal/exp"
	"bsmp/internal/guest"
	"bsmp/internal/simulate"
)

func benchProg() Program { return AsNetwork{G: MixCA{Seed: 9}} }

// BenchmarkNaiveSlowdownD1 reproduces E-P1 (d = 1): Proposition 1's
// (n/p)² naive slowdown.
func BenchmarkNaiveSlowdownD1(b *testing.B) {
	n := 128
	var slow float64
	for i := 0; i < b.N; i++ {
		res, err := simulate.Naive(1, n, 1, 1, 8, benchProg())
		if err != nil {
			b.Fatal(err)
		}
		tn := simulate.GuestTime(1, n, 1, 8, benchProg())
		slow = float64(res.Time) / float64(tn)
	}
	b.ReportMetric(slow, "slowdown")
	b.ReportMetric(slow/analytic.NaiveSlowdown(1, n, 1), "meas/bound")
}

// BenchmarkNaiveSlowdownD2 reproduces E-P1 (d = 2): (n/p)^1.5.
func BenchmarkNaiveSlowdownD2(b *testing.B) {
	n, side := 256, 16
	var slow float64
	for i := 0; i < b.N; i++ {
		prog := AsNetwork{G: MixCA{Seed: 9}, Side: side}
		res, err := simulate.Naive(2, n, 1, 1, 4, prog)
		if err != nil {
			b.Fatal(err)
		}
		tn := simulate.GuestTime(2, n, 1, 4, prog)
		slow = float64(res.Time) / float64(tn)
	}
	b.ReportMetric(slow, "slowdown")
	b.ReportMetric(slow/analytic.NaiveSlowdown(2, n, 1), "meas/bound")
}

// BenchmarkTheorem2 reproduces E-T2: the d = 1, m = 1 uniprocessor
// divide-and-conquer, slowdown O(n log n).
func BenchmarkTheorem2(b *testing.B) {
	n := 128
	prog := Rule90{Seed: 1}
	var norm float64
	for i := 0; i < b.N; i++ {
		res, err := UniDC(1, n, n, 8, prog)
		if err != nil {
			b.Fatal(err)
		}
		nn := float64(n)
		norm = float64(res.Time) / (nn * nn * analytic.Log(nn))
	}
	b.ReportMetric(norm, "T/(n²·Logn)")
}

// BenchmarkTheorem3 reproduces E-T3: the blocked uniprocessor scheme for
// general m.
func BenchmarkTheorem3(b *testing.B) {
	n, m, steps := 128, 16, 32
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := BlockedD1(n, m, steps, 0, benchProg())
		if err != nil {
			b.Fatal(err)
		}
		tn := GuestTime(1, n, m, steps, benchProg())
		ratio = float64(res.Time) / float64(tn) / analytic.Theorem3Slowdown(n, m)
	}
	b.ReportMetric(ratio, "meas/bound")
}

// BenchmarkTheorem3D2 reproduces E-T3b: the d = 2 blocked scheme.
func BenchmarkTheorem3D2(b *testing.B) {
	side, m, steps := 8, 4, 8
	prog := AsNetwork{G: MixCA{Seed: 9}, Side: side}
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := BlockedD2(side*side, m, steps, 0, prog)
		if err != nil {
			b.Fatal(err)
		}
		tn := GuestTime(2, side*side, m, steps, prog)
		ratio = float64(res.Time) / float64(tn)
	}
	b.ReportMetric(ratio, "slowdown")
}

// BenchmarkTheorem1D1 reproduces E-T4: the multiprocessor scheme's
// locality slowdown in range 2 (the regime where all mechanisms are
// active).
func BenchmarkTheorem1D1(b *testing.B) {
	n, p, m, steps := 256, 8, 16, 64
	var ameas float64
	for i := 0; i < b.N; i++ {
		res, err := MultiD1(n, p, m, steps, benchProg(), MultiOptions{})
		if err != nil {
			b.Fatal(err)
		}
		tn := GuestTime(1, n, m, steps, benchProg())
		ameas = float64(res.Time) / float64(tn) / (float64(n) / float64(p))
	}
	b.ReportMetric(ameas, "A_meas")
	b.ReportMetric(ameas/analytic.A(1, n, m, p), "A_meas/A_bound")
}

// BenchmarkTheorem5 reproduces E-T5: d = 2, m = 1 uniprocessor via
// octahedral separators.
func BenchmarkTheorem5(b *testing.B) {
	side := 16
	prog := Rule90{Seed: 2}
	var norm float64
	for i := 0; i < b.N; i++ {
		res, err := UniDC(2, side*side, side, 8, prog)
		if err != nil {
			b.Fatal(err)
		}
		k := float64(side * side * side)
		norm = float64(res.Time) / (k * analytic.Log(k))
	}
	b.ReportMetric(norm, "T/(k·Logk)")
}

// BenchmarkTheorem1D2 reproduces E-T1b: the d = 2 multiprocessor model.
func BenchmarkTheorem1D2(b *testing.B) {
	n, p, m, steps, side := 1024, 16, 8, 16, 32
	prog := AsNetwork{G: MixCA{Seed: 9}, Side: side}
	var ameas float64
	for i := 0; i < b.N; i++ {
		res, err := MultiD2(n, p, m, steps, prog, Multi2Options{})
		if err != nil {
			b.Fatal(err)
		}
		tn := GuestTime(2, n, m, steps, prog)
		ameas = float64(res.Time) / float64(tn) / (float64(n) / float64(p))
	}
	b.ReportMetric(ameas, "A_meas")
	b.ReportMetric(ameas/analytic.A(2, n, m, p), "A_meas/A_bound")
}

// BenchmarkMatmulSpeedup reproduces E-MM: the Section 1 superlinear-
// speedup example.
func BenchmarkMatmulSpeedup(b *testing.B) {
	sq := 64
	var speed float64
	for i := 0; i < b.N; i++ {
		a, bb := MatmulInput(sq, 5)
		_, tm := MeshMatmul(sq, a, bb)
		_, tn := NaiveMatmul(sq, a, bb)
		speed = float64(tn) / float64(tm)
	}
	n := float64(sq * sq)
	b.ReportMetric(speed, "speedup")
	b.ReportMetric(speed/n, "speedup/n")
}

// BenchmarkOptimalS reproduces E-S*: the strip-width sweep of Theorem 4.
func BenchmarkOptimalS(b *testing.B) {
	n, p, m, steps := 256, 8, 16, 32
	var bestS float64
	for i := 0; i < b.N; i++ {
		best := -1.0
		var bestT Time
		for sw := 1; sw <= n/p; sw *= 2 {
			res, err := MultiD1(n, p, m, steps, benchProg(), MultiOptions{StripWidth: sw})
			if err != nil {
				b.Fatal(err)
			}
			if best < 0 || res.Time < bestT {
				best, bestT = float64(sw), res.Time
			}
		}
		bestS = best
	}
	b.ReportMetric(bestS, "s_best")
	b.ReportMetric(OptimalS(n, m, p), "s_star")
}

// BenchmarkAblations reproduces E-AB: cost of disabling each mechanism.
func BenchmarkAblations(b *testing.B) {
	n, p, m, steps := 256, 8, 16, 64
	var noRe, noCoop float64
	for i := 0; i < b.N; i++ {
		full, err := MultiD1(n, p, m, steps, benchProg(), MultiOptions{})
		if err != nil {
			b.Fatal(err)
		}
		r1, err := MultiD1(n, p, m, steps, benchProg(), MultiOptions{NoRearrange: true})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := MultiD1(n, p, m, steps, benchProg(), MultiOptions{NoCooperate: true})
		if err != nil {
			b.Fatal(err)
		}
		noRe = float64(r1.Time) / float64(full.Time)
		noCoop = float64(r2.Time) / float64(full.Time)
	}
	b.ReportMetric(noRe, "noRearrange_x")
	b.ReportMetric(noCoop, "noCooperate_x")
}

// BenchmarkPipelinedBlocks reproduces E-PIPE (and the DESIGN § 6.5
// ablation): the gap between per-word and pipelined block transfers.
func BenchmarkPipelinedBlocks(b *testing.B) {
	n, m, steps := 128, 16, 32
	var speedup float64
	for i := 0; i < b.N; i++ {
		std, err := BlockedD1(n, m, steps, 0, benchProg())
		if err != nil {
			b.Fatal(err)
		}
		pipe, err := BlockedD1(n, m, steps, 0, benchProg(), PipelinedBlocks())
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(std.Time) / float64(pipe.Time)
	}
	b.ReportMetric(speedup, "pipe_speedup")
}

// BenchmarkRestrictedMemory reproduces E-M': guests with m' < m live
// words simulate faster.
func BenchmarkRestrictedMemory(b *testing.B) {
	n, m, steps := 128, 64, 32
	var gain float64
	for i := 0; i < b.N; i++ {
		full, err := BlockedD1(n, m, steps, 0, RestrictMem{P: MixCA{Seed: 13}, Words: m})
		if err != nil {
			b.Fatal(err)
		}
		small, err := BlockedD1(n, m, steps, 0, RestrictMem{P: MixCA{Seed: 13}, Words: 4})
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(full.Time) / float64(small.Time)
	}
	b.ReportMetric(gain, "m'_gain")
}

// BenchmarkCooperatingMode reproduces E-COOP: the measured advantage of
// cooperative execution over solo remote fetch at m = 16.
func BenchmarkCooperatingMode(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		res, err := simulate.CoopBlock(1024, 8, 16, 16, 16, benchProg())
		if err != nil {
			b.Fatal(err)
		}
		adv = float64(res.SoloTime) / float64(res.CoopTime)
	}
	b.ReportMetric(adv, "solo/coop")
}

// BenchmarkFigure1 through BenchmarkFigure4 regenerate and validate the
// figure constructions.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.F1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.F2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.F3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.F4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConjectureD3 reproduces E-D3: the paper's open question made
// executable — the d = 3 separator executor over Box6 domains.
func BenchmarkConjectureD3(b *testing.B) {
	side := 8
	prog := guest.Rule90{Seed: 3}
	var norm float64
	for i := 0; i < b.N; i++ {
		res, err := simulate.UniDC(3, side*side*side, side, 8, prog)
		if err != nil {
			b.Fatal(err)
		}
		k := float64(side * side * side * side)
		norm = float64(res.Time) / (k * analytic.Log(k))
	}
	b.ReportMetric(norm, "T/(k·Logk)")
}

// BenchmarkConjectureD3Multi reproduces E-D3b: the conjectured d = 3
// multiprocessor locality slowdown.
func BenchmarkConjectureD3Multi(b *testing.B) {
	side, p, m, steps := 8, 8, 2, 8
	n := side * side * side
	prog := AsNetwork{G: MixCA{Seed: 9}, CubeSide: side}
	var ameas float64
	for i := 0; i < b.N; i++ {
		res, err := MultiD3(n, p, m, steps, prog, Multi3Options{})
		if err != nil {
			b.Fatal(err)
		}
		tn := GuestTime(3, n, m, steps, prog)
		ameas = float64(res.Time) / float64(tn) / (float64(n) / float64(p))
	}
	b.ReportMetric(ameas, "A_meas")
	b.ReportMetric(ameas/analytic.A(3, n, m, p), "A_meas/A_conj")
}

// BenchmarkSeparatorExecutor measures the core executor itself (vertices
// per second of real Go time), the repository's hottest loop.
func BenchmarkSeparatorExecutor(b *testing.B) {
	n := 64
	prog := guest.Rule90{Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := simulate.UniDC(1, n, n, 8, prog); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*n), "vertices/op")
}
