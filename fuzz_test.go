package bsmp_test

import (
	"errors"
	"testing"

	"bsmp"
)

// fuzzSchemes maps the fuzzed selector byte onto the registry names.
var fuzzSchemes = []string{"naive", "unidc", "blocked", "multi", "multi-faulty"}

// fuzzGuest builds the MixCA measurement guest with the grid geometry d
// requires (mirrors cmd/tradeoff's guestProg).
func fuzzGuest(d, n int) bsmp.Program {
	side := 0
	switch d {
	case 2:
		for side*side < n {
			side++
		}
		return bsmp.AsNetwork{G: bsmp.MixCA{Seed: 9}, Side: side}
	case 3:
		for side*side*side < n {
			side++
		}
		return bsmp.AsNetwork{G: bsmp.MixCA{Seed: 9}, CubeSide: side}
	}
	return bsmp.AsNetwork{G: bsmp.MixCA{Seed: 9}}
}

// FuzzRunScheme is the panic-free-boundary fuzz target: for arbitrary
// (scheme, d, n, p, m, steps) tuples, ValidateParams and RunScheme must
// agree and neither may panic. The seed corpus covers every scheme, every
// dimension, and the historical panic reproducers (non-square n for the
// d = 2 schemes, non-cube n for d = 3, overflow-scale parameters); CI
// runs the seeds on every push and a short fuzz session on top.
func FuzzRunScheme(f *testing.F) {
	seeds := [][6]int{
		// Valid tuples, one per registered (scheme, d).
		{0, 1, 16, 4, 2, 4}, {0, 2, 16, 4, 2, 4},
		{1, 1, 16, 1, 1, 4}, {1, 2, 16, 1, 1, 4}, {1, 3, 27, 1, 1, 4},
		{2, 1, 16, 1, 4, 4}, {2, 2, 16, 1, 4, 4}, {2, 3, 27, 1, 2, 4},
		{3, 1, 32, 4, 4, 8}, {3, 2, 16, 4, 2, 4}, {3, 3, 27, 1, 2, 4},
		// The ISSUE's reproducer: blocked d=2 with non-square n panicked
		// in analytic.IntSqrtExact before the validation boundary.
		{2, 2, 10, 1, 4, 4},
		// Shape and divisibility violations.
		{3, 2, 10, 1, 1, 4}, {3, 3, 12, 1, 1, 4}, {0, 2, 36, 6, 1, 4},
		{3, 1, 10, 3, 1, 4}, {2, 1, 16, 2, 4, 4}, {1, 1, 16, 1, 2, 4},
		// Degenerate and overflow-scale values.
		{0, 0, 0, 0, 0, 0}, {3, 1, -4, -2, -1, -8},
		{2, 1, 1 << 40, 1, 1 << 40, 8}, {1, 1, 1 << 40, 1, 1, 1 << 40},
		{0, 7, 16, 4, 1, 4},
	}
	for _, s := range seeds {
		f.Add(uint8(s[0]), s[1], s[2], s[3], s[4], s[5])
	}
	f.Fuzz(func(t *testing.T, si uint8, d, n, p, m, steps int) {
		name := fuzzSchemes[int(si)%len(fuzzSchemes)]
		verr := bsmp.ValidateParams(name, d, n, p, m, steps)
		if verr != nil {
			var pe *bsmp.ParamError
			if !errors.As(verr, &pe) && d >= 1 && d <= 3 {
				// Known (name, d) pairs must reject with the typed error;
				// unknown pairs return the registry lookup error.
				if _, serr := bsmp.SchemeByName(name, d); serr == nil {
					t.Fatalf("ValidateParams(%s, %d, %d, %d, %d, %d) = %T %v, want *ParamError",
						name, d, n, p, m, steps, verr, verr)
				}
			}
		}
		// Execute every rejected tuple (rejection is cheap and must not
		// panic) and every accepted tuple small enough to simulate within
		// fuzz budgets.
		small := n <= 64 && m <= 8 && steps <= 8
		if verr == nil && !small {
			return
		}
		res, err := bsmp.RunScheme(name, d, n, p, m, steps, fuzzGuest(d, n), bsmp.SchemeConfig{})
		if verr != nil && err == nil {
			t.Fatalf("RunScheme(%s, %d, %d, %d, %d, %d) succeeded on a tuple ValidateParams rejected with %v",
				name, d, n, p, m, steps, verr)
		}
		if verr == nil && err != nil {
			t.Fatalf("RunScheme(%s, %d, %d, %d, %d, %d) = %v on a tuple ValidateParams accepted",
				name, d, n, p, m, steps, err)
		}
		if err == nil && len(res.Outputs) != n {
			t.Fatalf("RunScheme(%s, %d, %d, %d, %d, %d): %d outputs, want %d",
				name, d, n, p, m, steps, len(res.Outputs), n)
		}
	})
}
