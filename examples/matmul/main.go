// Matmul reproduces the paper's Section 1 motivating example: multiplying
// two √n × √n matrices
//
//   - on a √n × √n mesh (Cannon's systolic algorithm): Θ(√n) time;
//   - on a uniprocessor H-RAM, straightforwardly: Θ(n²) time; and
//   - on the same uniprocessor with locality-aware recursive blocking
//     ([AACS87]): Θ(n^1.5·log n) time.
//
// Under bounded-speed propagation the n-processor mesh is Θ(n^1.5) faster
// than the straightforward uniprocessor — a speedup superlinear in the
// number of processors, the paper's headline phenomenon.
package main

import (
	"fmt"

	"bsmp"
)

func main() {
	fmt.Println("Superlinear speedup: matrix multiplication under bounded-speed propagation")
	fmt.Println()
	fmt.Printf("%6s %8s %12s %12s %12s %12s %14s %14s\n",
		"sqrt n", "n=procs", "T_mesh", "T_naive", "T_blocked",
		"naive/mesh", "(naive/mesh)/n", "naive/blocked")

	for _, sq := range []int{16, 32, 64, 128} {
		n := sq * sq
		a, b := bsmp.MatmulInput(sq, 7)
		want := refProduct(sq, a, b)

		cm, tMesh := bsmp.MeshMatmul(sq, a, b)
		cn, tNaive := bsmp.NaiveMatmul(sq, a, b)
		cb, tBlocked := bsmp.BlockedMatmul(sq, a, b)
		for i := range want {
			if cm[i] != want[i] || cn[i] != want[i] || cb[i] != want[i] {
				panic("products disagree — cost model bug")
			}
		}

		speed := float64(tNaive) / float64(tMesh)
		fmt.Printf("%6d %8d %12.4g %12.4g %12.4g %12.1f %14.3f %14.2f\n",
			sq, n, float64(tMesh), float64(tNaive), float64(tBlocked),
			speed, speed/float64(n), float64(tNaive)/float64(tBlocked))
	}

	fmt.Println()
	fmt.Println("(naive/mesh)/n grows: the mesh speedup is superlinear in its processor")
	fmt.Println("count. naive/blocked grows ~ sqrt(n)/log n: careful address management")
	fmt.Println("recovers all but a log factor of the uniprocessor's locality loss.")
}

func refProduct(sq int, a, b []bsmp.Word) []bsmp.Word {
	c := make([]bsmp.Word, sq*sq)
	for i := 0; i < sq; i++ {
		for k := 0; k < sq; k++ {
			aik := a[i*sq+k]
			for j := 0; j < sq; j++ {
				c[i*sq+j] += aik * b[k*sq+j]
			}
		}
	}
	return c
}
