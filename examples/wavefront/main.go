// Wavefront demonstrates the two-dimensional results: a mesh cellular
// automaton hosted on the uniprocessor M2(n, 1, 1) via the octahedral
// topological separators of Section 5 (Theorem 5), compared against the
// naive order — plus the Figure 3 decomposition statistics that make the
// scheme work.
package main

import (
	"fmt"
	"log"

	"bsmp"
	"bsmp/internal/exp"
)

func main() {
	prog := bsmp.Rule90{Seed: 5}

	fmt.Println("Theorem 5: simulating the mesh M2(n, n, 1) on M2(n, 1, 1)")
	fmt.Println()
	fmt.Printf("%6s %8s %14s %14s %12s\n", "side", "n", "T_separator", "T_naive", "naive/sep")
	for _, side := range []int{8, 16, 32} {
		n := side * side
		sep, err := bsmp.UniDC(2, n, side, 8, prog)
		if err != nil {
			log.Fatal(err)
		}
		if err := bsmp.VerifyDag(sep, 2, n, prog); err != nil {
			log.Fatal(err)
		}
		naive, err := bsmp.UniNaive(2, n, side, prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %8d %14.4g %14.4g %12.2f\n",
			side, n, float64(sep.Time), float64(naive.Time),
			float64(naive.Time)/float64(sep.Time))
	}
	fmt.Println()
	fmt.Println("naive/sep grows with n (Θ(n²) vs Θ(n^1.5·log n) overall time); the")
	fmt.Println("separator's large constant pushes the measured crossover beyond these")
	fmt.Println("sizes, but the exponents — fitted in the test suite — already differ.")

	fmt.Println()
	fmt.Println("The machinery underneath — Figure 3's recursive decomposition:")
	t3, err := exp.F3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(t3.Format())

	fmt.Println()
	fmt.Println("One time-slice of the Figure 4 partition of V (side 16, t = 5):")
	fmt.Print(exp.RenderFigure4Slice(16, 5))
}
