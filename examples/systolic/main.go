// Systolic demonstrates Theorem 4: simulating the linear array
// M1(n, n, m) on the p-processor M1(n, p, m), sweeping the memory density
// m through the four ranges of the locality slowdown A(n, m, p), and
// showing the ablations (no rearrangement / no cooperating mode) that make
// the paper's "non-intuitive orchestration" visible.
package main

import (
	"fmt"
	"log"

	"bsmp"
)

func main() {
	n, p, steps := 256, 8, 64
	prog := bsmp.AsNetwork{G: bsmp.MixCA{Seed: 11}}

	b12, b23, b34 := bsmp.Boundaries(1, n, p)
	fmt.Printf("Theorem 4: M1(%d, %d, m) hosting M1(%d, %d, m), %d steps\n", n, p, n, n, steps)
	fmt.Printf("range boundaries: m = %.1f, %.1f, %.0f\n\n", b12, b23, b34)
	fmt.Printf("%6s %8s %6s %12s %12s %12s %12s\n",
		"m", "s*", "levels", "A_measured", "A_bound", "T_noRearr", "T_noCoop")

	for _, m := range []int{1, 4, 16, 64, 256, 1024} {
		full, err := bsmp.MultiD1(n, p, m, steps, prog, bsmp.MultiOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if err := full.Verify(1, n, m, prog); err != nil {
			log.Fatalf("m=%d: %v", m, err)
		}
		noRe, err := bsmp.MultiD1(n, p, m, steps, prog, bsmp.MultiOptions{NoRearrange: true})
		if err != nil {
			log.Fatal(err)
		}
		noCoop, err := bsmp.MultiD1(n, p, m, steps, prog, bsmp.MultiOptions{NoCooperate: true})
		if err != nil {
			log.Fatal(err)
		}
		tn := bsmp.GuestTime(1, n, m, steps, prog)
		aMeas := float64(full.Time) / float64(tn) / (float64(n) / float64(p))
		fmt.Printf("%6d %8d %6d %12.1f %12.1f %12.2fx %12.2fx\n",
			m, full.StripWidth, full.Regime1Levels,
			aMeas, bsmp.A(1, n, m, p),
			float64(noRe.Time)/float64(full.Time),
			float64(noCoop.Time)/float64(full.Time))
	}

	fmt.Println()
	fmt.Println("A_measured tracks A_bound's shape across the ranges (constants are")
	fmt.Println("machinery-dependent); the ablation columns show when each mechanism")
	fmt.Println("is load-bearing. All runs are functionally verified against the guest.")
}
