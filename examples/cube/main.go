// Cube makes the paper's concluding open question executable: does the
// locality slowdown extend to three-dimensional machines? The paper
// conjectures yes, "the critical step being the development of a suitable
// topological separator for four-dimensional domains".
//
// This repository's rotated-coordinate construction (t±x, t±y, t±z)
// provides exactly that separator: the central 4-polytope splits into 46
// topologically ordered children (10 central analogs + 36 wedges) with
// preboundary Θ(|U|^(3/4)). Here we run the real separator executor over
// it, simulating a 3-D cube mesh CA on a single processor, and compare
// with the naive order.
package main

import (
	"fmt"
	"log"
	"math"

	"bsmp"
)

func main() {
	prog := bsmp.Rule90{Seed: 9}

	fmt.Println("The open question of Bilardi-Preparata '95, executable:")
	fmt.Println("simulating the cube mesh M3(n, n, 1) on M3(n, 1, 1)")
	fmt.Println()
	fmt.Printf("%6s %8s %14s %16s %14s %12s\n",
		"side", "n", "T_separator", "T/(k·log k)", "T_naive", "naive/sep")
	for _, side := range []int{4, 8, 12, 16} {
		n := side * side * side
		sep, err := bsmp.UniDC(3, n, side, 8, prog)
		if err != nil {
			log.Fatal(err)
		}
		if err := bsmp.VerifyDag(sep, 3, n, prog); err != nil {
			log.Fatal(err)
		}
		naive, err := bsmp.UniNaive(3, n, side, prog)
		if err != nil {
			log.Fatal(err)
		}
		k := float64(n) * float64(side)
		fmt.Printf("%6d %8d %14.4g %16.2f %14.4g %12.2f\n",
			side, n, float64(sep.Time),
			float64(sep.Time)/(k*math.Log2(k)),
			float64(naive.Time),
			float64(naive.Time)/float64(sep.Time))
	}

	fmt.Println()
	fmt.Println("T/(k·log k) converges — the separator execution of the 4-D dag costs")
	fmt.Println("Θ(k log k), i.e. slowdown Θ(n log n), supporting the paper's conjecture")
	fmt.Println("that Theorem 1 extends to d = 3. Every run is verified bit-exactly.")
}
