// Quickstart: run a cellular automaton on the bounded-speed linear array
// M1(n, n, 1), then simulate the same computation on the single-processor
// M1(n, 1, 1) two ways — naively and with the paper's topological-separator
// divide-and-conquer — and compare the measured slowdowns with Theorem 2's
// O(n log n) bound.
package main

import (
	"fmt"
	"log"

	"bsmp"
)

func main() {
	prog := bsmp.Rule90{Seed: 2026}

	fmt.Println("Bounded-speed message propagation quickstart (Bilardi-Preparata, SPAA'95)")
	fmt.Println()
	fmt.Printf("%6s %14s %14s %14s %12s %10s\n",
		"n", "T_guest", "T_naive", "T_separator", "naive/sep", "sep/(n·Tn·Logn)")

	for _, n := range []int{32, 64, 128, 256} {
		// The guest: n processors, n steps, one word of memory each.
		guestTime := bsmp.GuestTime(1, n, 1, n, bsmp.AsNetwork{G: prog})

		// Host 1: naive step-by-step simulation — slowdown Θ(n²).
		naive, err := bsmp.UniNaive(1, n, n, prog)
		if err != nil {
			log.Fatal(err)
		}

		// Host 2: the paper's divide-and-conquer — slowdown Θ(n log n).
		sep, err := bsmp.UniDC(1, n, n, 8, prog)
		if err != nil {
			log.Fatal(err)
		}
		// Both must reproduce the guest's outputs exactly.
		if err := bsmp.VerifyDag(naive, 1, n, prog); err != nil {
			log.Fatalf("naive verification: %v", err)
		}
		if err := bsmp.VerifyDag(sep, 1, n, prog); err != nil {
			log.Fatalf("separator verification: %v", err)
		}

		bound := float64(n) * float64(guestTime) // n·Tn, times Log n below
		fmt.Printf("%6d %14.4g %14.4g %14.4g %12.2f %10.2f\n",
			n, float64(guestTime), float64(naive.Time), float64(sep.Time),
			float64(naive.Time)/float64(sep.Time),
			float64(sep.Time)/(bound*log2(float64(n))))
	}

	fmt.Println()
	fmt.Println("naive/sep roughly doubles with every doubling of n — the naive host")
	fmt.Println("pays Θ(n²) slowdown while the separator pays Θ(n log n), so the")
	fmt.Println("divide-and-conquer wins from n ≈ 1000 on (its constant, like the")
	fmt.Println("paper's τ0, is large). The last column — separator time normalized by")
	fmt.Println("Theorem 2's n²·log n — converges, confirming the bound's shape.")
}

func log2(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}
