module bsmp

go 1.22
