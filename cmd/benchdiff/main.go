// Command benchdiff reads `go test -bench` output on stdin and checks it
// against a recorded baseline (the BENCH_pr*.json files at the repo
// root): every -require'd benchmark must have run, and any benchmark
// with a baseline entry must stay within -max-ratio of its recorded
// ns/op. It is the CI benchmark smoke — a coarse "did the benchmarks run
// and did nothing regress by an order of magnitude" gate, deliberately
// tolerant of hardware variance (use -max-ratio 0 to only report).
//
// Benchmarks are keyed on (package, name): `go test -bench ./...`
// prefixes each package's results with a "pkg:" line, and two packages
// may define same-named benchmarks, so keying on the bare name would
// silently collapse them into whichever printed last. Baseline entries
// recorded as "BenchmarkX (pkg/path, params)" match package-exactly;
// bare baseline names still match when unambiguous.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime=1x ./... | benchdiff -baseline BENCH_pr2.json -require BenchmarkMultiD1 -max-ratio 50
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineFile mirrors the BENCH_pr*.json shape; only the benchmark
// names and their "after" ns/op matter here.
type baselineFile struct {
	Benchmarks []struct {
		Name  string `json:"name"`
		After *struct {
			NsOp float64 `json:"ns_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)
	pkgLine   = regexp.MustCompile(`^pkg:\s+(\S+)`)
)

// baseEntry is one baseline benchmark: its recorded display name and
// package (possibly empty for legacy bare-name baselines) and ns/op.
type baseEntry struct {
	name string
	pkg  string
	nsOp float64
}

// measurement is one benchmark line from stdin, tagged with the package
// announced by the preceding "pkg:" line.
type measurement struct {
	name, pkg string
	nsOp      float64
}

// parseBaselineName splits "BenchmarkX (pkg/path, params)" into the bare
// name and the package path; names without a parenthesized package yield
// pkg = "".
func parseBaselineName(name string) (bare, pkg string) {
	bare = strings.Fields(name)[0]
	if open := strings.Index(name, "("); open >= 0 {
		inner := name[open+1:]
		if end := strings.IndexAny(inner, ",)"); end >= 0 {
			inner = inner[:end]
		}
		pkg = strings.TrimSpace(inner)
	}
	return bare, pkg
}

// pkgMatches reports whether a measured import path and a baseline
// package refer to the same package; baselines record module-relative
// paths ("internal/simulate") while go test prints the full import path
// ("bsmp/internal/simulate"), so suffix matches count.
func pkgMatches(measured, baseline string) bool {
	return measured == baseline ||
		strings.HasSuffix(measured, "/"+baseline) ||
		strings.HasSuffix(baseline, "/"+measured)
}

// matchBaseline resolves one measurement against the baseline:
// package-exact match first, then an unambiguous bare-name match.
// Matched entries are marked in usedBase so callers can report baseline
// entries that no measurement ever matched (removed benchmarks).
func matchBaseline(m measurement, base []baseEntry, baseByName map[string][]int, usedBase []bool) (want float64, found, ambiguous bool) {
	for _, i := range baseByName[m.name] {
		if base[i].pkg != "" && pkgMatches(m.pkg, base[i].pkg) {
			usedBase[i] = true
			return base[i].nsOp, true, false
		}
	}
	if idx := baseByName[m.name]; len(idx) == 1 {
		e := base[idx[0]]
		if e.pkg == "" || pkgMatches(m.pkg, e.pkg) {
			usedBase[idx[0]] = true
			return e.nsOp, true, false
		}
	} else if len(idx) > 1 {
		return 0, false, true
	}
	return 0, false, false
}

// scanMeasurements parses `go test -bench` output, attributing each
// benchmark line to the package announced by the preceding "pkg:" line.
// It returns the measurements in input order plus, per bare name, the
// set of packages it appeared in (same-named benchmarks in different
// packages stay distinct instead of overwriting each other).
func scanMeasurements(r io.Reader) ([]measurement, map[string]map[string]bool, error) {
	var measured []measurement
	seen := map[string]map[string]bool{} // bare name -> set of packages
	curPkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			curPkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if seen[m[1]] == nil {
			seen[m[1]] = map[string]bool{}
		}
		if seen[m[1]][curPkg] {
			// Same (pkg, name) twice (e.g. -count > 1): keep the last
			// measurement, as the bare-name version always did.
			for i := range measured {
				if measured[i].name == m[1] && measured[i].pkg == curPkg {
					measured[i].nsOp = ns
				}
			}
			continue
		}
		seen[m[1]][curPkg] = true
		measured = append(measured, measurement{name: m[1], pkg: curPkg, nsOp: ns})
	}
	return measured, seen, sc.Err()
}

// warnNoBaseline builds the summary warning for benchmarks that ran with
// no baseline entry, or "" when there is nothing to warn about. With no
// baseline file at all every measurement is uncompared by design, so the
// warning only fires when a baseline was actually loaded.
func warnNoBaseline(baseline string, names []string) string {
	if baseline == "" || len(names) == 0 {
		return ""
	}
	return fmt.Sprintf("benchdiff: warning: %d benchmark(s) measured with no baseline entry in %s: %s",
		len(names), baseline, strings.Join(names, ", "))
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON (BENCH_pr*.json shape); empty = no time comparison")
	maxRatio := flag.Float64("max-ratio", 0, "fail if measured ns/op exceeds baseline by this factor; 0 = report only")
	require := flag.String("require", "", "comma-separated benchmark names that must appear in the input")
	flag.Parse()

	var base []baseEntry
	baseByName := map[string][]int{} // bare name -> indices into base
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		var bf baselineFile
		if err := json.Unmarshal(raw, &bf); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baseline, err)
			os.Exit(2)
		}
		for _, b := range bf.Benchmarks {
			if b.After == nil || b.After.NsOp == 0 {
				continue
			}
			bare, pkg := parseBaselineName(b.Name)
			baseByName[bare] = append(baseByName[bare], len(base))
			base = append(base, baseEntry{name: b.Name, pkg: pkg, nsOp: b.After.NsOp})
		}
	}

	measured, seen, err := scanMeasurements(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading stdin: %v\n", err)
		os.Exit(2)
	}

	for name, pkgs := range seen {
		if len(pkgs) > 1 {
			var list []string
			for p := range pkgs {
				list = append(list, p)
			}
			fmt.Fprintf(os.Stderr, "benchdiff: warning: %s defined in %d packages (%s); comparing per package\n",
				name, len(pkgs), strings.Join(list, ", "))
		}
	}

	failed := false
	usedBase := make([]bool, len(base))
	var unbaselined []string
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if len(seen[name]) == 0 {
			fmt.Printf("MISSING  %s (required benchmark did not run)\n", name)
			failed = true
		}
	}
	for _, m := range measured {
		label := m.name
		if m.pkg != "" && len(seen[m.name]) > 1 {
			label = fmt.Sprintf("%s [%s]", m.name, m.pkg)
		}
		// Package-exact baseline match first; a bare or package-less
		// baseline entry still applies when the name is unambiguous.
		want, found, ambiguous := matchBaseline(m, base, baseByName, usedBase)
		switch {
		case ambiguous:
			fmt.Fprintf(os.Stderr, "benchdiff: warning: %s matches multiple baseline entries and none package-exactly; skipping comparison\n", label)
			fmt.Printf("new      %-28s %12.0f ns/op (ambiguous baseline)\n", label, m.nsOp)
		case !found:
			fmt.Printf("new      %-28s %12.0f ns/op (no baseline)\n", label, m.nsOp)
			unbaselined = append(unbaselined, label)
		default:
			ratio := m.nsOp / want
			verdict := "ok"
			if *maxRatio > 0 && ratio > *maxRatio {
				verdict = fmt.Sprintf("FAIL (> %gx)", *maxRatio)
				failed = true
			}
			fmt.Printf("%-8s %-28s %12.0f ns/op  baseline %12.0f  ratio %5.2f\n", verdict, label, m.nsOp, want, ratio)
		}
	}
	// Benchmarks that ran without a baseline entry are summarized as one
	// labeled, non-fatal warning: a new benchmark must not wedge the gate
	// (its entry only lands when the next BENCH_pr*.json is recorded), but
	// a silently uncompared measurement is how regressions slip through —
	// so the gap is called out explicitly instead of just line-by-line.
	if w := warnNoBaseline(*baseline, unbaselined); w != "" {
		fmt.Fprintln(os.Stderr, w)
	}
	// Baseline entries no measurement matched are informational, never a
	// failure: benchmarks get renamed or retired across PRs, and a stale
	// baseline entry must not wedge the gate. (-require is the knob for
	// benchmarks that MUST run.)
	for i, b := range base {
		if !usedBase[i] {
			fmt.Printf("removed  %-28s baseline %12.0f ns/op (not measured in this run)\n", b.name, b.nsOp)
		}
	}
	if len(measured) == 0 {
		fmt.Println("MISSING  no benchmark lines found on stdin")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
