// Command benchdiff reads `go test -bench` output on stdin and checks it
// against a recorded baseline (the BENCH_pr*.json files at the repo
// root): every -require'd benchmark must have run, and any benchmark
// with a baseline entry must stay within -max-ratio of its recorded
// ns/op. It is the CI benchmark smoke — a coarse "did the benchmarks run
// and did nothing regress by an order of magnitude" gate, deliberately
// tolerant of hardware variance (use -max-ratio 0 to only report).
//
// Usage:
//
//	go test -run xxx -bench . -benchtime=1x ./... | benchdiff -baseline BENCH_pr2.json -require BenchmarkMultiD1 -max-ratio 50
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineFile mirrors the BENCH_pr*.json shape; only the benchmark
// names and their "after" ns/op matter here.
type baselineFile struct {
	Benchmarks []struct {
		Name  string `json:"name"`
		After *struct {
			NsOp float64 `json:"ns_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

func main() {
	baseline := flag.String("baseline", "", "baseline JSON (BENCH_pr*.json shape); empty = no time comparison")
	maxRatio := flag.Float64("max-ratio", 0, "fail if measured ns/op exceeds baseline by this factor; 0 = report only")
	require := flag.String("require", "", "comma-separated benchmark names that must appear in the input")
	flag.Parse()

	base := map[string]float64{}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		var bf baselineFile
		if err := json.Unmarshal(raw, &bf); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baseline, err)
			os.Exit(2)
		}
		for _, b := range bf.Benchmarks {
			if b.After == nil || b.After.NsOp == 0 {
				continue
			}
			// Names are recorded as "BenchmarkX (pkg/path)"; key on the
			// bare benchmark name.
			base[strings.Fields(b.Name)[0]] = b.After.NsOp
		}
	}

	measured := map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		measured[m[1]] = ns
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading stdin: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := measured[name]; !ok {
			fmt.Printf("MISSING  %s (required benchmark did not run)\n", name)
			failed = true
		}
	}
	for name, ns := range measured {
		want, ok := base[name]
		if !ok {
			fmt.Printf("new      %-28s %12.0f ns/op (no baseline)\n", name, ns)
			continue
		}
		ratio := ns / want
		verdict := "ok"
		if *maxRatio > 0 && ratio > *maxRatio {
			verdict = fmt.Sprintf("FAIL (> %gx)", *maxRatio)
			failed = true
		}
		fmt.Printf("%-8s %-28s %12.0f ns/op  baseline %12.0f  ratio %5.2f\n", verdict, name, ns, want, ratio)
	}
	if len(measured) == 0 {
		fmt.Println("MISSING  no benchmark lines found on stdin")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
