package main

import (
	"strings"
	"testing"
)

// TestScanMeasurementsKeepsSameNamedBenchmarksDistinct is the regression
// test for the bare-name collision bug: two packages defining
// BenchmarkRun must yield two measurements, not one silently
// overwriting the other.
func TestScanMeasurementsKeepsSameNamedBenchmarksDistinct(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: bsmp/internal/simulate
BenchmarkRun-8    	     100	   1000.0 ns/op
BenchmarkMultiD1-8	      10	  20000.0 ns/op
PASS
pkg: bsmp/internal/serve
BenchmarkRun-8    	     100	   5000.0 ns/op
PASS
`
	measured, seen, err := scanMeasurements(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(measured) != 3 {
		t.Fatalf("got %d measurements, want 3: %+v", len(measured), measured)
	}
	if len(seen["BenchmarkRun"]) != 2 {
		t.Fatalf("BenchmarkRun seen in %d packages, want 2", len(seen["BenchmarkRun"]))
	}
	byKey := map[string]float64{}
	for _, m := range measured {
		byKey[m.name+"|"+m.pkg] = m.nsOp
	}
	if byKey["BenchmarkRun|bsmp/internal/simulate"] != 1000 {
		t.Errorf("simulate BenchmarkRun = %v, want 1000", byKey["BenchmarkRun|bsmp/internal/simulate"])
	}
	if byKey["BenchmarkRun|bsmp/internal/serve"] != 5000 {
		t.Errorf("serve BenchmarkRun = %v, want 5000", byKey["BenchmarkRun|bsmp/internal/serve"])
	}
}

func TestScanMeasurementsRepeatKeepsLast(t *testing.T) {
	input := `pkg: bsmp/internal/simulate
BenchmarkRun-8    	     100	   1000.0 ns/op
BenchmarkRun-8    	     100	   3000.0 ns/op
`
	measured, _, err := scanMeasurements(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(measured) != 1 {
		t.Fatalf("got %d measurements for -count=2 style repeats, want 1", len(measured))
	}
	if measured[0].nsOp != 3000 {
		t.Fatalf("nsOp = %v, want the last measurement 3000", measured[0].nsOp)
	}
}

func TestParseBaselineName(t *testing.T) {
	cases := []struct {
		in, bare, pkg string
	}{
		{"BenchmarkMultiD1 (internal/simulate, n=256 p=8 m=16 steps=64)", "BenchmarkMultiD1", "internal/simulate"},
		{"BenchmarkRunSchemeMultiD1 (internal/simulate)", "BenchmarkRunSchemeMultiD1", "internal/simulate"},
		{"BenchmarkBare", "BenchmarkBare", ""},
	}
	for _, tc := range cases {
		bare, pkg := parseBaselineName(tc.in)
		if bare != tc.bare || pkg != tc.pkg {
			t.Errorf("parseBaselineName(%q) = %q, %q; want %q, %q", tc.in, bare, pkg, tc.bare, tc.pkg)
		}
	}
}

// TestMatchBaselineFlagsRemovedEntries checks that baseline entries no
// measurement matches stay unmarked in usedBase — main reports those as
// "removed" informationally instead of failing the gate.
func TestMatchBaselineFlagsRemovedEntries(t *testing.T) {
	base := []baseEntry{
		{name: "BenchmarkKept (internal/simulate)", pkg: "internal/simulate", nsOp: 1000},
		{name: "BenchmarkRetired (internal/simulate)", pkg: "internal/simulate", nsOp: 2000},
	}
	baseByName := map[string][]int{"BenchmarkKept": {0}, "BenchmarkRetired": {1}}
	usedBase := make([]bool, len(base))

	m := measurement{name: "BenchmarkKept", pkg: "bsmp/internal/simulate", nsOp: 1100}
	want, found, ambiguous := matchBaseline(m, base, baseByName, usedBase)
	if !found || ambiguous || want != 1000 {
		t.Fatalf("matchBaseline = (%v, %t, %t), want (1000, true, false)", want, found, ambiguous)
	}
	if !usedBase[0] {
		t.Error("matched baseline entry not marked used")
	}
	if usedBase[1] {
		t.Error("never-measured baseline entry marked used; it would escape the removed report")
	}

	// A measurement with no baseline entry at all must not mark anything.
	if _, found, _ := matchBaseline(measurement{name: "BenchmarkNew", pkg: "bsmp/internal/serve"}, base, baseByName, usedBase); found {
		t.Error("unknown benchmark matched a baseline entry")
	}
	if usedBase[1] {
		t.Error("unknown benchmark marked an unrelated baseline entry used")
	}
}

func TestPkgMatches(t *testing.T) {
	if !pkgMatches("bsmp/internal/simulate", "internal/simulate") {
		t.Error("module-qualified path should match module-relative baseline")
	}
	if !pkgMatches("bsmp/internal/simulate", "bsmp/internal/simulate") {
		t.Error("identical paths should match")
	}
	if pkgMatches("bsmp/internal/serve", "internal/simulate") {
		t.Error("different packages must not match")
	}
}

func TestWarnNoBaseline(t *testing.T) {
	if got := warnNoBaseline("", []string{"BenchmarkNew"}); got != "" {
		t.Errorf("no baseline file: warning = %q, want none (everything is uncompared by design)", got)
	}
	if got := warnNoBaseline("BENCH_pr8.json", nil); got != "" {
		t.Errorf("no unbaselined benchmarks: warning = %q, want none", got)
	}
	got := warnNoBaseline("BENCH_pr8.json", []string{"BenchmarkSweepStream", "BenchmarkNewThing"})
	for _, want := range []string{"warning", "2 benchmark(s)", "BENCH_pr8.json", "BenchmarkSweepStream", "BenchmarkNewThing"} {
		if !strings.Contains(got, want) {
			t.Errorf("warning %q missing %q", got, want)
		}
	}
}
