// Command bsmpd serves the scheme registry and the closed-form Theorem 1
// bounds over HTTP JSON. Endpoints:
//
//	POST /v1/run       run a simulation (cached, pooled, validated;
//	                   ?trace=1 returns the span timeline inline)
//	POST /v1/sweep     evaluate a parameter grid server-side, streaming
//	                   NDJSON rows as points complete (?trace=1 merges
//	                   per-row spans under one sweep root)
//	GET  /v1/bounds    closed-form Theorem 1 quantities
//	GET  /v1/schemes   scheme registry listing
//	GET  /v1/runs      run registry listing (live + recent completed;
//	                   ?state=&scheme=&source=&limit=&offset=)
//	GET  /v1/runs/{id}         one full run record incl. span tree
//	GET  /v1/runs/{id}/events  SSE lifecycle stream of one run
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      expvar-style counters and histogram snapshots
//	GET  /metrics.prom the same metrics in Prometheus text format
//
// Invalid parameter tuples get structured 400s with the typed ParamError;
// load beyond the worker pool's queue gets 429; SIGINT/SIGTERM triggers a
// graceful drain. Lifecycle and per-request access records are JSON
// (log/slog) on stderr; -debug-addr exposes net/http/pprof on a separate
// listener. See README.md "Running the daemon".
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bsmp/internal/serve"
)

func main() {
	var cfg serve.Config
	flag.StringVar(&cfg.Addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.Workers, "workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.QueueDepth, "queue", 64, "queued requests beyond running ones before 429")
	flag.IntVar(&cfg.CacheEntries, "cache", 512, "result cache entries (negative disables)")
	flag.DurationVar(&cfg.RequestTimeout, "timeout", 30*time.Second, "per-request simulation deadline")
	flag.IntVar(&cfg.MaxN, "max-n", 1<<16, "largest accepted machine volume n")
	flag.IntVar(&cfg.MaxM, "max-m", 1<<12, "largest accepted memory density m")
	flag.IntVar(&cfg.MaxSteps, "max-steps", 1<<12, "largest accepted step count")
	flag.IntVar(&cfg.MemoCapacity, "memo-cap", 0, "unified memo store entry bound (kernels + subtree records); 0 = library default, negative disables memoization")
	flag.IntVar(&cfg.MaxSweepPoints, "max-sweep-points", 4096, "largest grid one /v1/sweep may expand to")
	flag.IntVar(&cfg.SweepParallel, "sweep-parallel", 0, "pool slots all concurrent sweeps combined may occupy at once (0 = workers)")
	flag.IntVar(&cfg.RegistryCapacity, "registry-cap", 0, "completed run records the /v1/runs flight recorder retains (0 = default, negative disables the registry)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	debugAddr := flag.String("debug-addr", "", "listen address for net/http/pprof (empty = disabled)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "bsmpd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	cfg.Logger = logger

	// The profiling surface stays off the service listener: it is
	// operator-only, so it binds its own (typically loopback) address and
	// never reaches the request middleware or the public port.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("debug listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				logger.Error("debug listener failed", "err", err.Error())
			}
		}()
	}

	s := serve.New(cfg)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()
	logger.Info("listening", "addr", cfg.Addr)
	fmt.Printf("bsmpd listening on %s\n", cfg.Addr)

	select {
	case err := <-errc:
		if err != nil {
			logger.Error("serve failed", "err", err.Error())
			os.Exit(1)
		}
		return
	case <-ctx.Done():
	}
	stop()
	logger.Info("draining", "budget", drain.String())
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		logger.Error("shutdown failed", "err", err.Error())
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
