// Command bsmpd serves the scheme registry and the closed-form Theorem 1
// bounds over HTTP JSON. Endpoints:
//
//	POST /v1/run      run a simulation (cached, pooled, validated)
//	GET  /v1/bounds   closed-form Theorem 1 quantities
//	GET  /v1/schemes  scheme registry listing
//	GET  /healthz     liveness (503 while draining)
//	GET  /metrics     expvar-style counters
//
// Invalid parameter tuples get structured 400s with the typed ParamError;
// load beyond the worker pool's queue gets 429; SIGINT/SIGTERM triggers a
// graceful drain. See README.md "Running the daemon".
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bsmp/internal/serve"
)

func main() {
	var cfg serve.Config
	flag.StringVar(&cfg.Addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.Workers, "workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.QueueDepth, "queue", 64, "queued requests beyond running ones before 429")
	flag.IntVar(&cfg.CacheEntries, "cache", 512, "result cache entries (negative disables)")
	flag.DurationVar(&cfg.RequestTimeout, "timeout", 30*time.Second, "per-request simulation deadline")
	flag.IntVar(&cfg.MaxN, "max-n", 1<<16, "largest accepted machine volume n")
	flag.IntVar(&cfg.MaxM, "max-m", 1<<12, "largest accepted memory density m")
	flag.IntVar(&cfg.MaxSteps, "max-steps", 1<<12, "largest accepted step count")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	flag.Parse()

	s := serve.New(cfg)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()
	fmt.Printf("bsmpd listening on %s\n", cfg.Addr)

	select {
	case err := <-errc:
		if err != nil {
			log.Fatalf("bsmpd: %v", err)
		}
		return
	case <-ctx.Done():
	}
	stop()
	log.Printf("bsmpd: draining (budget %s)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		log.Fatalf("bsmpd: shutdown: %v", err)
	}
	log.Printf("bsmpd: drained cleanly")
}
