// Command tradeoff prints processor-time tradeoff tables for the
// bounded-speed model: Theorem 1's analytic slowdown (n/p)·A(n, m, p) and,
// optionally, the measured slowdown from the executable simulations.
//
// Usage:
//
//	tradeoff -d 1 -n 1024 -p 16 -m 1,8,64,512,2048 [-measure] [-steps 64]
//
// Columns: the Brent baseline n/p, the naive bound, Theorem 1's range and
// bound, and (with -measure) the measured slowdown of the corresponding
// simulation scheme.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"bsmp"
	"bsmp/internal/profiling"
)

func main() {
	d := flag.Int("d", 1, "mesh dimension (1, 2 or 3)")
	n := flag.Int("n", 1024, "machine volume n (d=2: a perfect square; d=3: a perfect cube)")
	p := flag.Int("p", 16, "host processors (divides n; same shape constraint as n)")
	ms := flag.String("m", "1,4,16,64,256,1024", "comma-separated memory densities")
	measure := flag.Bool("measure", false, "also run the executable simulation")
	scheme := flag.String("scheme", "multi", "simulation scheme to measure (see bsmp.Schemes)")
	steps := flag.Int("steps", 64, "guest steps to simulate when measuring")
	theta := flag.Float64("theta", 0, "Θ-model delay ratio for -scheme multi-theta: delays in [dist, Θ·dist] (0 = scheme default)")
	thetaSeed := flag.Uint64("theta-seed", 0, "seed for the Θ-model delay draws")
	faults := flag.Float64("faults", 0, "dead-component density in [0, 1) for -scheme multi-faulty (0 = fault-free)")
	faultSeed := flag.Uint64("fault-seed", 0, "seed for the fault mask draws")
	sweep := flag.Bool("sweep", false, "dyadic m sweep with an ASCII curve of A(n,m,p)")
	csv := flag.Bool("csv", false, "emit CSV instead of the aligned table")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for -measure runs; on expiry report the rows that finished (0 = no limit)")
	memoCap := flag.Int("memo-cap", 0, "unified memo store entry bound (kernels + subtree records); 0 = default, negative disables memoization")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write the -measure runs' span timeline to this file (Chrome trace_event JSON)")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Fatal(err)
		}
	}()

	if *memoCap != 0 {
		bsmp.SetMemoCapacity(*memoCap)
	}

	if *sweep {
		runSweep(*d, *n, *p, *csv)
		return
	}

	var mvals []int
	for _, s := range strings.Split(*ms, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad m value %q: %v", s, err)
		}
		mvals = append(mvals, v)
	}

	cfg := bsmp.SchemeConfig{Multi: bsmp.MultiOptions{
		Theta: *theta, ThetaSeed: *thetaSeed,
		Faults: *faults, FaultSeed: *faultSeed,
	}}
	if *measure {
		// Reject a bad scheme name (or a config knob the scheme refuses)
		// before any analytic rows print, and answer a typo with the same
		// registry table `experiments -schemes` shows.
		if _, err := bsmp.SchemeByName(*scheme, *d); err != nil {
			log.Fatalf("%v\nregistered schemes:\n%s", err, bsmp.SchemeTable())
		}
		if err := bsmp.ValidateParams(*scheme, *d, *n, *p, mvals[0], *steps, cfg); err != nil {
			var pe *bsmp.ParamError
			if errors.As(err, &pe) && (pe.Field == "theta" || pe.Field == "faults") {
				log.Fatal(err)
			}
			// Other tuple constraints surface per row from the scheme run.
		}
	}

	b12, b23, b34 := bsmp.Boundaries(*d, *n, *p)
	fmt.Printf("M%d(%d, p, m): simulating %d guest processors on p = %d hosts\n",
		*d, *n, *n, *p)
	fmt.Printf("Brent slowdown (instantaneous model): %.0f\n", bsmp.BrentSlowdown(*n, *p))
	fmt.Printf("naive slowdown bound:                 %.0f\n", bsmp.NaiveSlowdownBound(*d, *n, *p))
	fmt.Printf("Theorem 1 range boundaries:           m = %.1f, %.1f, %.0f\n\n", b12, b23, b34)

	hdr := fmt.Sprintf("%8s %8s %8s %14s %14s", "m", "range", "s*", "A(n,m,p)", "(n/p)·A")
	if *measure {
		hdr += fmt.Sprintf(" %14s %10s", "measured", "meas/bound")
	}
	fmt.Println(hdr)

	// SIGINT/SIGTERM (and -timeout) cancel the measurement loop: the
	// in-flight simulation stops at its next checkpoint and the rows
	// already printed stand as the partial report.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// -trace records every measured run's span timeline into one file;
	// the rows run sequentially under the same context, so the spans of
	// successive rows stack cleanly in one tracer.
	if *tracePath != "" {
		if !*measure {
			log.Fatal("-trace requires -measure (analytic rows execute nothing)")
		}
		tracer := bsmp.NewTracer()
		ctx = bsmp.WithTracer(ctx, tracer)
		defer func() {
			if err := profiling.WriteFile(*tracePath, tracer.WriteChromeTrace); err != nil {
				log.Fatal(err)
			}
		}()
	}

	for i, m := range mvals {
		a := bsmp.A(*d, *n, m, *p)
		bound := bsmp.Slowdown(*d, *n, m, *p)
		row := fmt.Sprintf("%8d %8s %8.0f %14.1f %14.1f",
			m, rangeName(*d, *n, m, *p), bsmp.OptimalS(*n, m, *p), a, bound)
		if *measure {
			slow, err := measured(ctx, *scheme, *d, *n, *p, m, *steps, cfg)
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				log.Fatalf("interrupted (%v): %d of %d measured rows finished", err, i, len(mvals))
			}
			if err != nil {
				log.Fatalf("m=%d: %v", m, err)
			}
			row += fmt.Sprintf(" %14.1f %10.2f", slow, slow/bound)
		}
		fmt.Println(row)
	}
}

// runSweep prints a dyadic sweep of the locality slowdown A(n, m, p) with
// an ASCII curve and the range boundaries marked.
func runSweep(d, n, p int, csv bool) {
	b12, b23, b34 := bsmp.Boundaries(d, n, p)
	if csv {
		fmt.Println("m,range,A,slowdown,s_star")
	} else {
		fmt.Printf("Locality slowdown A(n=%d, m, p=%d), d=%d\n", n, p, d)
		fmt.Printf("boundaries: %.1f | %.1f | %.0f\n\n", b12, b23, b34)
	}
	var maxA float64
	var rows []struct {
		m int
		a float64
	}
	for m := 1; m <= 4*n; m *= 2 {
		a := bsmp.A(d, n, m, p)
		rows = append(rows, struct {
			m int
			a float64
		}{m, a})
		if a > maxA {
			maxA = a
		}
	}
	for _, r := range rows {
		if csv {
			fmt.Printf("%d,%s,%.3f,%.3f,%.1f\n",
				r.m, rangeName(d, n, r.m, p), r.a,
				bsmp.Slowdown(d, n, r.m, p), bsmp.OptimalS(n, r.m, p))
			continue
		}
		bar := strings.Repeat("#", int(50*math.Log(1+r.a)/math.Log(1+maxA)))
		mark := " "
		mf := float64(r.m)
		switch {
		case mf/2 < b12 && b12 <= mf:
			mark = "|" // crossing the range 1->2 boundary
		case mf/2 < b23 && b23 <= mf:
			mark = "|"
		case mf/2 < b34 && b34 <= mf:
			mark = "|"
		}
		fmt.Printf("m=%7d r%s %s %8.1f %s\n",
			r.m, rangeName(d, n, r.m, p), mark, r.a, bar)
	}
	if !csv {
		fmt.Println("\n('|' marks a range boundary crossed since the previous row)")
	}
}

func rangeName(d, n, m, p int) string {
	b12, b23, b34 := bsmp.Boundaries(d, n, p)
	mf := float64(m)
	switch {
	case mf <= b12:
		return "1"
	case mf <= b23:
		return "2"
	case mf <= b34:
		return "3"
	default:
		return "4"
	}
}

// measured runs the named registry scheme and reports its slowdown
// Tp/Tn. The d = 1 run is additionally verified against the pure
// reference execution (the cheap case; every scheme is verified across
// dimensions by the test suite and experiment E-REG). Model-grade
// schemes that produce no guest outputs (blocked-analytic) skip the
// output check — their fidelity gate is the E-BRENT battery — and
// calibrate the guest-time denominator on a smaller machine: the guest
// runs lock-step, so its per-step virtual time does not depend on n.
func measured(ctx context.Context, scheme string, d, n, p, m, steps int, cfg bsmp.SchemeConfig) (float64, error) {
	prog := guestProg(d, n)
	r, err := bsmp.RunSchemeContext(ctx, scheme, d, n, p, m, steps, prog, cfg)
	if err != nil {
		return 0, err
	}
	nGuest := n
	if r.Outputs == nil {
		if nGuest > 4096 {
			nGuest = 4096
		}
	} else if d == 1 {
		if err := r.Verify(1, n, m, prog); err != nil {
			return 0, err
		}
	}
	tn, err := bsmp.GuestTimeContext(ctx, d, nGuest, m, steps, guestProg(d, nGuest))
	if err != nil {
		return 0, err
	}
	return float64(r.Time) / float64(tn), nil
}

// guestProg builds the standard MixCA measurement guest with the grid
// geometry d requires.
func guestProg(d, n int) bsmp.Program {
	side := 0
	switch d {
	case 2:
		for side*side < n {
			side++
		}
		return bsmp.AsNetwork{G: bsmp.MixCA{Seed: 9}, Side: side}
	case 3:
		for side*side*side < n {
			side++
		}
		return bsmp.AsNetwork{G: bsmp.MixCA{Seed: 9}, CubeSide: side}
	}
	return bsmp.AsNetwork{G: bsmp.MixCA{Seed: 9}}
}
