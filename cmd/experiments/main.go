// Command experiments runs the full reproduction suite: one experiment
// per theorem (Prop. 1, Thms. 1-5, the Section 1 matmul example, the s*
// sweep, the mechanism ablations) and one validation per figure, printing
// paper-claim-versus-measured tables. With -md it emits the markdown
// blocks recorded in EXPERIMENTS.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bsmp"
	"bsmp/internal/profiling"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sizes (seconds instead of minutes)")
	md := flag.Bool("md", false, "emit markdown instead of plain tables")
	asJSON := flag.Bool("json", false, "emit the tables as JSON")
	seq := flag.Bool("seq", false, "run experiments sequentially (one worker)")
	schemes := flag.Bool("schemes", false, "list the registered simulation schemes and exit")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget; on expiry print the experiments that finished (0 = no limit)")
	memoCap := flag.Int("memo-cap", 0, "unified memo store entry bound (kernels + subtree records); 0 = default, negative disables memoization")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write the battery's span timeline to this file (Chrome trace_event JSON; implies -seq)")
	flag.Parse()

	if *memoCap != 0 {
		bsmp.SetMemoCapacity(*memoCap)
	}

	if *schemes {
		fmt.Print(bsmp.SchemeTable())
		return
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}

	// SIGINT/SIGTERM (and -timeout) cancel the battery: running
	// experiments stop at their next checkpoint and the tables of every
	// experiment that finished are still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// A tracer belongs to one goroutine's run tree, so -trace forces the
	// sequential battery — concurrent experiments sharing a tracer would
	// interleave their span stacks.
	var tracer *bsmp.Tracer
	if *tracePath != "" {
		tracer = bsmp.NewTracer()
		ctx = bsmp.WithTracer(ctx, tracer)
		*seq = true
	}

	start := time.Now()
	run := bsmp.RunAllExperimentsContext
	if *seq {
		run = bsmp.RunAllExperimentsSequentialContext
	}
	tabs, err := run(ctx, *quick)
	interrupted := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if err != nil && !interrupted {
		log.Fatal(err)
	}
	if err := stopProf(); err != nil {
		log.Fatal(err)
	}
	if tracer != nil {
		if err := profiling.WriteFile(*tracePath, tracer.WriteChromeTrace); err != nil {
			log.Fatal(err)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(tabs); encErr != nil {
			log.Fatal(encErr)
		}
		if interrupted {
			log.Fatalf("interrupted (%v): %d experiments finished, the rest were cancelled", err, len(tabs))
		}
		return
	}
	for _, t := range tabs {
		if *md {
			fmt.Print(t.Markdown())
		} else {
			fmt.Print(t.Format())
			fmt.Println()
		}
	}
	if !*md {
		fmt.Printf("ran %d experiments in %v\n", len(tabs), time.Since(start).Round(time.Millisecond))
	}
	if interrupted {
		log.Fatalf("interrupted (%v): %d experiments finished, the rest were cancelled", err, len(tabs))
	}
}
