// Command figures reconstructs and validates the geometric decompositions
// of Figures 1-4 of the paper: the five-diamond partition of the d = 1
// domain, the zig-zag processor bands, the octahedron/tetrahedron
// recursion, and the partition of the d = 2 domain — each checked for
// exact coverage and the topological-partition property, and rendered as
// ASCII art.
//
// With -sweep it instead reads /v1/sweep NDJSON rows on stdin and
// renders the measured processor-time tradeoff surface as a sorted
// table — the figures pipeline for server-swept grids:
//
//	curl -sN -d @grid.json localhost:8080/v1/sweep | figures -sweep
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"bsmp/internal/exp"
)

// sweepRunRow mirrors the /v1/run response fields the table needs.
type sweepRunRow struct {
	Scheme string  `json:"scheme"`
	D      int     `json:"d"`
	N      int     `json:"n"`
	P      int     `json:"p"`
	M      int     `json:"m"`
	Steps  int     `json:"steps"`
	Theta  float64 `json:"theta"`
	Time   float64 `json:"time"`
	Bound  float64 `json:"theorem1_bound"`
	Cached bool    `json:"cached"`
}

// sweepLine is one NDJSON line of a /v1/sweep response.
type sweepLine struct {
	Index  int          `json:"index"`
	Result *sweepRunRow `json:"result"`
	Error  *struct {
		Message string `json:"message"`
	} `json:"error"`
	Done *bool `json:"done"`
}

// renderSweep reads sweep NDJSON from stdin and prints the tradeoff
// table sorted by (scheme, d, n, p, m, steps, theta), plus — when more
// than one scheme appears — the winning scheme per (n, p) cell.
func renderSweep() error {
	var rows []sweepRunRow
	errs := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line sweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("figures: line %q: %w", sc.Text(), err)
		}
		switch {
		case line.Done != nil:
			// summary line — totals already implicit in the table
		case line.Error != nil:
			errs++
			fmt.Fprintf(os.Stderr, "figures: row %d errored: %s\n", line.Index, line.Error.Message)
		case line.Result != nil:
			rows = append(rows, *line.Result)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("figures: no sweep result rows on stdin")
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		if a.D != b.D {
			return a.D < b.D
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.P != b.P {
			return a.P < b.P
		}
		if a.M != b.M {
			return a.M < b.M
		}
		if a.Steps != b.Steps {
			return a.Steps < b.Steps
		}
		return a.Theta < b.Theta
	})
	fmt.Printf("%-12s %2s %7s %5s %5s %6s %6s %14s %14s %7s\n",
		"scheme", "d", "n", "p", "m", "steps", "theta", "time", "bound", "t/bound")
	schemes := map[string]bool{}
	for _, r := range rows {
		schemes[r.Scheme] = true
		ratio := 0.0
		if r.Bound > 0 {
			ratio = r.Time / r.Bound
		}
		fmt.Printf("%-12s %2d %7d %5d %5d %6d %6.2f %14.1f %14.1f %7.2f\n",
			r.Scheme, r.D, r.N, r.P, r.M, r.Steps, r.Theta, r.Time, r.Bound, ratio)
	}
	if len(schemes) > 1 {
		type cell struct{ n, p int }
		best := map[cell]sweepRunRow{}
		for _, r := range rows {
			c := cell{r.N, r.P}
			if b, ok := best[c]; !ok || r.Time < b.Time {
				best[c] = r
			}
		}
		var cells []cell
		for c := range best {
			cells = append(cells, c)
		}
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].n != cells[j].n {
				return cells[i].n < cells[j].n
			}
			return cells[i].p < cells[j].p
		})
		fmt.Printf("\nfastest scheme per (n, p):\n")
		for _, c := range cells {
			b := best[c]
			fmt.Printf("  n=%-7d p=%-5d %-12s time %.1f\n", c.n, c.p, b.Scheme, b.Time)
		}
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d sweep row(s) errored\n", errs)
	}
	return nil
}

func main() {
	n := flag.Int("n", 24, "d=1 rendering size")
	p := flag.Int("p", 4, "processors for the zig-zag rendering")
	s := flag.Int("s", 6, "diamond width for the zig-zag rendering")
	side := flag.Int("side", 12, "d=2 rendering side")
	slice := flag.Int("t", 4, "time slice for the Figure 4 rendering")
	sweep := flag.Bool("sweep", false, "read /v1/sweep NDJSON rows on stdin and render the tradeoff table")
	flag.Parse()

	if *sweep {
		if err := renderSweep(); err != nil {
			log.Fatal(err)
		}
		return
	}

	tabs, err := exp.Figures()
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tabs {
		fmt.Print(t.Format())
		fmt.Println()
	}

	fmt.Printf("Figure 1 rendering (n = %d; pieces 1-5, t upward):\n", *n)
	fmt.Print(exp.RenderFigure1(*n))
	fmt.Println()

	fmt.Printf("Figure 2 rendering (n = %d, p = %d, s = %d; bands a-%c):\n",
		*n, *p, *s, 'a'+byte(*p-1))
	fmt.Print(exp.RenderZigZag(*n, *p, *s))
	fmt.Println()

	fmt.Printf("Figure 4 rendering (side = %d, slice t = %d; one letter per piece):\n",
		*side, *slice)
	fmt.Print(exp.RenderFigure4Slice(*side, *slice))
}
