// Command figures reconstructs and validates the geometric decompositions
// of Figures 1-4 of the paper: the five-diamond partition of the d = 1
// domain, the zig-zag processor bands, the octahedron/tetrahedron
// recursion, and the partition of the d = 2 domain — each checked for
// exact coverage and the topological-partition property, and rendered as
// ASCII art.
package main

import (
	"flag"
	"fmt"
	"log"

	"bsmp/internal/exp"
)

func main() {
	n := flag.Int("n", 24, "d=1 rendering size")
	p := flag.Int("p", 4, "processors for the zig-zag rendering")
	s := flag.Int("s", 6, "diamond width for the zig-zag rendering")
	side := flag.Int("side", 12, "d=2 rendering side")
	slice := flag.Int("t", 4, "time slice for the Figure 4 rendering")
	flag.Parse()

	tabs, err := exp.Figures()
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tabs {
		fmt.Print(t.Format())
		fmt.Println()
	}

	fmt.Printf("Figure 1 rendering (n = %d; pieces 1-5, t upward):\n", *n)
	fmt.Print(exp.RenderFigure1(*n))
	fmt.Println()

	fmt.Printf("Figure 2 rendering (n = %d, p = %d, s = %d; bands a-%c):\n",
		*n, *p, *s, 'a'+byte(*p-1))
	fmt.Print(exp.RenderZigZag(*n, *p, *s))
	fmt.Println()

	fmt.Printf("Figure 4 rendering (side = %d, slice t = %d; one letter per piece):\n",
		*side, *slice)
	fmt.Print(exp.RenderFigure4Slice(*side, *slice))
}
