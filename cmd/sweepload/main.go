// Command sweepload is the /v1/sweep load generator: it stands up
// in-process bsmpd instances and measures the tentpole claim — one
// server-side sweep over a parameter grid versus the same grid issued as
// independent sequential /v1/run calls — plus steady-state sweep
// throughput (QPS, row rate, p50/p99 row latency) under concurrent
// clients.
//
// Scenario order is deliberate: the cold sweep runs FIRST, so both later
// scenarios — the sequential /v1/run baseline and the warm re-sweep on a
// fresh server — run with the process-global kernel and memo caches the
// cold sweep just paid for. The headline speedup compares the two warm
// scenarios, where the only difference is server-side grid orchestration
// (parallel pool execution, canonical dedup, one HTTP round trip) versus
// a client-side loop of independent calls; the cold sweep time is
// recorded alongside so the one-time calibration cost stays visible.
//
// Usage:
//
//	go run ./cmd/sweepload [-points-min 100] [-clients 4] [-rounds 8] [-json]
//
// The -json output is the object recorded under "loadgen" in
// BENCH_pr8.json.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"bsmp/internal/serve"
)

// grid is the benchmark parameter grid: scheme-major multi d=1 over
// n × p × m × steps, sized to clear the 100-point floor with every point
// valid (p divides every n, pairwise coprime-free powers of two).
const grid = `{
  "schemes": ["multi"], "d": 1,
  "n": [64, 128, 256],
  "p": [2, 4, 8, 16],
  "m": [4, 8, 16, 32],
  "steps": [16, 32, 64]
}`

// gridPoints mirrors the grid literal above: 3 * 4 * 4 * 3.
const gridPoints = 3 * 4 * 4 * 3

type runResult struct {
	Time float64 `json:"time"`
}

type sweepRow struct {
	Index  int        `json:"index"`
	Result *runResult `json:"result"`
	Error  any        `json:"error"`
}

// report is the -json output shape, recorded in BENCH_pr8.json.
type report struct {
	GridPoints    int     `json:"grid_points"`
	SweepColdMS   float64 `json:"sweep_cold_ms"`
	SweepWarmMS   float64 `json:"sweep_warm_ms"`
	RunBaselineMS float64 `json:"run_baseline_ms"`
	// Speedup is run_baseline_ms / sweep_warm_ms: both sides on warm
	// process-global caches, isolating the sweep machinery itself.
	Speedup float64 `json:"speedup"`
	// SpeedupCold is run_baseline_ms / sweep_cold_ms: the sweep
	// additionally paying all kernel calibrations the baseline got for
	// free (it runs after the cold sweep warmed them).
	SpeedupCold float64 `json:"speedup_cold"`
	WarmRounds  int     `json:"warm_rounds"`
	Clients     int     `json:"clients"`
	SweepQPS    float64 `json:"sweep_qps"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	RowP50MS    float64 `json:"row_p50_ms"`
	RowP99MS    float64 `json:"row_p99_ms"`
}

func main() {
	pointsMin := flag.Int("points-min", 100, "fail unless the grid expands to at least this many points")
	clients := flag.Int("clients", 4, "concurrent sweep clients in the steady-state phase")
	rounds := flag.Int("rounds", 8, "sweeps per client in the steady-state phase")
	asJSON := flag.Bool("json", false, "emit the report as JSON (the BENCH_pr8.json loadgen object)")
	flag.Parse()

	if gridPoints < *pointsMin {
		log.Fatalf("sweepload: grid has %d points, need >= %d", gridPoints, *pointsMin)
	}

	// Scenario 1 — cold sweep. Fresh server: empty result LRU, and on a
	// fresh process cold kernel/memo caches too.
	sweepSrv := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer sweepSrv.Close()
	start := time.Now()
	rows, _ := doSweep(sweepSrv.URL, grid)
	sweepCold := time.Since(start)
	if rows != gridPoints {
		log.Fatalf("sweepload: cold sweep streamed %d rows, want %d", rows, gridPoints)
	}

	// Scenario 2 — the same grid as independent sequential /v1/run
	// calls on a separate server with the result cache disabled: what a
	// client scripting N single-point queries pays. The process-global
	// kernel/memo caches are warm from scenario 1, biasing this baseline
	// to be FASTER than a truly cold client loop — the recorded speedup
	// is a floor.
	runSrv := httptest.NewServer(serve.New(serve.Config{CacheEntries: -1}).Handler())
	defer runSrv.Close()
	start = time.Now()
	runBaseline(runSrv.URL)
	baseline := time.Since(start)

	// Scenario 2b — warm sweep on a third, fresh server: result LRU
	// empty (every point executes), kernel/memo caches warm like the
	// baseline's. This is the apples-to-apples orchestration comparison.
	warmSrv := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer warmSrv.Close()
	start = time.Now()
	rows, _ = doSweep(warmSrv.URL, grid)
	sweepWarm := time.Since(start)
	if rows != gridPoints {
		log.Fatalf("sweepload: warm sweep streamed %d rows, want %d", rows, gridPoints)
	}

	// Scenario 3 — steady state: concurrent clients replaying the same
	// sweep against the (now warm) sweep server measure the served QPS
	// and per-row latency of the cache-hit path.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var allRows int
	var allRowTimes []float64
	start = time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < *rounds; r++ {
				n, times := doSweep(sweepSrv.URL, grid)
				mu.Lock()
				allRows += n
				allRowTimes = append(allRowTimes, times...)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	steady := time.Since(start)

	sort.Float64s(allRowTimes)
	rep := report{
		GridPoints:    gridPoints,
		SweepColdMS:   ms(sweepCold),
		SweepWarmMS:   ms(sweepWarm),
		RunBaselineMS: ms(baseline),
		Speedup:       baseline.Seconds() / sweepWarm.Seconds(),
		SpeedupCold:   baseline.Seconds() / sweepCold.Seconds(),
		WarmRounds:    *rounds,
		Clients:       *clients,
		SweepQPS:      float64(*clients**rounds) / steady.Seconds(),
		RowsPerSec:    float64(allRows) / steady.Seconds(),
		RowP50MS:      quantile(allRowTimes, 0.50),
		RowP99MS:      quantile(allRowTimes, 0.99),
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("grid points          %d\n", rep.GridPoints)
	fmt.Printf("cold sweep           %.1f ms (pays all kernel calibrations)\n", rep.SweepColdMS)
	fmt.Printf("warm sweep           %.1f ms (fresh server, warm process caches)\n", rep.SweepWarmMS)
	fmt.Printf("sequential /v1/run   %.1f ms (warm process caches)\n", rep.RunBaselineMS)
	fmt.Printf("speedup              %.2fx warm-vs-warm (%.2fx with the sweep cold)\n", rep.Speedup, rep.SpeedupCold)
	fmt.Printf("steady state         %d clients x %d sweeps: %.1f sweeps/s, %.0f rows/s, row p50 %.3f ms, p99 %.3f ms\n",
		rep.Clients, rep.WarmRounds, rep.SweepQPS, rep.RowsPerSec, rep.RowP50MS, rep.RowP99MS)
	if rep.Speedup < 3 {
		fmt.Println("WARNING: speedup below the 3x claim")
		os.Exit(1)
	}
}

// doSweep posts one sweep and returns the result-row count and per-row
// wall-clock arrival offsets (ms since the request started) — a client's
// view of streaming latency.
func doSweep(base, body string) (int, []float64) {
	start := time.Now()
	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatalf("sweepload: sweep: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("sweepload: sweep status %d", resp.StatusCode)
	}
	rows := 0
	var times []float64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			continue
		}
		var row sweepRow
		if err := json.Unmarshal(line, &row); err != nil {
			log.Fatalf("sweepload: bad row: %v", err)
		}
		if row.Error != nil {
			log.Fatalf("sweepload: row %d errored: %v", row.Index, row.Error)
		}
		rows++
		times = append(times, ms(time.Since(start)))
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("sweepload: reading sweep: %v", err)
	}
	return rows, times
}

// runBaseline issues the expanded grid as sequential /v1/run calls,
// mirroring the sweep's scheme-major/n/p/m/steps expansion order.
func runBaseline(base string) {
	for _, n := range []int{64, 128, 256} {
		for _, p := range []int{2, 4, 8, 16} {
			for _, m := range []int{4, 8, 16, 32} {
				for _, steps := range []int{16, 32, 64} {
					body := fmt.Sprintf(`{"scheme": "multi", "d": 1, "n": %d, "p": %d, "m": %d, "steps": %d}`, n, p, m, steps)
					resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
					if err != nil {
						log.Fatalf("sweepload: run: %v", err)
					}
					if resp.StatusCode != http.StatusOK {
						log.Fatalf("sweepload: run status %d (n=%d p=%d m=%d steps=%d)", resp.StatusCode, n, p, m, steps)
					}
					var out runResult
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						log.Fatalf("sweepload: run decode: %v", err)
					}
					resp.Body.Close()
					if out.Time <= 0 {
						log.Fatalf("sweepload: run returned nonpositive time")
					}
				}
			}
		}
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// quantile returns the q-quantile of sorted xs (nearest-rank).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
