// Command bsmptop is a terminal dashboard over a running bsmpd: it
// polls GET /v1/runs (the run registry) and GET /metrics.prom (the
// Prometheus surface) and renders a top-style view — serving counters,
// latency quantiles, flight-recorder occupancy, and a run table with
// live progress bars for in-flight simulations (vertex counters against
// the n*steps guest size).
//
// Usage:
//
//	go run ./cmd/bsmptop [-addr http://localhost:8080] [-interval 2s] [-n 20] [-once]
//
// -once renders a single frame and exits (scriptable; no screen
// clearing), which is also how the smoke suite exercises it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"bsmp/internal/obs"
	"bsmp/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "bsmpd base URL")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	rows := flag.Int("n", 20, "run-table rows to display")
	once := flag.Bool("once", false, "render one frame and exit")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	for {
		frame, err := buildFrame(client, strings.TrimRight(*addr, "/"), *rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsmptop: %v\n", err)
			if *once {
				os.Exit(1)
			}
		} else {
			if !*once {
				fmt.Print("\x1b[H\x1b[2J") // home + clear
			}
			os.Stdout.WriteString(frame)
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// buildFrame fetches both surfaces and renders one dashboard frame.
func buildFrame(client *http.Client, base string, rows int) (string, error) {
	var runs serve.RunsResponse
	if err := fetchJSON(client, base+"/v1/runs?limit="+strconv.Itoa(rows), &runs); err != nil {
		return "", fmt.Errorf("fetching /v1/runs: %w", err)
	}
	resp, err := client.Get(base + "/metrics.prom")
	if err != nil {
		return "", fmt.Errorf("fetching /metrics.prom: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("reading /metrics.prom: %w", err)
	}
	prom := parseProm(string(body))
	var sb strings.Builder
	renderDashboard(&sb, base, runs, prom, rows)
	return sb.String(), nil
}

func fetchJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// parseProm reads Prometheus text exposition into a flat map keyed by
// the full series name including its label set (e.g.
// `bsmpd_runs_active{state="running",scheme="multi"}`). Comment and
// blank lines are skipped; unparsable values are dropped.
func parseProm(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; the series name
		// (which may itself contain spaces inside label values) is the rest.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	return out
}

// promSum adds every series of one metric name across its label sets.
func promSum(prom map[string]float64, name string) float64 {
	var sum float64
	for k, v := range prom {
		if k == name || strings.HasPrefix(k, name+"{") {
			sum += v
		}
	}
	return sum
}

// progressBar renders `[#####.....]  50%` for done of total cells. An
// unknown total (<= 0) renders an indeterminate bar.
func progressBar(done, total int64, width int) string {
	if width < 1 {
		width = 1
	}
	if total <= 0 {
		return "[" + strings.Repeat("~", width) + "]   ?%"
	}
	frac := float64(done) / float64(total)
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	filled := int(frac*float64(width) + 0.5)
	return fmt.Sprintf("[%s%s] %3.0f%%",
		strings.Repeat("#", filled), strings.Repeat(".", width-filled), frac*100)
}

// runTarget extracts the guest size n*steps from a record's canonical
// params (an any that decodes as a JSON object client-side), the
// denominator for its progress bar. Returns 0 when unavailable.
func runTarget(params any) int64 {
	obj, ok := params.(map[string]any)
	if !ok {
		return 0
	}
	num := func(key string) int64 {
		switch v := obj[key].(type) {
		case float64:
			return int64(v)
		case json.Number:
			n, _ := v.Int64()
			return n
		}
		return 0
	}
	return num("n") * num("steps")
}

// renderDashboard writes one frame: header, counter strip, latency
// quantiles, registry occupancy, then the run table.
func renderDashboard(w io.Writer, base string, runs serve.RunsResponse, prom map[string]float64, rows int) {
	fmt.Fprintf(w, "bsmptop — %s — %d run(s) in registry\n\n", base, runs.Total)

	fmt.Fprintf(w, "serving   runs %.0f  cache %.0f/%.0f hit/miss  coalesced %.0f  shed %.0f  sweeps %.0f  streams %.0f\n",
		promSum(prom, "bsmpd_runs"),
		promSum(prom, "bsmpd_cache_hits"), promSum(prom, "bsmpd_cache_misses"),
		promSum(prom, "bsmpd_coalesced"), promSum(prom, "bsmpd_queue_rejects"),
		promSum(prom, "bsmpd_sweeps"), promSum(prom, "bsmpd_run_events_streams"))
	fmt.Fprintf(w, "latency   p50 %.4fs  p95 %.4fs  p99 %.4fs\n",
		prom[`bsmpd_run_latency_seconds_quantile{q="0.5"}`],
		prom[`bsmpd_run_latency_seconds_quantile{q="0.95"}`],
		prom[`bsmpd_run_latency_seconds_quantile{q="0.99"}`])
	fmt.Fprintf(w, "registry  live %.0f  retained %.0f  completed done %.0f / cancelled %.0f / failed %.0f / shed %.0f\n",
		promSum(prom, "bsmpd_registry_live_runs"), promSum(prom, "bsmpd_registry_retained_runs"),
		prom[`bsmpd_runs_completed_total{state="done"}`],
		prom[`bsmpd_runs_completed_total{state="cancelled"}`],
		prom[`bsmpd_runs_completed_total{state="failed"}`],
		prom[`bsmpd_runs_completed_total{state="shed"}`])

	active := activeSeries(prom)
	if len(active) > 0 {
		fmt.Fprintf(w, "active    %s\n", strings.Join(active, "  "))
	}

	fmt.Fprintf(w, "\n%-20s %-6s %-8s %-10s %10s %9s  %s\n",
		"ID", "SRC", "SCHEME", "STATE", "VERTICES", "WALL", "PROGRESS")
	n := len(runs.Runs)
	if n > rows {
		n = rows
	}
	for _, info := range runs.Runs[:n] {
		fmt.Fprintln(w, runRow(info))
	}
}

// activeSeries collects the bsmpd_runs_active gauge's non-zero label
// sets as "state/scheme=count" strings, sorted for stable output.
func activeSeries(prom map[string]float64) []string {
	var out []string
	for k, v := range prom {
		if !strings.HasPrefix(k, "bsmpd_runs_active{") || v == 0 {
			continue
		}
		labels := strings.TrimSuffix(strings.TrimPrefix(k, "bsmpd_runs_active{"), "}")
		labels = strings.ReplaceAll(labels, `"`, "")
		labels = strings.ReplaceAll(labels, "state=", "")
		labels = strings.ReplaceAll(labels, "scheme=", "")
		labels = strings.ReplaceAll(labels, ",", "/")
		out = append(out, fmt.Sprintf("%s=%.0f", labels, v))
	}
	sort.Strings(out)
	return out
}

// runRow renders one run-table line. Terminal runs show a full (or
// failed) bar; live runs show vertex progress against n*steps.
func runRow(info obs.RunInfo) string {
	bar := ""
	switch info.State {
	case obs.RunDone:
		bar = progressBar(1, 1, 20)
	case obs.RunQueued:
		bar = "queued"
	case obs.RunCancelled, obs.RunFailed, obs.RunShed:
		bar = info.State
		if info.Error != "" {
			bar += ": " + truncate(info.Error, 40)
		}
	default: // running
		bar = progressBar(info.Vertices, runTarget(info.Params), 20)
	}
	return fmt.Sprintf("%-20s %-6s %-8s %-10s %10d %8.1fms  %s",
		truncate(info.ID, 20), info.Source, truncate(info.Scheme, 8), info.State,
		info.Vertices, info.WallMS, bar)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}
