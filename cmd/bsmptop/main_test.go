package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bsmp/internal/serve"
)

func TestParseProm(t *testing.T) {
	text := `# HELP bsmpd_runs something
# TYPE bsmpd_runs gauge
bsmpd_runs 7
bsmpd_runs_active{state="running",scheme="multi"} 2
bsmpd_run_latency_seconds_quantile{q="0.5"} 0.0123

garbage line without value
bsmpd_bad_value{x="y"} notanumber
`
	m := parseProm(text)
	if m["bsmpd_runs"] != 7 {
		t.Errorf("bsmpd_runs = %v, want 7", m["bsmpd_runs"])
	}
	if m[`bsmpd_runs_active{state="running",scheme="multi"}`] != 2 {
		t.Errorf("labeled gauge = %v, want 2", m[`bsmpd_runs_active{state="running",scheme="multi"}`])
	}
	if m[`bsmpd_run_latency_seconds_quantile{q="0.5"}`] != 0.0123 {
		t.Errorf("quantile = %v, want 0.0123", m[`bsmpd_run_latency_seconds_quantile{q="0.5"}`])
	}
	if _, ok := m[`bsmpd_bad_value{x="y"}`]; ok {
		t.Error("unparsable value survived")
	}
	if got := promSum(m, "bsmpd_runs_active"); got != 2 {
		t.Errorf("promSum(runs_active) = %v, want 2", got)
	}
	// promSum must not fold the _active series into the bare counter.
	if got := promSum(m, "bsmpd_runs"); got != 7 {
		t.Errorf("promSum(runs) = %v, want 7", got)
	}
}

func TestProgressBar(t *testing.T) {
	for _, tc := range []struct {
		done, total int64
		want        string
	}{
		{0, 10, "[..........]   0%"},
		{5, 10, "[#####.....]  50%"},
		{10, 10, "[##########] 100%"},
		{25, 10, "[##########] 100%"}, // overshoot clamps
		{3, 0, "[~~~~~~~~~~]   ?%"},   // unknown target
	} {
		if got := progressBar(tc.done, tc.total, 10); got != tc.want {
			t.Errorf("progressBar(%d, %d) = %q, want %q", tc.done, tc.total, got, tc.want)
		}
	}
}

func TestRunTarget(t *testing.T) {
	params := map[string]any{"n": float64(64), "steps": float64(16), "p": float64(4)}
	if got := runTarget(params); got != 1024 {
		t.Errorf("runTarget = %d, want 1024", got)
	}
	if got := runTarget(nil); got != 0 {
		t.Errorf("runTarget(nil) = %d, want 0", got)
	}
	if got := runTarget(map[string]any{"n": float64(64)}); got != 0 {
		t.Errorf("runTarget without steps = %d, want 0", got)
	}
}

// TestBuildFrameAgainstLiveServer renders a frame off a real in-process
// bsmpd after one completed run: the frame must show the run's record
// row, the completed-done counter, and the latency quantiles.
func TestBuildFrameAgainstLiveServer(t *testing.T) {
	s := serve.New(serve.Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/run", "application/json",
		strings.NewReader(`{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16}`))
	if err != nil {
		t.Fatalf("seed run: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed run status = %d", resp.StatusCode)
	}

	frame, err := buildFrame(srv.Client(), srv.URL, 20)
	if err != nil {
		t.Fatalf("buildFrame: %v", err)
	}
	for _, want := range []string{
		"bsmptop — " + srv.URL,
		"1 run(s) in registry",
		"completed done 1",
		"p50 ", "p99 ",
		"multi", "done", "[####################] 100%",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q\nframe:\n%s", want, frame)
		}
	}
}
