#!/usr/bin/env bash
# Topology lint: mesh geometry has exactly one home.
#
# The pluggable topology layer (internal/topology) owns grid geometry —
# coordinate mapping, integer roots, distances — and internal/network is
# the one facade allowed to re-export it (its Coord/Index methods
# delegate to the embedded Topology). Everything else must consume
# geometry through those two packages. This lint fails when a third
# definition creeps back in:
#
#   1. a method named Coord/Coord3/Index/Index3 over integer grid
#      coordinates defined outside internal/topology + internal/network
#      (lattice.Indexer's Index(p Point) maps lattice points, not grid
#      nodes, and is excluded by the int-signature anchor — as are call
#      sites like ma.Coord(i), which do not start with "func (");
#   2. a private integer-root helper (intSqrt/intCbrt) outside those two
#      packages (analytic.IntSqrtExact is the exported, panicking sibling
#      and intentionally distinct).
#
# Run from the repository root: scripts/topolint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

GEOM=$(grep -rnE 'func \([^)]*\) (Coord3?|Index3?)\([a-z, ]+ int\)' --include='*.go' . |
  grep -v '^\./internal/topology/' | grep -v '^\./internal/network/' || true)
if [ -n "$GEOM" ]; then
  echo "topolint: grid coordinate methods defined outside internal/topology + internal/network:" >&2
  echo "$GEOM" >&2
  fail=1
fi

ROOTS=$(grep -rnE '\b(intSqrt|intCbrt)\b' --include='*.go' . |
  grep -v '^\./internal/topology/' | grep -v '^\./internal/network/' || true)
if [ -n "$ROOTS" ]; then
  echo "topolint: private integer-root helpers referenced outside internal/topology + internal/network:" >&2
  echo "$ROOTS" >&2
  fail=1
fi

[ "$fail" = 0 ] || exit 1
echo "topolint: OK"
