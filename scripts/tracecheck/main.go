// Command tracecheck validates a traced /v1/run response piped to
// stdin (smoke.sh runs it against the live daemon). It passes when the
// timeline has at least one parent span whose children's virtual-time
// deltas sum to the parent's own vtime, and when a schedule span's
// vtime matches the response's time + prep_time — the end-to-end form
// of the telescoping checks in internal/simulate's unit tests.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

type span struct {
	Name     string             `json:"name"`
	DurNS    int64              `json:"dur_ns"`
	Attrs    map[string]float64 `json:"attrs"`
	Children []*span            `json:"children"`
}

type runResponse struct {
	Time     float64 `json:"time"`
	PrepTime float64 `json:"prep_time"`
	Trace    []*span `json:"trace"`
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var r runResponse
	if err := json.NewDecoder(os.Stdin).Decode(&r); err != nil {
		die("decoding response: %v", err)
	}
	if len(r.Trace) == 0 {
		die("response carries no trace spans")
	}

	const relTol = 1e-9
	total, telescoping := 0, 0
	scheduleOK := false
	full := r.Time + r.PrepTime
	var walk func(s *span)
	walk = func(s *span) {
		total++
		if len(s.Children) > 0 {
			parent := s.Attrs["vtime"]
			var sum float64
			for _, c := range s.Children {
				sum += c.Attrs["vtime"]
			}
			if parent > 0 && math.Abs(sum-parent) <= relTol*parent {
				telescoping++
			}
		}
		if s.Name == "schedule" && full > 0 && math.Abs(s.Attrs["vtime"]-full) <= relTol*full {
			scheduleOK = true
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, s := range r.Trace {
		walk(s)
	}
	if telescoping == 0 {
		die("no parent span's children sum to its vtime (%d spans)", total)
	}
	if !scheduleOK {
		die("no schedule span matches time+prep_time = %v", full)
	}
	fmt.Printf("tracecheck: OK (%d spans, %d telescoping parents)\n", total, telescoping)
}
