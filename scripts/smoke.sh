#!/usr/bin/env bash
# Daemon smoke test: build bsmpd, start it, and check the serving
# contract end to end —
#   - a valid query answers 200 with a simulation result;
#   - the identical repeat is served from the result cache (response
#     carries "cached":true and /metrics shows the expvar hit counter);
#   - an invalid tuple answers a structured 400 naming the offending
#     field, and the daemon stays healthy;
#   - a request that outlives its deadline answers 504 AND its worker
#     stops: runs_cancelled increments, the inflight_runs gauge returns
#     to zero (checked on a second daemon with a tiny -timeout);
#   - a /v1/sweep grid streams one NDJSON row per point plus a done
#     summary, the identical repeat is all cache hits, and a malformed
#     grid answers a structured 400;
#   - a multi-faulty run echoes the fault density with a fault report,
#     keys its own cache entry, and rejects densities outside [0, 1);
#   - every run carries a run_id joining it to the /v1/runs registry, the
#     cached repeat keeps the ORIGINAL run's id, the full record lands
#     terminal with per-phase durations, and a slow run's SSE stream
#     delivers a join snapshot, live progress events, and the terminal
#     done event (watched from the side, without disturbing the run);
#   - SIGTERM drains and exits cleanly.
# Run from the repository root: scripts/smoke.sh [port]
set -euo pipefail

PORT="${1:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/bsmpd"

fail() { echo "smoke: FAIL: $*" >&2; exit 1; }

go build -o "$BIN" ./cmd/bsmpd
"$BIN" -addr "127.0.0.1:$PORT" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' || fail "daemon never became healthy"

VALID='{"scheme": "multi", "d": 1, "n": 256, "p": 8, "m": 16, "steps": 64}'
R1=$(curl -fsS -X POST --data "$VALID" "$BASE/v1/run") || fail "valid run request errored"
echo "$R1" | grep -q '"cached":false' || fail "first run unexpectedly cached: $R1"
echo "$R1" | grep -q '"time":' || fail "run response missing time: $R1"

R2=$(curl -fsS -X POST --data "$VALID" "$BASE/v1/run") || fail "repeated run request errored"
echo "$R2" | grep -q '"cached":true' || fail "identical repeat not served from cache: $R2"

METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '"cache_hits": 1' || fail "expvar cache_hits != 1: $METRICS"

# Prometheus endpoint: every non-comment line must be `name{labels} value`
# (promtool-free regex check), and the run above must have landed in the
# latency histogram.
PROM=$(curl -fsS "$BASE/metrics.prom")
BADPROM=$(echo "$PROM" | grep -vE '^#' | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$' || true)
[ -z "$BADPROM" ] || fail "malformed /metrics.prom line(s): $BADPROM"
echo "$PROM" | grep -q '^bsmpd_run_latency_seconds_bucket{le="+Inf"} ' || fail "latency histogram missing +Inf bucket"
echo "$PROM" | grep -qE '^bsmpd_run_latency_seconds_count [1-9]' || fail "latency histogram empty after a run"
echo "$PROM" | grep -q '^# TYPE bsmpd_queue_wait_seconds histogram' || fail "queue-wait histogram missing"

# Θ-model round trip: the multi-theta scheme accepts the theta config
# field, echoes it, runs slower than its Θ = 1 default (same tuple,
# distinct cache entries), and a sub-1 ratio answers a structured 400.
THETA1='{"scheme": "multi-theta", "d": 1, "n": 256, "p": 8, "m": 16, "steps": 64}'
THETA3='{"scheme": "multi-theta", "d": 1, "n": 256, "p": 8, "m": 16, "steps": 64, "config": {"theta": 3, "theta_seed": 7}}'
T1=$(curl -fsS -X POST --data "$THETA1" "$BASE/v1/run") || fail "multi-theta default run errored"
echo "$T1" | grep -q '"cached":false' || fail "multi-theta default unexpectedly cached: $T1"
T3=$(curl -fsS -X POST --data "$THETA3" "$BASE/v1/run") || fail "multi-theta theta=3 run errored"
echo "$T3" | grep -q '"theta":3' || fail "theta not echoed: $T3"
echo "$T3" | grep -q '"cached":false' || fail "theta=3 aliased the default run's cache entry: $T3"
TBAD="$(mktemp)"
TSTATUS=$(curl -s -o "$TBAD" -w '%{http_code}' -X POST --data '{"scheme": "multi-theta", "d": 1, "n": 256, "p": 8, "m": 16, "steps": 64, "config": {"theta": 0.5}}' "$BASE/v1/run")
[ "$TSTATUS" = 400 ] || fail "theta=0.5 got status $TSTATUS, want 400: $(cat "$TBAD")"
grep -q '"field":"theta"' "$TBAD" || fail "400 body does not name field theta: $(cat "$TBAD")"
# (capture before grep -q: under pipefail, grep -q's early exit would
# SIGPIPE curl and fail the pipeline spuriously)
PROM=$(curl -fsS "$BASE/metrics.prom")
echo "$PROM" | grep -q '^bsmpd_theta_run_latency_seconds_bucket{le="+Inf"} ' || fail "theta latency histogram missing"

# Fault-regime round trip: the multi-faulty scheme accepts the faults
# config field, echoes it together with a fault report, keys a distinct
# cache entry from the fault-free run on the same tuple, and an
# out-of-range density answers a structured 400.
FAULT0='{"scheme": "multi-faulty", "d": 1, "n": 256, "p": 8, "m": 16, "steps": 64}'
FAULT1='{"scheme": "multi-faulty", "d": 1, "n": 256, "p": 8, "m": 16, "steps": 64, "config": {"faults": 0.25, "fault_seed": 3}}'
F0=$(curl -fsS -X POST --data "$FAULT0" "$BASE/v1/run") || fail "multi-faulty zero-fault run errored"
echo "$F0" | grep -q '"cached":false' || fail "multi-faulty zero-fault unexpectedly cached: $F0"
F1=$(curl -fsS -X POST --data "$FAULT1" "$BASE/v1/run") || fail "multi-faulty faults=0.25 run errored"
echo "$F1" | grep -q '"faults":0.25' || fail "fault density not echoed: $F1"
echo "$F1" | grep -q '"fault_report":' || fail "fault report missing: $F1"
echo "$F1" | grep -q '"cached":false' || fail "faults=0.25 aliased the zero-fault cache entry: $F1"
FBAD="$(mktemp)"
FSTATUS=$(curl -s -o "$FBAD" -w '%{http_code}' -X POST --data '{"scheme": "multi-faulty", "d": 1, "n": 256, "p": 8, "m": 16, "steps": 64, "config": {"faults": 1.5}}' "$BASE/v1/run")
[ "$FSTATUS" = 400 ] || fail "faults=1.5 got status $FSTATUS, want 400: $(cat "$FBAD")"
grep -q '"field":"faults"' "$FBAD" || fail "400 body does not name field faults: $(cat "$FBAD")"

# Traced run: ?trace=1 returns the span timeline inline and bypasses the
# cache; tracecheck verifies children vtimes telescope to their parents
# and a schedule span matches time + prep_time.
TRACED=$(curl -fsS -X POST --data "$VALID" "$BASE/v1/run?trace=1") || fail "traced run request errored"
echo "$TRACED" | grep -q '"cached":false' || fail "traced run served from cache: $TRACED"
echo "$TRACED" | grep -q '"trace":' || fail "traced response carries no timeline"
echo "$TRACED" | go run ./scripts/tracecheck || fail "trace timeline inconsistent"

# Run registry round trip: the first run's run_id resolves to a full
# terminal record with per-phase wall durations, the cached repeat kept
# the ORIGINAL execution's id, and the registry surfaces on both metric
# endpoints.
RID=$(echo "$R1" | sed -En 's/.*"run_id":"([^"]+)".*/\1/p')
[ -n "$RID" ] || fail "run response carries no run_id: $R1"
RID2=$(echo "$R2" | sed -En 's/.*"run_id":"([^"]+)".*/\1/p')
[ "$RID2" = "$RID" ] || fail "cached repeat run_id $RID2 != original $RID"
REC=$(curl -fsS "$BASE/v1/runs/$RID") || fail "run record fetch errored"
echo "$REC" | grep -q '"state":"done"' || fail "record not terminal done: $REC"
echo "$REC" | grep -q '"phase_times":' || fail "record missing phase durations: $REC"
echo "$REC" | grep -q '"cache_hits":1' || fail "cached repeat not credited to the record: $REC"
DONELIST=$(curl -fsS "$BASE/v1/runs?state=done")
echo "$DONELIST" | grep -q "\"$RID\"" || fail "done listing missing $RID"
PROMR=$(curl -fsS "$BASE/metrics.prom")
echo "$PROMR" | grep -q '^bsmpd_runs_completed_total{state="done"} [1-9]' || fail "registry completed counter missing"
echo "$PROMR" | grep -q '^bsmpd_run_phase_seconds_bucket{phase=' || fail "per-phase histogram missing"
echo "$PROMR" | grep -q '^bsmpd_run_latency_seconds_quantile{q="0.99"} ' || fail "latency quantile gauges missing"

# SSE round trip: watch a slow run from the side. The stream must open
# with a join snapshot, deliver at least one progress event while the
# simulation advances, and close with the terminal done event; the
# watched run itself must complete normally (the watcher is an observer,
# never an owner).
SLOW='{"scheme": "blocked", "d": 2, "n": 4096, "p": 1, "m": 4, "steps": 128}'
SLOWOUT="$(mktemp)"
curl -fsS -X POST --data "$SLOW" "$BASE/v1/run" > "$SLOWOUT" &
SLOWPID=$!
SSEID=""
for _ in $(seq 1 100); do
  SSEID=$(curl -fsS "$BASE/v1/runs?state=running&source=run" | sed -En 's/.*"id":"([^"]+)".*/\1/p')
  [ -n "$SSEID" ] && break
  sleep 0.05
done
[ -n "$SSEID" ] || fail "slow run never appeared in /v1/runs?state=running"
SSE="$(mktemp)"
curl -fsS -N --max-time 60 "$BASE/v1/runs/$SSEID/events?poll_ms=50" > "$SSE" || fail "SSE stream errored"
grep -q '^event: snapshot' "$SSE" || fail "SSE stream missing join snapshot: $(cat "$SSE")"
grep -q '^event: progress' "$SSE" || fail "SSE stream delivered no progress event: $(cat "$SSE")"
grep -q '^event: done' "$SSE" || fail "SSE stream missing terminal done event: $(tail -5 "$SSE")"
wait "$SLOWPID" || fail "watched run errored"
grep -q '"time":' "$SLOWOUT" || fail "watched run returned no result: $(cat "$SLOWOUT")"

# bsmptop single-frame render against the live daemon.
TOPFRAME=$(go run ./cmd/bsmptop -addr "$BASE" -once) || fail "bsmptop -once exited non-zero"
echo "$TOPFRAME" | grep -q 'bsmptop — ' || fail "bsmptop -once rendered no dashboard header: $TOPFRAME"

# Request IDs are stamped on every response.
curl -fsSI "$BASE/healthz" | grep -qi '^x-request-id:' || fail "missing X-Request-Id header"

INVALID='{"scheme": "naive", "d": 2, "n": 10, "p": 1, "m": 4, "steps": 4}'
ERRBODY="$(mktemp)"
STATUS=$(curl -s -o "$ERRBODY" -w '%{http_code}' -X POST --data "$INVALID" "$BASE/v1/run")
[ "$STATUS" = 400 ] || fail "invalid tuple got status $STATUS, want 400"
grep -q '"kind":"param"' "$ERRBODY" || fail "400 body not a structured param error: $(cat "$ERRBODY")"
grep -q '"field":"n"' "$ERRBODY" || fail "400 body does not name field n: $(cat "$ERRBODY")"

curl -fsS "$BASE/v1/bounds?d=1&n=4096&p=16&m=4" | grep -q '"slowdown"' || fail "bounds endpoint broken"
curl -fsS "$BASE/healthz" >/dev/null || fail "daemon unhealthy after invalid request"

# Sweep round trip: an 8-point grid (p range x m list) streams 8 result
# rows plus a terminal done summary; the identical repeat is served
# entirely from the result cache; a grid with a non-dividing p answers a
# structured 400 naming the offending point.
SWEEP='{"schemes": ["multi"], "d": 1, "n": [256], "p": {"from": 2, "to": 16, "mul": 2}, "m": [4, 16], "steps": 32}'
S1="$(mktemp)"
curl -fsS -N -X POST --data "$SWEEP" "$BASE/v1/sweep" > "$S1" || fail "sweep request errored"
ROWS=$(grep -c '"result"' "$S1" || true)
[ "$ROWS" = 8 ] || fail "sweep streamed $ROWS result rows, want 8: $(cat "$S1")"
grep -q '"done":true' "$S1" || fail "sweep missing done summary: $(cat "$S1")"
grep -q '"errors":0' "$S1" || fail "sweep reported errors: $(cat "$S1")"
S2="$(mktemp)"
curl -fsS -N -X POST --data "$SWEEP" "$BASE/v1/sweep" > "$S2" || fail "repeat sweep errored"
HITS=$(grep -c '"cached":true' "$S2" || true)
[ "$HITS" = 8 ] || fail "repeat sweep had $HITS cache hits, want 8: $(cat "$S2")"
SBAD="$(mktemp)"
SSTATUS=$(curl -s -o "$SBAD" -w '%{http_code}' -X POST --data '{"schemes": ["multi"], "d": 1, "n": [256], "p": [7], "m": [4], "steps": 32}' "$BASE/v1/sweep")
[ "$SSTATUS" = 400 ] || fail "malformed grid got status $SSTATUS, want 400: $(cat "$SBAD")"
grep -q '"kind":"param"' "$SBAD" || fail "sweep 400 not a structured param error: $(cat "$SBAD")"
grep -q 'grid point' "$SBAD" || fail "sweep 400 does not name the offending grid point: $(cat "$SBAD")"
MSWEEP=$(curl -fsS "$BASE/metrics")
echo "$MSWEEP" | grep -q '"sweep_rows": 16' || fail "sweep_rows counter wrong after two sweeps"
PROMSW=$(curl -fsS "$BASE/metrics.prom")
echo "$PROMSW" | grep -q '^bsmpd_sweep_row_latency_seconds_bucket{le="+Inf"} ' || fail "sweep row latency histogram missing"

# Deadline cancellation: a second daemon with a tiny request budget. The
# expired request must answer 504 AND actually stop its worker — the
# cancelled-runs counter increments and the in-flight gauge drops back
# to zero, instead of the simulation burning CPU to completion.
PORT2=$((PORT + 1))
BASE2="http://127.0.0.1:$PORT2"
"$BIN" -addr "127.0.0.1:$PORT2" -timeout 150ms &
PID2=$!
trap 'kill "$PID" "$PID2" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  curl -fsS "$BASE2/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
HEAVY='{"scheme": "blocked", "d": 2, "n": 4096, "p": 1, "m": 4, "steps": 128}'
DBODY="$(mktemp)"
DSTATUS=$(curl -s -o "$DBODY" -w '%{http_code}' -X POST --data "$HEAVY" "$BASE2/v1/run")
[ "$DSTATUS" = 504 ] || fail "deadline-expired run got status $DSTATUS, want 504: $(cat "$DBODY")"
grep -q '"kind":"deadline"' "$DBODY" || fail "504 body not a deadline error: $(cat "$DBODY")"
CANCELLED=""
M2=""
for _ in $(seq 1 50); do
  M2=$(curl -fsS "$BASE2/metrics")
  if echo "$M2" | grep -q '"runs_cancelled": [1-9]' && echo "$M2" | grep -q '"inflight_runs": 0'; then
    CANCELLED=yes
    break
  fi
  sleep 0.1
done
[ -n "$CANCELLED" ] || fail "cancelled run not reflected in metrics: $M2"
kill -TERM "$PID2"
wait "$PID2" || fail "deadline daemon exited non-zero after SIGTERM"

kill -TERM "$PID"
wait "$PID" || fail "daemon exited non-zero after SIGTERM"
trap - EXIT
echo "smoke: OK"
