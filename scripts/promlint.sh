#!/usr/bin/env bash
# Metrics lint: the serving layer's expvar counters and the Prometheus
# surface must stay in sync.
#
#   1. Every counter incremented anywhere in internal/serve
#      (vars.Add("name", ...)) must be pre-declared in
#      internal/serve/counters.go — declaration is what makes the series
#      render on /metrics.prom (and /metrics) as 0 from boot instead of
#      materializing only after its first increment, which would read as
#      a missing series to scrape-time alerting.
#   2. Every declared counter must have at least one increment site —
#      a declared-but-never-incremented name is dead telemetry.
#
# TestMetricsPromRegistrySeries pins the runtime half of this contract
# (every declared counter actually renders on /metrics.prom); this lint
# pins the source-level half without needing to build anything.
#
# Run from the repository root: scripts/promlint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

DECL=internal/serve/counters.go
[ -f "$DECL" ] || { echo "promlint: FAIL: $DECL missing" >&2; exit 1; }

used=$(grep -rhoE 'vars\.Add\("[a-z0-9_]+"' internal/serve/*.go \
  | sed -E 's/.*"([a-z0-9_]+)".*/\1/' | sort -u)
declared=$(grep -oE '"[a-z0-9_]+"' "$DECL" | tr -d '"' | sort -u)

fail=0
for name in $used; do
  if ! grep -qx "$name" <<<"$declared"; then
    echo "promlint: counter \"$name\" is incremented but not declared in $DECL" >&2
    fail=1
  fi
done
for name in $declared; do
  if ! grep -qx "$name" <<<"$used"; then
    echo "promlint: counter \"$name\" is declared in $DECL but never incremented" >&2
    fail=1
  fi
done

[ "$fail" = 0 ] || { echo "promlint: FAIL" >&2; exit 1; }
echo "promlint: OK ($(wc -w <<<"$declared" | tr -d ' ') counters declared and incremented)"
