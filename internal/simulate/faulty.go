package simulate

import (
	"context"
	"fmt"

	"bsmp/internal/network"
	"bsmp/internal/topology"
)

// This file lands the fault-masked multiprocessor regime on the
// topology layer: the multi-faulty scheme runs the paper's Theorem 4 /
// Theorem 1 machinery on a mesh decorated with a static, seeded fault
// mask (topology.FaultMask — dead processors and dead memory cells
// fixed at construction). The scheme plans around the faults rather
// than modeling per-message routing:
//
//   - the surviving machine is operated as the largest fault-free
//     sub-configuration: pEff = the largest d-shaped divisor of n not
//     exceeding the live processor count, so the existing rearrangement
//     machinery applies verbatim — MultiD1 builds its π = π2·π1 strip
//     permutation (internal/perm) for q = n/s strips over pEff
//     processors, which is exactly the Regime-1 rearrangement "around"
//     the dead modules: the image simply never lands on them;
//   - every distance-proportional charge is stretched by the mask's
//     detour bound (DetourFactor: routes steering around dead regions
//     pay at most 1 + 2·MaxDetour extra hops per straight hop);
//   - every memory-image traversal is stretched by the packing
//     overhead (MemOverhead: a module that lost D of its C cells holds
//     its share in C−D cells).
//
// Both stretch factors are exactly 1.0 at density 0, and pEff = p when
// nothing is dead (p is a d-shaped divisor of n by validation), so a
// zero-density multi-faulty run is bit-identical to the lockstep multi
// scheme — the golden tests pin this. The degenerate pEff = 1 case
// falls back to the uniprocessor Theorem 3 machinery like multi does;
// that fallback runs no message schedule, so the stretch factors have
// nothing to multiply and are intentionally not applied there.

// FaultReport carries the fault-mask accounting of a multi-faulty run.
type FaultReport struct {
	// Density and Seed echo the sampled fault configuration.
	Density float64 `json:"density"`
	Seed    uint64  `json:"seed"`
	// DeadProcs counts dead processors (a node whose cells all died is
	// counted here too); LiveProcs = p − DeadProcs.
	DeadProcs int `json:"dead_procs"`
	LiveProcs int `json:"live_procs"`
	// DeadCells counts dead memory cells on live nodes.
	DeadCells int `json:"dead_cells"`
	// EffectiveP is the planned sub-configuration size: the largest
	// d-shaped divisor of n not exceeding LiveProcs.
	EffectiveP int `json:"effective_p"`
	// DistStretch and MemStretch are the planning factors applied to
	// distance-proportional and image-traversal charges (1.0 = none).
	DistStretch float64 `json:"dist_stretch"`
	MemStretch  float64 `json:"mem_stretch"`
}

// faultPlan is the planning outcome of sampling a fault mask: the
// effective processor count and the two stretch factors the cost
// formulas consume.
type faultPlan struct {
	mask    *topology.FaultMask
	pEff    int
	distMul float64
	memMul  float64
}

// planFaults samples the fault mask for a (d, n, p, m) host at the
// given density and seed and derives the plan. The caller validates the
// tuple (d-shaped n and p, p | n, density in [0, 1)) first; the only
// error escaping a validated tuple is a mask that leaves no live
// processor.
func planFaults(d, n, p, m int, density float64, seed uint64) (faultPlan, error) {
	base := topology.NewMesh(d, n, p)
	mask, err := topology.NewFaultMask(base, density, seed, m*(n/p))
	if err != nil {
		return faultPlan{}, fmt.Errorf("simulate: %w", err)
	}
	return faultPlan{
		mask:    mask,
		pEff:    largestShapedDivisor(d, n, mask.Alive()),
		distMul: mask.DetourFactor(),
		memMul:  mask.MemOverhead(),
	}, nil
}

// report renders the plan for the result's fault accounting.
func (fp faultPlan) report() *FaultReport {
	return &FaultReport{
		Density:     fp.mask.Density(),
		Seed:        fp.mask.Seed(),
		DeadProcs:   fp.mask.DeadProcs(),
		LiveProcs:   fp.mask.Alive(),
		DeadCells:   fp.mask.TotalDeadCells(),
		EffectiveP:  fp.pEff,
		DistStretch: fp.distMul,
		MemStretch:  fp.memMul,
	}
}

// largestShapedDivisor returns the largest divisor of n that is at most
// limit and a d-shaped processor count (any divisor for d = 1, a
// perfect square for d = 2, a cube for d = 3). At least 1 always
// qualifies, so a plan exists whenever one processor survives.
func largestShapedDivisor(d, n, limit int) int {
	if limit > n {
		limit = n
	}
	for k := limit; k > 1; k-- {
		if n%k != 0 {
			continue
		}
		if d == 2 && !isSquare(k) {
			continue
		}
		if d == 3 && !isCube(k) {
			continue
		}
		return k
	}
	return 1
}

// multiFaultyScheme registers the fault-masked variant of multi for one
// dimension; see the file comment for the regime. Like multi it is
// lockstep-only (Θ belongs to multi-theta), and it additionally
// requires a d-shaped p so the fault mask samples over the actual host
// mesh geometry.
func multiFaultyScheme(d int) Scheme {
	return Scheme{
		Name: "multi-faulty", D: d, Multiproc: true,
		Description: "multi on a statically fault-masked mesh: largest live sub-mesh, charges stretched by detour and packing bounds",
		Validate: func(n, p, m, steps int, cfg SchemeConfig) *ParamError {
			if cfg.Multi.Theta != 0 {
				return perrF("multi-faulty", "theta", "lockstep scheme takes no delay ratio; use scheme multi-theta", cfg.Multi.Theta)
			}
			if e := validateFaults("multi-faulty", cfg.Multi.Faults); e != nil {
				return e
			}
			if e := shapeError("multi-faulty", "n", d, n); e != nil {
				return e
			}
			return shapeError("multi-faulty", "p", d, p)
		},
		Run: func(ctx context.Context, n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
			plan, err := planFaults(d, n, p, m, cfg.Multi.Faults, cfg.Multi.FaultSeed)
			if err != nil {
				return MultiResult{}, err
			}
			opts := cfg.Multi
			opts.Faults, opts.FaultSeed = 0, 0 // consumed: the plan carries them
			opts.faultDistMul, opts.faultMemMul = plan.distMul, plan.memMul
			var res MultiResult
			switch d {
			case 1:
				res, err = MultiD1Context(ctx, n, plan.pEff, m, steps, prog, opts)
			case 2:
				res, err = MultiD2Context(ctx, n, plan.pEff, m, steps, prog, opts)
			default:
				res, err = MultiD3Context(ctx, n, plan.pEff, m, steps, prog, opts)
			}
			if err != nil {
				return MultiResult{}, err
			}
			res.Faults = plan.report()
			return res, nil
		},
	}
}
