package simulate

import (
	"bsmp/internal/analytic"
	"testing"
)

func TestMultiD2Functional(t *testing.T) {
	for _, tc := range []struct{ n, p, m, steps int }{
		{64, 4, 1, 8}, {64, 4, 4, 8}, {256, 16, 2, 8},
	} {
		side := analytic.IntSqrtExact(tc.n)
		prog := netProg(side)
		res, err := MultiD2(tc.n, tc.p, tc.m, tc.steps, prog, Multi2Options{})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if err := res.Verify(2, tc.n, tc.m, prog); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if res.Time <= 0 || res.Span < 2 {
			t.Fatalf("%+v: time %v span %d", tc, res.Time, res.Span)
		}
	}
}

func TestMultiD2MoreProcessorsFaster(t *testing.T) {
	prog := netProg(16)
	n, m, steps := 256, 2, 16
	t4, err := MultiD2(n, 4, m, steps, prog, Multi2Options{})
	if err != nil {
		t.Fatal(err)
	}
	t16, err := MultiD2(n, 16, m, steps, prog, Multi2Options{})
	if err != nil {
		t.Fatal(err)
	}
	if t16.Time >= t4.Time {
		t.Errorf("p=16 (%v) not faster than p=4 (%v)", t16.Time, t4.Time)
	}
}

func TestMultiD2ChosenSpanBeatsOverrides(t *testing.T) {
	// The internally optimized span should be at least as good as any
	// forced power-of-two span (it was chosen by minimizing).
	prog := netProg(32)
	n, p, m, steps := 1024, 16, 4, 16
	opt, err := MultiD2(n, p, m, steps, prog, Multi2Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 8} {
		forced, err := MultiD2(n, p, m, steps, prog, Multi2Options{SpanOverride: s})
		if err != nil {
			t.Fatal(err)
		}
		if opt.Time > forced.Time*1.001 {
			t.Errorf("optimized span %d time %v worse than forced span %d time %v",
				opt.Span, opt.Time, s, forced.Time)
		}
	}
}

func TestMultiD2RearrangementHelps(t *testing.T) {
	prog := netProg(32)
	n, p, m, steps := 1024, 16, 8, 16
	full, err := MultiD2(n, p, m, steps, prog, Multi2Options{})
	if err != nil {
		t.Fatal(err)
	}
	noRe, err := MultiD2(n, p, m, steps, prog, Multi2Options{NoRearrange: true})
	if err != nil {
		t.Fatal(err)
	}
	if noRe.Time <= full.Time {
		t.Errorf("no-rearrange %v not worse than full %v", noRe.Time, full.Time)
	}
}

func TestMultiD2MeasuredATracksTheoremShapeD2(t *testing.T) {
	// The d = 2 analog of the headline: normalized A_meas(m) within a
	// constant band of Theorem 1's d = 2 A across ranges 2-4.
	n, p, steps := 1024, 16, 16
	prog := netProg(32)
	ms := []int{4, 8, 32, 64}
	ref := 8
	ameas := make(map[int]float64)
	for _, m := range ms {
		res, err := MultiD2(n, p, m, steps, prog, Multi2Options{})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		tn := GuestTime(2, n, m, steps, prog)
		ameas[m] = float64(res.Time) / float64(tn) / (float64(n) / float64(p))
	}
	for _, m := range ms {
		normMeas := ameas[m] / ameas[ref]
		normBound := analytic.A(2, n, m, p) / analytic.A(2, n, ref, p)
		r := normMeas / normBound
		if r < 1.0/8 || r > 8 {
			t.Errorf("m=%d: normalized A_meas %v vs bound %v (ratio %v) outside 8x band",
				m, normMeas, normBound, r)
		}
	}
}
