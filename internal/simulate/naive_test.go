package simulate

import (
	"bsmp/internal/analytic"
	"bsmp/internal/guest"
	"bsmp/internal/network"
	"math"
	"testing"
)

func netProg(side int) network.Program {
	return guest.AsNetwork{G: guest.MixCA{Seed: 9}, Side: side}
}

func TestNaiveFunctionalD1(t *testing.T) {
	for _, tc := range []struct{ n, p, m, steps int }{
		{8, 1, 1, 8}, {8, 2, 1, 8}, {16, 4, 3, 10}, {16, 16, 2, 5}, {12, 3, 1, 7},
	} {
		prog := netProg(0)
		res, err := Naive(1, tc.n, tc.p, tc.m, tc.steps, prog)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if err := res.Verify(1, tc.n, tc.m, prog); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if res.Time <= 0 {
			t.Fatalf("%+v: non-positive time", tc)
		}
	}
}

func TestNaiveFunctionalD2(t *testing.T) {
	for _, tc := range []struct{ n, p, m, steps int }{
		{16, 1, 1, 4}, {16, 4, 2, 5}, {64, 4, 1, 6}, {64, 16, 3, 4},
	} {
		side := analytic.IntSqrtExact(tc.n)
		prog := netProg(side)
		res, err := Naive(2, tc.n, tc.p, tc.m, tc.steps, prog)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if err := res.Verify(2, tc.n, tc.m, prog); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
	}
}

func TestNaiveSlowdownShapeD1(t *testing.T) {
	// Slowdown of Naive on p = 1 should grow ~ n²: fitted exponent near 2.
	var logN, logS []float64
	for _, n := range []int{16, 32, 64, 128} {
		prog := netProg(0)
		res, err := Naive(1, n, 1, 1, 8, prog)
		if err != nil {
			t.Fatal(err)
		}
		guestT := GuestTime(1, n, 1, 8, prog)
		slow := float64(res.Time) / float64(guestT)
		logN = append(logN, math.Log2(float64(n)))
		logS = append(logS, math.Log2(slow))
	}
	slope := fitSlope(logN, logS)
	if slope < 1.6 || slope > 2.4 {
		t.Errorf("naive d=1 slowdown exponent %v, want ~2", slope)
	}
}

func TestNaiveSlowdownShapeD2(t *testing.T) {
	// d = 2, p = 1: slowdown ~ n^1.5.
	var logN, logS []float64
	for _, n := range []int{16, 64, 256} {
		side := analytic.IntSqrtExact(n)
		prog := netProg(side)
		res, err := Naive(2, n, 1, 1, 4, prog)
		if err != nil {
			t.Fatal(err)
		}
		guestT := GuestTime(2, n, 1, 4, prog)
		slow := float64(res.Time) / float64(guestT)
		logN = append(logN, math.Log2(float64(n)))
		logS = append(logS, math.Log2(slow))
	}
	slope := fitSlope(logN, logS)
	if slope < 1.2 || slope > 1.8 {
		t.Errorf("naive d=2 slowdown exponent %v, want ~1.5", slope)
	}
}

func TestNaiveMoreProcessorsFaster(t *testing.T) {
	prog := netProg(0)
	var prev float64 = math.Inf(1)
	for _, p := range []int{1, 2, 4, 8} {
		res, err := Naive(1, 64, p, 2, 8, prog)
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Time) >= prev {
			t.Errorf("p=%d not faster than p/2: %v >= %v", p, res.Time, prev)
		}
		prev = float64(res.Time)
	}
}

func fitSlope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
