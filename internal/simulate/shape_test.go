package simulate

import (
	"testing"

	"bsmp/internal/guest"
	"bsmp/internal/lattice"
)

// Translating a domain and its clip together must not change its
// canonical value — that is the congruence the subtree memo keys on —
// while the canonical domain must keep the original's exact point count.
func TestCanonicalDiamondTranslationInvariant(t *testing.T) {
	base := lattice.Diamond{U0: 5, W0: -3, RU: 9, RW: 6,
		Clip: lattice.Clip{X0: 0, X1: 64, Y0: 0, Y1: 1, Z0: 0, Z1: 1, T0: 0, T1: 16}}
	canon, ok := canonicalDomain(base)
	if !ok {
		t.Fatal("diamond not canonicalized")
	}
	if canon.Size() != base.Size() {
		t.Fatalf("canonical size %d != original %d", canon.Size(), base.Size())
	}
	for _, shift := range [][2]int{{1, 0}, {0, 1}, {3, 2}, {-2, 5}} {
		dx, dt := shift[0], shift[1]
		moved := base
		moved.U0 += dt + dx
		moved.W0 += dt - dx
		moved.Clip = shiftClip(base.Clip, dx, 0, 0, dt)
		got, ok := canonicalDomain(moved)
		if !ok || got != canon {
			t.Errorf("shift (%d,%d): canonical %v != %v", dx, dt, got, canon)
		}
	}
}

// Clip edges farther than the margin from the domain are equivalent to
// unbounded and collapse to one canonical value; edges at or inside the
// margin are preserved (they change preboundary/live-out structure).
func TestCanonicalDiamondClipClamping(t *testing.T) {
	mk := func(t1 int) lattice.Diamond {
		return lattice.Diamond{U0: 0, W0: 0, RU: 8, RW: 8,
			Clip: lattice.Clip{X0: -100, X1: 100, Y0: 0, Y1: 1, Z0: 0, Z1: 1, T0: 0, T1: t1}}
	}
	bb := lattice.BoundingClip(mk(1000))
	far1, _ := canonicalDomain(mk(bb.T1 + 5))
	far2, _ := canonicalDomain(mk(bb.T1 + 50))
	if far1 != far2 {
		t.Errorf("distant clip edges did not collapse: %v vs %v", far1, far2)
	}
	near, _ := canonicalDomain(mk(bb.T1 - 1))
	if near == far1 {
		t.Error("binding clip edge collapsed with unbounded one")
	}
}

func TestCanonicalBox4TranslationInvariant(t *testing.T) {
	base := lattice.Box4{A0: 4, B0: -2, E0: 3, F0: -1, RA: 6, RB: 6, RE: 6, RF: 6,
		Clip: lattice.ClipAll2D(32, 16)}
	canon, ok := canonicalDomain(base)
	if !ok {
		t.Fatal("box4 not canonicalized")
	}
	if canon.Size() != base.Size() {
		t.Fatalf("canonical size %d != original %d", canon.Size(), base.Size())
	}
	for _, sh := range [][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {2, -1, 3}} {
		dx, dy, dt := sh[0], sh[1], sh[2]
		moved := base
		moved.A0 += dt + dx
		moved.B0 += dt - dx
		moved.E0 += dt + dy
		moved.F0 += dt - dy
		moved.Clip = shiftClip(base.Clip, dx, dy, 0, dt)
		got, ok := canonicalDomain(moved)
		if !ok || got != canon {
			t.Errorf("shift (%d,%d,%d): canonical %v != %v", dx, dy, dt, got, canon)
		}
	}
}

func TestCanonicalBox6TranslationInvariant(t *testing.T) {
	base := lattice.Box6{A0: 2, B0: -1, E0: 1, F0: 0, G0: 3, H0: -2,
		RA: 4, RB: 4, RE: 4, RF: 4, RG: 4, RH: 4,
		Clip: lattice.ClipAll3D(16, 8)}
	canon, ok := canonicalDomain(base)
	if !ok {
		t.Fatal("box6 not canonicalized")
	}
	if canon.Size() != base.Size() {
		t.Fatalf("canonical size %d != original %d", canon.Size(), base.Size())
	}
	for _, sh := range [][4]int{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}, {1, -2, 2, 3}} {
		dx, dy, dz, dt := sh[0], sh[1], sh[2], sh[3]
		moved := base
		moved.A0 += dt + dx
		moved.B0 += dt - dx
		moved.E0 += dt + dy
		moved.F0 += dt - dy
		moved.G0 += dt + dz
		moved.H0 += dt - dz
		moved.Clip = shiftClip(base.Clip, dx, dy, dz, dt)
		got, ok := canonicalDomain(moved)
		if !ok || got != canon {
			t.Errorf("shift %v: canonical %v != %v", sh, got, canon)
		}
	}
}

// The guest address classifier must be translation-invariantly sound:
// equal classes at two reference sites imply equal addresses at every
// uniformly translated pair — checked by brute force over a window.
func TestAddrClassSoundness(t *testing.T) {
	progs := []struct {
		name string
		p    addrClasser
		addr func(node, step, m int) int
	}{
		{"mixca", guest.MixCA{Seed: 3}, guest.MixCA{Seed: 3}.Address},
		{"rule90", guest.Rule90{}, guest.Rule90{}.Address},
		{"shiftreg", guest.ShiftRegister{}, guest.ShiftRegister{}.Address},
		{"asnetwork-mixca", guest.AsNetwork{G: guest.MixCA{Seed: 9}},
			guest.AsNetwork{G: guest.MixCA{Seed: 9}}.Address},
		{"restrictmem-mixca", guest.RestrictMem{P: guest.MixCA{Seed: 9}, Words: 3},
			guest.RestrictMem{P: guest.MixCA{Seed: 9}, Words: 3}.Address},
	}
	const m = 5
	for _, pr := range progs {
		for n1 := 0; n1 < 2*m; n1++ {
			for s1 := 0; s1 < 2*m; s1++ {
				for n2 := 0; n2 < 2*m; n2++ {
					for s2 := 0; s2 < 2*m; s2++ {
						c1, ok1 := pr.p.AddrClass(n1, s1, m)
						c2, ok2 := pr.p.AddrClass(n2, s2, m)
						if !ok1 || !ok2 {
							t.Fatalf("%s: unclassifiable", pr.name)
						}
						if c1 != c2 {
							continue
						}
						for dn := 0; dn < m; dn++ {
							for ds := 0; ds < m; ds++ {
								if pr.addr(n1+dn, s1+ds, m) != pr.addr(n2+dn, s2+ds, m) {
									t.Fatalf("%s: class %d at (%d,%d) and (%d,%d) but Address differs at shift (%d,%d)",
										pr.name, c1, n1, s1, n2, s2, dn, ds)
								}
							}
						}
					}
				}
			}
		}
	}
	if _, ok := progClass(guest.AsNetwork{G: guest.OETSort{}}, 0, 0, m); ok {
		t.Error("unclassifiable guest reported a class")
	}
}
