package simulate

import (
	"context"

	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
	"bsmp/internal/topology"
)

// BlockedD2 is the d = 2 analogue of BlockedD1: Theorem 3's blocked
// simulation of the mesh guest M2(n, n, m) on the uniprocessor
// M2(n, 1, m), recursing on the octahedron/tetrahedron domains of
// Section 5 with whole node memories as the unit of relocation, down to
// "executable octahedra" of span ~m simulated naively in place.
//
// The same two value kinds flow as in the d = 1 scheme — broadcast words
// per dag vertex and m-word node images keyed by (x, y, entry time) —
// with real address management on a single f(x) = sqrt(x/m) H-RAM. The
// paper states only the d = 1 construction explicitly (Theorem 3) and the
// combined d = 2 bound (Theorem 1); this executor shows the blocked
// technique carries over verbatim once the octahedral separator replaces
// the diamond.
//
// n must be a perfect square; leafSpan <= 0 selects span m (the
// executable-domain width that balances per-vertex access cost against
// per-level relocation, the same tradeoff as d = 1).
//
// The recursion lives in blocked_exec.go, shared across dimensions; this
// wrapper supplies the mesh geometry: node id = y*side+x, operand stencil
// (self, W, E, S, N), columns in first-seen (T, X, Y) order.
func BlockedD2(n, m, steps, leafSpan int, prog network.Program, opts ...hram.Option) (Result, error) {
	return BlockedD2Context(context.Background(), n, m, steps, leafSpan, prog, opts...)
}

// BlockedD2Context is BlockedD2 under a context; see BlockedD1Context
// for the cancellation and progress contract.
func BlockedD2Context(ctx context.Context, n, m, steps, leafSpan int, prog network.Program, opts ...hram.Option) (Result, error) {
	if e := validateBlocked(2, n, m, steps); e != nil {
		return Result{}, e
	}
	side, _ := exactSqrt(n)
	if leafSpan <= 0 {
		leafSpan = m
	}
	if leafSpan < 2 {
		leafSpan = 2
	}
	g := dag.NewMeshGraph(side, steps+1)
	iw, err := imageWords(prog, m)
	if err != nil {
		return Result{}, err
	}
	// Node id ↔ coordinate maps come from the guest mesh topology; only
	// the dag-layer predecessor stencil below stays lattice-local (its
	// clipped W, E, S, N order mirrors topology Neighbors order).
	mesh := topology.NewMesh2(n, n)
	geom := blockedGeom{
		nodeIndex: func(p lattice.Point) int { return mesh.Index(p.X, p.Y) },
		nodePos: func(node int) lattice.Point {
			gx, gy := mesh.Coord(node)
			return lattice.Point{X: gx, Y: gy}
		},
		netPreds: func(p lattice.Point, buf []lattice.Point) []lattice.Point {
			// Operands in network order: self, W, E, S, N (clipped).
			buf = append(buf, lattice.Point{X: p.X, Y: p.Y, T: p.T - 1})
			if p.X > 0 {
				buf = append(buf, lattice.Point{X: p.X - 1, Y: p.Y, T: p.T - 1})
			}
			if p.X < side-1 {
				buf = append(buf, lattice.Point{X: p.X + 1, Y: p.Y, T: p.T - 1})
			}
			if p.Y > 0 {
				buf = append(buf, lattice.Point{X: p.X, Y: p.Y - 1, T: p.T - 1})
			}
			if p.Y < side-1 {
				buf = append(buf, lattice.Point{X: p.X, Y: p.Y + 1, T: p.T - 1})
			}
			return buf
		},
		side: side,
	}
	b := newBlockedExec(ctx, g, prog, m, iw, steps, leafSpan, geom)
	root := g.Domain()
	space, err := b.spaceNeeded(root)
	if err != nil {
		return Result{}, err
	}
	var meter cost.Meter
	b.mach = hram.New(space, hram.Standard(2, m), &meter, opts...)
	if memoEnabled(ctx) {
		b.enableMemo(&meter)
	}
	if err := b.exec(root, space, 0); err != nil {
		return Result{}, err
	}
	// See BlockedD1Context: replay leaves machine memory stale, so any
	// replayed subtree switches output collection to the pure guest run.
	var out []hram.Word
	var mems [][]hram.Word
	if b.replayed > 0 {
		out, mems, err = network.RunGuestPureHook(2, n, m, steps, prog, b.ec.hook())
	} else {
		out, mems, err = b.collect(n)
	}
	if err != nil {
		return Result{}, err
	}
	return Result{
		Outputs:  out,
		Memories: mems,
		Time:     meter.Now(),
		Ledger:   meter.Ledger,
		Steps:    steps,
		Space:    space,
	}, nil
}
