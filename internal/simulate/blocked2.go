package simulate

import (
	"fmt"

	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
)

// BlockedD2 is the d = 2 analogue of BlockedD1: Theorem 3's blocked
// simulation of the mesh guest M2(n, n, m) on the uniprocessor
// M2(n, 1, m), recursing on the octahedron/tetrahedron domains of
// Section 5 with whole node memories as the unit of relocation, down to
// "executable octahedra" of span ~m simulated naively in place.
//
// The same two value kinds flow as in the d = 1 scheme — broadcast words
// per dag vertex and m-word node images keyed by (x, y, entry time) —
// with real address management on a single f(x) = sqrt(x/m) H-RAM. The
// paper states only the d = 1 construction explicitly (Theorem 3) and the
// combined d = 2 bound (Theorem 1); this executor shows the blocked
// technique carries over verbatim once the octahedral separator replaces
// the diamond.
//
// n must be a perfect square; leafSpan <= 0 selects span m (the
// executable-domain width that balances per-vertex access cost against
// per-level relocation, the same tradeoff as d = 1).
func BlockedD2(n, m, steps, leafSpan int, prog network.Program, opts ...hram.Option) (Result, error) {
	side := intSqrtExact(n)
	if leafSpan <= 0 {
		leafSpan = m
	}
	if leafSpan < 2 {
		leafSpan = 2
	}
	g := dag.NewMeshGraph(side, steps+1)
	root := g.Domain()
	iw := m
	if mu, ok := prog.(MemUser); ok {
		iw = mu.MemWords(m)
		if iw < 1 || iw > m {
			return Result{}, fmt.Errorf("simulate: MemWords(%d) = %d out of range", m, iw)
		}
	}
	b := &blocked2Exec{
		g: g, prog: prog, side: side, m: m, iw: iw, steps: steps, leafSpan: leafSpan,
		loc:   make(map[b2key]int, 4*n),
		space: make(map[lattice.Domain]int, 1024),
	}
	space := b.spaceNeeded(root)
	var meter cost.Meter
	b.mach = hram.New(space, hram.Standard(2, m), &meter, opts...)
	if err := b.exec(root, space); err != nil {
		return Result{}, err
	}

	out := make([]hram.Word, n)
	mems := make([][]hram.Word, n)
	staticBuf := make([]hram.Word, m)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			node := y*side + x
			addr, ok := b.loc[b2key{false, x, y, steps}]
			if !ok {
				return Result{}, fmt.Errorf("simulate: missing final broadcast of node %d", node)
			}
			out[node] = b.mach.Peek(addr)
			base, ok := b.loc[b2key{true, x, y, steps + 1}]
			if !ok {
				return Result{}, fmt.Errorf("simulate: missing final memory of node %d", node)
			}
			mems[node] = make([]hram.Word, m)
			for i := 0; i < iw; i++ {
				mems[node][i] = b.mach.Peek(base + i)
			}
			if iw < m {
				for i := range staticBuf {
					staticBuf[i] = 0
				}
				b.prog.Init(node, staticBuf)
				copy(mems[node][iw:], staticBuf[iw:])
			}
		}
	}
	return Result{
		Outputs:  out,
		Memories: mems,
		Time:     meter.Now(),
		Ledger:   meter.Ledger,
		Steps:    steps,
		Space:    space,
	}, nil
}

// b2key identifies a flowing d = 2 value: a broadcast word at dag vertex
// (x, y, t), or (mem = true) node (x, y)'s live image before step t.
type b2key struct {
	mem     bool
	x, y, t int
}

type blocked2Exec struct {
	g        dag.MeshGraph
	prog     network.Program
	side, m  int
	iw       int
	steps    int
	leafSpan int
	mach     *hram.Machine
	loc      map[b2key]int
	space    map[lattice.Domain]int
}

// col2Span is one node's contiguous vertex-time interval in a domain.
type col2Span struct {
	x, y, ta, tb int
}

// columns returns the per-node time spans of dom, in first-seen order
// (deterministic: Points enumerates by (T, X, Y)).
func (b *blocked2Exec) columns(dom lattice.Domain) []col2Span {
	type xy struct{ x, y int }
	idx := make(map[xy]int)
	var spans []col2Span
	dom.Points(func(p lattice.Point) bool {
		k := xy{p.X, p.Y}
		if i, ok := idx[k]; ok {
			if p.T < spans[i].ta {
				spans[i].ta = p.T
			}
			if p.T > spans[i].tb {
				spans[i].tb = p.T
			}
			return true
		}
		idx[k] = len(spans)
		spans = append(spans, col2Span{x: p.X, y: p.Y, ta: p.T, tb: p.T})
		return true
	})
	return spans
}

func (b *blocked2Exec) memIn(spans []col2Span) []b2key {
	var in []b2key
	for _, s := range spans {
		if s.ta >= 1 {
			in = append(in, b2key{true, s.x, s.y, s.ta})
		}
	}
	return in
}

func (b *blocked2Exec) inSize(dom lattice.Domain, spans []col2Span) int {
	return len(dag.Preboundary(b.g, dom)) + b.iw*len(b.memIn(spans))
}

func (b *blocked2Exec) isLeaf(dom lattice.Domain) bool {
	return dom.Span() <= b.leafSpan || dom.Children() == nil
}

func (b *blocked2Exec) spaceNeeded(dom lattice.Domain) int {
	if s, ok := b.space[dom]; ok {
		return s
	}
	spans := b.columns(dom)
	in := b.inSize(dom, spans)
	var out int
	if b.isLeaf(dom) {
		out = len(spans)*b.iw + dom.Size() + in
	} else {
		smax, stage := 0, 0
		for _, kid := range dom.Children() {
			if s := b.spaceNeeded(kid); s > smax {
				smax = s
			}
			stage += len(dag.LiveOut(b.g, kid)) + b.iw*len(b.columns(kid))
		}
		out = smax + stage + in
	}
	b.space[dom] = out
	return out
}

// exec mirrors blockedExec.exec over octahedral domains.
func (b *blocked2Exec) exec(dom lattice.Domain, space int) error {
	if b.isLeaf(dom) {
		return b.execLeaf(dom)
	}
	stagePtr := space - b.inSize(dom, b.columns(dom))

	for _, kid := range dom.Children() {
		kidSpans := b.columns(kid)
		kidGin := dag.Preboundary(b.g, kid)
		kidMemIn := b.memIn(kidSpans)
		skid := b.spaceNeeded(kid)

		type saved struct {
			k    b2key
			addr int
		}
		var overrides []saved
		dst := skid - b.inSize(kid, kidSpans)
		if dst < 0 {
			return fmt.Errorf("simulate: child slot underflow in %v", kid)
		}
		for _, k := range kidMemIn {
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: image %v unavailable for %v", k, kid)
			}
			b.mach.BlockCopy(dst, src, b.iw)
			overrides = append(overrides, saved{k, src})
			b.loc[k] = dst
			dst += b.iw
		}
		for _, q := range kidGin {
			k := b2key{false, q.X, q.Y, q.T}
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: broadcast %v unavailable for %v", k, kid)
			}
			b.mach.MoveWord(dst, src)
			overrides = append(overrides, saved{k, src})
			b.loc[k] = dst
			dst++
		}

		if err := b.exec(kid, skid); err != nil {
			return err
		}

		for _, s := range kidSpans {
			k := b2key{true, s.x, s.y, s.tb + 1}
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: produced image %v missing after %v", k, kid)
			}
			stagePtr -= b.iw
			if stagePtr < skid {
				return fmt.Errorf("simulate: staging underflow in %v", dom)
			}
			b.mach.BlockCopy(stagePtr, src, b.iw)
			b.loc[k] = stagePtr
		}
		live := dag.LiveOut(b.g, kid)
		liveSet := make(map[lattice.Point]bool, len(live))
		for _, v := range live {
			liveSet[v] = true
			k := b2key{false, v.X, v.Y, v.T}
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: live-out %v missing after %v", k, kid)
			}
			stagePtr--
			if stagePtr < skid {
				return fmt.Errorf("simulate: staging underflow in %v", dom)
			}
			b.mach.MoveWord(stagePtr, src)
			b.loc[k] = stagePtr
		}

		for _, s := range overrides {
			b.loc[s.k] = s.addr
		}
		for _, k := range kidMemIn {
			delete(b.loc, k)
		}
		kid.Points(func(p lattice.Point) bool {
			if !liveSet[p] {
				delete(b.loc, b2key{false, p.X, p.Y, p.T})
			}
			return true
		})
	}
	return nil
}

// execLeaf simulates the domain naively in place, images resident at the
// bottom of the workspace.
func (b *blocked2Exec) execLeaf(dom lattice.Domain) error {
	spans := b.columns(dom)
	type xy struct{ x, y int }
	imageBase := make(map[xy]int, len(spans))
	next := 0
	for _, s := range spans {
		imageBase[xy{s.x, s.y}] = next
		next += b.iw
	}
	for _, s := range spans {
		if s.ta >= 1 {
			k := b2key{true, s.x, s.y, s.ta}
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: image %v unavailable in leaf %v", k, dom)
			}
			b.mach.BlockCopy(imageBase[xy{s.x, s.y}], src, b.iw)
			b.loc[k] = imageBase[xy{s.x, s.y}]
		}
	}
	ops := make([]hram.Word, 0, 5)
	nbs := make([]lattice.Point, 0, 4)
	initMem := make([]hram.Word, b.m)
	var fail error
	dom.Points(func(p lattice.Point) bool {
		base := imageBase[xy{p.X, p.Y}]
		node := p.Y*b.side + p.X
		if p.T == 0 {
			for i := range initMem {
				initMem[i] = 0
			}
			bv := b.prog.Init(node, initMem)
			for i, w := range initMem[:b.iw] {
				b.mach.Poke(base+i, w)
			}
			b.mach.Op()
			b.mach.Write(next, bv)
			b.loc[b2key{false, p.X, p.Y, 0}] = next
			next++
			return true
		}
		cellOff := b.prog.Address(node, p.T, b.m)
		if cellOff >= b.iw {
			fail = fmt.Errorf("simulate: address %d beyond declared live memory %d", cellOff, b.iw)
			return false
		}
		addr := base + cellOff
		cell := b.mach.Read(addr)
		// Operands in network order: self, W, E, S, N (clipped).
		nbs = nbs[:0]
		nbs = append(nbs, lattice.Point{X: p.X, Y: p.Y, T: p.T - 1})
		if p.X > 0 {
			nbs = append(nbs, lattice.Point{X: p.X - 1, Y: p.Y, T: p.T - 1})
		}
		if p.X < b.side-1 {
			nbs = append(nbs, lattice.Point{X: p.X + 1, Y: p.Y, T: p.T - 1})
		}
		if p.Y > 0 {
			nbs = append(nbs, lattice.Point{X: p.X, Y: p.Y - 1, T: p.T - 1})
		}
		if p.Y < b.side-1 {
			nbs = append(nbs, lattice.Point{X: p.X, Y: p.Y + 1, T: p.T - 1})
		}
		ops = ops[:0]
		for _, q := range nbs {
			a, ok := b.loc[b2key{false, q.X, q.Y, q.T}]
			if !ok {
				fail = fmt.Errorf("simulate: operand %v of %v unavailable in leaf", q, p)
				return false
			}
			ops = append(ops, b.mach.Read(a))
		}
		out, cellOut := b.prog.Step(node, p.T, cell, ops)
		b.mach.Op()
		b.mach.Write(addr, cellOut)
		b.mach.Write(next, out)
		b.loc[b2key{false, p.X, p.Y, p.T}] = next
		next++
		return true
	})
	if fail != nil {
		return fail
	}
	for _, s := range spans {
		delete(b.loc, b2key{true, s.x, s.y, s.ta})
		b.loc[b2key{true, s.x, s.y, s.tb + 1}] = imageBase[xy{s.x, s.y}]
	}
	return nil
}
