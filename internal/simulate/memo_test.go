package simulate

import (
	"context"
	"errors"
	"testing"

	"bsmp/internal/guest"
	"bsmp/internal/hram"
	"bsmp/internal/network"
)

// The central correctness gate of the subtree memo: for every registered
// scheme, a default (memo-on) run, a WithoutMemo run, and a second
// default run against the warm cache must produce bit-identical virtual
// times and ledgers. The warm run exercises cross-run record sharing;
// the memo-off run is the pre-memo engine verbatim.
func TestMemoBitIdentityAllSchemes(t *testing.T) {
	for _, sc := range Schemes {
		if sc.Name == "blocked-analytic" {
			continue // no exact twin: validated against Brent bounds instead
		}
		var n, p, m, steps, side int
		switch sc.D {
		case 1:
			n, steps = 64, 16
		case 2:
			side = 8
			n, steps = side*side, 8
		default:
			side = 4
			n, steps = side*side*side, 4
		}
		p = 1
		if sc.Multiproc {
			p = 4
			if sc.D == 3 {
				p = 8
			}
		}
		m = 4
		if sc.Name == "unidc" {
			m = 1
		}
		var prog network.Program
		switch {
		case sc.Name == "unidc" && sc.D == 2:
			prog = guest.AsNetwork{G: guest.Rule90{Seed: 1}, Side: side}
		case sc.Name == "unidc" && sc.D == 3:
			prog = guest.AsNetwork{G: guest.Rule90{Seed: 1}, CubeSide: side}
		case sc.Name == "unidc":
			prog = guest.AsNetwork{G: guest.Rule90{Seed: 1}}
		case sc.D == 2:
			prog = guest.AsNetwork{G: guest.MixCA{Seed: 9}, Side: side}
		case sc.D == 3:
			prog = guest.AsNetwork{G: guest.MixCA{Seed: 9}, CubeSide: side}
		default:
			prog = guest.AsNetwork{G: guest.MixCA{Seed: 9}}
		}

		off, err := RunSchemeContext(WithoutMemo(context.Background()), sc.Name, sc.D, n, p, m, steps, prog, SchemeConfig{})
		if err != nil {
			t.Fatalf("%s d=%d memo-off: %v", sc.Name, sc.D, err)
		}
		for _, pass := range []string{"cold", "warm"} {
			on, err := RunSchemeContext(context.Background(), sc.Name, sc.D, n, p, m, steps, prog, SchemeConfig{})
			if err != nil {
				t.Fatalf("%s d=%d memo-on %s: %v", sc.Name, sc.D, pass, err)
			}
			if on.Time != off.Time {
				t.Errorf("%s d=%d %s: Time %v (memo) != %v (no memo)", sc.Name, sc.D, pass, on.Time, off.Time)
			}
			if on.PrepTime != off.PrepTime {
				t.Errorf("%s d=%d %s: PrepTime %v (memo) != %v (no memo)", sc.Name, sc.D, pass, on.PrepTime, off.PrepTime)
			}
			if on.Ledger != off.Ledger {
				t.Errorf("%s d=%d %s: ledger diverged under memo", sc.Name, sc.D, pass)
			}
		}
	}
}

// cancelAfter is a MixCA-behaving guest that cancels a context after a
// fixed number of Step calls — a mid-subtree abort with a classifiable
// address pattern, so the memo is armed when the cancellation lands.
type cancelAfter struct {
	G         guest.MixCA
	remaining *int
	cancel    *context.CancelFunc
}

func (c cancelAfter) Init(node int, mem []hram.Word) hram.Word {
	return guest.AsNetwork{G: c.G}.Init(node, mem)
}

func (c cancelAfter) Address(node, step, memSize int) int {
	return c.G.Address(node, step, memSize)
}

func (c cancelAfter) Step(node, step int, cell hram.Word, prev []hram.Word) (hram.Word, hram.Word) {
	*c.remaining--
	if *c.remaining == 0 && *c.cancel != nil {
		(*c.cancel)()
	}
	return c.G.Step2(node, step, cell, prev)
}

func (c cancelAfter) AddrClass(node, step, memSize int) (uint64, bool) {
	return c.G.AddrClass(node, step, memSize)
}

// A run cancelled mid-subtree must not publish partial memo records: a
// later run with the same program fingerprint — replaying whatever the
// cancelled run DID publish — must stay bit-identical to a memo-off run.
func TestMemoCancellationNoPoisoning(t *testing.T) {
	const n, m, steps = 64, 4, 16
	remaining := 300 // lands mid-run: 64*17 vertices total
	var cancel context.CancelFunc
	prog := cancelAfter{G: guest.MixCA{Seed: 5}, remaining: &remaining, cancel: &cancel}

	ctx, cfn := context.WithCancel(context.Background())
	cancel = cfn
	defer cfn()
	_, err := BlockedD1Context(ctx, n, m, steps, 0, prog)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if remaining > 0 {
		t.Fatalf("countdown never fired (%d remaining)", remaining)
	}
	cancel = nil // disarm; the counter keeps decrementing harmlessly

	off, err := BlockedD1Context(WithoutMemo(context.Background()), n, m, steps, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := BlockedD1Context(context.Background(), n, m, steps, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Time != off.Time || warm.Ledger != off.Ledger {
		t.Errorf("run after cancelled run diverged: Time %v vs %v — poisoned memo record", warm.Time, off.Time)
	}
	for i := range warm.Outputs {
		if warm.Outputs[i] != off.Outputs[i] {
			t.Fatalf("output %d diverged after cancelled run", i)
		}
	}
}

// WithoutMemo must fully disable replay: two consecutive memo-off runs
// both execute for real (replay leaves machine memory stale, so this
// also pins that memo-off outputs come from the machine, not the guest).
func TestWithoutMemoDisables(t *testing.T) {
	p1 := guest.AsNetwork{G: guest.MixCA{Seed: 9}}
	before := MemoStatsSnapshot()
	ctx := WithoutMemo(context.Background())
	if _, err := BlockedD1Context(ctx, 64, 4, 16, 0, p1); err != nil {
		t.Fatal(err)
	}
	after := MemoStatsSnapshot()
	if before.Hits != after.Hits || before.Misses != after.Misses {
		t.Errorf("memo-off run touched the store: hits %d->%d misses %d->%d",
			before.Hits, after.Hits, before.Misses, after.Misses)
	}
}
