package simulate

import (
	"context"
	"errors"
	"math"
	"testing"

	"bsmp/internal/cost"
	"bsmp/internal/guest"
)

// runTheta runs the multi-theta scheme on the golden d = 1 tuple with
// the given Θ and seed.
func runTheta(t *testing.T, theta float64, seed uint64) MultiResult {
	t.Helper()
	mr, err := RunScheme("multi-theta", 1, 64, 4, 16, 16,
		guest.AsNetwork{G: guest.MixCA{Seed: 9}},
		SchemeConfig{Multi: MultiOptions{Theta: theta, ThetaSeed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	return mr
}

// TestMultiThetaGoldenAtOne is the acceptance pin: the event-driven
// engine at Θ = 1 reproduces the lockstep golden virtual times
// BIT-identically, for every dimension — same Time, same PrepTime, same
// ledger, same phase breakdown. The event queue and the barrier are
// then two executions of the same charge sequence.
func TestMultiThetaGoldenAtOne(t *testing.T) {
	mr := runTheta(t, 1, 0)
	if mr.Time != 79686.0625 {
		t.Errorf("d=1 Time = %v, golden 79686.0625", mr.Time)
	}
	if mr.PrepTime != 45232 {
		t.Errorf("d=1 PrepTime = %v, golden 45232", mr.PrepTime)
	}

	m2, err := RunScheme("multi-theta", 2, 256, 4, 8, 8,
		guest.AsNetwork{G: guest.MixCA{Seed: 9}, Side: 16},
		SchemeConfig{Multi: MultiOptions{Theta: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Time != 121540.75244594147 {
		t.Errorf("d=2 Time = %v, golden 121540.75244594147", m2.Time)
	}

	m3, err := RunScheme("multi-theta", 3, 512, 8, 4, 8,
		guest.AsNetwork{G: guest.MixCA{Seed: 9}, CubeSide: 8},
		SchemeConfig{Multi: MultiOptions{Theta: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Time != 151296.39378136813 {
		t.Errorf("d=3 Time = %v, golden 151296.39378136813", m3.Time)
	}
}

// TestMultiThetaMatchesLockstepLive compares the Θ = 1 event engine
// against a live lockstep run in full: times, ledger totals and counts,
// and the per-phase breakdown, entry by entry.
func TestMultiThetaMatchesLockstepLive(t *testing.T) {
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 4}}
	lock, err := RunScheme("multi", 1, 64, 4, 4, 16, prog, SchemeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := RunScheme("multi-theta", 1, 64, 4, 4, 16, prog, SchemeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Time != lock.Time || ev.PrepTime != lock.PrepTime {
		t.Fatalf("times (%v, %v) != lockstep (%v, %v)", ev.Time, ev.PrepTime, lock.Time, lock.PrepTime)
	}
	for _, c := range cost.Categories() {
		if ev.Ledger.Total(c) != lock.Ledger.Total(c) {
			t.Errorf("ledger %s: %v != %v", c, ev.Ledger.Total(c), lock.Ledger.Total(c))
		}
		if ev.Ledger.Count(c) != lock.Ledger.Count(c) {
			t.Errorf("ledger count %s: %d != %d", c, ev.Ledger.Count(c), lock.Ledger.Count(c))
		}
	}
	if len(ev.Phases) != len(lock.Phases) {
		t.Fatalf("phase count %d != %d", len(ev.Phases), len(lock.Phases))
	}
	for i := range ev.Phases {
		if ev.Phases[i].Name != lock.Phases[i].Name || ev.Phases[i].Time != lock.Phases[i].Time {
			t.Errorf("phase[%d]: (%s, %v) != (%s, %v)", i,
				ev.Phases[i].Name, ev.Phases[i].Time, lock.Phases[i].Name, lock.Phases[i].Time)
		}
	}
	for i := range ev.Outputs {
		if ev.Outputs[i] != lock.Outputs[i] {
			t.Fatalf("output %d differs", i)
		}
	}
}

// TestMultiThetaMonotone is the graceful-degradation property over a
// seeded sweep: with the seed fixed, Time and PrepTime are monotone
// non-decreasing in Θ — a larger delay bound can only slow the machine.
func TestMultiThetaMonotone(t *testing.T) {
	thetas := []float64{1, 1.25, 1.5, 2, 4, 8}
	for _, seed := range []uint64{0, 7, 123456789} {
		prevTime, prevPrep := cost.Time(0), cost.Time(0)
		for _, theta := range thetas {
			mr := runTheta(t, theta, seed)
			if mr.Time < prevTime {
				t.Fatalf("seed %d: Time decreased from %v to %v at theta=%v", seed, prevTime, mr.Time, theta)
			}
			if mr.PrepTime < prevPrep {
				t.Fatalf("seed %d: PrepTime decreased from %v to %v at theta=%v", seed, prevPrep, mr.PrepTime, theta)
			}
			prevTime, prevPrep = mr.Time, mr.PrepTime
		}
		// The sweep actually moves: Θ = 8 is strictly slower than Θ = 1.
		if prevTime <= runTheta(t, 1, seed).Time {
			t.Fatalf("seed %d: theta=8 no slower than theta=1", seed)
		}
	}
}

// TestMultiThetaDeterministic checks seeded reproducibility: same
// (Θ, seed) twice gives identical times and ledgers; a different seed
// draws different delays.
func TestMultiThetaDeterministic(t *testing.T) {
	a := runTheta(t, 2.5, 42)
	b := runTheta(t, 2.5, 42)
	if a.Time != b.Time || a.PrepTime != b.PrepTime {
		t.Fatalf("same seed: (%v, %v) != (%v, %v)", a.Time, a.PrepTime, b.Time, b.PrepTime)
	}
	for _, c := range cost.Categories() {
		if a.Ledger.Total(c) != b.Ledger.Total(c) {
			t.Fatalf("same seed: ledger %s differs", c)
		}
	}
	other := runTheta(t, 2.5, 43)
	if other.Time == a.Time {
		t.Fatalf("different seed produced identical Time %v", a.Time)
	}
}

// TestMultiThetaStretchShowsSync checks the Θ > 1 mechanics: delayed
// charges desynchronize the processors, so joins charge real Sync time
// that the lockstep run (uniform charges, no stalls) never sees, and
// the run is slower than lockstep.
func TestMultiThetaStretchShowsSync(t *testing.T) {
	lock := runTheta(t, 1, 7)
	slow := runTheta(t, 3, 7)
	if slow.Time <= lock.Time {
		t.Fatalf("theta=3 Time %v not above lockstep %v", slow.Time, lock.Time)
	}
	if lock.Ledger.Total(cost.Sync) != 0 {
		t.Fatalf("lockstep run charged Sync %v, want 0", lock.Ledger.Total(cost.Sync))
	}
	if slow.Ledger.Total(cost.Sync) <= 0 {
		t.Fatal("theta=3 run charged no Sync despite desynchronized joins")
	}
	// Outputs are unaffected: delays move clocks, never values.
	for i := range lock.Outputs {
		if lock.Outputs[i] != slow.Outputs[i] {
			t.Fatalf("output %d differs under theta", i)
		}
	}
}

// TestMultiThetaD2D3Run exercises the span-model dimensions under
// Θ > 1: valid runs, slower than lockstep, monotone between two Θs.
func TestMultiThetaD2D3Run(t *testing.T) {
	for _, tc := range []struct {
		d, n, p, m, steps int
		prog              guest.AsNetwork
	}{
		{2, 256, 4, 8, 8, guest.AsNetwork{G: guest.MixCA{Seed: 9}, Side: 16}},
		{3, 512, 8, 4, 8, guest.AsNetwork{G: guest.MixCA{Seed: 9}, CubeSide: 8}},
	} {
		run := func(theta float64) MultiResult {
			mr, err := RunScheme("multi-theta", tc.d, tc.n, tc.p, tc.m, tc.steps, tc.prog,
				SchemeConfig{Multi: MultiOptions{Theta: theta, ThetaSeed: 11}})
			if err != nil {
				t.Fatalf("d=%d theta=%v: %v", tc.d, theta, err)
			}
			return mr
		}
		t1, t2, t4 := run(1), run(2), run(4)
		if !(t1.Time <= t2.Time && t2.Time <= t4.Time) {
			t.Fatalf("d=%d: times not monotone: %v, %v, %v", tc.d, t1.Time, t2.Time, t4.Time)
		}
		if t4.Time <= t1.Time {
			t.Fatalf("d=%d: theta=4 no slower than lockstep", tc.d)
		}
	}
}

// TestThetaValidation checks the Θ parameter boundary: sub-1, NaN and
// Inf ratios are rejected with a typed ParamError naming the field, on
// both the registry path and the direct constructors, and the lockstep
// multi scheme refuses a delay ratio outright.
func TestThetaValidation(t *testing.T) {
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 9}}
	for _, theta := range []float64{0.5, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		cfg := SchemeConfig{Multi: MultiOptions{Theta: theta}}
		err := ValidateParams("multi-theta", 1, 64, 4, 4, 16, cfg)
		var pe *ParamError
		if !errors.As(err, &pe) || pe.Field != "theta" {
			t.Fatalf("ValidateParams(theta=%v) = %v, want ParamError on theta", theta, err)
		}
		if _, err := RunScheme("multi-theta", 1, 64, 4, 4, 16, prog, cfg); !errors.As(err, &pe) {
			t.Fatalf("RunScheme(theta=%v) = %v, want ParamError", theta, err)
		}
		if _, err := MultiD1Context(context.Background(), 64, 4, 4, 16, prog, MultiOptions{Theta: theta}); !errors.As(err, &pe) {
			t.Fatalf("MultiD1Context(theta=%v) = %v, want ParamError", theta, err)
		}
		if _, err := MultiD2Context(context.Background(), 256, 4, 8, 8, guest.AsNetwork{G: guest.MixCA{Seed: 9}, Side: 16}, MultiOptions{Theta: theta}); !errors.As(err, &pe) {
			t.Fatalf("MultiD2Context(theta=%v) = %v, want ParamError", theta, err)
		}
	}
	// Valid ratios pass.
	if err := ValidateParams("multi-theta", 1, 64, 4, 4, 16, SchemeConfig{Multi: MultiOptions{Theta: 1.5}}); err != nil {
		t.Fatalf("theta=1.5 rejected: %v", err)
	}
	if err := ValidateParams("multi-theta", 1, 64, 4, 4, 16); err != nil {
		t.Fatalf("default cfg rejected: %v", err)
	}
	// The lockstep scheme takes no delay ratio.
	var pe *ParamError
	err := ValidateParams("multi", 1, 64, 4, 4, 16, SchemeConfig{Multi: MultiOptions{Theta: 2}})
	if !errors.As(err, &pe) || pe.Field != "theta" {
		t.Fatalf("multi with theta: err = %v, want ParamError on theta", err)
	}
}
