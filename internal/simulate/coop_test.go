package simulate

import (
	"testing"
	"testing/quick"

	"bsmp/internal/guest"
	"bsmp/internal/network"
)

func TestCoopBlockValidation(t *testing.T) {
	prog := netProg(0)
	if _, err := CoopBlock(64, 8, 1, 3, 4, prog); err == nil {
		t.Fatal("odd s did not error")
	}
	if _, err := CoopBlock(64, 1, 1, 4, 4, prog); err == nil {
		t.Fatal("p=1 did not error")
	}
}

func TestCoopBlockRunsAgree(t *testing.T) {
	// CoopBlock verifies the two runs against each other internally; an
	// error would mean divergence.
	for _, tc := range []struct{ m, s, steps int }{
		{1, 8, 8}, {4, 8, 16}, {16, 4, 8},
	} {
		if _, err := CoopBlock(256, 8, tc.m, tc.s, tc.steps, netProg(0)); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
	}
}

func TestCoopBlockAgainstPureSlice(t *testing.T) {
	// The isolated s-column slice is exactly a width-s guest: compare
	// against RunGuestPure on that smaller machine.
	m, s, steps := 3, 8, 10
	prog := netProg(0)
	res, err := CoopBlock(256, 8, m, s, steps, prog)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := network.RunGuestPure(1, s, m, steps, prog)
	for x := range want {
		if res.Outputs[x] != want[x] {
			t.Fatalf("column %d: coop %d, pure %d", x, res.Outputs[x], want[x])
		}
	}
}

func TestCoopCrossoverInM(t *testing.T) {
	// The paper's observation made measurable: solo execution pulls
	// Θ(s·m) remote words while cooperation exchanges Θ(steps) values,
	// so cooperation's advantage grows with m.
	n, p, s, steps := 1024, 8, 16, 16
	prog := netProg(0)
	var prevAdv float64
	for i, m := range []int{1, 8, 64} {
		res, err := CoopBlock(n, p, m, s, steps, prog)
		if err != nil {
			t.Fatal(err)
		}
		adv := float64(res.SoloTime) / float64(res.CoopTime)
		if i > 0 && adv <= prevAdv {
			t.Errorf("m=%d: cooperation advantage %v not growing (prev %v)", m, adv, prevAdv)
		}
		prevAdv = adv
	}
	// At large m cooperation must win outright.
	res, err := CoopBlock(n, p, 64, s, steps, prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoopTime >= res.SoloTime {
		t.Errorf("m=64: coop %v not faster than solo %v", res.CoopTime, res.SoloTime)
	}
}

// Property: cooperative and solo runs agree for random geometry.
func TestPropertyCoopSoloAgree(t *testing.T) {
	f := func(mRaw, sRaw, tRaw, seed uint8) bool {
		m := int(mRaw%6) + 1
		s := (int(sRaw%6) + 1) * 2
		steps := int(tRaw%10) + 1
		prog := guest.AsNetwork{G: guest.MixCA{Seed: uint64(seed)}}
		_, err := CoopBlock(64, 4, m, s, steps, prog)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCoopCrossoverBothDirections(t *testing.T) {
	// "One alternative may be preferable over the other" (§4.2) — in both
	// directions. Cooperation exchanges one boundary value per step over
	// the full inter-processor distance; solo execution pulls the s·m-word
	// remote preboundary once. With many steps and m = 1 the per-step
	// exchanges dominate and solo must win; at large m the preboundary
	// dominates and cooperation must win. Same geometry, only m moves.
	n, p, s, steps := 1024, 8, 4, 64
	prog := netProg(0)
	lo, err := CoopBlock(n, p, 1, s, steps, prog)
	if err != nil {
		t.Fatal(err)
	}
	if lo.SoloTime >= lo.CoopTime {
		t.Errorf("m=1: solo %v not cheaper than coop %v", lo.SoloTime, lo.CoopTime)
	}
	hi, err := CoopBlock(n, p, 64, s, steps, prog)
	if err != nil {
		t.Fatal(err)
	}
	if hi.CoopTime >= hi.SoloTime {
		t.Errorf("m=64: coop %v not cheaper than solo %v", hi.CoopTime, hi.SoloTime)
	}
}
