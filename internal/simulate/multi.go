package simulate

import (
	"fmt"
	"math"
	"sync"

	"bsmp/internal/analytic"
	"bsmp/internal/cost"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
	"bsmp/internal/perm"
)

// MultiOptions configure the multiprocessor simulation; the zero value is
// the paper's full scheme. The ablation flags disable individual
// mechanisms to measure how load-bearing each one is (DESIGN.md § 6).
type MultiOptions struct {
	// StripWidth overrides the strip width s; 0 selects the paper's
	// optimum s* (rounded to a power of two dividing n/p).
	StripWidth int
	// NoRearrange skips the π = π2π1 memory rearrangement: Regime 1
	// relocations and cooperating-mode exchanges then occur at the
	// original Θ(n)-scale distances instead of Θ(n/p).
	NoRearrange bool
	// NoCooperate disables the cooperating execution mode: diamonds
	// sitting across strip boundaries are executed solo by one
	// processor, which must pull the remote half of the preboundary —
	// s·m memory words instead of s broadcast words.
	NoCooperate bool
}

// MultiResult extends Result with the multiprocessor-specific accounting.
type MultiResult struct {
	Result
	// PrepTime is the one-time rearrangement cost (the paper amortizes
	// it over repeated simulation cycles; it is excluded from Time).
	PrepTime cost.Time
	// StripWidth is the strip width s actually used.
	StripWidth int
	// Regime1Levels is the number of relocation levels executed.
	Regime1Levels int
	// Domains is the number of D(p·s) domains processed in Regime 2.
	Domains int
}

// MultiD1 runs Theorem 4's simulation of M1(n, n, m) on M1(n, p, m):
//
//  1. the initial data, viewed as q = n/s strips of width s, is
//     rearranged by π = π2·π1 so that originally adjacent strips are
//     either adjacent or exactly q/p strips apart (perm package);
//  2. Regime 1 relocates data down log2(n/(p·s)) levels of the diamond
//     recursion, each level costing Θ(n²m/p²) wall time thanks to the
//     p-fold distance reduction the rearrangement bought;
//  3. Regime 2 processes the Θ((n/ps)²) domains of type D(p·s)
//     sequentially; each takes 2p-1 stages in which every processor
//     executes one diamond D(s) of its zig-zag band (Figure 2) — solo on
//     odd stages, cooperating with a neighbor on even stages, exchanging
//     the Θ(s) broadcast values that cross the shared diagonal as a
//     message over distance n/p.
//
// Fidelity: the guest state advances functionally (exactly); costs are
// charged per phase, with the per-diamond execution kernel measured by a
// real BlockedD1 run of the same (s, m) geometry (per-address fidelity),
// and the relocation/exchange phases charged at the word-and-distance
// granularity derived in the comments below. See DESIGN.md's fidelity
// ladder.
func MultiD1(n, p, m, steps int, prog network.Program, opts MultiOptions) (MultiResult, error) {
	if p < 1 || n%p != 0 {
		return MultiResult{}, fmt.Errorf("simulate: need p | n, got n=%d p=%d", n, p)
	}
	if p == 1 {
		// Degenerate case: Theorem 3's machinery.
		r, err := BlockedD1(n, m, steps, 0, prog)
		return MultiResult{Result: r, StripWidth: n}, err
	}
	s := opts.StripWidth
	if s <= 0 {
		s = roundToPow2Divisor(analytic.OptimalS(n, m, p), n/p)
	}
	if s < 1 || (n/p)%s != 0 {
		return MultiResult{}, fmt.Errorf("simulate: strip width %d must divide n/p = %d", s, n/p)
	}
	q := n / s
	pi := perm.New(q, p)
	_ = pi // the permutation's properties are what license the distance
	// charges below; its action on strip indices is exercised in tests.

	bank := cost.NewBank(p)
	nf, pf, mf, sf := float64(n), float64(p), float64(m), float64(s)

	// The per-diamond execution kernel is measured from a real Theorem 3
	// execution, which carries the machinery's constant factor (stack
	// staging, read+write per moved word). The relocation and exchange
	// phases below are derived as word·distance counts with unit
	// constants; to keep the phases commensurate — as they would be if
	// one machine executed all of them — they are scaled by the kernel's
	// measured-over-theoretical constant κ.
	kernel, err := diamondKernel(s, m, prog)
	if err != nil {
		return MultiResult{}, err
	}
	theoryExec := sf * sf / 2 * math.Min(sf, mf*analytic.Log(sf/mf))
	kappa := float64(kernel) / theoryExec
	if kappa < 1 {
		kappa = 1
	}

	// Phase 0: rearrangement. n·m words move distance Θ(n) with p-fold
	// parallelism: per processor, (n·m/p) words at average distance n/2.
	for i := 0; i < p; i++ {
		bank.Proc(i).Charge(cost.Transfer, kappa*nf*mf/pf*nf/2)
	}
	prep := bank.Barrier()

	// Phase 1: Regime 1 — relocation levels. Level k moves 2^k·n·m words
	// at geometric distance (n/2^k)/p (rearranged) or n/2^k (ablated):
	// the 2^k factors cancel, so every level costs n²m/(distDiv·p) wall
	// time per processor — the paper's Θ(n²m/p²) with rearrangement.
	// (A word moved across guest-volume distance D occupies D·m memory
	// addresses, and f(x) = x/m, so the per-word cost is D independent
	// of m.)
	levels := 0
	if s < n/p {
		levels = int(math.Round(math.Log2(nf / (pf * sf))))
	}
	distDiv := pf
	if opts.NoRearrange {
		distDiv = 1
	}
	perLevelPerProc := kappa * nf * mf * (nf / distDiv) / pf
	for k := 1; k <= levels; k++ {
		for i := 0; i < p; i++ {
			bank.Proc(i).Charge(cost.Transfer, perLevelPerProc)
		}
	}

	// Phase 2: Regime 2 — the (n/ps)² domains of D(p·s), 2p-1 stages each.
	cells := lattice.DiamondGrid(n, steps+1, p*s)
	numDomains := len(cells)
	exchDist := nf / pf
	if opts.NoRearrange {
		exchDist = nf / 2
	}
	for range cells {
		// 2p-1 stages: p-1 solo, p cooperating.
		solo := float64(p - 1)
		coop := float64(p)
		var stageExtra float64
		if opts.NoCooperate {
			// Solo execution of shared diamonds: pull s·m remote words
			// through memory, each paying the exchange distance.
			stageExtra = kappa * sf * mf * exchDist
		} else {
			// Exchange Θ(s) broadcast values over the link, each paying
			// the full distance (no pipelining, as in the paper's
			// per-item accounting "in time O(s·n/p)").
			stageExtra = kappa * sf * exchDist
		}
		for i := 0; i < p; i++ {
			bank.Proc(i).Charge(cost.Compute, (solo+coop)*float64(kernel))
			if opts.NoCooperate {
				bank.Proc(i).Charge(cost.Transfer, coop*stageExtra)
			} else {
				bank.Proc(i).Charge(cost.Message, coop*stageExtra)
			}
		}
		bank.Barrier()
	}
	elapsed := bank.MaxNow() - prep

	// Functional execution (exact): the schedule above is a topological
	// execution of the same dag, so the state evolution is the guest's.
	outs, mems := network.RunGuestPure(1, n, m, steps, prog)

	return MultiResult{
		Result: Result{
			Outputs:  outs,
			Memories: mems,
			Time:     elapsed,
			Ledger:   bank.Ledgers(),
			Steps:    steps,
		},
		PrepTime:      prep,
		StripWidth:    s,
		Regime1Levels: levels,
		Domains:       numDomains,
	}, nil
}

// MultiD1Cycles simulates cycles·n guest steps by repeating the n-step
// simulation of MultiD1 (the paper's "for larger values of Tn, it is
// sufficient to repeat the n-step simulation ⌈Tn/n⌉ times"), so the
// one-time rearrangement cost amortizes: the reported Time includes the
// preprocessing once plus cycles executions, and the effective slowdown
// converges to the steady-state (n/p)·A(n, m, p) as cycles grows — "its
// cost gives a contribution to the slowdown that vanishes as the number
// of simulated steps increases" (Section 4.2).
func MultiD1Cycles(n, p, m, cycles int, prog network.Program, opts MultiOptions) (MultiResult, error) {
	if cycles < 1 {
		return MultiResult{}, fmt.Errorf("simulate: cycles %d < 1", cycles)
	}
	one, err := MultiD1(n, p, m, n, prog, opts)
	if err != nil {
		return MultiResult{}, err
	}
	total := one.PrepTime + cost.Time(cycles)*one.Time
	outs, mems := network.RunGuestPure(1, n, m, cycles*n, prog)
	res := one
	res.Outputs = outs
	res.Memories = mems
	res.Time = total
	res.Steps = cycles * n
	return res, nil
}

// kernelKey identifies a measured diamond kernel. The kernel time is NOT
// program-independent — prog.Address picks the memory cell touched per
// vertex (the f(x) access cost varies with the cell offset) and an
// optional MemUser shrinks the relocated image from m to m' words — so
// the key carries a program fingerprint alongside (s, m). Programs here
// are small comparable config structs (guest.AsNetwork values and the
// like), so %T plus the printed field values identify the cost-relevant
// behavior; TestDiamondKernelProgramDependence pins the requirement.
type kernelKey struct {
	s, m int
	prog string
}

// kernelCache memoizes measured diamond-execution kernels per
// (s, m, program fingerprint). sync.Map: experiments calibrate kernels
// from concurrently running goroutines (exp.All).
var kernelCache sync.Map // kernelKey -> cost.Time

// progFingerprint renders a program's identity for kernel-cache keying.
func progFingerprint(prog network.Program) string {
	return fmt.Sprintf("%T:%+v", prog, prog)
}

// diamondKernel measures the time to execute one diamond D(s) with memory
// density m by running the real Theorem 3 executor on an s × s computation
// (two diamonds' worth of vertices) and halving.
func diamondKernel(s, m int, prog network.Program) (cost.Time, error) {
	key := kernelKey{s, m, progFingerprint(prog)}
	if v, ok := kernelCache.Load(key); ok {
		return v.(cost.Time), nil
	}
	if s < 2 {
		// A width-1 strip: one vertex per step, executed in place.
		kernelCache.Store(key, cost.Time(4))
		return 4, nil
	}
	res, err := BlockedD1(s, m, s, 0, prog)
	if err != nil {
		return 0, err
	}
	k := res.Time / 2
	kernelCache.Store(key, k)
	return k, nil
}

// roundToPow2Divisor rounds target to the nearest power of two in [1, cap]
// (cap itself must be a power of two for exact divisibility).
func roundToPow2Divisor(target float64, cap int) int {
	if target < 1 {
		target = 1
	}
	e := math.Round(math.Log2(target))
	s := int(math.Exp2(e))
	if s < 1 {
		s = 1
	}
	for s > cap {
		s /= 2
	}
	// Ensure divisibility even when cap is not a power of two.
	for s > 1 && cap%s != 0 {
		s /= 2
	}
	return s
}
