package simulate

import (
	"context"
	"fmt"
	"math"

	"bsmp/internal/analytic"
	"bsmp/internal/cost"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
	"bsmp/internal/perm"
)

// MultiOptions configure the multiprocessor simulations; the zero value
// is the paper's full scheme. One struct serves every dimension (the
// aliases Multi2Options/Multi3Options keep the historical names): d = 1
// reads StripWidth and NoCooperate, d = 2/3 read SpanOverride, all read
// NoRearrange. The ablation flags disable individual mechanisms to
// measure how load-bearing each one is (DESIGN.md § 6).
type MultiOptions struct {
	// StripWidth overrides the d = 1 strip width s; 0 selects the
	// paper's optimum s* (rounded to a power of two dividing n/p).
	StripWidth int
	// SpanOverride fixes the d = 2/3 kernel span σ; 0 lets the model
	// pick the cost-minimizing power of two in [2, (n/p)^(1/d)].
	SpanOverride int
	// NoRearrange skips the memory rearrangement: Regime 1 relocations
	// and cooperating-mode exchanges then occur at the original
	// Θ(n^(1/d))-scale distances instead of Θ((n/p)^(1/d)).
	NoRearrange bool
	// NoCooperate disables the d = 1 cooperating execution mode:
	// diamonds sitting across strip boundaries are executed solo by one
	// processor, which must pull the remote half of the preboundary —
	// s·m memory words instead of s broadcast words.
	NoCooperate bool
	// Theta is the Θ-model bounded delay ratio: when > 0, the schedule
	// is played by the event-driven engine (internal/sched) with every
	// distance-proportional charge stretched by a seeded factor in
	// [1, Θ]. 0 selects the lockstep barrier engine; 1 runs the event
	// engine with every factor exactly 1, reproducing the lockstep
	// virtual times bit-identically. Values in (0, 1), NaN and Inf are
	// rejected with a typed ParamError.
	Theta float64
	// ThetaSeed seeds the Θ-model delay draws. Runs with equal
	// (Theta, ThetaSeed) are deterministic, and a Θ-sweep at a fixed
	// seed varies only the bound, never the draw — which is what makes
	// the measured slowdown monotone non-decreasing in Θ.
	ThetaSeed uint64
	// Faults is the static fault density for the multi-faulty scheme:
	// the fraction of processors and memory cells sampled dead at
	// construction (topology.FaultMask). Must lie in [0, 1); 0 means
	// fault-free. The fault-free schemes reject a nonzero value with a
	// typed ParamError — faults change the planned distances, so a
	// silent ignore would misattribute every charge.
	Faults float64
	// FaultSeed seeds the fault draws. Sampling is threshold-based, so
	// a density sweep at a fixed seed has NESTED dead sets and the
	// measured extra slowdown is monotone in Faults (E-FAULT pins this).
	FaultSeed uint64

	// faultDistMul and faultMemMul are the planning stretch factors the
	// multi-faulty scheme derives from its sampled mask (DetourFactor,
	// MemOverhead) and threads into the cost formulas below; 0 means
	// unset and reads as 1. Unexported: callers select faults via
	// Faults/FaultSeed, never by injecting raw multipliers.
	faultDistMul float64
	faultMemMul  float64
}

// faultMuls resolves the fault stretch factors, mapping the zero value
// to exactly 1.0 — every fault-free cost formula multiplies by these,
// and x * 1.0 == x in IEEE arithmetic, so the fault-free virtual times
// stay bit-identical (the golden contract).
func (o MultiOptions) faultMuls() (distMul, memMul float64) {
	distMul, memMul = o.faultDistMul, o.faultMemMul
	if distMul == 0 {
		distMul = 1
	}
	if memMul == 0 {
		memMul = 1
	}
	return distMul, memMul
}

// delayModel builds the cost.DelayModel the options select: nil for the
// lockstep engine (Theta 0), a seeded ThetaModel otherwise. Callers
// validate Theta first (validateTheta), so construction cannot fail.
func (o MultiOptions) delayModel() cost.DelayModel {
	if o.Theta == 0 {
		return nil
	}
	dm, err := cost.NewThetaModel(o.Theta, o.ThetaSeed)
	if err != nil {
		panic(err) // unreachable behind validateTheta
	}
	return dm
}

// Multi2Options configures the d = 2 multiprocessor model.
type Multi2Options = MultiOptions

// Multi3Options configures the d = 3 multiprocessor model.
type Multi3Options = MultiOptions

// MultiResult extends Result with the multiprocessor-specific accounting.
// One struct serves every dimension (aliases Multi2Result/Multi3Result):
// StripWidth/PrepTime/Domains are d = 1 fields, Span is d = 2/3.
type MultiResult struct {
	Result
	// PrepTime is the one-time rearrangement cost (the paper amortizes
	// it over repeated simulation cycles; it is excluded from Time).
	PrepTime cost.Time
	// StripWidth is the d = 1 strip width s actually used.
	StripWidth int
	// Span is the d = 2/3 kernel span σ actually used.
	Span int
	// Regime1Levels is the number of relocation levels executed.
	Regime1Levels int
	// Domains is the number of D(p·s) domains processed in Regime 2.
	Domains int
	// Phases attributes the schedule's makespan and charges to the
	// rearrange / regime1 / regime2-exec / regime2-exchange phases; its
	// entry times sum to Time + PrepTime (up to float regrouping). Nil
	// for the degenerate p = 1 fallback, which runs no phased schedule.
	Phases cost.PhaseBreakdown
	// Faults carries the fault-mask accounting of a multi-faulty run;
	// nil for every fault-free scheme.
	Faults *FaultReport
}

// Multi2Result reports the d = 2 multiprocessor run.
type Multi2Result = MultiResult

// Multi3Result reports the d = 3 multiprocessor run.
type Multi3Result = MultiResult

// multiGeomD1 is the d = 1 geometry spec: the Theorem 4 scheme. The
// span-model fields are nil because the d = 1 planner below implements
// the paper's explicit construction (strips, π rearrangement, diamond
// domains) rather than the d-generic span model; it draws the kernel
// machinery, κ normalization and face size from the spec.
var multiGeomD1 = &multiGeom{
	d:           1,
	kernelFloor: 4, // a width-1 strip: one vertex per step, in place
	calSpan:     func(s int) int { return s },
	calProg: func(_ int, prog network.Program) network.Program {
		// The kernel is NOT program-independent: prog.Address picks the
		// memory cell touched per vertex and an optional MemUser shrinks
		// the relocated image from m to m' words, so d = 1 calibrates on
		// the caller's program (TestDiamondKernelProgramDependence).
		return prog
	},
	calRun: func(ctx context.Context, cal, m int, prog network.Program) (Result, error) {
		// An s × s computation holds about two diamonds' worth of
		// vertices; the kernel is half its measured time.
		return BlockedD1Context(ctx, cal, m, cal, 0, prog)
	},
	distRed:    func(pf float64) float64 { return pf },
	faceSize:   func(sf float64) float64 { return sf },
	theoryExec: func(sf, mf float64) float64 { return sf * sf / 2 * math.Min(sf, mf*analytic.Log(sf/mf)) },
}

// diamondKernel measures the time to execute one diamond D(s) with memory
// density m — the d = 1 entry of the engine's unified kernel cache.
func diamondKernel(ctx context.Context, s, m int, prog network.Program) (float64, error) {
	return multiGeomD1.kernel(ctx, s, m, prog)
}

// MultiD1 runs Theorem 4's simulation of M1(n, n, m) on M1(n, p, m):
//
//  1. the initial data, viewed as q = n/s strips of width s, is
//     rearranged by π = π2·π1 so that originally adjacent strips are
//     either adjacent or exactly q/p strips apart (perm package);
//  2. Regime 1 relocates data down log2(n/(p·s)) levels of the diamond
//     recursion, each level costing Θ(n²m/p²) wall time thanks to the
//     p-fold distance reduction the rearrangement bought;
//  3. Regime 2 processes the Θ((n/ps)²) domains of type D(p·s)
//     sequentially; each takes 2p-1 stages in which every processor
//     executes one diamond D(s) of its zig-zag band (Figure 2) — solo on
//     odd stages, cooperating with a neighbor on even stages, exchanging
//     the Θ(s) broadcast values that cross the shared diagonal as a
//     message over distance n/p.
//
// Fidelity: the guest state advances functionally (exactly); costs are
// charged per phase, with the per-diamond execution kernel measured by a
// real BlockedD1 run of the same (s, m) geometry (per-address fidelity),
// and the relocation/exchange phases charged at the word-and-distance
// granularity derived in the comments below. See DESIGN.md's fidelity
// ladder.
func MultiD1(n, p, m, steps int, prog network.Program, opts MultiOptions) (MultiResult, error) {
	return MultiD1Context(context.Background(), n, p, m, steps, prog, opts)
}

// MultiD1Context is MultiD1 under a context: the kernel calibration run,
// the span search, and the functional guest replay all poll cancellation
// cooperatively, and replay progress is reported to any attached
// Progress. Checks are host-side only, so a never-cancelled run's
// virtual times are bit-identical to MultiD1's.
func MultiD1Context(ctx context.Context, n, p, m, steps int, prog network.Program, opts MultiOptions) (MultiResult, error) {
	if p < 1 || n < p || n%p != 0 {
		return MultiResult{}, fmt.Errorf("simulate: need p | n, got n=%d p=%d", n, p)
	}
	if m < 1 {
		return MultiResult{}, perr("multi", "m", "memory density must be >= 1", m)
	}
	if steps < 1 {
		return MultiResult{}, perr("multi", "steps", "guest step count must be >= 1", steps)
	}
	if e := validateTheta("multi", opts.Theta); e != nil {
		return MultiResult{}, e
	}
	if p == 1 {
		// Degenerate case: Theorem 3's machinery. A single processor
		// exchanges no messages, so the delay model is immaterial.
		r, err := BlockedD1Context(ctx, n, m, steps, 0, prog)
		return MultiResult{Result: r, StripWidth: n}, err
	}
	ec := newExecCtx(ctx)
	s := opts.StripWidth
	if s <= 0 {
		s = analytic.RoundToPow2Divisor(analytic.OptimalS(n, m, p), n/p)
	}
	if s < 1 || (n/p)%s != 0 {
		return MultiResult{}, fmt.Errorf("simulate: strip width %d must divide n/p = %d", s, n/p)
	}
	q := n / s
	pi := perm.New(q, p)

	nf, pf, mf, sf := float64(n), float64(p), float64(m), float64(s)

	// The per-diamond execution kernel is measured from a real Theorem 3
	// execution, which carries the machinery's constant factor (stack
	// staging, read+write per moved word). The relocation and exchange
	// phases below are derived as word·distance counts with unit
	// constants; to keep the phases commensurate — as they would be if
	// one machine executed all of them — they are scaled by the kernel's
	// measured-over-theoretical constant κ.
	kernel, err := diamondKernel(ctx, s, m, prog)
	if err != nil {
		return MultiResult{}, err
	}
	kappa := kernel / multiGeomD1.theoryExec(sf, mf)
	if kappa < 1 {
		kappa = 1
	}

	// The rearranged relocation/exchange distance is certified by the
	// permutation itself: originally adjacent strips end up at most
	// MaxAdjacentDisplacement = q/p strips apart (property 1), i.e.
	// (q/p)·s = n/p guest distance — the p-fold reduction from the raw
	// Θ(n) scale. The ablated scheme forgoes it.
	//
	// Under a fault mask, every distance-proportional charge stretches
	// by the mask's detour bound and every image traversal by its memory
	// packing overhead; both factors are exactly 1.0 fault-free, keeping
	// the fault-free times bit-identical (see faultMuls).
	distMul, memMul := opts.faultMuls()
	relocDist := float64(pi.MaxAdjacentDisplacement()*s) * distMul
	if opts.NoRearrange {
		relocDist = nf * distMul
	}

	// Phase 1 quantities: Regime 1 relocation levels. Level k moves
	// 2^k·n·m words at geometric distance relocDist/2^k: the 2^k factors
	// cancel, so every level costs n·m·relocDist/p wall time per
	// processor — the paper's Θ(n²m/p²) with rearrangement. (A word
	// moved across guest-volume distance D occupies D·m memory
	// addresses, and f(x) = x/m, so the per-word cost is D independent
	// of m.)
	levels := 0
	if s < n/p {
		levels = int(math.Round(math.Log2(nf / (pf * sf))))
	}
	perLevelPerProc := kappa * nf * (mf * memMul) * relocDist / pf
	regime1 := make([]float64, levels)
	for k := range regime1 {
		regime1[k] = perLevelPerProc
	}

	// Phase 2 quantities: the (n/ps)² domains of D(p·s), 2p-1 stages
	// each: p-1 solo, p cooperating.
	cells := lattice.DiamondGrid(n, steps+1, p*s)
	numDomains := len(cells)
	exchDist := float64(pi.MaxAdjacentDisplacement()*s) * distMul
	if opts.NoRearrange {
		exchDist = nf / 2 * distMul
	}
	solo := float64(p - 1)
	coop := float64(p)
	var stageExtra float64
	exchCat := cost.Message
	if opts.NoCooperate {
		// Solo execution of shared diamonds: pull s·m remote words
		// through memory, each paying the exchange distance.
		stageExtra = kappa * multiGeomD1.faceSize(sf) * (mf * memMul) * exchDist
		exchCat = cost.Transfer
	} else {
		// Exchange Θ(s) broadcast values over the link, each paying
		// the full distance (no pipelining, as in the paper's
		// per-item accounting "in time O(s·n/p)").
		stageExtra = kappa * multiGeomD1.faceSize(sf) * exchDist
	}

	bank, prep := playScheduleAuto(ec.tr, p, multiSchedule{
		// Phase 0: rearrangement. n·m words move distance Θ(n) with
		// p-fold parallelism: per processor, (n·m/p) words at average
		// distance n/2 — stretched by the fault detour and packing
		// factors like every other transfer.
		prep:         kappa * nf * (mf * memMul) / pf * (nf * distMul) / 2,
		hasPrep:      true,
		regime1:      regime1,
		domains:      numDomains,
		exec:         (solo + coop) * kernel,
		exch:         coop * stageExtra,
		exchCat:      exchCat,
		roundBarrier: true,
	}, opts.delayModel())
	elapsed := bank.MaxNow() - prep

	// Functional execution (exact): the schedule above is a topological
	// execution of the same dag, so the state evolution is the guest's.
	replay := ec.tr.Start("replay")
	outs, mems, err := network.RunGuestPureHook(1, n, m, steps, prog, ec.hook())
	if err != nil {
		return MultiResult{}, err
	}
	if replay != nil {
		replay.SetAttr("vertices", float64(n)*float64(steps))
		replay.End()
	}

	return MultiResult{
		Result: Result{
			Outputs:  outs,
			Memories: mems,
			Time:     elapsed,
			Ledger:   bank.Ledgers(),
			Steps:    steps,
		},
		PrepTime:      prep,
		StripWidth:    s,
		Regime1Levels: levels,
		Domains:       numDomains,
		Phases:        bank.Phases(),
	}, nil
}

// MultiD1Cycles simulates cycles·n guest steps by repeating the n-step
// simulation of MultiD1 (the paper's "for larger values of Tn, it is
// sufficient to repeat the n-step simulation ⌈Tn/n⌉ times"), so the
// one-time rearrangement cost amortizes: the reported Time includes the
// preprocessing once plus cycles executions, and the effective slowdown
// converges to the steady-state (n/p)·A(n, m, p) as cycles grows — "its
// cost gives a contribution to the slowdown that vanishes as the number
// of simulated steps increases" (Section 4.2).
func MultiD1Cycles(n, p, m, cycles int, prog network.Program, opts MultiOptions) (MultiResult, error) {
	return MultiD1CyclesContext(context.Background(), n, p, m, cycles, prog, opts)
}

// MultiD1CyclesContext is MultiD1Cycles under a context; see
// MultiD1Context for the cancellation and progress contract.
func MultiD1CyclesContext(ctx context.Context, n, p, m, cycles int, prog network.Program, opts MultiOptions) (MultiResult, error) {
	if cycles < 1 {
		return MultiResult{}, fmt.Errorf("simulate: cycles %d < 1", cycles)
	}
	one, err := MultiD1Context(ctx, n, p, m, n, prog, opts)
	if err != nil {
		return MultiResult{}, err
	}
	total := one.PrepTime + cost.Time(cycles)*one.Time
	ec := newExecCtx(ctx)
	replay := ec.tr.Start("replay")
	outs, mems, err := network.RunGuestPureHook(1, n, m, cycles*n, prog, ec.hook())
	if err != nil {
		return MultiResult{}, err
	}
	if replay != nil {
		replay.SetAttr("vertices", float64(n)*float64(cycles*n))
		replay.End()
	}
	res := one
	res.Outputs = outs
	res.Memories = mems
	res.Time = total
	res.Steps = cycles * n
	return res, nil
}
