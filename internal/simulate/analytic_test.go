package simulate

import (
	"context"
	"math"
	"sort"
	"testing"

	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/guest"
	"bsmp/internal/lattice"
)

// walkDiamonds visits every domain the blocked recursion on root would
// visit (root and all descendants down to leaves of span <= leafSpan).
func walkDiamonds(root lattice.Diamond, leafSpan int, visit func(lattice.Diamond)) {
	visit(root)
	if root.Span() <= leafSpan {
		return
	}
	kids := root.Children()
	if kids == nil {
		return
	}
	for _, kd := range kids {
		walkDiamonds(kd.(lattice.Diamond), leafSpan, visit)
	}
}

// The O(width) column geometry must agree with the O(volume) enumeration
// on every domain of the recursion: same columns, same time spans, and
// each column a contiguous interval.
func TestAnalyticColumnsMatchPoints(t *testing.T) {
	for _, tc := range []struct{ n, steps, leafSpan int }{
		{16, 8, 4}, {13, 5, 2}, {32, 3, 4}, {5, 12, 2},
	} {
		root := lattice.DiamondAround(tc.n, tc.steps+1)
		walkDiamonds(root, tc.leafSpan, func(d lattice.Diamond) {
			type span struct{ ta, tb, count int }
			byX := map[int]*span{}
			d.Points(func(p lattice.Point) bool {
				s, ok := byX[p.X]
				if !ok {
					byX[p.X] = &span{ta: p.T, tb: p.T, count: 1}
					return true
				}
				if p.T < s.ta {
					s.ta = p.T
				}
				if p.T > s.tb {
					s.tb = p.T
				}
				s.count++
				return true
			})
			var xs []int
			for x := range byX {
				xs = append(xs, x)
			}
			sort.Ints(xs)
			got := analyticColumns(d)
			if len(got) != len(xs) {
				t.Fatalf("n=%d steps=%d %v: %d columns, want %d", tc.n, tc.steps, d, len(got), len(xs))
			}
			for i, x := range xs {
				s := byX[x]
				if s.count != s.tb-s.ta+1 {
					t.Fatalf("n=%d steps=%d %v: column %d not contiguous", tc.n, tc.steps, d, x)
				}
				g := got[i]
				if g.pos.X != x || g.ta != s.ta || g.tb != s.tb {
					t.Fatalf("n=%d steps=%d %v: column %d = {%d,%d,%d}, want {%d,%d,%d}",
						tc.n, tc.steps, d, i, g.pos.X, g.ta, g.tb, x, s.ta, s.tb)
				}
			}
		})
	}
}

// The O(width) preboundary and live-out enumerations must reproduce the
// dag package's O(volume) versions exactly — same points in the same
// order, since copy-in charge sequences and record address vectors are
// both order-sensitive.
func TestAnalyticBoundaryMatchesDag(t *testing.T) {
	for _, tc := range []struct{ n, steps, leafSpan int }{
		{16, 8, 4}, {13, 5, 2}, {32, 3, 4}, {5, 12, 2},
	} {
		g := dag.NewLineGraph(tc.n, tc.steps+1)
		root := g.Domain().(lattice.Diamond)
		walkDiamonds(root, tc.leafSpan, func(d lattice.Diamond) {
			wantPre := dag.Preboundary(g, d)
			gotPre := analyticPreboundary(d, tc.n)
			if len(gotPre) != len(wantPre) {
				t.Fatalf("n=%d steps=%d %v: preboundary %d points, want %d",
					tc.n, tc.steps, d, len(gotPre), len(wantPre))
			}
			for i := range wantPre {
				if gotPre[i] != wantPre[i] {
					t.Fatalf("n=%d steps=%d %v: preboundary[%d] = %v, want %v",
						tc.n, tc.steps, d, i, gotPre[i], wantPre[i])
				}
			}
			wantLive := dag.LiveOut(g, d)
			gotLive := analyticLiveOut(d, tc.n, tc.steps)
			if len(gotLive) != len(wantLive) {
				t.Fatalf("n=%d steps=%d %v: liveout %d points, want %d",
					tc.n, tc.steps, d, len(gotLive), len(wantLive))
			}
			for i := range wantLive {
				if gotLive[i] != wantLive[i] {
					t.Fatalf("n=%d steps=%d %v: liveout[%d] = %v, want %v",
						tc.n, tc.steps, d, i, gotLive[i], wantLive[i])
				}
			}
		})
	}
}

// The analytic engine charges the same work as the exact engine: Compute
// is exactly one unit per lattice vertex, per-category charge counts are
// identical, totals and the virtual time agree to float regrouping
// (replay sums deltas, so bit-identity is not expected), and the space
// bound is the same recursion invariant.
func TestAnalyticMatchesExact(t *testing.T) {
	for _, tc := range []struct {
		name     string
		n, m     int
		steps    int
		memo     bool
	}{
		{"mixca-memo", 64, 4, 16, true},
		{"mixca-nomemo", 64, 4, 16, false},
		{"mixca-m8", 48, 8, 12, true},
		{"rule90", 64, 4, 16, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var prog = guest.AsNetwork{G: guest.MixCA{Seed: 9}}
			if tc.name == "rule90" {
				prog = guest.AsNetwork{G: guest.Rule90{Seed: 1}}
			}
			ctx := context.Background()
			if !tc.memo {
				ctx = WithoutMemo(ctx)
			}
			exact, err := BlockedD1Context(WithoutMemo(context.Background()), tc.n, tc.m, tc.steps, 0, prog)
			if err != nil {
				t.Fatal(err)
			}
			got, err := AnalyticBlockedD1Context(ctx, tc.n, tc.m, tc.steps, 0, prog)
			if err != nil {
				t.Fatal(err)
			}
			if got.Outputs != nil || got.Memories != nil {
				t.Error("analytic result carries guest outputs; want nil")
			}
			if got.Space != exact.Space {
				t.Errorf("Space = %d, exact %d", got.Space, exact.Space)
			}
			rel := math.Abs(float64(got.Time-exact.Time)) / float64(exact.Time)
			if rel > 1e-9 {
				t.Errorf("Time = %v, exact %v (rel %g)", got.Time, exact.Time, rel)
			}
			vol := int64(tc.n * (tc.steps + 1))
			if c := got.Ledger.Count(cost.Compute); c != vol {
				t.Errorf("Compute count = %d, want %d", c, vol)
			}
			if tot := float64(got.Ledger.Total(cost.Compute)); tot != float64(vol) {
				t.Errorf("Compute total = %v, want %d exactly", tot, vol)
			}
			for _, c := range cost.Categories() {
				if got.Ledger.Count(c) != exact.Ledger.Count(c) {
					t.Errorf("%v count = %d, exact %d", c, got.Ledger.Count(c), exact.Ledger.Count(c))
				}
				gt, et := float64(got.Ledger.Total(c)), float64(exact.Ledger.Total(c))
				if et == 0 {
					if gt != 0 {
						t.Errorf("%v total = %v, exact 0", c, gt)
					}
					continue
				}
				if math.Abs(gt-et)/et > 1e-9 {
					t.Errorf("%v total = %v, exact %v", c, gt, et)
				}
			}
		})
	}
}

// The analytic run must honor cancellation and progress like the exact
// engine: progress meter totals reach the full volume, and an
// already-cancelled context aborts before doing work.
func TestAnalyticProgressAndCancel(t *testing.T) {
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 9}}
	var pm Progress
	ctx := WithProgress(context.Background(), &pm)
	if _, err := AnalyticBlockedD1Context(ctx, 64, 4, 16, 0, prog); err != nil {
		t.Fatal(err)
	}
	if done := pm.Vertices.Load(); done != 64*17 {
		t.Errorf("progress vertices = %d, want %d", done, 64*17)
	}

	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyticBlockedD1Context(cctx, 1024, 4, 256, 0, prog); err == nil {
		t.Error("cancelled analytic run returned nil error")
	}
}

// A large instance — beyond what the exact engine can touch in test time
// (n = 2^16 x steps = 2^8: 16.8M vertices) — must complete quickly on
// the analytic path and respect the work/span laws: Time >= span,
// Time >= total work (P = 1), and the model's bandwidth lower bound.
func TestAnalyticLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n analytic run")
	}
	const n, m, steps = 1 << 16, 8, 1 << 8
	defer SetMemoCapacity(MemoCapacity())
	SetMemoCapacity(1 << 16)
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 9}}
	res, err := AnalyticBlockedD1(n, m, steps, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	vol := int64(n) * int64(steps+1)
	if c := res.Ledger.Count(cost.Compute); c != vol {
		t.Errorf("Compute count = %d, want %d", c, vol)
	}
	work := float64(res.Ledger.Sum())
	if float64(res.Time) < work {
		t.Errorf("Time %v below serial work %v", res.Time, work)
	}
	if float64(res.Time) < float64(steps+1) {
		t.Errorf("Time %v below span %d", res.Time, steps+1)
	}
}
