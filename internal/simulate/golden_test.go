package simulate

import (
	"math"
	"testing"

	"bsmp/internal/cost"
	"bsmp/internal/guest"
)

// These golden values were recorded from the seed implementation (hash-map
// address tables) before the dense-table rewrite. Virtual time is part of
// the repository's scientific contract: the optimization work changes how
// the host computes addresses, never what the simulated machine does, so
// every Time below must stay BIT-identical — not approximately equal.
// Space allowances are structural (separator.SpaceNeeded / spaceNeeded)
// and must match exactly too. If a change legitimately alters the cost
// model, the new values must be re-derived and the change called out as
// model-affecting, never absorbed silently.

func TestGoldenUniDC(t *testing.T) {
	cases := []struct {
		name      string
		d, n, stp int
		leaf      int
		seed      uint64
		time      cost.Time
		space     int
	}{
		{"d1_n64", 1, 64, 64, 8, 1, 2.831097e+06, 892},
		{"d2_n64", 2, 64, 8, 8, 2, 59415.13316371092, 596},
		{"d3_n64", 3, 64, 4, 8, 3, 12645.595148408436, 360},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := UniDC(c.d, c.n, c.stp, c.leaf, guest.Rule90{Seed: c.seed})
			if err != nil {
				t.Fatal(err)
			}
			if r.Time != c.time {
				t.Errorf("Time = %v, golden %v", r.Time, c.time)
			}
			if r.Space != c.space {
				t.Errorf("Space = %d, golden %d", r.Space, c.space)
			}
		})
	}
}

func TestGoldenBlocked(t *testing.T) {
	p1 := guest.AsNetwork{G: guest.MixCA{Seed: 9}}
	p2 := guest.AsNetwork{G: guest.MixCA{Seed: 9}, Side: 8}
	p3 := guest.AsNetwork{G: guest.MixCA{Seed: 9}, CubeSide: 4}

	check := func(name string, r Result, err error, time cost.Time, space int) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Time != time {
			t.Errorf("%s: Time = %v, golden %v", name, r.Time, time)
		}
		if space != 0 && r.Space != space {
			t.Errorf("%s: Space = %d, golden %d", name, r.Space, space)
		}
	}

	r, err := BlockedD1(64, 4, 16, 0, p1)
	check("BlockedD1 n=64 m=4", r, err, 1.59814675e+06, 0)
	r, err = BlockedD1(64, 16, 16, 3, p1)
	check("BlockedD1 n=64 m=16 leaf=3", r, err, 3.7769246875e+06, 0)
	r, err = BlockedD2(64, 4, 8, 0, p2)
	check("BlockedD2 n=64 m=4", r, err, 172983.02430326765, 2604)
	r, err = BlockedD2(64, 4, 8, 4, p2)
	check("BlockedD2 n=64 m=4 leaf=4", r, err, 172983.02430326765, 2604)
	r, err = BlockedD3(64, 4, 4, 0, p3)
	check("BlockedD3 n=64 m=4", r, err, 39704.06681616664, 2128)
	r, err = BlockedD3(64, 4, 4, 2, p3)
	check("BlockedD3 n=64 m=4 leaf=2", r, err, 58759.92294148945, 2264)
}

func TestGoldenMulti(t *testing.T) {
	p1 := guest.AsNetwork{G: guest.MixCA{Seed: 9}}

	// Phase attribution rides along without perturbing the golden times:
	// the breakdown names the four schedule phases in order and its entry
	// times telescope to the full makespan Time + PrepTime (up to float
	// regrouping of the same charges, hence the relative tolerance on the
	// sum while Time itself stays bit-exact).
	checkPhases := func(name string, mr MultiResult) {
		t.Helper()
		wantNames := []string{
			cost.PhaseRearrange, cost.PhaseRegime1,
			cost.PhaseRegime2Exec, cost.PhaseRegime2Exchange,
		}
		if len(mr.Phases) != len(wantNames) {
			t.Errorf("%s: %d phases, want %d (%v)", name, len(mr.Phases), len(wantNames), mr.Phases)
			return
		}
		for i, want := range wantNames {
			if mr.Phases[i].Name != want {
				t.Errorf("%s: phase[%d] = %q, want %q", name, i, mr.Phases[i].Name, want)
			}
		}
		full := float64(mr.Time + mr.PrepTime)
		if got := float64(mr.Phases.Total()); math.Abs(got-full) > 1e-9*full {
			t.Errorf("%s: phase total %v != Time+PrepTime %v", name, got, full)
		}
		if got := mr.Phases.Time(cost.PhaseRearrange); got != mr.PrepTime {
			t.Errorf("%s: rearrange phase %v != PrepTime %v", name, got, mr.PrepTime)
		}
	}

	mr, err := MultiD1(64, 4, 16, 16, p1, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mr.Time != 79686.0625 {
		t.Errorf("MultiD1: Time = %v, golden 79686.0625", mr.Time)
	}
	if mr.PrepTime != 45232 {
		t.Errorf("MultiD1: PrepTime = %v, golden 45232", mr.PrepTime)
	}
	checkPhases("MultiD1", mr)

	m2, err := MultiD2(256, 4, 8, 8, guest.AsNetwork{G: guest.MixCA{Seed: 9}, Side: 16}, Multi2Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Time != 121540.75244594147 {
		t.Errorf("MultiD2: Time = %v, golden 121540.75244594147", m2.Time)
	}
	checkPhases("MultiD2", m2)

	m3, err := MultiD3(512, 8, 4, 8, guest.AsNetwork{G: guest.MixCA{Seed: 9}, CubeSide: 8}, Multi3Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Time != 151296.39378136813 {
		t.Errorf("MultiD3: Time = %v, golden 151296.39378136813", m3.Time)
	}
	checkPhases("MultiD3", m3)

	cr, err := CoopBlock(64, 4, 8, 8, 8, p1)
	if err != nil {
		t.Fatal(err)
	}
	if cr.CoopTime != 1014 {
		t.Errorf("CoopBlock: CoopTime = %v, golden 1014", cr.CoopTime)
	}
	if cr.SoloTime != 3754 {
		t.Errorf("CoopBlock: SoloTime = %v, golden 3754", cr.SoloTime)
	}
}
