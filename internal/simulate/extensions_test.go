package simulate

import (
	"testing"

	"bsmp/internal/guest"
	"bsmp/internal/hram"
)

// These tests cover the two extensions from the paper's conclusions that
// the blocked executor supports: pipelined block transfers and guests
// using only m' < m memory words.

func TestBlockedD1PipelinedFunctional(t *testing.T) {
	prog := netProg(0)
	res, err := BlockedD1(32, 4, 24, 0, prog, hram.WithPipelinedBlocks())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(1, 32, 4, prog); err != nil {
		t.Fatal(err)
	}
}

func TestBlockedD1PipelinedFaster(t *testing.T) {
	// Pipelined block moves (latency + length instead of length × latency)
	// must strictly reduce the measured time, increasingly so for larger
	// m where transfers dominate.
	prog := netProg(0)
	n, steps := 128, 32
	for _, m := range []int{4, 16, 64} {
		std, err := BlockedD1(n, m, steps, 0, prog)
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := BlockedD1(n, m, steps, 0, prog, hram.WithPipelinedBlocks())
		if err != nil {
			t.Fatal(err)
		}
		if pipe.Time >= std.Time {
			t.Errorf("m=%d: pipelined %v not faster than per-word %v", m, pipe.Time, std.Time)
		}
	}
}

func TestBlockedD1PipelinedRemovesLocalityGrowth(t *testing.T) {
	// The conclusions' claim: with pipelined memory the locality slowdown
	// (the growth of slowdown with m) largely disappears. Measure the
	// m = 64 over m = 4 time ratio under both models: the pipelined ratio
	// must be much closer to 1.
	prog := netProg(0)
	n, steps := 256, 64
	ratio := func(opts ...hram.Option) float64 {
		a, err := BlockedD1(n, 4, steps, 0, prog, opts...)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BlockedD1(n, 64, steps, 0, prog, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return float64(b.Time) / float64(a.Time)
	}
	std := ratio()
	pipe := ratio(hram.WithPipelinedBlocks())
	if pipe >= std {
		t.Errorf("pipelined m-growth %v not below per-word %v", pipe, std)
	}
	if pipe > 1.6 {
		t.Errorf("pipelined m-growth %v, want near-flat (< 1.6)", pipe)
	}
}

func TestRestrictMemFunctional(t *testing.T) {
	// A guest declaring m' < m live words must still reproduce the pure
	// run (including the untouched static cells).
	base := guest.MixCA{Seed: 13}
	for _, mp := range []int{1, 3, 8} {
		prog := guest.RestrictMem{P: base, Words: mp}
		res, err := BlockedD1(16, 8, 12, 0, prog)
		if err != nil {
			t.Fatalf("m'=%d: %v", mp, err)
		}
		if err := res.Verify(1, 16, 8, prog); err != nil {
			t.Fatalf("m'=%d: %v", mp, err)
		}
	}
}

func TestRestrictMemImprovesLocality(t *testing.T) {
	// The conclusions' m' < m observation: with density m fixed, a guest
	// touching fewer cells simulates strictly faster, monotonically in m'.
	base := guest.MixCA{Seed: 13}
	n, m, steps := 128, 64, 32
	var prev float64
	for i, mp := range []int{4, 16, 64} {
		prog := guest.RestrictMem{P: base, Words: mp}
		res, err := BlockedD1(n, m, steps, 0, prog)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Verify(1, n, m, prog); err != nil {
			t.Fatal(err)
		}
		if i > 0 && float64(res.Time) <= prev {
			t.Errorf("m'=%d: time %v not above m'-smaller run %v", mp, res.Time, prev)
		}
		prev = float64(res.Time)
	}
}

func TestRestrictMemAddressViolationCaught(t *testing.T) {
	// A program that lies about its live region must fail loudly.
	prog := lyingMemUser{}
	if _, err := BlockedD1(8, 4, 4, 0, prog); err == nil {
		t.Fatal("out-of-region address not caught")
	}
}

type lyingMemUser struct{}

func (lyingMemUser) MemWords(int) int { return 1 }
func (lyingMemUser) Init(node int, mem []hram.Word) hram.Word {
	return hram.Word(node)
}
func (lyingMemUser) Address(node, step, memSize int) int { return memSize - 1 } // beyond m'=1
func (lyingMemUser) Step(node, step int, cell hram.Word, prev []hram.Word) (hram.Word, hram.Word) {
	return cell + 1, cell
}

func TestSimulatorsPreserveSortingInvariant(t *testing.T) {
	// Beyond bit-equality with the reference, a semantic end-to-end
	// invariant: simulating the odd-even transposition sorter must leave
	// a sorted row. Run the guest through the blocked and multiprocessor
	// schemes.
	n := 32
	prog := guest.AsNetwork{G: guest.OETSort{Seed: 5}}
	checkSorted := func(name string, out []hram.Word) {
		t.Helper()
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				t.Fatalf("%s: output not sorted at %d", name, i)
			}
		}
	}
	blk, err := BlockedD1(n, 1, n, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted("blocked", blk.Outputs)
	mu, err := MultiD1(n, 4, 1, n, prog, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkSorted("multi", mu.Outputs)
	nv, err := Naive(1, n, 4, 1, n, prog)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted("naive", nv.Outputs)
}
