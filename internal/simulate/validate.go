package simulate

import (
	"fmt"
	"math"
)

// This file is the panic-free validation boundary in front of the scheme
// registry. The internal constructors (network.New, hram.New, the lattice
// builders, analytic.IntSqrtExact) deliberately panic on malformed
// geometry: inside the library those conditions are invariant violations,
// and a silent rounding would misattribute every distance charge. But the
// registry is a service surface — cmd/tradeoff, cmd/experiments and the
// bsmpd daemon all feed it caller-controlled tuples — so every constraint
// a constructor would enforce by panicking is re-checked here first and
// reported as a typed ParamError. The contract, pinned by the fuzz test
// at the repository root: RunScheme never panics on any (name, d, n, p,
// m, steps); panics that remain in internal packages are unreachable
// through the registry and serve as invariant assertions only.

// ParamError reports one parameter constraint violation: which field of
// the (scheme, d, n, p, m, steps) tuple is out of range, the constraint
// it violates, and the offending value. It marshals directly into the
// bsmpd error payload.
type ParamError struct {
	// Scheme is the registry key the tuple was validated against
	// (empty when the violation precedes scheme lookup).
	Scheme string `json:"scheme,omitempty"`
	// Field names the offending parameter: "scheme", "d", "n", "p",
	// "m", "steps", "theta" or "faults".
	Field string `json:"field"`
	// Constraint states the violated requirement in words.
	Constraint string `json:"constraint"`
	// Got is the rejected value: the scheme name for Field "scheme",
	// the integer value otherwise.
	Got any `json:"got"`
}

func (e *ParamError) Error() string {
	if e.Scheme != "" {
		return fmt.Sprintf("simulate: scheme %q: parameter %s: %s (got %v)",
			e.Scheme, e.Field, e.Constraint, e.Got)
	}
	return fmt.Sprintf("simulate: parameter %s: %s (got %v)", e.Field, e.Constraint, e.Got)
}

// perr builds a ParamError for scheme with an integer Got.
func perr(scheme, field, constraint string, got int) *ParamError {
	return &ParamError{Scheme: scheme, Field: field, Constraint: constraint, Got: got}
}

// perrF builds a ParamError for scheme with a float Got (the Θ-model
// delay ratio is the registry's only non-integer parameter).
func perrF(scheme, field, constraint string, got float64) *ParamError {
	return &ParamError{Scheme: scheme, Field: field, Constraint: constraint, Got: got}
}

// validateTheta checks the Θ-model delay ratio: 0 means unset (the
// scheme default applies), any other value must be finite and >= 1 —
// delays live in [distance, Θ·distance], so a ratio below 1 would mean
// faster-than-bounded-speed propagation.
func validateTheta(scheme string, theta float64) *ParamError {
	if theta == 0 {
		return nil
	}
	if math.IsNaN(theta) || math.IsInf(theta, 0) || theta < 1 {
		return perrF(scheme, "theta", "delay ratio Θ must be finite and >= 1", theta)
	}
	return nil
}

// validateFaults checks the static fault density: 0 means fault-free
// (and is the only value the fault-free schemes accept), any other
// value must lie in [0, 1) — a density of 1 or more leaves no live
// processor by construction, and NaN orders with nothing.
func validateFaults(scheme string, f float64) *ParamError {
	if f == 0 {
		return nil
	}
	if math.IsNaN(f) || f < 0 || f >= 1 {
		return perrF(scheme, "faults", "fault density must lie in [0, 1)", f)
	}
	return nil
}

// exactSqrt returns (√n, true) when n is a perfect square — the
// error-returning sibling of analytic.IntSqrtExact for the validation
// boundary, where a bad shape is caller input rather than an invariant.
func exactSqrt(n int) (int, bool) {
	if n < 0 {
		return 0, false
	}
	r := int(math.Sqrt(float64(n)))
	for r > 0 && r*r > n {
		r--
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	return r, r*r == n
}

// exactCbrt returns (∛n, true) when n is a perfect cube.
func exactCbrt(n int) (int, bool) {
	if n < 0 {
		return 0, false
	}
	r := int(math.Cbrt(float64(n)))
	for r > 0 && r*r*r > n {
		r--
	}
	for (r+1)*(r+1)*(r+1) <= n {
		r++
	}
	return r, r*r*r == n
}

// isSquare reports whether n is a perfect square (n >= 0).
func isSquare(n int) bool {
	_, ok := exactSqrt(n)
	return ok
}

// isCube reports whether n is a perfect cube (n >= 0).
func isCube(n int) bool {
	_, ok := exactCbrt(n)
	return ok
}

// validateCommon checks the constraints shared by every scheme: positive
// parameters, p <= n with p | n, and machine/dag volumes that fit in an
// int (the naive host uses density m+1 and the uniprocessor dags carry
// n·(steps+1) vertices, so both products are bounds-checked before any
// allocation-sized arithmetic can wrap).
func validateCommon(scheme string, d, n, p, m, steps int) *ParamError {
	if d < 1 || d > 3 {
		return perr(scheme, "d", "mesh dimension must be 1, 2 or 3", d)
	}
	if n < 1 {
		return perr(scheme, "n", "machine volume must be >= 1", n)
	}
	if p < 1 {
		return perr(scheme, "p", "host processor count must be >= 1", p)
	}
	if m < 1 {
		return perr(scheme, "m", "memory density must be >= 1", m)
	}
	if steps < 1 {
		return perr(scheme, "steps", "guest step count must be >= 1", steps)
	}
	if p > n {
		return perr(scheme, "p", fmt.Sprintf("must satisfy p <= n = %d", n), p)
	}
	if n%p != 0 {
		return perr(scheme, "p", fmt.Sprintf("must divide n = %d", n), p)
	}
	// Overflow guards: per-node memory (m+1)·(n/p) words, total memory
	// n·(m+1) words, dag volume n·(steps+1) vertices.
	if per := n / p; m+1 > math.MaxInt/per {
		return perr(scheme, "m", fmt.Sprintf("per-node memory (m+1)·(n/p) overflows with n/p = %d", per), m)
	}
	if m+1 > math.MaxInt/n {
		return perr(scheme, "m", fmt.Sprintf("total memory n·(m+1) overflows with n = %d", n), m)
	}
	if steps+1 > math.MaxInt/n {
		return perr(scheme, "steps", fmt.Sprintf("dag volume n·(steps+1) overflows with n = %d", n), steps)
	}
	return nil
}

// shapeError checks the mesh-shape constraint on a volume v (a perfect
// square for d = 2, a perfect cube for d = 3).
func shapeError(scheme, field string, d, v int) *ParamError {
	switch d {
	case 2:
		if !isSquare(v) {
			return perr(scheme, field, "d=2 mesh requires a perfect square", v)
		}
	case 3:
		if !isCube(v) {
			return perr(scheme, field, "d=3 mesh requires a perfect cube", v)
		}
	}
	return nil
}

// validateNaiveShape checks the naive scheme's region decomposition:
// d must be 1 or 2 (the naive executor has no d = 3 region geometry),
// and for d = 2 the guest (n), the host (p) and the per-host region
// (n/p) must all be perfect squares.
func validateNaiveShape(d, n, p int) *ParamError {
	if d != 1 && d != 2 {
		return perr("naive", "d", "naive scheme supports d in {1, 2}", d)
	}
	if d != 2 {
		return nil
	}
	if e := shapeError("naive", "n", 2, n); e != nil {
		return e
	}
	if !isSquare(p) {
		return perr("naive", "p", "d=2 naive host requires a perfect-square p", p)
	}
	// The region patch n/p needs no separate check: p | n with n and p
	// both perfect squares forces n/p to be a perfect square too.
	return nil
}

// validateBlocked checks the panic preconditions of the direct BlockedD1,
// BlockedD2 and BlockedD3 entry points (the registry path adds the full
// common checks on top).
func validateBlocked(d, n, m, steps int) *ParamError {
	if n < 1 {
		return perr("blocked", "n", "machine volume must be >= 1", n)
	}
	if m < 1 {
		return perr("blocked", "m", "memory density must be >= 1", m)
	}
	if steps < 0 {
		return perr("blocked", "steps", "guest step count must be >= 0", steps)
	}
	if steps+1 > math.MaxInt/n {
		return perr("blocked", "steps", fmt.Sprintf("dag volume n·(steps+1) overflows with n = %d", n), steps)
	}
	return shapeError("blocked", "n", d, n)
}

// uniprocOnly is the Validate hook shared by the p = 1 schemes.
func uniprocOnly(scheme string, d int) func(n, p, m, steps int, cfg SchemeConfig) *ParamError {
	return func(n, p, m, steps int, cfg SchemeConfig) *ParamError {
		if p != 1 {
			return perr(scheme, "p", "uniprocessor scheme requires p = 1", p)
		}
		return shapeError(scheme, "n", d, n)
	}
}

// ValidateParams checks a full (scheme, d, n, p, m, steps) tuple against
// the registered scheme's constraints without constructing anything,
// returning nil or a typed *ParamError (or the registry's lookup error
// for an unknown (name, d) pair). The optional cfg carries the per-run
// knobs some schemes constrain (the multi-theta delay ratio Θ); omitting
// it validates against the zero config. RunScheme calls it before
// dispatching, so no parameter combination reachable through the
// registry can trip an internal constructor panic.
func ValidateParams(name string, d, n, p, m, steps int, cfg ...SchemeConfig) error {
	var c SchemeConfig
	if len(cfg) > 0 {
		c = cfg[0]
	}
	s, err := SchemeByName(name, d)
	if err != nil {
		return err
	}
	if e := validateCommon(name, d, n, p, m, steps); e != nil {
		return e
	}
	if s.Validate != nil {
		if e := s.Validate(n, p, m, steps, c); e != nil {
			return e
		}
	}
	return nil
}
