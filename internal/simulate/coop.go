package simulate

import (
	"context"
	"fmt"

	"bsmp/internal/cost"
	"bsmp/internal/hram"
	"bsmp/internal/network"
)

// This file validates the cooperating execution mode of Section 4.2 from
// first principles, on real machines rather than via the phase model of
// MultiD1: a block of the guest computation straddling the boundary
// between two host processors is executed either
//
//   - cooperatively: each processor simulates its half on its own H-RAM,
//     and the Θ(1) boundary values per step travel as messages over the
//     host spacing n/p (the paper's "execution in the cooperating mode",
//     exchanging Θ(s) data items in total); or
//   - solo: the left processor simulates the whole block, first pulling
//     the right half's s/2 node memories — Θ(s·m) words — through memory
//     at the same distance.
//
// The paper observes that "depending upon the relative positions ... one
// alternative may be preferable over the other"; the measured crossover
// (cooperation wins as m grows, since it exchanges values instead of
// memories) is experiment E-COOP.

// CoopResult reports the two alternatives' measured times for one shared
// block, plus the verified outputs.
type CoopResult struct {
	// CoopTime is the makespan of the two-processor cooperative run.
	CoopTime cost.Time
	// SoloTime is the single-processor run including the remote fetch.
	SoloTime cost.Time
	// Outputs is the final broadcast row of the block (both runs agree).
	Outputs []hram.Word
}

// CoopBlock simulates steps steps of an s-column slice of the guest
// M1(n, n, m) that straddles the boundary between two adjacent processors
// of the host M1(n, p, m), both ways, and verifies the runs against each
// other. The slice is treated as isolated (reflecting ends), which keeps
// the comparison self-contained; s must be even and >= 2.
func CoopBlock(n, p, m, s, steps int, prog network.Program) (CoopResult, error) {
	return CoopBlockContext(context.Background(), n, p, m, s, steps, prog)
}

// CoopBlockContext is CoopBlock under a context: both the cooperative
// and the solo run poll cancellation once per simulated step, and report
// step progress to any attached Progress. Checks are host-side only, so
// a never-cancelled run's virtual times are bit-identical to CoopBlock's.
func CoopBlockContext(ctx context.Context, n, p, m, s, steps int, prog network.Program) (CoopResult, error) {
	if s < 2 || s%2 != 0 {
		return CoopResult{}, fmt.Errorf("simulate: CoopBlock needs even s >= 2, got %d", s)
	}
	if p < 2 || n%p != 0 {
		return CoopResult{}, fmt.Errorf("simulate: CoopBlock needs p >= 2 with p | n")
	}
	hostDist := float64(n) / float64(p)
	half := s / 2

	// --- Cooperative run: two processors, one H-RAM each. ---
	bank := cost.NewBank(2)
	// Each half holds half the node memories plus a broadcast word per
	// column plus one remote boundary slot.
	hsize := half*m + half + 1
	left := hram.New(hsize, hram.Standard(1, m), bank.Proc(0))
	right := hram.New(hsize, hram.Standard(1, m), bank.Proc(1))
	mach := [2]*hram.Machine{left, right}

	// Layout per half: node i's memory at [i·m, (i+1)·m); broadcast
	// words at [half·m + i]; the neighbor's boundary value at the last
	// cell.
	memBase := func(i int) int { return i * m }
	bAddr := func(i int) int { return half*m + i }
	remoteAddr := hsize - 1

	colOwner := func(x int) (side, local int) {
		if x < half {
			return 0, x
		}
		return 1, x - half
	}

	// Initialize (free, inputs in place).
	initMem := make([]hram.Word, m)
	b := make([]hram.Word, s)
	for x := 0; x < s; x++ {
		for i := range initMem {
			initMem[i] = 0
		}
		b[x] = prog.Init(x, initMem)
		side, local := colOwner(x)
		for i, w := range initMem {
			mach[side].Poke(memBase(local)+i, w)
		}
		mach[side].Poke(bAddr(local), b[x])
	}

	ec := newExecCtx(ctx)
	prevB := make([]hram.Word, s)
	ops := make([]hram.Word, 0, 3)
	for t := 1; t <= steps; t++ {
		if err := ec.step(s); err != nil {
			return CoopResult{}, err
		}
		copy(prevB, b)
		// Boundary exchange: each side sends its edge value to the other
		// (one word over the host spacing), written into the remote slot.
		bank.Send(0, 1, hostDist, 1)
		mach[1].Write(remoteAddr, prevB[half-1])
		bank.Send(1, 0, hostDist, 1)
		mach[0].Write(remoteAddr, prevB[half])
		// Each side simulates its half-layer on its own memory.
		for x := 0; x < s; x++ {
			side, local := colOwner(x)
			ma := mach[side]
			addr := memBase(local) + prog.Address(x, t, m)
			cell := ma.Read(addr)
			ops = ops[:0]
			ops = append(ops, prevB[x]) // self (charge local read)
			ma.Read(bAddr(local))
			if x > 0 {
				if os, ol := colOwner(x - 1); os == side {
					ma.Read(bAddr(ol))
				} else {
					ma.Read(remoteAddr)
				}
				ops = append(ops, prevB[x-1])
			}
			if x < s-1 {
				if os, ol := colOwner(x + 1); os == side {
					ma.Read(bAddr(ol))
				} else {
					ma.Read(remoteAddr)
				}
				ops = append(ops, prevB[x+1])
			}
			out, cellOut := prog.Step(x, t, cell, ops)
			ma.Op()
			ma.Write(addr, cellOut)
			ma.Write(bAddr(local), out)
			b[x] = out
		}
		bank.Barrier()
	}
	coopTime := bank.MaxNow()
	coopOut := make([]hram.Word, s)
	copy(coopOut, b)

	// --- Solo run: the left processor holds everything; the right
	// half's memories and broadcasts are first pulled across distance
	// n/p, each word paying the geometric distance. ---
	var meter cost.Meter
	solo := hram.New(s*m+s, hram.Standard(1, m), &meter)
	for x := 0; x < s; x++ {
		for i := range initMem {
			initMem[i] = 0
		}
		b[x] = prog.Init(x, initMem)
		for i, w := range initMem {
			solo.Poke(x*m+i, w)
		}
		solo.Poke(s*m+x, b[x])
		if x >= half {
			// Remote words: charge the pull explicitly (the fetch the
			// cooperating mode avoids).
			meter.ChargeN(cost.Transfer, int64(m+1), hostDist)
		}
	}
	for t := 1; t <= steps; t++ {
		if err := ec.step(s); err != nil {
			return CoopResult{}, err
		}
		copy(prevB, b)
		for x := 0; x < s; x++ {
			addr := x*m + prog.Address(x, t, m)
			cell := solo.Read(addr)
			ops = ops[:0]
			ops = append(ops, prevB[x])
			solo.Read(s*m + x)
			if x > 0 {
				solo.Read(s*m + x - 1)
				ops = append(ops, prevB[x-1])
			}
			if x < s-1 {
				solo.Read(s*m + x + 1)
				ops = append(ops, prevB[x+1])
			}
			out, cellOut := prog.Step(x, t, cell, ops)
			solo.Op()
			solo.Write(addr, cellOut)
			solo.Write(s*m+x, out)
			b[x] = out
		}
	}
	// Push the right half's results back (symmetric with the pull).
	meter.ChargeN(cost.Transfer, int64(half*(m+1)), hostDist)
	soloTime := meter.Now()

	for x := 0; x < s; x++ {
		if b[x] != coopOut[x] {
			return CoopResult{}, fmt.Errorf("simulate: solo and cooperative runs disagree at column %d", x)
		}
	}
	return CoopResult{CoopTime: coopTime, SoloTime: soloTime, Outputs: coopOut}, nil
}
