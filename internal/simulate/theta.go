package simulate

import (
	"bsmp/internal/cost"
	"bsmp/internal/obs"
	"bsmp/internal/sched"
)

// This file is the Θ-model execution engine: playScheduleEvents runs the
// same multiSchedule as playSchedule, but on the event-driven scheduler
// core (internal/sched) with a pluggable cost.DelayModel instead of the
// lockstep phase barrier.
//
// Model semantics (the theta-model of the PSync line of work, and the
// round-based full-information models it descends from): computation
// proceeds in communication-closed waves — one per schedule segment —
// and every distance-proportional charge (rearrangement and Regime 1
// transfers, Regime 2 exchanges) takes an adversarially chosen but
// bounded time in [d, Θ·d], drawn deterministically from (seed, proc,
// seq). Compute charges are never stretched: bounded-speed propagation
// delays messages, not local work. Each wave ends in a join that idles
// stragglers to the wave's completion time, charging the wait to Sync —
// the asynchronous analogue of the barrier, except that only processors
// that are actually behind pay it.
//
// Why Θ = 1 recovers lockstep bit-identically: at Θ = 1 every delay
// factor is exactly 1, so ChargeDelayed charges exactly the lockstep
// values through the same Meter.Charge path — each processor sums the
// same floats in the same order — and since the per-processor charges
// of any multiSchedule wave are identical across processors, every join
// finds all clocks already equal and idles nobody. The event queue then
// dispatches each wave as a single batch in ascending processor order,
// which is exactly the lockstep charge order. Virtual times, ledgers,
// phase marks and the PhaseBreakdown all come out bit-identical to
// playSchedule (pinned by TestMultiThetaGoldenAtOne).

// playScheduleAuto selects the schedule engine: the lockstep barrier
// player when no delay model is configured, the event-driven queue
// player otherwise.
func playScheduleAuto(tr *obs.Tracer, p int, sch multiSchedule, dm cost.DelayModel) (*cost.Bank, cost.Time) {
	if dm == nil {
		return playSchedule(tr, p, sch)
	}
	return playScheduleEvents(tr, p, sch, dm)
}

// playScheduleEvents charges sch into a fresh p-processor bank through
// the event-driven scheduler under delay model dm, with the same phase
// marks and span structure as playSchedule. It returns the bank and the
// preprocessing finish time (0 without prep).
func playScheduleEvents(tr *obs.Tracer, p int, sch multiSchedule, dm cost.DelayModel) (*cost.Bank, cost.Time) {
	bank := cost.NewBank(p)
	bank.SetDelayModel(dm)
	q := sched.New()
	schedSpan := tr.Start("schedule")

	// wave runs one schedule segment: p charge events on the queue (at
	// each processor's current clock — after a join these coincide, so
	// the wave dispatches as one deterministic batch) followed by the
	// join. A nil charge emits the mark and span only, like an empty
	// lockstep phase.
	wave := func(name string, charge func(i int)) {
		bank.Mark(name)
		sp := tr.Start("phase:" + name)
		var at0 cost.Time
		var l0 cost.Ledger
		if sp != nil {
			at0 = bank.MaxNow()
			l0 = bank.Ledgers()
		}
		if charge != nil {
			for i := 0; i < p; i++ {
				i := i
				q.At(bank.Proc(i).Now(), i, func() { charge(i) })
			}
			q.Run()
			// Join: stragglers idle to the wave's completion, charged
			// to Sync inside this phase's attribution interval. At
			// Θ = 1 all clocks are already equal and this is a no-op.
			t := bank.MaxNow()
			for i := 0; i < p; i++ {
				bank.Proc(i).Idle(t)
			}
		}
		if sp != nil {
			sp.SetAttr("vtime", bank.MaxNow()-at0)
			l1 := bank.Ledgers()
			delta := l1.Sub(&l0)
			for _, c := range cost.Categories() {
				if t := delta.Total(c); t != 0 {
					sp.SetAttr(c.String(), t)
				}
			}
			sp.End()
		}
	}

	var prep cost.Time
	if sch.hasPrep {
		wave(cost.PhaseRearrange, func(i int) {
			bank.ChargeDelayed(i, cost.Transfer, sch.prep)
		})
		prep = bank.MaxNow()
	} else {
		wave(cost.PhaseRearrange, nil)
	}
	if len(sch.regime1) > 0 {
		wave(cost.PhaseRegime1, func(i int) {
			for _, c := range sch.regime1 {
				bank.ChargeDelayed(i, cost.Transfer, c)
			}
		})
	} else {
		wave(cost.PhaseRegime1, nil)
	}
	for r := 0; r < sch.domains; r++ {
		wave(cost.PhaseRegime2Exec, func(i int) {
			bank.Proc(i).Charge(cost.Compute, sch.exec)
		})
		wave(cost.PhaseRegime2Exchange, func(i int) {
			bank.ChargeDelayed(i, sch.exchCat, sch.exch)
		})
	}
	if schedSpan != nil {
		schedSpan.SetAttr("vtime", bank.MaxNow())
		schedSpan.SetAttr("domains", float64(sch.domains))
		schedSpan.SetAttr("theta", dm.Theta())
		schedSpan.SetAttr("events", float64(q.Dispatched()))
		schedSpan.End()
	}
	return bank, prep
}
