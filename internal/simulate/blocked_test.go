package simulate

import (
	"math"
	"testing"

	"bsmp/internal/guest"
)

func TestBlockedD1Functional(t *testing.T) {
	for _, tc := range []struct{ n, m, steps, leaf int }{
		{8, 1, 8, 0},
		{8, 2, 8, 0},
		{16, 4, 16, 0},
		{16, 4, 16, 8}, // non-default leaf width
		{12, 3, 10, 0},
		{16, 16, 12, 0}, // m >= n: single naive leaf... or wide leaves
		{32, 2, 24, 0},
	} {
		prog := netProg(0)
		res, err := BlockedD1(tc.n, tc.m, tc.steps, tc.leaf, prog)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if err := res.Verify(1, tc.n, tc.m, prog); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
	}
}

func TestBlockedD1MatchesNaiveFunctionally(t *testing.T) {
	prog := netProg(0)
	blk, err := BlockedD1(16, 3, 12, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := Naive(1, 16, 1, 3, 12, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blk.Outputs {
		if blk.Outputs[i] != nv.Outputs[i] {
			t.Fatalf("output %d: blocked %d vs naive %d", i, blk.Outputs[i], nv.Outputs[i])
		}
	}
	for v := range blk.Memories {
		for a := range blk.Memories[v] {
			if blk.Memories[v][a] != nv.Memories[v][a] {
				t.Fatalf("memory %d/%d mismatch", v, a)
			}
		}
	}
}

func TestBlockedD1TimeGrowsWithM(t *testing.T) {
	// Theorem 3: slowdown Θ(n·min(n, m·Log(n/m))). The m·Log(n/m) locality
	// term is visible once the Θ(r)-per-diamond broadcast traffic stops
	// masking the Θ(r·m) image traffic, i.e. in the regime n >> m >= ~4
	// (for small m the measured curve is flat — the same plateau the
	// guarded Log produces in the paper's formula).
	prog := netProg(0)
	var times []float64
	ms := []int{4, 16, 64}
	for _, m := range ms {
		res, err := BlockedD1(256, m, 64, 0, prog)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, float64(res.Time))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Errorf("time not increasing with m: %v", times)
		}
	}
	// Theory predicts m·Log(n/m) growth ≈ 5.3x from m=4 to m=64; the
	// measured growth must be clearly superconstant and subquadratic.
	growth := times[len(times)-1] / times[0]
	if growth < 1.5 || growth > 16 {
		t.Errorf("time growth over m 4->64 is %v, want within [1.5, 16] (~5x)", growth)
	}
}

func TestBlockedD1ShapeVersusNaive(t *testing.T) {
	// For small m the blocked scheme's time grows like n² m Log(n/m)
	// (exponent ~2 in n) while naive's grows like n³ (exponent ~3 over
	// the same T = n computations).
	prog := netProg(0)
	var logN, logB, logNv []float64
	for _, n := range []int{16, 32, 64} {
		blk, err := BlockedD1(n, 2, n, 0, prog)
		if err != nil {
			t.Fatal(err)
		}
		nv, err := Naive(1, n, 1, 2, n, prog)
		if err != nil {
			t.Fatal(err)
		}
		logN = append(logN, math.Log2(float64(n)))
		logB = append(logB, math.Log2(float64(blk.Time)))
		logNv = append(logNv, math.Log2(float64(nv.Time)))
	}
	bSlope := fitSlope(logN, logB)
	nvSlope := fitSlope(logN, logNv)
	if nvSlope < 2.6 || nvSlope > 3.4 {
		t.Errorf("naive exponent %v, want ~3", nvSlope)
	}
	if bSlope >= nvSlope-0.4 {
		t.Errorf("blocked exponent %v not clearly below naive %v", bSlope, nvSlope)
	}
}

func TestBlockedD1LeafWidthAblation(t *testing.T) {
	// The paper's choice leafWidth = m should not be far worse than any
	// nearby leaf width (it's the optimized knob).
	prog := netProg(0)
	n, m := 32, 4
	def, err := BlockedD1(n, m, n, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range []int{2, 16} {
		alt, err := BlockedD1(n, m, n, leaf, prog)
		if err != nil {
			t.Fatal(err)
		}
		if float64(def.Time) > 3*float64(alt.Time) {
			t.Errorf("leaf=m=%d time %v much worse than leaf=%d time %v",
				m, def.Time, leaf, alt.Time)
		}
	}
}

func TestBlockedD1Rule90MatchesDagForM1(t *testing.T) {
	// With m = 1 and an order-insensitive rule, the blocked scheme must
	// agree with the dag-level separator executor.
	r := guest.Rule90{Seed: 8}
	n := 16
	blk, err := BlockedD1(n, 1, n-1, 0, guest.AsNetwork{G: r})
	if err != nil {
		t.Fatal(err)
	}
	dc, err := UniDC(1, n, n, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blk.Outputs {
		if blk.Outputs[i] != dc.Outputs[i] {
			t.Fatalf("node %d: blocked %d vs separator %d", i, blk.Outputs[i], dc.Outputs[i])
		}
	}
}
