package simulate

import (
	"context"
	"errors"
	"strings"
	"testing"

	"bsmp/internal/guest"
	"bsmp/internal/network"
)

// TestValidateParams pins the validation boundary: every malformed tuple
// is rejected with a typed *ParamError naming the offending field, and
// valid tuples pass.
func TestValidateParams(t *testing.T) {
	cases := []struct {
		label             string
		scheme            string
		d, n, p, m, steps int
		field             string // "" = expect nil error
	}{
		{"valid blocked d1", "blocked", 1, 16, 1, 4, 8, ""},
		{"valid blocked d2", "blocked", 2, 16, 1, 4, 8, ""},
		{"valid blocked d3", "blocked", 3, 27, 1, 2, 6, ""},
		{"valid naive d2", "naive", 2, 16, 4, 2, 8, ""},
		{"valid multi d1", "multi", 1, 64, 4, 4, 32, ""},
		{"valid multi d2", "multi", 2, 64, 4, 4, 8, ""},
		{"valid unidc d1", "unidc", 1, 32, 1, 1, 16, ""},

		{"zero n", "blocked", 1, 0, 1, 4, 8, "n"},
		{"negative n", "multi", 1, -8, 1, 4, 8, "n"},
		{"zero p", "multi", 1, 16, 0, 4, 8, "p"},
		{"zero m", "blocked", 1, 16, 1, 0, 8, "m"},
		{"zero steps", "blocked", 1, 16, 1, 4, 0, "steps"},
		{"p exceeds n", "multi", 1, 8, 16, 1, 8, "p"},
		{"p does not divide n", "multi", 1, 10, 3, 1, 8, "p"},
		{"blocked non-square n", "blocked", 2, 10, 1, 4, 8, "n"},
		{"blocked non-cube n", "blocked", 3, 10, 1, 4, 8, "n"},
		{"blocked multiprocessor", "blocked", 1, 16, 2, 4, 8, "p"},
		{"unidc dense memory", "unidc", 1, 16, 1, 2, 8, "m"},
		{"unidc multiprocessor", "unidc", 1, 16, 2, 1, 8, "p"},
		{"multi non-square n", "multi", 2, 10, 1, 1, 8, "n"},
		{"multi non-cube n", "multi", 3, 100, 1, 1, 8, "n"},
		{"naive non-square n", "naive", 2, 12, 4, 1, 8, "n"},
		{"naive non-square p", "naive", 2, 36, 6, 1, 8, "p"},
		{"overflow per-node memory", "blocked", 1, 1 << 40, 1, 1 << 40, 8, "m"},
		{"overflow dag volume", "unidc", 1, 1 << 40, 1, 1, 1 << 40, "steps"},
	}
	for _, c := range cases {
		err := ValidateParams(c.scheme, c.d, c.n, c.p, c.m, c.steps)
		if c.field == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.label, err)
			}
			continue
		}
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Errorf("%s: got %T (%v), want *ParamError", c.label, err, err)
			continue
		}
		if pe.Field != c.field {
			t.Errorf("%s: rejected field %q, want %q (%v)", c.label, pe.Field, c.field, pe)
		}
		if pe.Scheme != c.scheme {
			t.Errorf("%s: ParamError.Scheme = %q, want %q", c.label, pe.Scheme, c.scheme)
		}
	}
}

// TestValidateParamsUnknownScheme keeps the registry lookup error for
// unregistered (name, d) pairs.
func TestValidateParamsUnknownScheme(t *testing.T) {
	for _, c := range []struct {
		name string
		d    int
	}{{"nope", 1}, {"multi", 4}, {"naive", 3}} {
		err := ValidateParams(c.name, c.d, 16, 1, 1, 8)
		if err == nil || !strings.Contains(err.Error(), "no scheme") {
			t.Errorf("ValidateParams(%q, %d): err = %v, want registry lookup error", c.name, c.d, err)
		}
	}
}

// TestRunSchemeRejectsWithoutPanic drives malformed tuples through the
// full registry path — the satellite bugfix: these previously reached
// internal constructor panics (e.g. analytic.IntSqrtExact on a
// non-square n for blocked d=2).
func TestRunSchemeRejectsWithoutPanic(t *testing.T) {
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 3}}
	cases := []struct {
		label             string
		scheme            string
		d, n, p, m, steps int
	}{
		{"blocked d2 non-square n", "blocked", 2, 10, 1, 4, 4},
		{"blocked d3 non-cube n", "blocked", 3, 10, 1, 4, 4},
		{"unidc d2 non-square n", "unidc", 2, 10, 1, 1, 4},
		{"multi d2 non-square n", "multi", 2, 10, 1, 1, 4},
		{"multi d3 non-cube n", "multi", 3, 12, 1, 1, 4},
		{"naive d2 non-square n", "naive", 2, 12, 4, 1, 4},
		{"naive d2 non-square p", "naive", 2, 36, 6, 1, 4},
		{"naive d2 p not dividing n", "naive", 2, 16, 3, 1, 4},
		{"negative everything", "multi", 1, -4, -2, -1, -8},
		{"zero steps", "blocked", 1, 16, 1, 4, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: RunScheme panicked: %v", c.label, r)
				}
			}()
			if _, err := RunScheme(c.scheme, c.d, c.n, c.p, c.m, c.steps, prog, SchemeConfig{}); err == nil {
				t.Errorf("%s: RunScheme accepted a malformed tuple", c.label)
			}
		}()
	}
}

// TestSchemeRunValidatesDirectly checks that grabbing a Scheme from the
// registry and calling Run without going through RunScheme still hits the
// validation boundary.
func TestSchemeRunValidatesDirectly(t *testing.T) {
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 3}}
	s, err := SchemeByName("blocked", 2)
	if err != nil {
		t.Fatal(err)
	}
	var pe *ParamError
	if _, err := s.Run(context.Background(), 10, 1, 4, 4, prog, SchemeConfig{}); !errors.As(err, &pe) {
		t.Fatalf("direct Run(non-square n): err = %v, want *ParamError", err)
	}
}

// TestRegisteredDimensionsConstructible is the NewMachine doc regression
// test: every registered scheme's dimension admits a constructible
// machine Md(n, p, m) — in particular the d = 3 entries, which the old
// doc comment ("d in {1, 2}") implied were not supported.
func TestRegisteredDimensionsConstructible(t *testing.T) {
	// Smallest valid (n, p) per dimension with p > 1 where the scheme
	// allows it.
	shapes := map[int]struct{ n, p int }{
		1: {8, 2},
		2: {16, 4},
		3: {27, 1},
	}
	for _, s := range Schemes {
		sh, ok := shapes[s.D]
		if !ok {
			t.Fatalf("scheme %q registered for unknown dimension %d", s.Name, s.D)
		}
		p := sh.p
		if !s.Multiproc {
			p = 1
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("scheme %q d=%d: network.New(%d, %d, %d, 1) panicked: %v",
						s.Name, s.D, s.D, sh.n, p, r)
				}
			}()
			ma := network.New(s.D, sh.n, p, 1)
			if ma.D != s.D {
				t.Errorf("scheme %q: built machine has d=%d, want %d", s.Name, ma.D, s.D)
			}
		}()
	}
}
