package simulate

import (
	"errors"
	"math"
	"testing"

	"bsmp/internal/cost"
	"bsmp/internal/guest"
)

// runFaulty runs the multi-faulty scheme on the golden d = 1 tuple with
// the given density and seed.
func runFaulty(t *testing.T, density float64, seed uint64) MultiResult {
	t.Helper()
	mr, err := RunScheme("multi-faulty", 1, 64, 4, 16, 16,
		guest.AsNetwork{G: guest.MixCA{Seed: 9}},
		SchemeConfig{Multi: MultiOptions{Faults: density, FaultSeed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	return mr
}

// TestMultiFaultyGoldenAtZero is the acceptance pin: a zero-density
// fault mask kills nothing, every stretch factor is exactly 1.0 and
// pEff = p, so the multi-faulty scheme reproduces the lockstep multi
// golden virtual times BIT-identically for every dimension.
func TestMultiFaultyGoldenAtZero(t *testing.T) {
	mr := runFaulty(t, 0, 0)
	if mr.Time != 79686.0625 {
		t.Errorf("d=1 Time = %v, golden 79686.0625", mr.Time)
	}
	if mr.PrepTime != 45232 {
		t.Errorf("d=1 PrepTime = %v, golden 45232", mr.PrepTime)
	}
	if mr.Faults == nil {
		t.Fatal("d=1: no fault report attached")
	}
	if r := mr.Faults; r.DeadProcs != 0 || r.DeadCells != 0 || r.LiveProcs != 4 ||
		r.EffectiveP != 4 || r.DistStretch != 1 || r.MemStretch != 1 {
		t.Errorf("d=1 zero-density report = %+v, want all-alive identity", r)
	}

	m2, err := RunScheme("multi-faulty", 2, 256, 4, 8, 8,
		guest.AsNetwork{G: guest.MixCA{Seed: 9}, Side: 16},
		SchemeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Time != 121540.75244594147 {
		t.Errorf("d=2 Time = %v, golden 121540.75244594147", m2.Time)
	}

	m3, err := RunScheme("multi-faulty", 3, 512, 8, 4, 8,
		guest.AsNetwork{G: guest.MixCA{Seed: 9}, CubeSide: 8},
		SchemeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Time != 151296.39378136813 {
		t.Errorf("d=3 Time = %v, golden 151296.39378136813", m3.Time)
	}
}

// TestMultiFaultyMatchesLockstepLive compares a zero-density run against
// a live lockstep multi run in full: times, ledger totals and counts,
// per-phase breakdown, and outputs.
func TestMultiFaultyMatchesLockstepLive(t *testing.T) {
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 4}}
	lock, err := RunScheme("multi", 1, 64, 4, 4, 16, prog, SchemeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := RunScheme("multi-faulty", 1, 64, 4, 4, 16, prog, SchemeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if fa.Time != lock.Time || fa.PrepTime != lock.PrepTime {
		t.Fatalf("times (%v, %v) != lockstep (%v, %v)", fa.Time, fa.PrepTime, lock.Time, lock.PrepTime)
	}
	for _, c := range cost.Categories() {
		if fa.Ledger.Total(c) != lock.Ledger.Total(c) {
			t.Errorf("ledger %s: %v != %v", c, fa.Ledger.Total(c), lock.Ledger.Total(c))
		}
		if fa.Ledger.Count(c) != lock.Ledger.Count(c) {
			t.Errorf("ledger count %s: %d != %d", c, fa.Ledger.Count(c), lock.Ledger.Count(c))
		}
	}
	if len(fa.Phases) != len(lock.Phases) {
		t.Fatalf("phase count %d != %d", len(fa.Phases), len(lock.Phases))
	}
	for i := range fa.Phases {
		if fa.Phases[i].Name != lock.Phases[i].Name || fa.Phases[i].Time != lock.Phases[i].Time {
			t.Errorf("phase[%d]: (%s, %v) != (%s, %v)", i,
				fa.Phases[i].Name, fa.Phases[i].Time, lock.Phases[i].Name, lock.Phases[i].Time)
		}
	}
	for i := range fa.Outputs {
		if fa.Outputs[i] != lock.Outputs[i] {
			t.Fatalf("output %d differs", i)
		}
	}
}

// runFaultyP runs multi-faulty on an 8-processor d = 1 host — wide
// enough that the sweep densities below cannot plausibly kill every
// processor (the mask errors when none survives).
func runFaultyP(t *testing.T, density float64, seed uint64) MultiResult {
	t.Helper()
	mr, err := RunScheme("multi-faulty", 1, 64, 8, 16, 16,
		guest.AsNetwork{G: guest.MixCA{Seed: 9}},
		SchemeConfig{Multi: MultiOptions{Faults: density, FaultSeed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	return mr
}

// TestMultiFaultyMonotone is the graceful-degradation property over a
// seeded density sweep: threshold sampling nests the dead sets, so with
// the seed fixed, Time is monotone non-decreasing in the density — more
// faults can only slow the machine (E-FAULT measures the same sweep).
func TestMultiFaultyMonotone(t *testing.T) {
	densities := []float64{0, 0.05, 0.1, 0.2, 0.4}
	for _, seed := range []uint64{0, 7, 123456789} {
		prev := cost.Time(0)
		for _, f := range densities {
			mr := runFaultyP(t, f, seed)
			if mr.Time < prev {
				t.Fatalf("seed %d: Time decreased from %v to %v at faults=%v", seed, prev, mr.Time, f)
			}
			prev = mr.Time
		}
		// The sweep actually moves: the densest mask is strictly slower.
		if prev <= runFaultyP(t, 0, seed).Time {
			t.Fatalf("seed %d: faults=0.4 no slower than fault-free", seed)
		}
	}
}

// TestMultiFaultyDeterministic checks seeded reproducibility: the same
// (density, seed) twice gives identical times and fault reports; a
// different seed samples a different mask.
func TestMultiFaultyDeterministic(t *testing.T) {
	a := runFaulty(t, 0.2, 42)
	b := runFaulty(t, 0.2, 42)
	if a.Time != b.Time || a.PrepTime != b.PrepTime {
		t.Fatalf("same seed: (%v, %v) != (%v, %v)", a.Time, a.PrepTime, b.Time, b.PrepTime)
	}
	if *a.Faults != *b.Faults {
		t.Fatalf("same seed: reports differ: %+v vs %+v", a.Faults, b.Faults)
	}
	other := runFaulty(t, 0.2, 43)
	if other.Time == a.Time {
		t.Fatalf("different seed produced identical Time %v", a.Time)
	}
}

// TestMultiFaultyDegradesP checks the sub-configuration planning: a
// density that kills processors shrinks the effective machine to the
// largest d-shaped divisor of n, visible in the report.
func TestMultiFaultyDegradesP(t *testing.T) {
	mr := runFaultyP(t, 0.4, 7)
	r := mr.Faults
	if r == nil {
		t.Fatal("no fault report")
	}
	if r.DeadProcs == 0 && r.DeadCells == 0 {
		t.Fatalf("density 0.4 killed nothing: %+v", r)
	}
	if r.EffectiveP > r.LiveProcs || r.EffectiveP < 1 || 64%r.EffectiveP != 0 {
		t.Fatalf("EffectiveP %d not a divisor of n within the live count %d", r.EffectiveP, r.LiveProcs)
	}
	if r.DistStretch < 1 || r.MemStretch < 1 {
		t.Fatalf("stretch factors below 1: %+v", r)
	}
}

// TestLargestShapedDivisor pins the sub-configuration shape search.
func TestLargestShapedDivisor(t *testing.T) {
	for _, tc := range []struct{ d, n, limit, want int }{
		{1, 64, 64, 64},
		{1, 64, 48, 32},
		{1, 64, 1, 1},
		{2, 256, 256, 256},
		{2, 256, 10, 4}, // square divisors of 256: 1, 4, 16, 64, 256
		{2, 256, 3, 1},
		{3, 512, 512, 512},
		{3, 512, 63, 8}, // cube divisors of 512: 1, 8, 64, 512
		{3, 512, 7, 1},
		{1, 64, 100, 64}, // limit above n clips to n
	} {
		if got := largestShapedDivisor(tc.d, tc.n, tc.limit); got != tc.want {
			t.Errorf("largestShapedDivisor(%d, %d, %d) = %d, want %d", tc.d, tc.n, tc.limit, got, tc.want)
		}
	}
}

// TestFaultsValidation checks the fault parameter boundary: densities
// outside [0, 1) are rejected with a typed ParamError naming the field,
// the fault-free schemes refuse a nonzero density outright, and the
// d >= 2 fault mask requires a d-shaped p (the mask samples over the
// actual host mesh).
func TestFaultsValidation(t *testing.T) {
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 9}}
	for _, f := range []float64{-0.1, 1, 1.5, math.NaN()} {
		cfg := SchemeConfig{Multi: MultiOptions{Faults: f}}
		err := ValidateParams("multi-faulty", 1, 64, 4, 4, 16, cfg)
		var pe *ParamError
		if !errors.As(err, &pe) || pe.Field != "faults" {
			t.Fatalf("ValidateParams(faults=%v) = %v, want ParamError on faults", f, err)
		}
		if _, err := RunScheme("multi-faulty", 1, 64, 4, 4, 16, prog, cfg); !errors.As(err, &pe) {
			t.Fatalf("RunScheme(faults=%v) = %v, want ParamError", f, err)
		}
	}
	// Valid densities pass; the zero config is the fault-free identity.
	if err := ValidateParams("multi-faulty", 1, 64, 4, 4, 16, SchemeConfig{Multi: MultiOptions{Faults: 0.25}}); err != nil {
		t.Fatalf("faults=0.25 rejected: %v", err)
	}
	if err := ValidateParams("multi-faulty", 1, 64, 4, 4, 16); err != nil {
		t.Fatalf("default cfg rejected: %v", err)
	}
	// Fault-free schemes take no density.
	var pe *ParamError
	for _, name := range []string{"multi", "multi-theta"} {
		err := ValidateParams(name, 1, 64, 4, 4, 16, SchemeConfig{Multi: MultiOptions{Faults: 0.1}})
		if !errors.As(err, &pe) || pe.Field != "faults" {
			t.Fatalf("%s with faults: err = %v, want ParamError on faults", name, err)
		}
	}
	// multi-faulty is lockstep-only, like multi.
	err := ValidateParams("multi-faulty", 1, 64, 4, 4, 16, SchemeConfig{Multi: MultiOptions{Theta: 2}})
	if !errors.As(err, &pe) || pe.Field != "theta" {
		t.Fatalf("multi-faulty with theta: err = %v, want ParamError on theta", err)
	}
	// d = 2 requires a square p: the mask needs the real host mesh.
	err = ValidateParams("multi-faulty", 2, 256, 8, 4, 8)
	if !errors.As(err, &pe) || pe.Field != "p" {
		t.Fatalf("multi-faulty d=2 p=8: err = %v, want ParamError on p", err)
	}
}

// TestMultiFaultyNonzeroRuns exercises the span-model dimensions under
// a real fault mask: valid runs, strictly slower than fault-free, with
// unchanged outputs (faults move charges, never values).
func TestMultiFaultyNonzeroRuns(t *testing.T) {
	for _, tc := range []struct {
		d, n, p, m, steps int
		prog              guest.AsNetwork
	}{
		{2, 256, 4, 8, 8, guest.AsNetwork{G: guest.MixCA{Seed: 9}, Side: 16}},
		{3, 512, 8, 4, 8, guest.AsNetwork{G: guest.MixCA{Seed: 9}, CubeSide: 8}},
	} {
		run := func(f float64) MultiResult {
			mr, err := RunScheme("multi-faulty", tc.d, tc.n, tc.p, tc.m, tc.steps, tc.prog,
				SchemeConfig{Multi: MultiOptions{Faults: f, FaultSeed: 11}})
			if err != nil {
				t.Fatalf("d=%d faults=%v: %v", tc.d, f, err)
			}
			return mr
		}
		clean, faulty := run(0), run(0.3)
		if faulty.Time <= clean.Time {
			t.Fatalf("d=%d: faults=0.3 Time %v not above fault-free %v", tc.d, faulty.Time, clean.Time)
		}
		for i := range clean.Outputs {
			if clean.Outputs[i] != faulty.Outputs[i] {
				t.Fatalf("d=%d: output %d differs under faults", tc.d, i)
			}
		}
	}
}
