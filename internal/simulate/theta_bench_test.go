package simulate

import (
	"context"
	"testing"

	"bsmp/internal/cost"
	"bsmp/internal/sched"
)

// BenchmarkMultiD1Theta pairs with BenchmarkMultiD1: the identical
// tuple through the event-driven Θ-model engine at Θ = 1 (same charge
// sequence, queue dispatch instead of the phase barrier). The delta
// between the two is the scheduler core's overhead on a dense schedule.
func BenchmarkMultiD1Theta(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := MultiD1Context(context.Background(), 256, 8, 16, 64, prog, MultiOptions{Theta: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiD1ThetaStretch is the same tuple at Θ = 2: every
// distance-proportional charge additionally draws a seeded delay
// factor, and the desynchronized joins do real Idle work.
func BenchmarkMultiD1ThetaStretch(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := MultiD1Context(context.Background(), 256, 8, 16, 64, prog, MultiOptions{Theta: 2, ThetaSeed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// Sparse-phase pair: rounds rounds over p processors with only active
// of them charging per round. The barrier implementation pays O(p) per
// round — every meter is scanned and idled to the round maximum whether
// it moved or not — while the event queue touches only the processors
// that have events, paying O(active·log active) per round plus one
// final O(p) join. The pair quantifies the idle-skip win the scheduler
// core buys on sparse phases (most processors quiescent most rounds).

const (
	sparseProcs  = 1024
	sparseRounds = 64
	sparseActive = 4
)

func BenchmarkSparseWaveBarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bank := cost.NewBank(sparseProcs)
		for r := 0; r < sparseRounds; r++ {
			base := (r * sparseActive) % sparseProcs
			for k := 0; k < sparseActive; k++ {
				bank.Proc((base + k) % sparseProcs).Charge(cost.Transfer, 8)
			}
			bank.Barrier()
		}
		if bank.MaxNow() == 0 {
			b.Fatal("no time accumulated")
		}
	}
}

func BenchmarkSparseWaveEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bank := cost.NewBank(sparseProcs)
		q := sched.New()
		// Rounds chain through the queue: each active processor's charge
		// is an event at its own current virtual time, and the next
		// round's events land at the post-charge times — idle processors
		// are never visited.
		var round func(r int)
		round = func(r int) {
			if r == sparseRounds {
				return
			}
			base := (r * sparseActive) % sparseProcs
			done := 0
			for k := 0; k < sparseActive; k++ {
				proc := (base + k) % sparseProcs
				q.At(float64(bank.Proc(proc).Now()), proc, func() {
					bank.Proc(proc).Charge(cost.Transfer, 8)
					if done++; done == sparseActive {
						round(r + 1)
					}
				})
			}
		}
		round(0)
		q.Run()
		// One final join replaces the per-round full-bank barrier.
		max := bank.MaxNow()
		for p := 0; p < sparseProcs; p++ {
			bank.Proc(p).Idle(max)
		}
		if bank.MaxNow() == 0 {
			b.Fatal("no time accumulated")
		}
	}
}
