package simulate

import (
	"context"
	"fmt"

	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
)

// This file is the engine shared by BlockedD1, BlockedD2, and BlockedD3:
// one Proposition 2 recursion over the two-kind value flow (broadcast
// words and whole column images), generic over the mesh dimension. The
// seed carried three near-identical copies keyed by per-dimension structs
// (bkey/b2key/b3key) hashed into maps on the innermost loops; here both
// value kinds are addressed by dense lattice.AddrTable arrays indexed
// over the dag's bounding box, and all scratch (live-sets, column
// indices, override stacks) is arena-allocated once per run and reused
// across every recursion level.
//
// Address-table layout. A broadcast value lives at its dag vertex
// (x, t) (d = 2: (x, y, t); d = 3: (x, y, z, t)). A column image is keyed
// by (node position, entry time): node v's m'-word live memory before
// step t; t = steps+1 is the final image. Both key spaces embed in the
// dag's bounding box extended one time layer past the final step, so one
// Indexer serves both tables.
//
// Scratch lifetime rules — the invariants that make single arenas safe:
//
//   - live is populated and fully drained between a child's return and
//     the next child's descent; recursion below never observes it held.
//   - colIdx is populated and drained entirely within columns() and
//     within execLeaf(), which never overlaps a deeper use.
//   - ovStack hands each recursion depth its own override buffer, so a
//     parent's buffer stays intact while its children recurse.
//
// The change is host-side only: the sequence of machine operations
// (BlockCopy, MoveWord, Read, Write, Op) is identical to the seed's, so
// every measured virtual time is bit-identical (enforced by the golden
// assertions in golden_test.go).

// colSpan is one node column's contiguous vertex-time interval within a
// domain: spatial position pos (T = 0) present for vertex times [ta, tb].
type colSpan struct {
	pos    lattice.Point
	ta, tb int
}

// blockedGeom is the dimension-specific surface of the blocked executor.
type blockedGeom struct {
	// nodeIndex flattens a spatial position to the network node id.
	nodeIndex func(p lattice.Point) int
	// nodePos inverts nodeIndex (T = 0).
	nodePos func(node int) lattice.Point
	// netPreds appends the operand stencil of p in the network's operand
	// order (self first, then neighbors) at time p.T-1, clipped to the
	// machine boundary.
	netPreds func(p lattice.Point, buf []lattice.Point) []lattice.Point
	// sortCols orders columns by ascending x (the d = 1 convention);
	// otherwise columns keep first-seen (T, X, Y, Z) enumeration order.
	// Column order fixes the memory layout of images in leaves and
	// staging areas, so it is part of the virtual-time contract.
	sortCols bool
	// side is the mesh side length entering nodeIndex's stride (0 for the
	// d = 1 line). It is part of the subtree memo key: the address-class
	// argument needs node indices to shift uniformly under lattice
	// translation, which holds only within one stride.
	side int
}

// blockedExec runs the blocked simulation of one guest on one H-RAM.
type blockedExec struct {
	g        dag.Graph
	prog     network.Program
	m        int // guest memory density
	iw       int // image words actually relocated: m' <= m (MemUser)
	steps    int
	leafSpan int
	mach     *hram.Machine
	geom     blockedGeom
	ec       *execCtx // cancellation + progress; host-side only

	bcast   *lattice.AddrTable // broadcast-word addresses per dag vertex
	mem     *lattice.AddrTable // column-image addresses per (node, entry time)
	live    *lattice.PointSet  // scratch live-out membership (drained after use)
	colIdx  *lattice.AddrTable // scratch position -> span index / image base
	ovStack [][]savedAddr      // per-depth override buffers
	space   map[lattice.Domain]int

	ptsBuf  []lattice.Point
	opsBuf  []hram.Word
	initMem []hram.Word

	// Subtree memoization state (enableMemo). recs is the stack of active
	// trace recorders: the machine meter's tap feeds the top entry, so a
	// recording subtree captures exactly its own charge interval while
	// nested recordings and replays link in as trace children. replayed
	// counts memo hits; when nonzero, machine memory holds garbage at
	// replayed addresses and the wrappers recompute outputs guest-side.
	memoOn   bool
	progFP   string
	recs     []*cost.Recorder
	replayed int
}

// enableMemo arms subtree memoization: congruent recursion subtrees are
// recorded once and analytically replayed (trace playback) at every later
// congruent site. Requires a guest whose address pattern is classifiable
// (addrClasser); otherwise the run proceeds unmemoized. The meter tap
// only observes charges — it never charges — so arming it cannot perturb
// virtual times.
func (b *blockedExec) enableMemo(meter *cost.Meter) {
	if _, ok := b.prog.(addrClasser); !ok {
		return
	}
	b.memoOn = true
	b.progFP = progFingerprint(b.prog)
	meter.SetTap(func(cat cost.Category, dt cost.Time) {
		if n := len(b.recs); n > 0 {
			b.recs[n-1].Record(cat, dt)
		}
	})
}

// subtreeKeyFor builds dom's congruence-class key in O(1): canonical
// translated shape, clip clamped near the domain, machine stride, hram
// pricing mode, recursion cutoff, and the guest's address class at the
// domain's reference vertex. ok = false disables memoization for dom.
func (b *blockedExec) subtreeKeyFor(dom lattice.Domain) (subtreeKey, bool) {
	shape, ok := canonicalDomain(dom)
	if !ok {
		return subtreeKey{}, false
	}
	ref, ok := refPoint(dom)
	if !ok {
		return subtreeKey{}, false
	}
	class, ok := progClass(b.prog, b.geom.nodeIndex(ref), ref.T, b.m)
	if !ok {
		return subtreeKey{}, false
	}
	return subtreeKey{
		d: dom.Dim(), m: b.m, iw: b.iw, leafSpan: b.leafSpan,
		pipelined: b.mach.Pipelined(), side: b.geom.side,
		shape: shape, class: class, prog: b.progFP,
	}, true
}

// savedAddr remembers a key's parent-level address while a child executes
// with the key rebound to its copied-down slot.
type savedAddr struct {
	p   lattice.Point
	add int
	mem bool
}

// memKey is the address-table key of node pos's image entering step t.
func memKey(pos lattice.Point, t int) lattice.Point {
	return lattice.Point{X: pos.X, Y: pos.Y, Z: pos.Z, T: t}
}

// newBlockedExec allocates the dense tables for graph g. The index box is
// g's bounds with one extra time layer, so the final images
// Mem(v, steps+1) are addressable.
func newBlockedExec(ctx context.Context, g dag.Graph, prog network.Program, m, iw, steps, leafSpan int, geom blockedGeom) *blockedExec {
	bounds := g.Bounds()
	bounds.T1++
	ix := lattice.NewIndexer(bounds)
	return &blockedExec{
		g: g, prog: prog, m: m, iw: iw, steps: steps, leafSpan: leafSpan, geom: geom,
		ec:      newExecCtx(ctx),
		bcast:   lattice.NewAddrTable(ix),
		mem:     lattice.NewAddrTable(ix),
		live:    lattice.NewPointSet(ix),
		colIdx:  lattice.NewAddrTable(lattice.NewIndexer(spatialClip(bounds))),
		space:   make(map[lattice.Domain]int, 1024),
		opsBuf:  make([]hram.Word, 0, 7),
		initMem: make([]hram.Word, m),
	}
}

// spatialClip is the T = 0 slice of a box: the index space of node
// positions.
func spatialClip(c lattice.Clip) lattice.Clip {
	c.T0, c.T1 = 0, 1
	return c
}

// columns returns the per-node time spans of dom — ascending x when
// sortCols, first-seen order otherwise — using the colIdx scratch table
// for deduplication (drained before returning).
func (b *blockedExec) columns(dom lattice.Domain) []colSpan {
	var spans []colSpan
	dom.Points(func(p lattice.Point) bool {
		pos := lattice.Point{X: p.X, Y: p.Y, Z: p.Z}
		if i, ok := b.colIdx.Get(pos); ok {
			if p.T < spans[i].ta {
				spans[i].ta = p.T
			}
			if p.T > spans[i].tb {
				spans[i].tb = p.T
			}
			return true
		}
		b.colIdx.Set(pos, len(spans))
		spans = append(spans, colSpan{pos: pos, ta: p.T, tb: p.T})
		return true
	})
	for _, s := range spans {
		b.colIdx.Delete(s.pos)
	}
	if b.geom.sortCols {
		for i := 1; i < len(spans); i++ {
			for j := i; j > 0 && spans[j].pos.X < spans[j-1].pos.X; j-- {
				spans[j], spans[j-1] = spans[j-1], spans[j]
			}
		}
	}
	return spans
}

// memInCount is the number of images dom consumes: columns whose first
// simulated vertex time is >= 1 (ta = 0 columns materialize their own
// image from prog.Init).
func memInCount(spans []colSpan) int {
	n := 0
	for _, s := range spans {
		if s.ta >= 1 {
			n++
		}
	}
	return n
}

// inSize is the word count of a domain's incoming data: one word per
// preboundary broadcast value plus m' words per consumed image.
func (b *blockedExec) inSize(dom lattice.Domain, spans []colSpan) int {
	return len(dag.Preboundary(b.g, dom)) + b.iw*memInCount(spans)
}

// isLeaf reports whether dom is executed naively in place.
func (b *blockedExec) isLeaf(dom lattice.Domain) bool {
	return dom.Span() <= b.leafSpan || dom.Children() == nil
}

// spaceNeeded mirrors separator.SpaceNeeded for the two-kind value flow,
// memoized per (comparable) domain value. The planning recursion visits
// the entire domain tree before a single vertex executes — at large
// (n, steps) that is seconds of work — so it polls cancellation at every
// node; a caller that has already given up never reaches execution.
func (b *blockedExec) spaceNeeded(dom lattice.Domain) (int, error) {
	if s, ok := b.space[dom]; ok {
		return s, nil
	}
	if err := b.ec.poll(); err != nil {
		return 0, err
	}
	spans := b.columns(dom)
	in := b.inSize(dom, spans)
	var out int
	if b.isLeaf(dom) {
		// Working space: every column image resident plus one word per
		// vertex for broadcast values.
		out = len(spans)*b.iw + dom.Size() + in
	} else {
		smax, stage := 0, 0
		for _, kid := range dom.Children() {
			s, err := b.spaceNeeded(kid)
			if err != nil {
				return 0, err
			}
			if s > smax {
				smax = s
			}
			stage += len(dag.LiveOut(b.g, kid)) + b.iw*len(b.columns(kid))
		}
		out = smax + stage + in
	}
	b.space[dom] = out
	return out, nil
}

// exec implements the Proposition 2 recursion for the blocked value flow.
// Contract: incoming keys (preboundary broadcasts and consumed images)
// have valid addresses on entry; on exit, live-out broadcasts and the
// produced images Mem(v, tb+1) have valid addresses.
func (b *blockedExec) exec(dom lattice.Domain, space, depth int) error {
	if b.isLeaf(dom) {
		return b.execLeaf(dom)
	}
	// The incoming slot occupies [space-inSize, space); staging grows
	// downward from its floor.
	stagePtr := space - b.inSize(dom, b.columns(dom))
	for len(b.ovStack) <= depth {
		b.ovStack = append(b.ovStack, nil)
	}

	for _, kid := range dom.Children() {
		if err := b.ec.checkpoint(); err != nil {
			return err
		}
		// A memo hit replays the child's recorded charge trace instead of
		// recursing; a classifiable miss records the recursion for future
		// congruent sites. Either way the charge sequence the meter sees
		// is identical to an unmemoized run (trace playback re-applies the
		// exact per-event floats), so virtual times stay bit-identical.
		var key subtreeKey
		var keyOK bool
		var rec *subtreeRecord
		if b.memoOn {
			if key, keyOK = b.subtreeKeyFor(kid); keyOK {
				if v, ok := memo.load(memoSubtree, memoLevel(kid.Span()), key); ok {
					rec = v.(*subtreeRecord)
				}
			}
		}
		// Trace one span per recursion child — the same boundary the
		// checkpoint above polls. Both the span and its virtual-time
		// attribute only *read* the machine meter, so an attached tracer
		// cannot perturb the charge sequence (golden times stay
		// bit-identical); with no tracer, sp is nil and every hook below
		// is a nil check. Error unwinds leave sp open, which the
		// exporters tolerate — the run's trace is abandoned anyway.
		spanName := "block"
		if rec != nil {
			spanName = "block:replayed"
		}
		sp := b.ec.tr.Start(spanName)
		var vt0 float64
		if sp != nil {
			vt0 = b.mach.Meter().Now()
		}
		kidSpans := b.columns(kid)
		kidGin := dag.Preboundary(b.g, kid)
		live := dag.LiveOut(b.g, kid)
		skid, err := b.spaceNeeded(kid)
		if err != nil {
			return err
		}

		// Copy incoming data into the child's top slot: images first,
		// then broadcast words. The override buffer is this depth's arena
		// slot; deeper recursion uses its own.
		overrides := b.ovStack[depth][:0]
		dst := skid - b.inSize(kid, kidSpans)
		if dst < 0 {
			return fmt.Errorf("simulate: child slot underflow in %v", kid)
		}
		for _, s := range kidSpans {
			if s.ta < 1 {
				continue
			}
			k := memKey(s.pos, s.ta)
			src, ok := b.mem.Get(k)
			if !ok {
				return fmt.Errorf("simulate: image %v unavailable for %v", k, kid)
			}
			b.mach.BlockCopy(dst, src, b.iw)
			overrides = append(overrides, savedAddr{k, src, true})
			b.mem.Set(k, dst)
			dst += b.iw
		}
		for _, q := range kidGin {
			src, ok := b.bcast.Get(q)
			if !ok {
				return fmt.Errorf("simulate: broadcast %v unavailable for %v", q, kid)
			}
			b.mach.MoveWord(dst, src)
			overrides = append(overrides, savedAddr{q, src, false})
			b.bcast.Set(q, dst)
			dst++
		}
		b.ovStack[depth] = overrides

		if rec != nil {
			// Replay: re-apply the recorded charge sequence and rebind the
			// child's products to their recorded addresses. The child frame
			// is always the absolute range [0, skid), so the recorded
			// addresses are valid verbatim at this congruent site. Machine
			// memory is NOT written — the wrapper recomputes outputs
			// guest-side when any subtree replayed.
			rec.trace.Play(b.mach.Meter())
			if n := len(b.recs); n > 0 {
				b.recs[n-1].Child(rec.trace)
			}
			for i, s := range kidSpans {
				b.mem.Set(memKey(s.pos, s.tb+1), rec.imgAddrs[i])
			}
			for i, v := range live {
				b.bcast.Set(v, rec.outAddrs[i])
			}
			b.replayed++
			// Progress advances by the whole replayed subtree; the
			// cancellation poll still fires here.
			if err := b.ec.step(kid.Size()); err != nil {
				return err
			}
		} else {
			var kr *cost.Recorder
			if keyOK {
				kr = &cost.Recorder{}
				b.recs = append(b.recs, kr)
			}
			err := b.exec(kid, skid, depth+1)
			if kr != nil {
				b.recs = b.recs[:len(b.recs)-1]
			}
			if err != nil {
				// No publication on an error unwind: a cancelled or failed
				// subtree never poisons the memo.
				return err
			}
			if kr != nil {
				nr := &subtreeRecord{trace: kr.Trace(), space: skid,
					imgAddrs: make([]int, len(kidSpans)), outAddrs: make([]int, len(live))}
				for i, s := range kidSpans {
					a, ok := b.mem.Get(memKey(s.pos, s.tb+1))
					if !ok {
						return fmt.Errorf("simulate: produced image %v missing after %v", memKey(s.pos, s.tb+1), kid)
					}
					nr.imgAddrs[i] = a
				}
				for i, v := range live {
					a, ok := b.bcast.Get(v)
					if !ok {
						return fmt.Errorf("simulate: live-out %v missing after %v", v, kid)
					}
					nr.outAddrs[i] = a
				}
				memo.store(memoSubtree, memoLevel(kid.Span()), key, nr)
				// The outer recorder (if any) saw none of the child's
				// charges while the inner recorder held the tap; link the
				// finished trace in its place.
				if n := len(b.recs); n > 0 {
					b.recs[n-1].Child(nr.trace)
				}
			}
		}
		overrides = b.ovStack[depth]

		// Persist the child's products into staging: produced images and
		// live-out broadcasts.
		for _, s := range kidSpans {
			k := memKey(s.pos, s.tb+1)
			src, ok := b.mem.Get(k)
			if !ok {
				return fmt.Errorf("simulate: produced image %v missing after %v", k, kid)
			}
			stagePtr -= b.iw
			if stagePtr < skid {
				return fmt.Errorf("simulate: staging underflow in %v", dom)
			}
			b.mach.BlockCopy(stagePtr, src, b.iw)
			b.mem.Set(k, stagePtr)
		}
		for _, v := range live {
			b.live.Add(v)
			src, ok := b.bcast.Get(v)
			if !ok {
				return fmt.Errorf("simulate: live-out %v missing after %v", v, kid)
			}
			stagePtr--
			if stagePtr < skid {
				return fmt.Errorf("simulate: staging underflow in %v", dom)
			}
			b.mach.MoveWord(stagePtr, src)
			b.bcast.Set(v, stagePtr)
		}

		// Restore incoming keys to the parent copies, then drop dead
		// entries: consumed images and non-live broadcasts of the child.
		for _, s := range overrides {
			if s.mem {
				b.mem.Set(s.p, s.add)
			} else {
				b.bcast.Set(s.p, s.add)
			}
		}
		for _, s := range kidSpans {
			if s.ta >= 1 {
				b.mem.Delete(memKey(s.pos, s.ta))
			}
		}
		kid.Points(func(p lattice.Point) bool {
			if !b.live.Has(p) {
				b.bcast.Delete(p)
			}
			return true
		})
		for _, v := range live {
			b.live.Remove(v)
		}
		if sp != nil {
			sp.SetAttr("depth", float64(depth))
			sp.SetAttr("size", float64(kid.Size()))
			sp.SetAttr("vtime", b.mach.Meter().Now()-vt0)
			sp.End()
		}
	}
	return nil
}

// execLeaf simulates the domain naively in place: all column images
// resident at the bottom of the workspace, broadcast values above them.
// The colIdx scratch table holds each column's image base address for the
// duration of the leaf.
func (b *blockedExec) execLeaf(dom lattice.Domain) error {
	spans := b.columns(dom)
	next := 0
	for _, s := range spans {
		b.colIdx.Set(s.pos, next)
		next += b.iw
	}
	// Bring consumed images local.
	for _, s := range spans {
		if s.ta >= 1 {
			k := memKey(s.pos, s.ta)
			src, ok := b.mem.Get(k)
			if !ok {
				return b.drainLeaf(spans, fmt.Errorf("simulate: image %v unavailable in leaf %v", k, dom))
			}
			base, _ := b.colIdx.Get(s.pos)
			b.mach.BlockCopy(base, src, b.iw)
			b.mem.Set(k, base)
		}
	}
	var fail error
	dom.Points(func(p lattice.Point) bool {
		base, _ := b.colIdx.Get(lattice.Point{X: p.X, Y: p.Y, Z: p.Z})
		node := b.geom.nodeIndex(p)
		if p.T == 0 {
			// Materialize the initial state. The initial memory image is
			// an input: it sits in the host's memory from the start (the
			// paper charges only its relocation, which the recursion's
			// BlockCopy calls do), so Poke is free; the broadcast value
			// of the input vertex (v, 0) costs one op and one write.
			for i := range b.initMem {
				b.initMem[i] = 0
			}
			bv := b.prog.Init(node, b.initMem)
			for i, w := range b.initMem[:b.iw] {
				b.mach.Poke(base+i, w)
			}
			b.mach.Op()
			b.mach.Write(next, bv)
			b.bcast.Set(p, next)
			next++
			return true
		}
		cellOff := b.prog.Address(node, p.T, b.m)
		if cellOff >= b.iw {
			fail = fmt.Errorf("simulate: address %d beyond declared live memory %d", cellOff, b.iw)
			return false
		}
		addr := base + cellOff
		cell := b.mach.Read(addr)
		b.ptsBuf = b.geom.netPreds(p, b.ptsBuf[:0])
		b.opsBuf = b.opsBuf[:0]
		for _, q := range b.ptsBuf {
			a, ok := b.bcast.Get(q)
			if !ok {
				fail = fmt.Errorf("simulate: operand %v of %v unavailable in leaf", q, p)
				return false
			}
			b.opsBuf = append(b.opsBuf, b.mach.Read(a))
		}
		out, cellOut := b.prog.Step(node, p.T, cell, b.opsBuf)
		b.mach.Op()
		b.mach.Write(addr, cellOut)
		b.mach.Write(next, out)
		b.bcast.Set(p, next)
		next++
		return true
	})
	// One amortized cancellation/progress check per executed leaf keeps
	// the per-vertex loop free of checking overhead; leaves are D(m)-sized,
	// so cancellation latency stays bounded by one small leaf kernel.
	if fail == nil {
		fail = b.ec.step(dom.Size())
	}
	if fail != nil {
		return b.drainLeaf(spans, fail)
	}
	// Rename images in place: consumed Mem(v, ta) becomes produced
	// Mem(v, tb+1) at zero cost.
	for _, s := range spans {
		base, _ := b.colIdx.Get(s.pos)
		b.mem.Delete(memKey(s.pos, s.ta))
		b.mem.Set(memKey(s.pos, s.tb+1), base)
	}
	return b.drainLeaf(spans, nil)
}

// drainLeaf releases the colIdx scratch entries of a leaf, passing err
// through.
func (b *blockedExec) drainLeaf(spans []colSpan, err error) error {
	for _, s := range spans {
		b.colIdx.Delete(s.pos)
	}
	return err
}

// collect gathers the final broadcast values and memory images in node
// index order after the root execution.
func (b *blockedExec) collect(n int) ([]hram.Word, [][]hram.Word, error) {
	out := make([]hram.Word, n)
	mems := make([][]hram.Word, n)
	staticBuf := make([]hram.Word, b.m)
	for node := 0; node < n; node++ {
		pos := b.geom.nodePos(node)
		addr, ok := b.bcast.Get(memKey(pos, b.steps))
		if !ok {
			return nil, nil, fmt.Errorf("simulate: missing final broadcast of node %d", node)
		}
		out[node] = b.mach.Peek(addr)
		base, ok := b.mem.Get(memKey(pos, b.steps+1))
		if !ok {
			return nil, nil, fmt.Errorf("simulate: missing final memory of node %d", node)
		}
		mems[node] = make([]hram.Word, b.m)
		for i := 0; i < b.iw; i++ {
			mems[node][i] = b.mach.Peek(base + i)
		}
		if b.iw < b.m {
			// Cells beyond the declared live region are never addressed;
			// they retain their initial contents.
			for i := range staticBuf {
				staticBuf[i] = 0
			}
			b.prog.Init(node, staticBuf)
			copy(mems[node][b.iw:], staticBuf[b.iw:])
		}
	}
	return out, mems, nil
}

// imageWords resolves the relocated image width m' for prog on an m-dense
// machine (the MemUser restriction).
func imageWords(prog network.Program, m int) (int, error) {
	if mu, ok := prog.(MemUser); ok {
		iw := mu.MemWords(m)
		if iw < 1 || iw > m {
			return 0, fmt.Errorf("simulate: MemWords(%d) = %d out of range", m, iw)
		}
		return iw, nil
	}
	return m, nil
}
