package simulate

import (
	"context"

	"bsmp/internal/analytic"
	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
	"bsmp/internal/separator"
	"fmt"
)

// UniDC runs the uniprocessor divide-and-conquer simulation for m = 1:
// Theorem 2 (d = 1, guest M1(n, n, 1)) or Theorem 5 (d = 2, guest
// M2(n, n, 1), n = side²), executing the guest's T-step computation dag on
// a single f(x) = x^(1/d) H-RAM via the topological-separator technique
// with real address management. steps is T; the paper's canonical choice
// is T = n^(1/d) per simulation cycle, repeated for longer computations.
//
// The returned Result carries the final dag layer as Outputs; verify with
// VerifyDag. The expected slowdown over the guest's Θ(T) time is
// Θ(n·Log n) — the n for lost parallelism times Log n for lost locality.
func UniDC(d, n, steps, leafSize int, prog dag.Program) (Result, error) {
	return UniDCContext(context.Background(), d, n, steps, leafSize, prog)
}

// UniDCContext is UniDC under a context: the separator executor polls
// cancellation at every partition boundary and (amortized) per executed
// leaf via its Check hook, and reports step progress to any attached
// Progress. The hook runs between charged operations, so a
// never-cancelled run's virtual times are bit-identical to UniDC's.
func UniDCContext(ctx context.Context, d, n, steps, leafSize int, prog dag.Program) (Result, error) {
	g, root, err := guestDag(d, n, steps)
	if err != nil {
		return Result{}, err
	}
	space := separator.SpaceNeeded(g, root, leafSize)
	var meter cost.Meter
	mach := hram.New(space, hram.Standard(d, 1), &meter)
	ex := &separator.Executor{G: g, Prog: prog, LeafSize: leafSize, Check: checkHook(ctx)}
	res, err := ex.Execute(mach, root)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Outputs: res.Outputs,
		Time:    meter.Now(),
		Ledger:  meter.Ledger,
		Steps:   steps,
		Space:   res.Space,
	}, nil
}

// UniNaiveDag executes the same m = 1 guest dag on the same uniprocessor
// host but in plain row-major order with the guest's natural memory layout
// (node v's value at address v), the unsophisticated baseline of
// Proposition 1: every operand access pays the full Θ(n^(1/d)) average
// latency. Expected slowdown Θ(n^(1+1/d)) — the curve UniDC must beat.
func UniNaiveDag(d, n, steps int, prog dag.Program) (Result, error) {
	return UniNaiveDagContext(context.Background(), d, n, steps, prog)
}

// UniNaiveDagContext is UniNaiveDag under a context: cancellation is
// checked once per dag layer (n vertices of work) and progress reported
// to any attached Progress.
func UniNaiveDagContext(ctx context.Context, d, n, steps int, prog dag.Program) (Result, error) {
	g, _, err := guestDag(d, n, steps)
	if err != nil {
		return Result{}, err
	}
	ec := newExecCtx(ctx)
	var meter cost.Meter
	// Two layers resident: previous and current, each n words.
	mach := hram.New(2*n, hram.Standard(d, 1), &meter)
	nodes := g.Nodes()
	var buf []lattice.Point
	ops := make([]dag.Value, 0, 5)
	idx := func(p lattice.Point) int {
		switch d {
		case 2:
			side := analytic.IntSqrtExact(n)
			return p.Y*side + p.X
		case 3:
			side := analytic.IntCbrtExact(n)
			return (p.Z*side+p.Y)*side + p.X
		default:
			return p.X
		}
	}
	cur, prev := 0, nodes // ping-pong bases
	// Input layer.
	forEachNode(d, n, func(p lattice.Point) {
		mach.Op()
		mach.Write(cur+idx(p), prog.Input(p))
	})
	for t := 1; t < steps; t++ {
		if err := ec.step(n); err != nil {
			return Result{}, err
		}
		cur, prev = prev, cur
		forEachNode(d, n, func(p lattice.Point) {
			p.T = t
			buf = g.Preds(p, buf[:0])
			ops = ops[:0]
			for _, q := range buf {
				ops = append(ops, mach.Read(prev+idx(q)))
			}
			mach.Op()
			mach.Write(cur+idx(p), prog.Step(p, ops))
		})
	}
	out := make([]dag.Value, nodes)
	forEachNode(d, n, func(p lattice.Point) {
		out[idx(p)] = mach.Peek(cur + idx(p))
	})
	return Result{
		Outputs: out,
		Time:    meter.Now(),
		Ledger:  meter.Ledger,
		Steps:   steps,
	}, nil
}

// VerifyDag checks a dag-level simulation result against the reference
// execution of the same guest.
func VerifyDag(r Result, d, n int, prog dag.Program) error {
	g, _, err := guestDag(d, n, r.Steps)
	if err != nil {
		return err
	}
	want := dag.Reference(g, prog)
	if len(r.Outputs) != len(want) {
		return fmt.Errorf("simulate: %d outputs, want %d", len(r.Outputs), len(want))
	}
	for i := range want {
		if r.Outputs[i] != want[i] {
			return fmt.Errorf("simulate: output[%d] = %d, want %d", i, r.Outputs[i], want[i])
		}
	}
	return nil
}

// checkHook adapts an execution context to the separator executor's
// Check hook: vertices = 0 marks a phase boundary (unconditional poll),
// a positive count is amortized vertex progress.
func checkHook(ctx context.Context) func(int) error {
	ec := newExecCtx(ctx)
	return func(vertices int) error {
		if vertices == 0 {
			return ec.checkpoint()
		}
		return ec.step(vertices)
	}
}

// guestDag builds the guest's computation dag and its full domain.
func guestDag(d, n, steps int) (dag.Graph, lattice.Domain, error) {
	if n < 1 || steps < 1 {
		return nil, nil, perr("unidc", "n", fmt.Sprintf("needs n >= 1 and steps >= 1, got n=%d steps=%d", n, steps), n)
	}
	switch d {
	case 1:
		g := dag.NewLineGraph(n, steps)
		return g, g.Domain(), nil
	case 2:
		side, ok := exactSqrt(n)
		if !ok {
			return nil, nil, shapeError("unidc", "n", 2, n)
		}
		g := dag.NewMeshGraph(side, steps)
		return g, g.Domain(), nil
	case 3:
		side, ok := exactCbrt(n)
		if !ok {
			return nil, nil, shapeError("unidc", "n", 3, n)
		}
		g := dag.NewCubeGraph(side, steps)
		return g, g.Domain(), nil
	default:
		return nil, nil, fmt.Errorf("simulate: dimension %d not in {1,2,3}", d)
	}
}

// forEachNode visits the guest's nodes at t = 0 in index order.
func forEachNode(d, n int, f func(lattice.Point)) {
	switch d {
	case 1:
		for x := 0; x < n; x++ {
			f(lattice.Point{X: x})
		}
	case 2:
		side := analytic.IntSqrtExact(n)
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				f(lattice.Point{X: x, Y: y})
			}
		}
	default:
		side := analytic.IntCbrtExact(n)
		for z := 0; z < side; z++ {
			for y := 0; y < side; y++ {
				for x := 0; x < side; x++ {
					f(lattice.Point{X: x, Y: y, Z: z})
				}
			}
		}
	}
}
