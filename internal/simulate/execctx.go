package simulate

import (
	"context"
	"sync/atomic"

	"bsmp/internal/obs"
)

// Progress is the externally sampled step-progress meter a caller can
// attach to a simulation context with WithProgress. The engines only
// ever Add to the counters (amortized, see execCtx); readers sample the
// atomics concurrently, e.g. the serving layer's in-flight gauges.
//
// The meter is host-side bookkeeping only: it never touches the cost
// ledger, so attaching one cannot perturb virtual times.
type Progress struct {
	// Vertices counts dag vertices executed (guest steps across all
	// simulated nodes, leaf kernel points, functional-replay work).
	Vertices atomic.Int64
	// Phases counts completed phase/recursion boundaries: one per
	// blocked-recursion child, per separator child, per schedule phase.
	Phases atomic.Int64
}

type progressKeyType struct{}

// WithProgress returns a context carrying p; simulations started under
// the returned context report step progress into p.
func WithProgress(ctx context.Context, p *Progress) context.Context {
	return context.WithValue(ctx, progressKeyType{}, p)
}

// ProgressFrom returns the Progress attached by WithProgress, or nil.
func ProgressFrom(ctx context.Context) *Progress {
	p, _ := ctx.Value(progressKeyType{}).(*Progress)
	return p
}

// checkInterval is the amortization window: the engines poll the
// context's done channel (and flush the progress meter) once per this
// many counted vertices, so the per-vertex cost of cancellability is an
// integer increment and a compare. Recursion/phase boundaries poll
// unconditionally via checkpoint, bounding cancellation latency by
// min(checkInterval vertices, one phase) of work.
const checkInterval = 1024

// execCtx is the per-run execution context threaded through every
// engine. It wraps the caller's context.Context with an amortized
// cancellation poll and the optional Progress meter. All checks happen
// on the host side, between charged operations — they never interact
// with the cost meters, which keeps virtual times of a never-cancelled
// run bit-identical to a run without any context at all.
type execCtx struct {
	ctx     context.Context
	done    <-chan struct{} // ctx.Done(), nil for Background-like contexts
	prog    *Progress
	tr      *obs.Tracer // span tracing; nil for untraced runs
	pending int         // vertices counted since the last flush
}

// newExecCtx builds the execution context for ctx. For contexts that
// can never be cancelled and carry no meter (context.Background()),
// every step() reduces to an add-and-compare on a local int.
func newExecCtx(ctx context.Context) *execCtx {
	return &execCtx{ctx: ctx, done: ctx.Done(), prog: ProgressFrom(ctx), tr: obs.FromContext(ctx)}
}

// step counts n executed vertices and, once checkInterval have
// accumulated, flushes them to the meter and polls cancellation.
func (e *execCtx) step(n int) error {
	e.pending += n
	if e.pending < checkInterval {
		return nil
	}
	return e.flush()
}

// hook returns e.step as a network.StepHook, or nil when the context
// can never be cancelled and carries no meter — then the hooked guest
// executors skip the per-step indirect call entirely and run the exact
// pre-hook loop. Callers that replay large guests should prefer this
// over passing e.step directly: a cancelled context is observed either
// way, but the common context.Background() path stays overhead-free.
func (e *execCtx) hook() func(int) error {
	if e.done == nil && e.prog == nil {
		return nil
	}
	return e.step
}

// poll is one unamortized, non-blocking cancellation check that counts
// nothing: planning-phase recursions (spaceNeeded) run before the first
// simulated vertex, where the per-node work dwarfs a channel poll, so a
// cancelled run unwinds out of planning promptly instead of only after
// the whole space computation completes.
func (e *execCtx) poll() error {
	if e.done == nil {
		return nil
	}
	select {
	case <-e.done:
		return e.ctx.Err()
	default:
		return nil
	}
}

// checkpoint marks a completed phase/recursion boundary: it counts the
// phase, flushes pending vertices, and polls cancellation regardless of
// the amortization window, so deep recursions with tiny leaves still
// observe cancellation promptly.
func (e *execCtx) checkpoint() error {
	if e.prog != nil {
		e.prog.Phases.Add(1)
	}
	return e.flush()
}

// flush publishes pending vertex counts and performs one non-blocking
// poll of the done channel.
func (e *execCtx) flush() error {
	if e.prog != nil && e.pending > 0 {
		e.prog.Vertices.Add(int64(e.pending))
	}
	e.pending = 0
	if e.done == nil {
		return nil
	}
	select {
	case <-e.done:
		return e.ctx.Err()
	default:
		return nil
	}
}
