package simulate

import (
	"testing"

	"bsmp/internal/analytic"
)

func TestMultiD3Functional(t *testing.T) {
	side, pside := 4, 2 // n = 64, p = 8
	n, p := side*side*side, pside*pside*pside
	prog := cubeProg(side, 9)
	res, err := MultiD3(n, p, 2, 8, prog, Multi3Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(3, n, 2, prog); err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Span < 2 {
		t.Fatalf("time %v span %d", res.Time, res.Span)
	}
}

func TestMultiD3MoreProcessorsFaster(t *testing.T) {
	side := 8 // n = 512
	n := side * side * side
	prog := cubeProg(side, 9)
	t8, err := MultiD3(n, 8, 2, 8, prog, Multi3Options{})
	if err != nil {
		t.Fatal(err)
	}
	t64, err := MultiD3(n, 64, 2, 8, prog, Multi3Options{})
	if err != nil {
		t.Fatal(err)
	}
	if t64.Time >= t8.Time {
		t.Errorf("p=64 (%v) not faster than p=8 (%v)", t64.Time, t8.Time)
	}
}

func TestMultiD3RearrangementHelps(t *testing.T) {
	// p = 64 so the ablated distances genuinely differ: the rearranged
	// distance (n/p)^(1/3) = 4 versus the raw n^(1/3)/2 = 8. (At p = 8
	// the two coincide and the ablation is a no-op by geometry.)
	side := 16
	n := side * side * side
	p := 64
	prog := cubeProg(side, 9)
	full, err := MultiD3(n, p, 8, 8, prog, Multi3Options{})
	if err != nil {
		t.Fatal(err)
	}
	noRe, err := MultiD3(n, p, 8, 8, prog, Multi3Options{NoRearrange: true})
	if err != nil {
		t.Fatal(err)
	}
	if noRe.Time <= full.Time {
		t.Errorf("no-rearrange %v not worse than full %v", noRe.Time, full.Time)
	}
}

func TestMultiD3AGrowsAndSaturates(t *testing.T) {
	// The conjectured four-range structure: A grows with m and saturates
	// near the naive plateau (n/p)^(1/3)-ish scale by m >= n^(1/3).
	side := 8
	n := side * side * side // 512
	p := 8
	prog := cubeProg(side, 9)
	var last float64
	for _, m := range []int{1, 8, 64} {
		res, err := MultiD3(n, p, m, 8, prog, Multi3Options{})
		if err != nil {
			t.Fatal(err)
		}
		tn := GuestTime(3, n, m, 8, prog)
		a := float64(res.Time) / float64(tn) / (float64(n) / float64(p))
		if a <= 0 {
			t.Fatalf("m=%d: non-positive A", m)
		}
		if analytic.A(3, n, m, p) <= 0 {
			t.Fatalf("m=%d: analytic d=3 A not positive", m)
		}
		last = a
	}
	_ = last
}
