package simulate

import (
	"strings"
	"testing"

	"bsmp/internal/guest"
)

func TestSchemesRegistryComplete(t *testing.T) {
	want := map[string][]int{
		"naive":            {1, 2},
		"unidc":            {1, 2, 3},
		"blocked":          {1, 2, 3},
		"blocked-analytic": {1},
		"multi":            {1, 2, 3},
		"multi-theta":      {1, 2, 3},
	}
	seen := map[string]map[int]bool{}
	for _, s := range Schemes {
		if s.Run == nil || s.Description == "" {
			t.Errorf("scheme %q d=%d: missing Run or Description", s.Name, s.D)
		}
		if seen[s.Name] == nil {
			seen[s.Name] = map[int]bool{}
		}
		if seen[s.Name][s.D] {
			t.Errorf("duplicate registry entry (%q, %d)", s.Name, s.D)
		}
		seen[s.Name][s.D] = true
	}
	for name, ds := range want {
		for _, d := range ds {
			if !seen[name][d] {
				t.Errorf("registry missing (%q, %d)", name, d)
			}
			sc, err := SchemeByName(name, d)
			if err != nil {
				t.Errorf("SchemeByName(%q, %d): %v", name, d, err)
			} else if sc.Name != name || sc.D != d {
				t.Errorf("SchemeByName(%q, %d) returned (%q, %d)", name, d, sc.Name, sc.D)
			}
		}
	}
	total := 0
	for _, ds := range seen {
		total += len(ds)
	}
	if total != len(Schemes) {
		t.Errorf("registry has %d entries, %d unique (name, d) pairs", len(Schemes), total)
	}
}

func TestRunSchemeMatchesDirectCalls(t *testing.T) {
	// The registry is a lookup table, not a reimplementation: each entry
	// must report the exact virtual time of the direct call it wraps.
	prog := netProg(0)

	direct, err := MultiD1(64, 4, 4, 16, prog, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaReg, err := RunScheme("multi", 1, 64, 4, 4, 16, prog, SchemeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if viaReg.Time != direct.Time || viaReg.PrepTime != direct.PrepTime {
		t.Errorf("multi d=1: registry (%v, %v) != direct (%v, %v)",
			viaReg.Time, viaReg.PrepTime, direct.Time, direct.PrepTime)
	}

	db, err := BlockedD1(64, 4, 16, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunScheme("blocked", 1, 64, 1, 4, 16, prog, SchemeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Time != db.Time {
		t.Errorf("blocked d=1: registry %v != direct %v", rb.Time, db.Time)
	}

	dn, err := Naive(1, 64, 4, 4, 16, prog)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := RunScheme("naive", 1, 64, 4, 4, 16, prog, SchemeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rn.Time != dn.Time {
		t.Errorf("naive d=1: registry %v != direct %v", rn.Time, dn.Time)
	}

	dagGuest := guest.Rule90{Seed: 1}
	du, err := UniDC(1, 64, 64, 8, dagGuest)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := RunScheme("unidc", 1, 64, 1, 1, 64, guest.AsNetwork{G: dagGuest}, SchemeConfig{Leaf: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ru.Time != du.Time {
		t.Errorf("unidc d=1: registry %v != direct %v", ru.Time, du.Time)
	}
	if err := VerifyDag(ru.Result, 1, 64, dagGuest); err != nil {
		t.Errorf("unidc d=1 via registry: %v", err)
	}
}

func TestRunSchemeErrors(t *testing.T) {
	prog := netProg(0)
	cases := []struct {
		label string
		run   func() error
		want  string
	}{
		{"unknown name", func() error {
			_, err := RunScheme("fancy", 1, 64, 1, 1, 16, prog, SchemeConfig{})
			return err
		}, "no scheme"},
		{"unregistered dimension", func() error {
			_, err := RunScheme("multi", 4, 64, 4, 1, 16, prog, SchemeConfig{})
			return err
		}, "no scheme"},
		{"naive has no d=3 entry", func() error {
			_, err := RunScheme("naive", 3, 64, 4, 1, 16, prog, SchemeConfig{})
			return err
		}, "no scheme"},
		{"unidc is uniprocessor", func() error {
			_, err := RunScheme("unidc", 1, 64, 2, 1, 16, guest.AsNetwork{G: guest.Rule90{Seed: 1}}, SchemeConfig{})
			return err
		}, "uniprocessor"},
		{"unidc needs m=1", func() error {
			_, err := RunScheme("unidc", 1, 64, 1, 2, 16, guest.AsNetwork{G: guest.Rule90{Seed: 1}}, SchemeConfig{})
			return err
		}, "m=1"},
		{"unidc needs a dag view", func() error {
			_, err := RunScheme("unidc", 1, 64, 1, 1, 16, guest.RestrictMem{P: guest.MixCA{Seed: 1}, Words: 1}, SchemeConfig{})
			return err
		}, "dag view"},
		{"blocked is uniprocessor", func() error {
			_, err := RunScheme("blocked", 1, 64, 2, 4, 16, prog, SchemeConfig{})
			return err
		}, "uniprocessor"},
	}
	for _, c := range cases {
		err := c.run()
		if err == nil {
			t.Errorf("%s: no error", c.label)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.label, err, c.want)
		}
	}
}
