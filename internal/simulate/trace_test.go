package simulate

import (
	"context"
	"math"
	"testing"

	"bsmp/internal/cost"
	"bsmp/internal/guest"
	"bsmp/internal/obs"
)

// findSpans walks the span forest and collects every span named name.
func findSpans(roots []*obs.Span, name string) []*obs.Span {
	var out []*obs.Span
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		if s.Name == name {
			out = append(out, s)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return out
}

// Attaching a tracer must not perturb virtual time by a single bit: span
// hooks only read meter/bank snapshots, never charge. These runs repeat
// the golden cases from golden_test.go with a tracer attached.
func TestTraceGoldenBitIdentical(t *testing.T) {
	p1 := guest.AsNetwork{G: guest.MixCA{Seed: 9}}

	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	mr, err := MultiD1Context(ctx, 64, 4, 16, 16, p1, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mr.Time != 79686.0625 {
		t.Errorf("traced MultiD1: Time = %v, golden 79686.0625", mr.Time)
	}
	if mr.PrepTime != 45232 {
		t.Errorf("traced MultiD1: PrepTime = %v, golden 45232", mr.PrepTime)
	}

	tr2 := obs.NewTracer()
	ctx2 := obs.WithTracer(context.Background(), tr2)
	r, err := BlockedD1Context(ctx2, 64, 4, 16, 0, p1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Time != 1.59814675e+06 {
		t.Errorf("traced BlockedD1: Time = %v, golden 1.59814675e+06", r.Time)
	}
	// With the subtree memo warm (shared across runs in this process), any
	// child may replay instead of recursing; both span kinds mark one
	// recursion-child boundary.
	blocks := len(findSpans(tr2.Roots(), "block")) + len(findSpans(tr2.Roots(), "block:replayed"))
	if blocks == 0 {
		t.Error("traced BlockedD1 recorded no block or block:replayed spans")
	}
}

// The schedule span's phase children carry virtual-time deltas sampled
// from the bank; like PhaseBreakdown they telescope to the full makespan
// Time + PrepTime (relative tolerance for float regrouping of the same
// charges; Time itself is checked bit-exactly above).
func TestTracePhaseSpansSumToMakespan(t *testing.T) {
	p1 := guest.AsNetwork{G: guest.MixCA{Seed: 9}}
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	mr, err := MultiD1Context(ctx, 64, 4, 16, 16, p1, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}

	scheds := findSpans(tr.Roots(), "schedule")
	if len(scheds) != 1 {
		t.Fatalf("found %d schedule spans, want 1", len(scheds))
	}
	sched := scheds[0]
	full := float64(mr.Time + mr.PrepTime)
	if got := sched.Attrs["vtime"]; math.Abs(got-full) > 1e-9*full {
		t.Errorf("schedule vtime = %v, want Time+PrepTime = %v", got, full)
	}

	wantPhases := []string{
		"phase:" + cost.PhaseRearrange,
		"phase:" + cost.PhaseRegime1,
		"phase:" + cost.PhaseRegime2Exec,
		"phase:" + cost.PhaseRegime2Exchange,
	}
	if len(sched.Children) == 0 {
		t.Fatal("schedule span has no phase children")
	}
	seen := map[string]bool{}
	var sum float64
	for _, c := range sched.Children {
		seen[c.Name] = true
		sum += c.Attrs["vtime"]
	}
	for _, w := range wantPhases {
		if !seen[w] {
			t.Errorf("missing phase span %q (have %v)", w, seen)
		}
	}
	if math.Abs(sum-full) > 1e-9*full {
		t.Errorf("phase vtimes sum to %v, want Time+PrepTime = %v", sum, full)
	}
}

// RunSchemeContext wraps the run in a scheme:<name> root whose subtree
// holds the engine spans, and stamps the makespan on the root.
func TestTraceSchemeRootSpan(t *testing.T) {
	p1 := guest.AsNetwork{G: guest.MixCA{Seed: 9}}
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	mr, err := RunSchemeContext(ctx, "multi", 1, 64, 4, 16, 16, p1, SchemeConfig{})
	if err != nil {
		t.Fatal(err)
	}

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d root spans, want 1", len(roots))
	}
	root := roots[0]
	if root.Name != "scheme:multi" {
		t.Errorf("root span = %q, want scheme:multi", root.Name)
	}
	full := float64(mr.Time + mr.PrepTime)
	if got := root.Attrs["vtime"]; got != full {
		t.Errorf("root vtime = %v, want %v", got, full)
	}
	if root.DurNS < 0 {
		t.Errorf("root DurNS = %d, want >= 0", root.DurNS)
	}
	// d = 1 has no candidate-span search, so no "plan" span; that stage
	// only appears under the d = 2/3 planners.
	for _, name := range []string{"schedule", "replay"} {
		if len(findSpans([]*obs.Span{root}, name)) == 0 {
			t.Errorf("scheme subtree missing %q span", name)
		}
	}
}
