package simulate

import (
	"testing"
	"testing/quick"

	"bsmp/internal/guest"
)

func TestBlockedD2Functional(t *testing.T) {
	for _, tc := range []struct{ side, m, steps, leaf int }{
		{3, 1, 4, 0},
		{4, 2, 6, 0},
		{4, 2, 6, 4}, // non-default leaf span
		{5, 4, 8, 0},
		{6, 3, 5, 0},
	} {
		n := tc.side * tc.side
		prog := netProg(tc.side)
		res, err := BlockedD2(n, tc.m, tc.steps, tc.leaf, prog)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if err := res.Verify(2, n, tc.m, prog); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
	}
}

func TestBlockedD2MatchesNaive(t *testing.T) {
	side, m, steps := 4, 3, 6
	n := side * side
	prog := netProg(side)
	blk, err := BlockedD2(n, m, steps, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := Naive(2, n, 1, m, steps, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blk.Outputs {
		if blk.Outputs[i] != nv.Outputs[i] {
			t.Fatalf("output %d: blocked %d vs naive %d", i, blk.Outputs[i], nv.Outputs[i])
		}
	}
	for v := range blk.Memories {
		for a := range blk.Memories[v] {
			if blk.Memories[v][a] != nv.Memories[v][a] {
				t.Fatalf("memory %d/%d mismatch", v, a)
			}
		}
	}
}

func TestBlockedD2TimeGrowsWithM(t *testing.T) {
	// At a FIXED leaf span the d = 2 image traffic grows with m (the
	// locality term): per-word move cost is span-determined while the
	// word count scales with m.
	side, steps, leaf := 16, 8, 4
	n := side * side
	prog := netProg(side)
	var times []float64
	for _, m := range []int{4, 16, 64} {
		res, err := BlockedD2(n, m, steps, leaf, prog)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, float64(res.Time))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Errorf("time not increasing with m at fixed leaf: %v", times)
		}
	}
}

func TestBlockedD2LargeMCollapsesToNaive(t *testing.T) {
	// With the default leaf span m, a large m swallows the whole domain
	// into one naive leaf — the paper's range 3/4 mechanism ("only the
	// naive simulation is profitable") — and that must be CHEAPER at
	// this scale than forcing deep recursion.
	side, steps, m := 16, 8, 64
	n := side * side
	prog := netProg(side)
	def, err := BlockedD2(n, m, steps, 0, prog) // leaf = m: one naive leaf
	if err != nil {
		t.Fatal(err)
	}
	forced, err := BlockedD2(n, m, steps, 4, prog) // deep recursion
	if err != nil {
		t.Fatal(err)
	}
	if def.Time >= forced.Time {
		t.Errorf("default (naive) %v not cheaper than forced recursion %v at large m",
			def.Time, forced.Time)
	}
}

func TestBlockedD2RestrictedMemory(t *testing.T) {
	side, m, steps := 4, 6, 5
	n := side * side
	prog := guest.RestrictMem{P: guest.MixCA{Seed: 21}, Words: 2, Side: side}
	res, err := BlockedD2(n, m, steps, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(2, n, m, prog); err != nil {
		t.Fatal(err)
	}
}

// Property: BlockedD2 reproduces the pure reference for random geometry.
func TestPropertyBlockedD2MatchesReference(t *testing.T) {
	f := func(sideRaw, mRaw, tRaw, seed uint8) bool {
		side := int(sideRaw%4) + 2
		m := int(mRaw%4) + 1
		steps := int(tRaw%6) + 1
		prog := guest.AsNetwork{G: guest.MixCA{Seed: uint64(seed)}, Side: side}
		res, err := BlockedD2(side*side, m, steps, 0, prog)
		if err != nil {
			return false
		}
		return res.Verify(2, side*side, m, prog) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
