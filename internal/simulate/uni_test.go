package simulate

import (
	"math"
	"testing"

	"bsmp/internal/guest"
)

func TestUniDCFunctionalD1(t *testing.T) {
	prog := guest.MixCA{Seed: 4}
	for _, n := range []int{8, 16, 32, 48} {
		res, err := UniDC(1, n, n, 8, prog)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := VerifyDag(res, 1, n, prog); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestUniDCFunctionalD2(t *testing.T) {
	prog := guest.MixCA{Seed: 5}
	for _, side := range []int{3, 4, 6, 8} {
		n := side * side
		res, err := UniDC(2, n, side, 8, prog)
		if err != nil {
			t.Fatalf("side=%d: %v", side, err)
		}
		if err := VerifyDag(res, 2, n, prog); err != nil {
			t.Fatalf("side=%d: %v", side, err)
		}
	}
}

func TestUniNaiveDagFunctional(t *testing.T) {
	prog := guest.MixCA{Seed: 6}
	res, err := UniNaiveDag(1, 16, 16, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDag(res, 1, 16, prog); err != nil {
		t.Fatal(err)
	}
	res2, err := UniNaiveDag(2, 16, 4, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDag(res2, 2, 16, prog); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem2ShapeBeatsNaiveAsymptotically(t *testing.T) {
	// The load-bearing claim of Theorem 2: UniDC time grows like
	// n²·log n (exponent ~2.1) while the naive baseline grows like n³
	// (exponent ~3 for d = 1 time over the T = n computation... the
	// naive dag run costs Θ(n) per vertex, n² vertices: Θ(n³)).
	prog := guest.Rule90{Seed: 1}
	var logN, logDC, logNv []float64
	for _, n := range []int{16, 32, 64, 128} {
		dc, err := UniDC(1, n, n, 8, prog)
		if err != nil {
			t.Fatal(err)
		}
		nv, err := UniNaiveDag(1, n, n, prog)
		if err != nil {
			t.Fatal(err)
		}
		logN = append(logN, math.Log2(float64(n)))
		logDC = append(logDC, math.Log2(float64(dc.Time)))
		logNv = append(logNv, math.Log2(float64(nv.Time)))
	}
	dcSlope := fitSlope(logN, logDC)
	nvSlope := fitSlope(logN, logNv)
	if nvSlope < 2.7 || nvSlope > 3.3 {
		t.Errorf("naive exponent %v, want ~3", nvSlope)
	}
	if dcSlope > nvSlope-0.5 {
		t.Errorf("separator exponent %v not clearly below naive %v", dcSlope, nvSlope)
	}
}

func TestTheorem5ShapeD2(t *testing.T) {
	// d = 2: UniDC grows ~ k log k in dag size k = n^1.5 => in terms of
	// n: exponent ~1.5 (+log); naive dag run: n^1.5 vertices × √n access
	// = n² => exponent 2.
	prog := guest.Rule90{Seed: 2}
	var logN, logDC, logNv, boundRatios []float64
	for _, side := range []int{8, 16, 32} {
		n := side * side
		dc, err := UniDC(2, n, side, 8, prog)
		if err != nil {
			t.Fatal(err)
		}
		nv, err := UniNaiveDag(2, n, side, prog)
		if err != nil {
			t.Fatal(err)
		}
		k := float64(side * side * side)
		boundRatios = append(boundRatios, float64(dc.Time)/(k*math.Log2(k)))
		logN = append(logN, math.Log2(float64(n)))
		logDC = append(logDC, math.Log2(float64(dc.Time)))
		logNv = append(logNv, math.Log2(float64(nv.Time)))
	}
	dcSlope := fitSlope(logN, logDC)
	nvSlope := fitSlope(logN, logNv)
	if nvSlope < 1.7 || nvSlope > 2.3 {
		t.Errorf("naive d=2 exponent %v, want ~2", nvSlope)
	}
	if dcSlope >= nvSlope {
		t.Errorf("separator d=2 exponent %v not below naive %v", dcSlope, nvSlope)
	}
	// Consistency with Θ(k·log k): the ratio τ/(k·Log k) converges — its
	// successive increments shrink (pure power-law excess would grow them).
	inc1 := boundRatios[1] - boundRatios[0]
	inc2 := boundRatios[2] - boundRatios[1]
	if inc2 >= inc1 {
		t.Errorf("τ/(k·log k) increments not shrinking: %v", boundRatios)
	}
}

func TestGuestTimePositiveAndLinear(t *testing.T) {
	prog := netProg(0)
	t8 := GuestTime(1, 32, 2, 8, prog)
	t16 := GuestTime(1, 32, 2, 16, prog)
	if t8 <= 0 || t16 <= 0 {
		t.Fatal("non-positive guest time")
	}
	if r := float64(t16) / float64(t8); r < 1.8 || r > 2.2 {
		t.Errorf("guest time not linear in steps: ratio %v", r)
	}
}

func TestUniDCBadDimension(t *testing.T) {
	if _, err := UniDC(4, 8, 8, 8, guest.Rule90{}); err == nil {
		t.Fatal("d=4 did not error")
	}
}
