package simulate

import (
	"testing"
	"testing/quick"

	"bsmp/internal/guest"
)

func cubeProg(side int, seed uint64) guest.AsNetwork {
	return guest.AsNetwork{G: guest.MixCA{Seed: seed}, CubeSide: side}
}

func TestBlockedD3Functional(t *testing.T) {
	for _, tc := range []struct{ side, m, steps, leaf int }{
		{2, 1, 4, 0},
		{3, 2, 4, 0},
		{3, 2, 4, 4},
		{4, 3, 5, 0},
	} {
		n := tc.side * tc.side * tc.side
		prog := cubeProg(tc.side, 9)
		res, err := BlockedD3(n, tc.m, tc.steps, tc.leaf, prog)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if err := res.Verify(3, n, tc.m, prog); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
	}
}

func TestBlockedD3ImageTrafficGrowsWithM(t *testing.T) {
	side, steps, leaf := 6, 4, 2
	n := side * side * side
	prog := cubeProg(side, 9)
	var prev float64
	for i, m := range []int{2, 8, 32} {
		res, err := BlockedD3(n, m, steps, leaf, prog)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && float64(res.Time) <= prev {
			t.Errorf("m=%d: time %v not above smaller-m run %v", m, res.Time, prev)
		}
		prev = float64(res.Time)
	}
}

// Property: BlockedD3 reproduces the pure reference for random geometry.
func TestPropertyBlockedD3MatchesReference(t *testing.T) {
	f := func(sideRaw, mRaw, tRaw, seed uint8) bool {
		side := int(sideRaw%3) + 2
		m := int(mRaw%3) + 1
		steps := int(tRaw%4) + 1
		prog := cubeProg(side, uint64(seed))
		res, err := BlockedD3(side*side*side, m, steps, 0, prog)
		if err != nil {
			return false
		}
		return res.Verify(3, side*side*side, m, prog) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
