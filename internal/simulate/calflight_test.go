package simulate

import (
	"context"
	"sync"
	"testing"
)

// flushMemo empties the process-wide memo store (capacity 0 evicts
// everything) and restores the default capacity, giving the test a cold
// kernel cache.
func flushMemo() {
	SetMemoCapacity(0)
	SetMemoCapacity(DefaultMemoCapacity)
}

// Concurrent identical multiprocessor runs on a cold cache must coalesce
// their kernel calibrations: the whole fan performs exactly the
// measurement count of one solo run, instead of multiplying it by the
// concurrency. This is what makes a server-side sweep's shared
// calibration claim real — N grid points sharing (d, span, m, program)
// tuples pay for one calibration run each, not N.
func TestKernelCalibrationCoalesced(t *testing.T) {
	run := func() {
		if _, err := MultiD1Context(context.Background(), 256, 8, 16, 64, netProg(0), MultiOptions{}); err != nil {
			t.Errorf("MultiD1Context: %v", err)
		}
	}

	flushMemo()
	before := calMeasurements.Load()
	run()
	solo := calMeasurements.Load() - before
	if solo == 0 {
		t.Fatal("solo run performed no calibration measurements — test premise broken")
	}

	flushMemo()
	before = calMeasurements.Load()
	const fan = 8
	var wg sync.WaitGroup
	for i := 0; i < fan; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	wg.Wait()
	if got := calMeasurements.Load() - before; got != solo {
		t.Fatalf("%d concurrent identical runs measured %d kernels, want %d (the solo run's count)", fan, got, solo)
	}
}
