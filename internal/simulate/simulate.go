// Package simulate implements the simulation algorithms that constitute
// the contribution of Bilardi & Preparata (SPAA 1995): executing a T-step
// computation of the guest machine Md(n, n, m) on a host Md(n, p, m) with
// fewer processors, under bounded-speed message propagation.
//
// The implemented schemes, from least to most sophisticated:
//
//   - Naive (naive.go): Proposition 1 and its parallel version — the host
//     mimics the guest step by step, paying the full memory-access
//     latency for every simulated node. Slowdown Θ((n/p)^(1+1/d)).
//   - Uniprocessor divide-and-conquer (uni.go): Theorems 2 (d = 1) and 5
//     (d = 2) for m = 1, built directly on the separator executor with
//     real address management. Slowdown Θ(n log n).
//   - Blocked uniprocessor (blocked.go): Theorem 3 for general m —
//     divide-and-conquer down to "executable diamonds" D(m), whole
//     node-memories relocated as blocks. Slowdown Θ(n·min(n, m·Log(n/m))).
//   - Multiprocessor (multi.go): Theorem 4 / Theorem 1 — the memory
//     rearrangement π, Regime 1 relocation, and Regime 2 cooperating-mode
//     execution. Slowdown Θ((n/p)·A(n, m, p)).
//
// Every scheme is functionally exact: its outputs are compared against the
// pure reference execution of the same guest. Costs are charged into
// cost meters at the finest granularity each scheme's data is represented:
// per word and per address for the uniprocessor schemes, per phase
// (calibrated by measured kernels) for the multiprocessor orchestration —
// see DESIGN.md for the fidelity ladder.
package simulate

import (
	"context"
	"fmt"

	"bsmp/internal/cost"
	"bsmp/internal/hram"
	"bsmp/internal/network"
)

// Result reports a simulation run.
type Result struct {
	// Outputs holds the guest's final broadcast values per node.
	Outputs []hram.Word
	// Memories holds the guest's final per-node memories (nil when the
	// scheme does not carry node memories, i.e. pure m = 1 dag runs).
	Memories [][]hram.Word
	// Time is the host's elapsed virtual time.
	Time cost.Time
	// Ledger attributes the host time by category.
	Ledger cost.Ledger
	// Steps is the number of guest steps simulated.
	Steps int
	// Space is the host memory allowance used, when the scheme manages
	// real addresses (separator-based runs); 0 otherwise.
	Space int
}

// Verify checks r's outputs (and memories, when present) against the pure
// reference run of the same guest and returns an error on any mismatch.
func (r Result) Verify(d, n, m int, prog network.Program) error {
	wantB, wantM := network.RunGuestPure(d, n, m, r.Steps, prog)
	if len(r.Outputs) != len(wantB) {
		return fmt.Errorf("simulate: %d outputs, want %d", len(r.Outputs), len(wantB))
	}
	for i := range wantB {
		if r.Outputs[i] != wantB[i] {
			return fmt.Errorf("simulate: output[%d] = %d, want %d", i, r.Outputs[i], wantB[i])
		}
	}
	if r.Memories != nil {
		for v := range wantM {
			for a := range wantM[v] {
				if r.Memories[v][a] != wantM[v][a] {
					return fmt.Errorf("simulate: memory[%d][%d] = %d, want %d",
						v, a, r.Memories[v][a], wantM[v][a])
				}
			}
		}
	}
	return nil
}

// GuestTime measures Tn: the elapsed virtual time of the guest machine
// Md(n, n, m) itself running prog for steps steps — the denominator of
// every slowdown ratio.
func GuestTime(d, n, m, steps int, prog network.Program) cost.Time {
	t, _ := GuestTimeContext(context.Background(), d, n, m, steps, prog)
	return t
}

// GuestTimeContext is GuestTime under a context: the guest run polls
// cancellation once per synchronous step and reports progress to any
// attached Progress. A never-cancelled run measures the same time.
func GuestTimeContext(ctx context.Context, d, n, m, steps int, prog network.Program) (cost.Time, error) {
	ma := network.New(d, n, n, m)
	ec := newExecCtx(ctx)
	_, elapsed, err := network.RunGuestHook(ma, prog, steps, ec.hook())
	if err != nil {
		return 0, err
	}
	return elapsed, nil
}
