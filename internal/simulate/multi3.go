package simulate

import (
	"fmt"
	"math"
	"sync"

	"bsmp/internal/analytic"
	"bsmp/internal/cost"
	"bsmp/internal/guest"
	"bsmp/internal/network"
)

// MultiD3 evaluates the conjectured d = 3 case of Theorem 1: simulating
// M3(n, n, m) on M3(n, p, m). The paper only conjectures this case; with
// the Box6 separator in hand (lattice), the same three mechanisms compose
// in three-dimensional geometry:
//
//   - Regime 1 relocation: per level, total (data × distance) is
//     Θ(V·m/p^(1/3)) with the 3-D rearrangement's distance reduction,
//     i.e. Θ(V·m/p^(4/3)) wall time per level;
//   - Regime 2 execution: Θ(V/σ⁴) span-σ kernels, p at a time, each
//     measured by the real d = 3 blocked executor (BlockedD3);
//   - cooperation: each kernel exchanges its Θ(σ³) face values with
//     neighbors at the host spacing (n/p)^(1/3).
//
// The span σ is cost-minimized over powers of two. Functionally the guest
// advances exactly. This is model-grade in the same sense as MultiD2
// (DESIGN.md fidelity level L2); its value is making the conjectured
// four-range structure of A(3, n, m, p) measurable.
type Multi3Options struct {
	// SpanOverride fixes σ; 0 = cost-minimizing power of two.
	SpanOverride int
	// NoRearrange removes the p^(1/3) distance reduction.
	NoRearrange bool
}

// Multi3Result reports the d = 3 run.
type Multi3Result struct {
	Result
	Span          int
	Regime1Levels int
}

// MultiD3 simulates steps steps of the d = 3 guest; n and p must be
// perfect cubes with p | n.
func MultiD3(n, p, m, steps int, prog network.Program, opts Multi3Options) (Multi3Result, error) {
	if p < 1 || n%p != 0 {
		return Multi3Result{}, fmt.Errorf("simulate: need p | n, got n=%d p=%d", n, p)
	}
	_ = intCbrtExact(n)
	regionSide := int(math.Cbrt(float64(n) / float64(p)))
	if regionSide < 1 {
		regionSide = 1
	}
	var spans []int
	for s := 2; s <= regionSide; s *= 2 {
		spans = append(spans, s)
	}
	if len(spans) == 0 {
		spans = []int{2}
	}
	if opts.SpanOverride > 0 {
		spans = []int{opts.SpanOverride}
	}

	best := math.Inf(1)
	bestSpan := spans[0]
	bestLevels := 0
	var bestBreak [3]float64
	for _, s := range spans {
		total, levels, brk, err := multi3Cost(n, p, m, steps, s, opts.NoRearrange)
		if err != nil {
			return Multi3Result{}, err
		}
		if total < best {
			best, bestSpan, bestLevels, bestBreak = total, s, levels, brk
		}
	}

	bank := cost.NewBank(p)
	for i := 0; i < p; i++ {
		bank.Proc(i).Charge(cost.Transfer, bestBreak[0])
		bank.Proc(i).Charge(cost.Compute, bestBreak[1])
		bank.Proc(i).Charge(cost.Message, bestBreak[2])
	}
	bank.Barrier()

	outs, mems := network.RunGuestPure(3, n, m, steps, prog)
	return Multi3Result{
		Result: Result{
			Outputs:  outs,
			Memories: mems,
			Time:     bank.MaxNow(),
			Ledger:   bank.Ledgers(),
			Steps:    steps,
		},
		Span:          bestSpan,
		Regime1Levels: bestLevels,
	}, nil
}

func multi3Cost(n, p, m, steps, s int, noRearrange bool) (float64, int, [3]float64, error) {
	nf, pf, mf, sf := float64(n), float64(p), float64(m), float64(s)
	vol := nf * float64(steps+1)
	regionSide := math.Cbrt(nf / pf)

	kernel, err := blocked3Kernel(s, m)
	if err != nil {
		return 0, 0, [3]float64{}, err
	}
	perVertex := math.Min(sf, mf*analytic.Log(sf*sf*sf/mf))
	theory := (sf * sf * sf * sf / 3) * perVertex
	kap := kernel / theory
	if kap < 1 {
		kap = 1
	}

	levels := 0
	if sf < regionSide {
		levels = int(math.Round(math.Log2(regionSide / sf)))
	}
	distRed := math.Cbrt(pf)
	if noRearrange {
		distRed = 1
	}
	reloc := float64(levels) * kap * 4 * vol * mf / (distRed * pf)

	numKernelsPerProc := 5 * vol / (sf * sf * sf * sf) / pf
	exec := numKernelsPerProc * kernel
	exchDist := regionSide
	if noRearrange {
		exchDist = math.Cbrt(nf) / 2
	}
	exch := numKernelsPerProc * kap * sf * sf * sf * exchDist

	return reloc + exec + exch, levels, [3]float64{reloc, exec, exch}, nil
}

// blocked3Kernel measures the d = 3 per-domain kernel from a real
// BlockedD3 run of a span-s, s-step cube guest.
//
// As with b2KernelCache, (s, m) suffices as the key: the calibration
// guest is the fixed internal MixCA program, not a caller-supplied one.
// sync.Map because exp.All calibrates concurrently.
var b3KernelCache sync.Map // [2]int -> float64

func blocked3Kernel(s, m int) (float64, error) {
	key := [2]int{s, m}
	if v, ok := b3KernelCache.Load(key); ok {
		return v.(float64), nil
	}
	if s < 2 {
		b3KernelCache.Store(key, 8.0)
		return 8, nil
	}
	cal := s
	if cal > 8 {
		cal = 8 // the machinery constant has converged; scale by volume
	}
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 42}, CubeSide: cal}
	res, err := BlockedD3(cal*cal*cal, m, cal, 0, prog)
	if err != nil {
		return 0, err
	}
	k := float64(res.Time) / 2
	if cal != s {
		k *= math.Pow(float64(s)/float64(cal), 5)
	}
	b3KernelCache.Store(key, k)
	return k, nil
}
