package simulate

import (
	"context"
	"math"

	"bsmp/internal/analytic"
	"bsmp/internal/guest"
	"bsmp/internal/network"
	"bsmp/internal/topology"
)

// multiGeomD3 is the d = 3 geometry spec consumed by the shared
// multiprocessor engine (multi_exec.go): span-σ kernels over the Box6
// separator hold ~σ⁴ dag vertices and exchange ~σ³ face values; the 3-D
// rearrangement buys a p^(1/3) distance reduction.
//
// Kernel calibration: a real BlockedD3 run of a span-σ, σ-step cube
// guest, halved; spans are capped at 8 (the machinery constant has
// converged) and scaled by volume. As with d = 2, the calibration guest
// is the fixed internal MixCA program, so cache entries depend only on
// (σ, m) plus the fixed fingerprint (TestSpanKernelFixedGuest).
var multiGeomD3 = &multiGeom{
	d:           3,
	kernelFloor: 8,
	calSpan: func(s int) int {
		if s > 8 {
			return 8
		}
		return s
	},
	calProg: func(cal int, _ network.Program) network.Program {
		return guest.AsNetwork{G: guest.MixCA{Seed: 42}, CubeSide: cal}
	},
	calRun: func(ctx context.Context, cal, m int, prog network.Program) (Result, error) {
		return BlockedD3Context(ctx, cal*cal*cal, m, cal, 0, prog)
	},
	// Distance geometry via the dimension-matched root (topology.Root
	// keeps the historical math.Cbrt form exactly — NOT math.Pow, which
	// differs in the last ulp); see the multiGeomD2 note.
	scaleExp:      5,
	checkShape:    func(n int) *ParamError { return shapeError("multi", "n", 3, n) },
	regionSideInt: func(n, p int) int { return int(topology.Root(3, float64(n)/float64(p))) },
	regionSide:    func(nf, pf float64) float64 { return topology.Root(3, nf/pf) },
	distRed:       func(pf float64) float64 { return topology.Root(3, pf) },
	rawExchDist:   func(nf float64) float64 { return topology.Root(3, nf) / 2 },
	relocCoeff:    4,
	kernelCoeff:   5,
	kernelVol:     func(sf float64) float64 { return sf * sf * sf * sf },
	faceSize:      func(sf float64) float64 { return sf * sf * sf },
	theoryExec: func(sf, mf float64) float64 {
		return (sf * sf * sf * sf / 3) * math.Min(sf, mf*analytic.Log(sf*sf*sf/mf))
	},
}

// MultiD3 evaluates the conjectured d = 3 case of Theorem 1: simulating
// M3(n, n, m) on M3(n, p, m). The paper only conjectures this case; with
// the Box6 separator in hand (lattice), the same three mechanisms compose
// in three-dimensional geometry:
//
//   - Regime 1 relocation: per level, total (data × distance) is
//     Θ(V·m/p^(1/3)) with the 3-D rearrangement's distance reduction,
//     i.e. Θ(V·m/p^(4/3)) wall time per level;
//   - Regime 2 execution: Θ(V/σ⁴) span-σ kernels, p at a time, each
//     measured by the real d = 3 blocked executor (BlockedD3);
//   - cooperation: each kernel exchanges its Θ(σ³) face values with
//     neighbors at the host spacing (n/p)^(1/3).
//
// The span σ is cost-minimized over powers of two. Functionally the guest
// advances exactly. This is model-grade in the same sense as MultiD2
// (DESIGN.md fidelity level L2); its value is making the conjectured
// four-range structure of A(3, n, m, p) measurable. n and p must be
// perfect cubes with p | n.
func MultiD3(n, p, m, steps int, prog network.Program, opts Multi3Options) (Multi3Result, error) {
	return MultiD3Context(context.Background(), n, p, m, steps, prog, opts)
}

// MultiD3Context is MultiD3 under a context; see MultiD1Context for the
// cancellation and progress contract.
func MultiD3Context(ctx context.Context, n, p, m, steps int, prog network.Program, opts Multi3Options) (Multi3Result, error) {
	return multiSpan(ctx, multiGeomD3, n, p, m, steps, prog, opts)
}
