package simulate

// Randomized end-to-end properties: for arbitrary small geometries every
// simulation scheme must reproduce the reference execution bit-exactly.
// These are the strongest correctness guards in the suite — any
// scheduling, preboundary, staging, or relocation bug surfaces here.

import (
	"testing"
	"testing/quick"

	"bsmp/internal/guest"
)

func TestPropertyUniDCMatchesReferenceD1(t *testing.T) {
	f := func(nRaw, tRaw, leafRaw, seed uint8) bool {
		n := int(nRaw%24) + 2
		steps := int(tRaw%24) + 2
		leaf := int(leafRaw%16) + 1
		prog := guest.MixCA{Seed: uint64(seed)}
		res, err := UniDC(1, n, steps, leaf, prog)
		if err != nil {
			return false
		}
		return VerifyDag(res, 1, n, prog) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUniDCMatchesReferenceD2(t *testing.T) {
	f := func(sideRaw, tRaw, seed uint8) bool {
		side := int(sideRaw%6) + 2
		steps := int(tRaw%8) + 2
		prog := guest.MixCA{Seed: uint64(seed)}
		res, err := UniDC(2, side*side, steps, 8, prog)
		if err != nil {
			return false
		}
		return VerifyDag(res, 2, side*side, prog) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUniDCMatchesReferenceD3(t *testing.T) {
	f := func(sideRaw, tRaw, seed uint8) bool {
		side := int(sideRaw%3) + 2
		steps := int(tRaw%5) + 2
		prog := guest.MixCA{Seed: uint64(seed)}
		res, err := UniDC(3, side*side*side, steps, 8, prog)
		if err != nil {
			return false
		}
		return VerifyDag(res, 3, side*side*side, prog) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBlockedD1MatchesReference(t *testing.T) {
	f := func(nRaw, mRaw, tRaw, leafRaw, seed uint8) bool {
		n := int(nRaw%20) + 2
		m := int(mRaw%8) + 1
		steps := int(tRaw%16) + 1
		leaf := int(leafRaw % 12) // 0 = paper's default
		prog := guest.AsNetwork{G: guest.MixCA{Seed: uint64(seed)}}
		res, err := BlockedD1(n, m, steps, leaf, prog)
		if err != nil {
			return false
		}
		return res.Verify(1, n, m, prog) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBlockedD1RestrictedMatchesReference(t *testing.T) {
	f := func(nRaw, mRaw, mpRaw, tRaw, seed uint8) bool {
		n := int(nRaw%16) + 2
		m := int(mRaw%8) + 1
		mp := int(mpRaw)%m + 1
		steps := int(tRaw%12) + 1
		prog := guest.RestrictMem{P: guest.MixCA{Seed: uint64(seed)}, Words: mp}
		res, err := BlockedD1(n, m, steps, 0, prog)
		if err != nil {
			return false
		}
		return res.Verify(1, n, m, prog) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNaiveMatchesReference(t *testing.T) {
	f := func(nRaw, pRaw, mRaw, tRaw, seed uint8) bool {
		// p must divide n: construct n as p * k.
		p := int(pRaw%4) + 1
		k := int(nRaw%6) + 1
		n := p * k
		m := int(mRaw%4) + 1
		steps := int(tRaw%10) + 1
		prog := guest.AsNetwork{G: guest.MixCA{Seed: uint64(seed)}}
		res, err := Naive(1, n, p, m, steps, prog)
		if err != nil {
			return false
		}
		return res.Verify(1, n, m, prog) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMultiD1MatchesReference(t *testing.T) {
	f := func(pExp, kRaw, mRaw, tRaw, seed uint8) bool {
		p := 1 << (pExp%3 + 1)       // 2, 4, 8
		n := p * (1 << (kRaw%3 + 1)) // p·{2,4,8}
		m := 1 << (mRaw % 4)         // 1..8
		steps := int(tRaw%3)*8 + 8   // 8..24
		prog := guest.AsNetwork{G: guest.MixCA{Seed: uint64(seed)}}
		res, err := MultiD1(n, p, m, steps, prog, MultiOptions{})
		if err != nil {
			return false
		}
		return res.Verify(1, n, m, prog) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: virtual time is deterministic — identical runs produce
// identical measured times (no wall-clock or map-order leakage).
func TestPropertyTimeDeterminism(t *testing.T) {
	f := func(nRaw, tRaw, seed uint8) bool {
		n := int(nRaw%16) + 2
		steps := int(tRaw%12) + 2
		prog := guest.MixCA{Seed: uint64(seed)}
		a, err := UniDC(1, n, steps, 8, prog)
		if err != nil {
			return false
		}
		b, err := UniDC(1, n, steps, 8, prog)
		if err != nil {
			return false
		}
		return a.Time == b.Time && a.Space == b.Space
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
