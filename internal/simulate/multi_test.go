package simulate

import (
	"math"
	"testing"

	"bsmp/internal/analytic"
	"bsmp/internal/perm"
)

func TestMultiD1Functional(t *testing.T) {
	for _, tc := range []struct{ n, p, m, steps int }{
		{32, 4, 1, 16}, {32, 4, 4, 16}, {64, 8, 2, 32}, {16, 1, 2, 8},
	} {
		prog := netProg(0)
		res, err := MultiD1(tc.n, tc.p, tc.m, tc.steps, prog, MultiOptions{})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if err := res.Verify(1, tc.n, tc.m, prog); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if res.Time <= 0 {
			t.Fatalf("%+v: non-positive time", tc)
		}
	}
}

func TestMultiD1StripWidthTracksOptimum(t *testing.T) {
	n, p := 1024, 8
	// Range 1 (m small): s* = n/(m·p); range 4 (m >= n): s* = n/p.
	r, err := MultiD1(n, p, 2, 16, netProg(0), MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := analytic.OptimalS(n, 2, p)
	if f := float64(r.StripWidth) / want; f < 0.4 || f > 2.5 {
		t.Errorf("m=2: strip %d, optimum %v", r.StripWidth, want)
	}
}

func TestMultiD1MoreProcessorsFaster(t *testing.T) {
	prog := netProg(0)
	var prev float64 = math.Inf(1)
	for _, p := range []int{2, 4, 8} {
		res, err := MultiD1(64, p, 2, 32, prog, MultiOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.Time) >= prev {
			t.Errorf("p=%d not faster: %v >= %v", p, res.Time, prev)
		}
		prev = float64(res.Time)
	}
}

func TestMultiD1AblationsHurt(t *testing.T) {
	// Each disabled mechanism must cost measurable time in the range
	// where the paper says it matters (m in range 1-2, so relocation and
	// cooperation are both active).
	n, p, m, steps := 256, 8, 16, 64
	prog := netProg(0)
	full, err := MultiD1(n, p, m, steps, prog, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noRe, err := MultiD1(n, p, m, steps, prog, MultiOptions{NoRearrange: true})
	if err != nil {
		t.Fatal(err)
	}
	noCoop, err := MultiD1(n, p, m, steps, prog, MultiOptions{NoCooperate: true})
	if err != nil {
		t.Fatal(err)
	}
	if !(float64(noRe.Time) > 1.2*float64(full.Time)) {
		t.Errorf("no-rearrange %v not clearly worse than full %v", noRe.Time, full.Time)
	}
	if !(float64(noCoop.Time) > float64(full.Time)) {
		t.Errorf("no-cooperate %v not worse than full %v", noCoop.Time, full.Time)
	}
	// Ablated runs stay functionally correct.
	if err := noRe.Verify(1, n, m, prog); err != nil {
		t.Fatal(err)
	}
	if err := noCoop.Verify(1, n, m, prog); err != nil {
		t.Fatal(err)
	}
}

func TestMultiD1MeasuredATracksTheoremShape(t *testing.T) {
	// The headline: the measured locality slowdown A_meas(m) =
	// (Tp/Tn)/(n/p) follows the SHAPE of Theorem 1's A(n, m, p) across
	// ranges 2-4. Constants are machinery-dependent (the paper's τ0/σ0
	// are equally large), so both curves are normalized at a reference m
	// in the image-dominated regime (m >= 16 at this scale; below that
	// the Θ(r)-per-diamond broadcast traffic — lower-order in the
	// paper's analysis — adds a floor, see blocked_test.go and
	// EXPERIMENTS.md) and compared as ratios.
	n, p, steps := 256, 8, 64
	prog := netProg(0)
	ms := []int{16, 64, 256, 1024}
	ref := 64
	var ameasRef, aboundRef float64
	ameas := make(map[int]float64)
	for _, m := range ms {
		res, err := MultiD1(n, p, m, steps, prog, MultiOptions{})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		tn := GuestTime(1, n, m, steps, prog)
		ameas[m] = float64(res.Time) / float64(tn) / (float64(n) / float64(p))
		if m == ref {
			ameasRef = ameas[m]
			aboundRef = analytic.A(1, n, m, p)
		}
	}
	for _, m := range ms {
		normMeas := ameas[m] / ameasRef
		normBound := analytic.A(1, n, m, p) / aboundRef
		r := normMeas / normBound
		if r < 1.0/8 || r > 8 {
			t.Errorf("m=%d: normalized A_meas %v vs bound %v (ratio %v) outside 8x band",
				m, normMeas, normBound, r)
		}
	}
	// Monotone saturation: A grows with m and ends at the naive plateau.
	if !(ameas[1024] > ameas[16]) {
		t.Errorf("A_meas not growing: %v", ameas)
	}
}

func TestMultiD1CyclesAmortizePrep(t *testing.T) {
	// The rearrangement is a one-time cost: per-step slowdown including
	// prep must decrease monotonically with the cycle count and converge
	// toward the steady-state per-cycle slowdown.
	n, p, m := 64, 4, 4
	prog := netProg(0)
	steady, err := MultiD1(n, p, m, n, prog, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	perStepSteady := float64(steady.Time) / float64(n)
	var prev float64 = math.Inf(1)
	for _, cycles := range []int{1, 4, 16} {
		res, err := MultiD1Cycles(n, p, m, cycles, prog, MultiOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Verify(1, n, m, prog); err != nil {
			t.Fatalf("cycles=%d: %v", cycles, err)
		}
		perStep := float64(res.Time) / float64(res.Steps)
		if perStep >= prev {
			t.Errorf("cycles=%d: per-step cost %v not decreasing (prev %v)", cycles, perStep, prev)
		}
		if perStep < perStepSteady {
			t.Errorf("cycles=%d: per-step cost %v below steady state %v", cycles, perStep, perStepSteady)
		}
		prev = perStep
	}
	// With many cycles, within 10% of steady state.
	res, err := MultiD1Cycles(n, p, m, 64, prog, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(res.Time) / float64(res.Steps); got > 1.1*perStepSteady {
		t.Errorf("64 cycles per-step %v, steady %v — prep not amortized", got, perStepSteady)
	}
}

func TestMultiD1CyclesValidation(t *testing.T) {
	if _, err := MultiD1Cycles(32, 4, 1, 0, netProg(0), MultiOptions{}); err == nil {
		t.Fatal("cycles=0 did not error")
	}
}

func TestMultiD1StripOverrideValidation(t *testing.T) {
	if _, err := MultiD1(32, 4, 1, 8, netProg(0), MultiOptions{StripWidth: 3}); err == nil {
		t.Fatal("non-dividing strip width did not error")
	}
	if _, err := MultiD1(33, 4, 1, 8, netProg(0), MultiOptions{}); err == nil {
		t.Fatal("p not dividing n did not error")
	}
}

// roundToPow2Divisor moved to analytic.RoundToPow2Divisor with direct
// unit tests there; TestMultiD1StripWidthTracksOptimum above covers the
// quantized strip selection end to end.

func TestMultiD1RelocationDistanceDerivedFromPerm(t *testing.T) {
	// The planner's Regime 1/exchange distance is certified by the
	// rearrangement permutation itself: for the strip width the planner
	// picks, π = π2·π1 leaves originally adjacent strips at most q/p
	// apart, so the charged guest distance is exactly n/p.
	for _, tc := range []struct{ n, p, m int }{
		{64, 4, 16}, {64, 4, 4}, {256, 8, 16}, {1024, 8, 2}, {1024, 16, 256},
	} {
		s := analytic.RoundToPow2Divisor(analytic.OptimalS(tc.n, tc.m, tc.p), tc.n/tc.p)
		q := tc.n / s
		pi := perm.New(q, tc.p)
		hop := pi.MaxAdjacentDisplacement()
		if want := q / tc.p; hop != want {
			t.Errorf("%+v: max adjacent displacement %d, want q/p = %d", tc, hop, want)
		}
		if hop*s != tc.n/tc.p {
			t.Errorf("%+v: certified distance %d, want n/p = %d", tc, hop*s, tc.n/tc.p)
		}
	}
}

func TestMultiD1CyclesPrepShareVanishes(t *testing.T) {
	// Section 4.2: the rearrangement "gives a contribution to the
	// slowdown that vanishes as the number of simulated steps increases".
	// PrepTime is constant while Time grows linearly in cycles, so the
	// prep share must fall strictly and end up negligible.
	n, p, m := 64, 4, 4
	prog := netProg(0)
	prevShare := 2.0
	for _, cycles := range []int{1, 4, 16, 64} {
		res, err := MultiD1Cycles(n, p, m, cycles, prog, MultiOptions{})
		if err != nil {
			t.Fatal(err)
		}
		share := float64(res.PrepTime) / float64(res.Time)
		if share >= prevShare {
			t.Errorf("cycles=%d: prep share %v not decreasing (prev %v)", cycles, share, prevShare)
		}
		prevShare = share
	}
	if prevShare > 0.05 {
		t.Errorf("prep share %v at 64 cycles, want < 5%%", prevShare)
	}
}
