package simulate

import (
	"context"
	"testing"

	"bsmp/internal/guest"
)

func BenchmarkBlockedD1Small(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := BlockedD1(64, 4, 32, 0, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveD1Small(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := Naive(1, 64, 4, 2, 16, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoopBlock(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := CoopBlock(256, 8, 4, 8, 16, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiD1(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := MultiD1(256, 8, 16, 64, prog, MultiOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiD2(b *testing.B) {
	prog := netProg(16)
	for i := 0; i < b.N; i++ {
		if _, err := MultiD2(256, 4, 8, 8, prog, Multi2Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiD3(b *testing.B) {
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 9}, CubeSide: 8}
	for i := 0; i < b.N; i++ {
		if _, err := MultiD3(512, 8, 4, 8, prog, Multi3Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// The *Memo/*NoMemo pairs measure the subtree-memo fast path against
// the same engine with memoization disabled (WithoutMemo context). The
// sizes are repeated-subtree heavy — steps large relative to m — so the
// recursion revisits congruent diamonds and the memo-on side amortizes
// to replay cost after the first iteration populates the store.

func BenchmarkBlockedD1Memo(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := BlockedD1Context(context.Background(), 256, 4, 128, 0, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockedD1NoMemo(b *testing.B) {
	prog := netProg(0)
	ctx := WithoutMemo(context.Background())
	for i := 0; i < b.N; i++ {
		if _, err := BlockedD1Context(ctx, 256, 4, 128, 0, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiD1Memo(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := MultiD1Context(context.Background(), 256, 8, 16, 64, prog, MultiOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiD1NoMemo(b *testing.B) {
	prog := netProg(0)
	ctx := WithoutMemo(context.Background())
	for i := 0; i < b.N; i++ {
		if _, err := MultiD1Context(ctx, 256, 8, 16, 64, prog, MultiOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticD1 runs the analytic replay engine at the exact same
// size as the BlockedD1Memo/NoMemo pair: same recursion, same model
// charges (Time matches the exact engine to 1e-9 relative), but no
// guest outputs — subtree hits replay as O(1) ledger deltas instead of
// charge-trace playback.
func BenchmarkAnalyticD1(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := AnalyticBlockedD1Context(context.Background(), 256, 4, 128, 0, prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticD1Huge runs a size far beyond what the exact engines
// can simulate (n=2^16, steps=2^8: ~16.8M lattice vertices) through the
// analytic replay path.
func BenchmarkAnalyticD1Huge(b *testing.B) {
	defer SetMemoCapacity(MemoCapacity())
	SetMemoCapacity(1 << 16)
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := AnalyticBlockedD1Context(context.Background(), 1<<16, 8, 1<<8, 0, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSchemeMultiD1(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := RunScheme("multi", 1, 256, 8, 16, 64, prog, SchemeConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
