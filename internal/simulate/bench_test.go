package simulate

import (
	"testing"

	"bsmp/internal/guest"
)

func BenchmarkBlockedD1Small(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := BlockedD1(64, 4, 32, 0, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveD1Small(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := Naive(1, 64, 4, 2, 16, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoopBlock(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := CoopBlock(256, 8, 4, 8, 16, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiD1(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := MultiD1(256, 8, 16, 64, prog, MultiOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiD2(b *testing.B) {
	prog := netProg(16)
	for i := 0; i < b.N; i++ {
		if _, err := MultiD2(256, 4, 8, 8, prog, Multi2Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiD3(b *testing.B) {
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 9}, CubeSide: 8}
	for i := 0; i < b.N; i++ {
		if _, err := MultiD3(512, 8, 4, 8, prog, Multi3Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSchemeMultiD1(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := RunScheme("multi", 1, 256, 8, 16, 64, prog, SchemeConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
