package simulate

import "testing"

func BenchmarkBlockedD1Small(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := BlockedD1(64, 4, 32, 0, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveD1Small(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := Naive(1, 64, 4, 2, 16, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoopBlock(b *testing.B) {
	prog := netProg(0)
	for i := 0; i < b.N; i++ {
		if _, err := CoopBlock(256, 8, 4, 8, 16, prog); err != nil {
			b.Fatal(err)
		}
	}
}
