package simulate

import (
	"math"
	"testing"

	"bsmp/internal/guest"
)

// These tests exercise the d = 3 extension: the paper's concluding
// conjecture that Theorem 1 extends to three-dimensional machines via a
// four-dimensional topological separator, which internal/lattice.Box6
// provides.

func TestUniDCFunctionalD3(t *testing.T) {
	prog := guest.MixCA{Seed: 7}
	for _, side := range []int{2, 3, 4} {
		n := side * side * side
		res, err := UniDC(3, n, side, 8, prog)
		if err != nil {
			t.Fatalf("side=%d: %v", side, err)
		}
		if err := VerifyDag(res, 3, n, prog); err != nil {
			t.Fatalf("side=%d: %v", side, err)
		}
	}
}

func TestUniNaiveDagFunctionalD3(t *testing.T) {
	prog := guest.MixCA{Seed: 8}
	res, err := UniNaiveDag(3, 27, 3, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDag(res, 3, 27, prog); err != nil {
		t.Fatal(err)
	}
}

func TestD3GuestTimeMatchesDagView(t *testing.T) {
	// Guest-time measurement works for d = 3, and the network view of
	// Rule90 matches the dag view on the cube (order-insensitive rule).
	side := 3
	n := side * side * side
	r := guest.Rule90{Seed: 5}
	tn := GuestTime(3, n, 1, side, guest.AsNetwork{G: r, CubeSide: side})
	if tn <= 0 {
		t.Fatal("non-positive d=3 guest time")
	}
	res, err := UniDC(3, n, side+1, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDag(res, 3, n, r); err != nil {
		t.Fatal(err)
	}
}

func TestD3SeparatorBeatsNaiveExponent(t *testing.T) {
	// The conjecture, measured: on the d = 3 dag (k = n^(4/3) vertices
	// for T = side), the separator executor's time grows like k·log k
	// (exponent ~4/3 in n = side³ plus log drift) while the naive order
	// pays f(n·m) = n^(1/3) per access on top: k·n^(1/3) = n^(5/3).
	prog := guest.Rule90{Seed: 3}
	var logN, nv, nvOverDC, dcNorm []float64
	for _, side := range []int{4, 8, 14} {
		n := side * side * side
		r, err := UniDC(3, n, side, 8, prog)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := UniNaiveDag(3, n, side, prog)
		if err != nil {
			t.Fatal(err)
		}
		k := float64(n) * float64(side)
		logN = append(logN, math.Log2(float64(n)))
		nv = append(nv, math.Log2(float64(rn.Time)))
		nvOverDC = append(nvOverDC, float64(rn.Time)/float64(r.Time))
		dcNorm = append(dcNorm, float64(r.Time)/(k*math.Log2(k)))
	}
	nvSlope := fitSlope(logN, nv)
	if nvSlope < 1.5 || nvSlope > 2.0 {
		t.Errorf("naive d=3 exponent %v, want ~5/3", nvSlope)
	}
	// At these sizes both schemes carry transients; the verifiable
	// conjecture signals are (a) naive/separator improves toward the
	// separator as n grows and (b) separator time normalized by the
	// conjectured k·log k bound stays within a narrow band.
	if nvOverDC[len(nvOverDC)-1] <= nvOverDC[0] {
		t.Errorf("naive/separator ratio not improving: %v", nvOverDC)
	}
	if band := dcNorm[len(dcNorm)-1] / dcNorm[0]; band > 3 {
		t.Errorf("separator τ/(k·log k) band %vx — inconsistent with k·log k: %v", band, dcNorm)
	}
}

func TestD3SpaceScalesAsThreeQuarters(t *testing.T) {
	// σ(k) = O(k^(3/4)) for the γ = 3/4 separator: machine space stays
	// near the guest's own n·m = side³ words.
	prog := guest.Rule90{Seed: 3}
	res4, err := UniDC(3, 64, 4, 8, prog)
	if err != nil {
		t.Fatal(err)
	}
	res8, err := UniDC(3, 512, 8, 8, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Dag grows 16x (side⁴); k^(3/4) predicts space ratio ~8.
	ratio := float64(res8.Space) / float64(res4.Space)
	if ratio > 16 {
		t.Errorf("space ratio %v for 16x dag growth, want ~8 (k^(3/4))", ratio)
	}
}
