package simulate

import (
	"bsmp/internal/lattice"
	"bsmp/internal/network"
)

// This file defines the congruence key of the subtree memo: two recursion
// subtrees are congruent — and may share one memoized record — when their
// domains are identical up to a lattice translation, their clip boxes agree
// near the domain, and the guest program's address pattern matches at
// corresponding points. The key is O(1) to build, so a memo hit costs
// nothing proportional to the subtree.

// addrClasser is the optional interface a guest program implements to
// declare its Address pattern classifiable: AddrClass(n1,s1,m) ==
// AddrClass(n2,s2,m) must imply Address(n1+dn, s1+ds, m) ==
// Address(n2+dn, s2+ds, m) for every uniform translation (dn, ds). A
// program that cannot promise this returns ok = false (or simply does not
// implement the interface) and subtree memoization stays off for it —
// memoization is opt-in per guest, never assumed.
type addrClasser interface {
	AddrClass(node, step, memSize int) (uint64, bool)
}

// progClass classifies prog's address pattern at the reference site
// (node, step), or reports ok = false when prog is unclassifiable.
func progClass(prog network.Program, node, step, m int) (uint64, bool) {
	ac, ok := prog.(addrClasser)
	if !ok {
		return 0, false
	}
	return ac.AddrClass(node, step, m)
}

// subtreeKey identifies a congruence class of recursion subtrees. All
// fields are comparable; shape holds the canonical translated Domain value
// (a Diamond, Box4 or Box6 struct).
type subtreeKey struct {
	d         int  // mesh dimension
	m         int  // words per guest node
	iw        int  // image words per column
	leafSpan  int  // recursion cutoff — fixes the subtree's inner shape
	pipelined bool // hram block-transfer pricing mode
	side      int  // node-index stride of the mesh (0 for the d = 1 line)
	shape     lattice.Domain
	class     uint64 // address class at the canonical reference point
	prog      string // guest program fingerprint
}

// mod2 is the non-negative parity of v.
func mod2(v int) int { return (v%2 + 2) % 2 }

// inflateClip grows the box by k in every direction.
func inflateClip(c lattice.Clip, k int) lattice.Clip {
	return lattice.Clip{
		X0: c.X0 - k, X1: c.X1 + k,
		Y0: c.Y0 - k, Y1: c.Y1 + k,
		Z0: c.Z0 - k, Z1: c.Z1 + k,
		T0: c.T0 - k, T1: c.T1 + k,
	}
}

// shiftClip translates the box by (dx, dy, dz, dt).
func shiftClip(c lattice.Clip, dx, dy, dz, dt int) lattice.Clip {
	return lattice.Clip{
		X0: c.X0 + dx, X1: c.X1 + dx,
		Y0: c.Y0 + dy, Y1: c.Y1 + dy,
		Z0: c.Z0 + dz, Z1: c.Z1 + dz,
		T0: c.T0 + dt, T1: c.T1 + dt,
	}
}

// canonicalDomain translates dom so its low rotated corners sit at the
// canonical position (primary coordinates at 0, partners at 0 or 1 to
// preserve lattice parity) and clamps its clip to the domain's bounding
// box inflated by 2 — wide enough that every computation the engines
// derive from the clip (point membership, preboundary preds one step
// outside the domain, live-out successor tests, the machine-boundary
// relation when the clip equals the graph bounds) is unchanged, and
// narrow enough that congruent translated domains canonicalize to the
// same comparable value. The clamp runs BEFORE the translation so
// effectively-unbounded clip edges never overflow when shifted.
//
// The second result is false for domain families the memo does not
// canonicalize.
func canonicalDomain(dom lattice.Domain) (lattice.Domain, bool) {
	switch d := dom.(type) {
	case lattice.Diamond:
		clip := d.Clip.Intersect(inflateClip(lattice.BoundingClip(d), 2))
		w0 := mod2(d.U0 + d.W0) // du + dw must be even for an integer (dx, dt)
		du, dw := -d.U0, w0-d.W0
		dt, dx := (du+dw)/2, (du-dw)/2
		d.U0, d.W0 = 0, w0
		d.Clip = shiftClip(clip, dx, 0, 0, dt)
		return d, true
	case lattice.Box4:
		clip := d.Clip.Intersect(inflateClip(lattice.BoundingClip(d), 2))
		b0 := mod2(d.A0 + d.B0)
		da, db := -d.A0, b0-d.B0
		dt, dx := (da+db)/2, (da-db)/2
		dy := -d.E0 - dt // de = dt + dy = -E0, so E0' = 0
		d.A0, d.B0 = 0, b0
		d.F0 = d.F0 + 2*dt + d.E0 // df = dt - dy = 2dt + E0
		d.E0 = 0
		d.Clip = shiftClip(clip, dx, dy, 0, dt)
		return d, true
	case lattice.Box6:
		clip := d.Clip.Intersect(inflateClip(lattice.BoundingClip(d), 2))
		b0 := mod2(d.A0 + d.B0)
		da, db := -d.A0, b0-d.B0
		dt, dx := (da+db)/2, (da-db)/2
		dy := -d.E0 - dt
		dz := -d.G0 - dt
		d.A0, d.B0 = 0, b0
		d.F0 = d.F0 + 2*dt + d.E0
		d.E0 = 0
		d.H0 = d.H0 + 2*dt + d.G0
		d.G0 = 0
		d.Clip = shiftClip(clip, dx, dy, dz, dt)
		return d, true
	}
	return nil, false
}

// refPoint is the canonical reference vertex of a domain — its first
// enumerated point. Congruent domains have reference points at
// corresponding translated positions.
func refPoint(dom lattice.Domain) (lattice.Point, bool) {
	var ref lattice.Point
	found := false
	dom.Points(func(p lattice.Point) bool {
		ref, found = p, true
		return false
	})
	return ref, found
}
