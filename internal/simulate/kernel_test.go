package simulate

import (
	"context"
	"testing"

	"bsmp/internal/guest"
)

// TestDiamondKernelProgramDependence pins the reason kernelCache is keyed
// by (s, m, program fingerprint) rather than (s, m): the measured diamond
// kernel depends on the guest program. A MemUser guest with m' < m
// relocates smaller images and touches cheaper cells, so its kernel must
// be strictly cheaper — and a second lookup with the other program must
// not be served from the first program's cache entry.
func TestDiamondKernelProgramDependence(t *testing.T) {
	s, m := 16, 32
	base := guest.MixCA{Seed: 13}
	narrow := guest.RestrictMem{P: base, Words: 2}
	wide := guest.RestrictMem{P: base, Words: 32}

	kNarrow, err := diamondKernel(context.Background(), s, m, narrow)
	if err != nil {
		t.Fatal(err)
	}
	kWide, err := diamondKernel(context.Background(), s, m, wide)
	if err != nil {
		t.Fatal(err)
	}
	if kNarrow >= kWide {
		t.Fatalf("kernel(m'=2) = %v not below kernel(m'=32) = %v: program not reflected", kNarrow, kWide)
	}
	// Re-query both orders: cached values must stay program-correct.
	kNarrow2, err := diamondKernel(context.Background(), s, m, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if kNarrow2 != kNarrow {
		t.Fatalf("cache returned %v for narrow program, measured %v", kNarrow2, kNarrow)
	}
	if progFingerprint(narrow) == progFingerprint(wide) {
		t.Fatal("distinct programs share a fingerprint")
	}
}
