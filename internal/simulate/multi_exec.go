package simulate

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"bsmp/internal/cost"
	"bsmp/internal/network"
	"bsmp/internal/obs"
)

// This file is the multiprocessor orchestration engine shared by MultiD1,
// MultiD2 and MultiD3, mirroring what blocked_exec.go does for the
// uniprocessor executors: the per-dimension files supply a geometry spec
// (multiGeom) and the engine owns kernel calibration + memoization, the
// span-minimizing phase-cost model for d >= 2, and the charging of the
// chosen schedule into a cost.Bank with per-phase attribution marks.
//
// Virtual-time contract: golden_test.go pins every multiprocessor Time
// bit-identical to the historical per-dimension orchestrators. Float
// addition and multiplication are not associative, so the engine
// preserves two properties of the original code exactly:
//
//   - every per-processor charge sequence (values and order) is
//     unchanged — playSchedule charges phase-major, but each processor
//     still sees the same charges in the same order, so each clock sums
//     the same floats in the same order;
//   - every cost formula keeps its original operand grouping — the spec
//     carries closures (regionSide, kernelVol, faceSize, theoryExec)
//     whose bodies are the verbatim per-dimension expressions, and
//     multiSpanCost combines them in the historical factor order. Span
//     candidates are powers of two, for which the s^k regroupings are
//     exact in IEEE arithmetic.
//
// Phase attribution (cost.Bank.Mark) is pure snapshot bookkeeping and
// never touches a clock or ledger, so it cannot perturb times.

// multiGeom is the per-dimension surface of the multiprocessor engine.
// The d = 1 scheme keeps its own Theorem 4 planner (strip selection, the
// π rearrangement and per-domain stage loop in multi.go) but draws its
// kernel, κ normalization and face size from the same spec; the d = 2 and
// d = 3 schemes run entirely through multiSpan below. Fields not used by
// the d = 1 planner are nil there.
type multiGeom struct {
	// d is the mesh dimension.
	d int

	// --- kernel calibration (shared cache, satellite: one fingerprinted key) ---

	// kernelFloor is the measured-kernel stand-in for degenerate spans
	// s < 2 (one vertex per step, executed in place).
	kernelFloor float64
	// calSpan caps the span actually measured; larger spans reuse the
	// capped measurement scaled by scaleExp (the machinery constant has
	// converged by the cap).
	calSpan func(s int) int
	// calProg selects the calibration guest. d = 1 measures the caller's
	// program (per-program kernels — MemUser guests relocate smaller
	// images); d = 2/3 use a fixed internal MixCA guest, so their cache
	// entries are caller-independent by construction. Either way the
	// calibration program's fingerprint is part of the cache key, which
	// makes the d = 2/3 fixed-guest assumption explicit rather than
	// silent (TestSpanKernelFixedGuest).
	calProg func(cal int, prog network.Program) network.Program
	// calRun invokes the dimension's blocked executor on a span-cal,
	// cal-step guest; the kernel is half the measured time (the
	// calibration volume holds about two domains' worth of vertices).
	// The context threads cancellation into the blocked recursion, so a
	// long calibration run is preemptible like any other simulation.
	calRun func(ctx context.Context, cal, m int, prog network.Program) (Result, error)
	// scaleExp is the volume/span scaling exponent applied when
	// calSpan(s) < s: dag volume s^(d+1) times the ~linear per-vertex
	// span growth.
	scaleExp float64

	// --- cost geometry (Theorem 1's d-generic shape) ---

	// checkShape validates the mesh side (perfect square/cube),
	// returning a typed ParamError on a bad shape; nil = no constraint
	// (d = 1).
	checkShape func(n int) *ParamError
	// regionSideInt is the per-processor region side (n/p)^(1/d) as the
	// span search bound.
	regionSideInt func(n, p int) int
	// regionSide is (n/p)^(1/d) in the cost formulas — also the
	// rearranged exchange distance.
	regionSide func(nf, pf float64) float64
	// distRed is the rearrangement's distance-reduction factor p^(1/d).
	distRed func(pf float64) float64
	// rawExchDist is the exchange distance without rearrangement,
	// n^(1/d)/2.
	rawExchDist func(nf float64) float64
	// relocCoeff is the per-level Regime 1 constant (the d+1 separator
	// faces crossed per relocated word).
	relocCoeff float64
	// kernelCoeff scales the kernel count: kernelCoeff·V/kernelVol(s)
	// span-s kernels tile the volume-V dag.
	kernelCoeff float64
	// kernelVol is the dag volume of one span-s kernel, s^(d+1).
	kernelVol func(sf float64) float64
	// faceSize is the per-kernel face-exchange word count, s^d.
	faceSize func(sf float64) float64
	// theoryExec is the closed-form kernel execution estimate
	// (s^(d+1)/d)·min(s, m·Log(s^d/m)) normalizing the measured kernel
	// into κ.
	theoryExec func(sf, mf float64) float64
}

// kernelKey identifies a measured execution kernel in the unified cache:
// dimension, span, memory density, and the fingerprint of the calibration
// program that was (or would be) measured. The d = 1 scheme calibrates on
// the caller's program, so its entries vary per guest
// (TestDiamondKernelProgramDependence); the d = 2/3 schemes calibrate on
// a fixed internal guest, so their entries are shared across callers.
type kernelKey struct {
	d, s, m int
	prog    string
}

// Measured kernels are memoized in the unified memo store (memo.go)
// under memoKernel keys. Long-lived daemons see an unbounded stream of
// (d, s, m, program) tuples — the d = 1 scheme keys on the caller's
// program — so the store bounds its entries (SetMemoCapacity). Kernels
// are deterministic re-measurements of small calibration guests:
// evicting one costs only recalibration time and can never change a
// result, so the store's FIFO eviction suffices.

// kernelLoad and kernelStore adapt the unified store to float64 kernels.
func kernelLoad(k kernelKey) (float64, bool) {
	v, ok := memo.load(memoKernel, memoLevel(k.s), k)
	if !ok {
		return 0, false
	}
	return v.(float64), true
}

func kernelStore(k kernelKey, v float64) {
	memo.store(memoKernel, memoLevel(k.s), k, v)
}

// progFingerprint renders a program's identity for kernel-cache keying.
// Programs here are small comparable config structs (guest.AsNetwork
// values and the like), so %T plus the printed field values identify the
// cost-relevant behavior.
func progFingerprint(prog network.Program) string {
	return fmt.Sprintf("%T:%+v", prog, prog)
}

// calFlight coalesces concurrent measurements of the same kernel key.
// A server-side sweep fans a parameter grid across the worker pool; on a
// cold cache every grid point sharing a (d, span, m, program) tuple
// would otherwise launch its own identical calibration run. One leader
// measures; concurrent duplicates wait for the stored value.
var calFlight = struct {
	mu sync.Mutex
	m  map[kernelKey]chan struct{}
}{m: make(map[kernelKey]chan struct{})}

// calMeasurements counts actual calibration executions process-wide —
// the observable the coalescing test pins (concurrent identical runs
// must not multiply it).
var calMeasurements atomic.Int64

// kernel measures (or recalls) the per-domain execution kernel for span s
// and density m: a real blocked-executor run of the dimension's span-cal,
// cal-step calibration guest, halved, and volume-scaled when cal < s.
// Concurrent requests for the same key coalesce onto one measurement.
func (g *multiGeom) kernel(ctx context.Context, s, m int, prog network.Program) (float64, error) {
	cal := g.calSpan(s)
	calProg := g.calProg(cal, prog)
	key := kernelKey{g.d, s, m, progFingerprint(calProg)}
	for {
		if v, ok := kernelLoad(key); ok {
			return v, nil
		}
		calFlight.mu.Lock()
		if ch, ok := calFlight.m[key]; ok {
			// Another goroutine is measuring this key: wait for it, then
			// re-check the cache. A leader that failed (cancellation)
			// stores nothing, and the retry elects a new leader under
			// this goroutine's own context.
			calFlight.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		ch := make(chan struct{})
		calFlight.m[key] = ch
		calFlight.mu.Unlock()
		v, err := g.measureKernel(ctx, key, cal, s, m, calProg)
		calFlight.mu.Lock()
		delete(calFlight.m, key)
		calFlight.mu.Unlock()
		close(ch)
		return v, err
	}
}

// measureKernel performs the actual calibration run for kernel() — the
// leader's half of the coalescing protocol.
func (g *multiGeom) measureKernel(ctx context.Context, key kernelKey, cal, s, m int, calProg network.Program) (float64, error) {
	if s < 2 {
		kernelStore(key, g.kernelFloor)
		return g.kernelFloor, nil
	}
	calMeasurements.Add(1)
	// Trace the actual measurement (cache hits return above without a
	// span): calibration runs dominate a cold run's wall time, and the
	// blocked executor the calibration drives nests its own "block"
	// spans underneath.
	sp := obs.FromContext(ctx).Start("calibrate")
	res, err := g.calRun(ctx, cal, m, calProg)
	if err != nil {
		sp.End()
		return 0, err
	}
	k := float64(res.Time) / 2
	if cal != s {
		k *= math.Pow(float64(s)/float64(cal), g.scaleExp)
	}
	if sp != nil {
		sp.SetAttr("d", float64(g.d))
		sp.SetAttr("span", float64(s))
		sp.SetAttr("m", float64(m))
		sp.SetAttr("kernel", k)
		sp.End()
	}
	kernelStore(key, k)
	return k, nil
}

// multiSchedule is the evaluated orchestration of one multiprocessor run:
// the identical per-processor charge quantities of each phase of the
// Theorem 4 / Theorem 1 schedule. The d = 1 planner emits per-level and
// per-domain charges with a barrier after every domain; the d >= 2 span
// model emits one aggregated charge per phase.
type multiSchedule struct {
	// prep is the one-time rearrangement Transfer charge per processor;
	// hasPrep gates the phase (and its barrier) entirely.
	prep    float64
	hasPrep bool
	// regime1 holds the Regime 1 relocation Transfer charges per
	// processor, one element per charge (d = 1: one per level).
	regime1 []float64
	// domains is the number of Regime 2 rounds; per round every
	// processor charges exec under Compute and exch under exchCat.
	domains int
	exec    float64
	exch    float64
	exchCat cost.Category
	// roundBarrier synchronizes after every Regime 2 round (the d = 1
	// domains are sequential); otherwise one final barrier closes the
	// run.
	roundBarrier bool
}

// playSchedule charges sch into a fresh p-processor bank with phase marks
// and returns the bank and the preprocessing finish time (0 without
// prep). Charges are phase-major but per-processor order matches the
// historical orchestrators exactly (see the contract note above).
//
// When tr is non-nil, every schedule segment is additionally wrapped in
// a "phase:<name>" span under one "schedule" parent, annotated with the
// makespan advance ("vtime") and the per-category ledger deltas the
// segment produced. Spans mirror the Mark calls one-for-one, so the
// phase-span vtime deltas telescope to the final makespan
// (= Time + PrepTime) exactly like the PhaseBreakdown. Tracing reads
// bank snapshots and never charges anything, so the charge sequence —
// and with it every golden virtual time — is identical with tr nil or
// attached.
func playSchedule(tr *obs.Tracer, p int, sch multiSchedule) (*cost.Bank, cost.Time) {
	bank := cost.NewBank(p)
	sched := tr.Start("schedule")
	// phase runs one schedule segment under a span; with no tracer it
	// is a plain call.
	phase := func(name string, f func()) {
		sp := tr.Start("phase:" + name)
		if sp == nil {
			f()
			return
		}
		at0 := bank.MaxNow()
		l0 := bank.Ledgers()
		f()
		sp.SetAttr("vtime", bank.MaxNow()-at0)
		l1 := bank.Ledgers()
		delta := l1.Sub(&l0)
		for _, c := range cost.Categories() {
			if t := delta.Total(c); t != 0 {
				sp.SetAttr(c.String(), t)
			}
		}
		sp.End()
	}

	bank.Mark(cost.PhaseRearrange)
	var prep cost.Time
	phase(cost.PhaseRearrange, func() {
		if sch.hasPrep {
			for i := 0; i < p; i++ {
				bank.Proc(i).Charge(cost.Transfer, sch.prep)
			}
			prep = bank.Barrier()
		}
	})
	bank.Mark(cost.PhaseRegime1)
	phase(cost.PhaseRegime1, func() {
		for _, c := range sch.regime1 {
			for i := 0; i < p; i++ {
				bank.Proc(i).Charge(cost.Transfer, c)
			}
		}
	})
	for r := 0; r < sch.domains; r++ {
		bank.Mark(cost.PhaseRegime2Exec)
		phase(cost.PhaseRegime2Exec, func() {
			for i := 0; i < p; i++ {
				bank.Proc(i).Charge(cost.Compute, sch.exec)
			}
		})
		bank.Mark(cost.PhaseRegime2Exchange)
		phase(cost.PhaseRegime2Exchange, func() {
			for i := 0; i < p; i++ {
				bank.Proc(i).Charge(sch.exchCat, sch.exch)
			}
			if sch.roundBarrier {
				// The round barrier's stalls are attributed to the
				// exchange phase, matching the Mark bookkeeping.
				bank.Barrier()
			}
		})
	}
	if !sch.roundBarrier {
		bank.Barrier()
	}
	if sched != nil {
		sched.SetAttr("vtime", bank.MaxNow())
		sched.SetAttr("domains", float64(sch.domains))
		sched.End()
	}
	return bank, prep
}

// multiSpanCost evaluates the d >= 2 phase model for span s, returning
// the total per-processor time, the Regime 1 level count, and the
// (relocation, execution, exchange) breakdown. The formulas are the
// d-generic Theorem 1 shape; see the per-dimension doc comments for their
// derivations. The options' fault stretch factors multiply the
// distance-proportional (detour) and image-traversal (packing) terms;
// fault-free both are exactly 1.0 and the products are bit-identical to
// the unstretched formulas (see MultiOptions.faultMuls).
func multiSpanCost(ctx context.Context, g *multiGeom, n, p, m, steps, s int, opts MultiOptions) (float64, int, [3]float64, error) {
	noRearrange := opts.NoRearrange
	distMul, memMul := opts.faultMuls()
	nf, pf, mf, sf := float64(n), float64(p), float64(m), float64(s)
	vol := nf * float64(steps+1)
	regionSide := g.regionSide(nf, pf)

	kernel, err := g.kernel(ctx, s, m, nil)
	if err != nil {
		return 0, 0, [3]float64{}, err
	}
	// κ keeps the relocation/exchange phases commensurate with the
	// measured kernel's machinery constant (same rationale as MultiD1).
	theory := g.theoryExec(sf, mf)
	kap := kernel / theory
	if kap < 1 {
		kap = 1
	}

	levels := 0
	if sf < regionSide {
		levels = int(math.Round(math.Log2(regionSide / sf)))
	}
	distRed := g.distRed(pf)
	if noRearrange {
		distRed = 1
	}
	reloc := float64(levels) * kap * g.relocCoeff * vol * (mf * memMul) * distMul / (distRed * pf)

	numKernelsPerProc := g.kernelCoeff * vol / g.kernelVol(sf) / pf
	exec := numKernelsPerProc * kernel
	exchDist := regionSide * distMul
	if noRearrange {
		exchDist = g.rawExchDist(nf) * distMul
	}
	exch := numKernelsPerProc * kap * g.faceSize(sf) * exchDist

	return reloc + exec + exch, levels, [3]float64{reloc, exec, exch}, nil
}

// multiSpan is the shared d >= 2 orchestrator: validate the mesh shape,
// minimize multiSpanCost over power-of-two spans (or the override),
// charge the chosen schedule with phase attribution, and advance the
// guest functionally (exactly).
func multiSpan(ctx context.Context, g *multiGeom, n, p, m, steps int, prog network.Program, opts MultiOptions) (MultiResult, error) {
	if p < 1 || n < p || n%p != 0 {
		return MultiResult{}, fmt.Errorf("simulate: need p | n, got n=%d p=%d", n, p)
	}
	if m < 1 {
		return MultiResult{}, perr("multi", "m", "memory density must be >= 1", m)
	}
	if steps < 1 {
		return MultiResult{}, perr("multi", "steps", "guest step count must be >= 1", steps)
	}
	if e := validateTheta("multi", opts.Theta); e != nil {
		return MultiResult{}, e
	}
	if e := g.checkShape(n); e != nil {
		return MultiResult{}, e
	}
	regionSide := g.regionSideInt(n, p)
	if regionSide < 1 {
		regionSide = 1
	}

	// Candidate spans: powers of two up to the per-processor region side.
	var spans []int
	for s := 2; s <= regionSide; s *= 2 {
		spans = append(spans, s)
	}
	if len(spans) == 0 {
		spans = []int{2}
	}
	if opts.SpanOverride > 0 {
		spans = []int{opts.SpanOverride}
	}

	best := math.Inf(1)
	bestSpan := spans[0]
	bestLevels := 0
	var bestBreak [3]float64
	ec := newExecCtx(ctx)
	// The span search is traced as one "plan" span; the kernel
	// calibrations it triggers nest their "calibrate" spans underneath.
	plan := ec.tr.Start("plan")
	for _, s := range spans {
		if err := ec.checkpoint(); err != nil {
			return MultiResult{}, err
		}
		total, levels, brk, err := multiSpanCost(ctx, g, n, p, m, steps, s, opts)
		if err != nil {
			return MultiResult{}, err
		}
		if total < best {
			best, bestSpan, bestLevels, bestBreak = total, s, levels, brk
		}
	}
	if plan != nil {
		plan.SetAttr("candidates", float64(len(spans)))
		plan.SetAttr("span", float64(bestSpan))
		plan.End()
	}

	// Charge the chosen schedule into a bank for ledger and phase
	// attribution.
	bank, _ := playScheduleAuto(ec.tr, p, multiSchedule{
		regime1: []float64{bestBreak[0]},
		domains: 1,
		exec:    bestBreak[1],
		exch:    bestBreak[2],
		exchCat: cost.Message,
	}, opts.delayModel())

	replay := ec.tr.Start("replay")
	outs, mems, err := network.RunGuestPureHook(g.d, n, m, steps, prog, ec.hook())
	if err != nil {
		return MultiResult{}, err
	}
	if replay != nil {
		replay.SetAttr("vertices", float64(n)*float64(steps))
		replay.End()
	}
	return MultiResult{
		Result: Result{
			Outputs:  outs,
			Memories: mems,
			Time:     bank.MaxNow(),
			Ledger:   bank.Ledgers(),
			Steps:    steps,
		},
		Span:          bestSpan,
		Regime1Levels: bestLevels,
		Phases:        bank.Phases(),
	}, nil
}
