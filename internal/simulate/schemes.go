package simulate

import (
	"context"
	"fmt"

	"bsmp/internal/dag"
	"bsmp/internal/guest"
	"bsmp/internal/network"
	"bsmp/internal/obs"
)

// SchemeConfig carries the per-run knobs a registered scheme may consume.
// The zero value selects every scheme's default (paper-optimal) settings.
type SchemeConfig struct {
	// Leaf is the uniprocessor recursion leaf (UniDC leafSize, blocked
	// leafWidth/leafSpan); 0 selects the scheme default.
	Leaf int
	// Multi configures the multiprocessor schemes (strip/span overrides
	// and mechanism ablations).
	Multi MultiOptions
}

// Scheme is a named simulation algorithm from the paper's ladder,
// runnable through a single signature. Uniprocessor schemes require
// p = 1; unidc additionally requires m = 1 (Theorems 2 and 5) and a
// program with a dag view. Every scheme returns a MultiResult; the
// multiprocessor accounting fields are zero for uniprocessor schemes.
type Scheme struct {
	// Name is the registry key: "naive", "unidc", "blocked" or "multi".
	Name string
	// D is the mesh dimension the entry serves.
	D int
	// Multiproc reports whether the scheme exploits p > 1.
	Multiproc bool
	// Description is a one-line summary with the scheme's slowdown.
	Description string
	// Validate checks the scheme-specific parameter constraints beyond
	// the common ones (positivity, p <= n, p | n, overflow); nil means
	// no extra constraints. cfg carries the per-run knobs a scheme may
	// additionally constrain (the multi-theta delay ratio Θ).
	// ValidateParams and Run both consult it, so no tuple reachable
	// through the registry can panic an internal constructor.
	Validate func(n, p, m, steps int, cfg SchemeConfig) *ParamError
	// Run executes the scheme on an n-node guest with density m for
	// steps steps on p host processors, under ctx: every scheme polls
	// cancellation cooperatively and reports progress to any attached
	// Progress (see WithProgress). The registry wraps every entry so Run
	// validates its parameters before dispatching.
	Run func(ctx context.Context, n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error)
}

// dagView extracts the dag.Program behind a network program. No type can
// implement both interfaces directly (their Step methods conflict), so
// the dag view lives on the wrapped guest of an AsNetwork adapter.
func dagView(prog network.Program) (dag.Program, bool) {
	if an, ok := prog.(guest.AsNetwork); ok {
		if dp, ok := an.G.(dag.Program); ok {
			return dp, true
		}
	}
	return nil, false
}

// withValidation wraps a registry entry's Run so it checks the common
// and scheme-specific constraints before dispatching — the panic-free
// boundary holds even for callers that grab a Scheme and invoke Run
// directly instead of going through RunScheme.
func withValidation(s Scheme) Scheme {
	inner := s.Run
	s.Run = func(ctx context.Context, n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
		if e := validateCommon(s.Name, s.D, n, p, m, steps); e != nil {
			return MultiResult{}, e
		}
		if s.Validate != nil {
			if e := s.Validate(n, p, m, steps, cfg); e != nil {
				return MultiResult{}, e
			}
		}
		return inner(ctx, n, p, m, steps, prog, cfg)
	}
	return s
}

func naiveScheme(d int) Scheme {
	return Scheme{
		Name: "naive", D: d, Multiproc: true,
		Description: "step-by-step mimicry (Prop. 1), slowdown Θ((n/p)^(1+1/d))",
		Validate: func(n, p, m, steps int, _ SchemeConfig) *ParamError {
			return validateNaiveShape(d, n, p)
		},
		Run: func(ctx context.Context, n, p, m, steps int, prog network.Program, _ SchemeConfig) (MultiResult, error) {
			r, err := NaiveContext(ctx, d, n, p, m, steps, prog)
			return MultiResult{Result: r}, err
		},
	}
}

func unidcScheme(d int) Scheme {
	return Scheme{
		Name: "unidc", D: d, Multiproc: false,
		Description: "uniprocessor divide-and-conquer for m = 1 (Thms. 2/5), slowdown Θ(n log n)",
		Validate: func(n, p, m, steps int, _ SchemeConfig) *ParamError {
			if p != 1 {
				return perr("unidc", "p", "uniprocessor scheme requires p = 1", p)
			}
			if m != 1 {
				return perr("unidc", "m", "needs m=1 (Theorems 2 and 5)", m)
			}
			return shapeError("unidc", "n", d, n)
		},
		Run: func(ctx context.Context, n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
			dp, ok := dagView(prog)
			if !ok {
				return MultiResult{}, fmt.Errorf("simulate: scheme unidc needs a program with a dag view, got %T", prog)
			}
			r, err := UniDCContext(ctx, d, n, steps, cfg.Leaf, dp)
			return MultiResult{Result: r}, err
		},
	}
}

func blockedScheme(d int) Scheme {
	return Scheme{
		Name: "blocked", D: d, Multiproc: false,
		Description: "blocked uniprocessor scheme for general m (Thm. 3), slowdown Θ(n·min(n, m·Log(n/m)))",
		Validate:    uniprocOnly("blocked", d),
		Run: func(ctx context.Context, n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
			var r Result
			var err error
			switch d {
			case 1:
				r, err = BlockedD1Context(ctx, n, m, steps, cfg.Leaf, prog)
			case 2:
				r, err = BlockedD2Context(ctx, n, m, steps, cfg.Leaf, prog)
			default:
				r, err = BlockedD3Context(ctx, n, m, steps, cfg.Leaf, prog)
			}
			return MultiResult{Result: r}, err
		},
	}
}

// analyticScheme registers the d = 1 analytic fast path: same recursion
// and charge model as "blocked", but costs are computed without machine
// state and congruent subtrees replay as summed deltas, so volumes of
// 10^9+ vertices finish in seconds. Results carry no guest outputs
// (Outputs/Memories nil) — callers validate against the work/span laws
// and the Theorem 3 predictions instead of output comparison.
func analyticScheme() Scheme {
	return Scheme{
		Name: "blocked-analytic", D: 1, Multiproc: false,
		Description: "analytic replay of the blocked d = 1 recursion: exact model costs at huge n, no guest outputs",
		Validate:    uniprocOnly("blocked-analytic", 1),
		Run: func(ctx context.Context, n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
			r, err := AnalyticBlockedD1Context(ctx, n, m, steps, cfg.Leaf, prog)
			return MultiResult{Result: r}, err
		},
	}
}

func multiScheme(d int) Scheme {
	return Scheme{
		Name: "multi", D: d, Multiproc: true,
		Description: "multiprocessor rearrangement + cooperating mode (Thm. 4 / Thm. 1), slowdown Θ((n/p)·A(n, m, p))",
		Validate: func(n, p, m, steps int, cfg SchemeConfig) *ParamError {
			if cfg.Multi.Theta != 0 {
				return perrF("multi", "theta", "lockstep scheme takes no delay ratio; use scheme multi-theta", cfg.Multi.Theta)
			}
			if cfg.Multi.Faults != 0 {
				return perrF("multi", "faults", "fault-free scheme takes no fault density; use scheme multi-faulty", cfg.Multi.Faults)
			}
			return shapeError("multi", "n", d, n)
		},
		Run: func(ctx context.Context, n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
			switch d {
			case 1:
				return MultiD1Context(ctx, n, p, m, steps, prog, cfg.Multi)
			case 2:
				return MultiD2Context(ctx, n, p, m, steps, prog, cfg.Multi)
			default:
				return MultiD3Context(ctx, n, p, m, steps, prog, cfg.Multi)
			}
		},
	}
}

// multiThetaScheme registers the Θ-model variant of multi: the same
// Theorem 4 / Theorem 1 schedule, played by the event-driven scheduler
// core with every distance-proportional charge stretched by a seeded
// delay factor in [1, Θ] (cfg.Multi.Theta, default 1; cfg.Multi.ThetaSeed
// picks the draw). At Θ = 1 every factor is exactly 1 and the virtual
// times are bit-identical to the lockstep multi scheme — the golden
// tests pin this — so the lockstep results are the Θ → 1 limit of this
// scheme, not a separate model.
func multiThetaScheme(d int) Scheme {
	return Scheme{
		Name: "multi-theta", D: d, Multiproc: true,
		Description: "event-driven Θ-model multi: seeded delays in [dist, Θ·dist]; Θ = 1 recovers lockstep exactly",
		Validate: func(n, p, m, steps int, cfg SchemeConfig) *ParamError {
			if e := validateTheta("multi-theta", cfg.Multi.Theta); e != nil {
				return e
			}
			if cfg.Multi.Faults != 0 {
				return perrF("multi-theta", "faults", "fault-free scheme takes no fault density; use scheme multi-faulty", cfg.Multi.Faults)
			}
			return shapeError("multi-theta", "n", d, n)
		},
		Run: func(ctx context.Context, n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
			opts := cfg.Multi
			if opts.Theta == 0 {
				opts.Theta = 1
			}
			switch d {
			case 1:
				return MultiD1Context(ctx, n, p, m, steps, prog, opts)
			case 2:
				return MultiD2Context(ctx, n, p, m, steps, prog, opts)
			default:
				return MultiD3Context(ctx, n, p, m, steps, prog, opts)
			}
		},
	}
}

// Schemes is the registry of named simulation schemes, one entry per
// (algorithm, dimension) the repository implements: naive (d = 1, 2),
// unidc and blocked and multi and multi-theta and multi-faulty
// (d = 1, 2, 3). Callers — bsmp.RunScheme, cmd/tradeoff,
// cmd/experiments, the E-REG experiment — select simulations by name
// and dimension instead of hard-wiring function calls.
var Schemes = []Scheme{
	withValidation(naiveScheme(1)), withValidation(naiveScheme(2)),
	withValidation(unidcScheme(1)), withValidation(unidcScheme(2)), withValidation(unidcScheme(3)),
	withValidation(blockedScheme(1)), withValidation(blockedScheme(2)), withValidation(blockedScheme(3)),
	withValidation(analyticScheme()),
	withValidation(multiScheme(1)), withValidation(multiScheme(2)), withValidation(multiScheme(3)),
	withValidation(multiThetaScheme(1)), withValidation(multiThetaScheme(2)), withValidation(multiThetaScheme(3)),
	withValidation(multiFaultyScheme(1)), withValidation(multiFaultyScheme(2)), withValidation(multiFaultyScheme(3)),
}

// SchemeByName returns the registered scheme for (name, d).
func SchemeByName(name string, d int) (Scheme, error) {
	for _, s := range Schemes {
		if s.Name == name && s.D == d {
			return s, nil
		}
	}
	return Scheme{}, fmt.Errorf("simulate: no scheme %q for d=%d", name, d)
}

// RunScheme looks up (name, d) in the registry and runs it under
// context.Background().
func RunScheme(name string, d, n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
	return RunSchemeContext(context.Background(), name, d, n, p, m, steps, prog, cfg)
}

// RunSchemeContext looks up (name, d) in the registry and runs it under
// ctx: the selected scheme polls cancellation cooperatively at its
// recursion/phase/step boundaries, reports progress to any Progress
// attached with WithProgress, and records its span timeline into any
// Tracer attached with obs.WithTracer — the run gets one
// "scheme:<name>" root span whose "vtime" attribute is the run's full
// virtual makespan (Time + PrepTime).
func RunSchemeContext(ctx context.Context, name string, d, n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
	s, err := SchemeByName(name, d)
	if err != nil {
		return MultiResult{}, err
	}
	sp := obs.FromContext(ctx).Start("scheme:" + name)
	if sp != nil {
		sp.SetAttr("d", float64(d))
		sp.SetAttr("n", float64(n))
		sp.SetAttr("p", float64(p))
		sp.SetAttr("m", float64(m))
		sp.SetAttr("steps", float64(steps))
		if cfg.Multi.Theta != 0 {
			sp.SetAttr("theta", cfg.Multi.Theta)
		}
	}
	res, err := s.Run(ctx, n, p, m, steps, prog, cfg)
	if sp != nil {
		if err == nil {
			sp.SetAttr("vtime", float64(res.Time+res.PrepTime))
		}
		sp.End()
	}
	return res, err
}
