package simulate

import (
	"fmt"

	"bsmp/internal/dag"
	"bsmp/internal/guest"
	"bsmp/internal/network"
)

// SchemeConfig carries the per-run knobs a registered scheme may consume.
// The zero value selects every scheme's default (paper-optimal) settings.
type SchemeConfig struct {
	// Leaf is the uniprocessor recursion leaf (UniDC leafSize, blocked
	// leafWidth/leafSpan); 0 selects the scheme default.
	Leaf int
	// Multi configures the multiprocessor schemes (strip/span overrides
	// and mechanism ablations).
	Multi MultiOptions
}

// Scheme is a named simulation algorithm from the paper's ladder,
// runnable through a single signature. Uniprocessor schemes require
// p = 1; unidc additionally requires m = 1 (Theorems 2 and 5) and a
// program with a dag view. Every scheme returns a MultiResult; the
// multiprocessor accounting fields are zero for uniprocessor schemes.
type Scheme struct {
	// Name is the registry key: "naive", "unidc", "blocked" or "multi".
	Name string
	// D is the mesh dimension the entry serves.
	D int
	// Multiproc reports whether the scheme exploits p > 1.
	Multiproc bool
	// Description is a one-line summary with the scheme's slowdown.
	Description string
	// Run executes the scheme on an n-node guest with density m for
	// steps steps on p host processors.
	Run func(n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error)
}

// dagView extracts the dag.Program behind a network program. No type can
// implement both interfaces directly (their Step methods conflict), so
// the dag view lives on the wrapped guest of an AsNetwork adapter.
func dagView(prog network.Program) (dag.Program, bool) {
	if an, ok := prog.(guest.AsNetwork); ok {
		if dp, ok := an.G.(dag.Program); ok {
			return dp, true
		}
	}
	return nil, false
}

func uniOnly(name string, p int) error {
	if p != 1 {
		return fmt.Errorf("simulate: scheme %q is uniprocessor, got p=%d (want 1)", name, p)
	}
	return nil
}

func naiveScheme(d int) Scheme {
	return Scheme{
		Name: "naive", D: d, Multiproc: true,
		Description: "step-by-step mimicry (Prop. 1), slowdown Θ((n/p)^(1+1/d))",
		Run: func(n, p, m, steps int, prog network.Program, _ SchemeConfig) (MultiResult, error) {
			r, err := Naive(d, n, p, m, steps, prog)
			return MultiResult{Result: r}, err
		},
	}
}

func unidcScheme(d int) Scheme {
	return Scheme{
		Name: "unidc", D: d, Multiproc: false,
		Description: "uniprocessor divide-and-conquer for m = 1 (Thms. 2/5), slowdown Θ(n log n)",
		Run: func(n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
			if err := uniOnly("unidc", p); err != nil {
				return MultiResult{}, err
			}
			if m != 1 {
				return MultiResult{}, fmt.Errorf("simulate: scheme unidc needs m=1, got m=%d", m)
			}
			dp, ok := dagView(prog)
			if !ok {
				return MultiResult{}, fmt.Errorf("simulate: scheme unidc needs a program with a dag view, got %T", prog)
			}
			r, err := UniDC(d, n, steps, cfg.Leaf, dp)
			return MultiResult{Result: r}, err
		},
	}
}

func blockedScheme(d int) Scheme {
	return Scheme{
		Name: "blocked", D: d, Multiproc: false,
		Description: "blocked uniprocessor scheme for general m (Thm. 3), slowdown Θ(n·min(n, m·Log(n/m)))",
		Run: func(n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
			if err := uniOnly("blocked", p); err != nil {
				return MultiResult{}, err
			}
			var r Result
			var err error
			switch d {
			case 1:
				r, err = BlockedD1(n, m, steps, cfg.Leaf, prog)
			case 2:
				r, err = BlockedD2(n, m, steps, cfg.Leaf, prog)
			default:
				r, err = BlockedD3(n, m, steps, cfg.Leaf, prog)
			}
			return MultiResult{Result: r}, err
		},
	}
}

func multiScheme(d int) Scheme {
	return Scheme{
		Name: "multi", D: d, Multiproc: true,
		Description: "multiprocessor rearrangement + cooperating mode (Thm. 4 / Thm. 1), slowdown Θ((n/p)·A(n, m, p))",
		Run: func(n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
			switch d {
			case 1:
				return MultiD1(n, p, m, steps, prog, cfg.Multi)
			case 2:
				return MultiD2(n, p, m, steps, prog, cfg.Multi)
			default:
				return MultiD3(n, p, m, steps, prog, cfg.Multi)
			}
		},
	}
}

// Schemes is the registry of named simulation schemes, one entry per
// (algorithm, dimension) the repository implements: naive (d = 1, 2),
// unidc and blocked and multi (d = 1, 2, 3). Callers — bsmp.RunScheme,
// cmd/tradeoff, cmd/experiments, the E-REG experiment — select
// simulations by name and dimension instead of hard-wiring function
// calls.
var Schemes = []Scheme{
	naiveScheme(1), naiveScheme(2),
	unidcScheme(1), unidcScheme(2), unidcScheme(3),
	blockedScheme(1), blockedScheme(2), blockedScheme(3),
	multiScheme(1), multiScheme(2), multiScheme(3),
}

// SchemeByName returns the registered scheme for (name, d).
func SchemeByName(name string, d int) (Scheme, error) {
	for _, s := range Schemes {
		if s.Name == name && s.D == d {
			return s, nil
		}
	}
	return Scheme{}, fmt.Errorf("simulate: no scheme %q for d=%d", name, d)
}

// RunScheme looks up (name, d) in the registry and runs it.
func RunScheme(name string, d, n, p, m, steps int, prog network.Program, cfg SchemeConfig) (MultiResult, error) {
	s, err := SchemeByName(name, d)
	if err != nil {
		return MultiResult{}, err
	}
	return s.Run(n, p, m, steps, prog, cfg)
}
