package simulate

import (
	"context"

	"bsmp/internal/analytic"
	"bsmp/internal/hram"
	"bsmp/internal/network"
	"bsmp/internal/topology"
)

// Naive runs the naive simulation of Proposition 1 (p = 1) and its
// parallel version from Section 4.2 (p > 1): host processor i mimics the
// guest nodes of its region step by step, holding their full state —
// m memory cells plus the broadcast value — in its own hierarchical
// memory and paying the access function on every touched word.
//
// State layout per host node: guest node v at local index ℓ occupies the
// block [ℓ·(m+1), (ℓ+1)·(m+1)); its broadcast value lives in the block's
// last word. The host is built with density m+1 so the geometry accounts
// for the broadcast word.
//
// Boundary traffic: at every step, host neighbors exchange the broadcast
// values of the guest nodes on their shared region boundary as messages at
// the host's node spacing (n/p)^(1/d).
//
// The expected slowdown is Θ((n/p)^(1+1/d)): per guest step, each host
// processor performs n/p block accesses at average address Θ((n/p)·m),
// i.e. average latency Θ((n/p)^(1/d)).
func Naive(d, n, p, m, steps int, prog network.Program) (Result, error) {
	return NaiveContext(context.Background(), d, n, p, m, steps, prog)
}

// NaiveContext is Naive under a context: cancellation is checked once
// per simulated guest step (n vertices of work), and step progress is
// reported to any attached Progress. Checks are host-side only, so a
// never-cancelled run's virtual times are bit-identical to Naive's.
func NaiveContext(ctx context.Context, d, n, p, m, steps int, prog network.Program) (Result, error) {
	if e := validateCommon("naive", d, n, p, m, steps); e != nil {
		return Result{}, e
	}
	if e := validateNaiveShape(d, n, p); e != nil {
		return Result{}, e
	}
	host := network.New(d, n, p, m+1)
	perHost := n / p
	b := make([]hram.Word, n)
	prevB := make([]hram.Word, n)

	// Guest adjacency and coordinates live on the guest's own mesh, not
	// the host's — a bare topology, since no guest machine is built.
	guest := topology.NewMesh(d, n, n)

	// regionOf maps a guest node to (host index, local index).
	var regionOf func(v int) (hostIdx, local int)
	var patch int
	if d == 1 {
		regionOf = func(v int) (int, int) { return v / perHost, v % perHost }
	} else {
		patch = analytic.IntSqrtExact(perHost)
		regionOf = func(v int) (int, int) {
			gx, gy := guest.Coord(v)
			hi := host.Index(gx/patch, gy/patch)
			local := (gy%patch)*patch + gx%patch
			return hi, local
		}
	}
	blockOf := func(v int) (hostIdx, base int) {
		hi, l := regionOf(v)
		return hi, l * (m + 1)
	}

	// Load initial state (free, as in the guest machine's convention).
	mem := make([]hram.Word, m)
	for v := 0; v < n; v++ {
		for i := range mem {
			mem[i] = 0
		}
		b[v] = prog.Init(v, mem)
		hi, base := blockOf(v)
		for i, w := range mem {
			host.Nodes[hi].Poke(base+i, w)
		}
		host.Nodes[hi].Poke(base+m, b[v])
	}

	var nbuf []int
	ops := make([]hram.Word, 0, 5)

	ec := newExecCtx(ctx)
	start := host.Elapsed()
	for t := 1; t <= steps; t++ {
		if err := ec.step(n); err != nil {
			return Result{}, err
		}
		copy(prevB, b)
		// Boundary exchange: for every guest edge crossing host regions,
		// the owning hosts send each other the broadcast values.
		for v := 0; v < n; v++ {
			hv, _ := regionOf(v)
			nbuf = guest.Neighbors(v, nbuf[:0])
			for _, u := range nbuf {
				if hu, _ := regionOf(u); hu != hv {
					// u's value travels to v's host.
					host.Send(hu, hv, 1)
				}
			}
		}
		// Local simulation of each region.
		for v := 0; v < n; v++ {
			hv, base := blockOf(v)
			node := host.Nodes[hv]
			addr := base + prog.Address(v, t, m)
			cell := node.Read(addr)
			ops = ops[:0]
			ops = append(ops, prevB[v])
			nbuf = guest.Neighbors(v, nbuf[:0])
			for _, u := range nbuf {
				if hu, baseU := blockOf(u); hu == hv {
					// Charge the stored-value read; the value used is
					// the previous step's (the host double-buffers
					// broadcast words, same cost up to a constant).
					node.Read(baseU + m)
					ops = append(ops, prevB[u])
				} else {
					// Received by message this step; already charged.
					ops = append(ops, prevB[u])
				}
			}
			out, cellOut := prog.Step(v, t, cell, ops)
			node.Op()
			node.Write(addr, cellOut)
			node.Write(base+m, out)
			b[v] = out
		}
		host.Bank.Barrier()
	}
	elapsed := host.Elapsed() - start

	out := make([]hram.Word, n)
	copy(out, b)
	mems := make([][]hram.Word, n)
	for v := 0; v < n; v++ {
		hi, base := blockOf(v)
		mems[v] = make([]hram.Word, m)
		for i := 0; i < m; i++ {
			mems[v][i] = host.Nodes[hi].Peek(base + i)
		}
	}
	return Result{
		Outputs:  out,
		Memories: mems,
		Time:     elapsed,
		Ledger:   host.Bank.Ledgers(),
		Steps:    steps,
	}, nil
}
