package simulate

import (
	"context"
	"sort"
	"sync"

	"bsmp/internal/cost"
)

// This file is the unified memo store behind both caches the engines
// keep: the measured-kernel cache of the multiprocessor engine (formerly
// a dedicated boundedKernelCache) and the subtree-record memo of the
// blocked/analytic engines. One bounded-FIFO store with one shared,
// settable capacity serves all kinds; per-(kind, level) hit/miss/
// eviction statistics feed the daemon's /metrics and /metrics.prom.
//
// Eviction is discoverability-only: values are referenced by Go
// pointers, so a subtree record evicted while linked as a child of a
// larger record stays alive and replayable — eviction can never corrupt
// an already-published trace, it only forces a future re-derivation.

// memoKind partitions the store's key space.
type memoKind int

const (
	// memoKernel entries are measured multiprocessor kernels (float64).
	memoKernel memoKind = iota
	// memoSubtree entries are exact-trace subtree records of the blocked
	// engine (*subtreeRecord with a trace).
	memoSubtree
	// memoAnalytic entries are summed-delta subtree records of the
	// analytic engine (*subtreeRecord without a trace).
	memoAnalytic
)

func (k memoKind) String() string {
	switch k {
	case memoKernel:
		return "kernel"
	case memoSubtree:
		return "subtree"
	case memoAnalytic:
		return "analytic"
	default:
		return "unknown"
	}
}

// DefaultMemoCapacity is the store's initial entry bound — the seed's
// hardcoded kernel-cache capacity, now shared by every memo kind and
// adjustable via SetMemoCapacity (the -memo-cap flag / bsmpd config).
const DefaultMemoCapacity = 1024

// memoID is the store-wide key: the kind plus the kind's own comparable
// key value (kernelKey or subtreeKey).
type memoID struct {
	kind memoKind
	key  any
}

// levelID buckets statistics by kind and size level (log2 of the span a
// record covers; kernels use log2 of the calibrated span).
type levelID struct {
	kind  memoKind
	level int
}

type levelCounters struct {
	entries               int
	hits, misses, evicted int64
}

type memoVal struct {
	v     any
	level int
}

type memoStore struct {
	mu       sync.Mutex
	capacity int
	entries  map[memoID]memoVal
	order    []memoID // insertion order: the FIFO eviction queue
	stats    map[levelID]*levelCounters
}

// memo is the process-wide store shared by every engine.
var memo = &memoStore{
	capacity: DefaultMemoCapacity,
	entries:  make(map[memoID]memoVal),
	stats:    make(map[levelID]*levelCounters),
}

func (c *memoStore) counters(id levelID) *levelCounters {
	lc := c.stats[id]
	if lc == nil {
		lc = &levelCounters{}
		c.stats[id] = lc
	}
	return lc
}

// load returns the entry for (kind, key), counting a hit or miss at the
// given level. With the store disabled (capacity <= 0) every load misses
// without touching the counters.
func (c *memoStore) load(kind memoKind, level int, key any) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return nil, false
	}
	val, ok := c.entries[memoID{kind, key}]
	lc := c.counters(levelID{kind, level})
	if ok {
		lc.hits++
		return val.v, true
	}
	lc.misses++
	return nil, false
}

// store publishes v under (kind, key), evicting oldest entries beyond
// the capacity. A no-op when the store is disabled.
func (c *memoStore) store(kind memoKind, level int, key any, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	id := memoID{kind, key}
	if old, ok := c.entries[id]; ok {
		c.entries[id] = memoVal{v, old.level}
		return
	}
	c.evictLocked(c.capacity - 1)
	c.entries[id] = memoVal{v, level}
	c.order = append(c.order, id)
	c.counters(levelID{kind, level}).entries++
}

// evictLocked drops oldest entries until at most n remain.
func (c *memoStore) evictLocked(n int) {
	for len(c.entries) > n && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		if val, ok := c.entries[oldest]; ok {
			delete(c.entries, oldest)
			lc := c.counters(levelID{oldest.kind, val.level})
			lc.entries--
			lc.evicted++
		}
	}
}

// setCapacity adjusts the bound, evicting down if needed. n <= 0
// disables the store entirely (every load misses, every store drops).
func (c *memoStore) setCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = n
	if n <= 0 {
		c.evictLocked(0)
		return
	}
	c.evictLocked(n)
}

// MemoLevelStats is one (kind, level) row of the memo store statistics.
type MemoLevelStats struct {
	// Kind is "kernel", "subtree" or "analytic".
	Kind string `json:"kind"`
	// Level is the size level: log2 of the span the entries cover.
	Level int `json:"level"`
	// Entries is the current entry count of the bucket.
	Entries int `json:"entries"`
	// Hits, Misses and Evictions are lifetime counters.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// MemoStats is a snapshot of the unified memo store.
type MemoStats struct {
	// Capacity is the shared entry bound; <= 0 means the store is
	// disabled.
	Capacity int `json:"capacity"`
	// Entries is the current total entry count.
	Entries int `json:"entries"`
	// Hits, Misses and Evictions are lifetime totals across all kinds.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Levels holds the per-(kind, level) breakdown, sorted by kind then
	// level, buckets that were never touched omitted.
	Levels []MemoLevelStats `json:"levels"`
}

// MemoStatsSnapshot reports the unified memo store's capacity, totals,
// and per-(kind, level) statistics.
func MemoStatsSnapshot() MemoStats {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	out := MemoStats{Capacity: memo.capacity, Entries: len(memo.entries)}
	for id, lc := range memo.stats {
		out.Hits += lc.hits
		out.Misses += lc.misses
		out.Evictions += lc.evicted
		out.Levels = append(out.Levels, MemoLevelStats{
			Kind: id.kind.String(), Level: id.level,
			Entries: lc.entries, Hits: lc.hits, Misses: lc.misses, Evictions: lc.evicted,
		})
	}
	sort.Slice(out.Levels, func(i, j int) bool {
		if out.Levels[i].Kind != out.Levels[j].Kind {
			return out.Levels[i].Kind < out.Levels[j].Kind
		}
		return out.Levels[i].Level < out.Levels[j].Level
	})
	return out
}

// SetMemoCapacity adjusts the shared entry bound of the unified memo
// store (kernels and subtree records alike), evicting oldest entries if
// the store currently exceeds it. A bound <= 0 disables memoization:
// every lookup misses and nothing is published — the off switch behind
// the -memo-cap flag.
func SetMemoCapacity(n int) { memo.setCapacity(n) }

// MemoCapacity reports the current shared entry bound.
func MemoCapacity() int {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	return memo.capacity
}

// KernelCacheStats reports the kernel-kind entry count and lifetime
// hit/miss/eviction counters of the unified memo store — the historical
// kernel-cache gauges on bsmpd's /metrics keep their meaning.
func KernelCacheStats() (entries int, hits, misses, evictions int64) {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	for id, lc := range memo.stats {
		if id.kind != memoKernel {
			continue
		}
		entries += lc.entries
		hits += lc.hits
		misses += lc.misses
		evictions += lc.evicted
	}
	return entries, hits, misses, evictions
}

// memoLevel is the statistics level of a span: floor(log2(span)),
// clamped at 0.
func memoLevel(span int) int {
	l := 0
	for span > 1 {
		span >>= 1
		l++
	}
	return l
}

// subtreeRecord is one memoized recursion subtree: everything a
// congruent site needs to skip the recursion while leaving the meter and
// the address tables in the exact state a real execution would have.
type subtreeRecord struct {
	// trace is the exact charge sequence (exact engine records); nil for
	// analytic records, which replay dt/ledger as one summed delta.
	trace *cost.Trace
	// dt and ledger are the interval's clock advance and per-category
	// charge delta (analytic replay).
	dt     cost.Time
	ledger cost.Ledger
	// space is the subtree's workspace requirement (spaceNeeded).
	space int
	// imgAddrs are the produced images' addresses Mem(v, tb+1) in column
	// order; outAddrs the live-out broadcast addresses in LiveOut order.
	// Both are child-frame absolute (the child workspace is always
	// [0, space)), so they are valid verbatim at every congruent site.
	imgAddrs []int
	outAddrs []int
}

// memoOffKey marks a context that opts out of subtree memoization.
type memoOffKey struct{}

// WithoutMemo returns a context under which the blocked engines run with
// subtree memoization disabled: every congruent subtree recurses for
// real, exactly as the pre-memo engine did. The golden bit-identity
// tests compare default (memo-on) runs against WithoutMemo runs.
func WithoutMemo(ctx context.Context) context.Context {
	return context.WithValue(ctx, memoOffKey{}, true)
}

// memoEnabled reports whether ctx allows subtree memoization.
func memoEnabled(ctx context.Context) bool {
	off, _ := ctx.Value(memoOffKey{}).(bool)
	return !off
}
