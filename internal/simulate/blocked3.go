package simulate

import (
	"fmt"

	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
)

// BlockedD3 completes the d = 3 extension for general m: the blocked
// simulation of the cube-mesh guest M3(n, n, m) on the uniprocessor
// M3(n, 1, m), recursing on the four-dimensional Box6 separator down to
// executable domains of span ~m. Together with the m = 1 result of
// simulate.UniDC(3, ...) this makes the full Theorem 3 mechanism
// available in three dimensions — the regime the paper's conclusions
// conjecture about.
//
// n must be a perfect cube; leafSpan <= 0 selects span m.
func BlockedD3(n, m, steps, leafSpan int, prog network.Program, opts ...hram.Option) (Result, error) {
	side := intCbrtExact(n)
	if leafSpan <= 0 {
		leafSpan = m
	}
	if leafSpan < 2 {
		leafSpan = 2
	}
	g := dag.NewCubeGraph(side, steps+1)
	root := g.Domain()
	iw := m
	if mu, ok := prog.(MemUser); ok {
		iw = mu.MemWords(m)
		if iw < 1 || iw > m {
			return Result{}, fmt.Errorf("simulate: MemWords(%d) = %d out of range", m, iw)
		}
	}
	b := &blocked3Exec{
		g: g, prog: prog, side: side, m: m, iw: iw, steps: steps, leafSpan: leafSpan,
		loc:   make(map[b3key]int, 4*n),
		space: make(map[lattice.Domain]int, 1024),
	}
	space := b.spaceNeeded(root)
	var meter cost.Meter
	b.mach = hram.New(space, hram.Standard(3, m), &meter, opts...)
	if err := b.exec(root, space); err != nil {
		return Result{}, err
	}

	out := make([]hram.Word, n)
	mems := make([][]hram.Word, n)
	staticBuf := make([]hram.Word, m)
	for z := 0; z < side; z++ {
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				node := (z*side+y)*side + x
				addr, ok := b.loc[b3key{false, x, y, z, steps}]
				if !ok {
					return Result{}, fmt.Errorf("simulate: missing final broadcast of node %d", node)
				}
				out[node] = b.mach.Peek(addr)
				base, ok := b.loc[b3key{true, x, y, z, steps + 1}]
				if !ok {
					return Result{}, fmt.Errorf("simulate: missing final memory of node %d", node)
				}
				mems[node] = make([]hram.Word, m)
				for i := 0; i < iw; i++ {
					mems[node][i] = b.mach.Peek(base + i)
				}
				if iw < m {
					for i := range staticBuf {
						staticBuf[i] = 0
					}
					b.prog.Init(node, staticBuf)
					copy(mems[node][iw:], staticBuf[iw:])
				}
			}
		}
	}
	return Result{
		Outputs:  out,
		Memories: mems,
		Time:     meter.Now(),
		Ledger:   meter.Ledger,
		Steps:    steps,
		Space:    space,
	}, nil
}

// b3key identifies a flowing d = 3 value.
type b3key struct {
	mem        bool
	x, y, z, t int
}

type blocked3Exec struct {
	g        dag.CubeGraph
	prog     network.Program
	side, m  int
	iw       int
	steps    int
	leafSpan int
	mach     *hram.Machine
	loc      map[b3key]int
	space    map[lattice.Domain]int
}

type col3Span struct {
	x, y, z, ta, tb int
}

func (b *blocked3Exec) columns(dom lattice.Domain) []col3Span {
	type xyz struct{ x, y, z int }
	idx := make(map[xyz]int)
	var spans []col3Span
	dom.Points(func(p lattice.Point) bool {
		k := xyz{p.X, p.Y, p.Z}
		if i, ok := idx[k]; ok {
			if p.T < spans[i].ta {
				spans[i].ta = p.T
			}
			if p.T > spans[i].tb {
				spans[i].tb = p.T
			}
			return true
		}
		idx[k] = len(spans)
		spans = append(spans, col3Span{x: p.X, y: p.Y, z: p.Z, ta: p.T, tb: p.T})
		return true
	})
	return spans
}

func (b *blocked3Exec) memIn(spans []col3Span) []b3key {
	var in []b3key
	for _, s := range spans {
		if s.ta >= 1 {
			in = append(in, b3key{true, s.x, s.y, s.z, s.ta})
		}
	}
	return in
}

func (b *blocked3Exec) inSize(dom lattice.Domain, spans []col3Span) int {
	return len(dag.Preboundary(b.g, dom)) + b.iw*len(b.memIn(spans))
}

func (b *blocked3Exec) isLeaf(dom lattice.Domain) bool {
	return dom.Span() <= b.leafSpan || dom.Children() == nil
}

func (b *blocked3Exec) spaceNeeded(dom lattice.Domain) int {
	if s, ok := b.space[dom]; ok {
		return s
	}
	spans := b.columns(dom)
	in := b.inSize(dom, spans)
	var out int
	if b.isLeaf(dom) {
		out = len(spans)*b.iw + dom.Size() + in
	} else {
		smax, stage := 0, 0
		for _, kid := range dom.Children() {
			if s := b.spaceNeeded(kid); s > smax {
				smax = s
			}
			stage += len(dag.LiveOut(b.g, kid)) + b.iw*len(b.columns(kid))
		}
		out = smax + stage + in
	}
	b.space[dom] = out
	return out
}

func (b *blocked3Exec) exec(dom lattice.Domain, space int) error {
	if b.isLeaf(dom) {
		return b.execLeaf(dom)
	}
	stagePtr := space - b.inSize(dom, b.columns(dom))

	for _, kid := range dom.Children() {
		kidSpans := b.columns(kid)
		kidGin := dag.Preboundary(b.g, kid)
		kidMemIn := b.memIn(kidSpans)
		skid := b.spaceNeeded(kid)

		type saved struct {
			k    b3key
			addr int
		}
		var overrides []saved
		dst := skid - b.inSize(kid, kidSpans)
		if dst < 0 {
			return fmt.Errorf("simulate: child slot underflow in %v", kid)
		}
		for _, k := range kidMemIn {
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: image %v unavailable for %v", k, kid)
			}
			b.mach.BlockCopy(dst, src, b.iw)
			overrides = append(overrides, saved{k, src})
			b.loc[k] = dst
			dst += b.iw
		}
		for _, q := range kidGin {
			k := b3key{false, q.X, q.Y, q.Z, q.T}
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: broadcast %v unavailable for %v", k, kid)
			}
			b.mach.MoveWord(dst, src)
			overrides = append(overrides, saved{k, src})
			b.loc[k] = dst
			dst++
		}

		if err := b.exec(kid, skid); err != nil {
			return err
		}

		for _, s := range kidSpans {
			k := b3key{true, s.x, s.y, s.z, s.tb + 1}
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: produced image %v missing after %v", k, kid)
			}
			stagePtr -= b.iw
			if stagePtr < skid {
				return fmt.Errorf("simulate: staging underflow in %v", dom)
			}
			b.mach.BlockCopy(stagePtr, src, b.iw)
			b.loc[k] = stagePtr
		}
		live := dag.LiveOut(b.g, kid)
		liveSet := make(map[lattice.Point]bool, len(live))
		for _, v := range live {
			liveSet[v] = true
			k := b3key{false, v.X, v.Y, v.Z, v.T}
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: live-out %v missing after %v", k, kid)
			}
			stagePtr--
			if stagePtr < skid {
				return fmt.Errorf("simulate: staging underflow in %v", dom)
			}
			b.mach.MoveWord(stagePtr, src)
			b.loc[k] = stagePtr
		}

		for _, s := range overrides {
			b.loc[s.k] = s.addr
		}
		for _, k := range kidMemIn {
			delete(b.loc, k)
		}
		kid.Points(func(p lattice.Point) bool {
			if !liveSet[p] {
				delete(b.loc, b3key{false, p.X, p.Y, p.Z, p.T})
			}
			return true
		})
	}
	return nil
}

func (b *blocked3Exec) execLeaf(dom lattice.Domain) error {
	spans := b.columns(dom)
	type xyz struct{ x, y, z int }
	imageBase := make(map[xyz]int, len(spans))
	next := 0
	for _, s := range spans {
		imageBase[xyz{s.x, s.y, s.z}] = next
		next += b.iw
	}
	for _, s := range spans {
		if s.ta >= 1 {
			k := b3key{true, s.x, s.y, s.z, s.ta}
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: image %v unavailable in leaf %v", k, dom)
			}
			b.mach.BlockCopy(imageBase[xyz{s.x, s.y, s.z}], src, b.iw)
			b.loc[k] = imageBase[xyz{s.x, s.y, s.z}]
		}
	}
	ops := make([]hram.Word, 0, 7)
	nbs := make([]lattice.Point, 0, 6)
	initMem := make([]hram.Word, b.m)
	var fail error
	dom.Points(func(p lattice.Point) bool {
		base := imageBase[xyz{p.X, p.Y, p.Z}]
		node := (p.Z*b.side+p.Y)*b.side + p.X
		if p.T == 0 {
			for i := range initMem {
				initMem[i] = 0
			}
			bv := b.prog.Init(node, initMem)
			for i, w := range initMem[:b.iw] {
				b.mach.Poke(base+i, w)
			}
			b.mach.Op()
			b.mach.Write(next, bv)
			b.loc[b3key{false, p.X, p.Y, p.Z, 0}] = next
			next++
			return true
		}
		cellOff := b.prog.Address(node, p.T, b.m)
		if cellOff >= b.iw {
			fail = fmt.Errorf("simulate: address %d beyond declared live memory %d", cellOff, b.iw)
			return false
		}
		addr := base + cellOff
		cell := b.mach.Read(addr)
		// Operands in network order: self, then the six cube neighbors
		// in Neighbors order (W, E, S, N, D, U), clipped.
		nbs = nbs[:0]
		nbs = append(nbs, lattice.Point{X: p.X, Y: p.Y, Z: p.Z, T: p.T - 1})
		if p.X > 0 {
			nbs = append(nbs, lattice.Point{X: p.X - 1, Y: p.Y, Z: p.Z, T: p.T - 1})
		}
		if p.X < b.side-1 {
			nbs = append(nbs, lattice.Point{X: p.X + 1, Y: p.Y, Z: p.Z, T: p.T - 1})
		}
		if p.Y > 0 {
			nbs = append(nbs, lattice.Point{X: p.X, Y: p.Y - 1, Z: p.Z, T: p.T - 1})
		}
		if p.Y < b.side-1 {
			nbs = append(nbs, lattice.Point{X: p.X, Y: p.Y + 1, Z: p.Z, T: p.T - 1})
		}
		if p.Z > 0 {
			nbs = append(nbs, lattice.Point{X: p.X, Y: p.Y, Z: p.Z - 1, T: p.T - 1})
		}
		if p.Z < b.side-1 {
			nbs = append(nbs, lattice.Point{X: p.X, Y: p.Y, Z: p.Z + 1, T: p.T - 1})
		}
		ops = ops[:0]
		for _, q := range nbs {
			a, ok := b.loc[b3key{false, q.X, q.Y, q.Z, q.T}]
			if !ok {
				fail = fmt.Errorf("simulate: operand %v of %v unavailable in leaf", q, p)
				return false
			}
			ops = append(ops, b.mach.Read(a))
		}
		out, cellOut := b.prog.Step(node, p.T, cell, ops)
		b.mach.Op()
		b.mach.Write(addr, cellOut)
		b.mach.Write(next, out)
		b.loc[b3key{false, p.X, p.Y, p.Z, p.T}] = next
		next++
		return true
	})
	if fail != nil {
		return fail
	}
	for _, s := range spans {
		delete(b.loc, b3key{true, s.x, s.y, s.z, s.ta})
		b.loc[b3key{true, s.x, s.y, s.z, s.tb + 1}] = imageBase[xyz{s.x, s.y, s.z}]
	}
	return nil
}
