package simulate

import (
	"context"

	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
	"bsmp/internal/topology"
)

// BlockedD3 completes the d = 3 extension for general m: the blocked
// simulation of the cube-mesh guest M3(n, n, m) on the uniprocessor
// M3(n, 1, m), recursing on the four-dimensional Box6 separator down to
// executable domains of span ~m. Together with the m = 1 result of
// simulate.UniDC(3, ...) this makes the full Theorem 3 mechanism
// available in three dimensions — the regime the paper's conclusions
// conjecture about.
//
// n must be a perfect cube; leafSpan <= 0 selects span m.
//
// The recursion lives in blocked_exec.go, shared across dimensions; this
// wrapper supplies the cube geometry: node id = (z*side+y)*side+x,
// operand stencil self then the six cube neighbors in Neighbors order
// (W, E, S, N, D, U), columns in first-seen (T, X, Y, Z) order.
func BlockedD3(n, m, steps, leafSpan int, prog network.Program, opts ...hram.Option) (Result, error) {
	return BlockedD3Context(context.Background(), n, m, steps, leafSpan, prog, opts...)
}

// BlockedD3Context is BlockedD3 under a context; see BlockedD1Context
// for the cancellation and progress contract.
func BlockedD3Context(ctx context.Context, n, m, steps, leafSpan int, prog network.Program, opts ...hram.Option) (Result, error) {
	if e := validateBlocked(3, n, m, steps); e != nil {
		return Result{}, e
	}
	side, _ := exactCbrt(n)
	if leafSpan <= 0 {
		leafSpan = m
	}
	if leafSpan < 2 {
		leafSpan = 2
	}
	g := dag.NewCubeGraph(side, steps+1)
	iw, err := imageWords(prog, m)
	if err != nil {
		return Result{}, err
	}
	// Node id ↔ coordinate maps come from the guest mesh topology; only
	// the dag-layer predecessor stencil below stays lattice-local (its
	// clipped W, E, S, N, D, U order mirrors topology Neighbors order).
	mesh := topology.NewMesh3(n, n)
	geom := blockedGeom{
		nodeIndex: func(p lattice.Point) int { return mesh.Index3(p.X, p.Y, p.Z) },
		nodePos: func(node int) lattice.Point {
			gx, gy, gz := mesh.Coord3(node)
			return lattice.Point{X: gx, Y: gy, Z: gz}
		},
		netPreds: func(p lattice.Point, buf []lattice.Point) []lattice.Point {
			// Operands in network order: self, then the six cube neighbors
			// in Neighbors order (W, E, S, N, D, U), clipped.
			buf = append(buf, lattice.Point{X: p.X, Y: p.Y, Z: p.Z, T: p.T - 1})
			if p.X > 0 {
				buf = append(buf, lattice.Point{X: p.X - 1, Y: p.Y, Z: p.Z, T: p.T - 1})
			}
			if p.X < side-1 {
				buf = append(buf, lattice.Point{X: p.X + 1, Y: p.Y, Z: p.Z, T: p.T - 1})
			}
			if p.Y > 0 {
				buf = append(buf, lattice.Point{X: p.X, Y: p.Y - 1, Z: p.Z, T: p.T - 1})
			}
			if p.Y < side-1 {
				buf = append(buf, lattice.Point{X: p.X, Y: p.Y + 1, Z: p.Z, T: p.T - 1})
			}
			if p.Z > 0 {
				buf = append(buf, lattice.Point{X: p.X, Y: p.Y, Z: p.Z - 1, T: p.T - 1})
			}
			if p.Z < side-1 {
				buf = append(buf, lattice.Point{X: p.X, Y: p.Y, Z: p.Z + 1, T: p.T - 1})
			}
			return buf
		},
		side: side,
	}
	b := newBlockedExec(ctx, g, prog, m, iw, steps, leafSpan, geom)
	root := g.Domain()
	space, err := b.spaceNeeded(root)
	if err != nil {
		return Result{}, err
	}
	var meter cost.Meter
	b.mach = hram.New(space, hram.Standard(3, m), &meter, opts...)
	if memoEnabled(ctx) {
		b.enableMemo(&meter)
	}
	if err := b.exec(root, space, 0); err != nil {
		return Result{}, err
	}
	// See BlockedD1Context: replay leaves machine memory stale, so any
	// replayed subtree switches output collection to the pure guest run.
	var out []hram.Word
	var mems [][]hram.Word
	if b.replayed > 0 {
		out, mems, err = network.RunGuestPureHook(3, n, m, steps, prog, b.ec.hook())
	} else {
		out, mems, err = b.collect(n)
	}
	if err != nil {
		return Result{}, err
	}
	return Result{
		Outputs:  out,
		Memories: mems,
		Time:     meter.Now(),
		Ledger:   meter.Ledger,
		Steps:    steps,
		Space:    space,
	}, nil
}
