package simulate

import (
	"context"
	"math"

	"bsmp/internal/analytic"
	"bsmp/internal/guest"
	"bsmp/internal/network"
	"bsmp/internal/topology"
)

// multiGeomD2 is the d = 2 geometry spec consumed by the shared
// multiprocessor engine (multi_exec.go): octahedral kernels of span σ
// hold ~σ³ dag vertices and exchange ~σ² face values; the 2-D
// rearrangement buys a √p distance reduction.
//
// Kernel calibration: a real BlockedD2 run of a span-σ, σ-step guest with
// density m, halved (the σ × σ × σ box holds about two octahedra's worth
// of vertices). Spans are capped at 16 for calibration (the machinery
// constant has converged by then) and scaled by volume. Unlike d = 1, the
// calibration guest is fixed internally — never supplied by the caller —
// so cache entries depend only on (σ, m) plus the fixed fingerprint; the
// assumption is explicit in the unified cache key and pinned by
// TestSpanKernelFixedGuest.
var multiGeomD2 = &multiGeom{
	d:           2,
	kernelFloor: 8,
	calSpan: func(s int) int {
		if s > 16 {
			return 16
		}
		return s
	},
	calProg: func(cal int, _ network.Program) network.Program {
		return guest.AsNetwork{G: guest.MixCA{Seed: 42}, Side: cal}
	},
	calRun: func(ctx context.Context, cal, m int, prog network.Program) (Result, error) {
		return BlockedD2Context(ctx, cal*cal, m, cal, 0, prog)
	},
	// Scale by dag volume (cal²·cal -> σ²·σ); the per-vertex cost is
	// span-dominated and grows ~linearly, so scale that too.
	// The distance geometry is the mesh's, via the dimension-matched
	// root (topology.Root keeps the historical math.Sqrt form exactly):
	// region side = per-processor spacing scale (n/p)^(1/2), the
	// rearrangement's distance reduction p^(1/2), the raw exchange
	// distance n^(1/2)/2.
	scaleExp:      4,
	checkShape:    func(n int) *ParamError { return shapeError("multi", "n", 2, n) },
	regionSideInt: func(n, p int) int { return int(topology.Root(2, float64(n)/float64(p))) },
	regionSide:    func(nf, pf float64) float64 { return topology.Root(2, nf/pf) },
	distRed:       func(pf float64) float64 { return topology.Root(2, pf) },
	rawExchDist:   func(nf float64) float64 { return topology.Root(2, nf) / 2 },
	relocCoeff:    3,
	kernelCoeff:   4,
	kernelVol:     func(sf float64) float64 { return sf * sf * sf },
	faceSize:      func(sf float64) float64 { return sf * sf },
	theoryExec: func(sf, mf float64) float64 {
		return (sf * sf * sf / 2) * math.Min(sf, mf*analytic.Log(sf*sf/mf))
	},
}

// MultiD2 runs the d = 2 case of Theorem 1: simulating M2(n, n, m) on
// M2(n, p, m). The paper states the d = 2 bound and the octahedral
// separator (Section 5) but defers the multiprocessor orchestration to the
// companion technical report, so this implementation composes the same
// three mechanisms as MultiD1 in two-dimensional geometry:
//
//   - Regime 1 relocation: at every level, the total (data × distance)
//     moved is Θ(V·m/√p) (V = n·steps dag vertices; distances shrink by
//     √p thanks to the 2-D rearrangement), i.e. Θ(V·m/p^(3/2)) wall time
//     per level;
//   - Regime 2 execution: Θ(V/σ³) octahedral/tetrahedral kernels of span
//     σ, p at a time; the kernel cost is measured for every (σ, m) by the
//     real d = 2 blocked executor (BlockedD2) running a σ-sided,
//     σ-step guest;
//   - cooperation: each kernel exchanges its Θ(σ²) face values with
//     neighbor processors at the host spacing (n/p)^(1/2).
//
// The span σ is chosen by minimizing the resulting cost over powers of
// two (the implementation analog of the paper's s* analysis); pass
// SpanOverride to ablate. Functionally the guest advances exactly.
// n and p must be perfect squares with p | n.
func MultiD2(n, p, m, steps int, prog network.Program, opts Multi2Options) (Multi2Result, error) {
	return MultiD2Context(context.Background(), n, p, m, steps, prog, opts)
}

// MultiD2Context is MultiD2 under a context; see MultiD1Context for the
// cancellation and progress contract.
func MultiD2Context(ctx context.Context, n, p, m, steps int, prog network.Program, opts Multi2Options) (Multi2Result, error) {
	return multiSpan(ctx, multiGeomD2, n, p, m, steps, prog, opts)
}
