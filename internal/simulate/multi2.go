package simulate

import (
	"fmt"
	"math"
	"sync"

	"bsmp/internal/analytic"
	"bsmp/internal/cost"
	"bsmp/internal/guest"
	"bsmp/internal/network"
)

// MultiD2 runs the d = 2 case of Theorem 1: simulating M2(n, n, m) on
// M2(n, p, m). The paper states the d = 2 bound and the octahedral
// separator (Section 5) but defers the multiprocessor orchestration to the
// companion technical report, so this implementation composes the same
// three mechanisms as MultiD1 in two-dimensional geometry:
//
//   - Regime 1 relocation: at every level, the total (data × distance)
//     moved is Θ(V·m/√p) (V = n·steps dag vertices; distances shrink by
//     √p thanks to the 2-D rearrangement), i.e. Θ(V·m/p^(3/2)) wall time
//     per level;
//   - Regime 2 execution: Θ(V/σ³) octahedral/tetrahedral kernels of span
//     σ, p at a time; the kernel cost is measured for every (σ, m) by the
//     real d = 2 blocked executor (BlockedD2) running a σ-sided,
//     σ-step guest;
//   - cooperation: each kernel exchanges its Θ(σ²) face values with
//     neighbor processors at the host spacing (n/p)^(1/2).
//
// The span σ is chosen by minimizing the resulting cost over powers of
// two (the implementation analog of the paper's s* analysis); pass
// SpanOverride to ablate. Functionally the guest advances exactly.
type Multi2Options struct {
	// SpanOverride fixes the octahedron span σ; 0 lets the model pick
	// the cost-minimizing power of two in [2, sqrt(n/p)].
	SpanOverride int
	// NoRearrange removes the √p distance reduction in Regime 1 and
	// cooperation.
	NoRearrange bool
}

// Multi2Result reports the d = 2 run.
type Multi2Result struct {
	Result
	// Span is the octahedron span σ used.
	Span int
	// Regime1Levels is the relocation level count.
	Regime1Levels int
}

// MultiD2 simulates steps steps of the d = 2 guest. n and p must be
// perfect squares with p | n.
func MultiD2(n, p, m, steps int, prog network.Program, opts Multi2Options) (Multi2Result, error) {
	if p < 1 || n%p != 0 {
		return Multi2Result{}, fmt.Errorf("simulate: need p | n, got n=%d p=%d", n, p)
	}
	side := intSqrtExact(n)
	_ = side
	regionSide := int(math.Sqrt(float64(n) / float64(p)))
	if regionSide < 1 {
		regionSide = 1
	}

	// Candidate spans: powers of two up to the per-processor region side.
	var spans []int
	for s := 2; s <= regionSide; s *= 2 {
		spans = append(spans, s)
	}
	if len(spans) == 0 {
		spans = []int{2}
	}
	if opts.SpanOverride > 0 {
		spans = []int{opts.SpanOverride}
	}

	best := math.Inf(1)
	bestSpan := spans[0]
	bestLevels := 0
	var bestBreak [3]float64
	for _, s := range spans {
		total, levels, brk, err := multi2Cost(n, p, m, steps, s, opts.NoRearrange)
		if err != nil {
			return Multi2Result{}, err
		}
		if total < best {
			best, bestSpan, bestLevels, bestBreak = total, s, levels, brk
		}
	}

	// Charge the chosen schedule into a bank for ledger attribution.
	bank := cost.NewBank(p)
	for i := 0; i < p; i++ {
		bank.Proc(i).Charge(cost.Transfer, bestBreak[0])
		bank.Proc(i).Charge(cost.Compute, bestBreak[1])
		bank.Proc(i).Charge(cost.Message, bestBreak[2])
	}
	bank.Barrier()

	outs, mems := network.RunGuestPure(2, n, m, steps, prog)
	return Multi2Result{
		Result: Result{
			Outputs:  outs,
			Memories: mems,
			Time:     bank.MaxNow(),
			Ledger:   bank.Ledgers(),
			Steps:    steps,
		},
		Span:          bestSpan,
		Regime1Levels: bestLevels,
	}, nil
}

// multi2Cost evaluates the phase model for span s, returning the total
// per-processor time, the level count, and the (relocation, execution,
// exchange) breakdown.
func multi2Cost(n, p, m, steps, s int, noRearrange bool) (float64, int, [3]float64, error) {
	nf, pf, mf, sf := float64(n), float64(p), float64(m), float64(s)
	vol := nf * float64(steps+1)
	regionSide := math.Sqrt(nf / pf)

	kernel, err := blocked2Kernel(s, m)
	if err != nil {
		return 0, 0, [3]float64{}, err
	}
	// κ keeps the relocation/exchange phases commensurate with the
	// measured kernel's machinery constant (same rationale as MultiD1).
	perVertex := math.Min(sf, mf*analytic.Log(sf*sf/mf))
	theory := (sf * sf * sf / 2) * perVertex
	kap := kernel / theory
	if kap < 1 {
		kap = 1
	}

	levels := 0
	if sf < regionSide {
		levels = int(math.Round(math.Log2(regionSide / sf)))
	}
	distRed := math.Sqrt(pf)
	if noRearrange {
		distRed = 1
	}
	reloc := float64(levels) * kap * 3 * vol * mf / (distRed * pf)

	numKernelsPerProc := 4 * vol / (sf * sf * sf) / pf
	exec := numKernelsPerProc * kernel
	exchDist := regionSide
	if noRearrange {
		exchDist = math.Sqrt(nf) / 2
	}
	exch := numKernelsPerProc * kap * sf * sf * exchDist

	return reloc + exec + exch, levels, [3]float64{reloc, exec, exch}, nil
}

// blocked2Kernel measures the d = 2 per-domain execution kernel: a real
// BlockedD2 run of a span-s, s-step guest with density m, halved (the
// s × s × s box holds about two octahedra's worth of vertices). Cached
// per (s, m); spans are capped at 16 for calibration (the constant has
// converged by then) and scaled by volume.
//
// Unlike diamondKernel, the key needs no program fingerprint: the
// calibration guest is fixed internally (guest.AsNetwork{MixCA{Seed: 42}}
// below), never supplied by the caller, so (s, m) determines the
// measurement. sync.Map because exp.All calibrates concurrently.
var b2KernelCache sync.Map // [2]int -> float64

func blocked2Kernel(s, m int) (float64, error) {
	key := [2]int{s, m}
	if v, ok := b2KernelCache.Load(key); ok {
		return v.(float64), nil
	}
	if s < 2 {
		b2KernelCache.Store(key, 8.0)
		return 8, nil
	}
	cal := s
	if cal > 16 {
		cal = 16
	}
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 42}, Side: cal}
	res, err := BlockedD2(cal*cal, m, cal, 0, prog)
	if err != nil {
		return 0, err
	}
	k := float64(res.Time) / 2
	if cal != s {
		// Scale by dag volume (cal²·cal -> s²·s); the per-vertex cost is
		// span-dominated and grows ~linearly, so scale that too.
		k *= math.Pow(float64(s)/float64(cal), 4)
	}
	b2KernelCache.Store(key, k)
	return k, nil
}
