package simulate

import (
	"context"
	"testing"

	"bsmp/internal/guest"
)

// The unified kernel cache keys on (d, s, m, calibration-program
// fingerprint). The d = 2/3 geometries calibrate on a fixed internal
// guest, so their kernels — and hence the model times — must be
// caller-independent; d = 1 calibrates on the caller's program and must
// stay program-dependent (TestDiamondKernelProgramDependence).

func TestSpanKernelFixedGuestD2(t *testing.T) {
	a := guest.AsNetwork{G: guest.MixCA{Seed: 1}, Side: 8}
	b := guest.AsNetwork{G: guest.MixCA{Seed: 77}, Side: 8}
	ka, err := multiGeomD2.kernel(context.Background(), 4, 4, a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := multiGeomD2.kernel(context.Background(), 4, 4, b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("d=2 kernel depends on the caller's guest: %v vs %v", ka, kb)
	}
	ra, err := MultiD2(64, 4, 4, 8, a, Multi2Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := MultiD2(64, 4, 4, 8, b, Multi2Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Time != rb.Time {
		t.Errorf("d=2 model time depends on the caller's guest: %v vs %v", ra.Time, rb.Time)
	}
}

func TestSpanKernelFixedGuestD3(t *testing.T) {
	a := guest.AsNetwork{G: guest.MixCA{Seed: 1}, CubeSide: 4}
	b := guest.AsNetwork{G: guest.MixCA{Seed: 77}, CubeSide: 4}
	ka, err := multiGeomD3.kernel(context.Background(), 2, 4, a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := multiGeomD3.kernel(context.Background(), 2, 4, b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("d=3 kernel depends on the caller's guest: %v vs %v", ka, kb)
	}
	ra, err := MultiD3(64, 8, 4, 4, a, Multi3Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := MultiD3(64, 8, 4, 4, b, Multi3Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Time != rb.Time {
		t.Errorf("d=3 model time depends on the caller's guest: %v vs %v", ra.Time, rb.Time)
	}
}

func TestKernelCacheKeySeparatesDimensions(t *testing.T) {
	// Same (s, m) measured through different geometries must not collide:
	// the d field and the calibration fingerprint both discriminate.
	k2, err := multiGeomD2.kernel(context.Background(), 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	k3, err := multiGeomD3.kernel(context.Background(), 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k2 == k3 {
		t.Errorf("d=2 and d=3 kernels collide at %v for the same (s, m)", k2)
	}
}
