package simulate

import (
	"context"
	"errors"
	"testing"
	"time"

	"bsmp/internal/guest"
)

// Cancelling a context mid-recursion stops BlockedD2 at its next
// cooperative checkpoint: the call returns context.Canceled within a
// small wall-clock bound instead of finishing the remaining (large)
// simulation.
func TestBlockedD2CancelMidRecursion(t *testing.T) {
	// Sized so the recursion reports progress within the watch deadline
	// even under the race detector (the previous 4096/steps=128 tuple
	// spent its whole deadline in pre-recursion setup under -race), while
	// still running long enough that cancellation lands mid-recursion.
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 3}, Side: 32}
	var p Progress
	ctx, cancel := context.WithCancel(WithProgress(context.Background(), &p))
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := BlockedD2Context(ctx, 1024, 4, 64, 0, prog)
		done <- err
	}()
	// Wait until the run has demonstrably entered the recursion (the
	// progress meter only advances from inside the executor), then pull
	// the plug.
	deadline := time.Now().Add(10 * time.Second)
	for p.Vertices.Load() == 0 && p.Phases.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("simulation never reported progress")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("BlockedD2Context after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("BlockedD2Context did not return promptly after cancellation")
	}
}

// The planning recursion (spaceNeeded) walks the whole domain tree
// before the first simulated vertex — seconds of work at this size. A
// pre-cancelled context must abort out of planning, not only at the
// first execution checkpoint after planning completes (which it did
// once: ~12s of uncancellable setup for this very tuple).
func TestBlockedPlanningCancellable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	grid := guest.AsNetwork{G: guest.MixCA{Seed: 3}, Side: 64}
	start := time.Now()
	_, err := BlockedD2Context(ctx, 4096, 4, 513, 0, grid)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BlockedD2Context with pre-cancelled ctx = %v, want context.Canceled", err)
	}
	// The fixed path unwinds in milliseconds; the bound is generous to
	// absorb slow machines and -race, while still far below the seconds
	// the unfixed planning recursion burned.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled planning took %v, want prompt unwind", elapsed)
	}
}

// An already-cancelled context stops every engine at its first
// checkpoint; none of them runs the simulation to completion.
func TestPreCancelledContextStopsEveryEngine(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	line := guest.AsNetwork{G: guest.MixCA{Seed: 3}}
	grid := guest.AsNetwork{G: guest.MixCA{Seed: 3}, Side: 8}
	runs := map[string]func() error{
		"NaiveContext": func() error {
			_, err := NaiveContext(ctx, 1, 64, 4, 4, 64, line)
			return err
		},
		"UniDCContext": func() error {
			_, err := UniDCContext(ctx, 1, 64, 64, 8, guest.Rule90{})
			return err
		},
		"UniNaiveDagContext": func() error {
			_, err := UniNaiveDagContext(ctx, 1, 64, 64, guest.Rule90{})
			return err
		},
		"BlockedD1Context": func() error {
			_, err := BlockedD1Context(ctx, 64, 4, 64, 0, line)
			return err
		},
		"BlockedD2Context": func() error {
			_, err := BlockedD2Context(ctx, 64, 4, 8, 0, grid)
			return err
		},
		"MultiD1Context": func() error {
			_, err := MultiD1Context(ctx, 64, 4, 4, 64, line, MultiOptions{})
			return err
		},
		"CoopBlockContext": func() error {
			_, err := CoopBlockContext(ctx, 64, 4, 16, 8, 64, line)
			return err
		},
		"GuestTimeContext": func() error {
			_, err := GuestTimeContext(ctx, 1, 64, 4, 64, line)
			return err
		},
		"RunSchemeContext": func() error {
			_, err := RunSchemeContext(ctx, "blocked", 1, 64, 1, 4, 64, line, SchemeConfig{})
			return err
		},
	}
	for name, run := range runs {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with pre-cancelled ctx = %v, want context.Canceled", name, err)
		}
	}
}

// A live but never-cancelled context must not perturb the cost model:
// the virtual times are bit-identical to the context-free run, while the
// attached Progress observes real forward motion. This exercises the
// done != nil path of the execution context (context.Background takes
// the done == nil fast path).
func TestGoldenTimesBitIdenticalUnderLiveContext(t *testing.T) {
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 3}}
	base, err := BlockedD1(64, 4, 16, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	var p Progress
	ctx, cancel := context.WithCancel(WithProgress(context.Background(), &p))
	defer cancel()
	got, err := BlockedD1Context(ctx, 64, 4, 16, 0, prog)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != base.Time {
		t.Errorf("Time under live ctx = %v, want bit-identical %v", got.Time, base.Time)
	}
	if got.Space != base.Space {
		t.Errorf("Space under live ctx = %d, want %d", got.Space, base.Space)
	}
	if p.Vertices.Load() == 0 {
		t.Error("Progress.Vertices never advanced during the run")
	}
	if p.Phases.Load() == 0 {
		t.Error("Progress.Phases never advanced during the run")
	}

	mbase, err := MultiD1(64, 4, 4, 64, prog, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mgot, err := MultiD1Context(ctx, 64, 4, 4, 64, prog, MultiOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mgot.Time != mbase.Time || mgot.PrepTime != mbase.PrepTime {
		t.Errorf("MultiD1 under live ctx = (%v, %v), want (%v, %v)",
			mgot.Time, mgot.PrepTime, mbase.Time, mbase.PrepTime)
	}
}

// The unified memo store honors its capacity bound with FIFO eviction
// and accurate hit/miss/eviction counters (exercised here through the
// kernel-kind adapter a fresh local store instance).
func TestKernelCacheBounded(t *testing.T) {
	const cap_ = 64
	c := &memoStore{capacity: cap_, entries: make(map[memoID]memoVal), stats: make(map[levelID]*levelCounters)}
	const extra = 10
	for i := 0; i < cap_+extra; i++ {
		c.store(memoKernel, 0, kernelKey{d: 1, s: i, m: 1}, float64(i))
	}
	snap := func() (int, int64, int64, int64) {
		c.mu.Lock()
		defer c.mu.Unlock()
		var h, ms, ev int64
		for _, lc := range c.stats {
			h += lc.hits
			ms += lc.misses
			ev += lc.evicted
		}
		return len(c.entries), h, ms, ev
	}
	entries, _, _, evictions := snap()
	if entries != cap_ {
		t.Errorf("entries = %d, want cap %d", entries, cap_)
	}
	if evictions != extra {
		t.Errorf("evictions = %d, want %d", evictions, extra)
	}
	// FIFO: the first `extra` keys are gone, the newest survive.
	if _, ok := c.load(memoKernel, 0, kernelKey{d: 1, s: 0, m: 1}); ok {
		t.Error("oldest entry survived past capacity")
	}
	if v, ok := c.load(memoKernel, 0, kernelKey{d: 1, s: cap_ + extra - 1, m: 1}); !ok || v.(float64) != float64(cap_+extra-1) {
		t.Errorf("newest entry = %v, %t; want value and true", v, ok)
	}
	_, hits, misses, _ := snap()
	if hits != 1 || misses != 1 {
		t.Errorf("hits, misses = %d, %d; want 1, 1", hits, misses)
	}
	// Re-storing an existing key updates in place without eviction.
	c.store(memoKernel, 0, kernelKey{d: 1, s: cap_ + extra - 1, m: 1}, 99.0)
	entries2, _, _, evictions2 := snap()
	if entries2 != cap_ || evictions2 != extra {
		t.Errorf("after update-in-place: entries %d evictions %d, want %d %d",
			entries2, evictions2, cap_, extra)
	}
	// Shrinking the capacity evicts down; a non-positive capacity
	// disables the store entirely.
	c.setCapacity(8)
	if e, _, _, _ := snap(); e != 8 {
		t.Errorf("after shrink: entries = %d, want 8", e)
	}
	c.setCapacity(0)
	if e, _, _, _ := snap(); e != 0 {
		t.Errorf("disabled store holds %d entries, want 0", e)
	}
	c.store(memoKernel, 0, kernelKey{d: 1, s: 1, m: 1}, 1.0)
	if _, ok := c.load(memoKernel, 0, kernelKey{d: 1, s: 1, m: 1}); ok {
		t.Error("disabled store served a hit")
	}
}

// While a run is live, a concurrently sampled Progress must be monotone
// non-decreasing in both counters, and once the run returns the counters
// settle at the totals of an identical reference run. The kernel cache
// is warmed first so the reference and the sampled run skip the same
// calibrations and count the same work.
func TestProgressMonotoneWhileLive(t *testing.T) {
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 9}}
	const n, p_, m, steps = 256, 8, 16, 64
	if _, err := MultiD1(n, p_, m, steps, prog, MultiOptions{}); err != nil {
		t.Fatal(err) // cache warm-up
	}
	var ref Progress
	if _, err := MultiD1Context(WithProgress(context.Background(), &ref), n, p_, m, steps, prog, MultiOptions{}); err != nil {
		t.Fatal(err)
	}

	var live Progress
	done := make(chan error, 1)
	go func() {
		_, err := MultiD1Context(WithProgress(context.Background(), &live), n, p_, m, steps, prog, MultiOptions{})
		done <- err
	}()

	deadline := time.After(30 * time.Second)
	var lastV, lastP int64
	samples := 0
sampling:
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			break sampling
		case <-deadline:
			t.Fatal("run did not finish within 30s")
		default:
		}
		v, ph := live.Vertices.Load(), live.Phases.Load()
		if v < lastV {
			t.Fatalf("Vertices regressed: %d after %d", v, lastV)
		}
		if ph < lastP {
			t.Fatalf("Phases regressed: %d after %d", ph, lastP)
		}
		lastV, lastP = v, ph
		samples++
	}
	if samples == 0 {
		t.Fatal("sampled the progress meter zero times")
	}

	// Settled totals match the reference run exactly.
	if got, want := live.Vertices.Load(), ref.Vertices.Load(); got != want {
		t.Errorf("final Vertices = %d, want reference total %d", got, want)
	}
	if got, want := live.Phases.Load(), ref.Phases.Load(); got != want {
		t.Errorf("final Phases = %d, want reference total %d", got, want)
	}
	if lastV > live.Vertices.Load() || lastP > live.Phases.Load() {
		t.Error("final totals below the last live sample")
	}
}
