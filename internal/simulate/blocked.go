package simulate

import (
	"fmt"

	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
)

// BlockedD1 runs Theorem 3's uniprocessor simulation of M1(n, n, m) for
// general m: the divide-and-conquer of Theorem 2 where the unit of
// relocation is a node's entire m-word private memory, recursing on
// diamonds down to "executable diamonds" of width ~m that are simulated
// naively in place.
//
// Two kinds of values flow through the recursion:
//
//   - broadcast values: one word per dag vertex (x, t), the Definition 3
//     operand exchanged with neighbors; and
//   - column images: the m-word private memory of guest node x "before
//     step t", consumed at the first step a domain simulates for column x
//     and handed off (renamed in place, free) to the next domain in time.
//
// Both are managed with real addresses on a single f(x) = x/m H-RAM, with
// every relocation paying per-word access costs, so the measured virtual
// time is first-principles. Expected slowdown: Θ(n·min(n, m·Log(n/m))),
// with the executable-diamond width as the knob ablated by the benchmarks.
//
// leafWidth <= 0 selects the paper's choice: the memory density m.
//
// Passing hram.WithPipelinedBlocks() as an option models the paper's
// concluding alternative — "memory enhanced with pipelining capabilities
// that would permit issuing a memory request before all the previous ones
// have been satisfied" — under which block relocations cost latency plus
// length instead of length times latency, and the locality slowdown
// largely disappears (experiment E-PIPE).
func BlockedD1(n, m, steps, leafWidth int, prog network.Program, opts ...hram.Option) (Result, error) {
	if leafWidth <= 0 {
		leafWidth = m
	}
	if leafWidth < 2 {
		leafWidth = 2
	}
	g := dag.NewLineGraph(n, steps+1)
	root := g.Domain()
	iw := m
	if mu, ok := prog.(MemUser); ok {
		iw = mu.MemWords(m)
		if iw < 1 || iw > m {
			return Result{}, fmt.Errorf("simulate: MemWords(%d) = %d out of range", m, iw)
		}
	}
	b := &blockedExec{
		g: g, prog: prog, n: n, m: m, iw: iw, steps: steps, leafWidth: leafWidth,
		loc: make(map[bkey]int, 4*n),
	}
	space := b.spaceNeeded(root)
	var meter cost.Meter
	b.mach = hram.New(space, hram.Standard(1, m), &meter, opts...)
	if err := b.exec(root, space); err != nil {
		return Result{}, err
	}

	out := make([]hram.Word, n)
	mems := make([][]hram.Word, n)
	staticBuf := make([]hram.Word, m)
	for x := 0; x < n; x++ {
		addr, ok := b.loc[bkey{false, x, steps}]
		if !ok {
			return Result{}, fmt.Errorf("simulate: missing final broadcast of node %d", x)
		}
		out[x] = b.mach.Peek(addr)
		base, ok := b.loc[bkey{true, x, steps + 1}]
		if !ok {
			return Result{}, fmt.Errorf("simulate: missing final memory of node %d", x)
		}
		mems[x] = make([]hram.Word, m)
		for i := 0; i < iw; i++ {
			mems[x][i] = b.mach.Peek(base + i)
		}
		if iw < m {
			// Cells beyond the declared live region are never addressed;
			// they retain their initial contents.
			for i := range staticBuf {
				staticBuf[i] = 0
			}
			b.prog.Init(x, staticBuf)
			copy(mems[x][iw:], staticBuf[iw:])
		}
	}
	return Result{
		Outputs:  out,
		Memories: mems,
		Time:     meter.Now(),
		Ledger:   meter.Ledger,
		Steps:    steps,
	}, nil
}

// MemUser is an optional interface for programs that touch only the first
// MemWords() cells of each node's m-word memory. The blocked simulation
// then relocates only those words, realizing the paper's concluding
// observation that "if an algorithm for n processors actually requires m'
// memory cells per processor, with m' < m, more locality will result in
// implementations with p processors".
type MemUser interface {
	// MemWords reports m': the number of cells actually addressed,
	// given the machine's density m. Must satisfy 1 <= m' <= m, and
	// Address must always return values below m'.
	MemWords(memSize int) int
}

// bkey identifies a flowing value: a broadcast word (mem = false: the value
// of dag vertex (x, t)) or a column image (mem = true: node x's m'-word
// live memory before step t; t = steps+1 is the final memory).
type bkey struct {
	mem  bool
	x, t int
}

type blockedExec struct {
	g         dag.LineGraph
	prog      network.Program
	n, m      int
	iw        int // image words actually relocated: m' <= m (MemUser)
	steps     int
	leafWidth int
	mach      *hram.Machine
	loc       map[bkey]int
}

// colSpan is a column's contiguous vertex-time interval within a domain.
type colSpan struct {
	x, ta, tb int // vertex times [ta, tb] present in the domain
}

// columns returns the per-column time spans of dom, ordered by x.
func (b *blockedExec) columns(dom lattice.Domain) []colSpan {
	first := make(map[int]int)
	last := make(map[int]int)
	var xs []int
	dom.Points(func(p lattice.Point) bool {
		if ta, ok := first[p.X]; !ok || p.T < ta {
			if !ok {
				xs = append(xs, p.X)
			}
			first[p.X] = p.T
		}
		if tb, ok := last[p.X]; !ok || p.T > tb {
			last[p.X] = p.T
		}
		return true
	})
	// Points enumerates by (T, X): xs is in first-seen order; sort by x.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	spans := make([]colSpan, len(xs))
	for i, x := range xs {
		spans[i] = colSpan{x: x, ta: first[x], tb: last[x]}
	}
	return spans
}

// memIn returns the image keys dom consumes: Mem(x, ta) for each column
// whose first simulated vertex time ta is >= 1 (ta = 0 columns materialize
// their own image from prog.Init).
func (b *blockedExec) memIn(spans []colSpan) []bkey {
	var in []bkey
	for _, s := range spans {
		if s.ta >= 1 {
			in = append(in, bkey{true, s.x, s.ta})
		}
	}
	return in
}

// inSize is the word count of a domain's incoming data: one word per
// preboundary broadcast value plus m words per consumed image.
func (b *blockedExec) inSize(dom lattice.Domain, spans []colSpan) int {
	return len(dag.Preboundary(b.g, dom)) + b.iw*len(b.memIn(spans))
}

// isLeaf reports whether dom is executed naively in place.
func (b *blockedExec) isLeaf(dom lattice.Domain) bool {
	return dom.Span() <= b.leafWidth || dom.Children() == nil
}

// spaceNeeded mirrors separator.SpaceNeeded for the two-kind value flow.
func (b *blockedExec) spaceNeeded(dom lattice.Domain) int {
	spans := b.columns(dom)
	in := b.inSize(dom, spans)
	if b.isLeaf(dom) {
		// Working space: every column image resident plus one word per
		// vertex for broadcast values.
		return len(spans)*b.iw + dom.Size() + in
	}
	smax, stage := 0, 0
	for _, kid := range dom.Children() {
		if s := b.spaceNeeded(kid); s > smax {
			smax = s
		}
		kidSpans := b.columns(kid)
		stage += len(dag.LiveOut(b.g, kid)) + b.iw*len(kidSpans)
	}
	return smax + stage + in
}

// exec implements the Proposition 2 recursion for the blocked value flow.
// Contract: incoming keys (preboundary broadcasts and consumed images)
// have valid loc addresses on entry; on exit, live-out broadcasts and the
// produced images Mem(x, tb+1) have valid loc addresses.
func (b *blockedExec) exec(dom lattice.Domain, space int) error {
	if b.isLeaf(dom) {
		return b.execLeaf(dom)
	}
	// The incoming slot occupies [space-inSize, space); staging grows
	// downward from its floor.
	stagePtr := space - b.inSize(dom, b.columns(dom))

	for _, kid := range dom.Children() {
		kidSpans := b.columns(kid)
		kidGin := dag.Preboundary(b.g, kid)
		kidMemIn := b.memIn(kidSpans)
		skid := b.spaceNeeded(kid)

		// Copy incoming data into the child's top slot: images first,
		// then broadcast words.
		type saved struct {
			k    bkey
			addr int
		}
		var overrides []saved
		dst := skid - b.inSize(kid, kidSpans)
		if dst < 0 {
			return fmt.Errorf("simulate: child slot underflow in %v", kid)
		}
		for _, k := range kidMemIn {
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: image %v unavailable for %v", k, kid)
			}
			b.mach.BlockCopy(dst, src, b.iw)
			overrides = append(overrides, saved{k, src})
			b.loc[k] = dst
			dst += b.iw
		}
		for _, q := range kidGin {
			k := bkey{false, q.X, q.T}
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: broadcast %v unavailable for %v", k, kid)
			}
			b.mach.MoveWord(dst, src)
			overrides = append(overrides, saved{k, src})
			b.loc[k] = dst
			dst++
		}

		if err := b.exec(kid, skid); err != nil {
			return err
		}

		// Persist the child's products into staging: produced images and
		// live-out broadcasts.
		for _, s := range kidSpans {
			k := bkey{true, s.x, s.tb + 1}
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: produced image %v missing after %v", k, kid)
			}
			stagePtr -= b.iw
			if stagePtr < skid {
				return fmt.Errorf("simulate: staging underflow in %v", dom)
			}
			b.mach.BlockCopy(stagePtr, src, b.iw)
			b.loc[k] = stagePtr
		}
		live := dag.LiveOut(b.g, kid)
		liveSet := make(map[lattice.Point]bool, len(live))
		for _, v := range live {
			liveSet[v] = true
			k := bkey{false, v.X, v.T}
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: live-out %v missing after %v", k, kid)
			}
			stagePtr--
			if stagePtr < skid {
				return fmt.Errorf("simulate: staging underflow in %v", dom)
			}
			b.mach.MoveWord(stagePtr, src)
			b.loc[k] = stagePtr
		}

		// Restore incoming keys to the parent copies, then drop dead
		// entries: consumed images and non-live broadcasts of the child.
		for _, s := range overrides {
			b.loc[s.k] = s.addr
		}
		for _, k := range kidMemIn {
			delete(b.loc, k)
		}
		kid.Points(func(p lattice.Point) bool {
			if !liveSet[p] {
				delete(b.loc, bkey{false, p.X, p.T})
			}
			return true
		})
	}
	return nil
}

// execLeaf simulates the domain naively in place: all column images
// resident at the bottom of the workspace, broadcast values above them.
func (b *blockedExec) execLeaf(dom lattice.Domain) error {
	spans := b.columns(dom)
	imageBase := make(map[int]int, len(spans))
	next := 0
	for _, s := range spans {
		imageBase[s.x] = next
		next += b.iw
	}
	// Bring consumed images local.
	for _, s := range spans {
		if s.ta >= 1 {
			k := bkey{true, s.x, s.ta}
			src, ok := b.loc[k]
			if !ok {
				return fmt.Errorf("simulate: image %v unavailable in leaf %v", k, dom)
			}
			b.mach.BlockCopy(imageBase[s.x], src, b.iw)
			b.loc[k] = imageBase[s.x]
		}
	}
	var buf []lattice.Point
	ops := make([]hram.Word, 0, 3)
	initMem := make([]hram.Word, b.m)
	var fail error
	dom.Points(func(p lattice.Point) bool {
		base := imageBase[p.X]
		if p.T == 0 {
			// Materialize the initial state. The initial memory image is
			// an input: it sits in the host's memory from the start (the
			// paper charges only its relocation, which the recursion's
			// BlockCopy calls do), so Poke is free; the broadcast value
			// of the input vertex (x, 0) costs one op and one write.
			for i := range initMem {
				initMem[i] = 0
			}
			bv := b.prog.Init(p.X, initMem)
			for i, w := range initMem[:b.iw] {
				b.mach.Poke(base+i, w)
			}
			b.mach.Op()
			b.mach.Write(next, bv)
			b.loc[bkey{false, p.X, 0}] = next
			next++
			return true
		}
		cellOff := b.prog.Address(p.X, p.T, b.m)
		if cellOff >= b.iw {
			fail = fmt.Errorf("simulate: address %d beyond declared live memory %d", cellOff, b.iw)
			return false
		}
		addr := base + cellOff
		cell := b.mach.Read(addr)
		// Operands in network order: (self, left, right) at t-1.
		ops = ops[:0]
		buf = buf[:0]
		buf = append(buf, lattice.Point{X: p.X, T: p.T - 1})
		if p.X > 0 {
			buf = append(buf, lattice.Point{X: p.X - 1, T: p.T - 1})
		}
		if p.X < b.n-1 {
			buf = append(buf, lattice.Point{X: p.X + 1, T: p.T - 1})
		}
		for _, q := range buf {
			a, ok := b.loc[bkey{false, q.X, q.T}]
			if !ok {
				fail = fmt.Errorf("simulate: operand %v of %v unavailable in leaf", q, p)
				return false
			}
			ops = append(ops, b.mach.Read(a))
		}
		out, cellOut := b.prog.Step(p.X, p.T, cell, ops)
		b.mach.Op()
		b.mach.Write(addr, cellOut)
		b.mach.Write(next, out)
		b.loc[bkey{false, p.X, p.T}] = next
		next++
		return true
	})
	if fail != nil {
		return fail
	}
	// Rename images in place: consumed Mem(x, ta) becomes produced
	// Mem(x, tb+1) at zero cost.
	for _, s := range spans {
		delete(b.loc, bkey{true, s.x, s.ta})
		b.loc[bkey{true, s.x, s.tb + 1}] = imageBase[s.x]
	}
	return nil
}
