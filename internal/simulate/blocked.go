package simulate

import (
	"context"

	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
)

// BlockedD1 runs Theorem 3's uniprocessor simulation of M1(n, n, m) for
// general m: the divide-and-conquer of Theorem 2 where the unit of
// relocation is a node's entire m-word private memory, recursing on
// diamonds down to "executable diamonds" of width ~m that are simulated
// naively in place.
//
// Two kinds of values flow through the recursion:
//
//   - broadcast values: one word per dag vertex (x, t), the Definition 3
//     operand exchanged with neighbors; and
//   - column images: the m-word private memory of guest node x "before
//     step t", consumed at the first step a domain simulates for column x
//     and handed off (renamed in place, free) to the next domain in time.
//
// Both are managed with real addresses on a single f(x) = x/m H-RAM, with
// every relocation paying per-word access costs, so the measured virtual
// time is first-principles. Expected slowdown: Θ(n·min(n, m·Log(n/m))),
// with the executable-diamond width as the knob ablated by the benchmarks.
//
// leafWidth <= 0 selects the paper's choice: the memory density m.
//
// Passing hram.WithPipelinedBlocks() as an option models the paper's
// concluding alternative — "memory enhanced with pipelining capabilities
// that would permit issuing a memory request before all the previous ones
// have been satisfied" — under which block relocations cost latency plus
// length instead of length times latency, and the locality slowdown
// largely disappears (experiment E-PIPE).
//
// The recursion itself lives in blocked_exec.go, shared with BlockedD2
// and BlockedD3; this wrapper supplies the line geometry: node id = x,
// operand stencil (self, left, right), columns sorted by ascending x.
func BlockedD1(n, m, steps, leafWidth int, prog network.Program, opts ...hram.Option) (Result, error) {
	return BlockedD1Context(context.Background(), n, m, steps, leafWidth, prog, opts...)
}

// BlockedD1Context is BlockedD1 under a context: cancellation is checked
// at every recursion boundary and (amortized) every checkInterval leaf
// vertices, and step progress is reported to any attached Progress. The
// checks are host-side only, so a never-cancelled run's virtual times
// are bit-identical to BlockedD1's.
func BlockedD1Context(ctx context.Context, n, m, steps, leafWidth int, prog network.Program, opts ...hram.Option) (Result, error) {
	if e := validateBlocked(1, n, m, steps); e != nil {
		return Result{}, e
	}
	if leafWidth <= 0 {
		leafWidth = m
	}
	if leafWidth < 2 {
		leafWidth = 2
	}
	g := dag.NewLineGraph(n, steps+1)
	iw, err := imageWords(prog, m)
	if err != nil {
		return Result{}, err
	}
	geom := blockedGeom{
		nodeIndex: func(p lattice.Point) int { return p.X },
		nodePos:   func(node int) lattice.Point { return lattice.Point{X: node} },
		netPreds: func(p lattice.Point, buf []lattice.Point) []lattice.Point {
			// Operands in network order: (self, left, right) at t-1.
			buf = append(buf, lattice.Point{X: p.X, T: p.T - 1})
			if p.X > 0 {
				buf = append(buf, lattice.Point{X: p.X - 1, T: p.T - 1})
			}
			if p.X < n-1 {
				buf = append(buf, lattice.Point{X: p.X + 1, T: p.T - 1})
			}
			return buf
		},
		sortCols: true,
	}
	b := newBlockedExec(ctx, g, prog, m, iw, steps, leafWidth, geom)
	root := g.Domain()
	space, err := b.spaceNeeded(root)
	if err != nil {
		return Result{}, err
	}
	var meter cost.Meter
	b.mach = hram.New(space, hram.Standard(1, m), &meter, opts...)
	if memoEnabled(ctx) {
		b.enableMemo(&meter)
	}
	if err := b.exec(root, space, 0); err != nil {
		return Result{}, err
	}
	// Replayed subtrees charge the meter without writing machine memory,
	// so when any subtree replayed the outputs are recomputed guest-side
	// (value-independent charges make this sound; Verify still works).
	var out []hram.Word
	var mems [][]hram.Word
	if b.replayed > 0 {
		out, mems, err = network.RunGuestPureHook(1, n, m, steps, prog, b.ec.hook())
	} else {
		out, mems, err = b.collect(n)
	}
	if err != nil {
		return Result{}, err
	}
	return Result{
		Outputs:  out,
		Memories: mems,
		Time:     meter.Now(),
		Ledger:   meter.Ledger,
		Steps:    steps,
		Space:    space,
	}, nil
}

// MemUser is an optional interface for programs that touch only the first
// MemWords() cells of each node's m-word memory. The blocked simulation
// then relocates only those words, realizing the paper's concluding
// observation that "if an algorithm for n processors actually requires m'
// memory cells per processor, with m' < m, more locality will result in
// implementations with p processors".
type MemUser interface {
	// MemWords reports m': the number of cells actually addressed,
	// given the machine's density m. Must satisfy 1 <= m' <= m, and
	// Address must always return values below m'.
	MemWords(memSize int) int
}
