package simulate

import (
	"context"
	"fmt"
	"sort"

	"bsmp/internal/cost"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
)

// This file is the analytic fast path of the blocked d = 1 recursion:
// AnalyticBlockedD1 computes the virtual time and cost ledger of the
// BlockedD1 simulation WITHOUT materializing the machine — no hram
// memory, no guest values, no O(volume) state. Charges are derived from
// the same formulas hram.Machine uses (f(x) = max(1, x/m) per access,
// per-word block transfers), addresses are tracked in sparse maps, and
// every congruent recursion subtree beyond the first is replayed as one
// summed (clock delta, ledger delta) via the unified memo store
// (kind = analytic). Geometry is enumerated per COLUMN, not per vertex:
// a diamond's columns, preboundary, and live-out set are all O(width),
// so a memoized run costs O(boundary work + leaf classes), making
// lattice volumes of 10^9+ (n = 2^20 × steps = 2^10) tractable in
// seconds where the exact engine would need hours and ~10 GB.
//
// What the analytic path does NOT provide: guest outputs (Result.Outputs
// and Result.Memories are nil — no prog.Init/Step is ever called) and
// bit-identity with the exact engine (deltas are replayed as sums, so
// totals agree only to float regrouping, pinned at 1e-9 relative by
// TestAnalyticMatchesExact; the Compute ledger is exact: one unit per
// vertex). Validation for sizes the exact engine cannot reach is against
// the work/span laws (Brent) and the model's Theorem 3 predictions — see
// the E-BRENT experiment.
//
// Interior broadcast-address cleanup is skipped (the exact engine's
// kid.Points deletion loop is O(volume)): stale map entries are never
// read again because every preboundary a future subtree consumes is
// rebound by its parent's copy-in before use (the ordered-partition
// property), and entries accumulate only from real — class-miss — leaf
// executions, which the memo keeps rare.

// analyticExec carries the run state of one analytic simulation.
type analyticExec struct {
	n, m, iw, steps, leafSpan int
	prog                      network.Program
	meter                     *cost.Meter
	fn                        hram.AccessFunc
	ec                        *execCtx

	bcast map[lattice.Point]int
	mem   map[lattice.Point]int

	space      map[lattice.Diamond]int
	classSpace map[subtreeKey]int

	memoOn   bool
	progFP   string
	replayed int
}

// f is the host access function — hram.Standard(1, m) itself rather
// than a local re-derivation, so the d = 1 assumption lives in the hram
// layer, not here. The engine's address-as-distance accounting is valid
// because the guest M1(n, n, m) has topology spacing exactly 1 (a
// Mesh1 with p = n), so address deltas ARE geometric distances; a
// d >= 2 analytic engine would draw its access function and spacing
// from the corresponding mesh the same way.
func (a *analyticExec) f(x int) float64 { return a.fn(x) }

// access mirrors Machine.Read / Machine.Write.
func (a *analyticExec) access(addr int) { a.meter.Charge(cost.Access, a.f(addr)) }

// op mirrors Machine.Op.
func (a *analyticExec) op() { a.meter.Charge(cost.Compute, 1) }

// blockCopy mirrors Machine.BlockCopy in the per-word (non-pipelined)
// model: one Transfer charge of sum f(src+i) + f(dst+i).
func (a *analyticExec) blockCopy(dst, src, k int) {
	if k == 0 {
		return
	}
	var total float64
	for i := 0; i < k; i++ {
		total += a.f(src+i) + a.f(dst+i)
	}
	a.meter.Charge(cost.Transfer, total)
}

// moveWord mirrors Machine.MoveWord.
func (a *analyticExec) moveWord(dst, src int) {
	a.meter.Charge(cost.Transfer, a.f(src)+a.f(dst))
}

func divFloor(p, q int) int {
	r := p / q
	if p%q != 0 && (p < 0) != (q < 0) {
		r--
	}
	return r
}

func divCeil(p, q int) int { return -divFloor(-p, q) }

// dXRange is the half-open x interval of d's columns: the bounding
// x-range of the rotated rectangle intersected with the clip.
func dXRange(d lattice.Diamond) (int, int) {
	x0 := divCeil(d.U0-(d.W0+d.RW-1), 2)
	x1 := divFloor(d.U0+d.RU-1-d.W0, 2) + 1
	if d.Clip.X0 > x0 {
		x0 = d.Clip.X0
	}
	if d.Clip.X1 < x1 {
		x1 = d.Clip.X1
	}
	return x0, x1
}

// dTa / dTb are column x's first and last vertex times: the (u, w)
// range constraints u = t+x in [U0, U0+RU) and w = t-x in [W0, W0+RW)
// solved for t, clamped to the clip's time range. The column is a
// contiguous interval — every integer (x, t) in range is a lattice
// point (u + w = 2t carries no parity constraint on (x, t)) — which is
// what makes all geometry here O(width) instead of O(volume).
func dTa(d lattice.Diamond, x int) int {
	ta := d.U0 - x
	if w := d.W0 + x; w > ta {
		ta = w
	}
	if d.Clip.T0 > ta {
		ta = d.Clip.T0
	}
	return ta
}

func dTb(d lattice.Diamond, x int) int {
	tb := d.U0 + d.RU - 1 - x
	if w := d.W0 + d.RW - 1 + x; w < tb {
		tb = w
	}
	if d.Clip.T1-1 < tb {
		tb = d.Clip.T1 - 1
	}
	return tb
}

// analyticColumns is b.columns for a diamond in O(width): the per-node
// time spans in ascending x (the d = 1 sortCols order).
func analyticColumns(d lattice.Diamond) []colSpan {
	x0, x1 := dXRange(d)
	spans := make([]colSpan, 0, x1-x0)
	for x := x0; x < x1; x++ {
		ta, tb := dTa(d, x), dTb(d, x)
		if ta > tb {
			continue
		}
		spans = append(spans, colSpan{pos: lattice.Point{X: x}, ta: ta, tb: tb})
	}
	return spans
}

// analyticHasAt reports whether (x, t) is a vertex of d.
func analyticHasAt(d lattice.Diamond, x, t int) bool {
	if x < d.Clip.X0 || x >= d.Clip.X1 {
		return false
	}
	ta, tb := dTa(d, x), dTb(d, x)
	return ta <= t && t <= tb
}

// analyticPreboundary replicates dag.Preboundary(LineGraph(n, ·), d)
// exactly — same points, same first-encounter order — in O(width).
// Only vertices with t <= ta(x)+1 can have predecessors outside the
// domain: a vertex at t >= ta(x)+2 has all three preds at t-1 >= ta(x)+1
// inside (|ta(x±1) - ta(x)| <= 1 and t-1 <= tb(x)-1 <= tb(x±1); an empty
// adjacent column occurs only at diamond tips, whose columns have height
// <= 2 and are inside the band anyway, or at the machine edge, where the
// pred is outside the graph). The band is enumerated in global (T, X)
// vertex order with predecessors in LineGraph.Preds order (left, self,
// right), reproducing the exact first-encounter sequence.
func analyticPreboundary(d lattice.Diamond, n int) []lattice.Point {
	spans := analyticColumns(d)
	type bp struct{ x, t int }
	var band []bp
	for _, s := range spans {
		top := s.ta + 1
		if top > s.tb {
			top = s.tb
		}
		for t := s.ta; t <= top; t++ {
			band = append(band, bp{s.pos.X, t})
		}
	}
	// Global (T, X) vertex order; all keys distinct.
	sort.Slice(band, func(i, j int) bool {
		return band[i].t < band[j].t || (band[i].t == band[j].t && band[i].x < band[j].x)
	})
	var out []lattice.Point
	seen := make(map[lattice.Point]bool)
	for _, p := range band {
		if p.t == 0 {
			continue // no predecessors in the graph
		}
		for _, dx := range [3]int{-1, 0, 1} { // LineGraph.Preds order
			x := p.x + dx
			if x < 0 || x >= n {
				continue
			}
			if analyticHasAt(d, x, p.t-1) {
				continue
			}
			q := lattice.Point{X: x, T: p.t - 1}
			if !seen[q] {
				seen[q] = true
				out = append(out, q)
			}
		}
	}
	return out
}

// analyticLiveOut replicates dag.LiveOut(LineGraph(n, steps+1), d)
// exactly in O(width). Only vertices with t >= tb(x)-1 can have a
// successor outside the domain (the mirror of the preboundary band
// argument), and the final layer t = steps is always live.
func analyticLiveOut(d lattice.Diamond, n, steps int) []lattice.Point {
	spans := analyticColumns(d)
	type bp struct{ x, t int }
	var band []bp
	for _, s := range spans {
		lo := s.tb - 1
		if lo < s.ta {
			lo = s.ta
		}
		for t := lo; t <= s.tb; t++ {
			band = append(band, bp{s.pos.X, t})
		}
	}
	sort.Slice(band, func(i, j int) bool {
		return band[i].t < band[j].t || (band[i].t == band[j].t && band[i].x < band[j].x)
	})
	var out []lattice.Point
	for _, p := range band {
		if p.t == steps {
			out = append(out, lattice.Point{X: p.x, T: p.t})
			continue
		}
		for _, dx := range [3]int{-1, 0, 1} { // LineGraph.Succs order
			x := p.x + dx
			if x < 0 || x >= n {
				continue
			}
			if !analyticHasAt(d, x, p.t+1) {
				out = append(out, lattice.Point{X: p.x, T: p.t})
				break
			}
		}
	}
	return out
}

func (a *analyticExec) isLeaf(d lattice.Diamond) bool {
	return d.Span() <= a.leafSpan || d.Children() == nil
}

// keyFor is subtreeKeyFor for the analytic engine: d = 1 line geometry
// (stride 0), never pipelined. Analytic records live under their own
// memo kind, so they can never collide with exact-trace records.
func (a *analyticExec) keyFor(d lattice.Diamond) (subtreeKey, bool) {
	shape, ok := canonicalDomain(d)
	if !ok {
		return subtreeKey{}, false
	}
	ref, ok := refPoint(d)
	if !ok {
		return subtreeKey{}, false
	}
	class, ok := progClass(a.prog, ref.X, ref.T, a.m)
	if !ok {
		return subtreeKey{}, false
	}
	return subtreeKey{
		d: 1, m: a.m, iw: a.iw, leafSpan: a.leafSpan,
		shape: shape, class: class, prog: a.progFP,
	}, true
}

// spaceNeeded mirrors blockedExec.spaceNeeded, memoized both per domain
// value and — decisively for huge n — per congruence class, so the
// recursion visits each class once instead of every domain.
func (a *analyticExec) spaceNeeded(d lattice.Diamond) int {
	if s, ok := a.space[d]; ok {
		return s
	}
	var key subtreeKey
	var keyOK bool
	if a.memoOn {
		if key, keyOK = a.keyFor(d); keyOK {
			if s, ok := a.classSpace[key]; ok {
				a.space[d] = s
				return s
			}
		}
	}
	spans := analyticColumns(d)
	in := len(analyticPreboundary(d, a.n)) + a.iw*memInCount(spans)
	var out int
	if a.isLeaf(d) {
		out = len(spans)*a.iw + d.Size() + in
	} else {
		smax, stage := 0, 0
		for _, kd := range d.Children() {
			kid := kd.(lattice.Diamond)
			if s := a.spaceNeeded(kid); s > smax {
				smax = s
			}
			stage += len(analyticLiveOut(kid, a.n, a.steps)) + a.iw*len(analyticColumns(kid))
		}
		out = smax + stage + in
	}
	a.space[d] = out
	if keyOK {
		a.classSpace[key] = out
	}
	return out
}

// execLeaf mirrors blockedExec.execLeaf charge for charge: image bases
// at the bottom of the workspace, vertices in global (T, X) order, one
// Op per vertex, reads of the addressed cell and the (self, left, right)
// operands, writes of the updated cell and the broadcast word. prog.Init
// and prog.Step are never called — charges are value-independent.
func (a *analyticExec) execLeaf(d lattice.Diamond, spans []colSpan) error {
	next := 0
	base := make(map[int]int, len(spans))
	for _, s := range spans {
		base[s.pos.X] = next
		next += a.iw
	}
	for _, s := range spans {
		if s.ta < 1 {
			continue
		}
		k := memKey(s.pos, s.ta)
		src, ok := a.mem[k]
		if !ok {
			return fmt.Errorf("simulate: analytic image %v unavailable in leaf %v", k, d)
		}
		a.blockCopy(base[s.pos.X], src, a.iw)
		a.mem[k] = base[s.pos.X]
	}
	tmin, tmax := spans[0].ta, spans[0].tb
	for _, s := range spans {
		if s.ta < tmin {
			tmin = s.ta
		}
		if s.tb > tmax {
			tmax = s.tb
		}
	}
	for t := tmin; t <= tmax; t++ { // global (T, X) vertex order
		for _, s := range spans {
			if t < s.ta || t > s.tb {
				continue
			}
			x := s.pos.X
			p := lattice.Point{X: x, T: t}
			if t == 0 {
				// Init vertex: Pokes of the initial image are free; the
				// broadcast value costs one op and one write.
				a.op()
				a.access(next)
				a.bcast[p] = next
				next++
				continue
			}
			cellOff := a.prog.Address(x, t, a.m)
			if cellOff >= a.iw {
				return fmt.Errorf("simulate: address %d beyond declared live memory %d", cellOff, a.iw)
			}
			addr := base[x] + cellOff
			a.access(addr) // read addressed cell
			// Operand reads in netPreds order: self, left, right.
			for _, dx := range [3]int{0, -1, 1} {
				qx := x + dx
				if qx < 0 || qx >= a.n {
					continue
				}
				q := lattice.Point{X: qx, T: t - 1}
				qa, ok := a.bcast[q]
				if !ok {
					return fmt.Errorf("simulate: analytic operand %v of %v unavailable", q, p)
				}
				a.access(qa)
			}
			a.op()
			a.access(addr) // write updated cell
			a.access(next) // write broadcast word
			a.bcast[p] = next
			next++
		}
	}
	if err := a.ec.step(d.Size()); err != nil {
		return err
	}
	for _, s := range spans {
		delete(a.mem, memKey(s.pos, s.ta))
		a.mem[memKey(s.pos, s.tb+1)] = base[s.pos.X]
	}
	return nil
}

// exec mirrors blockedExec.exec with summed-delta memoization.
func (a *analyticExec) exec(d lattice.Diamond, space int) error {
	spans := analyticColumns(d)
	if a.isLeaf(d) {
		return a.execLeaf(d, spans)
	}
	stagePtr := space - (len(analyticPreboundary(d, a.n)) + a.iw*memInCount(spans))
	for _, kd := range d.Children() {
		kid := kd.(lattice.Diamond)
		if err := a.ec.checkpoint(); err != nil {
			return err
		}
		var key subtreeKey
		var keyOK bool
		var rec *subtreeRecord
		if a.memoOn {
			if key, keyOK = a.keyFor(kid); keyOK {
				if v, ok := memo.load(memoAnalytic, memoLevel(kid.Span()), key); ok {
					rec = v.(*subtreeRecord)
				}
			}
		}
		spanName := "block"
		if rec != nil {
			spanName = "block:replayed"
		}
		sp := a.ec.tr.Start(spanName)
		var vt0 float64
		if sp != nil {
			vt0 = float64(a.meter.Now())
		}
		kidSpans := analyticColumns(kid)
		kidGin := analyticPreboundary(kid, a.n)
		live := analyticLiveOut(kid, a.n, a.steps)
		skid := a.spaceNeeded(kid)

		var overrides []savedAddr
		dst := skid - (len(kidGin) + a.iw*memInCount(kidSpans))
		if dst < 0 {
			return fmt.Errorf("simulate: analytic child slot underflow in %v", kid)
		}
		for _, s := range kidSpans {
			if s.ta < 1 {
				continue
			}
			k := memKey(s.pos, s.ta)
			src, ok := a.mem[k]
			if !ok {
				return fmt.Errorf("simulate: analytic image %v unavailable for %v", k, kid)
			}
			a.blockCopy(dst, src, a.iw)
			overrides = append(overrides, savedAddr{k, src, true})
			a.mem[k] = dst
			dst += a.iw
		}
		for _, q := range kidGin {
			src, ok := a.bcast[q]
			if !ok {
				return fmt.Errorf("simulate: analytic broadcast %v unavailable for %v", q, kid)
			}
			a.moveWord(dst, src)
			overrides = append(overrides, savedAddr{q, src, false})
			a.bcast[q] = dst
			dst++
		}

		if rec != nil {
			// Replay the whole subtree as one clock/ledger delta and
			// rebind products to their recorded child-frame addresses.
			a.meter.ApplyDelta(rec.dt, &rec.ledger)
			for i, s := range kidSpans {
				a.mem[memKey(s.pos, s.tb+1)] = rec.imgAddrs[i]
			}
			for i, v := range live {
				a.bcast[v] = rec.outAddrs[i]
			}
			a.replayed++
			if err := a.ec.step(kid.Size()); err != nil {
				return err
			}
		} else {
			t0 := a.meter.Now()
			led0 := a.meter.Ledger
			if err := a.exec(kid, skid); err != nil {
				return err // no publication on error: no poisoned records
			}
			if keyOK {
				nr := &subtreeRecord{
					dt: a.meter.Now() - t0, ledger: a.meter.Ledger.Sub(&led0),
					space:    skid,
					imgAddrs: make([]int, len(kidSpans)), outAddrs: make([]int, len(live)),
				}
				okAll := true
				for i, s := range kidSpans {
					addr, ok := a.mem[memKey(s.pos, s.tb+1)]
					if !ok {
						okAll = false
						break
					}
					nr.imgAddrs[i] = addr
				}
				for i, v := range live {
					addr, ok := a.bcast[v]
					if !ok {
						okAll = false
						break
					}
					nr.outAddrs[i] = addr
				}
				if okAll {
					memo.store(memoAnalytic, memoLevel(kid.Span()), key, nr)
				}
			}
		}

		for _, s := range kidSpans {
			k := memKey(s.pos, s.tb+1)
			src, ok := a.mem[k]
			if !ok {
				return fmt.Errorf("simulate: analytic produced image %v missing after %v", k, kid)
			}
			stagePtr -= a.iw
			if stagePtr < skid {
				return fmt.Errorf("simulate: analytic staging underflow in %v", d)
			}
			a.blockCopy(stagePtr, src, a.iw)
			a.mem[k] = stagePtr
		}
		for _, v := range live {
			src, ok := a.bcast[v]
			if !ok {
				return fmt.Errorf("simulate: analytic live-out %v missing after %v", v, kid)
			}
			stagePtr--
			if stagePtr < skid {
				return fmt.Errorf("simulate: analytic staging underflow in %v", d)
			}
			a.moveWord(stagePtr, src)
			a.bcast[v] = stagePtr
		}
		for _, s := range overrides {
			if s.mem {
				a.mem[s.p] = s.add
			} else {
				a.bcast[s.p] = s.add
			}
		}
		for _, s := range kidSpans {
			if s.ta >= 1 {
				delete(a.mem, memKey(s.pos, s.ta))
			}
		}
		// Interior broadcast cleanup intentionally skipped — see the file
		// comment; stale entries are never read again.
		if sp != nil {
			sp.SetAttr("size", float64(kid.Size()))
			sp.SetAttr("vtime", float64(a.meter.Now())-vt0)
			sp.End()
		}
	}
	return nil
}

// AnalyticBlockedD1 computes BlockedD1's virtual time, ledger, and space
// analytically — no machine state, no guest values, memoized subtree
// replay — making volumes far beyond the exact engine's reach tractable.
// Result.Outputs and Result.Memories are nil (there is nothing to
// verify guest-side; validate against the work/span laws instead).
func AnalyticBlockedD1(n, m, steps, leafWidth int, prog network.Program) (Result, error) {
	return AnalyticBlockedD1Context(context.Background(), n, m, steps, leafWidth, prog)
}

// AnalyticBlockedD1Context is AnalyticBlockedD1 under a context, with
// the same cancellation and progress contract as BlockedD1Context.
func AnalyticBlockedD1Context(ctx context.Context, n, m, steps, leafWidth int, prog network.Program) (Result, error) {
	if e := validateBlocked(1, n, m, steps); e != nil {
		return Result{}, e
	}
	if leafWidth <= 0 {
		leafWidth = m
	}
	if leafWidth < 2 {
		leafWidth = 2
	}
	iw, err := imageWords(prog, m)
	if err != nil {
		return Result{}, err
	}
	var meter cost.Meter
	a := &analyticExec{
		n: n, m: m, iw: iw, steps: steps, leafSpan: leafWidth,
		prog: prog, meter: &meter, fn: hram.Standard(1, m),
		ec:    newExecCtx(ctx),
		bcast: make(map[lattice.Point]int), mem: make(map[lattice.Point]int),
		space: make(map[lattice.Diamond]int), classSpace: make(map[subtreeKey]int),
	}
	if memoEnabled(ctx) {
		if _, ok := prog.(addrClasser); ok {
			a.memoOn = true
			a.progFP = progFingerprint(prog)
		}
	}
	root := lattice.DiamondAround(n, steps+1)
	space := a.spaceNeeded(root)
	if err := a.exec(root, space); err != nil {
		return Result{}, err
	}
	if err := a.ec.flush(); err != nil {
		return Result{}, err
	}
	return Result{
		Time:   meter.Now(),
		Ledger: meter.Ledger,
		Steps:  steps,
		Space:  space,
	}, nil
}
