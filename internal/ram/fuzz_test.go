package ram

import (
	"strings"
	"testing"

	"bsmp/internal/cost"
	"bsmp/internal/hram"
)

// FuzzAssemble: arbitrary source must either assemble or return an error —
// never panic — and anything that assembles must run without panicking
// under a small step budget on a bounds-checked machine (hram panics on
// out-of-range addresses, which a fuzzed program can legitimately reach,
// so those panics are converted to failures only when they escape Run).
func FuzzAssemble(f *testing.F) {
	f.Add("set r0 1\nhalt")
	f.Add("loop:\nadd r0 r0 r1\njnz r0 loop\nhalt")
	f.Add("; comment only")
	f.Add("stori r0 r1\nloadi r2 r0\nhalt")
	f.Add("jmp nowhere")
	f.Add("set rx y")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		// Reject absurdly long fuzz programs to keep the run fast.
		if len(prog) > 4096 || strings.Count(src, "\n") > 4096 {
			return
		}
		var meter cost.Meter
		vm := &VM{Mem: hram.New(256, hram.Standard(1, 1), &meter)}
		vm.MaxSteps = 10_000
		func() {
			// A fuzzed program may address out of the machine's bounds;
			// the hram panic is the defined behavior for that, so absorb
			// it. Anything else (index panics in the VM itself) should
			// crash the fuzzer.
			defer func() {
				if r := recover(); r != nil {
					if s, ok := r.(string); ok && strings.Contains(s, "hram:") {
						return
					}
					panic(r)
				}
			}()
			_ = vm.Run(prog)
		}()
	})
}
