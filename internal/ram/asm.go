package ram

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates the textual assembly form into a Program. Syntax,
// one instruction per line:
//
//	; comment
//	label:
//	set   r0 42        ; addresses and immediates are decimal integers
//	add   r2 r0 r1     ; rN is sugar for address N
//	jnz   r2 loop
//	halt
//
// Operands may be written as bare integers or with the rN sugar. Jump
// targets are labels. Unknown mnemonics, malformed operands, duplicate or
// missing labels are errors.
func Assemble(src string) (Program, error) {
	type pending struct {
		instr int // index into prog
		arg   int // 0 = A, 1 = B
		label string
		line  int
	}
	var prog Program
	labels := make(map[string]int)
	var fixups []pending

	ops := map[string]struct {
		op    Op
		nargs int
	}{
		"mov": {MOV, 2}, "set": {SET, 2}, "loadi": {LOADI, 2}, "stori": {STORI, 2},
		"add": {ADD, 3}, "sub": {SUB, 3}, "mul": {MUL, 3}, "xor": {XOR, 3},
		"and": {AND, 3}, "or": {OR, 3}, "shl": {SHL, 3}, "shr": {SHR, 3},
		"jmp": {JMP, 1}, "jz": {JZ, 2}, "jnz": {JNZ, 2}, "halt": {HALT, 0},
	}

	parseAddr := func(tok string) (int, error) {
		if strings.HasPrefix(tok, "r") {
			return strconv.Atoi(tok[1:])
		}
		return strconv.Atoi(tok)
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("ram: line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(prog)
			continue
		}
		fields := strings.Fields(line)
		spec, ok := ops[fields[0]]
		if !ok {
			return nil, fmt.Errorf("ram: line %d: unknown mnemonic %q", lineNo+1, fields[0])
		}
		if len(fields)-1 != spec.nargs {
			return nil, fmt.Errorf("ram: line %d: %s takes %d operands, got %d",
				lineNo+1, fields[0], spec.nargs, len(fields)-1)
		}
		in := Instr{Op: spec.op}
		switch spec.op {
		case JMP:
			fixups = append(fixups, pending{len(prog), 0, fields[1], lineNo + 1})
		case JZ, JNZ:
			a, err := parseAddr(fields[1])
			if err != nil {
				return nil, fmt.Errorf("ram: line %d: bad address %q", lineNo+1, fields[1])
			}
			in.A = a
			fixups = append(fixups, pending{len(prog), 1, fields[2], lineNo + 1})
		default:
			dst := [3]*int{&in.A, &in.B, &in.C}
			for i := 0; i < spec.nargs; i++ {
				v, err := parseAddr(fields[1+i])
				if err != nil {
					return nil, fmt.Errorf("ram: line %d: bad operand %q", lineNo+1, fields[1+i])
				}
				*dst[i] = v
			}
		}
		prog = append(prog, in)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("ram: line %d: undefined label %q", f.line, f.label)
		}
		if f.arg == 0 {
			prog[f.instr].A = target
		} else {
			prog[f.instr].B = target
		}
	}
	return prog, nil
}

// MustAssemble panics on assembly errors — for programs embedded in the
// repository whose correctness is covered by tests.
func MustAssemble(src string) Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}
