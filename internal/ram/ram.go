// Package ram implements the instruction-level Random Access Machine that
// Definition 1 of Bilardi & Preparata (SPAA 1995) generalizes: the
// Cook–Reckhow RAM [CR73], executing a fixed program of simple
// instructions over an unbounded word memory. Attached to an
// hram.Machine, every memory operand pays the hierarchical access cost
// f(x), making the VM an f(x)-H-RAM in the paper's exact sense — one
// instruction touching only address 0 costs one unit.
//
// The package exists to ground the repository's higher-level cost
// accounting in a real ISA: programs written here (see programs.go)
// perform the naive uniprocessor simulation of a linear-array guest
// instruction by instruction, and its measured cost reproduces the same
// Proposition 1 curve the model-level simulator measures — a full-stack
// cross-validation.
//
// The instruction set (one word per operand, direct or indirect
// addressing) follows Cook–Reckhow's accumulator-free style:
//
//	MOV   d s     mem[d] = mem[s]
//	SET   d imm   mem[d] = imm
//	LOADI d s     mem[d] = mem[mem[s]]       (indirect load)
//	STORI d s     mem[mem[d]] = mem[s]       (indirect store)
//	ADD/SUB/MUL/XOR/AND/OR d a b
//	              mem[d] = mem[a] op mem[b]
//	SHL/SHR d a b mem[d] = mem[a] << / >> (mem[b] mod 64)
//	JMP   L       goto L
//	JZ    c L     if mem[c] == 0 goto L
//	JNZ   c L     if mem[c] != 0 goto L
//	HALT
//
// Control flow is free of memory cost except for the tested cell; the
// program itself lives in a control store, as in [CR73].
package ram

import (
	"fmt"

	"bsmp/internal/cost"
	"bsmp/internal/hram"
)

// Op is an instruction opcode.
type Op int

// The instruction set.
const (
	MOV Op = iota
	SET
	LOADI
	STORI
	ADD
	SUB
	MUL
	XOR
	AND
	OR
	SHL
	SHR
	JMP
	JZ
	JNZ
	HALT
)

var opNames = map[Op]string{
	MOV: "mov", SET: "set", LOADI: "loadi", STORI: "stori",
	ADD: "add", SUB: "sub", MUL: "mul", XOR: "xor", AND: "and", OR: "or",
	SHL: "shl", SHR: "shr", JMP: "jmp", JZ: "jz", JNZ: "jnz", HALT: "halt",
}

// String names the opcode.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one decoded instruction. A, B, C are addresses, immediates, or
// program labels depending on the opcode.
type Instr struct {
	Op      Op
	A, B, C int
}

// Program is an executable instruction sequence.
type Program []Instr

// VM executes a Program against an H-RAM memory, charging f(x) per memory
// operand plus one Compute unit per instruction.
type VM struct {
	Mem *hram.Machine
	// Steps counts executed instructions.
	Steps int64
	// MaxSteps aborts runaway programs (0 = 1e9).
	MaxSteps int64
}

// New returns a VM over a fresh H-RAM of size words with access function f.
func New(size int, f hram.AccessFunc, meter *cost.Meter) *VM {
	return &VM{Mem: hram.New(size, f, meter)}
}

// Run executes prog from instruction 0 until HALT, returning an error on
// an invalid instruction, out-of-range jump, or step-limit overrun.
func (vm *VM) Run(prog Program) error {
	limit := vm.MaxSteps
	if limit <= 0 {
		limit = 1_000_000_000
	}
	pc := 0
	for {
		if pc < 0 || pc >= len(prog) {
			return fmt.Errorf("ram: pc %d out of program [0,%d)", pc, len(prog))
		}
		if vm.Steps >= limit {
			return fmt.Errorf("ram: step limit %d exceeded", limit)
		}
		vm.Steps++
		in := prog[pc]
		vm.Mem.Op() // one unit of instruction time
		pc++
		switch in.Op {
		case MOV:
			vm.Mem.Write(in.A, vm.Mem.Read(in.B))
		case SET:
			vm.Mem.Write(in.A, hram.Word(in.B))
		case LOADI:
			addr := int(vm.Mem.Read(in.B))
			vm.Mem.Write(in.A, vm.Mem.Read(addr))
		case STORI:
			addr := int(vm.Mem.Read(in.A))
			vm.Mem.Write(addr, vm.Mem.Read(in.B))
		case ADD:
			vm.Mem.Write(in.A, vm.Mem.Read(in.B)+vm.Mem.Read(in.C))
		case SUB:
			vm.Mem.Write(in.A, vm.Mem.Read(in.B)-vm.Mem.Read(in.C))
		case MUL:
			vm.Mem.Write(in.A, vm.Mem.Read(in.B)*vm.Mem.Read(in.C))
		case XOR:
			vm.Mem.Write(in.A, vm.Mem.Read(in.B)^vm.Mem.Read(in.C))
		case AND:
			vm.Mem.Write(in.A, vm.Mem.Read(in.B)&vm.Mem.Read(in.C))
		case OR:
			vm.Mem.Write(in.A, vm.Mem.Read(in.B)|vm.Mem.Read(in.C))
		case SHL:
			vm.Mem.Write(in.A, vm.Mem.Read(in.B)<<(vm.Mem.Read(in.C)&63))
		case SHR:
			vm.Mem.Write(in.A, vm.Mem.Read(in.B)>>(vm.Mem.Read(in.C)&63))
		case JMP:
			pc = in.A
		case JZ:
			if vm.Mem.Read(in.A) == 0 {
				pc = in.B
			}
		case JNZ:
			if vm.Mem.Read(in.A) != 0 {
				pc = in.B
			}
		case HALT:
			return nil
		default:
			return fmt.Errorf("ram: invalid opcode %v at pc %d", in.Op, pc-1)
		}
	}
}
