package ram

import "fmt"

// This file contains the RAM programs used by the cross-validation
// experiments: most importantly the instruction-level naive simulation of
// a linear-array guest (Proposition 1 executed instruction by
// instruction).

// Registers live at the bottom of memory — the cheapest addresses, as a
// real RAM program would arrange.
const (
	regT    = 0  // remaining steps
	regX    = 1  // column index
	regCur  = 2  // current row base
	regNext = 3  // next row base
	regS    = 4  // accumulator
	regA    = 5  // address scratch
	regV    = 6  // value scratch
	regC    = 7  // comparison scratch
	regN    = 10 // n
	regOne  = 11 // constant 1
	numRegs = 16
)

// CASimLayout describes the memory layout of the CA simulation program.
type CASimLayout struct {
	N, T     int
	CurBase  int // current row of n cells
	NextBase int // next row of n cells
	Size     int // total memory words needed
}

// NewCASimLayout returns the layout for an n-cell, T-step run.
func NewCASimLayout(n, t int) CASimLayout {
	return CASimLayout{
		N: n, T: t,
		CurBase:  numRegs,
		NextBase: numRegs + n,
		Size:     numRegs + 2*n,
	}
}

// CASimProgram assembles the instruction-level naive simulation of the
// truncated rule-90 automaton (XOR of self and the in-range neighbors —
// exactly guest.Rule90's step) on an n-cell linear array for T-1 steps:
// the Proposition 1 uniprocessor simulation, with every access paying the
// H-RAM cost. The initial row must be poked at CurBase before Run; the
// final row is read back from CurBase.
func CASimProgram(l CASimLayout) Program {
	src := fmt.Sprintf(`
	set r%[1]d %[3]d        ; regN = n
	set r%[2]d 1            ; regOne = 1
	set r%[4]d %[5]d        ; regT = T-1 steps
tloop:
	jz r%[4]d done
	set r%[6]d 0            ; x = 0
xloop:
	; s = cur[x]
	set r%[7]d %[8]d
	add r%[7]d r%[7]d r%[6]d    ; regA = CurBase + x
	loadi r%[9]d r%[7]d         ; regS = cur[x]
	; left neighbor if x > 0
	jz r%[6]d noleft
	sub r%[10]d r%[7]d r%[2]d   ; regC = addr-1
	loadi r%[11]d r%[10]d
	xor r%[9]d r%[9]d r%[11]d
noleft:
	; right neighbor if x < n-1
	sub r%[10]d r%[1]d r%[2]d   ; regC = n-1
	sub r%[10]d r%[10]d r%[6]d  ; regC = (n-1)-x
	jz r%[10]d noright
	add r%[10]d r%[7]d r%[2]d   ; regC = addr+1
	loadi r%[11]d r%[10]d
	xor r%[9]d r%[9]d r%[11]d
noright:
	; next[x] = s
	set r%[10]d %[12]d
	add r%[10]d r%[10]d r%[6]d
	stori r%[10]d r%[9]d
	; x++
	add r%[6]d r%[6]d r%[2]d
	sub r%[10]d r%[1]d r%[6]d
	jnz r%[10]d xloop
	; copy next row into cur row
	set r%[6]d 0
cploop:
	set r%[7]d %[12]d
	add r%[7]d r%[7]d r%[6]d
	loadi r%[9]d r%[7]d
	set r%[10]d %[8]d
	add r%[10]d r%[10]d r%[6]d
	stori r%[10]d r%[9]d
	add r%[6]d r%[6]d r%[2]d
	sub r%[10]d r%[1]d r%[6]d
	jnz r%[10]d cploop
	; t--
	sub r%[4]d r%[4]d r%[2]d
	jmp tloop
done:
	halt
`,
		regN, regOne, l.N,
		regT, l.T-1,
		regX,
		regA, l.CurBase,
		regS,
		regC, regV,
		l.NextBase,
	)
	return MustAssemble(src)
}
