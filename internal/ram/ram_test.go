package ram

import (
	"math"
	"testing"

	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/guest"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
)

func newVM(size int) (*VM, *cost.Meter) {
	var meter cost.Meter
	return New(size, hram.Standard(1, 1), &meter), &meter
}

func TestBasicOps(t *testing.T) {
	vm, _ := newVM(64)
	prog := MustAssemble(`
	set r0 7
	set r1 5
	add r2 r0 r1
	sub r3 r0 r1
	mul r4 r0 r1
	xor r5 r0 r1
	and r6 r0 r1
	or  r7 r0 r1
	shl r8 r0 r1
	shr r9 r8 r1
	halt
`)
	if err := vm.Run(prog); err != nil {
		t.Fatal(err)
	}
	checks := map[int]hram.Word{
		2: 12, 3: 2, 4: 35, 5: 2, 6: 5, 7: 7, 8: 7 << 5, 9: 7,
	}
	for addr, want := range checks {
		if got := vm.Mem.Peek(addr); got != want {
			t.Errorf("mem[%d] = %d, want %d", addr, got, want)
		}
	}
}

func TestIndirection(t *testing.T) {
	vm, _ := newVM(64)
	prog := MustAssemble(`
	set r0 40      ; pointer
	set r1 99
	stori r0 r1    ; mem[40] = 99
	loadi r2 r0    ; r2 = mem[40]
	halt
`)
	if err := vm.Run(prog); err != nil {
		t.Fatal(err)
	}
	if vm.Mem.Peek(40) != 99 || vm.Mem.Peek(2) != 99 {
		t.Fatal("indirection broken")
	}
}

func TestControlFlow(t *testing.T) {
	// Sum 1..10 with a loop.
	vm, _ := newVM(64)
	prog := MustAssemble(`
	set r0 10
	set r1 0      ; sum
	set r2 1
loop:
	jz r0 done
	add r1 r1 r0
	sub r0 r0 r2
	jmp loop
done:
	halt
`)
	if err := vm.Run(prog); err != nil {
		t.Fatal(err)
	}
	if got := vm.Mem.Peek(1); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestUnitCostAtAddressZero(t *testing.T) {
	// One instruction touching only address 0 costs Θ(1) (the paper's
	// normalization): set r0 is 1 op + 1 write at f(0) = 1.
	vm, meter := newVM(8)
	if err := vm.Run(MustAssemble("set r0 1\nhalt")); err != nil {
		t.Fatal(err)
	}
	if got := meter.Now(); got != 3 { // set: op+write, halt: op
		t.Fatalf("cost = %v, want 3", got)
	}
}

func TestStepLimit(t *testing.T) {
	vm, _ := newVM(8)
	vm.MaxSteps = 100
	err := vm.Run(MustAssemble("loop:\njmp loop"))
	if err == nil {
		t.Fatal("infinite loop not aborted")
	}
}

func TestAssembleErrors(t *testing.T) {
	for name, src := range map[string]string{
		"unknown op":    "frob r0 r1",
		"bad arity":     "add r0 r1",
		"bad operand":   "set rx 3",
		"dup label":     "a:\na:\nhalt",
		"missing label": "jmp nowhere",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled without error", name)
		}
	}
}

func TestRunValidation(t *testing.T) {
	vm, _ := newVM(8)
	// Jump beyond program end.
	if err := vm.Run(Program{{Op: JMP, A: 99}}); err == nil {
		t.Fatal("wild jump not caught")
	}
	// Running off the end without HALT.
	vm2, _ := newVM(8)
	if err := vm2.Run(Program{{Op: SET, A: 0, B: 1}}); err == nil {
		t.Fatal("missing halt not caught")
	}
	// Invalid opcode.
	vm3, _ := newVM(8)
	if err := vm3.Run(Program{{Op: Op(99)}}); err == nil {
		t.Fatal("invalid opcode not caught")
	}
}

func TestOpString(t *testing.T) {
	if MOV.String() != "mov" || HALT.String() != "halt" {
		t.Fatal("op names wrong")
	}
	if Op(99).String() != "op(99)" {
		t.Fatal("unknown op name wrong")
	}
}

// TestCASimMatchesReference is the full-stack fidelity check: the
// instruction-level naive simulation reproduces guest.Rule90's dag
// reference bit-exactly.
func TestCASimMatchesReference(t *testing.T) {
	for _, tc := range []struct{ n, T int }{{4, 4}, {8, 8}, {16, 12}, {13, 9}} {
		l := NewCASimLayout(tc.n, tc.T)
		vm, _ := newVM(l.Size)
		vm.MaxSteps = 10_000_000
		r := guest.Rule90{Seed: 17}
		for x := 0; x < tc.n; x++ {
			vm.Mem.Poke(l.CurBase+x, r.Input(lattice.Point{X: x}))
		}
		if err := vm.Run(CASimProgram(l)); err != nil {
			t.Fatalf("n=%d T=%d: %v", tc.n, tc.T, err)
		}
		want := dag.Reference(dag.NewLineGraph(tc.n, tc.T), r)
		for x := 0; x < tc.n; x++ {
			if got := vm.Mem.Peek(l.CurBase + x); got != want[x] {
				t.Fatalf("n=%d T=%d: cell %d = %d, want %d", tc.n, tc.T, x, got, want[x])
			}
		}
	}
}

// TestCASimCostShape cross-validates Proposition 1 at ISA fidelity: the
// per-vertex cost of the instruction-level naive simulation is affine in
// n — a constant register-traffic term plus the Θ(n) row-access latency
// of f(x) = x. (Total over T = n computations: Θ(n³) plus an Θ(n²)
// instruction-overhead term; at laptop sizes both are visible, so the
// affine fit is the sharp test.)
func TestCASimCostShape(t *testing.T) {
	ns := []int{32, 128, 256}
	perVertex := make(map[int]float64)
	for _, n := range ns {
		l := NewCASimLayout(n, n)
		vm, meter := newVM(l.Size)
		vm.MaxSteps = 200_000_000
		r := guest.Rule90{Seed: 17}
		for x := 0; x < n; x++ {
			vm.Mem.Poke(l.CurBase+x, r.Input(lattice.Point{X: x}))
		}
		if err := vm.Run(CASimProgram(l)); err != nil {
			t.Fatal(err)
		}
		perVertex[n] = float64(meter.Now()) / (float64(n) * float64(n-1))
	}
	// Fit pv = a + b·n through the endpoints; b > 0 is the Θ(n) access
	// latency, and the midpoint must land near the line.
	b := (perVertex[256] - perVertex[32]) / (256 - 32)
	a := perVertex[32] - b*32
	if b <= 0 {
		t.Fatalf("per-vertex cost not growing with n: %v", perVertex)
	}
	pred := a + b*128
	if math.Abs(pred-perVertex[128])/perVertex[128] > 0.15 {
		t.Errorf("per-vertex cost not affine in n: measured %v at 128, affine fit %v (curve %v)",
			perVertex[128], pred, perVertex)
	}
	// The linear term must dominate by n = 256 (the Prop. 1 regime).
	if b*256 < a {
		t.Errorf("row-access term (%.1f·n) still below instruction overhead %.1f at n=256", b, a)
	}
}
