package exp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"bsmp/internal/analytic"
	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/guest"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
	"bsmp/internal/ram"
	"bsmp/internal/separator"
	"bsmp/internal/simulate"
)

// Scale selects experiment sizes. Quick keeps everything under a couple
// of seconds for tests; the default (full) sizes power cmd/experiments
// and the benchmarks.
type Scale struct {
	Quick bool
}

func (s Scale) pick(quick, full []int) []int {
	if s.Quick {
		return quick
	}
	return full
}

func prog1d() network.Program { return guest.AsNetwork{G: guest.MixCA{Seed: 9}} }
func prog2d(side int) network.Program {
	return guest.AsNetwork{G: guest.MixCA{Seed: 9}, Side: side}
}

// P1 reproduces Proposition 1: naive-simulation slowdown (n/p)^(1+1/d).
func P1(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		ID:         "E-P1",
		Title:      "Naive simulation slowdown",
		PaperClaim: "Md(n,1,m) simulates Md(n,n,m) with slowdown O(n^(1+1/d)) (Prop. 1)",
		Header:     []string{"d", "n", "slowdown", "bound", "ratio"},
	}
	var ns1 = s.pick([]int{16, 32, 64}, []int{32, 64, 128, 256})
	var xs, ys []float64
	for _, n := range ns1 {
		res, err := simulate.NaiveContext(ctx, 1, n, 1, 1, 8, prog1d())
		if err != nil {
			return nil, err
		}
		tn := simulate.GuestTime(1, n, 1, 8, prog1d())
		slow := float64(res.Time) / float64(tn)
		bound := analytic.NaiveSlowdown(1, n, 1)
		t.Rows = append(t.Rows, []string{"1", d(n), f1(slow), f1(bound), f2(slow / bound)})
		xs = append(xs, float64(n))
		ys = append(ys, slow)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("d=1 fitted exponent %.2f (bound: 2)", LogLogSlope(xs, ys)))
	xs, ys = nil, nil
	for _, n := range s.pick([]int{16, 64}, []int{64, 256, 1024}) {
		side := int(math.Sqrt(float64(n)))
		res, err := simulate.NaiveContext(ctx, 2, n, 1, 1, 4, prog2d(side))
		if err != nil {
			return nil, err
		}
		tn := simulate.GuestTime(2, n, 1, 4, prog2d(side))
		slow := float64(res.Time) / float64(tn)
		bound := analytic.NaiveSlowdown(2, n, 1)
		t.Rows = append(t.Rows, []string{"2", d(n), f1(slow), f1(bound), f2(slow / bound)})
		xs = append(xs, float64(n))
		ys = append(ys, slow)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("d=2 fitted exponent %.2f (bound: 1.5)", LogLogSlope(xs, ys)))
	return t, nil
}

// T2 reproduces Theorem 2: T1/Tn = O(n log n) for d = 1, m = 1, via the
// real separator executor, against the naive baseline.
func T2(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		ID:         "E-T2",
		Title:      "Uniprocessor divide-and-conquer, d=1, m=1",
		PaperClaim: "T1/Tn = O(n log n) (Thm. 2); naive comparison grows as n^2",
		Header:     []string{"n", "T_dc", "T_dc/(n^2 Log n)", "T_naive", "naive/dc"},
	}
	prog := guest.Rule90{Seed: 1}
	var xs, dc, nv []float64
	for _, n := range s.pick([]int{16, 32, 64}, []int{32, 64, 128, 256}) {
		r, err := simulate.UniDCContext(ctx, 1, n, n, 8, prog)
		if err != nil {
			return nil, err
		}
		if err := simulate.VerifyDag(r, 1, n, prog); err != nil {
			return nil, err
		}
		rn, err := simulate.UniNaiveDagContext(ctx, 1, n, n, prog)
		if err != nil {
			return nil, err
		}
		nn := float64(n)
		norm := float64(r.Time) / (nn * nn * analytic.Log(nn))
		t.Rows = append(t.Rows, []string{
			d(n), g3(float64(r.Time)), f2(norm), g3(float64(rn.Time)),
			f2(float64(rn.Time) / float64(r.Time)),
		})
		xs = append(xs, nn)
		dc = append(dc, float64(r.Time))
		nv = append(nv, float64(rn.Time))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("dc exponent %.2f (n² log n ⇒ ~2.1); naive exponent %.2f (n³ ⇒ 3)",
			LogLogSlope(xs, dc), LogLogSlope(xs, nv)),
		"outputs verified against the reference executor at every n")
	return t, nil
}

// T3 reproduces Theorem 3: blocked uniprocessor simulation across m.
func T3(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		ID:         "E-T3",
		Title:      "Blocked uniprocessor simulation, d=1, general m",
		PaperClaim: "T1/Tn = O(n·min(n, m·Log(n/m))) (Thm. 3)",
		Header:     []string{"m", "slowdown", "bound", "ratio"},
	}
	n := 256
	steps := 64
	ms := s.pick([]int{4, 16}, []int{1, 4, 16, 64, 256})
	if s.Quick {
		n, steps = 64, 16
	}
	var ratios []float64
	for _, m := range ms {
		res, err := simulate.BlockedD1Context(ctx, n, m, steps, 0, prog1d())
		if err != nil {
			return nil, err
		}
		if err := res.Verify(1, n, m, prog1d()); err != nil {
			return nil, err
		}
		tn := simulate.GuestTime(1, n, m, steps, prog1d())
		slow := float64(res.Time) / float64(tn)
		bound := analytic.Theorem3Slowdown(n, m)
		t.Rows = append(t.Rows, []string{d(m), f1(slow), f1(bound), f2(slow / bound)})
		ratios = append(ratios, slow/bound)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured/bound band %.1fx across m (constants differ per range; shape tracked for m ≥ 4)",
			BandRatio(ratios)),
		"functional state verified against the pure guest at every m")
	return t, nil
}

// T3D2 exercises the d = 2 analogue of the blocked scheme: Theorem 3's
// technique over octahedral domains, with the same executable-domain
// collapse at large m.
func T3D2(ctx context.Context, s Scale) (*Table, error) {
	side, steps := 16, 8
	ms := s.pick([]int{1, 4}, []int{1, 4, 16, 64})
	if s.Quick {
		side, steps = 4, 4
	}
	n := side * side
	t := &Table{
		ID:    "E-T3b",
		Title: fmt.Sprintf("Blocked uniprocessor simulation, d=2 (side=%d)", side),
		PaperClaim: "Thm. 3's blocked technique carries to d = 2 over the Section 5 " +
			"octahedral separator (the paper combines them in Theorem 1)",
		Header: []string{"m", "slowdown", "leaf=default", "leaf=4 (forced recursion)"},
	}
	prog := prog2d(side)
	for _, m := range ms {
		def, err := simulate.BlockedD2Context(ctx, n, m, steps, 0, prog)
		if err != nil {
			return nil, err
		}
		if err := def.Verify(2, n, m, prog); err != nil {
			return nil, err
		}
		forced, err := simulate.BlockedD2Context(ctx, n, m, steps, 4, prog)
		if err != nil {
			return nil, err
		}
		tn := simulate.GuestTime(2, n, m, steps, prog)
		t.Rows = append(t.Rows, []string{
			d(m), f1(float64(def.Time) / float64(tn)),
			g3(float64(def.Time)), g3(float64(forced.Time)),
		})
	}
	t.Notes = append(t.Notes,
		"default leaf span m realizes the executable-domain collapse: at large m the whole domain becomes one naive leaf (the paper's range 3/4 mechanism)",
		"functional state verified against the pure guest at every m")
	return t, nil
}

// T4 reproduces Theorem 4 / Theorem 1 (d = 1): the four ranges of the
// locality slowdown A(n, m, p).
func T4(ctx context.Context, s Scale) (*Table, error) {
	n, p, steps := 256, 8, 64
	ms := s.pick([]int{16, 256}, []int{1, 4, 16, 64, 256, 1024})
	if s.Quick {
		n, steps = 64, 16
		ms = []int{4, 64}
	}
	t := &Table{
		ID:    "E-T4",
		Title: fmt.Sprintf("Multiprocessor simulation, d=1 (n=%d, p=%d)", n, p),
		PaperClaim: "Tp/Tn = O((n/p)·A(n,m,p)) with four ranges of m " +
			"(Thm. 4); boundaries at sqrt(n/p), sqrt(np), n",
		Header: []string{"m", "range", "s*", "A_meas", "A_bound", "ratio"},
	}
	b12, b23, b34 := analytic.Boundaries(1, n, p)
	var ratios []float64
	for _, m := range ms {
		res, err := simulate.MultiD1Context(ctx, n, p, m, steps, prog1d(), simulate.MultiOptions{})
		if err != nil {
			return nil, err
		}
		tn := simulate.GuestTime(1, n, m, steps, prog1d())
		ameas := float64(res.Time) / float64(tn) / (float64(n) / float64(p))
		abound := analytic.A(1, n, m, p)
		t.Rows = append(t.Rows, []string{
			d(m), analytic.RangeOf(1, n, m, p).String(), d(res.StripWidth),
			f1(ameas), f1(abound), f2(ameas / abound),
		})
		if m >= 16 {
			ratios = append(ratios, ameas/abound)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("range boundaries: %.1f, %.1f, %.0f", b12, b23, b34),
		fmt.Sprintf("measured/bound band %.1fx over ranges 2-4 (m ≥ 16); below that the Θ(r) broadcast traffic — lower-order in the paper — adds a floor", BandRatio(ratios)),
	)
	return t, nil
}

// T5 reproduces Theorem 5: d = 2, m = 1 uniprocessor simulation.
func T5(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		ID:         "E-T5",
		Title:      "Uniprocessor divide-and-conquer, d=2, m=1",
		PaperClaim: "T1/Tn = O(n log n) (Thm. 5), via octahedron/tetrahedron separators",
		Header:     []string{"side", "n", "T_dc", "T_dc/(k Log k)", "T_naive", "naive/dc"},
	}
	prog := guest.Rule90{Seed: 2}
	var xs, dc, nv []float64
	for _, side := range s.pick([]int{4, 8}, []int{8, 16, 32}) {
		n := side * side
		r, err := simulate.UniDCContext(ctx, 2, n, side, 8, prog)
		if err != nil {
			return nil, err
		}
		if err := simulate.VerifyDag(r, 2, n, prog); err != nil {
			return nil, err
		}
		rn, err := simulate.UniNaiveDagContext(ctx, 2, n, side, prog)
		if err != nil {
			return nil, err
		}
		k := float64(side * side * side)
		t.Rows = append(t.Rows, []string{
			d(side), d(n), g3(float64(r.Time)), f2(float64(r.Time) / (k * analytic.Log(k))),
			g3(float64(rn.Time)), f2(float64(rn.Time) / float64(r.Time)),
		})
		xs = append(xs, float64(n))
		dc = append(dc, float64(r.Time))
		nv = append(nv, float64(rn.Time))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"dc exponent %.2f (k log k over n^1.5 dag ⇒ ~1.6-1.8); naive exponent %.2f (⇒ 2)",
		LogLogSlope(xs, dc), LogLogSlope(xs, nv)))
	return t, nil
}

// T1D2 reproduces Theorem 1's d = 2 case via the 2-D multiprocessor model.
func T1D2(ctx context.Context, s Scale) (*Table, error) {
	n, p, steps := 1024, 16, 16
	ms := s.pick([]int{4, 32}, []int{1, 4, 8, 32, 64})
	if s.Quick {
		n, p, steps = 256, 4, 8
	}
	side := int(math.Sqrt(float64(n)))
	t := &Table{
		ID:    "E-T1b",
		Title: fmt.Sprintf("Multiprocessor simulation, d=2 (n=%d, p=%d)", n, p),
		PaperClaim: "Tp/Tn = O((n/p)·A(n,m,p)) with boundaries (n/p)^(1/4), " +
			"(np)^(1/4), sqrt(n) (Thm. 1, d=2)",
		Header: []string{"m", "range", "span", "A_meas", "A_bound", "ratio"},
	}
	for _, m := range ms {
		res, err := simulate.MultiD2Context(ctx, n, p, m, steps, prog2d(side), simulate.Multi2Options{})
		if err != nil {
			return nil, err
		}
		tn := simulate.GuestTime(2, n, m, steps, prog2d(side))
		ameas := float64(res.Time) / float64(tn) / (float64(n) / float64(p))
		abound := analytic.A(2, n, m, p)
		t.Rows = append(t.Rows, []string{
			d(m), analytic.RangeOf(2, n, m, p).String(), d(res.Span),
			f1(ameas), f1(abound), f2(ameas / abound),
		})
	}
	b12, b23, b34 := analytic.Boundaries(2, n, p)
	t.Notes = append(t.Notes,
		fmt.Sprintf("range boundaries: %.1f, %.1f, %.0f", b12, b23, b34),
		"d=2 orchestration is model-grade (the paper defers its construction to [BP95a]); kernel calibrated by the real d=2 separator executor")
	return t, nil
}

// ISA cross-validates Proposition 1 at instruction level: the Cook-Reckhow
// RAM of internal/ram runs the naive simulation of a rule-90 linear array
// instruction by instruction on an f(x) = x H-RAM, and its per-vertex cost
// reproduces the same constant-plus-Θ(n) structure the model-level
// simulator charges.
func ISA(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		ID:    "E-ISA",
		Title: "Instruction-level naive simulation (Cook-Reckhow RAM on an H-RAM)",
		PaperClaim: "Def. 1 / Prop. 1: an f(x)-H-RAM is a RAM whose access to address x " +
			"costs f(x); the naive simulation pays Θ(n) per simulated vertex",
		Header: []string{"n", "instructions", "T_vm", "per-vertex", "per-vertex/n"},
	}
	r := guest.Rule90{Seed: 17}
	for _, n := range s.pick([]int{16, 32}, []int{32, 64, 128, 256}) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		l := ram.NewCASimLayout(n, n)
		var meter cost.Meter
		vm := ram.New(l.Size, hram.Standard(1, 1), &meter)
		vm.MaxSteps = 500_000_000
		for x := 0; x < n; x++ {
			vm.Mem.Poke(l.CurBase+x, r.Input(lattice.Point{X: x}))
		}
		if err := vm.Run(ram.CASimProgram(l)); err != nil {
			return nil, err
		}
		// Verify against the dag reference.
		want := dag.Reference(dag.NewLineGraph(n, n), r)
		for x := 0; x < n; x++ {
			if vm.Mem.Peek(l.CurBase+x) != want[x] {
				return nil, fmt.Errorf("isa: cell %d mismatch at n=%d", x, n)
			}
		}
		pv := float64(meter.Now()) / (float64(n) * float64(n-1))
		t.Rows = append(t.Rows, []string{
			d(n), d(int(vm.Steps)), g3(float64(meter.Now())), f1(pv), f2(pv / float64(n)),
		})
	}
	t.Notes = append(t.Notes,
		"per-vertex cost is affine in n: a register-traffic constant plus the Θ(n) row-access latency",
		"outputs verified against the dag reference at every n — the full-stack fidelity check")
	return t, nil
}

// D3 addresses the paper's concluding open question: whether the locality
// slowdown extends to d = 3. It runs the real separator executor over the
// four-dimensional Box6 domains (the topological separator the paper
// conjectured) and compares with the naive order.
func D3(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		ID:    "E-D3",
		Title: "Extension: uniprocessor divide-and-conquer, d=3, m=1",
		PaperClaim: "open question (Conclusions): Theorem 1 should extend to d = 3 " +
			"given a suitable topological separator for 4-dimensional domains",
		Header: []string{"side", "n", "T_dc", "T_dc/(k Log k)", "space/k^(3/4)", "T_naive", "naive/dc"},
	}
	prog := guest.Rule90{Seed: 3}
	var xs, dc, nv []float64
	for _, side := range s.pick([]int{3, 4}, []int{4, 8, 12, 16}) {
		n := side * side * side
		r, err := simulate.UniDCContext(ctx, 3, n, side, 8, prog)
		if err != nil {
			return nil, err
		}
		if err := simulate.VerifyDag(r, 3, n, prog); err != nil {
			return nil, err
		}
		rn, err := simulate.UniNaiveDagContext(ctx, 3, n, side, prog)
		if err != nil {
			return nil, err
		}
		k := float64(n) * float64(side)
		t.Rows = append(t.Rows, []string{
			d(side), d(n), g3(float64(r.Time)),
			f2(float64(r.Time) / (k * analytic.Log(k))),
			f2(float64(r.Space) / math.Pow(k, 0.75)),
			g3(float64(rn.Time)), f2(float64(rn.Time) / float64(r.Time)),
		})
		xs = append(xs, float64(n))
		dc = append(dc, float64(r.Time))
		nv = append(nv, float64(rn.Time))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("dc exponent %.2f (conjectured k·log k over the n^(4/3) dag ⇒ ~1.4); naive exponent %.2f (⇒ 5/3)",
			LogLogSlope(xs, dc), LogLogSlope(xs, nv)),
		"the Box6 split realizes the conjectured separator: 46 children (10 central + 36 wedges), γ = 3/4 — see lattice tests",
		"outputs verified against the reference executor at every side")
	return t, nil
}

// D3Multi evaluates the conjectured Theorem 1 at d = 3 with the
// multiprocessor cost model over the Box6 separator.
func D3Multi(ctx context.Context, s Scale) (*Table, error) {
	side, p, steps := 16, 64, 8
	ms := s.pick([]int{1, 8}, []int{1, 4, 16, 64})
	if s.Quick {
		side, p = 8, 8
	}
	n := side * side * side
	t := &Table{
		ID:    "E-D3b",
		Title: fmt.Sprintf("Extension: multiprocessor model, d=3 (n=%d, p=%d)", n, p),
		PaperClaim: "conjectured Theorem 1 at d = 3: Tp/Tn = O((n/p)·A) with boundaries " +
			"(n/p)^(1/6), (np)^(1/6), n^(1/3)",
		Header: []string{"m", "range", "span", "A_meas", "A_bound(conj)", "ratio"},
	}
	prog := guest.AsNetwork{G: guest.MixCA{Seed: 9}, CubeSide: side}
	for _, m := range ms {
		res, err := simulate.MultiD3Context(ctx, n, p, m, steps, prog, simulate.Multi3Options{})
		if err != nil {
			return nil, err
		}
		tn := simulate.GuestTime(3, n, m, steps, prog)
		ameas := float64(res.Time) / float64(tn) / (float64(n) / float64(p))
		abound := analytic.A(3, n, m, p)
		t.Rows = append(t.Rows, []string{
			d(m), analytic.RangeOf(3, n, m, p).String(), d(res.Span),
			f1(ameas), f1(abound), f2(ameas / abound),
		})
	}
	b12, b23, b34 := analytic.Boundaries(3, n, p)
	t.Notes = append(t.Notes,
		fmt.Sprintf("conjectured range boundaries: %.1f, %.1f, %.0f", b12, b23, b34),
		"model-grade (fidelity L2); kernels measured by the real BlockedD3 executor")
	return t, nil
}

// MM reproduces the Section 1 matrix-multiplication example.
func MM(ctx context.Context, s Scale) (*Table, error) {
	t := &Table{
		ID:    "E-MM",
		Title: "Superlinear speedup: sqrt(n) x sqrt(n) matrix multiplication",
		PaperClaim: "mesh Θ(√n) vs naive uniprocessor Θ(n²) (speedup Θ(n^1.5), " +
			"superlinear in n processors); locality-aware uniprocessor within Θ(log n) of optimal",
		Header: []string{"sqrt(n)", "n", "T_mesh", "T_naive", "T_blocked", "naive/mesh", "naive/mesh/n", "naive/blocked"},
	}
	var xs, speed []float64
	for _, sq := range s.pick([]int{8, 16}, []int{16, 32, 64, 128}) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := sq * sq
		a, b := guest.MatmulInput(sq, 5)
		want := guest.ReferenceMatmul(sq, a, b)
		cm, tm := guest.MeshMatmul(sq, a, b)
		cn, tn := guest.NaiveMatmul(sq, a, b)
		cb, tb := guest.BlockedMatmul(sq, a, b)
		for i := range want {
			if cm[i] != want[i] || cn[i] != want[i] || cb[i] != want[i] {
				return nil, fmt.Errorf("matmul mismatch at %d", i)
			}
		}
		sp := float64(tn) / float64(tm)
		t.Rows = append(t.Rows, []string{
			d(sq), d(n), g3(float64(tm)), g3(float64(tn)), g3(float64(tb)),
			f1(sp), f2(sp / float64(n)), f2(float64(tn) / float64(tb)),
		})
		xs = append(xs, float64(n))
		speed = append(speed, sp)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("speedup exponent %.2f (paper: 1.5, i.e. superlinear — naive/mesh/n grows)", LogLogSlope(xs, speed)),
		"all three products verified bit-identical; blocked beats naive from sqrt(n) ≈ 48 on")
	return t, nil
}

// SStar reproduces the strip-width analysis of Theorem 4: A(s) is
// minimized near the paper's s*.
func SStar(ctx context.Context, s Scale) (*Table, error) {
	n, p, m, steps := 256, 8, 16, 64
	if s.Quick {
		n, steps = 64, 16
		m = 4
	}
	t := &Table{
		ID:         "E-S*",
		Title:      fmt.Sprintf("Optimal strip width (n=%d, p=%d, m=%d)", n, p, m),
		PaperClaim: "A(s) = (m/p)Log(n/ps) + min(s, m·Log(s/m)) + n/(ps), minimized at s* per range",
		Header:     []string{"s", "T_meas", "A(s) analytic"},
	}
	sStar := analytic.OptimalS(n, m, p)
	best, bestS := math.Inf(1), 0
	for sw := 1; sw <= n/p; sw *= 2 {
		res, err := simulate.MultiD1Context(ctx, n, p, m, steps, prog1d(), simulate.MultiOptions{StripWidth: sw})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{d(sw), g3(float64(res.Time)), f1(analytic.AOfS(n, m, p, float64(sw)))})
		if float64(res.Time) < best {
			best, bestS = float64(res.Time), sw
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"measured optimum s=%d; paper s*=%.1f (within one power of two: %v)",
		bestS, sStar, withinPow2(float64(bestS), sStar)))
	return t, nil
}

func withinPow2(a, b float64) bool {
	r := a / b
	return r >= 0.5 && r <= 2.0
}

// Ablations reproduces the design-choice ablations of DESIGN.md § 6.
func Ablations(ctx context.Context, s Scale) (*Table, error) {
	n, p, m, steps := 256, 8, 16, 64
	if s.Quick {
		n, steps = 64, 16
	}
	t := &Table{
		ID:    "E-AB",
		Title: fmt.Sprintf("Mechanism ablations, d=1 (n=%d, p=%d, m=%d)", n, p, m),
		PaperClaim: "the rearrangement π and the cooperating mode are load-bearing " +
			"(Section 4.2's 'non-intuitive orchestrations')",
		Header: []string{"variant", "T", "vs full"},
	}
	full, err := simulate.MultiD1Context(ctx, n, p, m, steps, prog1d(), simulate.MultiOptions{})
	if err != nil {
		return nil, err
	}
	naive, err := simulate.NaiveContext(ctx, 1, n, p, m, steps, prog1d())
	if err != nil {
		return nil, err
	}
	rows := []struct {
		name string
		opts simulate.MultiOptions
	}{
		{"no rearrangement", simulate.MultiOptions{NoRearrange: true}},
		{"no cooperating mode", simulate.MultiOptions{NoCooperate: true}},
		{"neither", simulate.MultiOptions{NoRearrange: true, NoCooperate: true}},
	}
	t.Rows = append(t.Rows, []string{"full scheme", g3(float64(full.Time)), "1.00"})
	for _, r := range rows {
		res, err := simulate.MultiD1Context(ctx, n, p, m, steps, prog1d(), r.opts)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{r.name, g3(float64(res.Time)), f2(float64(res.Time) / float64(full.Time))})
	}
	t.Rows = append(t.Rows, []string{"naive simulation", g3(float64(naive.Time)), f2(float64(naive.Time) / float64(full.Time))})
	t.Notes = append(t.Notes, "every ablated variant remains functionally exact (verified)")
	return t, nil
}

// Pipe reproduces the conclusions' pipelined-memory alternative: with
// block transfers costing latency + length, the locality slowdown's
// growth in m largely disappears.
func Pipe(ctx context.Context, s Scale) (*Table, error) {
	n, steps := 256, 64
	ms := s.pick([]int{4, 16}, []int{4, 16, 64, 256})
	if s.Quick {
		n, steps = 64, 16
	}
	t := &Table{
		ID:    "E-PIPE",
		Title: fmt.Sprintf("Extension: pipelined memory (n=%d, d=1, p=1)", n),
		PaperClaim: "conclusions: processors with pipelinable memory admit simulation " +
			"schemes that incur no locality slowdown",
		Header: []string{"m", "T_perword", "T_pipelined", "speedup"},
	}
	var stdT, pipeT []float64
	for _, m := range ms {
		std, err := simulate.BlockedD1Context(ctx, n, m, steps, 0, prog1d())
		if err != nil {
			return nil, err
		}
		pipe, err := simulate.BlockedD1Context(ctx, n, m, steps, 0, prog1d(), hram.WithPipelinedBlocks())
		if err != nil {
			return nil, err
		}
		if err := pipe.Verify(1, n, m, prog1d()); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d(m), g3(float64(std.Time)), g3(float64(pipe.Time)),
			f2(float64(std.Time) / float64(pipe.Time)),
		})
		stdT = append(stdT, float64(std.Time))
		pipeT = append(pipeT, float64(pipe.Time))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"per-word time grows %.1fx from m=%d to m=%d; pipelined only %.1fx — the locality growth collapses",
		stdT[len(stdT)-1]/stdT[0], ms[0], ms[len(ms)-1], pipeT[len(pipeT)-1]/pipeT[0]))
	return t, nil
}

// MPrime reproduces the conclusions' m' < m observation: a guest touching
// fewer memory cells per node gains locality.
func MPrime(ctx context.Context, s Scale) (*Table, error) {
	n, m, steps := 256, 64, 64
	mps := s.pick([]int{4, 64}, []int{4, 16, 64})
	if s.Quick {
		n, m, steps = 64, 16, 16
		mps = []int{4, 16}
	}
	t := &Table{
		ID:    "E-M'",
		Title: fmt.Sprintf("Extension: guests with m' < m live words (n=%d, m=%d)", n, m),
		PaperClaim: "conclusions: if an algorithm requires m' < m cells per processor, " +
			"more locality results",
		Header: []string{"m'", "slowdown", "vs m'=m"},
	}
	base := guest.MixCA{Seed: 13}
	fullRes, err := simulate.BlockedD1Context(ctx, n, m, steps, 0, guest.RestrictMem{P: base, Words: m})
	if err != nil {
		return nil, err
	}
	tnFull := simulate.GuestTime(1, n, m, steps, guest.RestrictMem{P: base, Words: m})
	full := float64(fullRes.Time) / float64(tnFull)
	for _, mp := range mps {
		prog := guest.RestrictMem{P: base, Words: mp}
		res, err := simulate.BlockedD1Context(ctx, n, m, steps, 0, prog)
		if err != nil {
			return nil, err
		}
		if err := res.Verify(1, n, m, prog); err != nil {
			return nil, err
		}
		tn := simulate.GuestTime(1, n, m, steps, prog)
		slow := float64(res.Time) / float64(tn)
		t.Rows = append(t.Rows, []string{d(mp), f1(slow), f2(slow / full)})
	}
	t.Notes = append(t.Notes, "slowdown shrinks monotonically with the live-memory footprint m'")
	return t, nil
}

// Levels exposes Proposition 2/3's internal structure: the per-recursion-
// depth relocation profile of a real separator execution, whose per-level
// transfer time is flat — the decomposition that yields τ(k) = O(k·log k).
func Levels(ctx context.Context, s Scale) (*Table, error) {
	n := 256
	if s.Quick {
		n = 32
	}
	t := &Table{
		ID:    "E-LEV",
		Title: fmt.Sprintf("Proposition 2 recursion profile (d=1, n=%d, m=1)", n),
		PaperClaim: "Prop. 3: a (c·x^γ, δ)-separator execution costs O(k) relocation " +
			"per recursion level over ~log k levels, giving τ(k) = O(k·log k)",
		Header: []string{"depth", "domains", "words moved", "transfer time"},
	}
	g := dag.NewLineGraph(n, n)
	root := g.Domain()
	space := separator.SpaceNeeded(g, root, 8)
	var meter cost.Meter
	mach := hram.New(space, hram.Standard(1, 1), &meter)
	ex := &separator.Executor{G: g, Prog: guest.Rule90{Seed: 1}, LeafSize: 8}
	res, err := ex.Execute(mach, root)
	if err != nil {
		return nil, err
	}
	var mid []float64
	for depth, l := range res.Levels {
		t.Rows = append(t.Rows, []string{
			d(depth), d(l.Domains), d(l.WordsMoved), g3(l.TransferTime),
		})
		if depth > 0 && depth < len(res.Levels)-1 {
			mid = append(mid, l.TransferTime)
		}
	}
	if len(mid) > 1 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"middle-level transfer-time band %.1fx (flat ⇒ O(k) per level, the k·log k signature)",
			BandRatio(mid)))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"space allowance %d = %.1f·n (σ(k) = O(√k) for the n² dag)", res.Space, float64(res.Space)/float64(n)))
	return t, nil
}

// Coop validates the cooperating execution mode from first principles:
// two real processors splitting a shared block versus one processor
// pulling the remote half through memory.
func Coop(ctx context.Context, s Scale) (*Table, error) {
	n, p, sw, steps := 1024, 8, 16, 16
	ms := s.pick([]int{1, 16}, []int{1, 4, 16, 64, 256})
	if s.Quick {
		n, p, sw, steps = 64, 4, 8, 8
	}
	t := &Table{
		ID:    "E-COOP",
		Title: fmt.Sprintf("Cooperating mode vs solo on a shared block (n=%d, p=%d, s=%d)", n, p, sw),
		PaperClaim: "§4.2: two processors may execute a shared diamond cooperatively, " +
			"exchanging O(s) items, instead of one processor accessing the whole " +
			"preboundary (s·m items) — 'one alternative may be preferable over the other'",
		Header: []string{"m", "T_coop", "T_solo", "solo/coop"},
	}
	for _, m := range ms {
		res, err := simulate.CoopBlockContext(ctx, n, p, m, sw, steps, prog1d())
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d(m), g3(float64(res.CoopTime)), g3(float64(res.SoloTime)),
			f2(float64(res.SoloTime) / float64(res.CoopTime)),
		})
	}
	t.Notes = append(t.Notes,
		"cooperation's advantage grows with m: it exchanges per-step values where solo moves whole memories",
		"both runs verified identical (and against the pure reference)")
	return t, nil
}

// Brent validates the analytic fast path where no exact twin can reach:
// for each size the blocked-analytic scheme's virtual time is checked
// against the work/span laws (with p = 1: T >= T_1, T >= T_inf, and the
// greedy bound T <= (T_1 - T_inf)/p + T_inf collapse to the exact
// identity T = T_1 alongside T >= T_inf) plus the model invariants the
// replay must conserve exactly — one Compute unit per lattice vertex and
// a virtual time equal to the ledger sum. The smallest size is also
// cross-checked against the exact blocked engine to 1e-9 relative; the
// largest (full scale: n = 2^20 x steps = 2^10, over 10^9 vertices) has
// no feasible exact twin and runs in seconds only because congruent
// subtrees replay analytically.
func Brent(ctx context.Context, s Scale) (*Table, error) {
	type size struct{ n, steps int }
	sizes := []size{{256, 32}, {1 << 12, 1 << 7}}
	if !s.Quick {
		sizes = append(sizes, size{1 << 16, 1 << 8}, size{1 << 20, 1 << 10})
	}
	const m = 8
	t := &Table{
		ID:    "E-BRENT",
		Title: "Analytic replay path vs work/span laws (blocked-analytic, d=1)",
		PaperClaim: "Thm. 3's blocked schedule is a greedy one-processor schedule of the " +
			"n x (steps+1) dependency lattice: its makespan obeys the work/span laws " +
			"T >= T_1/p, T >= T_inf, T <= (T_1 - T_inf)/p + T_inf at every size, " +
			"including sizes only the analytic replay path can reach",
		Header: []string{"n", "steps", "T", "work T_1", "span T_inf", "T/(vol)", "Thm3 bound", "range"},
	}
	defer simulate.SetMemoCapacity(simulate.MemoCapacity())
	simulate.SetMemoCapacity(1 << 16) // analytic class count grows with log n
	for i, sz := range sizes {
		res, err := simulate.RunSchemeContext(ctx, "blocked-analytic", 1, sz.n, 1, m, sz.steps, prog1d(), simulate.SchemeConfig{})
		if err != nil {
			return nil, err
		}
		T := float64(res.Time)
		work := float64(res.Ledger.Sum())
		span := float64(sz.steps + 1)
		vol := float64(sz.n) * span
		// Work/span laws for p = 1. T and T_1 accumulate the same charges
		// in different float orders (clock vs per-category totals), so the
		// T = T_1 identity is checked to 1e-9 relative.
		if T < work*(1-1e-9) || T < span {
			return nil, fmt.Errorf("E-BRENT n=%d: T=%g violates work/span lower bounds (T_1=%g, T_inf=%g)", sz.n, T, work, span)
		}
		if T > work*(1+1e-9) { // greedy bound at p = 1: T <= (T_1 - T_inf) + T_inf = T_1
			return nil, fmt.Errorf("E-BRENT n=%d: T=%g exceeds the p=1 greedy bound T_1=%g", sz.n, T, work)
		}
		if c := res.Ledger.Count(cost.Compute); c != int64(sz.n)*int64(sz.steps+1) {
			return nil, fmt.Errorf("E-BRENT n=%d: Compute count %d, want one per vertex (%d)", sz.n, c, int64(sz.n)*int64(sz.steps+1))
		}
		if i == 0 {
			exact, err := simulate.BlockedD1Context(ctx, sz.n, m, sz.steps, 0, prog1d())
			if err != nil {
				return nil, err
			}
			if rel := math.Abs(T-float64(exact.Time)) / float64(exact.Time); rel > 1e-9 {
				return nil, fmt.Errorf("E-BRENT n=%d: analytic T=%g vs exact %g (rel %g)", sz.n, T, float64(exact.Time), rel)
			}
		}
		t.Rows = append(t.Rows, []string{
			d(sz.n), d(sz.steps), g3(T), g3(work), g3(span),
			f1(T / vol), f1(analytic.Theorem3Slowdown(sz.n, m) / float64(sz.n)),
			analytic.RangeOf(1, sz.n, m, 1).String(),
		})
	}
	t.Notes = append(t.Notes,
		"every row passed T >= T_1, T >= T_inf, T <= (T_1-T_inf)/p + T_inf (p=1), and Compute == n*(steps+1) exactly",
		"the smallest row is cross-checked against the exact blocked engine to 1e-9 relative",
		"T/(vol) is the per-vertex slowdown; the Thm3 column is the per-vertex form of the O(n*min(n, m*Log(n/m))) bound")
	return t, nil
}

// Theta validates the Θ-model degradation path end to end: the
// event-driven multi-theta scheme at Θ = 1 reproduces the lockstep
// multi run exactly (same Time, same PrepTime — the event queue and the
// phase barrier are two executions of the same charge sequence), and as
// Θ grows the makespan grows monotonically while idle (Sync) time
// appears: desynchronized processors wait at each wave join.
func Theta(ctx context.Context, s Scale) (*Table, error) {
	n, p, m, steps := 1024, 8, 16, 16
	if s.Quick {
		n, p, m, steps = 64, 4, 4, 8
	}
	const seed = 7
	thetas := []float64{1, 2, 4, 8}
	t := &Table{
		ID:    "E-THETA",
		Title: fmt.Sprintf("Θ-model bounded-delay degradation (multi-theta, d=1, n=%d, p=%d, m=%d)", n, p, m),
		PaperClaim: "§2: links propagate messages at bounded speed — delivery takes at " +
			"least the distance. The Θ-model relaxes lockstep delivery to delays in " +
			"[dist, Θ·dist]; Θ = 1 recovers the synchronous schedule exactly, and the " +
			"upper-bound schedule degrades gracefully as Θ grows",
		Header: []string{"Θ", "T_p", "prep", "sync", "T/T_lock"},
	}
	lock, err := simulate.RunSchemeContext(ctx, "multi", 1, n, p, m, steps, prog1d(), simulate.SchemeConfig{})
	if err != nil {
		return nil, err
	}
	prev := 0.0
	for _, theta := range thetas {
		cfg := simulate.SchemeConfig{Multi: simulate.MultiOptions{Theta: theta, ThetaSeed: seed}}
		res, err := simulate.RunSchemeContext(ctx, "multi-theta", 1, n, p, m, steps, prog1d(), cfg)
		if err != nil {
			return nil, err
		}
		T := float64(res.Time)
		if theta == 1 && (res.Time != lock.Time || res.PrepTime != lock.PrepTime) {
			return nil, fmt.Errorf("E-THETA: Θ=1 times (%g, %g) differ from lockstep (%g, %g)",
				T, float64(res.PrepTime), float64(lock.Time), float64(lock.PrepTime))
		}
		if T < prev {
			return nil, fmt.Errorf("E-THETA: Time %g decreased at Θ=%g (prev %g)", T, theta, prev)
		}
		prev = T
		t.Rows = append(t.Rows, []string{
			f1(theta), g3(T), g3(float64(res.PrepTime)),
			g3(res.Ledger.Total(cost.Sync)), f2(T / float64(lock.Time)),
		})
	}
	t.Notes = append(t.Notes,
		"the Θ = 1 row is checked bit-identical to the lockstep multi scheme (Time and PrepTime)",
		"Time is checked monotone non-decreasing in Θ; sync is the idle time charged at wave joins",
		fmt.Sprintf("delays drawn deterministically from seed %d: the table reproduces exactly", seed))
	return t, nil
}

// Fault validates the fault-masked regime end to end: the multi-faulty
// scheme at density 0 reproduces the lockstep multi run bit-exactly
// (the fault plan degenerates to unit stretch factors and the full
// processor set), and as the dead-component density grows at a fixed
// seed the makespan grows monotonically — threshold sampling nests the
// dead sets, so every casualty at density f is still dead at f' > f
// while detour and memory-overhead stretches only accumulate. Guest
// outputs never change: faults stretch virtual time, not computation.
func Fault(ctx context.Context, s Scale) (*Table, error) {
	n, p, m, steps := 1024, 8, 16, 16
	if s.Quick {
		n, p, m, steps = 64, 8, 4, 8
	}
	const seed = 7
	densities := []float64{0, 0.05, 0.1, 0.2, 0.4}
	t := &Table{
		ID:    "E-FAULT",
		Title: fmt.Sprintf("Fault-masked degradation (multi-faulty, d=1, n=%d, p=%d, m=%d, seed=%d)", n, p, m, seed),
		PaperClaim: "§6: the upper-bound schedules survive statically faulty components — " +
			"dead processors shed their load onto the surviving d-shaped sub-mesh and " +
			"dead memory cells stretch the effective density, degrading the bound by " +
			"constant detour and capacity factors while the simulation stays exact",
		Header: []string{"faults", "dead_p", "dead_cells", "p_eff", "dist×", "mem×", "T_p", "T/T_lock"},
	}
	lock, err := simulate.RunSchemeContext(ctx, "multi", 1, n, p, m, steps, prog1d(), simulate.SchemeConfig{})
	if err != nil {
		return nil, err
	}
	prev := 0.0
	for _, f := range densities {
		cfg := simulate.SchemeConfig{Multi: simulate.MultiOptions{Faults: f, FaultSeed: seed}}
		res, err := simulate.RunSchemeContext(ctx, "multi-faulty", 1, n, p, m, steps, prog1d(), cfg)
		if err != nil {
			return nil, fmt.Errorf("E-FAULT: density %g: %w", f, err)
		}
		T := float64(res.Time)
		if f == 0 && (res.Time != lock.Time || res.PrepTime != lock.PrepTime) {
			return nil, fmt.Errorf("E-FAULT: zero-density times (%g, %g) differ from lockstep (%g, %g)",
				T, float64(res.PrepTime), float64(lock.Time), float64(lock.PrepTime))
		}
		if T < prev {
			return nil, fmt.Errorf("E-FAULT: Time %g decreased at density %g (prev %g)", T, f, prev)
		}
		prev = T
		if len(res.Outputs) != len(lock.Outputs) {
			return nil, fmt.Errorf("E-FAULT: density %g produced %d outputs, want %d", f, len(res.Outputs), len(lock.Outputs))
		}
		for i := range res.Outputs {
			if res.Outputs[i] != lock.Outputs[i] {
				return nil, fmt.Errorf("E-FAULT: density %g changed guest output %d", f, i)
			}
		}
		fr := res.Faults
		if fr == nil {
			return nil, fmt.Errorf("E-FAULT: density %g returned no fault report", f)
		}
		t.Rows = append(t.Rows, []string{
			f2(f), d(fr.DeadProcs), d(fr.DeadCells), d(fr.EffectiveP),
			f2(fr.DistStretch), f2(fr.MemStretch), g3(T), f2(T / float64(lock.Time)),
		})
	}
	t.Notes = append(t.Notes,
		"the density 0 row is checked bit-identical to the lockstep multi scheme (Time and PrepTime)",
		"Time is checked monotone non-decreasing in the density: threshold sampling nests the dead sets at a fixed seed",
		"every row's guest outputs are checked identical to the fault-free run — faults stretch time, never results",
		fmt.Sprintf("the mask is drawn deterministically from seed %d: the table reproduces exactly", seed))
	return t, nil
}

// Registry runs every entry of the scheme registry once at a small
// common scale through simulate.RunScheme — the exact call path
// cmd/tradeoff uses — verifying outputs wherever the scheme is
// executable-grade and reporting, for the multiprocessor rows, the
// per-phase attribution of the makespan (rearrangement, Regime 1
// relocation, Regime 2 kernel execution, Regime 2 boundary exchange).
func Registry(ctx context.Context, s Scale) (*Table, error) {
	steps1, steps2, steps3 := 16, 8, 4
	if !s.Quick {
		steps1, steps2, steps3 = 32, 16, 8
	}
	t := &Table{
		ID:    "E-REG",
		Title: "Scheme registry: the simulation ladder through one call path",
		PaperClaim: "the paper's algorithms — naive (Prop. 1), divide-and-conquer " +
			"(Thms. 2/5), blocked (Thm. 3), multiprocessor (Thm. 4 / Thm. 1) — as " +
			"named schemes selectable per dimension",
		Header: []string{"scheme", "d", "n", "p", "m", "T_p", "check", "rearr/reg1/exec/exch"},
	}
	for _, sc := range simulate.Schemes {
		var n, p, m, steps, side int
		switch sc.D {
		case 1:
			n, steps = 64, steps1
		case 2:
			side = 8
			n, steps = side*side, steps2
		default:
			side = 4
			n, steps = side*side*side, steps3
		}
		p = 1
		if sc.Multiproc {
			p = 4
			if sc.D == 3 {
				p = 8
			}
		}
		m = 4
		if sc.Name == "unidc" {
			m = 1 // Theorems 2 and 5 are the m = 1 case
		}
		dagGuest := guest.Rule90{Seed: 1}
		prog := prog1d()
		switch {
		case sc.Name == "unidc" && sc.D == 2:
			prog = guest.AsNetwork{G: dagGuest, Side: side}
		case sc.Name == "unidc" && sc.D == 3:
			prog = guest.AsNetwork{G: dagGuest, CubeSide: side}
		case sc.Name == "unidc":
			prog = guest.AsNetwork{G: dagGuest}
		case sc.D == 2:
			prog = prog2d(side)
		case sc.D == 3:
			prog = guest.AsNetwork{G: guest.MixCA{Seed: 9}, CubeSide: side}
		}
		res, err := simulate.RunSchemeContext(ctx, sc.Name, sc.D, n, p, m, steps, prog, simulate.SchemeConfig{})
		if err != nil {
			return nil, fmt.Errorf("scheme %s d=%d: %w", sc.Name, sc.D, err)
		}
		// Executable-grade schemes replay the reference computation
		// bit-exactly; unidc is checked at the dag level; the d >= 2
		// multiprocessor entries are model-grade (fidelity L2).
		check := "exact"
		switch {
		case sc.Name == "unidc":
			if err := simulate.VerifyDag(res.Result, sc.D, n, dagGuest); err != nil {
				return nil, fmt.Errorf("scheme unidc d=%d: %w", sc.D, err)
			}
			check = "dag"
		case (sc.Name == "multi" || sc.Name == "multi-theta" || sc.Name == "multi-faulty") && sc.D >= 2:
			check = "model"
		case sc.Name == "blocked-analytic":
			// The analytic path produces no guest outputs by design; its
			// fidelity gate is the work/span battery (E-BRENT).
			check = "model"
		default:
			if err := res.Verify(sc.D, n, m, prog); err != nil {
				return nil, fmt.Errorf("scheme %s d=%d: %w", sc.Name, sc.D, err)
			}
		}
		phases := "-"
		if pb := res.Phases; pb != nil {
			tot := float64(pb.Total())
			share := func(name string) string {
				return fmt.Sprintf("%.0f%%", 100*float64(pb.Time(name))/tot)
			}
			phases = share(cost.PhaseRearrange) + "/" + share(cost.PhaseRegime1) +
				"/" + share(cost.PhaseRegime2Exec) + "/" + share(cost.PhaseRegime2Exchange)
		}
		t.Rows = append(t.Rows, []string{
			sc.Name, d(sc.D), d(n), d(p), d(m), g3(float64(res.Time)), check, phases,
		})
	}
	t.Notes = append(t.Notes,
		"every row ran through RunScheme(name, d, ...) — no scheme-specific call sites",
		"phase shares are fractions of the multiprocessor makespan Time + PrepTime",
		"the naive scheme has no d = 3 entry; blocked/multi cover d = 3, unidc covers the m = 1 dag")
	return t, nil
}

// allFns is the E-* experiment battery, in publication order.
var allFns = []func(context.Context, Scale) (*Table, error){
	P1, ISA, T2, T3, T3D2, T4, T5, T1D2, D3, D3Multi, MM, SStar, Ablations, Levels, Coop, Pipe, MPrime, Brent, Theta, Fault, Registry,
}

// All runs every E-* experiment concurrently on up to GOMAXPROCS workers
// and returns the tables in the same order the sequential battery always
// produced. Experiments are independent — each builds its own guests,
// graphs, and meters; the only shared state is the simulate package's
// bounded kernel cache. An experiment failure does not stop the others;
// all failures are reported together via errors.Join, in battery order,
// so the error text is deterministic.
func All(s Scale) ([]*Table, error) {
	return AllContext(context.Background(), s)
}

// AllContext is All under a context. On cancellation, workers stop
// picking up new experiments, in-flight experiments abort at their next
// cooperative checkpoint, and the battery flushes partial results: the
// returned slice holds every experiment that completed successfully, in
// battery order (gaps elided), alongside the context's error. Figures
// are appended only to a complete, uncancelled battery, so the partial
// flush is a deterministic function of which experiments finished.
func AllContext(ctx context.Context, s Scale) ([]*Table, error) {
	return all(ctx, s, runtime.GOMAXPROCS(0))
}

// AllSequential runs the battery on a single worker: the seed's behavior,
// kept for benchmark comparison (BenchmarkExpAll) and for profiling runs
// where interleaved experiments would muddy the profile.
func AllSequential(s Scale) ([]*Table, error) {
	return all(context.Background(), s, 1)
}

// AllSequentialContext is AllSequential under a context, with the same
// partial-flush contract as AllContext.
func AllSequentialContext(ctx context.Context, s Scale) ([]*Table, error) {
	return all(ctx, s, 1)
}

func all(ctx context.Context, s Scale, workers int) ([]*Table, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(allFns) {
		workers = len(allFns)
	}
	out := make([]*Table, len(allFns))
	errs := make([]error, len(allFns))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				out[i], errs[i] = allFns[i](ctx, s)
			}
		}()
	}
	for i := range allFns {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if ctx.Err() != nil {
		// Partial flush: completed tables in battery order, gaps elided.
		var done []*Table
		for i, t := range out {
			if errs[i] == nil && t != nil {
				done = append(done, t)
			}
		}
		return done, ctx.Err()
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	figs, err := Figures()
	if err != nil {
		return nil, err
	}
	return append(out, figs...), nil
}
