package exp

import "testing"

// BenchmarkExpAll compares the concurrent experiment battery against the
// single-worker path on the quick scale. On a multi-core host the
// parallel variant wins wall-clock roughly linearly in min(GOMAXPROCS,
// 17 experiments); on one core the two coincide (the pool degenerates to
// a single worker). Per-op allocations are the same work either way.
func BenchmarkExpAll(b *testing.B) {
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := All(Scale{Quick: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := AllSequential(Scale{Quick: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
