// Package exp is the experiment harness: it runs the reproduction
// experiments indexed in DESIGN.md (one per theorem and figure of Bilardi
// & Preparata, SPAA 1995), collects measured-vs-bound series, and formats
// them as the tables printed by cmd/experiments, recorded in
// EXPERIMENTS.md, and exercised one-per-experiment by the repository's
// benchmarks.
package exp

import (
	"fmt"
	"math"
	"strings"
)

// Table is one experiment's output: a paper claim, measured rows, and
// notes on how to read them.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Header     []string
	Rows       [][]string
	Notes      []string
}

// Format renders the table as aligned plain text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "   paper: %s\n", t.PaperClaim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		b.WriteString("   ")
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Paper claim:* %s\n\n", t.PaperClaim)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// FitSlope returns the least-squares slope of y over x — the log–log
// growth exponent when fed logarithms.
func FitSlope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// LogLogSlope fits the exponent of ys against xs.
func LogLogSlope(xs, ys []float64) float64 {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		lx[i] = math.Log2(xs[i])
		ly[i] = math.Log2(ys[i])
	}
	return FitSlope(lx, ly)
}

// BandRatio reports max/min over the series — 1.0 means perfectly flat.
func BandRatio(v []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return hi / lo
}

// Crossover returns the first x at which series a rises above series b
// (both evaluated on xs), or -1 if none.
func Crossover(xs, a, b []float64) float64 {
	for i := range xs {
		if a[i] > b[i] {
			return xs[i]
		}
	}
	return -1
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func g3(v float64) string { return fmt.Sprintf("%.3g", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
