package exp

import (
	"fmt"
	"strings"

	"bsmp/internal/dag"
	"bsmp/internal/lattice"
)

// validatePartition checks that pieces exactly tile the parent and that
// their order is topological for graph g (Definition 4 of the paper).
func validatePartition(g dag.Graph, parent lattice.Domain, pieces []lattice.Domain) error {
	seen := make(map[lattice.Point]int)
	total := 0
	for i, pc := range pieces {
		var fail error
		pc.Points(func(p lattice.Point) bool {
			if !parent.Contains(p) {
				fail = fmt.Errorf("piece %d point %v outside parent", i, p)
				return false
			}
			if j, dup := seen[p]; dup {
				fail = fmt.Errorf("point %v in pieces %d and %d", p, j, i)
				return false
			}
			seen[p] = i
			total++
			return true
		})
		if fail != nil {
			return fail
		}
	}
	if total != parent.Size() {
		return fmt.Errorf("pieces cover %d of %d points", total, parent.Size())
	}
	var buf []lattice.Point
	for p, i := range seen {
		buf = g.Preds(p, buf[:0])
		for _, q := range buf {
			if j, in := seen[q]; in && j > i {
				return fmt.Errorf("dependency violation: %v (piece %d) needs %v (piece %d)", p, i, q, j)
			}
		}
	}
	return nil
}

// F1 reproduces Figure 1: the five-piece diamond partition of V.
func F1() (*Table, error) {
	t := &Table{
		ID:         "F1",
		Title:      "Partition of V into five full/truncated diamonds (d=1)",
		PaperClaim: "V = [0,n)² has an ordered topological partition (U1..U5); U3 is a full D(n)",
		Header:     []string{"n", "pieces", "central/|V|", "topological"},
	}
	for _, n := range []int{16, 64, 256} {
		pieces := lattice.FigureOnePartition(n)
		doms := make([]lattice.Domain, len(pieces))
		for i, p := range pieces {
			doms[i] = p
		}
		g := dag.NewLineGraph(n, n)
		err := validatePartition(g, g.Domain(), doms)
		ok := "yes"
		if err != nil {
			ok = "NO: " + err.Error()
		}
		frac := float64(pieces[2].Size()) / float64(n*n)
		t.Rows = append(t.Rows, []string{d(n), d(len(pieces)), f2(frac), ok})
	}
	t.Notes = append(t.Notes, "central diamond measure n²/2 over |V| = n² gives the 0.50 column")
	return t, nil
}

// F2 reproduces Figure 2: the zig-zag bands of diamonds per processor.
func F2() (*Table, error) {
	t := &Table{
		ID:         "F2",
		Title:      "Zig-zag diamond bands per processor (d=1)",
		PaperClaim: "V decomposes into ~2p diamonds of type D(n/p) per processor band",
		Header:     []string{"n", "p", "s", "cells/band min..max", "covered"},
	}
	for _, c := range [][3]int{{16, 4, 4}, {64, 8, 8}, {256, 8, 32}} {
		n, p, s := c[0], c[1], c[2]
		bands := lattice.ZigZagBands(n, p, s)
		mn, mx, total := 1<<30, 0, 0
		for _, b := range bands {
			if len(b) < mn {
				mn = len(b)
			}
			if len(b) > mx {
				mx = len(b)
			}
			for _, cell := range b {
				total += cell.D.Size()
			}
		}
		cov := "yes"
		if total != n*n {
			cov = fmt.Sprintf("NO (%d/%d)", total, n*n)
		}
		t.Rows = append(t.Rows, []string{d(n), d(p), d(s), fmt.Sprintf("%d..%d", mn, mx), cov})
	}
	return t, nil
}

// F3 reproduces Figure 3: the recursive octahedron and tetrahedron
// decompositions.
func F3() (*Table, error) {
	t := &Table{
		ID:    "F3",
		Title: "Octahedron/tetrahedron recursive decomposition (d=2)",
		PaperClaim: "P(r) -> 6 P(r/2) + 8 W(r/2) with |P(r/2)|=|P|/8, |W(r/2)|=|P|/32; " +
			"W(r) -> 1 P(r/2) + 4 W(r/2) with |P(r/2)|=|W|/2, |W(r/2)|=|W|/8",
		Header: []string{"domain", "r", "children P+W", "size ratios", "topological"},
	}
	g := unboundedMesh{} // canonical P/W domains live off the machine grid
	for _, r := range []int{16, 32} {
		for _, kind := range []string{"P", "W"} {
			var dom lattice.Box4
			if kind == "P" {
				dom = lattice.FigureThreeOctahedron(r)
			} else {
				dom = lattice.FigureThreeTetrahedron(r)
			}
			kids := dom.Children()
			counts := lattice.KindCount(kids)
			err := validatePartition(g, dom, kids)
			ok := "yes"
			if err != nil {
				ok = "NO: " + err.Error()
			}
			var ratios []string
			seenKind := map[lattice.Kind]bool{}
			for _, k := range kids {
				b := k.(lattice.Box4)
				if !seenKind[b.Kind()] {
					seenKind[b.Kind()] = true
					ratios = append(ratios, fmt.Sprintf("%s:1/%.1f",
						b.Kind(), float64(dom.Size())/float64(b.Size())))
				}
			}
			t.Rows = append(t.Rows, []string{
				kind, d(r),
				fmt.Sprintf("%dP+%dW", counts[lattice.Octahedron], counts[lattice.Tetrahedron]),
				strings.Join(ratios, " "), ok,
			})
		}
	}
	return t, nil
}

// F4 reproduces Figure 4: the partition of the d = 2 domain V into full
// and truncated octahedra/tetrahedra.
func F4() (*Table, error) {
	t := &Table{
		ID:    "F4",
		Title: "Partition of the cube V into octahedra/tetrahedra (d=2)",
		PaperClaim: "V has an ordered topological partition into full/truncated P and W instances " +
			"(the paper draws 17 pieces; tie-handling at the cube faces makes our count differ)",
		Header: []string{"side", "pieces", "P", "W", "topological"},
	}
	for _, side := range []int{8, 16, 32} {
		pieces := lattice.FigureFourPartition(side)
		g := dag.NewMeshGraph(side, side)
		doms := make([]lattice.Domain, len(pieces))
		nP, nW := 0, 0
		for i, p := range pieces {
			doms[i] = p
			switch p.Kind() {
			case lattice.Octahedron:
				nP++
			case lattice.Tetrahedron:
				nW++
			}
		}
		err := validatePartition(g, g.Domain(), doms)
		ok := "yes"
		if err != nil {
			ok = "NO: " + err.Error()
		}
		t.Rows = append(t.Rows, []string{d(side), d(len(pieces)), d(nP), d(nW), ok})
	}
	return t, nil
}

// unboundedMesh is the infinite d = 2 dag stencil, used to validate the
// canonical (unclipped) Figure 3 domains, whose points are not confined to
// any machine grid.
type unboundedMesh struct{}

func (unboundedMesh) Contains(lattice.Point) bool { return true }
func (unboundedMesh) Steps() int                  { return 1 << 30 }
func (unboundedMesh) Nodes() int                  { return 1 << 30 }

// Bounds is nominally unbounded; too large for a lattice.Indexer, which
// validatePartition never builds.
func (unboundedMesh) Bounds() lattice.Clip { return lattice.UnboundedClip() }

func (unboundedMesh) Preds(v lattice.Point, buf []lattice.Point) []lattice.Point {
	t := v.T - 1
	return append(buf,
		lattice.Point{X: v.X, Y: v.Y, T: t},
		lattice.Point{X: v.X - 1, Y: v.Y, T: t},
		lattice.Point{X: v.X + 1, Y: v.Y, T: t},
		lattice.Point{X: v.X, Y: v.Y - 1, T: t},
		lattice.Point{X: v.X, Y: v.Y + 1, T: t},
	)
}

func (unboundedMesh) Succs(v lattice.Point, buf []lattice.Point) []lattice.Point {
	t := v.T + 1
	return append(buf,
		lattice.Point{X: v.X, Y: v.Y, T: t},
		lattice.Point{X: v.X - 1, Y: v.Y, T: t},
		lattice.Point{X: v.X + 1, Y: v.Y, T: t},
		lattice.Point{X: v.X, Y: v.Y - 1, T: t},
		lattice.Point{X: v.X, Y: v.Y + 1, T: t},
	)
}

// Figures runs F1-F4 plus the d = 3 separator validation.
func Figures() ([]*Table, error) {
	var out []*Table
	for _, f := range []func() (*Table, error){F1, F2, F3, F4, FD3} {
		t, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// RenderFigure1 draws the Figure 1 partition as an n × n character grid
// (x horizontal, t upward), labeling pieces 1-5.
func RenderFigure1(n int) string {
	pieces := lattice.FigureOnePartition(n)
	grid := make([][]byte, n)
	for t := range grid {
		grid[t] = []byte(strings.Repeat(".", n))
	}
	for i, pc := range pieces {
		lbl := byte('1' + i)
		pc.Points(func(p lattice.Point) bool {
			grid[p.T][p.X] = lbl
			return true
		})
	}
	var b strings.Builder
	for t := n - 1; t >= 0; t-- {
		b.Write(grid[t])
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderZigZag draws the band assignment of Figure 2: each vertex of V
// labeled by its owning processor (a-z cycled).
func RenderZigZag(n, p, s int) string {
	bands := lattice.ZigZagBands(n, p, s)
	grid := make([][]byte, n)
	for t := range grid {
		grid[t] = []byte(strings.Repeat(".", n))
	}
	for k, band := range bands {
		lbl := byte('a' + k%26)
		for _, cell := range band {
			cell.D.Points(func(pt lattice.Point) bool {
				grid[pt.T][pt.X] = lbl
				return true
			})
		}
	}
	var b strings.Builder
	for t := n - 1; t >= 0; t-- {
		b.Write(grid[t])
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure4Slice draws one time-slice of the Figure 4 partition:
// every mesh node labeled by the piece owning its vertex at time t.
func RenderFigure4Slice(side, t int) string {
	pieces := lattice.FigureFourPartition(side)
	grid := make([][]byte, side)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", side))
	}
	labels := "0123456789abcdefghijklmnopqrstuvwxyz"
	for i, pc := range pieces {
		lbl := labels[i%len(labels)]
		pc.Points(func(p lattice.Point) bool {
			if p.T == t {
				grid[p.Y][p.X] = lbl
			}
			return true
		})
	}
	var b strings.Builder
	for y := side - 1; y >= 0; y-- {
		b.Write(grid[y])
		b.WriteByte('\n')
	}
	return b.String()
}

// FD3 validates the d = 3 separator construction of the conclusions'
// conjecture — the analog of Figure 3 one dimension up.
func FD3() (*Table, error) {
	t := &Table{
		ID:    "F-D3",
		Title: "Four-dimensional separator decomposition (d=3 extension)",
		PaperClaim: "conclusions: a suitable topological separator for four-dimensional " +
			"domains is the critical step for extending Theorem 1 to d = 3",
		Header: []string{"r", "children", "central", "wedges", "topological"},
	}
	for _, r := range []int{8, 16} {
		b := lattice.CentralBox6(r)
		kids := b.Children()
		central, wedges := 0, 0
		doms := make([]lattice.Domain, len(kids))
		for i, k := range kids {
			doms[i] = k
			if k.(lattice.Box6).IsCentral() {
				central++
			} else {
				wedges++
			}
		}
		err := validatePartition(unboundedCube{}, b, doms)
		ok := "yes"
		if err != nil {
			ok = "NO: " + err.Error()
		}
		t.Rows = append(t.Rows, []string{
			d(r), d(len(kids)), d(central), d(wedges), ok,
		})
	}
	t.Notes = append(t.Notes,
		"the 46-way split (10 central + 36 wedges) is the d = 3 counterpart of Figure 3's 6 P + 8 W",
		"preboundary Θ(|U|^(3/4)): the γ = d/(d+1) separator exponent — see lattice tests")
	return t, nil
}

// unboundedCube is the infinite d = 3 dag stencil.
type unboundedCube struct{}

func (unboundedCube) Contains(lattice.Point) bool { return true }
func (unboundedCube) Steps() int                  { return 1 << 30 }
func (unboundedCube) Nodes() int                  { return 1 << 30 }

// Bounds is nominally unbounded; too large for a lattice.Indexer, which
// validatePartition never builds.
func (unboundedCube) Bounds() lattice.Clip { return lattice.UnboundedClip() }

func (unboundedCube) Preds(v lattice.Point, buf []lattice.Point) []lattice.Point {
	t := v.T - 1
	return append(buf,
		lattice.Point{X: v.X, Y: v.Y, Z: v.Z, T: t},
		lattice.Point{X: v.X - 1, Y: v.Y, Z: v.Z, T: t},
		lattice.Point{X: v.X + 1, Y: v.Y, Z: v.Z, T: t},
		lattice.Point{X: v.X, Y: v.Y - 1, Z: v.Z, T: t},
		lattice.Point{X: v.X, Y: v.Y + 1, Z: v.Z, T: t},
		lattice.Point{X: v.X, Y: v.Y, Z: v.Z - 1, T: t},
		lattice.Point{X: v.X, Y: v.Y, Z: v.Z + 1, T: t},
	)
}

func (unboundedCube) Succs(v lattice.Point, buf []lattice.Point) []lattice.Point {
	t := v.T + 1
	return append(buf,
		lattice.Point{X: v.X, Y: v.Y, Z: v.Z, T: t},
		lattice.Point{X: v.X - 1, Y: v.Y, Z: v.Z, T: t},
		lattice.Point{X: v.X + 1, Y: v.Y, Z: v.Z, T: t},
		lattice.Point{X: v.X, Y: v.Y - 1, Z: v.Z, T: t},
		lattice.Point{X: v.X, Y: v.Y + 1, Z: v.Z, T: t},
		lattice.Point{X: v.X, Y: v.Y, Z: v.Z - 1, T: t},
		lattice.Point{X: v.X, Y: v.Y, Z: v.Z + 1, T: t},
	)
}
