package exp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo", PaperClaim: "claim",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"note"},
	}
	txt := tab.Format()
	for _, want := range []string{"X: demo", "claim", "333", "note:"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Format missing %q in:\n%s", want, txt)
		}
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "### X") {
		t.Errorf("Markdown malformed:\n%s", md)
	}
}

func TestFitHelpers(t *testing.T) {
	// y = 3x: slope 3.
	if s := FitSlope([]float64{1, 2, 3}, []float64{3, 6, 9}); s < 2.99 || s > 3.01 {
		t.Errorf("FitSlope = %v, want 3", s)
	}
	// y = x²: log-log slope 2.
	if s := LogLogSlope([]float64{2, 4, 8}, []float64{4, 16, 64}); s < 1.99 || s > 2.01 {
		t.Errorf("LogLogSlope = %v, want 2", s)
	}
	if r := BandRatio([]float64{2, 4, 3}); r != 2 {
		t.Errorf("BandRatio = %v, want 2", r)
	}
	if x := Crossover([]float64{1, 2, 3}, []float64{0, 1, 5}, []float64{2, 2, 2}); x != 3 {
		t.Errorf("Crossover = %v, want 3", x)
	}
	if x := Crossover([]float64{1, 2}, []float64{0, 0}, []float64{1, 1}); x != -1 {
		t.Errorf("Crossover = %v, want -1", x)
	}
}

func TestQuickExperimentsRun(t *testing.T) {
	s := Scale{Quick: true}
	for name, f := range map[string]func(context.Context, Scale) (*Table, error){
		"P1": P1, "T2": T2, "T3": T3, "T4": T4, "T5": T5,
		"T1D2": T1D2, "D3": D3, "MM": MM, "SStar": SStar, "Ablations": Ablations,
		"Pipe": Pipe, "MPrime": MPrime, "Coop": Coop, "Levels": Levels, "ISA": ISA,
		"T3D2": T3D2, "D3Multi": D3Multi, "Brent": Brent,
		"Theta": Theta, "Fault": Fault,
	} {
		tab, err := f(context.Background(), s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", name)
		}
		if tab.ID == "" || tab.PaperClaim == "" {
			t.Errorf("%s: missing metadata", name)
		}
	}
}

func TestAllContextPartialFlush(t *testing.T) {
	// Pre-cancelled: no experiment starts; the battery returns an empty
	// set plus the context's error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tabs, err := AllContext(ctx, Scale{Quick: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled AllContext err = %v, want context.Canceled", err)
	}
	if len(tabs) != 0 {
		t.Fatalf("pre-cancelled AllContext returned %d tables, want 0", len(tabs))
	}

	// Mid-battery cancel: the tables of every experiment that finished
	// are flushed in deterministic battery order — a subsequence of the
	// full battery's output.
	full, err := AllSequential(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	order := make(map[string]int, len(full))
	for i, tb := range full {
		order[tb.ID] = i
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel2()
	tabs2, err2 := AllSequentialContext(ctx2, Scale{Quick: true})
	if err2 == nil {
		t.Skip("quick battery finished inside the deadline; cancellation not exercised")
	}
	if !errors.Is(err2, context.DeadlineExceeded) {
		t.Fatalf("AllSequentialContext err = %v, want context.DeadlineExceeded", err2)
	}
	last := -1
	for _, tb := range tabs2 {
		i, ok := order[tb.ID]
		if !ok {
			t.Fatalf("partial flush contains unknown table %s", tb.ID)
		}
		if i <= last {
			t.Fatalf("partial flush out of battery order at %s", tb.ID)
		}
		last = i
	}
}

func TestFiguresValidate(t *testing.T) {
	tabs, err := Figures()
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 5 {
		t.Fatalf("got %d figure tables, want 5 (F1-F4 + F-D3)", len(tabs))
	}
	for _, tab := range tabs {
		for _, row := range tab.Rows {
			last := row[len(row)-1]
			if strings.HasPrefix(last, "NO") {
				t.Errorf("%s: validation failed: %v", tab.ID, row)
			}
		}
	}
}

func TestRenderFigure1(t *testing.T) {
	out := RenderFigure1(8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8", len(lines))
	}
	for _, l := range lines {
		if len(l) != 8 {
			t.Fatalf("line %q length != 8", l)
		}
		if strings.Contains(l, ".") {
			t.Fatalf("uncovered cell in %q", l)
		}
	}
	// All five labels appear.
	joined := strings.Join(lines, "")
	for _, lbl := range "12345" {
		if !strings.ContainsRune(joined, lbl) {
			t.Errorf("label %c missing", lbl)
		}
	}
}

func TestRenderZigZag(t *testing.T) {
	out := RenderZigZag(16, 4, 4)
	if strings.Contains(out, ".") {
		t.Fatal("uncovered cell in zig-zag rendering")
	}
	for _, lbl := range "abcd" {
		if !strings.ContainsRune(out, lbl) {
			t.Errorf("band %c missing", lbl)
		}
	}
}

func TestRenderFigure4Slice(t *testing.T) {
	out := RenderFigure4Slice(8, 3)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8", len(lines))
	}
	if strings.Contains(out, ".") {
		t.Fatal("uncovered node in slice t=3")
	}
}
