package profiling

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("no-op stop: %v", err)
	}
}

func TestStartCPUOnly(t *testing.T) {
	cpu := filepath.Join(t.TempDir(), "cpu.prof")
	stop, err := Start(cpu, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("empty cpu profile")
	}
}

func TestStartMemOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.prof")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(mem)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("empty heap profile")
	}
}

func TestStartBoth(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.prof"), filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("%s: err=%v", p, err)
		}
	}
}

func TestStartUnwritableCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof"), ""); err == nil {
		t.Fatal("Start succeeded with unwritable cpu path")
	}
}

func TestStopUnwritableMemPath(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.prof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("stop succeeded with unwritable mem path")
	}
}

func TestStopIdempotent(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "no-dir", "mem.prof")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	first := stop()
	if first == nil {
		t.Fatal("expected an error from the unwritable mem path")
	}
	// A second call must not re-run the flush; it reports the first
	// call's result.
	if second := stop(); !errors.Is(second, first) && second.Error() != first.Error() {
		t.Errorf("second stop = %v, want first call's error %v", second, first)
	}
}

func TestWriteFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(p, func(w io.Writer) error {
		_, err := io.WriteString(w, "[]")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[]" {
		t.Errorf("content = %q", b)
	}

	if err := WriteFile(filepath.Join(t.TempDir(), "no", "dir", "x"), func(io.Writer) error { return nil }); err == nil {
		t.Error("WriteFile succeeded with unwritable path")
	}
	if err := WriteFile(filepath.Join(t.TempDir(), "y"), func(io.Writer) error {
		return fmt.Errorf("render boom")
	}); err == nil || !strings.Contains(err.Error(), "render boom") {
		t.Errorf("WriteFile render error = %v, want wrapped render boom", err)
	}
}
