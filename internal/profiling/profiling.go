// Package profiling wires the standard runtime/pprof collectors into the
// command-line tools. Profiles are opt-in: with empty paths Start is a
// no-op, so the binaries pay nothing unless -cpuprofile/-memprofile is
// given. WriteFile is the shared create-render-close plumbing, also used
// by the -trace flag's Chrome-trace export.
package profiling

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges for a
// heap profile to be written to memPath (if non-empty). The returned stop
// function must be called at process exit to flush both; it reports any
// error writing the heap profile. stop is idempotent — calls after the
// first are no-ops returning the first call's error — so it is safe both
// deferred and on explicit early-exit paths.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	var once sync.Once
	var stopErr error
	return func() error {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					stopErr = fmt.Errorf("profiling: %w", err)
					return
				}
			}
			if memPath != "" {
				runtime.GC() // materialize final live-heap statistics
				stopErr = WriteFile(memPath, pprof.WriteHeapProfile)
			}
		})
		return stopErr
	}, nil
}

// WriteFile creates path, streams render into it, and closes it,
// surfacing the first error of the three steps.
func WriteFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := render(f); err != nil {
		f.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
