// Package profiling wires the standard runtime/pprof collectors into the
// command-line tools. Profiles are opt-in: with empty paths Start is a
// no-op, so the binaries pay nothing unless -cpuprofile/-memprofile is
// given.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges for a
// heap profile to be written to memPath (if non-empty). The returned stop
// function must be called exactly once, at process exit, to flush both;
// it reports any error writing the heap profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
