package cost

import (
	"math"
	"testing"
)

func TestNewThetaModelRejects(t *testing.T) {
	for _, theta := range []float64{0, 0.5, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := NewThetaModel(theta, 1); err == nil {
			t.Errorf("NewThetaModel(%v) accepted", theta)
		}
	}
	if _, err := NewThetaModel(1, 0); err != nil {
		t.Fatalf("NewThetaModel(1) rejected: %v", err)
	}
}

// TestThetaOneIsExactlyIdentity pins the bit-identity contract: at
// Θ = 1 every factor is exactly 1 and ChargeDelayed charges exactly dt.
func TestThetaOneIsExactlyIdentity(t *testing.T) {
	tm, _ := NewThetaModel(1, 12345)
	for proc := 0; proc < 4; proc++ {
		for seq := uint64(0); seq < 100; seq++ {
			if f := tm.Factor(proc, seq); f != 1 {
				t.Fatalf("Factor(%d, %d) = %v at theta=1", proc, seq, f)
			}
		}
	}
	a, b := NewBank(2), NewBank(2)
	b.SetDelayModel(tm)
	for i := 0; i < 50; i++ {
		a.Proc(0).Charge(Transfer, 0.1*float64(i))
		b.ChargeDelayed(0, Transfer, 0.1*float64(i))
	}
	if a.Proc(0).Now() != b.Proc(0).Now() {
		t.Fatalf("theta=1 clock %v != lockstep clock %v", b.Proc(0).Now(), a.Proc(0).Now())
	}
}

// TestFactorBounds checks factors stay in [1, Θ) and are deterministic
// in (seed, proc, seq).
func TestFactorBounds(t *testing.T) {
	tm, _ := NewThetaModel(2.5, 7)
	tm2, _ := NewThetaModel(2.5, 7)
	for proc := 0; proc < 8; proc++ {
		for seq := uint64(0); seq < 256; seq++ {
			f := tm.Factor(proc, seq)
			if f < 1 || f >= 2.5 {
				t.Fatalf("Factor(%d, %d) = %v out of [1, 2.5)", proc, seq, f)
			}
			if f != tm2.Factor(proc, seq) {
				t.Fatalf("Factor(%d, %d) not deterministic", proc, seq)
			}
		}
	}
}

// TestFactorMonotoneInTheta checks the graceful-degradation invariant:
// with seed, proc, and seq fixed, the factor is non-decreasing in Θ.
func TestFactorMonotoneInTheta(t *testing.T) {
	thetas := []float64{1, 1.25, 1.5, 2, 4, 8, 64}
	for proc := 0; proc < 4; proc++ {
		for seq := uint64(0); seq < 64; seq++ {
			prev := 0.0
			for _, th := range thetas {
				tm, _ := NewThetaModel(th, 99)
				f := tm.Factor(proc, seq)
				if f < prev {
					t.Fatalf("Factor(%d, %d) decreased from %v to %v at theta=%v", proc, seq, prev, f, th)
				}
				prev = f
			}
		}
	}
}

// TestChargeDelayedStretch checks that Θ > 1 stretches charges within
// bounds and advances the per-processor draw sequence independently.
func TestChargeDelayedStretch(t *testing.T) {
	tm, _ := NewThetaModel(3, 11)
	b := NewBank(2)
	b.SetDelayModel(tm)
	var total0 Time
	for i := 0; i < 100; i++ {
		got := b.ChargeDelayed(0, Transfer, 2)
		if got < 2 || got >= 6 {
			t.Fatalf("charge %d stretched to %v, want [2, 6)", i, got)
		}
		total0 += got
	}
	if b.Proc(0).Now() != total0 {
		t.Fatalf("clock %v != summed charges %v", b.Proc(0).Now(), total0)
	}
	if b.Proc(1).Now() != 0 {
		t.Fatalf("proc 1 clock moved: %v", b.Proc(1).Now())
	}
	// Replays identically after Reset (draw counters rewind).
	first := b.Proc(0).Now()
	b.Reset()
	for i := 0; i < 100; i++ {
		b.ChargeDelayed(0, Transfer, 2)
	}
	if b.Proc(0).Now() != first {
		t.Fatalf("replay after Reset: %v != %v", b.Proc(0).Now(), first)
	}
}

// TestSendDelayed checks the stretched link arrival bound.
func TestSendDelayed(t *testing.T) {
	tm, _ := NewThetaModel(2, 5)
	b := NewBank(2)
	b.SetDelayModel(tm)
	b.SendDelayed(0, 1, 10, 1)
	// Sender charged 1 word of occupancy; receiver idles to arrival in
	// [send end + 10, send end + 20).
	sendEnd := b.Proc(0).Now()
	if sendEnd != 1 {
		t.Fatalf("sender clock %v, want 1", sendEnd)
	}
	arr := b.Proc(1).Now()
	if arr < sendEnd+10 || arr >= sendEnd+20 {
		t.Fatalf("arrival %v outside [%v, %v)", arr, sendEnd+10, sendEnd+20)
	}
	// Without a model, SendDelayed is exactly Send.
	c, d := NewBank(2), NewBank(2)
	c.SendDelayed(0, 1, 10, 3)
	d.Send(0, 1, 10, 3)
	if c.Proc(1).Now() != d.Proc(1).Now() {
		t.Fatalf("modelless SendDelayed %v != Send %v", c.Proc(1).Now(), d.Proc(1).Now())
	}
}
