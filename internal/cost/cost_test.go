package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(3)
	c.Advance(0)
	c.Advance(1.5)
	if got := c.Now(); got != 4.5 {
		t.Fatalf("Now() = %v, want 4.5", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockAdvanceNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(NaN) did not panic")
		}
	}()
	var c Clock
	c.Advance(math.NaN())
}

func TestClockWaitUntil(t *testing.T) {
	var c Clock
	c.Advance(5)
	if idle := c.WaitUntil(3); idle != 0 {
		t.Fatalf("WaitUntil(past) idle = %v, want 0", idle)
	}
	if c.Now() != 5 {
		t.Fatalf("WaitUntil(past) moved clock to %v", c.Now())
	}
	if idle := c.WaitUntil(9); idle != 4 {
		t.Fatalf("WaitUntil(9) idle = %v, want 4", idle)
	}
	if c.Now() != 9 {
		t.Fatalf("clock at %v, want 9", c.Now())
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(7)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset, Now() = %v", c.Now())
	}
}

func TestLedgerBasics(t *testing.T) {
	var l Ledger
	l.Add(Compute, 2)
	l.Add(Compute, 3)
	l.Add(Access, 10)
	if got := l.Total(Compute); got != 5 {
		t.Fatalf("Total(Compute) = %v, want 5", got)
	}
	if got := l.Count(Compute); got != 2 {
		t.Fatalf("Count(Compute) = %v, want 2", got)
	}
	if got := l.Total(Access); got != 10 {
		t.Fatalf("Total(Access) = %v, want 10", got)
	}
	if got := l.Sum(); got != 15 {
		t.Fatalf("Sum() = %v, want 15", got)
	}
}

func TestLedgerInvalidCategoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(invalid) did not panic")
		}
	}()
	var l Ledger
	l.Add(Category(99), 1)
}

func TestLedgerMerge(t *testing.T) {
	var a, b Ledger
	a.Add(Message, 4)
	b.Add(Message, 6)
	b.Add(Sync, 1)
	a.Merge(&b)
	if a.Total(Message) != 10 || a.Total(Sync) != 1 {
		t.Fatalf("merge result message=%v sync=%v", a.Total(Message), a.Total(Sync))
	}
	if a.Count(Message) != 2 {
		t.Fatalf("merged count = %d, want 2", a.Count(Message))
	}
	// b unchanged
	if b.Total(Message) != 6 {
		t.Fatalf("merge mutated source: %v", b.Total(Message))
	}
}

func TestLedgerString(t *testing.T) {
	var l Ledger
	if got := l.String(); got != "empty" {
		t.Fatalf("empty ledger String = %q", got)
	}
	l.Add(Access, 2)
	l.Add(Compute, 5)
	if got := l.String(); got != "compute=5 access=2" {
		t.Fatalf("String = %q", got)
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{
		Compute: "compute", Access: "access", Transfer: "transfer",
		Message: "message", Sync: "sync",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("Category(%d).String() = %q, want %q", int(c), got, want)
		}
	}
	if got := Category(42).String(); got != "category(42)" {
		t.Errorf("unknown category String = %q", got)
	}
}

func TestMeterChargeAdvancesAndRecords(t *testing.T) {
	var m Meter
	m.Charge(Access, 3)
	m.Charge(Compute, 1)
	if m.Now() != 4 {
		t.Fatalf("Now() = %v, want 4", m.Now())
	}
	if m.Total(Access) != 3 || m.Total(Compute) != 1 {
		t.Fatalf("ledger access=%v compute=%v", m.Total(Access), m.Total(Compute))
	}
}

func TestMeterChargeN(t *testing.T) {
	var m Meter
	m.ChargeN(Transfer, 10, 2.5)
	if m.Now() != 25 {
		t.Fatalf("Now() = %v, want 25", m.Now())
	}
	if m.Count(Transfer) != 1 {
		t.Fatalf("ChargeN recorded %d entries, want 1", m.Count(Transfer))
	}
}

func TestMeterChargeNNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ChargeN(-1) did not panic")
		}
	}()
	var m Meter
	m.ChargeN(Transfer, -1, 1)
}

func TestMeterIdle(t *testing.T) {
	var m Meter
	m.Charge(Compute, 2)
	m.Idle(5)
	if m.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", m.Now())
	}
	if m.Total(Sync) != 3 {
		t.Fatalf("Sync total = %v, want 3", m.Total(Sync))
	}
	m.Idle(1) // in the past: no-op
	if m.Now() != 5 || m.Total(Sync) != 3 {
		t.Fatalf("past Idle changed state: now=%v sync=%v", m.Now(), m.Total(Sync))
	}
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.Charge(Compute, 2)
	m.Reset()
	if m.Now() != 0 || m.Sum() != 0 {
		t.Fatalf("after Reset: now=%v sum=%v", m.Now(), m.Sum())
	}
}

func TestBankSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBank(0) did not panic")
		}
	}()
	NewBank(0)
}

func TestBankBarrier(t *testing.T) {
	b := NewBank(3)
	b.Proc(0).Charge(Compute, 1)
	b.Proc(1).Charge(Compute, 5)
	b.Proc(2).Charge(Compute, 3)
	if got := b.MaxNow(); got != 5 {
		t.Fatalf("MaxNow = %v, want 5", got)
	}
	if got := b.MinNow(); got != 1 {
		t.Fatalf("MinNow = %v, want 1", got)
	}
	bt := b.Barrier()
	if bt != 5 {
		t.Fatalf("Barrier returned %v, want 5", bt)
	}
	for i := 0; i < 3; i++ {
		if b.Proc(i).Now() != 5 {
			t.Fatalf("proc %d at %v after barrier", i, b.Proc(i).Now())
		}
	}
	if got := b.Proc(0).Total(Sync); got != 4 {
		t.Fatalf("proc 0 sync = %v, want 4", got)
	}
}

func TestBankSendTiming(t *testing.T) {
	b := NewBank(2)
	// src at time 0 sends 1 word over distance 10: occupies link 1 unit,
	// arrival at 1+10 = 11.
	b.Send(0, 1, 10, 1)
	if got := b.Proc(0).Now(); got != 1 {
		t.Fatalf("sender at %v, want 1", got)
	}
	if got := b.Proc(1).Now(); got != 11 {
		t.Fatalf("receiver at %v, want 11", got)
	}
	if got := b.Proc(1).Total(Sync); got != 11 {
		t.Fatalf("receiver sync = %v, want 11", got)
	}
}

func TestBankSendStreamsWords(t *testing.T) {
	b := NewBank(2)
	// 5-word message over distance 3: sender occupied 5 units, arrival 5+3=8.
	b.Send(0, 1, 3, 5)
	if got := b.Proc(0).Now(); got != 5 {
		t.Fatalf("sender at %v, want 5", got)
	}
	if got := b.Proc(1).Now(); got != 8 {
		t.Fatalf("receiver at %v, want 8", got)
	}
}

func TestBankSendReceiverAhead(t *testing.T) {
	b := NewBank(2)
	b.Proc(1).Charge(Compute, 100)
	b.Send(0, 1, 2, 1)
	if got := b.Proc(1).Now(); got != 100 {
		t.Fatalf("receiver moved to %v, want to stay at 100", got)
	}
}

func TestBankSendPanics(t *testing.T) {
	b := NewBank(2)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero words", func() { b.Send(0, 1, 1, 0) }},
		{"negative distance", func() { b.Send(0, 1, -1, 1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestBankLedgersAndReset(t *testing.T) {
	b := NewBank(2)
	b.Proc(0).Charge(Compute, 2)
	b.Proc(1).Charge(Access, 3)
	l := b.Ledgers()
	if l.Total(Compute) != 2 || l.Total(Access) != 3 {
		t.Fatalf("merged ledger: %v", l.String())
	}
	b.Reset()
	if b.MaxNow() != 0 {
		t.Fatalf("after Reset MaxNow = %v", b.MaxNow())
	}
	l2 := b.Ledgers()
	if s := l2.Sum(); s != 0 {
		t.Fatalf("after Reset ledger sum = %v", s)
	}
}

// Property: clock time always equals ledger sum when all advancement goes
// through Charge.
func TestPropertyChargeConservation(t *testing.T) {
	f := func(raw []uint8) bool {
		var m Meter
		cats := Categories()
		for _, r := range raw {
			cat := cats[int(r)%len(cats)]
			dt := Time(r%17) / 4
			m.Charge(cat, dt)
		}
		return math.Abs(m.Now()-m.Sum()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Barrier is idempotent and never decreases any clock.
func TestPropertyBarrierMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		b := NewBank(4)
		for i, r := range raw {
			b.Proc(i%4).Charge(Compute, Time(r))
		}
		before := make([]Time, 4)
		for i := range before {
			before[i] = b.Proc(i).Now()
		}
		t1 := b.Barrier()
		t2 := b.Barrier()
		if t1 != t2 {
			return false
		}
		for i := range before {
			if b.Proc(i).Now() < before[i] || b.Proc(i).Now() != t1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: message arrival is never earlier than send time plus distance.
func TestPropertyMessageCausality(t *testing.T) {
	f := func(dists []uint8) bool {
		b := NewBank(2)
		for _, d := range dists {
			src := b.Proc(0).Now()
			b.Send(0, 1, Time(d), 1)
			if b.Proc(1).Now() < src+Time(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBankSize(t *testing.T) {
	if NewBank(7).Size() != 7 {
		t.Fatal("Size mismatch")
	}
}

func TestBankPhasesAttribution(t *testing.T) {
	b := NewBank(2)
	b.Mark(PhaseRearrange)
	b.Proc(0).Charge(Transfer, 10)
	b.Proc(1).Charge(Transfer, 10)
	b.Barrier()
	b.Mark(PhaseRegime1)
	b.Proc(0).Charge(Transfer, 5)
	b.Proc(1).Charge(Transfer, 7)
	b.Mark(PhaseRegime2Exec)
	b.Proc(0).Charge(Compute, 3)
	b.Proc(1).Charge(Compute, 1)
	b.Barrier()

	pb := b.Phases()
	if len(pb) != 3 {
		t.Fatalf("got %d phases, want 3: %v", len(pb), pb)
	}
	if got := pb.Time(PhaseRearrange); got != 10 {
		t.Errorf("rearrange time %v, want 10", got)
	}
	// Makespan went 10 -> 17 during regime1 (proc 1 is the critical path).
	if got := pb.Time(PhaseRegime1); got != 7 {
		t.Errorf("regime1 time %v, want 7", got)
	}
	// 17 -> 20: proc 0 finishes at 10+5+3 = 18, proc 1 at 17+1 = 18...
	// barrier makespan is 18, so the exec phase advanced 18-17 = 1.
	if got := pb.Time(PhaseRegime2Exec); got != 1 {
		t.Errorf("regime2-exec time %v, want 1", got)
	}
	if got, want := pb.Total(), b.MaxNow(); got != want {
		t.Errorf("phase total %v != makespan %v", got, want)
	}
	// Ledger sub-attribution: regime1 charged 12 transfer across procs.
	var r1 Ledger
	for _, e := range pb {
		if e.Name == PhaseRegime1 {
			r1 = e.Ledger
		}
	}
	if got := r1.Total(Transfer); got != 12 {
		t.Errorf("regime1 transfer ledger %v, want 12", got)
	}
	if got := r1.Count(Transfer); got != 2 {
		t.Errorf("regime1 transfer count %v, want 2", got)
	}
}

func TestBankPhasesMergesRepeatedNames(t *testing.T) {
	b := NewBank(1)
	for i := 0; i < 3; i++ {
		b.Mark(PhaseRegime2Exec)
		b.Proc(0).Charge(Compute, 2)
		b.Mark(PhaseRegime2Exchange)
		b.Proc(0).Charge(Message, 1)
	}
	pb := b.Phases()
	if len(pb) != 2 {
		t.Fatalf("got %d phases, want 2 merged: %v", len(pb), pb)
	}
	if pb[0].Name != PhaseRegime2Exec || pb[0].Time != 6 {
		t.Errorf("exec entry = %+v, want 6 across 3 intervals", pb[0])
	}
	if pb[1].Name != PhaseRegime2Exchange || pb[1].Time != 3 {
		t.Errorf("exchange entry = %+v, want 3", pb[1])
	}
	if pb[1].Ledger.Count(Message) != 3 {
		t.Errorf("exchange message count %d, want 3", pb[1].Ledger.Count(Message))
	}
}

func TestBankPhasesEmptyAndReset(t *testing.T) {
	b := NewBank(2)
	if b.Phases() != nil {
		t.Error("unmarked bank reported phases")
	}
	b.Mark(PhaseRearrange)
	b.Proc(0).Charge(Compute, 4)
	if got := b.Phases().Total(); got != 4 {
		t.Errorf("total %v, want 4", got)
	}
	b.Reset()
	if b.Phases() != nil {
		t.Error("reset did not clear phase marks")
	}
	if got := b.Phases().Time("nope"); got != 0 {
		t.Errorf("absent phase time %v, want 0", got)
	}
}

func TestPhaseBreakdownString(t *testing.T) {
	if got := (PhaseBreakdown)(nil).String(); got != "empty" {
		t.Errorf("nil breakdown string %q", got)
	}
	pb := PhaseBreakdown{{Name: "a", Time: 1.5}, {Name: "b", Time: 2}}
	if got := pb.String(); got != "a=1.5 b=2" {
		t.Errorf("breakdown string %q", got)
	}
}
