package cost

import "testing"

// TestTracePlayBitIdentical pins the contract the subtree memo relies on:
// replaying a recorded charge sequence advances a fresh meter to the
// bit-identical clock and ledger state of the recorded one, including
// sequences whose summed-delta replay would differ in the last ulps.
func TestTracePlayBitIdentical(t *testing.T) {
	charges := []struct {
		cat Category
		dt  Time
	}{
		{Access, 1.0 / 3}, {Access, 1.0 / 3}, {Access, 1.0 / 3},
		{Compute, 1}, {Transfer, 0.1}, {Transfer, 0.1}, {Transfer, 0.2},
		{Access, 1e-9}, {Compute, 1}, {Access, 12345.6789},
	}
	var orig Meter
	var rec Recorder
	orig.SetTap(rec.Record)
	for _, c := range charges {
		orig.Charge(c.cat, c.dt)
	}
	var replay Meter
	rec.Trace().Play(&replay)
	if replay.Now() != orig.Now() {
		t.Fatalf("replayed clock %v != original %v", replay.Now(), orig.Now())
	}
	for _, c := range Categories() {
		if replay.Total(c) != orig.Total(c) || replay.Count(c) != orig.Count(c) {
			t.Fatalf("category %v: replay %v/%d != original %v/%d",
				c, replay.Total(c), replay.Count(c), orig.Total(c), orig.Count(c))
		}
	}
	if got := rec.Trace().Events(); got != int64(len(charges)) {
		t.Fatalf("trace events %d, want %d", got, len(charges))
	}
}

// TestTraceRLE checks that homogeneous runs collapse and heterogeneous
// charges do not merge.
func TestTraceRLE(t *testing.T) {
	var rec Recorder
	for i := 0; i < 1000; i++ {
		rec.Record(Access, 2.5)
	}
	rec.Record(Compute, 1)
	if n := len(rec.Trace().items); n != 2 {
		t.Fatalf("expected 2 RLE runs, got %d", n)
	}
	if ev := rec.Trace().Events(); ev != 1001 {
		t.Fatalf("expected 1001 events, got %d", ev)
	}
}

// TestTraceChild checks nested traces replay in place and count events.
func TestTraceChild(t *testing.T) {
	var inner Recorder
	inner.Record(Access, 3)
	inner.Record(Access, 3)

	var outer Recorder
	outer.Record(Compute, 1)
	outer.Child(inner.Trace())
	outer.Record(Compute, 1)

	var m Meter
	outer.Trace().Play(&m)
	if m.Now() != 8 {
		t.Fatalf("nested replay clock %v, want 8", m.Now())
	}
	if ev := outer.Trace().Events(); ev != 4 {
		t.Fatalf("nested events %d, want 4", ev)
	}
}

// TestChargeNTap checks the tap observes the summed ChargeN value, so a
// replay reproduces both the clock and the single ledger count.
func TestChargeNTap(t *testing.T) {
	var orig Meter
	var rec Recorder
	orig.SetTap(rec.Record)
	orig.ChargeN(Transfer, 7, 0.3)
	var replay Meter
	rec.Trace().Play(&replay)
	if replay.Now() != orig.Now() {
		t.Fatalf("replay %v != orig %v", replay.Now(), orig.Now())
	}
	if replay.Count(Transfer) != 1 {
		t.Fatalf("ChargeN must replay as one ledger entry, got %d", replay.Count(Transfer))
	}
}

// TestApplyDelta checks the analytic replay primitive: capture an
// interval as (clock delta, ledger delta) and apply it to a fresh meter.
func TestApplyDelta(t *testing.T) {
	var orig Meter
	orig.Charge(Compute, 1)
	before := orig.Now()
	ledBefore := orig.Ledger
	orig.Charge(Access, 2.25)
	orig.ChargeN(Transfer, 3, 1.5)
	dt := orig.Now() - before
	delta := orig.Ledger.Sub(&ledBefore)

	var m Meter
	m.Charge(Compute, 1)
	m.ApplyDelta(dt, &delta)
	if m.Now() != orig.Now() {
		t.Fatalf("ApplyDelta clock %v != %v", m.Now(), orig.Now())
	}
	if m.Total(Transfer) != orig.Total(Transfer) || m.Count(Transfer) != orig.Count(Transfer) {
		t.Fatalf("ApplyDelta ledger mismatch")
	}
}
