package cost

// This file is the exact-replay substrate of the subtree memoization in
// internal/simulate: a Trace records the precise charge sequence a meter
// saw over an interval (via the Meter tap), and Play re-applies the same
// floats in the same order. Because float addition is not associative,
// replaying per-event values — rather than one summed delta — is what
// keeps memo-on virtual times bit-identical to memo-off runs.
//
// Traces are hierarchical: when a recorded subtree itself replays an
// inner memoized subtree, the inner record's trace is linked as a child
// rather than re-flattened, so recording N nested levels costs O(own
// events) per level instead of O(subtree) and records share structure.

// traceItem is one run-length-encoded charge run, or a link to a nested
// pre-recorded trace.
type traceItem struct {
	cat   Category
	dt    Time
	n     int64  // run length; consecutive identical charges merge
	child *Trace // when non-nil, a nested trace played in place
}

// Trace is an immutable recorded charge sequence. The zero value is an
// empty trace.
type Trace struct {
	items []traceItem
}

// Events reports the number of charges the trace replays, including
// nested children.
func (t *Trace) Events() int64 {
	var n int64
	for _, it := range t.items {
		if it.child != nil {
			n += it.child.Events()
		} else {
			n += it.n
		}
	}
	return n
}

// Play re-applies the recorded charge sequence to m: the same floats in
// the same order the original interval charged, so m's clock and ledger
// advance bit-identically to the original execution. Play bypasses m's
// tap — a replaying engine links the trace into any outer recording
// explicitly (Recorder.Child) instead of re-flattening it event by event.
func (t *Trace) Play(m *Meter) {
	for _, it := range t.items {
		if it.child != nil {
			it.child.Play(m)
			continue
		}
		for k := int64(0); k < it.n; k++ {
			m.Advance(it.dt)
			m.Add(it.cat, it.dt)
		}
	}
}

// Recorder accumulates a Trace from a stream of observed charges.
// Consecutive identical (category, value) charges are run-length merged,
// which collapses the homogeneous inner loops of the simulators (block
// copies, leaf vertex sweeps) to a handful of runs.
type Recorder struct {
	t Trace
}

// Record appends one observed charge.
func (r *Recorder) Record(cat Category, dt Time) {
	items := r.t.items
	if k := len(items) - 1; k >= 0 && items[k].child == nil && items[k].cat == cat && items[k].dt == dt {
		items[k].n++
		return
	}
	r.t.items = append(r.t.items, traceItem{cat: cat, dt: dt, n: 1})
}

// Child links a nested pre-recorded trace at the current position: Play
// descends into it in place.
func (r *Recorder) Child(c *Trace) {
	r.t.items = append(r.t.items, traceItem{child: c})
}

// Trace returns the recorded trace. The recorder must not record further
// after Trace is taken; the returned trace is shared, not copied.
func (r *Recorder) Trace() *Trace { return &r.t }
