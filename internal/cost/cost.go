// Package cost implements the virtual-time accounting substrate for the
// bounded-speed message-propagation model of Bilardi & Preparata (SPAA 1995).
//
// Every machine model in this repository (H-RAMs, linear arrays, meshes)
// charges its activity into a Meter: memory accesses charge the H-RAM access
// function f(x), messages charge their geometric travel distance, and local
// operations charge unit time. The theorems of the paper bound exactly this
// virtual time, so "measured time" throughout the repository means the value
// accumulated here — never wall-clock time.
//
// The package provides three layers:
//
//   - Clock: a single monotone virtual-time line.
//   - Ledger: categorized cost totals (compute, access, transfer, message,
//     sync), useful to attribute slowdown to the mechanisms the paper
//     distinguishes (parallelism loss vs. locality loss).
//   - Meter: a Clock plus a Ledger, the unit handed to machine models.
//   - Bank: a set of per-processor Meters with synchronization primitives
//     (barriers, point-to-point message timing) for multiprocessor models.
package cost

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Time is virtual time in model units. The unit is the execution time of a
// RAM instruction touching address 0, which is also the time for a signal to
// travel a unit of distance (the paper's normalization, Section 2).
type Time = float64

// Category labels a kind of charged activity. Categories do not affect the
// clock; they only attribute totals in the Ledger.
type Category int

const (
	// Compute is local operation time (one unit per dag vertex executed,
	// or per machine instruction).
	Compute Category = iota
	// Access is H-RAM memory access latency, f(x) per touched address x.
	Access
	// Transfer is block data relocation within a memory hierarchy
	// (the divide-and-conquer copy phases of Proposition 2).
	Transfer
	// Message is interprocessor communication time, proportional to the
	// geometric distance between source and destination.
	Message
	// Sync is time spent idle waiting at barriers or for messages.
	Sync
	numCategories
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case Compute:
		return "compute"
	case Access:
		return "access"
	case Transfer:
		return "transfer"
	case Message:
		return "message"
	case Sync:
		return "sync"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Categories lists all valid categories in order.
func Categories() []Category {
	return []Category{Compute, Access, Transfer, Message, Sync}
}

// Clock is a monotone virtual-time line. The zero value is a clock at time 0.
type Clock struct {
	now Time
}

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by dt. It panics if dt is negative or NaN,
// since a negative charge would silently corrupt every derived measurement.
func (c *Clock) Advance(dt Time) {
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("cost: negative or NaN advance %v", dt))
	}
	c.now += dt
}

// WaitUntil moves the clock forward to time t if t is in the future, and
// reports the idle time spent (0 if t is not in the future).
func (c *Clock) WaitUntil(t Time) Time {
	if t <= c.now {
		return 0
	}
	idle := t - c.now
	c.now = t
	return idle
}

// Reset returns the clock to time 0.
func (c *Clock) Reset() { c.now = 0 }

// Ledger accumulates charged time by category. The zero value is ready to use.
type Ledger struct {
	totals [numCategories]Time
	counts [numCategories]int64
}

// Add records dt time units under category cat.
func (l *Ledger) Add(cat Category, dt Time) {
	if cat < 0 || cat >= numCategories {
		panic(fmt.Sprintf("cost: invalid category %d", int(cat)))
	}
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("cost: negative or NaN charge %v", dt))
	}
	l.totals[cat] += dt
	l.counts[cat]++
}

// Total reports the accumulated time under category cat.
func (l *Ledger) Total(cat Category) Time { return l.totals[cat] }

// Count reports the number of charges recorded under category cat.
func (l *Ledger) Count(cat Category) int64 { return l.counts[cat] }

// Sum reports the accumulated time across all categories.
func (l *Ledger) Sum() Time {
	var s Time
	for _, t := range l.totals {
		s += t
	}
	return s
}

// Sub returns the per-category difference l - prev: the charges
// accumulated since prev was snapshotted. Observability code uses it to
// annotate a span with the ledger delta of the interval it covers; it
// reads both ledgers and touches neither.
func (l *Ledger) Sub(prev *Ledger) Ledger {
	var out Ledger
	for i := range l.totals {
		out.totals[i] = l.totals[i] - prev.totals[i]
		out.counts[i] = l.counts[i] - prev.counts[i]
	}
	return out
}

// Reset zeroes all totals and counts.
func (l *Ledger) Reset() {
	l.totals = [numCategories]Time{}
	l.counts = [numCategories]int64{}
}

// Merge adds every total and count of other into l.
func (l *Ledger) Merge(other *Ledger) {
	for i := range l.totals {
		l.totals[i] += other.totals[i]
		l.counts[i] += other.counts[i]
	}
}

// String formats the non-zero ledger entries, largest first.
func (l *Ledger) String() string {
	type row struct {
		cat Category
		t   Time
	}
	var rows []row
	for _, c := range Categories() {
		if l.totals[c] != 0 {
			rows = append(rows, row{c, l.totals[c]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].t > rows[j].t })
	var b strings.Builder
	for i, r := range rows {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.6g", r.cat, r.t)
	}
	if b.Len() == 0 {
		return "empty"
	}
	return b.String()
}

// Meter combines a Clock with a Ledger: a single processor's time line with
// attribution. The zero value is ready to use.
type Meter struct {
	Clock
	Ledger
	// tap, when set, observes every Charge/ChargeN with the exact float
	// added to the clock. Idle is not tapped: an idle span is a
	// WaitUntil difference, which is not replayable as an additive
	// charge (now + (t - now) need not equal t in floats). The engines
	// that record traces never Idle on a tapped meter.
	tap func(Category, Time)
}

// SetTap installs (or clears, with nil) the charge observer. The tap sees
// the exact value added by each Charge/ChargeN, after it is applied.
func (m *Meter) SetTap(tap func(Category, Time)) { m.tap = tap }

// Charge advances the clock by dt and records it under cat.
func (m *Meter) Charge(cat Category, dt Time) {
	m.Advance(dt)
	m.Add(cat, dt)
	if m.tap != nil {
		m.tap(cat, dt)
	}
}

// ChargeN advances the clock by n*dt and records it under cat as one entry.
// It is equivalent to n Charge calls but counts once; use it for homogeneous
// bulk activity (e.g. streaming n words).
func (m *Meter) ChargeN(cat Category, n int64, dt Time) {
	if n < 0 {
		panic("cost: negative charge count")
	}
	total := Time(n) * dt
	m.Advance(total)
	m.Add(cat, total)
	if m.tap != nil {
		m.tap(cat, total)
	}
}

// ApplyDelta advances the clock by dt and merges delta into the ledger —
// the analytic replay of a previously captured interval: dt is a Now()
// difference and delta a Ledger.Sub snapshot of the same interval. Unlike
// Charge it adds whole-interval sums, so totals match the original up to
// float regrouping; use Trace.Play when bit-identity is required.
func (m *Meter) ApplyDelta(dt Time, delta *Ledger) {
	m.Advance(dt)
	m.Ledger.Merge(delta)
}

// Idle advances the clock to time t (if in the future) and records the idle
// span under Sync.
func (m *Meter) Idle(t Time) {
	if idle := m.WaitUntil(t); idle > 0 {
		m.Add(Sync, idle)
	}
}

// Reset returns the meter to time zero with an empty ledger.
func (m *Meter) Reset() {
	m.Clock.Reset()
	m.Ledger.Reset()
}

// Canonical phase names used by the multiprocessor simulations. A Bank
// accepts any string as a phase name; these four are the Theorem 4 /
// Theorem 1 schedule that every MultiResult reports.
const (
	// PhaseRearrange is the one-time π = π2·π1 memory rearrangement.
	PhaseRearrange = "rearrange"
	// PhaseRegime1 is the level-by-level data relocation of Regime 1.
	PhaseRegime1 = "regime1"
	// PhaseRegime2Exec is the kernel-execution part of Regime 2.
	PhaseRegime2Exec = "regime2-exec"
	// PhaseRegime2Exchange is the face/boundary exchange part of Regime 2.
	PhaseRegime2Exchange = "regime2-exchange"
)

// PhaseEntry is one named phase of a Bank's history: how much makespan it
// consumed and the merged ledger of everything charged while it was open.
type PhaseEntry struct {
	Name string
	// Time is the makespan advance (MaxNow delta) attributable to the
	// phase, summed over every interval during which it was open.
	Time Time
	// Ledger is the merged per-category charge delta across all
	// processors during the phase.
	Ledger Ledger
}

// PhaseBreakdown is a Bank's per-phase attribution, in first-open order
// with same-named intervals merged. Entry Times telescope: their sum
// equals the final makespan up to float-summation reordering (each entry
// is a difference of makespan snapshots).
type PhaseBreakdown []PhaseEntry

// Time reports the makespan attributed to the named phase (0 if absent).
func (pb PhaseBreakdown) Time(name string) Time {
	for _, e := range pb {
		if e.Name == name {
			return e.Time
		}
	}
	return 0
}

// Total reports the summed makespan across all phases — the Bank's final
// makespan, up to float-summation grouping.
func (pb PhaseBreakdown) Total() Time {
	var s Time
	for _, e := range pb {
		s += e.Time
	}
	return s
}

// String formats the breakdown as "name=time ..." in phase order.
func (pb PhaseBreakdown) String() string {
	if len(pb) == 0 {
		return "empty"
	}
	var b strings.Builder
	for i, e := range pb {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.6g", e.Name, e.Time)
	}
	return b.String()
}

// phaseMark snapshots the bank state at the instant a phase was opened.
type phaseMark struct {
	name string
	at   Time
	led  Ledger
}

// Bank is a set of per-processor Meters evolving on independent time lines,
// joined at synchronization points. It models a p-node machine where node
// clocks advance independently between communication events.
type Bank struct {
	meters []Meter
	marks  []phaseMark

	// dm, when set, stretches distance-proportional charges
	// (ChargeDelayed, SendDelayed) by bounded per-charge factors; nil is
	// the lockstep machine. delaySeq holds the per-processor draw
	// counters the model is keyed on.
	dm       DelayModel
	delaySeq []uint64
}

// NewBank creates a bank of p meters, all at time 0. It panics if p < 1.
func NewBank(p int) *Bank {
	if p < 1 {
		panic(fmt.Sprintf("cost: bank size %d < 1", p))
	}
	return &Bank{meters: make([]Meter, p)}
}

// Size reports the number of processors in the bank.
func (b *Bank) Size() int { return len(b.meters) }

// Proc returns the meter of processor i.
func (b *Bank) Proc(i int) *Meter { return &b.meters[i] }

// MaxNow reports the latest clock among all processors — the machine's
// completion time (makespan).
func (b *Bank) MaxNow() Time {
	var mx Time
	for i := range b.meters {
		if t := b.meters[i].Now(); t > mx {
			mx = t
		}
	}
	return mx
}

// MinNow reports the earliest clock among all processors.
func (b *Bank) MinNow() Time {
	if len(b.meters) == 0 {
		return 0
	}
	mn := b.meters[0].Now()
	for i := 1; i < len(b.meters); i++ {
		if t := b.meters[i].Now(); t < mn {
			mn = t
		}
	}
	return mn
}

// Barrier advances every processor to the current makespan, charging the
// stall of each to Sync. It returns the barrier time.
func (b *Bank) Barrier() Time {
	t := b.MaxNow()
	for i := range b.meters {
		b.meters[i].Idle(t)
	}
	return t
}

// Send models a message of wordCount words from processor src to processor
// dst over geometric distance dist: the receiver cannot proceed past the
// arrival time sender.Now() + dist + (wordCount-1) (a wordCount-word message
// streams at unit rate after the distance latency; wordCount >= 1). The
// sender is charged Message time for the link occupancy (wordCount units),
// and the receiver idles until arrival if needed.
//
// This is the paper's bounded-speed link: transmission time proportional to
// distance, negligible set-up (Section 6).
func (b *Bank) Send(src, dst int, dist Time, wordCount int64) {
	if wordCount < 1 {
		panic("cost: message with fewer than 1 word")
	}
	if dist < 0 {
		panic("cost: negative message distance")
	}
	s, d := &b.meters[src], &b.meters[dst]
	s.Charge(Message, Time(wordCount))
	arrival := s.Now() + dist
	d.Idle(arrival)
}

// Ledgers returns a merged copy of all processors' ledgers.
func (b *Bank) Ledgers() Ledger {
	var out Ledger
	for i := range b.meters {
		out.Merge(&b.meters[i].Ledger)
	}
	return out
}

// Mark opens a named accounting phase: all makespan growth and ledger
// charges from now until the next Mark (or Phases call) are attributed to
// name. Marking does not touch any clock or ledger — attribution is pure
// bookkeeping on snapshots, so charge sequences (and therefore virtual
// times) are identical with and without marks.
func (b *Bank) Mark(name string) {
	b.marks = append(b.marks, phaseMark{name: name, at: b.MaxNow(), led: b.Ledgers()})
}

// Phases closes the open phase and returns the per-phase breakdown:
// same-named intervals merged, in first-open order. It returns nil if
// Mark was never called.
func (b *Bank) Phases() PhaseBreakdown {
	if len(b.marks) == 0 {
		return nil
	}
	end := phaseMark{at: b.MaxNow(), led: b.Ledgers()}
	var out PhaseBreakdown
	idx := make(map[string]int)
	for i, mk := range b.marks {
		next := end
		if i+1 < len(b.marks) {
			next = b.marks[i+1]
		}
		j, ok := idx[mk.name]
		if !ok {
			j = len(out)
			idx[mk.name] = j
			out = append(out, PhaseEntry{Name: mk.name})
		}
		out[j].Time += next.at - mk.at
		for c := range out[j].Ledger.totals {
			out[j].Ledger.totals[c] += next.led.totals[c] - mk.led.totals[c]
			out[j].Ledger.counts[c] += next.led.counts[c] - mk.led.counts[c]
		}
	}
	return out
}

// Reset returns every meter to time zero with empty ledgers, drops all
// phase marks, and rewinds the delay-draw counters (the delay model
// itself stays installed, so a reset bank replays identical delays).
func (b *Bank) Reset() {
	for i := range b.meters {
		b.meters[i].Reset()
	}
	b.marks = nil
	for i := range b.delaySeq {
		b.delaySeq[i] = 0
	}
}
