package cost

import (
	"fmt"
	"math"
)

// DelayModel is the pluggable message-propagation policy of the
// Θ-model engines: every distance-proportional charge (block transfers,
// messages, link latencies) is stretched by a per-charge factor in
// [1, Θ]. The lockstep machines of the paper are the identity model
// (every factor exactly 1); the theta model draws seeded factors so a
// run is reproducible and sweepable.
//
// Factor must be a pure function of (proc, seq): the engines assign
// each processor a monotone per-processor sequence number, so the
// stretch applied to the k-th delayed charge of processor i is the same
// in every run with the same model — and, because the factor is
// 1 + (Θ-1)·u with u fixed by (seed, proc, seq), it is monotone
// non-decreasing in Θ. That is what makes slowdown degrade gracefully
// (monotonically) as Θ grows.
type DelayModel interface {
	// Factor returns the multiplicative stretch (>= 1) for the seq-th
	// distance-proportional charge of processor proc.
	Factor(proc int, seq uint64) float64
	// Theta reports the model's worst-case delay ratio Θ >= 1.
	Theta() float64
}

// Lockstep is the identity DelayModel: every message propagates in
// exactly its distance, as in the paper's Md machines. A Bank with a
// nil model behaves identically; Lockstep exists so callers can pass an
// explicit model where one is required.
type Lockstep struct{}

// Factor returns 1.
func (Lockstep) Factor(int, uint64) float64 { return 1 }

// Theta returns 1.
func (Lockstep) Theta() float64 { return 1 }

// ThetaModel is the bounded-delay-ratio model (the theta-model of the
// PSync line of work): each distance-proportional charge of base cost d
// takes an adversarially chosen but bounded time in [d, Θ·d]. The
// adversary here is a seeded hash — deterministic in (seed, proc, seq),
// uniform over [d, Θ·d) — so runs are reproducible and a Θ-sweep with a
// fixed seed varies only the bound, not the draw.
type ThetaModel struct {
	theta float64
	seed  uint64
}

// NewThetaModel builds a ThetaModel with ratio theta and the given
// seed. theta must be finite and >= 1.
func NewThetaModel(theta float64, seed uint64) (*ThetaModel, error) {
	if math.IsNaN(theta) || math.IsInf(theta, 0) || theta < 1 {
		return nil, fmt.Errorf("cost: delay ratio theta must be finite and >= 1, got %v", theta)
	}
	return &ThetaModel{theta: theta, seed: seed}, nil
}

// Theta reports the model's delay ratio.
func (t *ThetaModel) Theta() float64 { return t.theta }

// Factor returns 1 + (Θ-1)·u with u = u(seed, proc, seq) ∈ [0, 1).
// At Θ = 1 it returns exactly 1 — not a value that rounds to 1 — so the
// event-driven engines recover the lockstep charge sequences
// bit-identically.
func (t *ThetaModel) Factor(proc int, seq uint64) float64 {
	if t.theta == 1 {
		return 1
	}
	return 1 + (t.theta-1)*t.unit(proc, seq)
}

// unit returns the deterministic uniform draw in [0, 1) for (proc, seq).
func (t *ThetaModel) unit(proc int, seq uint64) float64 {
	h := mix64(t.seed ^ (uint64(proc)+1)*0xbf58476d1ce4e5b9 ^ (seq+1)*0x94d049bb133111eb)
	return float64(h>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// hash used to derive per-charge delay draws from (seed, proc, seq).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SetDelayModel installs (or clears, with nil) the bank's delay model
// and resets the per-processor delay sequence counters. Only
// ChargeDelayed and Send consult the model; plain Charge/ChargeN are
// never stretched (compute is not a propagating activity).
func (b *Bank) SetDelayModel(dm DelayModel) {
	b.dm = dm
	if dm == nil {
		b.delaySeq = nil
		return
	}
	b.delaySeq = make([]uint64, len(b.meters))
}

// DelayModel reports the installed delay model (nil = lockstep).
func (b *Bank) DelayModel() DelayModel { return b.dm }

// delayFactor draws the next stretch factor for processor i, advancing
// its delay sequence counter. With no model it returns 1 without
// consuming a draw.
func (b *Bank) delayFactor(i int) float64 {
	if b.dm == nil {
		return 1
	}
	f := b.dm.Factor(i, b.delaySeq[i])
	b.delaySeq[i]++
	return f
}

// ChargeDelayed charges processor i under cat for a
// distance-proportional activity of base duration dt, stretched by the
// bank's delay model. A unit factor (no model, Lockstep, or Θ = 1)
// charges exactly dt through the exact same code path as Meter.Charge,
// so lockstep charge sequences — and therefore virtual times — are
// recovered bit-identically. It returns the stretched duration charged.
func (b *Bank) ChargeDelayed(i int, cat Category, dt Time) Time {
	if f := b.delayFactor(i); f != 1 {
		dt *= f
	}
	b.meters[i].Charge(cat, dt)
	return dt
}

// StretchDistance draws the next delay factor for processor src and
// returns dist stretched by it — the link latency an event-driven
// executor should use when scheduling a delivery event. With no model
// (or a unit factor) it returns dist exactly, bit-identical to the
// lockstep latency.
func (b *Bank) StretchDistance(src int, dist Time) Time {
	if f := b.delayFactor(src); f != 1 {
		dist *= f
	}
	return dist
}

// SendDelayed is Send with the link's distance latency stretched by the
// bank's delay model: the message still occupies the sender for
// wordCount units, but arrives at sender.Now() + f·dist with
// f ∈ [1, Θ] drawn from the sender's delay sequence. With no model (or
// a unit factor) it is exactly Send.
func (b *Bank) SendDelayed(src, dst int, dist Time, wordCount int64) {
	b.Send(src, dst, b.StretchDistance(src, dist), wordCount)
}
