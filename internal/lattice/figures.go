package lattice

import "fmt"

// This file constructs the decompositions shown in Figures 1–4 of the paper
// as executable objects, so their structural claims (piece counts, measure
// ratios, topological validity) can be tested and rendered.

// unboundedExtent bounds the "unclipped" helper clip. It is far larger than
// any domain built in this repository while keeping Volume() overflow-free.
const unboundedExtent = 1 << 20

// UnboundedClip returns a clip large enough to be a no-op for every domain
// used in this repository; it stands in for "no truncation".
func UnboundedClip() Clip {
	return Clip{
		X0: -unboundedExtent, X1: unboundedExtent,
		Y0: -unboundedExtent, Y1: unboundedExtent,
		Z0: -unboundedExtent, Z1: unboundedExtent,
		T0: -unboundedExtent, T1: unboundedExtent,
	}
}

// FigureOnePartition returns the partition of the d = 1 computation domain
// V = [0,n) × [0,n) into five full or truncated diamonds (U1,...,U5),
// ordered topologically, as in Figure 1 of the paper: U3 is a full diamond
// of width n inscribed at the center of V; U1/U2/U4/U5 are the truncated
// corner diamonds. n must be at least 2.
func FigureOnePartition(n int) []Diamond {
	if n < 2 {
		panic(fmt.Sprintf("lattice: FigureOnePartition needs n >= 2, got %d", n))
	}
	clip := ClipAll1D(n, n)
	// V in (u, w): u in [0, 2n-1), w in [-(n-1), n). The central diamond
	// is the axis-aligned square of side n centered at (n-1, 0).
	uLo, uHi := 0, 2*n-1
	wLo, wHi := -(n - 1), n
	uc0 := n - 1 - n/2
	uc1 := uc0 + n
	wc0 := -n / 2
	wc1 := wc0 + n
	pieces := []Diamond{
		{U0: uLo, W0: wLo, RU: uc0 - uLo, RW: wHi - wLo, Clip: clip}, // U1: low-u truncation
		{U0: uc0, W0: wLo, RU: n, RW: wc0 - wLo, Clip: clip},         // U2: mid-u, low-w truncation
		{U0: uc0, W0: wc0, RU: n, RW: n, Clip: clip},                 // U3: full central D(n)
		{U0: uc0, W0: wc1, RU: n, RW: wHi - wc1, Clip: clip},         // U4: mid-u, high-w truncation
		{U0: uc1, W0: wLo, RU: uHi - uc1, RW: wHi - wLo, Clip: clip}, // U5: high-u truncation
	}
	out := pieces[:0]
	for _, p := range pieces {
		if p.Size() > 0 {
			out = append(out, p)
		}
	}
	return out
}

// GridCell is one diamond of the regular diamond tiling of the plane, with
// its integer grid coordinates in rotated space.
type GridCell struct {
	I, J int // u-index and w-index: u in [I*s, (I+1)*s), w in [J*s+w0, ...)
	D    Diamond
}

// CenterX reports the x coordinate of the cell's diamond center,
// x = (u - w)/2 evaluated at the cell center.
func (g GridCell) CenterX() float64 {
	uMid := float64(g.D.U0) + float64(g.D.RU)/2
	wMid := float64(g.D.W0) + float64(g.D.RW)/2
	return (uMid - wMid) / 2
}

// CenterT reports the t coordinate of the cell's diamond center.
func (g GridCell) CenterT() float64 {
	uMid := float64(g.D.U0) + float64(g.D.RU)/2
	wMid := float64(g.D.W0) + float64(g.D.RW)/2
	return (uMid + wMid) / 2
}

// DiamondGrid tiles the computation domain V = [0,n) × [0,T) with diamonds
// of width s on the regular rotated grid (the brick pattern of Figure 2),
// returning the non-empty cells. The grid is anchored so that cell (0, 0)
// starts at u = 0, w = -(n-1) (the low corner of V's bounding diamond).
// Every vertex of V lies in exactly one cell.
func DiamondGrid(n, t, s int) []GridCell {
	if s < 1 {
		panic(fmt.Sprintf("lattice: DiamondGrid cell width %d < 1", s))
	}
	clip := ClipAll1D(n, t)
	w0 := -(n - 1)
	uSpan := n + t - 1 // u in [0, n+t-2]
	wSpan := n + t - 1 // w in [w0, t-1]
	var cells []GridCell
	for i := 0; i*s < uSpan; i++ {
		for j := 0; j*s < wSpan; j++ {
			d := Diamond{U0: i * s, W0: w0 + j*s, RU: s, RW: s, Clip: clip}
			if d.Size() > 0 {
				cells = append(cells, GridCell{I: i, J: j, D: d})
			}
		}
	}
	return cells
}

// ZigZagBands distributes the cells of DiamondGrid(n, n, s) among p
// processors by the x coordinate of the diamond centers, reproducing the
// zig-zag band assignment of Figure 2: processor k owns the cells whose
// center falls in the vertical strip [k·n/p, (k+1)·n/p), ordered by
// increasing time. Within a band consecutive diamonds alternate between the
// two diagonal grid columns intersecting the strip, producing the zig-zag.
func ZigZagBands(n, p, s int) [][]GridCell {
	if p < 1 {
		panic(fmt.Sprintf("lattice: ZigZagBands with p = %d < 1", p))
	}
	cells := DiamondGrid(n, n, s)
	bands := make([][]GridCell, p)
	strip := float64(n) / float64(p)
	for _, c := range cells {
		k := int(c.CenterX() / strip)
		if k < 0 {
			k = 0
		}
		if k >= p {
			k = p - 1
		}
		bands[k] = append(bands[k], c)
	}
	// Cells arrive sorted by (I, J); re-sort each band by center time then
	// center x, the execution order along the band.
	for k := range bands {
		b := bands[k]
		for i := 1; i < len(b); i++ {
			for j := i; j > 0; j-- {
				ti, tj := b[j].CenterT(), b[j-1].CenterT()
				if ti < tj || (ti == tj && b[j].CenterX() < b[j-1].CenterX()) {
					b[j], b[j-1] = b[j-1], b[j]
				} else {
					break
				}
			}
		}
	}
	return bands
}

// FigureThreeOctahedron returns the canonical unclipped octahedron P(r)
// with low corner at the origin of (a,b,e,f) space.
func FigureThreeOctahedron(r int) Box4 {
	return NewOctahedron(0, 0, 0, 0, r, UnboundedClip())
}

// FigureThreeTetrahedron returns the canonical unclipped tetrahedron W(r)
// (pair-sum offset +r).
func FigureThreeTetrahedron(r int) Box4 {
	return NewTetrahedron(r, 0, 0, 0, r, UnboundedClip())
}

// KindCount tallies the children of a Box4 partition by kind.
func KindCount(children []Domain) map[Kind]int {
	out := make(map[Kind]int)
	for _, c := range children {
		b, ok := c.(Box4)
		if !ok {
			panic("lattice: KindCount on non-Box4 child")
		}
		out[b.Kind()]++
	}
	return out
}

// FigureFourPartition returns the partition of the d = 2 computation domain
// V = [0,side)² × [0,side) into full or truncated octahedra and tetrahedra,
// ordered topologically, in the spirit of Figure 4 of the paper: one level
// of the separator split of V's bounding octahedron, clipped to V. (The
// paper's figure draws 17 pieces; the split below yields the same kinds of
// pieces — truncated P's and W's around a central full octahedron — with a
// piece count that depends on how ties at the cube faces are drawn. The
// topological-partition property, which is what the simulation needs, is
// verified in tests for both.)
func FigureFourPartition(side int) []Box4 {
	if side < 2 {
		panic(fmt.Sprintf("lattice: FigureFourPartition needs side >= 2, got %d", side))
	}
	root := Box4Around(side, side)
	kids := root.Children()
	out := make([]Box4, 0, len(kids))
	for _, k := range kids {
		out = append(out, k.(Box4))
	}
	return out
}
