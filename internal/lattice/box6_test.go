package lattice

import (
	"math"
	"testing"
	"testing/quick"
)

// preds3D is the unbounded d = 3 dag stencil.
func preds3D(p Point) []Point {
	t := p.T - 1
	return []Point{
		{X: p.X, Y: p.Y, Z: p.Z, T: t},
		{X: p.X - 1, Y: p.Y, Z: p.Z, T: t},
		{X: p.X + 1, Y: p.Y, Z: p.Z, T: t},
		{X: p.X, Y: p.Y - 1, Z: p.Z, T: t},
		{X: p.X, Y: p.Y + 1, Z: p.Z, T: t},
		{X: p.X, Y: p.Y, Z: p.Z - 1, T: t},
		{X: p.X, Y: p.Y, Z: p.Z + 1, T: t},
	}
}

func collect6(d Domain) []Point {
	var pts []Point
	d.Points(func(p Point) bool {
		pts = append(pts, p)
		return true
	})
	return pts
}

func TestBox6SizeMatchesEnumeration(t *testing.T) {
	for _, b := range []Box6{
		Box6Around(4, 4),
		CentralBox6(6),
		{A0: 2, B0: -1, E0: 0, F0: 1, G0: -2, H0: 4,
			RA: 4, RB: 5, RE: 3, RF: 4, RG: 6, RH: 2, Clip: UnboundedClip()},
	} {
		pts := collect6(b)
		if len(pts) != b.Size() {
			t.Errorf("%v: Size() = %d but enumerated %d", b, b.Size(), len(pts))
		}
		for _, p := range pts {
			if !b.Contains(p) {
				t.Errorf("%v: enumerated %v not Contains", b, p)
			}
		}
	}
}

func TestBox6SizeBruteForce(t *testing.T) {
	clip := ClipAll3D(5, 5)
	b := Box6{A0: 1, B0: -3, E0: 0, F0: -2, G0: 2, H0: -4,
		RA: 6, RB: 5, RE: 7, RF: 4, RG: 5, RH: 8, Clip: clip}
	want := 0
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			for z := 0; z < 5; z++ {
				for tt := 0; tt < 5; tt++ {
					if b.Contains(Point{X: x, Y: y, Z: z, T: tt}) {
						want++
					}
				}
			}
		}
	}
	if got := b.Size(); got != want {
		t.Fatalf("Size() = %d, brute force = %d", got, want)
	}
}

func TestBox6AroundCoversV(t *testing.T) {
	for _, st := range [][2]int{{3, 3}, {4, 5}, {2, 7}} {
		side, T := st[0], st[1]
		b := Box6Around(side, T)
		if got, want := b.Size(), side*side*side*T; got != want {
			t.Errorf("Box6Around(%d,%d).Size() = %d, want %d", side, T, got, want)
		}
	}
}

func TestBox6PointsOrdered(t *testing.T) {
	b := Box6Around(3, 3)
	pts := collect6(b)
	for i := 1; i < len(pts); i++ {
		if !pts[i-1].Less(pts[i]) {
			t.Fatalf("points out of order: %v then %v", pts[i-1], pts[i])
		}
	}
}

func TestBox6CentralMeasureScaling(t *testing.T) {
	// The central 4-polytope has measure Θ(R⁴): quadrupling R should
	// scale size by ~256.
	s8 := CentralBox6(8).Size()
	s32 := CentralBox6(32).Size()
	ratio := float64(s32) / float64(s8)
	if ratio < 128 || ratio > 512 {
		t.Errorf("R 8->32 size ratio %v, want ~256 (measure Θ(R⁴))", ratio)
	}
}

func TestBox6PreboundaryExponent(t *testing.T) {
	// Γin(central(R)) = Θ(|U|^(3/4)) — the γ = 3/4 topological separator
	// the paper's conjecture needs.
	for _, r := range []int{8, 16} {
		b := CentralBox6(r)
		bound := make(map[Point]bool)
		b.Points(func(p Point) bool {
			for _, q := range preds3D(p) {
				if !b.Contains(q) {
					bound[q] = true
				}
			}
			return true
		})
		scale := math.Pow(float64(b.Size()), 3.0/4)
		ratio := float64(len(bound)) / scale
		if ratio < 0.4 || ratio > 10 {
			t.Errorf("r=%d: |Γin| = %d, |U|^(3/4) = %g, ratio %g out of range",
				r, len(bound), scale, ratio)
		}
	}
}

func TestBox6CentralDecomposition(t *testing.T) {
	// The d = 3 analog of Figure 3(a): the central polytope splits into
	// 46 children — 10 central analogs and 36 wedges.
	b := CentralBox6(16)
	kids := b.Children()
	central, wedges := 0, 0
	for _, k := range kids {
		if k.(Box6).IsCentral() {
			central++
		} else {
			wedges++
		}
	}
	if central != 10 || wedges != 36 {
		t.Errorf("central split: %d central + %d wedges, want 10 + 36", central, wedges)
	}
	checkPartition6(t, b, kids)
}

// checkPartition6 verifies exact tiling and topological order for d = 3.
func checkPartition6(t *testing.T, parent Domain, children []Domain) {
	t.Helper()
	seen := make(map[Point]int)
	total := 0
	for i, c := range children {
		c.Points(func(p Point) bool {
			if !parent.Contains(p) {
				t.Fatalf("child %d point %v outside parent", i, p)
			}
			if j, dup := seen[p]; dup {
				t.Fatalf("point %v in children %d and %d", p, j, i)
			}
			seen[p] = i
			total++
			return true
		})
	}
	if total != parent.Size() {
		t.Fatalf("children cover %d of %d points", total, parent.Size())
	}
	for p, i := range seen {
		for _, q := range preds3D(p) {
			if j, in := seen[q]; in && j > i {
				t.Fatalf("dependency violation: %v (child %d) needs %v (child %d)", p, i, q, j)
			}
		}
	}
}

func TestBox6RecursiveDecompositionExact(t *testing.T) {
	b := Box6Around(4, 4)
	var leaves []Point
	var rec func(dom Domain)
	rec = func(dom Domain) {
		kids := dom.Children()
		if kids == nil {
			dom.Points(func(p Point) bool {
				leaves = append(leaves, p)
				return true
			})
			return
		}
		for _, k := range kids {
			rec(k)
		}
	}
	rec(b)
	if len(leaves) != b.Size() {
		t.Fatalf("recursion yields %d points, want %d", len(leaves), b.Size())
	}
	pos := make(map[Point]int, len(leaves))
	for i, p := range leaves {
		if _, dup := pos[p]; dup {
			t.Fatalf("duplicate leaf %v", p)
		}
		pos[p] = i
	}
	for p, i := range pos {
		for _, q := range preds3D(p) {
			if j, in := pos[q]; in && j > i {
				t.Fatalf("leaf order violates dependency: %v at %d needs %v at %d", p, i, q, j)
			}
		}
	}
}

// Property: random Box6 children always exactly tile the parent and
// respect dependencies.
func TestPropertyBox6ChildrenPartition(t *testing.T) {
	f := func(a0, b0 int8, r uint8, off uint8) bool {
		span := int(r%8) + 2
		o1 := (int(off%3) - 1) * span
		o2 := (int(off/3%3) - 1) * span
		b := Box6{
			A0: int(a0), B0: int(b0),
			E0: int(a0) - o1, F0: int(b0),
			G0: int(a0) - o2, H0: int(b0),
			RA: span, RB: span, RE: span, RF: span, RG: span, RH: span,
			Clip: UnboundedClip(),
		}
		if b.Size() == 0 {
			return true
		}
		seen := make(map[Point]bool)
		total := 0
		for _, c := range b.Children() {
			ok := true
			c.Points(func(p Point) bool {
				if !b.Contains(p) || seen[p] {
					ok = false
					return false
				}
				seen[p] = true
				total++
				return true
			})
			if !ok {
				return false
			}
		}
		return total == b.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
