package lattice

import "testing"

// sampleDomains covers all three separator domain shapes, clipped and
// unclipped, including recursion children (whose rotated-coordinate
// origins are away from zero).
func sampleDomains() []Domain {
	var doms []Domain
	d := NewDiamond(0, 0, 16, ClipAll1D(16, 17))
	doms = append(doms, d)
	doms = append(doms, d.Children()...)
	o := FigureThreeOctahedron(8)
	doms = append(doms, o)
	doms = append(doms, o.Children()...)
	b := CentralBox6(4)
	doms = append(doms, b)
	doms = append(doms, b.Children()...)
	return doms
}

func TestIndexerBijection(t *testing.T) {
	for _, dom := range sampleDomains() {
		ix := IndexerFor(dom)
		seen := make(map[int]Point)
		n := 0
		dom.Points(func(p Point) bool {
			n++
			if !ix.Contains(p) {
				t.Fatalf("%v: point %v outside bounding box %v", dom, p, ix.Bounds())
			}
			i := ix.Index(p)
			if i < 0 || i >= ix.Len() {
				t.Fatalf("%v: index %d of %v outside [0, %d)", dom, i, p, ix.Len())
			}
			if q, dup := seen[i]; dup {
				t.Fatalf("%v: points %v and %v collide at index %d", dom, q, p, i)
			}
			seen[i] = p
			if back := ix.Deindex(i); back != p {
				t.Fatalf("%v: Deindex(Index(%v)) = %v", dom, p, back)
			}
			return true
		})
		if n == 0 {
			t.Fatalf("%v: no points enumerated", dom)
		}
		if n != dom.Size() {
			t.Fatalf("%v: enumerated %d points, Size() = %d", dom, n, dom.Size())
		}
	}
}

func TestBoundingClipTight(t *testing.T) {
	// Every face of the bounding box must touch at least one domain point:
	// the box is tight, not merely containing.
	for _, dom := range sampleDomains() {
		c := BoundingClip(dom)
		var hitX0, hitX1, hitT0, hitT1 bool
		dom.Points(func(p Point) bool {
			hitX0 = hitX0 || p.X == c.X0
			hitX1 = hitX1 || p.X == c.X1-1
			hitT0 = hitT0 || p.T == c.T0
			hitT1 = hitT1 || p.T == c.T1-1
			return true
		})
		if !hitX0 || !hitX1 || !hitT0 || !hitT1 {
			t.Errorf("%v: bounding box %v not tight (x0 %v x1 %v t0 %v t1 %v)",
				dom, c, hitX0, hitX1, hitT0, hitT1)
		}
	}
}

func TestAddrTable(t *testing.T) {
	d := NewDiamond(0, 0, 8, UnboundedClip())
	tab := NewAddrTable(IndexerFor(d))
	n := 0
	d.Points(func(p Point) bool {
		if _, ok := tab.Get(p); ok {
			t.Fatalf("fresh table has entry at %v", p)
		}
		tab.Set(p, n)
		n++
		return true
	})
	i := 0
	d.Points(func(p Point) bool {
		a, ok := tab.Get(p)
		if !ok || a != i {
			t.Fatalf("Get(%v) = %d, %v; want %d, true", p, a, ok, i)
		}
		i++
		return true
	})
	d.Points(func(p Point) bool {
		tab.Delete(p)
		if _, ok := tab.Get(p); ok {
			t.Fatalf("entry at %v survives Delete", p)
		}
		return true
	})
	// Reset re-targets the same backing storage to a smaller box.
	small := NewDiamond(0, 0, 4, UnboundedClip())
	tab.Reset(IndexerFor(small))
	small.Points(func(p Point) bool {
		if _, ok := tab.Get(p); ok {
			t.Fatalf("reset table has entry at %v", p)
		}
		return true
	})
}

func TestAddrTableSetPanicsOnNegative(t *testing.T) {
	tab := NewAddrTable(NewIndexer(ClipAll1D(2, 2)))
	defer func() {
		if recover() == nil {
			t.Fatal("Set(p, -1) did not panic")
		}
	}()
	tab.Set(Point{}, -1)
}

func TestPointSet(t *testing.T) {
	d := NewDiamond(0, 0, 8, UnboundedClip())
	s := NewPointSet(IndexerFor(d))
	var pts []Point
	d.Points(func(p Point) bool {
		pts = append(pts, p)
		return true
	})
	for i, p := range pts {
		if !s.Add(p) {
			t.Fatalf("Add(%v) reported already present", p)
		}
		if s.Add(p) {
			t.Fatalf("second Add(%v) reported newly added", p)
		}
		if s.Len() != i+1 {
			t.Fatalf("Len() = %d after %d adds", s.Len(), i+1)
		}
	}
	for _, p := range pts {
		if !s.Has(p) {
			t.Fatalf("Has(%v) false after Add", p)
		}
		s.Remove(p)
		if s.Has(p) {
			t.Fatalf("Has(%v) true after Remove", p)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len() = %d after draining", s.Len())
	}
	// A drained set must Reset without stale bits even when re-targeted.
	s.Add(pts[0])
	s.Reset(s.ix) // dirty reset: zeroing path
	for _, p := range pts {
		if s.Has(p) {
			t.Fatalf("stale bit at %v after dirty Reset", p)
		}
	}
}
