package lattice

import "testing"

func BenchmarkDiamondPoints(b *testing.B) {
	d := NewDiamond(0, 0, 256, UnboundedClip())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		d.Points(func(Point) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkDiamondSize(b *testing.B) {
	d := NewDiamond(0, 0, 1024, UnboundedClip())
	for i := 0; i < b.N; i++ {
		if d.Size() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBox4Children(b *testing.B) {
	o := FigureThreeOctahedron(64)
	for i := 0; i < b.N; i++ {
		if len(o.Children()) != 14 {
			b.Fatal("wrong child count")
		}
	}
}

func BenchmarkBox6Children(b *testing.B) {
	o := CentralBox6(32)
	for i := 0; i < b.N; i++ {
		if len(o.Children()) != 46 {
			b.Fatal("wrong child count")
		}
	}
}

func BenchmarkFigureOnePartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(FigureOnePartition(256)) != 5 {
			b.Fatal("wrong piece count")
		}
	}
}
