package lattice

import "testing"

func BenchmarkDiamondPoints(b *testing.B) {
	d := NewDiamond(0, 0, 256, UnboundedClip())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		d.Points(func(Point) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkDiamondSize(b *testing.B) {
	d := NewDiamond(0, 0, 1024, UnboundedClip())
	for i := 0; i < b.N; i++ {
		if d.Size() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBox4Children(b *testing.B) {
	o := FigureThreeOctahedron(64)
	for i := 0; i < b.N; i++ {
		if len(o.Children()) != 14 {
			b.Fatal("wrong child count")
		}
	}
}

func BenchmarkBox6Children(b *testing.B) {
	o := CentralBox6(32)
	for i := 0; i < b.N; i++ {
		if len(o.Children()) != 46 {
			b.Fatal("wrong child count")
		}
	}
}

func BenchmarkFigureOnePartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(FigureOnePartition(256)) != 5 {
			b.Fatal("wrong piece count")
		}
	}
}

// BenchmarkIndexerVsMap compares the two Point -> address representations
// on the executors' hot pattern: populate every point of a domain, look
// each up, then remove it. The dense AddrTable is the production path;
// the map variant is the seed implementation kept here as the baseline.
func BenchmarkIndexerVsMap(b *testing.B) {
	d := NewDiamond(0, 0, 128, UnboundedClip())
	b.Run("addrtable", func(b *testing.B) {
		tab := NewAddrTable(IndexerFor(d))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			d.Points(func(p Point) bool {
				tab.Set(p, n)
				n++
				return true
			})
			d.Points(func(p Point) bool {
				if _, ok := tab.Get(p); !ok {
					b.Fatal("missing")
				}
				return true
			})
			d.Points(func(p Point) bool {
				tab.Delete(p)
				return true
			})
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := make(map[Point]int)
			n := 0
			d.Points(func(p Point) bool {
				m[p] = n
				n++
				return true
			})
			d.Points(func(p Point) bool {
				if _, ok := m[p]; !ok {
					b.Fatal("missing")
				}
				return true
			})
			d.Points(func(p Point) bool {
				delete(m, p)
				return true
			})
		}
	})
}
