package lattice

import (
	"math"
	"testing"
	"testing/quick"
)

// preds2D returns the dag predecessors of a d = 2 vertex: (x', y', t-1)
// where (x', y') is (x, y) or one of its four mesh neighbors.
func preds2D(p Point) []Point {
	if p.T == 0 {
		return nil
	}
	return []Point{
		{X: p.X, Y: p.Y, T: p.T - 1},
		{X: p.X - 1, Y: p.Y, T: p.T - 1},
		{X: p.X + 1, Y: p.Y, T: p.T - 1},
		{X: p.X, Y: p.Y - 1, T: p.T - 1},
		{X: p.X, Y: p.Y + 1, T: p.T - 1},
	}
}

func TestBox4SizeMatchesEnumeration(t *testing.T) {
	clip := ClipAll2D(6, 6)
	for _, b := range []Box4{
		Box4Around(6, 6),
		NewOctahedron(2, -2, 1, -1, 4, clip),
		NewTetrahedron(4, 0, 0, 0, 4, clip),
		{A0: 0, B0: -1, E0: 1, F0: -2, RA: 3, RB: 4, RE: 2, RF: 5, Clip: clip},
	} {
		pts := collect(b)
		if len(pts) != b.Size() {
			t.Errorf("%v: Size() = %d but enumerated %d", b, b.Size(), len(pts))
		}
		for _, p := range pts {
			if !b.Contains(p) {
				t.Errorf("%v: enumerated point %v not Contains", b, p)
			}
		}
	}
}

func TestBox4SizeBruteForce(t *testing.T) {
	clip := ClipAll2D(7, 7)
	b := Box4{A0: 1, B0: -3, E0: 0, F0: -2, RA: 6, RB: 5, RE: 7, RF: 4, Clip: clip}
	want := 0
	for x := 0; x < 7; x++ {
		for y := 0; y < 7; y++ {
			for tt := 0; tt < 7; tt++ {
				if b.Contains(Point{X: x, Y: y, T: tt}) {
					want++
				}
			}
		}
	}
	if got := b.Size(); got != want {
		t.Fatalf("Size() = %d, brute force = %d", got, want)
	}
}

func TestBox4AroundCoversV(t *testing.T) {
	for _, st := range [][2]int{{4, 4}, {5, 3}, {2, 6}} {
		side, T := st[0], st[1]
		b := Box4Around(side, T)
		if got, want := b.Size(), side*side*T; got != want {
			t.Errorf("Box4Around(%d,%d).Size() = %d, want %d", side, T, got, want)
		}
	}
}

func TestBox4PointsOrdered(t *testing.T) {
	b := Box4Around(4, 4)
	pts := collect(b)
	for i := 1; i < len(pts); i++ {
		if !pts[i-1].Less(pts[i]) {
			t.Fatalf("points out of order: %v then %v", pts[i-1], pts[i])
		}
	}
}

func TestOctahedronMeasure(t *testing.T) {
	// |P(r)| -> r³/3 (paper Section 5).
	for _, r := range []int{8, 16, 32, 64} {
		p := FigureThreeOctahedron(r)
		got := float64(p.Size())
		want := math.Pow(float64(r), 3) / 3
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("r=%d: |P| = %g, want ~%g", r, got, want)
		}
	}
}

func TestTetrahedronMeasure(t *testing.T) {
	// |W(r)| -> r³/12 (paper Section 5).
	for _, r := range []int{8, 16, 32, 64} {
		w := FigureThreeTetrahedron(r)
		got := float64(w.Size())
		want := math.Pow(float64(r), 3) / 12
		if math.Abs(got-want)/want > 0.35 {
			t.Errorf("r=%d: |W| = %g, want ~%g", r, got, want)
		}
	}
}

func TestFigure3OctahedronDecomposition(t *testing.T) {
	// Figure 3(a): P(r) splits into 6 P(r/2) and 8 W(r/2).
	p := FigureThreeOctahedron(32)
	kids := p.Children()
	counts := KindCount(kids)
	if counts[Octahedron] != 6 || counts[Tetrahedron] != 8 || counts[Wedge] != 0 {
		t.Fatalf("P(32) children: %d P + %d W + %d wedge, want 6 P + 8 W",
			counts[Octahedron], counts[Tetrahedron], counts[Wedge])
	}
	checkPartition(t, p, kids, preds2D)
	// Measure ratios (paper): |P(r/2)| = |P(r)|/8, |W(r/2)| = |P(r)|/32.
	for _, k := range kids {
		b := k.(Box4)
		ratio := float64(b.Size()) / float64(p.Size())
		var want float64
		if b.Kind() == Octahedron {
			want = 1.0 / 8
		} else {
			want = 1.0 / 32
		}
		if math.Abs(ratio-want)/want > 0.35 {
			t.Errorf("child %v: size ratio %g, want ~%g", b, ratio, want)
		}
	}
}

func TestFigure3TetrahedronDecomposition(t *testing.T) {
	// Figure 3(b): W(r) splits into 1 P(r/2) and 4 W(r/2).
	w := FigureThreeTetrahedron(32)
	kids := w.Children()
	counts := KindCount(kids)
	if counts[Octahedron] != 1 || counts[Tetrahedron] != 4 || counts[Wedge] != 0 {
		t.Fatalf("W(32) children: %d P + %d W + %d wedge, want 1 P + 4 W",
			counts[Octahedron], counts[Tetrahedron], counts[Wedge])
	}
	checkPartition(t, w, kids, preds2D)
	// Measure ratios (paper): |P(r/2)| = |W(r)|/2, |W(r/2)| = |W(r)|/8.
	for _, k := range kids {
		b := k.(Box4)
		ratio := float64(b.Size()) / float64(w.Size())
		var want float64
		if b.Kind() == Octahedron {
			want = 1.0 / 2
		} else {
			want = 1.0 / 8
		}
		if math.Abs(ratio-want)/want > 0.35 {
			t.Errorf("child %v: size ratio %g, want ~%g", b, ratio, want)
		}
	}
}

func TestBox4PreboundaryScaling(t *testing.T) {
	// Γin(P(r)) = Θ(r²) = Θ(|P|^(2/3)) (paper Section 5).
	for _, r := range []int{8, 16, 32} {
		p := FigureThreeOctahedron(r)
		bound := make(map[Point]bool)
		p.Points(func(pt Point) bool {
			for _, q := range preds2D(pt) {
				if !p.Contains(q) {
					bound[q] = true
				}
			}
			return true
		})
		got := float64(len(bound))
		scale := math.Pow(float64(p.Size()), 2.0/3)
		ratio := got / scale
		if ratio < 0.5 || ratio > 8 {
			t.Errorf("r=%d: |Γin| = %g, |P|^(2/3) = %g, ratio %g out of range",
				r, got, scale, ratio)
		}
	}
}

func TestFigureFourPartition(t *testing.T) {
	for _, side := range []int{4, 8, 16} {
		pieces := FigureFourPartition(side)
		if len(pieces) == 0 {
			t.Fatalf("side=%d: empty partition", side)
		}
		parent := Box4Around(side, side)
		doms := make([]Domain, len(pieces))
		hasP, hasW := false, false
		for i, p := range pieces {
			doms[i] = p
			switch p.Kind() {
			case Octahedron:
				hasP = true
			case Tetrahedron:
				hasW = true
			}
		}
		checkPartition(t, parent, doms, preds2D)
		if !hasP || !hasW {
			t.Errorf("side=%d: partition should mix octahedra and tetrahedra (P:%v W:%v)",
				side, hasP, hasW)
		}
	}
}

func TestBox4RecursiveDecompositionExact(t *testing.T) {
	b := Box4Around(6, 6)
	var leaves []Point
	var rec func(dom Domain)
	rec = func(dom Domain) {
		kids := dom.Children()
		if kids == nil {
			dom.Points(func(p Point) bool {
				leaves = append(leaves, p)
				return true
			})
			return
		}
		for _, k := range kids {
			rec(k)
		}
	}
	rec(b)
	if len(leaves) != b.Size() {
		t.Fatalf("recursion yields %d points, want %d", len(leaves), b.Size())
	}
	pos := make(map[Point]int, len(leaves))
	for i, p := range leaves {
		if _, dup := pos[p]; dup {
			t.Fatalf("duplicate leaf %v", p)
		}
		pos[p] = i
	}
	for p, i := range pos {
		for _, q := range preds2D(p) {
			if j, in := pos[q]; in && j > i {
				t.Fatalf("leaf order violates dependency: %v at %d needs %v at %d", p, i, q, j)
			}
		}
	}
}

func TestNewOctahedronPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched pair sums did not panic")
		}
	}()
	NewOctahedron(0, 0, 0, 1, 4, UnboundedClip())
}

func TestNewTetrahedronPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong offset did not panic")
		}
	}()
	NewTetrahedron(1, 0, 0, 0, 4, UnboundedClip())
}

func TestKindString(t *testing.T) {
	if Octahedron.String() != "P" || Tetrahedron.String() != "W" || Wedge.String() != "wedge" {
		t.Fatal("Kind.String mismatch")
	}
}

// Property: Box4 children always exactly partition the parent and respect
// dependencies, for random geometry.
func TestPropertyBox4ChildrenPartition(t *testing.T) {
	f := func(a0, b0 int8, r uint8) bool {
		span := int(r%12) + 2
		off := 0
		if r%2 == 1 {
			off = span // tetrahedron
		}
		b := Box4{
			A0: int(a0), B0: int(b0),
			E0: int(a0) - off, F0: int(b0),
			RA: span, RB: span, RE: span, RF: span,
			Clip: UnboundedClip(),
		}
		if b.Size() == 0 {
			return true
		}
		seen := make(map[Point]int)
		total := 0
		for i, c := range b.Children() {
			ok := true
			c.Points(func(p Point) bool {
				if !b.Contains(p) {
					ok = false
					return false
				}
				if _, dup := seen[p]; dup {
					ok = false
					return false
				}
				seen[p] = i
				total++
				return true
			})
			if !ok {
				return false
			}
		}
		if total != b.Size() {
			return false
		}
		for p, i := range seen {
			for _, q := range preds2D(p) {
				if j, in := seen[q]; in && j > i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
