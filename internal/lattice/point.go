// Package lattice implements the geometric machinery of Bilardi & Preparata
// (SPAA 1995): the convex lattice domains — diamonds for d = 1, octahedra and
// tetrahedra for d = 2 — together with their ordered topological partitions
// (Figures 1–4 of the paper) used by the topological-separator simulation
// technique.
//
// # Rotated coordinates
//
// The computation dag of a T-step run of the linear array M1(n,n,1) has
// vertices (x, t) with arcs (x', t-1) -> (x, t) for |x - x'| <= 1
// (Definition 3). In the rotated coordinates
//
//	u = t + x,   w = t - x
//
// every arc is non-decreasing in both u and w, and the paper's diamond
// domain D(r) — the set |x-cx| + |t-ct| <= r/2 — becomes an axis-aligned
// semi-open square [u0, u0+r) × [w0, w0+r). Splitting that square into four
// quadrants, ordered so that lower-coordinate quadrants come first, is
// precisely the paper's topological partition of D(r) into four D(r/2)
// (Section 4.1), because dependencies only flow from coordinate-wise lower
// points.
//
// For d = 2 the dag vertices are (x, y, t) with mesh-neighbor arcs, and in
//
//	a = t + x,  b = t - x,  e = t + y,  f = t - y
//
// (with the built-in constraint a + b = e + f = 2t) arcs are non-decreasing
// in all four coordinates. The paper's octahedron P(R) — the intersection
// |t±x| <= R/2, |t±y| <= R/2 — is the semi-open box
// [a0,a0+R) × [b0,b0+R) × [e0,e0+R) × [f0,f0+R) with a0+b0 = e0+f0, and its
// tetrahedron W(R) is the same box with the two pair-sums offset by R
// (|a0+b0 - (e0+f0)| = R). Halving all four ranges yields exactly the
// paper's Figure 3 decompositions: 6 octahedra + 8 tetrahedra for P, and
// 1 octahedron + 4 tetrahedra for W (see box4.go).
//
// All domains are semi-open from below, which realizes the paper's
// convention that a domain "does not contain those points of its frontier
// corresponding to minimum values of t" and makes partitions exact on the
// integer lattice, with no shared or dropped boundary points.
package lattice

import "fmt"

// Point is a dag vertex position. For d = 1 domains Y and Z are always 0
// and the point is (X, T); for d = 2, (X, Y, T) with Z = 0; for d = 3,
// (X, Y, Z, T). T is the time step of the simulated network computation.
type Point struct {
	X, Y, Z, T int
}

// String formats the point as (x,y,z,t).
func (p Point) String() string { return fmt.Sprintf("(%d,%d,%d,%d)", p.X, p.Y, p.Z, p.T) }

// Less orders points by (T, X, Y, Z). Ascending order is a topological
// order of the d = 1, 2, 3 computation dags, because every arc increases
// T by exactly one.
func (p Point) Less(q Point) bool {
	if p.T != q.T {
		return p.T < q.T
	}
	if p.X != q.X {
		return p.X < q.X
	}
	if p.Y != q.Y {
		return p.Y < q.Y
	}
	return p.Z < q.Z
}

// Clip is a half-open axis-aligned box in machine coordinates: x in [X0,X1),
// y in [Y0,Y1), z in [Z0,Z1), t in [T0,T1). Domains are intersected with a
// Clip to produce the "truncated" diamond/octahedron/tetrahedron instances
// of Figures 1 and 4. For d = 1 use Y0 = Z0 = 0, Y1 = Z1 = 1; for d = 2,
// Z0 = 0, Z1 = 1.
type Clip struct {
	X0, X1, Y0, Y1, Z0, Z1, T0, T1 int
}

// ClipAll1D returns the clip of the full d = 1 computation domain
// V = [0,n) × [0,T): n processors running T steps.
func ClipAll1D(n, t int) Clip {
	return Clip{X0: 0, X1: n, Y0: 0, Y1: 1, Z0: 0, Z1: 1, T0: 0, T1: t}
}

// ClipAll2D returns the clip of the full d = 2 computation domain
// V = [0,side)² × [0,T).
func ClipAll2D(side, t int) Clip {
	return Clip{X0: 0, X1: side, Y0: 0, Y1: side, Z0: 0, Z1: 1, T0: 0, T1: t}
}

// ClipAll3D returns the clip of the full d = 3 computation domain
// V = [0,side)³ × [0,T).
func ClipAll3D(side, t int) Clip {
	return Clip{X0: 0, X1: side, Y0: 0, Y1: side, Z0: 0, Z1: side, T0: 0, T1: t}
}

// Contains reports whether p lies inside the clip box.
func (c Clip) Contains(p Point) bool {
	return p.X >= c.X0 && p.X < c.X1 &&
		p.Y >= c.Y0 && p.Y < c.Y1 &&
		p.Z >= c.Z0 && p.Z < c.Z1 &&
		p.T >= c.T0 && p.T < c.T1
}

// Empty reports whether the clip box contains no lattice points.
func (c Clip) Empty() bool {
	return c.X0 >= c.X1 || c.Y0 >= c.Y1 || c.Z0 >= c.Z1 || c.T0 >= c.T1
}

// Volume reports the number of lattice points in the clip box.
func (c Clip) Volume() int {
	if c.Empty() {
		return 0
	}
	return (c.X1 - c.X0) * (c.Y1 - c.Y0) * (c.Z1 - c.Z0) * (c.T1 - c.T0)
}

// Domain is a convex set of dag vertices equipped with an ordered
// topological partition (Definition 4 of the paper): executing the children
// in order, each child's preboundary is covered by the parent's preboundary
// plus earlier children. Concrete implementations are Diamond (d = 1),
// Box4 (d = 2), and Box6 (d = 3).
type Domain interface {
	// Dim is the mesh dimension d (1, 2, or 3); the dag lives in d+1
	// dimensions.
	Dim() int
	// Size is the exact number of dag vertices in the domain.
	Size() int
	// Points enumerates the domain's vertices in ascending (T, X, Y)
	// order — a topological order of the dag — stopping early if yield
	// returns false.
	Points(yield func(Point) bool)
	// Children returns the ordered topological partition of the domain,
	// or nil if the domain is atomic (cannot be split further). Empty
	// children are omitted; the concatenation of the children's point
	// sets equals the domain's point set exactly.
	Children() []Domain
	// Contains reports whether p is a vertex of the domain.
	Contains(p Point) bool
	// Span is the linear extent r of the domain (the paper's diamond
	// width or octahedron diameter), before clipping.
	Span() int
	// String describes the domain for diagnostics.
	String() string
}

// overlap returns the number of integers in [lo1,hi1) ∩ [lo2,hi2).
func overlap(lo1, hi1, lo2, hi2 int) int {
	lo := lo1
	if lo2 > lo {
		lo = lo2
	}
	hi := hi1
	if hi2 < hi {
		hi = hi2
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// maxInt returns the larger of a and b.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// minInt returns the smaller of a and b.
func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ceilDiv returns ceil(a/b) for b > 0.
func ceilDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

// floorDiv returns floor(a/b) for b > 0.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a > 0) != (b > 0) {
		q--
	}
	return q
}
