package lattice

import "fmt"

// Indexer is a bijection between the lattice points of a finite
// axis-aligned box and the dense range [0, Len()). It is the address
// arithmetic behind the executors' flat location tables: where the seed
// implementation hashed every Point into a map on the innermost loops,
// Index and Deindex are a handful of integer operations, and the backing
// arrays they address are allocated once per execution and reused across
// every recursion level.
//
// Indices ascend in (T, Z, Y, X) order: consecutive X values are adjacent,
// one time layer occupies one contiguous block. Either coordinate order
// would do for a bijection; this one keeps a domain's Points enumeration
// (ascending (T, X, Y)) within one layer-sized window of the table, which
// is as cache-friendly as the access pattern allows.
type Indexer struct {
	x0, y0, z0, t0 int
	nx, ny, nz, nt int
}

// NewIndexer returns the Indexer of the given box. The box must be
// bounded and small enough that its volume fits in an int; use
// BoundingClip to derive a tight finite box from a domain.
func NewIndexer(c Clip) Indexer {
	if c.Empty() {
		return Indexer{}
	}
	return Indexer{
		x0: c.X0, y0: c.Y0, z0: c.Z0, t0: c.T0,
		nx: c.X1 - c.X0, ny: c.Y1 - c.Y0, nz: c.Z1 - c.Z0, nt: c.T1 - c.T0,
	}
}

// IndexerFor returns the Indexer of the domain's bounding box: an O(1)
// Point<->int bijection covering every point of a Diamond, Box4, or Box6.
func IndexerFor(dom Domain) Indexer { return NewIndexer(BoundingClip(dom)) }

// Len reports the number of lattice points the Indexer covers.
func (ix Indexer) Len() int { return ix.nx * ix.ny * ix.nz * ix.nt }

// Bounds reports the covered box.
func (ix Indexer) Bounds() Clip {
	return Clip{
		X0: ix.x0, X1: ix.x0 + ix.nx,
		Y0: ix.y0, Y1: ix.y0 + ix.ny,
		Z0: ix.z0, Z1: ix.z0 + ix.nz,
		T0: ix.t0, T1: ix.t0 + ix.nt,
	}
}

// Contains reports whether p lies inside the covered box.
func (ix Indexer) Contains(p Point) bool {
	x, y, z, t := p.X-ix.x0, p.Y-ix.y0, p.Z-ix.z0, p.T-ix.t0
	return x >= 0 && x < ix.nx && y >= 0 && y < ix.ny &&
		z >= 0 && z < ix.nz && t >= 0 && t < ix.nt
}

// Index maps a point of the covered box to its dense index. The caller
// must ensure Contains(p); out-of-box points yield indices that collide
// with in-box ones or fall outside [0, Len()).
func (ix Indexer) Index(p Point) int {
	return (((p.T-ix.t0)*ix.nz+(p.Z-ix.z0))*ix.ny+(p.Y-ix.y0))*ix.nx + (p.X - ix.x0)
}

// Deindex inverts Index.
func (ix Indexer) Deindex(i int) Point {
	x := i%ix.nx + ix.x0
	i /= ix.nx
	y := i%ix.ny + ix.y0
	i /= ix.ny
	z := i%ix.nz + ix.z0
	return Point{X: x, Y: y, Z: z, T: i/ix.nz + ix.t0}
}

// BoundingClip returns a tight finite box containing every lattice point
// of the domain, intersecting the domain's rotated-coordinate ranges with
// its Clip — finite even under UnboundedClip, because the rotated ranges
// themselves bound every machine coordinate.
func BoundingClip(dom Domain) Clip {
	switch d := dom.(type) {
	case Diamond:
		// x = (u-w)/2, t = (u+w)/2 over u in [U0,U0+RU), w in [W0,W0+RW).
		c := Clip{
			X0: ceilDiv(d.U0-(d.W0+d.RW-1), 2), X1: floorDiv(d.U0+d.RU-1-d.W0, 2) + 1,
			Y0: 0, Y1: 1, Z0: 0, Z1: 1,
			T0: ceilDiv(d.U0+d.W0, 2), T1: floorDiv(d.U0+d.RU-1+d.W0+d.RW-1, 2) + 1,
		}
		return c.Intersect(d.Clip)
	case Box4:
		c := Clip{
			X0: ceilDiv(d.A0-(d.B0+d.RB-1), 2), X1: floorDiv(d.A0+d.RA-1-d.B0, 2) + 1,
			Y0: ceilDiv(d.E0-(d.F0+d.RF-1), 2), Y1: floorDiv(d.E0+d.RE-1-d.F0, 2) + 1,
			Z0: 0, Z1: 1,
			T0: ceilDiv(maxInt(d.A0+d.B0, d.E0+d.F0), 2),
			T1: floorDiv(minInt(d.A0+d.RA-1+d.B0+d.RB-1, d.E0+d.RE-1+d.F0+d.RF-1), 2) + 1,
		}
		return c.Intersect(d.Clip)
	case Box6:
		c := Clip{
			X0: ceilDiv(d.A0-(d.B0+d.RB-1), 2), X1: floorDiv(d.A0+d.RA-1-d.B0, 2) + 1,
			Y0: ceilDiv(d.E0-(d.F0+d.RF-1), 2), Y1: floorDiv(d.E0+d.RE-1-d.F0, 2) + 1,
			Z0: ceilDiv(d.G0-(d.H0+d.RH-1), 2), Z1: floorDiv(d.G0+d.RG-1-d.H0, 2) + 1,
			T0: ceilDiv(maxInt(maxInt(d.A0+d.B0, d.E0+d.F0), d.G0+d.H0), 2),
			T1: floorDiv(minInt(minInt(d.A0+d.RA-1+d.B0+d.RB-1,
				d.E0+d.RE-1+d.F0+d.RF-1), d.G0+d.RG-1+d.H0+d.RH-1), 2) + 1,
		}
		return c.Intersect(d.Clip)
	default:
		panic(fmt.Sprintf("lattice: BoundingClip does not support %T", dom))
	}
}

// Intersect returns the box common to c and o.
func (c Clip) Intersect(o Clip) Clip {
	return Clip{
		X0: maxInt(c.X0, o.X0), X1: minInt(c.X1, o.X1),
		Y0: maxInt(c.Y0, o.Y0), Y1: minInt(c.Y1, o.Y1),
		Z0: maxInt(c.Z0, o.Z0), Z1: minInt(c.Z1, o.Z1),
		T0: maxInt(c.T0, o.T0), T1: minInt(c.T1, o.T1),
	}
}

// AddrTable is a dense Point -> address table over an Indexer's box: the
// flat-array replacement for the executors' map[Point]int location
// tables. Absent entries are the sentinel -1; addresses must fit int32
// (machine sizes here are far below 2³¹ words). The zero value is unusable;
// allocate with NewAddrTable and reuse via Reset.
type AddrTable struct {
	ix    Indexer
	slots []int32
}

// NewAddrTable returns an empty table covering ix's box.
func NewAddrTable(ix Indexer) *AddrTable {
	t := &AddrTable{ix: ix}
	t.slots = make([]int32, ix.Len())
	for i := range t.slots {
		t.slots[i] = -1
	}
	return t
}

// Indexer reports the table's index mapping.
func (t *AddrTable) Indexer() Indexer { return t.ix }

// Reset clears the table, reusing the backing array when the new box fits.
func (t *AddrTable) Reset(ix Indexer) {
	t.ix = ix
	if n := ix.Len(); n <= cap(t.slots) {
		t.slots = t.slots[:n]
	} else {
		t.slots = make([]int32, n)
	}
	for i := range t.slots {
		t.slots[i] = -1
	}
}

// Get returns the address stored for p, if any.
func (t *AddrTable) Get(p Point) (int, bool) {
	a := t.slots[t.ix.Index(p)]
	return int(a), a >= 0
}

// Set stores addr for p. addr must be non-negative.
func (t *AddrTable) Set(p Point, addr int) {
	if addr < 0 || int64(addr) > 1<<31-1 {
		panic(fmt.Sprintf("lattice: address %d out of int32 range", addr))
	}
	t.slots[t.ix.Index(p)] = int32(addr)
}

// Delete removes p's entry.
func (t *AddrTable) Delete(p Point) { t.slots[t.ix.Index(p)] = -1 }

// PointSet is a dense bitset of lattice points over an Indexer's box —
// the flat replacement for map[Point]bool membership sets. Adds are
// tracked so the set can be drained in O(elements added) rather than
// O(box volume), which is what makes one scratch set reusable across
// every recursion level of an execution.
type PointSet struct {
	ix    Indexer
	words []uint64
	n     int
}

// NewPointSet returns an empty set over ix's box.
func NewPointSet(ix Indexer) *PointSet {
	return &PointSet{ix: ix, words: make([]uint64, (ix.Len()+63)/64)}
}

// Reset empties the set and re-targets it to ix's box, reusing the
// backing words when they fit. The zeroing is O(box volume) only when
// elements remain; a set drained with Remove resets for free.
func (s *PointSet) Reset(ix Indexer) {
	need := (ix.Len() + 63) / 64
	dirty := s.n != 0
	if need <= cap(s.words) {
		s.words = s.words[:need]
	} else {
		s.words = make([]uint64, need)
		dirty = false
	}
	if dirty {
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.ix = ix
	s.n = 0
}

// Len reports the number of points in the set.
func (s *PointSet) Len() int { return s.n }

// Add inserts p, reporting whether it was absent.
func (s *PointSet) Add(p Point) bool {
	i := s.ix.Index(p)
	w, b := i>>6, uint64(1)<<(i&63)
	if s.words[w]&b != 0 {
		return false
	}
	s.words[w] |= b
	s.n++
	return true
}

// Has reports whether p is in the set.
func (s *PointSet) Has(p Point) bool {
	i := s.ix.Index(p)
	return s.words[i>>6]&(uint64(1)<<(i&63)) != 0
}

// Remove deletes p if present.
func (s *PointSet) Remove(p Point) {
	i := s.ix.Index(p)
	w, b := i>>6, uint64(1)<<(i&63)
	if s.words[w]&b != 0 {
		s.words[w] &^= b
		s.n--
	}
}
