package lattice

import "fmt"

// Box6 extends the separator domains to d = 3 — the paper's open question
// (Conclusions: "whether the locality slowdown would be present in three
// dimensional machines... the critical step being the development of a
// suitable topological separator for four-dimensional domains"). The
// computation dag of a 3-D mesh lives in (x, y, z, t); in the rotated
// coordinates
//
//	a = t + x,  b = t - x,
//	e = t + y,  f = t - y,
//	g = t + z,  h = t - z
//
// (with a + b = e + f = g + h = 2t on every lattice point) all dag arcs
// are non-decreasing in each of the six coordinates, so any semi-open box
//
//	[A0,A0+RA) × [B0,B0+RB) × ... × [H0,H0+RH)
//
// is convex, and halving all six ranges yields an ordered topological
// partition — exactly the four-dimensional topological separator the
// paper conjectured. The equal-sided box with all three pair sums equal
// is the d = 3 analog of the octahedron: a 4-polytope of measure Θ(R⁴)
// with preboundary Θ(R³) = Θ(|U|^(3/4)), realizing the γ = d/(d+1) = 3/4
// separator exponent. Offset pair sums give the tetrahedron-analog
// wedges; splitting the central polytope produces 46 children (10 central
// analogs + 36 wedges — the d = 3 counterpart of Figure 3's 6 P + 8 W).
type Box6 struct {
	A0, B0, E0, F0, G0, H0 int
	RA, RB, RE, RF, RG, RH int
	Clip                   Clip
}

// Box6Around returns the smallest central Box6 covering the full d = 3
// computation domain V = [0,side)³ × [0,t), clipped to V. The span is
// padded to even so halving classifies children exactly.
func Box6Around(side, t int) Box6 {
	r := side + t - 1
	if r < 1 {
		r = 1
	}
	r += r & 1
	lo := -(side - 1)
	return Box6{
		A0: 0, B0: lo, E0: 0, F0: lo, G0: 0, H0: lo,
		RA: r, RB: r, RE: r, RF: r, RG: r, RH: r,
		Clip: ClipAll3D(side, t),
	}
}

// CentralBox6 returns the canonical unclipped d = 3 central polytope of
// span r (all pair sums equal, low corner at the origin).
func CentralBox6(r int) Box6 {
	if r < 0 {
		panic(fmt.Sprintf("lattice: negative Box6 span %d", r))
	}
	return Box6{
		RA: r, RB: r, RE: r, RF: r, RG: r, RH: r,
		Clip: UnboundedClip(),
	}
}

// Dim reports 3.
func (o Box6) Dim() int { return 3 }

// Span reports the largest unclipped side.
func (o Box6) Span() int {
	s := o.RA
	for _, r := range [5]int{o.RB, o.RE, o.RF, o.RG, o.RH} {
		if r > s {
			s = r
		}
	}
	return s
}

// Offsets reports the two independent pair-sum offsets
// (A0+B0)-(E0+F0) and (A0+B0)-(G0+H0); both zero means the central
// (octahedron-analog) polytope.
func (o Box6) Offsets() (int, int) {
	ab := o.A0 + o.B0
	return ab - (o.E0 + o.F0), ab - (o.G0 + o.H0)
}

// IsCentral reports whether the box is the d = 3 octahedron analog.
func (o Box6) IsCentral() bool {
	d1, d2 := o.Offsets()
	return d1 == 0 && d2 == 0
}

// String describes the domain.
func (o Box6) String() string {
	d1, d2 := o.Offsets()
	return fmt.Sprintf("B6(span=%d off=%d,%d at a=%d b=%d e=%d f=%d g=%d h=%d)",
		o.Span(), d1, d2, o.A0, o.B0, o.E0, o.F0, o.G0, o.H0)
}

// Contains reports whether p is a lattice point of the domain.
func (o Box6) Contains(p Point) bool {
	if !o.Clip.Contains(p) {
		return false
	}
	a, b := p.T+p.X, p.T-p.X
	e, f := p.T+p.Y, p.T-p.Y
	g, h := p.T+p.Z, p.T-p.Z
	return a >= o.A0 && a < o.A0+o.RA &&
		b >= o.B0 && b < o.B0+o.RB &&
		e >= o.E0 && e < o.E0+o.RE &&
		f >= o.F0 && f < o.F0+o.RF &&
		g >= o.G0 && g < o.G0+o.RG &&
		h >= o.H0 && h < o.H0+o.RH
}

// tRange intersects the three pair-sum constraints with the clip.
func (o Box6) tRange() (tmin, tmax int) {
	tmin = ceilDiv(maxInt(maxInt(o.A0+o.B0, o.E0+o.F0), o.G0+o.H0), 2)
	tmax = floorDiv(minInt(minInt(
		o.A0+o.RA-1+o.B0+o.RB-1,
		o.E0+o.RE-1+o.F0+o.RF-1),
		o.G0+o.RG-1+o.H0+o.RH-1), 2)
	tmin = maxInt(tmin, o.Clip.T0)
	tmax = minInt(tmax, o.Clip.T1-1)
	return tmin, tmax
}

// coordRangeAt gives the half-open feasible range of a "plus" coordinate
// (a, e, or g) at time t, given its box range, the paired "minus"
// coordinate's box range, and the machine clip for the spatial axis.
func coordRangeAt(t, lo, rl, mLo, mR, clipLo, clipHi int) (int, int) {
	a := maxInt(lo, 2*t-mLo-mR+1)
	b := minInt(lo+rl, 2*t-mLo+1)
	a = maxInt(a, t+clipLo)
	b = minInt(b, t+clipHi)
	return a, b
}

// Size reports the exact number of lattice points.
func (o Box6) Size() int {
	if o.RA <= 0 || o.RB <= 0 || o.RE <= 0 || o.RF <= 0 || o.RG <= 0 || o.RH <= 0 {
		return 0
	}
	n := 0
	tmin, tmax := o.tRange()
	for t := tmin; t <= tmax; t++ {
		alo, ahi := coordRangeAt(t, o.A0, o.RA, o.B0, o.RB, o.Clip.X0, o.Clip.X1)
		elo, ehi := coordRangeAt(t, o.E0, o.RE, o.F0, o.RF, o.Clip.Y0, o.Clip.Y1)
		glo, ghi := coordRangeAt(t, o.G0, o.RG, o.H0, o.RH, o.Clip.Z0, o.Clip.Z1)
		if ahi > alo && ehi > elo && ghi > glo {
			n += (ahi - alo) * (ehi - elo) * (ghi - glo)
		}
	}
	return n
}

// Points enumerates lattice points in ascending (T, X, Y, Z) order.
func (o Box6) Points(yield func(Point) bool) {
	if o.RA <= 0 || o.RB <= 0 || o.RE <= 0 || o.RF <= 0 || o.RG <= 0 || o.RH <= 0 {
		return
	}
	tmin, tmax := o.tRange()
	for t := tmin; t <= tmax; t++ {
		alo, ahi := coordRangeAt(t, o.A0, o.RA, o.B0, o.RB, o.Clip.X0, o.Clip.X1)
		elo, ehi := coordRangeAt(t, o.E0, o.RE, o.F0, o.RF, o.Clip.Y0, o.Clip.Y1)
		glo, ghi := coordRangeAt(t, o.G0, o.RG, o.H0, o.RH, o.Clip.Z0, o.Clip.Z1)
		for a := alo; a < ahi; a++ {
			for e := elo; e < ehi; e++ {
				for g := glo; g < ghi; g++ {
					if !yield(Point{X: a - t, Y: e - t, Z: g - t, T: t}) {
						return
					}
				}
			}
		}
	}
}

// Children returns the ordered topological partition obtained by halving
// all six ranges and keeping non-empty combinations in lexicographic
// order — the four-dimensional topological separator of the paper's
// conjecture. Returns nil when no side can be split.
func (o Box6) Children() []Domain {
	if o.RA < 2 && o.RB < 2 && o.RE < 2 && o.RF < 2 && o.RG < 2 && o.RH < 2 {
		return nil
	}
	as := splitRange(o.A0, o.RA)
	bs := splitRange(o.B0, o.RB)
	es := splitRange(o.E0, o.RE)
	fs := splitRange(o.F0, o.RF)
	gs := splitRange(o.G0, o.RG)
	hs := splitRange(o.H0, o.RH)
	var out []Domain
	for _, sa := range as {
		for _, sb := range bs {
			for _, se := range es {
				for _, sf := range fs {
					for _, sg := range gs {
						for _, sh := range hs {
							c := Box6{
								A0: sa.lo, B0: sb.lo, E0: se.lo, F0: sf.lo, G0: sg.lo, H0: sh.lo,
								RA: sa.n, RB: sb.n, RE: se.n, RF: sf.n, RG: sg.n, RH: sh.n,
								Clip: o.Clip,
							}
							if c.Size() > 0 {
								out = append(out, c)
							}
						}
					}
				}
			}
		}
	}
	return out
}
