package lattice

import "fmt"

// Box4 is the d = 2 domain family of Section 5 of the paper. In the rotated
// coordinates
//
//	a = t + x,  b = t - x,  e = t + y,  f = t - y
//
// (which obey a + b = e + f = 2t on every lattice point), a Box4 is the
// semi-open product [A0,A0+RA) × [B0,B0+RB) × [E0,E0+RE) × [F0,F0+RF),
// intersected with a Clip box.
//
// With all four sides equal to R, the Box4 is:
//
//   - the paper's octahedron P(R) — |t±x| <= R/2, |t±y| <= R/2, volume
//     R³/3 — when the pair sums agree: A0+B0 == E0+F0;
//   - the paper's tetrahedron W(R) — volume R³/12 — when the pair sums are
//     offset by R: |A0+B0 - (E0+F0)| == R. (The constraint a+b == e+f then
//     carves a corner wedge out of the product box.)
//
// Splitting all four ranges at their midpoints and discarding empty
// combinations reproduces Figure 3 exactly: P(R) splits into 6 P(R/2) +
// 8 W(R/2); W(R) splits into 1 P(R/2) + 4 W(R/2). See TestFigure3 in the
// figures tests.
type Box4 struct {
	A0, B0, E0, F0 int
	RA, RB, RE, RF int
	Clip           Clip
}

// Kind classifies a Box4 by the offset of its pair sums.
type Kind int

const (
	// Octahedron is the paper's P domain: pair sums equal.
	Octahedron Kind = iota
	// Tetrahedron is the paper's W domain: pair sums offset by exactly
	// the span.
	Tetrahedron
	// Wedge is any other non-empty offset (arises only from uneven
	// integer splits or clipping; behaves like a tetrahedron).
	Wedge
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Octahedron:
		return "P"
	case Tetrahedron:
		return "W"
	default:
		return "wedge"
	}
}

// NewOctahedron returns the octahedron P(r) whose (a,b,e,f) box has low
// corner (a0, b0, e0, f0); it panics unless a0+b0 == e0+f0 or r < 0.
func NewOctahedron(a0, b0, e0, f0, r int, clip Clip) Box4 {
	if r < 0 {
		panic(fmt.Sprintf("lattice: negative octahedron span %d", r))
	}
	if a0+b0 != e0+f0 {
		panic(fmt.Sprintf("lattice: octahedron pair sums differ: %d vs %d", a0+b0, e0+f0))
	}
	return Box4{A0: a0, B0: b0, E0: e0, F0: f0, RA: r, RB: r, RE: r, RF: r, Clip: clip}
}

// NewTetrahedron returns the tetrahedron W(r) whose (a,b,e,f) box has low
// corner (a0, b0, e0, f0); it panics unless the pair sums are offset by
// exactly r.
func NewTetrahedron(a0, b0, e0, f0, r int, clip Clip) Box4 {
	if r < 0 {
		panic(fmt.Sprintf("lattice: negative tetrahedron span %d", r))
	}
	off := a0 + b0 - (e0 + f0)
	if off != r && off != -r {
		panic(fmt.Sprintf("lattice: tetrahedron pair-sum offset %d, want ±%d", off, r))
	}
	return Box4{A0: a0, B0: b0, E0: e0, F0: f0, RA: r, RB: r, RE: r, RF: r, Clip: clip}
}

// Box4Around returns the smallest octahedron covering the full d = 2
// computation domain V = [0,side)² × [0,T), clipped to V.
func Box4Around(side, t int) Box4 {
	// a = time+x in [0, t-1+side-1]; b = time-x in [-(side-1), t-1];
	// e, f identically for y. Pair sums both start at -(side-1): offset 0.
	r := side + t - 1
	if r < 1 {
		r = 1
	}
	// Use an even span so halving produces equal-sided children whose
	// Kind() classification (P vs W) is exact; the padding is clipped away.
	r += r & 1
	return Box4{
		A0: 0, B0: -(side - 1), E0: 0, F0: -(side - 1),
		RA: r, RB: r, RE: r, RF: r,
		Clip: ClipAll2D(side, t),
	}
}

// Dim reports 2.
func (o Box4) Dim() int { return 2 }

// Span reports the largest unclipped side of the (a,b,e,f) box.
func (o Box4) Span() int {
	return maxInt(maxInt(o.RA, o.RB), maxInt(o.RE, o.RF))
}

// Offset reports the pair-sum offset (A0+B0) - (E0+F0) that distinguishes
// octahedra (0) from tetrahedra (±span).
func (o Box4) Offset() int { return o.A0 + o.B0 - (o.E0 + o.F0) }

// Kind classifies the domain; meaningful for equal-sided boxes.
func (o Box4) Kind() Kind {
	off := o.Offset()
	switch {
	case off == 0:
		return Octahedron
	case off == o.Span() || off == -o.Span():
		return Tetrahedron
	default:
		return Wedge
	}
}

// String describes the domain.
func (o Box4) String() string {
	return fmt.Sprintf("%s(a=[%d,%d) b=[%d,%d) e=[%d,%d) f=[%d,%d))",
		o.Kind(), o.A0, o.A0+o.RA, o.B0, o.B0+o.RB, o.E0, o.E0+o.RE, o.F0, o.F0+o.RF)
}

// Contains reports whether p is a lattice point of the domain.
func (o Box4) Contains(p Point) bool {
	if !o.Clip.Contains(p) {
		return false
	}
	a, b := p.T+p.X, p.T-p.X
	e, f := p.T+p.Y, p.T-p.Y
	return a >= o.A0 && a < o.A0+o.RA &&
		b >= o.B0 && b < o.B0+o.RB &&
		e >= o.E0 && e < o.E0+o.RE &&
		f >= o.F0 && f < o.F0+o.RF
}

// tRange returns the inclusive feasible range of t, intersecting the
// a+b = e+f = 2t constraints of both coordinate pairs with the clip.
func (o Box4) tRange() (tmin, tmax int) {
	tmin = ceilDiv(maxInt(o.A0+o.B0, o.E0+o.F0), 2)
	tmax = floorDiv(minInt(o.A0+o.RA-1+o.B0+o.RB-1, o.E0+o.RE-1+o.F0+o.RF-1), 2)
	tmin = maxInt(tmin, o.Clip.T0)
	tmax = minInt(tmax, o.Clip.T1-1)
	return tmin, tmax
}

// aRangeAt returns the half-open range of a at time t (x = a - t).
func (o Box4) aRangeAt(t int) (lo, hi int) {
	lo = maxInt(o.A0, 2*t-o.B0-o.RB+1)
	hi = minInt(o.A0+o.RA, 2*t-o.B0+1)
	lo = maxInt(lo, t+o.Clip.X0)
	hi = minInt(hi, t+o.Clip.X1)
	return lo, hi
}

// eRangeAt returns the half-open range of e at time t (y = e - t).
func (o Box4) eRangeAt(t int) (lo, hi int) {
	lo = maxInt(o.E0, 2*t-o.F0-o.RF+1)
	hi = minInt(o.E0+o.RE, 2*t-o.F0+1)
	lo = maxInt(lo, t+o.Clip.Y0)
	hi = minInt(hi, t+o.Clip.Y1)
	return lo, hi
}

// Size reports the exact number of lattice points in O(span + T) time.
func (o Box4) Size() int {
	if o.RA <= 0 || o.RB <= 0 || o.RE <= 0 || o.RF <= 0 {
		return 0
	}
	n := 0
	tmin, tmax := o.tRange()
	for t := tmin; t <= tmax; t++ {
		alo, ahi := o.aRangeAt(t)
		elo, ehi := o.eRangeAt(t)
		if ahi > alo && ehi > elo {
			n += (ahi - alo) * (ehi - elo)
		}
	}
	return n
}

// Points enumerates lattice points in ascending (T, X, Y) order.
func (o Box4) Points(yield func(Point) bool) {
	if o.RA <= 0 || o.RB <= 0 || o.RE <= 0 || o.RF <= 0 {
		return
	}
	tmin, tmax := o.tRange()
	for t := tmin; t <= tmax; t++ {
		alo, ahi := o.aRangeAt(t)
		elo, ehi := o.eRangeAt(t)
		for a := alo; a < ahi; a++ {
			for e := elo; e < ehi; e++ {
				if !yield(Point{X: a - t, Y: e - t, T: t}) {
					return
				}
			}
		}
	}
}

// Children returns the topological partition obtained by halving all four
// (a,b,e,f) ranges and keeping non-empty combinations, in lexicographic
// order of the half indices. Lexicographic order linearly extends the
// componentwise order, and dag arcs never decrease any of a, b, e, f, so
// the order is topological (Definition 4). For an equal-sided power-of-two
// octahedron this yields the paper's 6 P + 8 W of Figure 3(a); for a
// tetrahedron, 1 P + 4 W of Figure 3(b). Returns nil when no side can be
// split (all sides < 2).
func (o Box4) Children() []Domain {
	if o.RA < 2 && o.RB < 2 && o.RE < 2 && o.RF < 2 {
		return nil
	}
	as := splitRange(o.A0, o.RA)
	bs := splitRange(o.B0, o.RB)
	es := splitRange(o.E0, o.RE)
	fs := splitRange(o.F0, o.RF)
	out := make([]Domain, 0, 16)
	for _, sa := range as {
		for _, sb := range bs {
			for _, se := range es {
				for _, sf := range fs {
					c := Box4{
						A0: sa.lo, B0: sb.lo, E0: se.lo, F0: sf.lo,
						RA: sa.n, RB: sb.n, RE: se.n, RF: sf.n,
						Clip: o.Clip,
					}
					if c.Size() > 0 {
						out = append(out, c)
					}
				}
			}
		}
	}
	return out
}
