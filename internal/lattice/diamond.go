package lattice

import "fmt"

// Diamond is the d = 1 domain family of the paper (Section 4.1),
// generalized from the square case to a rectangle: in rotated coordinates
// u = t+x, w = t-x it is the semi-open rectangle [U0, U0+RU) × [W0, W0+RW),
// intersected with a Clip box. The paper's diamond D(r) — the set
// |x-cx| + |t-ct| <= r/2 without its minimum-t frontier, of measure r²/2 —
// is the square case RU = RW = r. Rectangles arise from integer halving and
// carry the same separator property: the preboundary is O(RU + RW) while
// the size is Θ(RU·RW)/2.
//
// Lattice points of the dag satisfy u ≡ w (mod 2) (t+x and t-x have equal
// parity); Diamond enumerates only those.
type Diamond struct {
	U0, W0, RU, RW int
	Clip           Clip
}

// NewDiamond returns the square diamond of width r whose (u, w) square has
// its low corner at (u0, w0), clipped to clip. It panics if r < 0.
func NewDiamond(u0, w0, r int, clip Clip) Diamond {
	if r < 0 {
		panic(fmt.Sprintf("lattice: negative diamond width %d", r))
	}
	return Diamond{U0: u0, W0: w0, RU: r, RW: r, Clip: clip}
}

// DiamondAround returns the smallest square diamond covering the full
// computation domain V = [0,n) × [0,T) of an n-node linear array run for T
// steps, clipped to V.
func DiamondAround(n, t int) Diamond {
	// u = time+x in [0, t-1 + n-1]; w = time-x in [-(n-1), t-1].
	side := n + t - 1 // covers u-range and w-range, both of extent n+t-2
	if side < 1 {
		side = 1
	}
	return NewDiamond(0, -(n - 1), side, ClipAll1D(n, t))
}

// Dim reports 1.
func (d Diamond) Dim() int { return 1 }

// Span reports the larger unclipped side of the (u, w) rectangle — the
// paper's diamond width r.
func (d Diamond) Span() int { return maxInt(d.RU, d.RW) }

// String describes the diamond.
func (d Diamond) String() string {
	return fmt.Sprintf("D(u=[%d,%d) w=[%d,%d))", d.U0, d.U0+d.RU, d.W0, d.W0+d.RW)
}

// Contains reports whether p is a lattice point of the diamond.
func (d Diamond) Contains(p Point) bool {
	if p.Y != 0 || p.Z != 0 || !d.Clip.Contains(p) {
		return false
	}
	u, w := p.T+p.X, p.T-p.X
	return u >= d.U0 && u < d.U0+d.RU && w >= d.W0 && w < d.W0+d.RW
}

// tRange returns the inclusive range of t values the diamond can contain,
// combining the (u, w) rectangle with the clip.
func (d Diamond) tRange() (tmin, tmax int) {
	// 2t = u + w in [U0+W0, (U0+RU-1)+(W0+RW-1)].
	tmin = ceilDiv(d.U0+d.W0, 2)
	tmax = floorDiv(d.U0+d.RU-1+d.W0+d.RW-1, 2)
	tmin = maxInt(tmin, d.Clip.T0)
	tmax = minInt(tmax, d.Clip.T1-1)
	return tmin, tmax
}

// uRangeAt returns the half-open range [ulo, uhi) of u values present at
// time step t, combining the rectangle with the clip's x bounds.
func (d Diamond) uRangeAt(t int) (ulo, uhi int) {
	// u in [U0, U0+RU) and w = 2t-u in [W0, W0+RW)
	//   =>  u in [2t-W0-RW+1, 2t-W0].
	ulo = maxInt(d.U0, 2*t-d.W0-d.RW+1)
	uhi = minInt(d.U0+d.RU, 2*t-d.W0+1)
	// x = u - t in [X0, X1)  =>  u in [t+X0, t+X1).
	ulo = maxInt(ulo, t+d.Clip.X0)
	uhi = minInt(uhi, t+d.Clip.X1)
	return ulo, uhi
}

// Size reports the exact number of lattice points, in O(RU + RW + T) time.
func (d Diamond) Size() int {
	if d.Clip.Y0 > 0 || d.Clip.Y1 <= 0 || d.RU <= 0 || d.RW <= 0 {
		return 0
	}
	n := 0
	tmin, tmax := d.tRange()
	for t := tmin; t <= tmax; t++ {
		ulo, uhi := d.uRangeAt(t)
		if uhi > ulo {
			n += uhi - ulo
		}
	}
	return n
}

// Points enumerates lattice points in ascending (T, X) order.
func (d Diamond) Points(yield func(Point) bool) {
	if d.Clip.Y0 > 0 || d.Clip.Y1 <= 0 || d.RU <= 0 || d.RW <= 0 {
		return
	}
	tmin, tmax := d.tRange()
	for t := tmin; t <= tmax; t++ {
		ulo, uhi := d.uRangeAt(t)
		for u := ulo; u < uhi; u++ {
			if !yield(Point{X: u - t, Y: 0, T: t}) {
				return
			}
		}
	}
}

// Children returns the paper's topological partition of D(r) into four
// diamonds of width about r/2 (Section 4.1), ordered
// (low-u low-w, low-u high-w, high-u low-w, high-u high-w).
// Dag arcs never decrease u or w, so every dependency of a child lies in an
// earlier child or outside the parent — exactly Definition 4. Children with
// no lattice points are omitted; nil is returned when the rectangle cannot
// be split (both sides < 2).
func (d Diamond) Children() []Domain {
	if d.RU < 2 && d.RW < 2 {
		return nil
	}
	// Split each side at its midpoint; a side of length < 2 stays whole.
	uSplits := splitRange(d.U0, d.RU)
	wSplits := splitRange(d.W0, d.RW)
	out := make([]Domain, 0, 4)
	for _, us := range uSplits {
		for _, ws := range wSplits {
			c := Diamond{U0: us.lo, W0: ws.lo, RU: us.n, RW: ws.n, Clip: d.Clip}
			if c.Size() > 0 {
				out = append(out, c)
			}
		}
	}
	return out
}

type span struct{ lo, n int }

// splitRange halves [lo, lo+n) into its low and high parts, returning the
// whole range when n < 2.
func splitRange(lo, n int) []span {
	if n < 2 {
		return []span{{lo, n}}
	}
	h := n / 2
	return []span{{lo, h}, {lo + h, n - h}}
}
