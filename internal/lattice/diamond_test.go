package lattice

import (
	"math"
	"testing"
	"testing/quick"
)

// preds1D returns the dag predecessors of a d = 1 vertex (Definition 3):
// (x+δ, t-1) for δ in {-1, 0, +1}, unrestricted by machine bounds (the
// domain clip handles those).
func preds1D(p Point) []Point {
	if p.T == 0 {
		return nil
	}
	return []Point{
		{X: p.X - 1, T: p.T - 1},
		{X: p.X, T: p.T - 1},
		{X: p.X + 1, T: p.T - 1},
	}
}

// collect returns all points of a domain.
func collect(d Domain) []Point {
	var pts []Point
	d.Points(func(p Point) bool {
		pts = append(pts, p)
		return true
	})
	return pts
}

func TestDiamondSizeMatchesEnumeration(t *testing.T) {
	clip := ClipAll1D(8, 8)
	for _, d := range []Diamond{
		NewDiamond(0, -7, 15, clip),
		NewDiamond(3, -2, 5, clip),
		NewDiamond(2, 0, 1, clip),
		NewDiamond(0, 0, 0, clip),
		{U0: 1, W0: -3, RU: 4, RW: 7, Clip: clip},
	} {
		pts := collect(d)
		if len(pts) != d.Size() {
			t.Errorf("%v: Size() = %d but enumerated %d", d, d.Size(), len(pts))
		}
		for _, p := range pts {
			if !d.Contains(p) {
				t.Errorf("%v: enumerated point %v not Contains", d, p)
			}
		}
	}
}

func TestDiamondSizeBruteForce(t *testing.T) {
	clip := ClipAll1D(10, 10)
	d := Diamond{U0: 2, W0: -5, RU: 9, RW: 6, Clip: clip}
	want := 0
	for x := 0; x < 10; x++ {
		for tt := 0; tt < 10; tt++ {
			if d.Contains(Point{X: x, T: tt}) {
				want++
			}
		}
	}
	if got := d.Size(); got != want {
		t.Fatalf("Size() = %d, brute force = %d", got, want)
	}
}

func TestDiamondPointsAreTopologicallyOrdered(t *testing.T) {
	d := DiamondAround(6, 6)
	pts := collect(d)
	for i := 1; i < len(pts); i++ {
		if !pts[i-1].Less(pts[i]) {
			t.Fatalf("points out of order at %d: %v then %v", i, pts[i-1], pts[i])
		}
	}
}

func TestDiamondAroundCoversV(t *testing.T) {
	for _, nt := range [][2]int{{4, 4}, {5, 7}, {1, 3}, {8, 1}} {
		n, T := nt[0], nt[1]
		d := DiamondAround(n, T)
		if got, want := d.Size(), n*T; got != want {
			t.Errorf("DiamondAround(%d,%d).Size() = %d, want %d", n, T, got, want)
		}
		// Every machine vertex is contained.
		for x := 0; x < n; x++ {
			for tt := 0; tt < T; tt++ {
				if !d.Contains(Point{X: x, T: tt}) {
					t.Errorf("DiamondAround(%d,%d) misses (%d,%d)", n, T, x, tt)
				}
			}
		}
	}
}

// checkPartition verifies children are an exact, topologically ordered
// partition of the parent.
func checkPartition(t *testing.T, parent Domain, children []Domain, preds func(Point) []Point) {
	t.Helper()
	seen := make(map[Point]int) // point -> child index
	total := 0
	for i, c := range children {
		c.Points(func(p Point) bool {
			if !parent.Contains(p) {
				t.Fatalf("child %d point %v outside parent %v", i, p, parent)
			}
			if j, dup := seen[p]; dup {
				t.Fatalf("point %v in both child %d and %d", p, j, i)
			}
			seen[p] = i
			total++
			return true
		})
	}
	if total != parent.Size() {
		t.Fatalf("children cover %d points, parent has %d", total, parent.Size())
	}
	// Topological: a predecessor inside the parent must be in the same or
	// an earlier child (Definition 4).
	for p, i := range seen {
		for _, q := range preds(p) {
			if j, in := seen[q]; in && j > i {
				t.Fatalf("dependency violation: %v (child %d) depends on %v (child %d)", p, i, q, j)
			}
		}
	}
}

func TestDiamondChildrenPartition(t *testing.T) {
	clip := ClipAll1D(16, 16)
	for _, d := range []Diamond{
		NewDiamond(4, -4, 8, clip),
		NewDiamond(0, -15, 31, clip),
		NewDiamond(3, -3, 7, clip), // odd width
		{U0: 1, W0: -5, RU: 6, RW: 9, Clip: clip},
	} {
		if d.Size() == 0 {
			t.Fatalf("test domain %v empty", d)
		}
		checkPartition(t, d, d.Children(), preds1D)
	}
}

func TestDiamondChildrenSizeBound(t *testing.T) {
	// For an unclipped even square diamond, each child has exactly 1/4 of
	// the parent's points (the paper's δ = 1/4 separator).
	d := NewDiamond(0, 0, 64, UnboundedClip())
	kids := d.Children()
	if len(kids) != 4 {
		t.Fatalf("got %d children, want 4", len(kids))
	}
	for _, k := range kids {
		if got, want := k.Size(), d.Size()/4; got != want {
			t.Errorf("child %v size %d, want %d", k, got, want)
		}
	}
}

func TestDiamondAtomic(t *testing.T) {
	d := NewDiamond(0, 0, 1, UnboundedClip())
	if d.Children() != nil {
		t.Fatalf("width-1 diamond should be atomic, got %v", d.Children())
	}
	if d.Size() != 1 {
		// [0,1)x[0,1): only u=w=0, parity ok: point (0,0).
		t.Fatalf("width-1 diamond size %d, want 1", d.Size())
	}
}

func TestDiamondRecursiveDecompositionExact(t *testing.T) {
	// Fully recurse and check the leaf order is a topological order of the
	// whole domain with exact coverage.
	d := DiamondAround(12, 12)
	var leaves []Point
	var rec func(dom Domain)
	rec = func(dom Domain) {
		kids := dom.Children()
		if kids == nil {
			dom.Points(func(p Point) bool {
				leaves = append(leaves, p)
				return true
			})
			return
		}
		for _, k := range kids {
			rec(k)
		}
	}
	rec(d)
	if len(leaves) != d.Size() {
		t.Fatalf("recursion yields %d points, want %d", len(leaves), d.Size())
	}
	pos := make(map[Point]int, len(leaves))
	for i, p := range leaves {
		if _, dup := pos[p]; dup {
			t.Fatalf("duplicate leaf %v", p)
		}
		pos[p] = i
	}
	for p, i := range pos {
		for _, q := range preds1D(p) {
			if j, in := pos[q]; in && j > i {
				t.Fatalf("leaf order violates dependency: %v at %d needs %v at %d", p, i, q, j)
			}
		}
	}
}

// Preboundary of an unclipped D(r) is at most ~2r (paper: Γin(D(r)) <= 2r).
func TestDiamondPreboundarySize(t *testing.T) {
	for _, r := range []int{8, 16, 32, 64} {
		d := NewDiamond(0, 0, r, UnboundedClip())
		bound := make(map[Point]bool)
		d.Points(func(p Point) bool {
			for _, q := range preds1D(p) {
				if !d.Contains(q) {
					bound[q] = true
				}
			}
			return true
		})
		if got, max := len(bound), 2*r+2; got > max {
			t.Errorf("r=%d: preboundary %d exceeds 2r+2 = %d", r, got, max)
		}
		if got, min := len(bound), r; got < min {
			t.Errorf("r=%d: preboundary %d suspiciously small (< r)", r, got)
		}
	}
}

func TestFigureOnePartition(t *testing.T) {
	for _, n := range []int{4, 8, 9, 16} {
		pieces := FigureOnePartition(n)
		if len(pieces) != 5 {
			t.Errorf("n=%d: got %d pieces, want 5", n, len(pieces))
		}
		parent := DiamondAround(n, n)
		doms := make([]Domain, len(pieces))
		for i, p := range pieces {
			doms[i] = p
		}
		checkPartition(t, parent, doms, preds1D)
		// The central piece is the full diamond D(n): measure ~ n²/2.
		central := pieces[2]
		ratio := float64(central.Size()) / (float64(n) * float64(n) / 2)
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("n=%d: central diamond size %d, want ~n²/2 = %g (ratio %g)",
				n, central.Size(), float64(n*n)/2, ratio)
		}
	}
}

func TestDiamondGridCoversV(t *testing.T) {
	for _, tc := range [][3]int{{8, 8, 2}, {8, 8, 3}, {10, 6, 4}, {5, 5, 1}} {
		n, T, s := tc[0], tc[1], tc[2]
		cells := DiamondGrid(n, T, s)
		seen := make(map[Point]bool)
		total := 0
		for _, c := range cells {
			c.D.Points(func(p Point) bool {
				if seen[p] {
					t.Fatalf("n=%d T=%d s=%d: duplicate point %v", n, T, s, p)
				}
				seen[p] = true
				total++
				return true
			})
		}
		if total != n*T {
			t.Errorf("n=%d T=%d s=%d: grid covers %d points, want %d", n, T, s, total, n*T)
		}
	}
}

func TestZigZagBandsCoverAllCells(t *testing.T) {
	n, p, s := 16, 4, 4
	bands := ZigZagBands(n, p, s)
	if len(bands) != p {
		t.Fatalf("got %d bands, want %d", len(bands), p)
	}
	total := 0
	for k, b := range bands {
		for i, c := range b {
			total += c.D.Size()
			if i > 0 && c.CenterT() < b[i-1].CenterT() {
				t.Errorf("band %d not time-ordered at cell %d", k, i)
			}
		}
	}
	if total != n*n {
		t.Errorf("bands cover %d points, want %d", total, n*n)
	}
}

// Property: Contains agrees with membership in the enumerated point set.
func TestPropertyDiamondContainsMatchesPoints(t *testing.T) {
	f := func(u0, w0 int8, r uint8) bool {
		d := Diamond{
			U0: int(u0), W0: int(w0), RU: int(r % 16), RW: int(r%16) + 1,
			Clip: UnboundedClip(),
		}
		set := make(map[Point]bool)
		d.Points(func(p Point) bool { set[p] = true; return true })
		if len(set) != d.Size() {
			return false
		}
		// Probe the bounding region around the rectangle.
		for x := -20; x <= 40; x += 3 {
			for tt := -20; tt <= 40; tt += 3 {
				p := Point{X: x, T: tt}
				if d.Contains(p) != set[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the measure of an unclipped D(r) tends to r²/2.
func TestDiamondMeasureScaling(t *testing.T) {
	for _, r := range []int{16, 64, 256} {
		d := NewDiamond(0, 0, r, UnboundedClip())
		got := float64(d.Size())
		want := float64(r) * float64(r) / 2
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("r=%d: |D| = %g, want ~%g", r, got, want)
		}
	}
}
