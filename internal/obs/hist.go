package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket, lock-free histogram in the Prometheus
// cumulative-bucket style: observations are counted into the first
// bucket whose upper bound is >= the value, with an implicit +Inf
// bucket. Observe is safe for concurrent use (one atomic add plus a CAS
// loop for the sum), so the serving layer's hot path records latencies
// without a lock.
type Histogram struct {
	bounds  []float64      // ascending upper bounds, exclusive of +Inf
	counts  []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. Unsorted input is sorted; duplicate bounds are allowed but
// pointless. An empty bound list yields a single +Inf bucket.
func NewHistogram(bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records v. NaN observations are dropped (they would poison
// the sum and match no bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a consistent-enough point-in-time view of a
// Histogram: per-bucket counts (non-cumulative, +Inf last), total count
// and sum. It marshals to JSON for the expvar /metrics surface.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; the final bucket is +Inf and
	// carries no bound here.
	Bounds []float64 `json:"bounds"`
	// Counts are per-bucket observation counts, len(Bounds)+1.
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution from the bucket counts, interpolating linearly within
// the winning bucket — the same estimator Prometheus's
// histogram_quantile applies server-side, so the _quantile gauges on
// /metrics.prom agree with dashboard-side computation on the raw
// buckets. Conventions, matching Prometheus:
//
//   - the target rank is q·Count, resolved to the first bucket whose
//     cumulative count reaches it;
//   - the winning bucket's lower edge is the previous bound (0 for the
//     first bucket), its upper edge its own bound;
//   - ranks landing in the +Inf bucket return the highest finite bound
//     (the distribution's tail is unbounded, so the last finite edge is
//     the only defensible point estimate);
//   - an empty histogram, a histogram with no finite bounds, or a q
//     outside [0, 1] returns NaN.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, b := range s.Bounds {
		prev := cum
		cum += s.Counts[i]
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			if s.Counts[i] == 0 {
				return b
			}
			frac := (rank - float64(prev)) / float64(s.Counts[i])
			if frac < 0 {
				frac = 0
			}
			return lower + (b-lower)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot reads the current bucket counts and sum. Buckets are read
// without a global lock, so a snapshot taken during a burst may be off
// by in-flight observations — fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
