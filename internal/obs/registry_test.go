package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(8)
	var verts atomic.Int64
	h := r.Begin("run-1", "run", "multi", map[string]int{"n": 64})
	h.SetSamplers(func() (int64, int64) { return verts.Load(), 2 }, func() string { return "phase:regime1" })

	if got := h.Snapshot(false); got.State != RunQueued || got.ID != "run-1" {
		t.Fatalf("queued snapshot = %+v", got)
	}
	if h.Terminal() {
		t.Fatal("queued handle reports terminal")
	}
	h.Running()
	verts.Store(100)
	snap := h.Snapshot(false)
	if snap.State != RunRunning || snap.Vertices != 100 || snap.Span != "phase:regime1" {
		t.Fatalf("running snapshot = %+v", snap)
	}
	if live, completed := r.Len(); live != 1 || completed != 0 {
		t.Fatalf("Len = (%d, %d), want (1, 0)", live, completed)
	}
	ac := r.ActiveCounts()
	if len(ac) != 1 || ac[0] != (ActiveCount{State: RunRunning, Scheme: "multi", Count: 1}) {
		t.Fatalf("ActiveCounts = %+v", ac)
	}

	h.Finish(RunDone, func(info *RunInfo) {
		info.Time = 42
		info.PhaseTimes = []PhaseSummary{{Name: "regime1", VTime: 42, WallMS: 3}}
	})
	select {
	case <-h.Done():
	default:
		t.Fatal("Done not closed after Finish")
	}
	fin := h.Snapshot(true)
	if fin.State != RunDone || fin.Time != 42 || fin.Vertices != 100 || fin.Span != "" {
		t.Fatalf("terminal snapshot = %+v", fin)
	}
	if live, completed := r.Len(); live != 0 || completed != 1 {
		t.Fatalf("Len after finish = (%d, %d), want (0, 1)", live, completed)
	}
	if got := r.Get("run-1"); got != h {
		t.Fatal("Get lost the retired record")
	}
	if cc := r.CompletedCounts(); cc[RunDone] != 1 {
		t.Fatalf("CompletedCounts = %+v", cc)
	}
	hists := r.PhaseHists()
	if s, ok := hists["regime1"]; !ok || s.Count != 1 {
		t.Fatalf("phase histogram missing regime1: %+v", hists)
	}

	// Finish is idempotent: a second call must not double-count or
	// re-close Done.
	h.Finish(RunFailed, nil)
	if cc := r.CompletedCounts(); cc[RunDone] != 1 || cc[RunFailed] != 0 {
		t.Fatalf("double Finish changed counters: %+v", cc)
	}
}

func TestRegistryEvictionOrder(t *testing.T) {
	r := NewRegistry(4)
	// An in-flight run admitted first must survive arbitrarily many
	// completions: only the ring evicts, and only completed records live
	// there.
	inflight := r.Begin("live-0", "run", "multi", nil)
	inflight.Running()

	for i := 1; i <= 10; i++ {
		h := r.Begin(fmt.Sprintf("run-%d", i), "run", "multi", nil)
		h.Running()
		h.Finish(RunDone, nil)
	}

	if got := r.Get("live-0"); got != inflight {
		t.Fatal("in-flight run evicted by completed churn")
	}
	// Oldest-completed-first eviction: with capacity 4 and completions
	// 1..10 in order, exactly 7..10 remain.
	for i := 1; i <= 6; i++ {
		if r.Get(fmt.Sprintf("run-%d", i)) != nil {
			t.Errorf("run-%d still retained, want evicted", i)
		}
	}
	for i := 7; i <= 10; i++ {
		if r.Get(fmt.Sprintf("run-%d", i)) == nil {
			t.Errorf("run-%d evicted, want retained", i)
		}
	}

	// List: live first (newest admission first), then completed in
	// reverse completion order.
	list := r.List()
	wantIDs := []string{"live-0", "run-10", "run-9", "run-8", "run-7"}
	if len(list) != len(wantIDs) {
		t.Fatalf("List has %d entries, want %d", len(list), len(wantIDs))
	}
	for i, want := range wantIDs {
		if got := list[i].ID(); got != want {
			t.Errorf("List[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestRegistryTerminalStateClassification(t *testing.T) {
	r := NewRegistry(8)
	for i, tc := range []struct {
		state string
		want  string
	}{
		{RunDone, RunDone},
		{RunCancelled, RunCancelled},
		{RunShed, RunShed},
		{RunFailed, RunFailed},
		{RunRunning, RunFailed}, // non-terminal states coerce to failed
	} {
		h := r.Begin(fmt.Sprintf("r%d", i), "run", "multi", nil)
		h.Finish(tc.state, nil)
		if got := h.Snapshot(false).State; got != tc.want {
			t.Errorf("Finish(%q) => state %q, want %q", tc.state, got, tc.want)
		}
	}
	cc := r.CompletedCounts()
	if cc[RunDone] != 1 || cc[RunCancelled] != 1 || cc[RunShed] != 1 || cc[RunFailed] != 2 {
		t.Fatalf("CompletedCounts = %+v", cc)
	}
	// A run shed before execution reports only queue latency.
	shed := r.Get("r2").Snapshot(false)
	if shed.WallMS != 0 || shed.QueueMS < 0 {
		t.Errorf("shed record timing = %+v", shed)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	h := r.Begin("x", "run", "multi", nil)
	if h != nil {
		t.Fatal("nil registry returned a handle")
	}
	h.SetSamplers(nil, nil)
	h.Running()
	h.Finish(RunDone, nil)
	h.AddCacheHit()
	if h.ID() != "" || !h.Terminal() {
		t.Fatal("nil handle identity")
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("nil handle Done must be closed")
	}
	if got := h.Snapshot(true); got.ID != "" {
		t.Fatalf("nil snapshot = %+v", got)
	}
	if r.Get("x") != nil || r.List() != nil || r.ActiveCounts() != nil ||
		r.CompletedCounts() != nil || r.PhaseHists() != nil {
		t.Fatal("nil registry queries must return zero values")
	}
	if live, completed := r.Len(); live != 0 || completed != 0 {
		t.Fatal("nil registry Len")
	}
}

// TestRegistryChurn hammers the registry from concurrent producers
// (start/finish against a tiny ring, forcing constant eviction) and
// consumers (listings, gauge aggregation, snapshots, point lookups).
// Run under -race this flushes ordering bugs between the handle lock,
// the registry lock, and the lock-free ring.
func TestRegistryChurn(t *testing.T) {
	r := NewRegistry(4)
	const producers = 4
	const runsEach = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var v atomic.Int64
			for i := 0; i < runsEach; i++ {
				id := fmt.Sprintf("g%d-%d", g, i)
				h := r.Begin(id, "run", "multi", nil)
				h.SetSamplers(func() (int64, int64) { return v.Add(1), 0 }, nil)
				h.Running()
				h.AddCacheHit()
				state := RunDone
				if i%3 == 1 {
					state = RunCancelled
				}
				h.Finish(state, func(info *RunInfo) {
					info.PhaseTimes = []PhaseSummary{{Name: "churn", VTime: 1, WallMS: 0.01}}
				})
				if !h.Terminal() {
					t.Error("finished handle not terminal")
					return
				}
			}
		}(g)
	}

	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, h := range r.List() {
					snap := h.Snapshot(false)
					if snap.ID == "" {
						t.Error("listed handle with empty ID")
						return
					}
					r.Get(snap.ID)
				}
				r.ActiveCounts()
				r.CompletedCounts()
				r.PhaseHists()
				r.Len()
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	cc := r.CompletedCounts()
	var total uint64
	for _, n := range cc {
		total += n
	}
	if want := uint64(producers * runsEach); total != want {
		t.Fatalf("terminal counter total = %d, want %d", total, want)
	}
	if live, completed := r.Len(); live != 0 || completed != 4 {
		t.Fatalf("Len after churn = (%d, %d), want (0, 4)", live, completed)
	}
	if s := r.PhaseHists()["churn"]; s.Count != int64(producers*runsEach) {
		t.Fatalf("phase histogram count = %d", s.Count)
	}
}

// TestRegistrySubscriberAtTerminal exercises the watcher pattern the SSE
// endpoint uses: block on Done, then snapshot — joining after the
// terminal transition must not hang.
func TestRegistrySubscriberAtTerminal(t *testing.T) {
	r := NewRegistry(8)
	h := r.Begin("w", "run", "multi", nil)
	go func() {
		h.Running()
		h.Finish(RunDone, nil)
	}()
	select {
	case <-h.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done never closed")
	}
	if s := h.Snapshot(false); s.State != RunDone {
		t.Fatalf("state after Done = %q", s.State)
	}
	// A second subscriber joining strictly after the terminal state sees
	// the closed channel immediately.
	select {
	case <-r.Get("w").Done():
	default:
		t.Fatal("late subscriber blocked on Done")
	}
}
