package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the run registry and flight recorder: per-run lifecycle
// records for the serving layer. A record is created when a run is
// admitted (queued), transitions to running when a worker picks it up,
// and lands in one of four terminal states. Live records sit in a
// mutex-guarded map keyed by run ID; terminal records move to a bounded
// lock-free ring (the flight recorder), where the oldest completed
// record is overwritten first — an in-flight run can never be evicted
// because it is not in the ring yet.
//
// The registry follows the package's read-only sampling discipline:
// progress and phase labels are *sampled* from the run's Progress
// atomics and Tracer span stack through caller-supplied closures, never
// charged to a cost meter, so a registered run's virtual times are
// bit-identical to an unregistered one.

// Run lifecycle states. Queued and Running are the live states; the
// rest are terminal.
const (
	RunQueued    = "queued"
	RunRunning   = "running"
	RunDone      = "done"
	RunCancelled = "cancelled"
	RunFailed    = "failed"
	RunShed      = "shed"
)

// TerminalRunState reports whether s is a terminal lifecycle state.
func TerminalRunState(s string) bool {
	return s != RunQueued && s != RunRunning
}

// PhaseSummary is one entry of a terminal record's per-phase makespan
// attribution: the phase's virtual-time share and, when span tracing
// captured it, its wall duration.
type PhaseSummary struct {
	Name   string  `json:"name"`
	VTime  float64 `json:"vtime"`
	WallMS float64 `json:"wall_ms,omitempty"`
}

// RunInfo is the serializable snapshot of one run record — the payload
// of the introspection endpoints.
type RunInfo struct {
	ID     string `json:"id"`
	Source string `json:"source"` // "run" or "sweep"
	State  string `json:"state"`
	Scheme string `json:"scheme"`
	// Params carries the run's canonical request tuple as the serving
	// layer defined it; the registry treats it as opaque.
	Params  any       `json:"params,omitempty"`
	Created time.Time `json:"created"`
	// QueueMS is admission-to-execution latency; WallMS execution wall
	// time (live records report elapsed-so-far).
	QueueMS float64 `json:"queue_ms"`
	WallMS  float64 `json:"wall_ms"`

	// Vertices/Phases are the progress counters sampled from the run's
	// Progress meter; Span labels the innermost open span of a live run.
	Vertices int64  `json:"vertices"`
	Phases   int64  `json:"phases"`
	Span     string `json:"span,omitempty"`

	// CacheHits counts how many later requests were answered from this
	// record's cached result.
	CacheHits int64 `json:"cache_hits,omitempty"`

	// Terminal-state accounting: virtual times, per-phase attribution,
	// the cost-category ledger, and the failure message if any.
	Time       float64            `json:"time,omitempty"`
	PrepTime   float64            `json:"prep_time,omitempty"`
	PhaseTimes []PhaseSummary     `json:"phase_times,omitempty"`
	Ledger     map[string]float64 `json:"ledger,omitempty"`
	Error      string             `json:"error,omitempty"`

	// Trace is the run's span timeline; populated only on full-record
	// snapshots (Snapshot with includeTrace), never in listings.
	Trace []*Span `json:"trace,omitempty"`
}

// RunHandle is the live, mutable side of one run record. The serving
// layer holds it across the run's execution; readers snapshot it. All
// methods are no-ops (or zero values) on a nil handle, so call sites
// need no registry-enabled branches.
type RunHandle struct {
	reg *Registry

	// sample/current read the run's Progress atomics and Tracer span
	// stack; both are optional and must be safe for concurrent use.
	sample  func() (vertices, phases int64)
	current func() string

	done chan struct{} // closed at the terminal transition

	mu       sync.Mutex
	info     RunInfo
	started  time.Time // wall clock of the Running transition
	beginSeq uint64    // admission order, for newest-first listings
	doneSeq  uint64    // completion order, for ring ordering
}

// Registry tracks live runs and retains a bounded ring of completed
// records. The zero number of retained records is ring capacity; live
// runs are unbounded (they are bounded by the serving layer's pool).
type Registry struct {
	mu   sync.Mutex
	live map[string]*RunHandle
	seq  atomic.Uint64

	// ring is the flight recorder: completion-ordered slots, overwritten
	// oldest-first once full. Slot stores are atomic so listings read
	// without the registry lock.
	ring []atomic.Pointer[RunHandle]
	head atomic.Uint64

	// Lifetime terminal-state counters.
	doneRuns, cancelledRuns, failedRuns, shedRuns atomic.Uint64

	// phaseHists aggregates wall durations of completed schedule phases
	// across runs, keyed by phase name.
	histMu     sync.Mutex
	phaseHists map[string]*Histogram
}

// DefaultRegistryCapacity is the flight-recorder ring size when the
// caller passes a non-positive capacity.
const DefaultRegistryCapacity = 256

// NewRegistry builds a registry retaining up to capacity completed
// records (capacity < 1 selects DefaultRegistryCapacity).
func NewRegistry(capacity int) *Registry {
	if capacity < 1 {
		capacity = DefaultRegistryCapacity
	}
	return &Registry{
		live:       make(map[string]*RunHandle),
		ring:       make([]atomic.Pointer[RunHandle], capacity),
		phaseHists: make(map[string]*Histogram),
	}
}

// Begin admits a run: a record in state queued, registered live. The
// sampler and current-span closures may be nil; set them later with
// SetSamplers once the run's Progress/Tracer exist. Nil registry
// returns a nil handle.
func (r *Registry) Begin(id, source, scheme string, params any) *RunHandle {
	if r == nil {
		return nil
	}
	h := &RunHandle{
		reg:  r,
		done: make(chan struct{}),
		info: RunInfo{
			ID: id, Source: source, State: RunQueued, Scheme: scheme,
			Params: params, Created: time.Now(),
		},
		beginSeq: r.seq.Add(1),
	}
	r.mu.Lock()
	r.live[id] = h
	r.mu.Unlock()
	return h
}

// SetSamplers attaches the read-only progress and current-span probes.
func (h *RunHandle) SetSamplers(sample func() (vertices, phases int64), current func() string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.sample = sample
	h.current = current
	h.mu.Unlock()
}

// Running marks the queued→running transition and fixes the record's
// queue latency.
func (h *RunHandle) Running() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.info.State == RunQueued {
		h.info.State = RunRunning
		h.started = time.Now()
		h.info.QueueMS = float64(h.started.Sub(h.info.Created).Nanoseconds()) / 1e6
	}
	h.mu.Unlock()
}

// Finish moves the record to terminal state, applies fill (which may
// populate times, phases, ledger, error, and trace under the record
// lock), samples the final progress counters, retires the record to the
// flight-recorder ring, and closes Done. Repeated Finish calls are
// no-ops; a non-terminal state is coerced to RunFailed.
func (h *RunHandle) Finish(state string, fill func(*RunInfo)) {
	if h == nil {
		return
	}
	if !TerminalRunState(state) {
		state = RunFailed
	}
	h.mu.Lock()
	if TerminalRunState(h.info.State) {
		h.mu.Unlock()
		return
	}
	now := time.Now()
	if h.started.IsZero() {
		// Never ran (shed, or cancelled while queued): the whole lifetime
		// was queue wait.
		h.info.QueueMS = float64(now.Sub(h.info.Created).Nanoseconds()) / 1e6
	} else {
		h.info.WallMS = float64(now.Sub(h.started).Nanoseconds()) / 1e6
	}
	h.info.State = state
	if h.sample != nil {
		h.info.Vertices, h.info.Phases = h.sample()
	}
	h.info.Span = ""
	if fill != nil {
		fill(&h.info)
	}
	phases := h.info.PhaseTimes
	id := h.info.ID
	reg := h.reg
	h.mu.Unlock()

	// Retire: out of the live map first, then into the ring. The handle
	// lock is released before the registry lock is taken (ActiveCounts
	// and List acquire them in the opposite order), so between delete and
	// ring store the record is briefly invisible to Get/List — callers
	// that hold the handle (the SSE watcher) are unaffected, and the
	// serving layer only hands out IDs after Finish returns.
	reg.mu.Lock()
	delete(reg.live, id)
	reg.mu.Unlock()
	seq := reg.head.Add(1)
	h.doneSeq = seq // published by the atomic ring store below
	reg.ring[(seq-1)%uint64(len(reg.ring))].Store(h)
	close(h.done)

	switch state {
	case RunDone:
		reg.doneRuns.Add(1)
	case RunCancelled:
		reg.cancelledRuns.Add(1)
	case RunShed:
		reg.shedRuns.Add(1)
	default:
		reg.failedRuns.Add(1)
	}
	reg.observePhases(phases)
}

// observePhases feeds completed phase wall durations into the per-phase
// histograms backing bsmpd_run_phase_seconds.
func (r *Registry) observePhases(phases []PhaseSummary) {
	r.histMu.Lock()
	defer r.histMu.Unlock()
	for _, ph := range phases {
		if ph.WallMS <= 0 {
			continue
		}
		hist := r.phaseHists[ph.Name]
		if hist == nil {
			hist = NewHistogram(0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30)
			r.phaseHists[ph.Name] = hist
		}
		hist.Observe(ph.WallMS / 1e3)
	}
}

// AddCacheHit attributes one cache-served response to this record.
func (h *RunHandle) AddCacheHit() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.info.CacheHits++
	h.mu.Unlock()
}

// ID returns the run ID ("" on nil).
func (h *RunHandle) ID() string {
	if h == nil {
		return ""
	}
	return h.info.ID
}

// Done returns a channel closed at the terminal transition. Nil handles
// return a closed channel so selects never block on a disabled
// registry.
func (h *RunHandle) Done() <-chan struct{} {
	if h == nil {
		return closedChan
	}
	return h.done
}

var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Terminal reports whether the record has reached a terminal state.
func (h *RunHandle) Terminal() bool {
	if h == nil {
		return true
	}
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

// Snapshot returns a point-in-time copy of the record. Live records get
// freshly sampled progress counters, the innermost open span label, and
// elapsed wall time; the trace tree rides along only when includeTrace
// is set (listings stay small, the full-record endpoint gets it).
func (h *RunHandle) Snapshot(includeTrace bool) RunInfo {
	if h == nil {
		return RunInfo{}
	}
	h.mu.Lock()
	info := h.info
	if !TerminalRunState(info.State) {
		if h.sample != nil {
			info.Vertices, info.Phases = h.sample()
		}
		if h.current != nil {
			info.Span = h.current()
		}
		if !h.started.IsZero() {
			info.WallMS = float64(time.Since(h.started).Nanoseconds()) / 1e6
		}
	}
	if !includeTrace {
		info.Trace = nil
	}
	// PhaseTimes/Ledger are written once at Finish and read-only after;
	// sharing the slices with the caller is safe.
	h.mu.Unlock()
	return info
}

// Get returns the handle for id — live or retained — or nil.
func (r *Registry) Get(id string) *RunHandle {
	if r == nil || id == "" {
		return nil
	}
	r.mu.Lock()
	h := r.live[id]
	r.mu.Unlock()
	if h != nil {
		return h
	}
	for i := range r.ring {
		if h := r.ring[i].Load(); h != nil && h.info.ID == id {
			return h
		}
	}
	return nil
}

// List returns every known handle, newest first: live runs in reverse
// admission order, then retained completed runs in reverse completion
// order.
func (r *Registry) List() []*RunHandle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*RunHandle, 0, len(r.live)+len(r.ring))
	for _, h := range r.live {
		out = append(out, h)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].beginSeq > out[j].beginSeq })
	nLive := len(out)
	for i := range r.ring {
		if h := r.ring[i].Load(); h != nil {
			out = append(out, h)
		}
	}
	completed := out[nLive:]
	// doneSeq is written before the handle is published to the ring and
	// immutable after, so reading it unlocked here is safe.
	sort.Slice(completed, func(i, j int) bool { return completed[i].doneSeq > completed[j].doneSeq })
	return out
}

// ActiveCount is one (state, scheme) cell of the live-run gauge matrix.
type ActiveCount struct {
	State, Scheme string
	Count         int
}

// ActiveCounts aggregates live runs by (state, scheme) for the
// bsmpd_runs_active gauges, in deterministic order.
func (r *Registry) ActiveCounts() []ActiveCount {
	if r == nil {
		return nil
	}
	type key struct{ state, scheme string }
	counts := make(map[key]int)
	r.mu.Lock()
	for _, h := range r.live {
		h.mu.Lock()
		k := key{h.info.State, h.info.Scheme}
		h.mu.Unlock()
		if TerminalRunState(k.state) {
			// Finish marks the record terminal before unlinking it from the
			// live map; skip the sliver in between.
			continue
		}
		counts[k]++
	}
	r.mu.Unlock()
	out := make([]ActiveCount, 0, len(counts))
	for k, n := range counts {
		out = append(out, ActiveCount{State: k.state, Scheme: k.scheme, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].State != out[j].State {
			return out[i].State < out[j].State
		}
		return out[i].Scheme < out[j].Scheme
	})
	return out
}

// CompletedCounts returns the lifetime terminal-state counters.
func (r *Registry) CompletedCounts() map[string]uint64 {
	if r == nil {
		return nil
	}
	return map[string]uint64{
		RunDone:      r.doneRuns.Load(),
		RunCancelled: r.cancelledRuns.Load(),
		RunFailed:    r.failedRuns.Load(),
		RunShed:      r.shedRuns.Load(),
	}
}

// PhaseHists snapshots the per-phase wall-duration histograms, keyed by
// phase name.
func (r *Registry) PhaseHists() map[string]HistSnapshot {
	if r == nil {
		return nil
	}
	r.histMu.Lock()
	defer r.histMu.Unlock()
	out := make(map[string]HistSnapshot, len(r.phaseHists))
	for name, h := range r.phaseHists {
		out[name] = h.Snapshot()
	}
	return out
}

// Len reports the live-run count and the number of retained completed
// records.
func (r *Registry) Len() (live, completed int) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	live = len(r.live)
	r.mu.Unlock()
	if n := r.head.Load(); n < uint64(len(r.ring)) {
		completed = int(n)
	} else {
		completed = len(r.ring)
	}
	return live, completed
}
