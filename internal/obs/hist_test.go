package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bounds are inclusive upper bounds: 0.01 lands in the first bucket.
	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket[%d] = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-102.565) > 1e-9 {
		t.Errorf("sum = %v, want 102.565", s.Sum)
	}
}

func TestHistogramNaNAndNil(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(math.NaN())
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("NaN counted: %+v", s)
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
}

func TestHistogramUnsortedBoundsAndEmpty(t *testing.T) {
	h := NewHistogram(1, 0.1)
	h.Observe(0.5)
	if s := h.Snapshot(); s.Counts[1] != 1 {
		t.Errorf("unsorted bounds not normalized: %+v", s)
	}
	e := NewHistogram()
	e.Observe(42)
	if s := e.Snapshot(); len(s.Counts) != 1 || s.Counts[0] != 1 {
		t.Errorf("empty-bounds histogram: %+v", s)
	}
}

func TestHistogramSnapshotMarshals(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(1.5)
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"bounds", "counts", "count", "sum"} {
		if _, ok := m[k]; !ok {
			t.Errorf("snapshot JSON missing %q: %s", k, b)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(10, 100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
	wantSum := float64(1000 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7))
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}
