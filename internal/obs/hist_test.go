package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bounds are inclusive upper bounds: 0.01 lands in the first bucket.
	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket[%d] = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-102.565) > 1e-9 {
		t.Errorf("sum = %v, want 102.565", s.Sum)
	}
}

func TestHistogramNaNAndNil(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(math.NaN())
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("NaN counted: %+v", s)
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
}

func TestHistogramUnsortedBoundsAndEmpty(t *testing.T) {
	h := NewHistogram(1, 0.1)
	h.Observe(0.5)
	if s := h.Snapshot(); s.Counts[1] != 1 {
		t.Errorf("unsorted bounds not normalized: %+v", s)
	}
	e := NewHistogram()
	e.Observe(42)
	if s := e.Snapshot(); len(s.Counts) != 1 || s.Counts[0] != 1 {
		t.Errorf("empty-bounds histogram: %+v", s)
	}
}

func TestHistogramSnapshotMarshals(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(1.5)
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"bounds", "counts", "count", "sum"} {
		if _, ok := m[k]; !ok {
			t.Errorf("snapshot JSON missing %q: %s", k, b)
		}
	}
}

func TestHistogramQuantilePinned(t *testing.T) {
	// Uniform 1..40 over bounds {10, 20, 30, 40}: ten observations per
	// bucket, so linear interpolation recovers the exact empirical
	// quantiles.
	h := NewHistogram(10, 20, 30, 40)
	for v := 1; v <= 40; v++ {
		h.Observe(float64(v))
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 20},    // rank 20 tops out bucket (10, 20]
		{0.95, 38},   // rank 38: 8/10 into (30, 40]
		{0.99, 39.6}, // rank 39.6: 9.6/10 into (30, 40]
		{0.25, 10},   // rank 10 exactly fills the first bucket
		{1, 40},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %v, want %v", tc.q, got, tc.want)
		}
	}

	// First bucket interpolates from lower edge 0.
	lo := NewHistogram(8)
	for i := 0; i < 4; i++ {
		lo.Observe(1)
	}
	if got := lo.Snapshot().Quantile(0.5); math.Abs(got-4) > 1e-9 {
		t.Errorf("first-bucket Quantile(0.5) = %v, want 4 (half of (0, 8])", got)
	}

	// Ranks landing in the +Inf bucket clamp to the highest finite
	// bound, the Prometheus convention.
	inf := NewHistogram(1)
	inf.Observe(100)
	inf.Observe(200)
	if got := inf.Snapshot().Quantile(0.99); got != 1 {
		t.Errorf("+Inf-bucket Quantile(0.99) = %v, want 1", got)
	}

	// Degenerate inputs answer NaN instead of inventing a value.
	empty := NewHistogram(1, 2)
	if got := empty.Snapshot().Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Quantile(0.5) = %v, want NaN", got)
	}
	if got := s.Quantile(-0.1); !math.IsNaN(got) {
		t.Errorf("Quantile(-0.1) = %v, want NaN", got)
	}
	if got := s.Quantile(1.5); !math.IsNaN(got) {
		t.Errorf("Quantile(1.5) = %v, want NaN", got)
	}
	noBounds := NewHistogram()
	noBounds.Observe(5)
	if got := noBounds.Snapshot().Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("boundless Quantile(0.5) = %v, want NaN", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(10, 100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
	wantSum := float64(1000 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7))
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}
