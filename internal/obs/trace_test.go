package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	a := tr.Start("a")
	a.SetAttr("vtime", 3)
	a.End()
	b := tr.Start("b")
	c := tr.Start("c")
	c.End()
	b.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name != "root" {
		t.Fatalf("roots = %+v, want one root", roots)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != "a" || kids[1].Name != "b" {
		t.Fatalf("children = %+v, want [a b]", kids)
	}
	if got := kids[0].Attrs["vtime"]; got != 3 {
		t.Errorf("a.vtime = %v, want 3", got)
	}
	if len(kids[1].Children) != 1 || kids[1].Children[0].Name != "c" {
		t.Errorf("b children = %+v, want [c]", kids[1].Children)
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4", tr.Len())
	}
	if roots[0].DurNS < 0 {
		t.Errorf("root duration %d < 0", roots[0].DurNS)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatalf("nil tracer Start returned %v", sp)
	}
	sp.SetAttr("k", 1) // must not panic
	sp.End()
	if tr.Roots() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer accessors not zero")
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTracerCap(2)
	a := tr.Start("a")
	b := tr.Start("b")
	dropped := tr.Start("overflow")
	if dropped != nil {
		t.Fatalf("span beyond cap recorded: %+v", dropped)
	}
	// Recording continues against the enclosing open span: attrs and End
	// on the dropped span are no-ops, b stays current.
	dropped.SetAttr("k", 1)
	dropped.End()
	b.End()
	a.End()
	if tr.Len() != 2 || tr.Dropped() != 1 {
		t.Errorf("Len=%d Dropped=%d, want 2, 1", tr.Len(), tr.Dropped())
	}
}

func TestContextAttachment(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("background context carries a tracer")
	}
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext did not round-trip the tracer")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	child := tr.Start("child")
	child.SetAttr("vtime", 1.5)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Span
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("json round-trip: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0].Name != "root" || len(got[0].Children) != 1 {
		t.Fatalf("decoded %+v, want root with one child", got)
	}
	if got[0].Children[0].Attrs["vtime"] != 1.5 {
		t.Errorf("child vtime = %v, want 1.5", got[0].Children[0].Attrs["vtime"])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	tr.Start("child").End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("%d events, want 2", len(events))
	}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Errorf("event ph = %v, want X", e["ph"])
		}
		if _, ok := e["ts"].(float64); !ok {
			t.Errorf("event ts missing: %v", e)
		}
	}
	// An empty tracer still writes a valid (empty) array.
	buf.Reset()
	if err := NewTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Errorf("empty trace = %q, want []", buf.String())
	}
}

// Sharing a tracer across goroutines garbles nesting by design, but must
// stay memory-safe (the -race CI job runs this).
func TestTracerConcurrentSafety(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start("s")
				sp.SetAttr("i", float64(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("Len = %d, want 800", tr.Len())
	}
}

func TestTracerCurrent(t *testing.T) {
	var nilT *Tracer
	if got := nilT.Current(); got != "" {
		t.Errorf("nil Current() = %q", got)
	}
	tr := NewTracer()
	if got := tr.Current(); got != "" {
		t.Errorf("empty Current() = %q", got)
	}
	outer := tr.Start("scheme:multi")
	inner := tr.Start("phase:regime1")
	if got := tr.Current(); got != "phase:regime1" {
		t.Errorf("Current() = %q, want phase:regime1", got)
	}
	inner.End()
	if got := tr.Current(); got != "scheme:multi" {
		t.Errorf("Current() after inner End = %q, want scheme:multi", got)
	}
	outer.End()
	if got := tr.Current(); got != "" {
		t.Errorf("Current() after all End = %q, want empty", got)
	}
}
