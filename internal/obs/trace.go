// Package obs is the zero-dependency observability substrate: per-run
// span tracing for the simulation engines and fixed-bucket histograms
// for the serving layer.
//
// The tracing side mirrors the cost package's discipline: recording a
// span never touches a cost.Meter or a clock, so attaching a Tracer to a
// run cannot perturb virtual times — spans carry wall time plus
// virtual-time deltas *sampled* (read-only) from the meters at span
// boundaries. The nil *Tracer is a first-class value: every method is a
// no-op on nil, so the engines call the tracing hooks unconditionally
// and an untraced run pays only a nil check per recursion/phase
// boundary.
//
// A Tracer records one goroutine's span stack. Concurrent runs must use
// one Tracer each (the serving layer allocates per request); sharing a
// Tracer across goroutines is memory-safe but garbles parent/child
// nesting.
package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one recorded interval of a traced run. Exported fields are the
// serialization surface of the /v1/run?trace=1 timeline and -trace
// files.
type Span struct {
	// Name is the span taxonomy label, e.g. "scheme:multi", "calibrate",
	// "schedule", "phase:regime1", "block", "replay".
	Name string `json:"name"`
	// StartNS/DurNS are wall-clock nanoseconds relative to the tracer's
	// epoch (its construction time).
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Attrs carries numeric annotations: geometry (n, p, m, depth, size)
	// and the virtual-time deltas sampled from the run's cost meters
	// ("vtime", plus per-category deltas for schedule phases).
	Attrs map[string]float64 `json:"attrs,omitempty"`
	// Children are the nested spans, in start order.
	Children []*Span `json:"children,omitempty"`

	t      *Tracer
	parent *Span
	wall   time.Time
}

// defaultMaxSpans bounds a tracer's recorded spans. Blocked recursions
// emit one span per domain, so a large traced run could otherwise grow
// without bound; beyond the cap new spans are counted as dropped and
// recording continues on the enclosing open span.
const defaultMaxSpans = 1 << 14

// Tracer records a tree of nested spans for one run.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	roots   []*Span
	cur     *Span
	spans   int
	max     int
	dropped atomic.Int64
}

// NewTracer returns a tracer with the default span cap.
func NewTracer() *Tracer { return NewTracerCap(defaultMaxSpans) }

// NewTracerCap returns a tracer recording at most maxSpans spans;
// maxSpans < 1 selects the default cap.
func NewTracerCap(maxSpans int) *Tracer {
	if maxSpans < 1 {
		maxSpans = defaultMaxSpans
	}
	return &Tracer{epoch: time.Now(), max: maxSpans}
}

type tracerKeyType struct{}

// WithTracer returns a context carrying t; context-aware simulation
// entry points record their span timeline into t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKeyType{}, t)
}

// FromContext returns the Tracer attached by WithTracer, or nil.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKeyType{}).(*Tracer)
	return t
}

// Start opens a span named name nested under the currently open span (a
// root span if none is open) and returns it. On a nil tracer, or once
// the span cap is reached, it returns nil — a nil *Span accepts SetAttr
// and End as no-ops, so call sites need no branches.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans >= t.max {
		t.dropped.Add(1)
		return nil
	}
	t.spans++
	now := time.Now()
	s := &Span{
		Name:    name,
		StartNS: now.Sub(t.epoch).Nanoseconds(),
		t:       t,
		parent:  t.cur,
		wall:    now,
	}
	if t.cur != nil {
		t.cur.Children = append(t.cur.Children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.cur = s
	return s
}

// SetAttr records a numeric attribute on the span. No-op on nil.
func (s *Span) SetAttr(key string, v float64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]float64, 4)
	}
	s.Attrs[key] = v
	s.t.mu.Unlock()
}

// End closes the span, fixing its duration and reopening its parent.
// No-op on nil. A span abandoned by an error unwind simply keeps
// duration 0; the exporters tolerate it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.DurNS = time.Since(s.wall).Nanoseconds()
	if s.t.cur == s {
		s.t.cur = s.parent
	}
	s.t.mu.Unlock()
}

// Roots returns the recorded root spans. Call it after the traced run
// has completed; the returned tree is shared, not copied.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.roots
}

// Epoch returns the tracer's construction time — the zero point of its
// spans' StartNS offsets. Mergers of multi-tracer timelines (the sweep
// endpoint encloses per-row tracers under one root) rebase spans onto a
// common epoch by shifting StartNS by the epoch difference.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Current returns the name of the innermost open span, or "" when no
// span is open (or on a nil tracer). It is safe to call concurrently
// with the traced run: the run registry samples it to label a live
// run's position ("phase:regime1", "block", ...) without waiting for
// the timeline.
func (t *Tracer) Current() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur == nil {
		return ""
	}
	return t.cur.Name
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// Dropped reports how many spans the cap discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// WriteJSON writes the span tree as indented JSON (an array of root
// spans with nested children).
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Roots())
}

// chromeEvent is one Chrome trace_event entry ("X" complete events),
// loadable in about://tracing and Perfetto.
type chromeEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`  // microseconds
	Dur  float64            `json:"dur"` // microseconds
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	Args map[string]float64 `json:"args,omitempty"`
}

// WriteChromeTrace writes the span tree in Chrome trace_event format
// (a JSON array of complete events).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var events []chromeEvent
	var walk func(s *Span)
	walk = func(s *Span) {
		events = append(events, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			Pid:  1,
			Tid:  1,
			Args: s.Attrs,
		})
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots() {
		walk(r)
	}
	if events == nil {
		events = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
