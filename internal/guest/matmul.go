package guest

import (
	"fmt"

	"bsmp/internal/cost"
	"bsmp/internal/hram"
	"bsmp/internal/network"
)

// This file implements the paper's Section 1 motivating example: two
// √n × √n matrices multiplied
//
//   - in Θ(√n) steps on a √n × √n mesh of processors (Cannon's systolic
//     algorithm on M2(n, n, ·));
//   - in Θ(n²) time on a uniprocessor H-RAM with the straightforward
//     triple loop (every access pays the average Θ(√n) latency); and
//   - in Θ(n^(3/2)·log n) time on the same uniprocessor with the
//     locality-aware recursive blocking of [AACS87].
//
// The mesh/uniprocessor speedups Θ(n^(3/2)) and Θ(n·log n) are the paper's
// superlinear-speedup exhibit: n processors buy far more than n× because
// parallelism also buys proximity.
//
// All three run over exact uint64 arithmetic (wrap-around semantics), so
// the three products are verified bit-identical.

// MatmulInput generates the deterministic test matrices A and B, sq × sq
// row-major.
func MatmulInput(sq int, seed uint64) (a, b []hram.Word) {
	a = make([]hram.Word, sq*sq)
	b = make([]hram.Word, sq*sq)
	for i := range a {
		h := uint64(i)*0x9E3779B97F4A7C15 + seed
		h ^= h >> 31
		a[i] = h | 1
		h = uint64(i)*0xC2B2AE3D27D4EB4F + seed*3
		h ^= h >> 29
		b[i] = h | 1
	}
	return a, b
}

// ReferenceMatmul computes C = A·B exactly (wrap-around uint64).
func ReferenceMatmul(sq int, a, b []hram.Word) []hram.Word {
	c := make([]hram.Word, sq*sq)
	for i := 0; i < sq; i++ {
		for k := 0; k < sq; k++ {
			aik := a[i*sq+k]
			for j := 0; j < sq; j++ {
				c[i*sq+j] += aik * b[k*sq+j]
			}
		}
	}
	return c
}

// MeshMatmul multiplies on the fully parallel mesh M2(n, n, m) with
// n = sq² nodes via Cannon's algorithm: after the initial skew
// (charged: row/column shifts over at most sq hops), the mesh performs sq
// multiply-accumulate-shift steps, each costing Θ(1) — local accesses plus
// a unit-distance neighbor exchange. Returns C and the elapsed mesh time,
// which is Θ(√n) = Θ(sq).
func MeshMatmul(sq int, a, b []hram.Word) ([]hram.Word, cost.Time) {
	n := sq * sq
	ma := network.New(2, n, n, 4) // 4 words per node: a, b, c, scratch
	at := make([]hram.Word, n)
	bt := make([]hram.Word, n)
	// Cannon pre-skew: row i of A rotated left by i; column j of B
	// rotated up by j. Charged as sq/2 average hops of one word per node.
	for i := 0; i < sq; i++ {
		for j := 0; j < sq; j++ {
			at[i*sq+j] = a[i*sq+(j+i)%sq]
			bt[i*sq+j] = b[((i+j)%sq)*sq+j]
		}
	}
	for v := 0; v < n; v++ {
		ma.Nodes[v].Poke(0, at[v])
		ma.Nodes[v].Poke(1, bt[v])
		ma.Nodes[v].Poke(2, 0)
		// Skew cost: each word traveled up to sq/2 hops on average.
		ma.Bank.Proc(v).Charge(cost.Message, float64(sq)/2)
	}
	ma.Bank.Barrier()

	start := ma.Elapsed()
	for step := 0; step < sq; step++ {
		// Multiply-accumulate locally, then shift A left and B up.
		nextA := make([]hram.Word, n)
		nextB := make([]hram.Word, n)
		for v := 0; v < n; v++ {
			node := ma.Nodes[v]
			av := node.Read(0)
			bv := node.Read(1)
			cv := node.Read(2)
			node.Op()
			node.Write(2, cv+av*bv)
			// Unit-distance shifts (toroidal, as in Cannon): one word
			// each over one hop.
			gx, gy := ma.Coord(v)
			nextA[ma.Index((gx+sq-1)%sq, gy)] = av
			nextB[ma.Index(gx, (gy+sq-1)%sq)] = bv
			ma.Bank.Proc(v).Charge(cost.Message, ma.Spacing())
		}
		for v := 0; v < n; v++ {
			ma.Nodes[v].Poke(0, nextA[v])
			ma.Nodes[v].Poke(1, nextB[v])
		}
		ma.Bank.Barrier()
	}
	elapsed := ma.Elapsed() - start

	c := make([]hram.Word, n)
	for v := 0; v < n; v++ {
		gx, gy := ma.Coord(v)
		c[gy*sq+gx] = ma.Nodes[v].Peek(2)
	}
	return c, elapsed
}

// NaiveMatmul multiplies on a uniprocessor H-RAM (d = 2, density 1) with
// the straightforward triple loop over the natural layout: A at [0, n),
// B at [n, 2n), C at [2n, 3n). Every access pays f(x) = √x — average
// Θ(√n) — for a total of Θ(n²).
func NaiveMatmul(sq int, a, b []hram.Word) ([]hram.Word, cost.Time) {
	n := sq * sq
	var meter cost.Meter
	m := hram.New(3*n, hram.Standard(2, 1), &meter)
	for i := 0; i < n; i++ {
		m.Poke(i, a[i])
		m.Poke(n+i, b[i])
	}
	for i := 0; i < sq; i++ {
		for j := 0; j < sq; j++ {
			var acc hram.Word
			for k := 0; k < sq; k++ {
				av := m.Read(i*sq + k)
				bv := m.Read(n + k*sq + j)
				m.Op()
				acc += av * bv
			}
			m.Write(2*n+i*sq+j, acc)
		}
	}
	c := make([]hram.Word, n)
	for i := 0; i < n; i++ {
		c[i] = m.Peek(2*n + i)
	}
	return c, meter.Now()
}

// BlockedMatmul multiplies on the same uniprocessor H-RAM with the
// locality-aware recursive blocking the paper credits to [AACS87]: each
// half-size sub-product copies its operand blocks into scratch space at
// low addresses, recurses, and accumulates back, so a block of side b is
// multiplied entirely within a region of size O(b²) where accesses cost
// O(b). Total time Θ(n^(3/2)·log n) — the Θ(√n / log n) improvement over
// NaiveMatmul that motivates the paper's locality analysis.
func BlockedMatmul(sq int, a, b []hram.Word) ([]hram.Word, cost.Time) {
	if sq&(sq-1) != 0 {
		panic(fmt.Sprintf("guest: BlockedMatmul needs power-of-two side, got %d", sq))
	}
	n := sq * sq
	// Scratch for the recursion: S(b) = 3b² + S(b/2) < 4b² per level sum.
	scratch := 0
	for bsz := sq; bsz >= 1; bsz /= 2 {
		scratch += 3 * bsz * bsz
	}
	var meter cost.Meter
	m := hram.New(scratch+3*n, hram.Standard(2, 1), &meter)
	baseA, baseB, baseC := scratch, scratch+n, scratch+2*n
	for i := 0; i < n; i++ {
		m.Poke(baseA+i, a[i])
		m.Poke(baseB+i, b[i])
	}

	// copyIn/copyOut move a strided bsz × bsz block into/out of a
	// contiguous scratch block, row by row.
	copyIn := func(dst, src, stride, bsz int) {
		for r := 0; r < bsz; r++ {
			m.BlockCopy(dst+r*bsz, src+r*stride, bsz)
		}
	}
	copyOut := func(dst, stride, src, bsz int) {
		for r := 0; r < bsz; r++ {
			m.BlockCopy(dst+r*stride, src+r*bsz, bsz)
		}
	}
	// mm multiplies the bsz × bsz blocks at aAddr/bAddr (row strides
	// as/bs), accumulating into the block at cAddr (stride cs). All three
	// blocks are first copied into scratch just below base — so children
	// always copy from their PARENT's local region, never from the
	// far-away top-level matrices; that one-level-at-a-time descent is
	// what bounds each recursion level's copy cost by O(b) per word and
	// yields the Θ(n^(3/2)·log n) total.
	var mm func(aAddr, as, bAddr, bs, cAddr, cs, bsz, base int)
	mm = func(aAddr, as, bAddr, bs, cAddr, cs, bsz, base int) {
		la, lb, lc := base-3*bsz*bsz, base-2*bsz*bsz, base-bsz*bsz
		copyIn(la, aAddr, as, bsz)
		copyIn(lb, bAddr, bs, bsz)
		copyIn(lc, cAddr, cs, bsz)
		if bsz <= 8 {
			for i := 0; i < bsz; i++ {
				for j := 0; j < bsz; j++ {
					acc := m.Read(lc + i*bsz + j)
					for k := 0; k < bsz; k++ {
						av := m.Read(la + i*bsz + k)
						bv := m.Read(lb + k*bsz + j)
						m.Op()
						acc += av * bv
					}
					m.Write(lc+i*bsz+j, acc)
				}
			}
		} else {
			h := bsz / 2
			for _, sub := range [8][4]int{
				{0, 0, 0, 0}, {0, h, h, 0}, // C00 += A00·B00 + A01·B10
				{0, 0, 0, h}, {0, h, h, h}, // C01 += A00·B01 + A01·B11
				{h, 0, 0, 0}, {h, h, h, 0}, // C10 += A10·B00 + A11·B10
				{h, 0, 0, h}, {h, h, h, h}, // C11 += A10·B01 + A11·B11
			} {
				di, dk, ek, ej := sub[0], sub[1], sub[2], sub[3]
				mm(
					la+di*bsz+dk, bsz,
					lb+ek*bsz+ej, bsz,
					lc+di*bsz+ej, bsz,
					h, la,
				)
			}
		}
		copyOut(cAddr, cs, lc, bsz)
	}
	mm(baseA, sq, baseB, sq, baseC, sq, sq, scratch)

	c := make([]hram.Word, n)
	for i := 0; i < n; i++ {
		c[i] = m.Peek(baseC + i)
	}
	return c, meter.Now()
}
