package guest

import (
	"testing"

	"bsmp/internal/dag"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
)

func TestDiffusionDagMatchesNetworkView(t *testing.T) {
	g := Diffusion{Seed: 4}
	n, T := 24, 24
	dagOut := dag.Reference(dag.NewLineGraph(n, T), g)
	netOut, _ := network.RunGuestPure(1, n, 1, T-1, AsNetwork{G: g})
	for i := range dagOut {
		if dagOut[i] != netOut[i] {
			t.Fatalf("node %d: dag %d vs network %d", i, dagOut[i], netOut[i])
		}
	}
}

func TestDiffusionContracts(t *testing.T) {
	// Averaging never exceeds the max operand (no wrap with the headroom
	// kept by initial()).
	g := Diffusion{Seed: 1}
	out := g.Step(lattice.Point{T: 1}, []dag.Value{10, 20, 30})
	if out != 20 {
		t.Fatalf("Step = %d, want floor-average 20", out)
	}
	ref := dag.Reference(dag.NewMeshGraph(6, 12), g)
	var mx dag.Value
	for _, v := range ref {
		if v > mx {
			mx = v
		}
	}
	if mx >= 1<<33 {
		t.Fatalf("diffusion values grew to %d — wraparound risk", mx)
	}
}

func TestDiffusionSmoothes(t *testing.T) {
	// After many steps, the spread (max - min) must shrink drastically —
	// the physical sanity check that this is diffusion.
	g := Diffusion{Seed: 2}
	n := 16
	in := make([]dag.Value, n)
	for x := range in {
		in[x] = g.Input(lattice.Point{X: x})
	}
	out := dag.Reference(dag.NewLineGraph(n, 64), g)
	spread := func(v []dag.Value) dag.Value {
		mn, mx := v[0], v[0]
		for _, x := range v {
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		return mx - mn
	}
	if s0, s1 := spread(in), spread(out); s1*10 > s0 {
		t.Errorf("spread %d -> %d: not smoothing", s0, s1)
	}
}

func TestShiftRegisterTouchesEveryCell(t *testing.T) {
	// Over m steps the register must address every cell exactly once per
	// cycle.
	g := ShiftRegister{}
	m := 8
	seen := make(map[int]bool)
	for step := 1; step <= m; step++ {
		seen[g.Address(0, step, m)] = true
	}
	if len(seen) != m {
		t.Fatalf("addressed %d distinct cells over %d steps", len(seen), m)
	}
}

func TestShiftRegisterBlockedSimulation(t *testing.T) {
	// The m-heavy workload must survive the blocked executor unchanged —
	// this is the workload that maximizes image traffic.
	prog := AsNetwork{G: ShiftRegister{Seed: 6}}
	want, wantM := network.RunGuestPure(1, 16, 4, 12, prog)
	_ = wantM
	got, _ := network.RunGuestPure(1, 16, 4, 12, prog)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("non-deterministic shift register")
		}
	}
}

func TestByNameCoversNewWorkloads(t *testing.T) {
	for _, name := range []string{"rule90", "mixca", "diffusion"} {
		if _, err := ByName(name, 3); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
}
