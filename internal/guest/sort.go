package guest

import "bsmp/internal/hram"

// OETSort is odd-even transposition sort on the linear array — the
// canonical systolic algorithm of the machines the paper studies (its
// Section 4.1 explicitly covers "systolic networks"). Node x holds one
// key as its broadcast value; at step t, adjacent pairs (2i, 2i+1) for
// even t (respectively (2i+1, 2i+2) for odd t) compare-exchange, so after
// n steps the row is sorted. Everything is computed from (node, step,
// self, neighbors), fitting Definition 3's semantics exactly; the
// sortedness of the final row is an end-to-end invariant every simulator
// must preserve.
type OETSort struct{ Seed uint64 }

// InitAt places a position-scrambled key at (x, y).
func (g OETSort) InitAt(x, y int, mem []hram.Word) hram.Word {
	h := uint64(x)*0x9E3779B97F4A7C15 + uint64(y)*0xBF58476D1CE4E5B9 + g.Seed
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return h
}

// Address implements the network view (memory unused).
func (g OETSort) Address(node, step, memSize int) int { return 0 }

// Step2 performs the compare-exchange. prev is (self, left?, right?) in
// network order; boundary nodes lack one neighbor, which the node index
// disambiguates.
func (g OETSort) Step2(node, step int, cell hram.Word, prev []hram.Word) (hram.Word, hram.Word) {
	self := prev[0]
	var left, right hram.Word
	hasLeft := node > 0
	switch {
	case hasLeft && len(prev) >= 3:
		left, right = prev[1], prev[2]
	case hasLeft && len(prev) == 2:
		left = prev[1] // rightmost node
	case !hasLeft && len(prev) >= 2:
		right = prev[1] // leftmost node
	}
	// At step t, pairs start at even positions when t is odd is a
	// convention choice; use: pair (x, x+1) active iff x ≡ step (mod 2).
	pairedRight := node%2 == step%2
	if pairedRight {
		if len(prev) >= 2 && (node > 0 || true) && nodeHasRight(node, len(prev), hasLeft) {
			// Keep the min of (self, right).
			if right < self {
				return right, cell
			}
		}
		return self, cell
	}
	// Paired with the left neighbor: keep the max of (left, self).
	if hasLeft {
		if left > self {
			return left, cell
		}
	}
	return self, cell
}

// nodeHasRight reports whether the prev slice included a right neighbor.
func nodeHasRight(node, prevLen int, hasLeft bool) bool {
	if hasLeft {
		return prevLen >= 3
	}
	return prevLen >= 2
}
