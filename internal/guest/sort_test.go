package guest

import (
	"sort"
	"testing"

	"bsmp/internal/network"
)

func TestOETSortSorts(t *testing.T) {
	for _, n := range []int{2, 8, 16, 33, 64} {
		g := OETSort{Seed: 5}
		out, _ := network.RunGuestPure(1, n, 1, n, AsNetwork{G: g})
		// The multiset must be the initial keys, sorted.
		want := make([]uint64, n)
		for x := 0; x < n; x++ {
			want[x] = g.InitAt(x, 0, nil)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("n=%d: position %d = %d, want %d (not sorted or keys lost)",
					n, i, out[i], want[i])
			}
		}
	}
}

func TestOETSortPartialProgress(t *testing.T) {
	// After fewer than n steps the row is generally NOT sorted — pins
	// that the test above isn't vacuous.
	n := 64
	g := OETSort{Seed: 5}
	out, _ := network.RunGuestPure(1, n, 1, n/4, AsNetwork{G: g})
	sorted := true
	for i := 1; i < n; i++ {
		if out[i-1] > out[i] {
			sorted = false
		}
	}
	if sorted {
		t.Fatal("row already sorted after n/4 steps — workload too easy")
	}
}
