// Package guest provides the workloads simulated throughout the
// repository: the network computations that play the role of the paper's
// guest machine Md(n, n, m).
//
// Each guest implements both interfaces used by the repository's two views
// of a computation:
//
//   - dag.Program — the pure dag semantics of Definition 3 (used by the
//     separator executor and the m = 1 theorems), and
//   - network.Program — the machine semantics with per-node m-cell
//     memories and broadcast values (used by guest-time measurement and the
//     m > 1 simulations).
//
// For m = 1 workloads the two views coincide vertex by vertex; tests pin
// that equivalence.
//
// All guests use exact integer dynamics so functional verification between
// executors is bit-exact.
package guest

import (
	"fmt"

	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
)

// Rule90 is the elementary cellular automaton 90 (XOR of the two
// neighbors), a classical systolic workload: chaotic, boundary-sensitive,
// and exactly reproducible. At machine boundaries missing neighbors read
// as 0, matching the truncated dag stencil.
type Rule90 struct {
	// Seed perturbs the initial condition so different experiments do
	// not share fixed points.
	Seed uint64
}

func (r Rule90) initial(x, y int) dag.Value {
	h := uint64(x)*0x9E3779B97F4A7C15 + uint64(y)*0xC2B2AE3D27D4EB4F + r.Seed
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h & 1
}

// Input implements dag.Program. Z folds into the second hash coordinate,
// so d = 1 and d = 2 initial conditions are unchanged (Z = 0).
func (r Rule90) Input(v lattice.Point) dag.Value { return r.initial(v.X, v.Y+131071*v.Z) }

// Step implements dag.Program: XOR of all operands except the center cell
// keeps rule-90 behavior on interior vertices and a well-defined truncated
// rule at boundaries. Operand order is Preds order: for the line
// (left, self, right) — XOR left and right when both present, otherwise
// XOR what exists.
func (r Rule90) Step(v lattice.Point, ops []dag.Value) dag.Value {
	var s dag.Value
	for _, o := range ops {
		s ^= o
	}
	return s & 1
}

// InitAt provides the network initial state at grid coordinates (x, y),
// matching the dag view's Input at the same position.
func (r Rule90) InitAt(x, y int, mem []hram.Word) hram.Word {
	return r.initial(x, y)
}

// Address implements network.Program.
func (r Rule90) Address(node, step, memSize int) int { return 0 }

// AddrClass implements the simulator's address-classification interface:
// the returned label is translation-invariantly sound — equal labels at
// two (node, step) reference points guarantee equal Address values at
// every uniformly translated pair. Rule90 ignores node and step entirely,
// so a single class covers all sites.
func (r Rule90) AddrClass(node, step, memSize int) (uint64, bool) { return 0, true }

// Step implements network.Program: prev is (self, neighbors...); the dag
// operand set is the same multiset, so XOR matches the dag view.
func (r Rule90) Step2(node, step int, cell hram.Word, prev []hram.Word) (hram.Word, hram.Word) {
	var s hram.Word
	for _, p := range prev {
		s ^= p
	}
	return s & 1, cell
}

// MixCA is a dense integer cellular automaton whose step mixes every
// operand with distinct multipliers: unlike Rule90 it is sensitive to
// operand order, which makes it a stronger functional-verification
// workload (any executor that permutes operands or misroutes a value is
// caught).
type MixCA struct{ Seed uint64 }

func (c MixCA) initial(x, y int) dag.Value {
	return dag.Value(x)*0x100000001B3 + dag.Value(y)*0x1B873593 + c.Seed | 1
}

// Input implements dag.Program (Z folds into the second coordinate).
func (c MixCA) Input(v lattice.Point) dag.Value { return c.initial(v.X, v.Y+131071*v.Z) }

// Step implements dag.Program.
func (c MixCA) Step(v lattice.Point, ops []dag.Value) dag.Value {
	s := dag.Value(v.T) * 0x9E3779B1
	for i, o := range ops {
		s = s*31 + o*dag.Value(2*i+3)
	}
	return s
}

// InitAt provides the network initial state at grid coordinates (x, y).
func (c MixCA) InitAt(x, y int, mem []hram.Word) hram.Word {
	for i := range mem {
		mem[i] = dag.Value(x)*131 + dag.Value(y)*8191 + dag.Value(i)*17 + c.Seed
	}
	return c.initial(x, y)
}

// Address implements network.Program: sweeps the memory cyclically so
// every cell participates.
func (c MixCA) Address(node, step, memSize int) int {
	return (node + step) % memSize
}

// AddrClass classifies MixCA's cyclic sweep: Address is (node+step) mod
// memSize, and a uniform translation (dn, ds) shifts every site's address
// by the same (dn+ds) mod memSize — equal residues at a reference point
// imply equal addresses at every translated site.
func (c MixCA) AddrClass(node, step, memSize int) (uint64, bool) {
	return uint64(((node+step)%memSize + memSize) % memSize), true
}

// Step2 implements the network step: combines the addressed cell with the
// neighborhood, returning a new broadcast value and updated cell.
func (c MixCA) Step2(node, step int, cell hram.Word, prev []hram.Word) (hram.Word, hram.Word) {
	s := dag.Value(step) * 0x9E3779B1
	for i, p := range prev {
		s = s*31 + p*dag.Value(2*i+3)
	}
	return s + cell*2654435761, cell ^ (s | 1)
}

// AsNetwork adapts a guest to the network.Program interface. The adapter
// exists because Go cannot overload Step; guests expose Step (dag) and
// Step2 (network) and this wrapper renames the latter. Side carries the
// grid geometry so node indices map to the same (x, y) coordinates the dag
// view uses: Side = 0 (or 1) means a linear array (x = node); otherwise
// x = node mod Side, y = node div Side.
type AsNetwork struct {
	G interface {
		InitAt(x, y int, mem []hram.Word) hram.Word
		Address(node, step, memSize int) int
		Step2(node, step int, cell hram.Word, prev []hram.Word) (hram.Word, hram.Word)
	}
	Side int
	// CubeSide marks a d = 3 grid: node indices map to (x, y, z) with
	// z folded into the second hash coordinate the same way the dag
	// view's Input folds it, so both views share initial conditions.
	CubeSide int
}

// Init implements network.Program.
func (a AsNetwork) Init(node int, mem []hram.Word) hram.Word {
	if s := a.CubeSide; s > 1 {
		x, y, z := node%s, (node/s)%s, node/(s*s)
		return a.G.InitAt(x, y+131071*z, mem)
	}
	if a.Side > 1 {
		return a.G.InitAt(node%a.Side, node/a.Side, mem)
	}
	return a.G.InitAt(node, 0, mem)
}

// Address implements network.Program.
func (a AsNetwork) Address(node, step, memSize int) int {
	return a.G.Address(node, step, memSize)
}

// Step implements network.Program.
func (a AsNetwork) Step(node, step int, cell hram.Word, prev []hram.Word) (hram.Word, hram.Word) {
	return a.G.Step2(node, step, cell, prev)
}

// AddrClass forwards to the wrapped guest when it classifies its
// addresses; Address passes node through verbatim, so the class does too.
func (a AsNetwork) AddrClass(node, step, memSize int) (uint64, bool) {
	if ac, ok := a.G.(interface {
		AddrClass(node, step, memSize int) (uint64, bool)
	}); ok {
		return ac.AddrClass(node, step, memSize)
	}
	return 0, false
}

// RestrictMem wraps a network program so it addresses only the first
// Words cells of each node's memory, declaring that via MemWords — the
// paper's concluding m' < m scenario ("if an algorithm for n processors
// actually requires m' memory cells per processor, with m' < m, more
// locality will result").
type RestrictMem struct {
	P interface {
		InitAt(x, y int, mem []hram.Word) hram.Word
		Address(node, step, memSize int) int
		Step2(node, step int, cell hram.Word, prev []hram.Word) (hram.Word, hram.Word)
	}
	// Words is m', the number of live cells per node.
	Words int
	// Side carries the grid geometry like AsNetwork.Side.
	Side int
}

// Init implements network.Program.
func (r RestrictMem) Init(node int, mem []hram.Word) hram.Word {
	if r.Side > 1 {
		return r.P.InitAt(node%r.Side, node/r.Side, mem)
	}
	return r.P.InitAt(node, 0, mem)
}

// Address implements network.Program, confined to the live region.
func (r RestrictMem) Address(node, step, memSize int) int {
	w := r.Words
	if w > memSize {
		w = memSize
	}
	return r.P.Address(node, step, w)
}

// Step implements network.Program.
func (r RestrictMem) Step(node, step int, cell hram.Word, prev []hram.Word) (hram.Word, hram.Word) {
	return r.P.Step2(node, step, cell, prev)
}

// AddrClass forwards to the wrapped program with the memory size clamped
// to the live region, mirroring Address.
func (r RestrictMem) AddrClass(node, step, memSize int) (uint64, bool) {
	ac, ok := r.P.(interface {
		AddrClass(node, step, memSize int) (uint64, bool)
	})
	if !ok {
		return 0, false
	}
	w := r.Words
	if w > memSize {
		w = memSize
	}
	return ac.AddrClass(node, step, w)
}

// MemWords implements the blocked simulation's MemUser interface.
func (r RestrictMem) MemWords(memSize int) int {
	if r.Words > memSize {
		return memSize
	}
	return r.Words
}

// ByName returns a named guest for CLI use. Known names: "rule90",
// "mixca", "diffusion".
func ByName(name string, seed uint64) (interface {
	Input(v lattice.Point) dag.Value
	Step(v lattice.Point, ops []dag.Value) dag.Value
}, error) {
	switch name {
	case "rule90":
		return Rule90{Seed: seed}, nil
	case "mixca":
		return MixCA{Seed: seed}, nil
	case "diffusion":
		return Diffusion{Seed: seed}, nil
	default:
		return nil, fmt.Errorf("guest: unknown workload %q", name)
	}
}
