package guest

import (
	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
)

// Diffusion is an integer heat-diffusion-like automaton: each step
// averages the neighborhood in fixed-point arithmetic (sum divided by the
// operand count, floor). Order-insensitive over its operand multiset, so
// like Rule90 its dag and network views agree; unlike Rule90 it carries
// wide values, exercising full-word datapaths.
type Diffusion struct{ Seed uint64 }

func (g Diffusion) initial(x, y int) dag.Value {
	h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xD6E8FEB86659FD93 ^ g.Seed
	h ^= h >> 32
	return h % (1 << 32) // keep headroom so sums cannot wrap
}

// Input implements dag.Program.
func (g Diffusion) Input(v lattice.Point) dag.Value {
	return g.initial(v.X, v.Y+131071*v.Z)
}

// Step implements dag.Program: the floor-average of the operands.
func (g Diffusion) Step(v lattice.Point, ops []dag.Value) dag.Value {
	var s dag.Value
	for _, o := range ops {
		s += o
	}
	return s / dag.Value(len(ops))
}

// InitAt implements the network-view initializer.
func (g Diffusion) InitAt(x, y int, mem []hram.Word) hram.Word {
	return g.initial(x, y)
}

// Address implements the network view (memory unused: cell 0).
func (g Diffusion) Address(node, step, memSize int) int { return 0 }

// AddrClass: Address is constant, one class covers every site.
func (g Diffusion) AddrClass(node, step, memSize int) (uint64, bool) { return 0, true }

// Step2 implements the network view.
func (g Diffusion) Step2(node, step int, cell hram.Word, prev []hram.Word) (hram.Word, hram.Word) {
	var s hram.Word
	for _, p := range prev {
		s += p
	}
	return s / hram.Word(len(prev)), cell
}

// ShiftRegister is an m-heavy workload: each node cycles its entire
// private memory as a shift register, consuming the oldest cell and
// appending a mix of the neighborhood — the densest per-step memory
// traffic a Definition 3 computation allows, which makes it the preferred
// stress workload for the Theorem 3/4 block-relocation schemes.
type ShiftRegister struct{ Seed uint64 }

// InitAt fills the register with position-dependent values.
func (g ShiftRegister) InitAt(x, y int, mem []hram.Word) hram.Word {
	for i := range mem {
		mem[i] = uint64(x)*0x100000001B3 + uint64(y)*131 + uint64(i)*0x9E3779B1 + g.Seed
	}
	return uint64(x)*0xC2B2AE3D27D4EB4F + g.Seed | 1
}

// Address cycles through the register.
func (g ShiftRegister) Address(node, step, memSize int) int {
	return step % memSize
}

// AddrClass: Address depends only on step mod memSize, and uniform step
// translations shift every site's residue identically.
func (g ShiftRegister) AddrClass(node, step, memSize int) (uint64, bool) {
	return uint64((step%memSize + memSize) % memSize), true
}

// Step2 consumes the addressed cell and rewrites it from the neighborhood.
func (g ShiftRegister) Step2(node, step int, cell hram.Word, prev []hram.Word) (hram.Word, hram.Word) {
	mix := cell*0x9E3779B97F4A7C15 + uint64(step)
	for i, p := range prev {
		mix ^= p << (uint(i) % 8)
	}
	return mix | 1, mix*2 + 1
}
