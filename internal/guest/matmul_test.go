package guest

import (
	"math"
	"testing"
)

func TestMatmulAllThreeAgree(t *testing.T) {
	for _, sq := range []int{4, 8, 16} {
		a, b := MatmulInput(sq, 7)
		want := ReferenceMatmul(sq, a, b)
		mesh, _ := MeshMatmul(sq, a, b)
		naive, _ := NaiveMatmul(sq, a, b)
		blocked, _ := BlockedMatmul(sq, a, b)
		for i := range want {
			if mesh[i] != want[i] {
				t.Fatalf("sq=%d: mesh C[%d] = %d, want %d", sq, i, mesh[i], want[i])
			}
			if naive[i] != want[i] {
				t.Fatalf("sq=%d: naive C[%d] = %d, want %d", sq, i, naive[i], want[i])
			}
			if blocked[i] != want[i] {
				t.Fatalf("sq=%d: blocked C[%d] = %d, want %d", sq, i, blocked[i], want[i])
			}
		}
	}
}

func TestMatmulBlockedNeedsPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two side did not panic")
		}
	}()
	a, b := MatmulInput(6, 1)
	BlockedMatmul(6, a, b)
}

func TestMatmulTimeOrderingAndCrossover(t *testing.T) {
	// Asymptotic ordering mesh << blocked << naive holds once past the
	// blocking overhead's crossover (measured at sq ≈ 48): blocked loses
	// to naive at sq = 16 and wins from sq = 64 on, with a growing
	// advantage (~√n/log n).
	ratio := func(sq int) (mesh, naive, blocked float64) {
		a, b := MatmulInput(sq, 3)
		_, tm := MeshMatmul(sq, a, b)
		_, tn := NaiveMatmul(sq, a, b)
		_, tb := BlockedMatmul(sq, a, b)
		return float64(tm), float64(tn), float64(tb)
	}
	tm, tn, tb := ratio(16)
	if !(tm < tb && tm < tn) {
		t.Errorf("sq=16: mesh %v not fastest (naive %v, blocked %v)", tm, tn, tb)
	}
	if tb < tn {
		t.Errorf("sq=16: blocked %v already beats naive %v — crossover moved, update docs", tb, tn)
	}
	tm64, tn64, tb64 := ratio(64)
	if !(tm64 < tb64 && tb64 < tn64) {
		t.Errorf("sq=64: ordering violated: mesh %v, blocked %v, naive %v", tm64, tb64, tn64)
	}
	tm128, tn128, tb128 := ratio(128)
	_ = tm128
	if tn128/tb128 <= tn64/tb64 {
		t.Errorf("blocked advantage not growing: %v at 64 vs %v at 128", tn64/tb64, tn128/tb128)
	}
}

func TestMatmulSuperlinearSpeedup(t *testing.T) {
	// The paper's exhibit: n = sq² processors speed the naive
	// uniprocessor up by ~n^1.5 — superlinear in the processor count.
	// Shape check via exponents: naive time ~ n², mesh time ~ n^0.5, so
	// log2(speedup) / log2(n) ≈ 1.5 and clearly above 1.
	var logN, logSpeed []float64
	for _, sq := range []int{8, 16, 32} {
		n := sq * sq
		a, b := MatmulInput(sq, 5)
		_, tm := MeshMatmul(sq, a, b)
		_, tn := NaiveMatmul(sq, a, b)
		logN = append(logN, math.Log2(float64(n)))
		logSpeed = append(logSpeed, math.Log2(float64(tn)/float64(tm)))
	}
	slope := fitSlope(logN, logSpeed)
	if slope < 1.2 || slope > 1.8 {
		t.Errorf("speedup exponent %v, want ~1.5 (superlinear)", slope)
	}
}

func TestMatmulBlockedShape(t *testing.T) {
	// Blocked uniprocessor time ~ n^1.5·log n: exponent ~1.6, clearly
	// below naive's 2.
	var logN, logB, logNv []float64
	for _, sq := range []int{16, 32, 64} {
		n := sq * sq
		a, b := MatmulInput(sq, 9)
		_, tb := BlockedMatmul(sq, a, b)
		_, tn := NaiveMatmul(sq, a, b)
		logN = append(logN, math.Log2(float64(n)))
		logB = append(logB, math.Log2(float64(tb)))
		logNv = append(logNv, math.Log2(float64(tn)))
	}
	bSlope := fitSlope(logN, logB)
	nvSlope := fitSlope(logN, logNv)
	if nvSlope < 1.8 || nvSlope > 2.2 {
		t.Errorf("naive exponent %v, want ~2", nvSlope)
	}
	if bSlope >= nvSlope-0.15 {
		t.Errorf("blocked exponent %v not clearly below naive %v", bSlope, nvSlope)
	}
}

func fitSlope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
