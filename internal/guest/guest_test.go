package guest

import (
	"testing"

	"bsmp/internal/dag"
	"bsmp/internal/lattice"
	"bsmp/internal/network"
)

func TestRule90IsBinary(t *testing.T) {
	r := Rule90{Seed: 7}
	g := dag.NewLineGraph(16, 16)
	out := dag.Reference(g, r)
	for i, v := range out {
		if v > 1 {
			t.Fatalf("node %d: non-binary value %d", i, v)
		}
	}
}

func TestRule90InteriorIsXorOfNeighbors(t *testing.T) {
	r := Rule90{}
	// Interior vertex: ops = (left, self, right); rule 90 = left XOR right.
	// Our truncated rule XORs all three, so with self included the value
	// differs from classical rule 90 — pin the actual contract instead:
	// XOR of all operands.
	ops := []dag.Value{1, 1, 0}
	if got := r.Step(lattice.Point{X: 3, T: 2}, ops); got != 0 {
		t.Fatalf("Step = %d, want 0 (1^1^0)", got)
	}
}

func TestRule90DagMatchesNetworkView(t *testing.T) {
	// For a width-1 CA with an order-insensitive rule, the dag semantics
	// and the network semantics agree exactly.
	r := Rule90{Seed: 3}
	n, T := 32, 32
	dagOut := dag.Reference(dag.NewLineGraph(n, T), r)
	netOut, _ := network.RunGuestPure(1, n, 1, T-1, AsNetwork{G: r})
	for i := range dagOut {
		if dagOut[i] != netOut[i] {
			t.Fatalf("node %d: dag %d vs network %d", i, dagOut[i], netOut[i])
		}
	}
}

func TestRule90DagMatchesNetworkView2D(t *testing.T) {
	r := Rule90{Seed: 11}
	side, T := 6, 6
	dagOut := dag.Reference(dag.NewMeshGraph(side, T), r)
	netOut, _ := network.RunGuestPure(2, side*side, 1, T-1, AsNetwork{G: r, Side: side})
	for i := range dagOut {
		if dagOut[i] != netOut[i] {
			t.Fatalf("node %d: dag %d vs network %d", i, dagOut[i], netOut[i])
		}
	}
}

func TestMixCAOrderSensitive(t *testing.T) {
	c := MixCA{}
	v := lattice.Point{X: 1, T: 1}
	a := c.Step(v, []dag.Value{10, 20, 30})
	b := c.Step(v, []dag.Value{30, 20, 10})
	if a == b {
		t.Fatal("MixCA should be operand-order sensitive")
	}
}

func TestMixCADeterministic(t *testing.T) {
	c := MixCA{Seed: 5}
	g := dag.NewMeshGraph(4, 5)
	a := dag.Reference(g, c)
	b := dag.Reference(g, c)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic")
		}
	}
}

func TestMixCASeedMatters(t *testing.T) {
	g := dag.NewLineGraph(8, 8)
	a := dag.Reference(g, MixCA{Seed: 1})
	b := dag.Reference(g, MixCA{Seed: 2})
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds produced identical runs")
	}
}

func TestMixCANetworkUsesMemory(t *testing.T) {
	// With m > 1 the memory contents must influence the outputs: zeroing
	// the memory initialization would change results. Compare m=2 vs m=4
	// runs: different address wrap means different dynamics.
	out2, _ := network.RunGuestPure(1, 8, 2, 10, AsNetwork{G: MixCA{}})
	out4, _ := network.RunGuestPure(1, 8, 4, 10, AsNetwork{G: MixCA{}})
	same := true
	for i := range out2 {
		if out2[i] != out4[i] {
			same = false
		}
	}
	if same {
		t.Fatal("memory density had no effect on MixCA network run")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"rule90", "mixca"} {
		g, err := ByName(name, 1)
		if err != nil || g == nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", 0); err == nil {
		t.Fatal("unknown name did not error")
	}
}
