package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bsmp"
	"bsmp/internal/obs"
)

func getJSON(t *testing.T, h http.Handler, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", path, err, w.Body)
		}
	}
	return w
}

// TestRunRegistryEndToEnd drives the acceptance path: a real run
// through /v1/run, its run_id joined to the full /v1/runs/{id} record,
// whose phase durations telescope to Time+PrepTime, and an SSE
// subscriber joining at terminal state seeing snapshot + terminal
// event.
func TestRunRegistryEndToEnd(t *testing.T) {
	s := New(Config{})
	w := postRun(t, s.Handler(), validRun)
	if w.Code != http.StatusOK {
		t.Fatalf("run status = %d; body: %s", w.Code, w.Body)
	}
	resp := decodeRun(t, w)
	if resp.RunID == "" {
		t.Fatal("run response missing run_id")
	}

	var rec obs.RunInfo
	if w := getJSON(t, s.Handler(), "/v1/runs/"+resp.RunID, &rec); w.Code != http.StatusOK {
		t.Fatalf("record status = %d; body: %s", w.Code, w.Body)
	}
	if rec.State != obs.RunDone || rec.Source != "run" || rec.Scheme != "multi" {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Time != resp.Time || rec.PrepTime != resp.PrepTime {
		t.Fatalf("record times (%v, %v) != response (%v, %v)", rec.Time, rec.PrepTime, resp.Time, resp.PrepTime)
	}
	if rec.Vertices <= 0 {
		t.Fatalf("record vertices = %d, want > 0", rec.Vertices)
	}
	if len(rec.Ledger) == 0 {
		t.Fatal("record ledger empty")
	}
	if rec.QueueMS < 0 || rec.WallMS <= 0 {
		t.Fatalf("record timings queue=%v wall=%v", rec.QueueMS, rec.WallMS)
	}
	// Phase virtual times telescope to the full makespan, exactly like
	// the response's own breakdown.
	if len(rec.PhaseTimes) == 0 {
		t.Fatal("record has no phase summary")
	}
	var sum float64
	for _, ph := range rec.PhaseTimes {
		sum += ph.VTime
	}
	full := resp.Time + resp.PrepTime
	if math.Abs(sum-full) > 1e-9*full {
		t.Errorf("phase vtimes sum to %v, want %v", sum, full)
	}
	// The full record carries the span tree even though the run was not
	// requested with ?trace=1 — the flight recorder's own tracer fed it.
	if len(rec.Trace) == 0 || !strings.HasPrefix(rec.Trace[0].Name, "scheme:") {
		t.Fatalf("record trace = %+v, want scheme root", rec.Trace)
	}

	// Listings know the run, without the trace payload.
	var list RunsResponse
	getJSON(t, s.Handler(), "/v1/runs?state=done", &list)
	if list.Total != 1 || len(list.Runs) != 1 || list.Runs[0].ID != resp.RunID {
		t.Fatalf("listing = %+v", list)
	}
	if list.Runs[0].Trace != nil {
		t.Fatal("listing leaked a span tree")
	}

	// A subscriber joining after completion gets the snapshot and the
	// terminal event immediately, then the stream closes.
	events := readSSE(t, s, "/v1/runs/"+resp.RunID+"/events")
	if len(events) != 2 || events[0].name != "snapshot" || events[1].name != "done" {
		t.Fatalf("terminal-join events = %+v", events)
	}
	if !strings.Contains(events[1].data, `"state":"done"`) {
		t.Fatalf("terminal event payload = %s", events[1].data)
	}

	// A cached repeat mints no new record and credits the original.
	w2 := postRun(t, s.Handler(), validRun)
	resp2 := decodeRun(t, w2)
	if !resp2.Cached || resp2.RunID != resp.RunID {
		t.Fatalf("cached repeat run_id = %q cached=%t, want original %q", resp2.RunID, resp2.Cached, resp.RunID)
	}
	var rec2 obs.RunInfo
	getJSON(t, s.Handler(), "/v1/runs/"+resp.RunID, &rec2)
	if rec2.CacheHits != 1 {
		t.Fatalf("record cache_hits = %d, want 1", rec2.CacheHits)
	}
}

// TestRegistryGoldenBitIdentical extends the golden virtual-time pin to
// the registry path: with the registry (and its always-on record
// tracer) live, the served times must match the engine goldens bit for
// bit — registry sampling is read-only by construction.
func TestRegistryGoldenBitIdentical(t *testing.T) {
	s := New(Config{})
	w := postRun(t, s.Handler(), `{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 16, "steps": 16}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d; body: %s", w.Code, w.Body)
	}
	resp := decodeRun(t, w)
	const goldenTime = 79686.0625
	const goldenPrep = 45232
	if resp.Time != goldenTime {
		t.Errorf("Time = %v, want golden %v bit-identical", resp.Time, goldenTime)
	}
	if resp.PrepTime != goldenPrep {
		t.Errorf("PrepTime = %v, want golden %v bit-identical", resp.PrepTime, goldenPrep)
	}
	// And the record agrees with the response exactly.
	var rec obs.RunInfo
	getJSON(t, s.Handler(), "/v1/runs/"+resp.RunID, &rec)
	if rec.Time != goldenTime || rec.PrepTime != goldenPrep {
		t.Errorf("record times (%v, %v), want goldens", rec.Time, rec.PrepTime)
	}
}

type sseEvent struct {
	name string
	data string
}

// readSSE drains a terminal-record event stream via the recorder (the
// handler returns on its own for completed runs).
func readSSE(t *testing.T, s *Server, path string) []sseEvent {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("SSE status = %d; body: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	return parseSSE(t, bufio.NewScanner(w.Body), nil)
}

// parseSSE consumes "event:/data:" line pairs. When stop is non-nil it
// returns as soon as stop(event) says so; otherwise it reads to EOF.
func parseSSE(t *testing.T, sc *bufio.Scanner, stop func(sseEvent) bool) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			if stop != nil && stop(cur) {
				return events
			}
			cur = sseEvent{}
		}
	}
	return events
}

// TestRunEventsMidRunSubscriber joins the SSE stream while a run is
// executing: the subscriber must see the join snapshot, live progress
// events as the counters move, and the terminal event when the run
// lands.
func TestRunEventsMidRunSubscriber(t *testing.T) {
	s := New(Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	s.runScheme = func(ctx context.Context, req RunRequest) (*RunResponse, error) {
		prog := bsmp.ProgressFrom(ctx)
		if prog == nil {
			t.Error("stub saw no progress meter")
			return nil, context.Canceled
		}
		close(started)
		for i := 0; ; i++ {
			select {
			case <-release:
				return &RunResponse{Scheme: req.Scheme, Time: 7}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(2 * time.Millisecond):
				prog.Vertices.Add(17)
			}
		}
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	runErr := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/run", "application/json", strings.NewReader(validRun))
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("run status %d", resp.StatusCode)
			}
		}
		runErr <- err
	}()
	<-started

	// Find the live run's ID through the listing.
	var id string
	deadline := time.Now().Add(5 * time.Second)
	for id == "" && time.Now().Before(deadline) {
		var list RunsResponse
		getJSON(t, s.Handler(), "/v1/runs?state=running&source=run", &list)
		if len(list.Runs) > 0 {
			id = list.Runs[0].ID
		} else {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if id == "" {
		t.Fatal("live run never appeared in /v1/runs?state=running")
	}

	resp, err := http.Get(srv.URL + "/v1/runs/" + id + "/events?poll_ms=10")
	if err != nil {
		t.Fatalf("SSE GET: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)

	// Read until one progress event has arrived, then release the run
	// and read to the terminal event.
	sawProgress := false
	events := parseSSE(t, sc, func(ev sseEvent) bool {
		if ev.name == "progress" {
			sawProgress = true
		}
		return sawProgress
	})
	if !sawProgress {
		t.Fatalf("stream ended without a progress event: %+v", events)
	}
	if events[0].name != "snapshot" {
		t.Fatalf("first event = %q, want snapshot", events[0].name)
	}
	close(release)
	tail := parseSSE(t, sc, func(ev sseEvent) bool { return ev.name == "done" })
	if len(tail) == 0 || tail[len(tail)-1].name != "done" {
		t.Fatalf("no terminal done event: %+v", tail)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("run request failed: %v", err)
	}
}

// TestRunEventsWatcherDisconnectDoesNotCancelRun pins the observer
// contract against PR 4/PR 8 cancellation: dropping the SSE connection
// must not cancel the watched simulation.
func TestRunEventsWatcherDisconnectDoesNotCancelRun(t *testing.T) {
	s := New(Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	cancelled := make(chan error, 1)
	s.runScheme = func(ctx context.Context, req RunRequest) (*RunResponse, error) {
		close(started)
		select {
		case <-release:
			return &RunResponse{Scheme: req.Scheme, Time: 1}, nil
		case <-ctx.Done():
			cancelled <- ctx.Err()
			return nil, ctx.Err()
		}
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	runDone := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/run", "application/json", strings.NewReader(validRun))
		if err != nil {
			t.Errorf("run request: %v", err)
			runDone <- nil
			return
		}
		runDone <- resp
	}()
	<-started
	var id string
	for i := 0; i < 500 && id == ""; i++ {
		var list RunsResponse
		getJSON(t, s.Handler(), "/v1/runs?state=running", &list)
		if len(list.Runs) > 0 {
			id = list.Runs[0].ID
		} else {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if id == "" {
		t.Fatal("live run never appeared")
	}

	// Open a watcher, read its join snapshot, then hang up.
	wctx, wcancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(wctx, http.MethodGet, srv.URL+"/v1/runs/"+id+"/events?poll_ms=10", nil)
	wresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("SSE GET: %v", err)
	}
	buf := make([]byte, 1)
	if _, err := wresp.Body.Read(buf); err != nil {
		t.Fatalf("SSE first byte: %v", err)
	}
	wcancel()
	wresp.Body.Close()

	// The run must still be live after the watcher is gone...
	select {
	case err := <-cancelled:
		t.Fatalf("watcher disconnect cancelled the run: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	// ...and completes normally once released.
	close(release)
	resp := <-runDone
	if resp == nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status after watcher disconnect = %d", resp.StatusCode)
	}
	var rec obs.RunInfo
	getJSON(t, s.Handler(), "/v1/runs/"+id, &rec)
	if rec.State != obs.RunDone {
		t.Fatalf("record state = %q, want done", rec.State)
	}
}

// TestSweepRowsCarryRunID is the sweep/registry join regression: every
// executed row carries a run_id, and a repeated sweep serves cached
// rows that keep the ORIGINAL execution's ID with cached:true and
// credit its record's cache-hit counter.
func TestSweepRowsCarryRunID(t *testing.T) {
	s := New(Config{})
	body := `{"schemes": ["multi"], "d": 1, "n": [64], "p": [2, 4], "m": [4, 8], "steps": 16}`
	post := func() []SweepRow {
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("sweep status = %d; body: %s", w.Code, w.Body)
		}
		rows, sum := decodeSweep(t, w.Body.String())
		if !sum.Done {
			t.Fatal("sweep summary not done")
		}
		return rows
	}

	first := post()
	ids := make(map[int]string)
	for _, row := range first {
		if row.Result == nil {
			t.Fatalf("row %d has no result", row.Index)
		}
		if row.Result.RunID == "" {
			t.Fatalf("row %d missing run_id", row.Index)
		}
		if row.Result.Cached {
			t.Fatalf("row %d cached on a cold sweep", row.Index)
		}
		ids[row.Index] = row.Result.RunID
	}

	second := post()
	for _, row := range second {
		if !row.Result.Cached {
			t.Fatalf("repeat row %d not cached", row.Index)
		}
		if row.Result.RunID != ids[row.Index] {
			t.Fatalf("repeat row %d run_id = %q, want original %q", row.Index, row.Result.RunID, ids[row.Index])
		}
	}
	// Each original record was credited once by the repeat sweep, and
	// its record is marked as a sweep execution.
	var rec obs.RunInfo
	getJSON(t, s.Handler(), "/v1/runs/"+ids[0], &rec)
	if rec.CacheHits != 1 || rec.Source != "sweep" {
		t.Fatalf("record after repeat sweep = %+v", rec)
	}
}

// TestRunsListingFiltersAndPagination exercises the /v1/runs query
// surface against a mix of terminal records.
func TestRunsListingFiltersAndPagination(t *testing.T) {
	s := New(Config{})
	s.runScheme = func(ctx context.Context, req RunRequest) (*RunResponse, error) {
		if req.N == 13 {
			return nil, fmt.Errorf("synthetic failure")
		}
		return &RunResponse{Scheme: req.Scheme, N: req.N, Time: float64(req.N)}, nil
	}
	for _, n := range []int{64, 128, 256} {
		w := postRun(t, s.Handler(), fmt.Sprintf(`{"scheme": "multi", "d": 1, "n": %d, "p": 4, "m": 4, "steps": 16}`, n))
		if w.Code != http.StatusOK {
			t.Fatalf("stub run status = %d", w.Code)
		}
	}
	if w := postRun(t, s.Handler(), `{"scheme": "multi", "d": 1, "n": 13, "p": 1, "m": 4, "steps": 16}`); w.Code == http.StatusOK {
		t.Fatal("synthetic failure answered 200")
	}

	var all RunsResponse
	getJSON(t, s.Handler(), "/v1/runs", &all)
	if all.Total != 4 {
		t.Fatalf("total = %d, want 4", all.Total)
	}
	// Newest first: the failure is the most recent record.
	if all.Runs[0].State != obs.RunFailed || all.Runs[0].Error == "" {
		t.Fatalf("newest record = %+v, want the failure", all.Runs[0])
	}

	var done RunsResponse
	getJSON(t, s.Handler(), "/v1/runs?state=done", &done)
	if done.Total != 3 {
		t.Fatalf("done total = %d, want 3", done.Total)
	}

	var page RunsResponse
	getJSON(t, s.Handler(), "/v1/runs?state=done&limit=1&offset=1", &page)
	if page.Total != 3 || len(page.Runs) != 1 {
		t.Fatalf("page = %+v", page)
	}
	if page.Runs[0].ID != done.Runs[1].ID {
		t.Fatalf("offset page returned %q, want %q", page.Runs[0].ID, done.Runs[1].ID)
	}

	if w := getJSON(t, s.Handler(), "/v1/runs?limit=0", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("limit=0 status = %d, want 400", w.Code)
	}
	if w := getJSON(t, s.Handler(), "/v1/runs?offset=-1", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("offset=-1 status = %d, want 400", w.Code)
	}
	if w := getJSON(t, s.Handler(), "/v1/runs/nope", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown record status = %d, want 404", w.Code)
	}
}

// TestRegistryDisabled covers -registry-cap < 0: runs still serve (no
// run_id), and the introspection endpoints answer structured 404s.
func TestRegistryDisabled(t *testing.T) {
	s := New(Config{RegistryCapacity: -1})
	w := postRun(t, s.Handler(), validRun)
	if w.Code != http.StatusOK {
		t.Fatalf("run status = %d", w.Code)
	}
	if resp := decodeRun(t, w); resp.RunID != "" {
		t.Fatalf("run_id = %q with registry disabled", resp.RunID)
	}
	for _, path := range []string{"/v1/runs", "/v1/runs/x", "/v1/runs/x/events"} {
		if w := getJSON(t, s.Handler(), path, nil); w.Code != http.StatusNotFound {
			t.Fatalf("%s status = %d, want 404", path, w.Code)
		}
	}
}

// TestShedRunRecorded pins the shed lifecycle state: a run rejected by
// a full pool queue still leaves a terminal record.
func TestShedRunRecorded(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: -1})
	block := make(chan struct{})
	s.runScheme = func(ctx context.Context, req RunRequest) (*RunResponse, error) {
		<-block
		return &RunResponse{Scheme: req.Scheme, Time: 1}, nil
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	go func() {
		resp, err := http.Post(srv.URL+"/v1/run", "application/json", strings.NewReader(validRun))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var list RunsResponse
		getJSON(t, s.Handler(), "/v1/runs?state=running", &list)
		if list.Total > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A distinct tuple cannot coalesce, cannot hit the cache, and finds
	// the one-worker pool occupied with no queue: 429, recorded as shed.
	w := postRun(t, s.Handler(), `{"scheme": "multi", "d": 1, "n": 128, "p": 4, "m": 4, "steps": 16}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body: %s", w.Code, w.Body)
	}
	var shed RunsResponse
	getJSON(t, s.Handler(), "/v1/runs?state=shed", &shed)
	if shed.Total != 1 {
		t.Fatalf("shed records = %d, want 1", shed.Total)
	}
	if shed.Runs[0].Error == "" {
		t.Fatal("shed record carries no error")
	}
	close(block)
}

// TestMetricsPromRegistrySeries checks the registry's Prometheus
// surface: active-run gauges, terminal-state counters, per-phase
// histograms, quantile gauges, and that every declared counter renders.
func TestMetricsPromRegistrySeries(t *testing.T) {
	s := New(Config{})
	if w := postRun(t, s.Handler(), validRun); w.Code != http.StatusOK {
		t.Fatalf("run status = %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics.prom", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	body := w.Body.String()

	for _, want := range []string{
		"# TYPE bsmpd_runs_active gauge",
		`bsmpd_runs_completed_total{state="done"} 1`,
		`bsmpd_runs_completed_total{state="cancelled"} 0`,
		"# TYPE bsmpd_run_phase_seconds histogram",
		`bsmpd_run_phase_seconds_bucket{phase="`,
		`bsmpd_run_latency_seconds_quantile{q="0.5"} `,
		`bsmpd_run_latency_seconds_quantile{q="0.95"} `,
		`bsmpd_run_latency_seconds_quantile{q="0.99"} `,
		"bsmpd_registry_live_runs 0",
		"bsmpd_registry_retained_runs 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics.prom missing %q", want)
		}
	}
	// Empty histograms carry no quantile gauges (NaN would be noise).
	if strings.Contains(body, "bsmpd_theta_run_latency_seconds_quantile") {
		t.Error("empty theta histogram rendered quantile gauges")
	}
	// Every declared counter renders on the Prometheus surface even
	// before its first increment — the promlint contract.
	for _, name := range counterNames {
		if !strings.Contains(body, "bsmpd_"+name+" ") {
			t.Errorf("declared counter %q missing from metrics.prom", name)
		}
	}
}
