package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"bsmp/internal/obs"
)

// This file is the run-introspection surface over the run registry:
//
//	GET /v1/runs              filterable, paginated listing (live runs
//	                          first, then the flight recorder's
//	                          completed tail, newest first)
//	GET /v1/runs/{id}         one full record, span tree included
//	GET /v1/runs/{id}/events  SSE stream of a run's lifecycle: join
//	                          snapshot, progress/phase events while it
//	                          executes, heartbeats through quiet
//	                          stretches, one terminal event named after
//	                          the final state
//
// The SSE watcher is an observer, never an owner: it polls read-only
// snapshots of the record and its progress atomics, and a watcher
// disconnect ends only the watch — the simulation keeps its own request
// context, per the PR 4/PR 8 cancellation contract (only the *run's*
// client, a deadline, or shutdown may cancel it).

// RunsResponse is the GET /v1/runs payload.
type RunsResponse struct {
	// Total counts records matching the filters before pagination.
	Total int `json:"total"`
	// Runs carries the page, newest first, traces omitted.
	Runs []obs.RunInfo `json:"runs"`
}

// RunEvent is the payload of progress/phase/heartbeat SSE events: the
// live counters, the innermost open span, and elapsed wall time.
type RunEvent struct {
	State    string  `json:"state"`
	Vertices int64   `json:"vertices"`
	Phases   int64   `json:"phases"`
	Span     string  `json:"span,omitempty"`
	WallMS   float64 `json:"wall_ms"`
}

func runEvent(info obs.RunInfo) RunEvent {
	return RunEvent{
		State: info.State, Vertices: info.Vertices, Phases: info.Phases,
		Span: info.Span, WallMS: info.WallMS,
	}
}

// registryDisabled answers the introspection endpoints when the server
// runs without a registry (-registry-cap < 0).
func (s *Server) registryDisabled(w http.ResponseWriter) bool {
	if s.registry != nil {
		return false
	}
	writeError(w, http.StatusNotFound, "registry", "run registry disabled (-registry-cap < 0)", nil)
	return true
}

// handleRuns serves GET /v1/runs?state=&scheme=&source=&limit=&offset=.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if s.registryDisabled(w) {
		return
	}
	q := r.URL.Query()
	stateF, schemeF, sourceF := q.Get("state"), q.Get("scheme"), q.Get("source")
	limit, err := queryInt(q.Get("limit"), 50)
	if err != nil || limit < 1 {
		writeError(w, http.StatusBadRequest, "param", "limit must be a positive integer", nil)
		return
	}
	if limit > 500 {
		limit = 500
	}
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil || offset < 0 {
		writeError(w, http.StatusBadRequest, "param", "offset must be a non-negative integer", nil)
		return
	}

	resp := RunsResponse{Runs: []obs.RunInfo{}}
	for _, h := range s.registry.List() {
		info := h.Snapshot(false)
		if (stateF != "" && info.State != stateF) ||
			(schemeF != "" && info.Scheme != schemeF) ||
			(sourceF != "" && info.Source != sourceF) {
			continue
		}
		resp.Total++
		if resp.Total > offset && len(resp.Runs) < limit {
			resp.Runs = append(resp.Runs, info)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func queryInt(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}

// handleRunRecord serves GET /v1/runs/{id}: the full record, span tree
// included for completed runs.
func (s *Server) handleRunRecord(w http.ResponseWriter, r *http.Request) {
	if s.registryDisabled(w) {
		return
	}
	id := r.PathValue("id")
	h := s.registry.Get(id)
	if h == nil {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no run %q: unknown ID, or the record aged out of the flight recorder", id), nil)
		return
	}
	writeJSON(w, http.StatusOK, h.Snapshot(true))
}

// Event-stream pacing bounds. The poll interval trades progress-event
// granularity against snapshot cost; the heartbeat keeps idle
// connections visibly alive through proxies.
const (
	minEventPollMS = 10
	maxEventPollMS = 5000
	defEventPollMS = 200

	minHeartbeatMS = 100
	defHeartbeatMS = 15000
)

// handleRunEvents serves GET /v1/runs/{id}/events?poll_ms=&heartbeat_ms=
// as a Server-Sent Events stream.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	if s.registryDisabled(w) {
		return
	}
	h := s.registry.Get(r.PathValue("id"))
	if h == nil {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no run %q: unknown ID, or the record aged out of the flight recorder", r.PathValue("id")), nil)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "stream", "response writer cannot stream", nil)
		return
	}
	poll := clampQueryMS(r, "poll_ms", defEventPollMS, minEventPollMS, maxEventPollMS)
	heartbeat := clampQueryMS(r, "heartbeat_ms", defHeartbeatMS, minHeartbeatMS, 1<<20)
	s.vars.Add("run_events_streams", 1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, payload any) bool {
		b, err := json.Marshal(payload)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	// Join snapshot first, so a subscriber always knows where the run
	// stands before the incremental events start.
	last := h.Snapshot(false)
	if !emit("snapshot", last) {
		return
	}
	terminal := func() bool {
		// The terminal event is named after the final state and carries
		// the full record minus the trace (fetch /v1/runs/{id} for it).
		fin := h.Snapshot(false)
		emit(fin.State, fin)
		return true
	}
	if h.Terminal() {
		terminal()
		return
	}

	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	lastEvent := time.Now()
	for {
		select {
		case <-r.Context().Done():
			// Watcher disconnected. Observer only: the run is NOT cancelled —
			// its own request context owns its lifetime.
			return
		case <-h.Done():
			terminal()
			return
		case <-ticker.C:
			cur := h.Snapshot(false)
			switch {
			// A span transition is a named phase boundary; the phase
			// *counter* moves at every recursion checkpoint, far too often
			// to be an event of its own, so it rides along in progress.
			case cur.Span != last.Span:
				if !emit("phase", runEvent(cur)) {
					return
				}
			case cur.Vertices != last.Vertices || cur.Phases != last.Phases || cur.State != last.State:
				if !emit("progress", runEvent(cur)) {
					return
				}
			case time.Since(lastEvent) >= heartbeat:
				if !emit("heartbeat", runEvent(cur)) {
					return
				}
			default:
				last = cur
				continue
			}
			lastEvent = time.Now()
			last = cur
		}
	}
}

// clampQueryMS parses an optional millisecond query parameter into a
// duration, clamped to [min, max].
func clampQueryMS(r *http.Request, name string, def, min, max int) time.Duration {
	v := def
	if raw := r.URL.Query().Get(name); raw != "" {
		if n, err := strconv.Atoi(raw); err == nil {
			v = n
		}
	}
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return time.Duration(v) * time.Millisecond
}
