package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bsmp"
)

func postRun(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeRun(t *testing.T, w *httptest.ResponseRecorder) RunResponse {
	t.Helper()
	var resp RunResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding run response: %v\nbody: %s", err, w.Body)
	}
	return resp
}

func decodeError(t *testing.T, w *httptest.ResponseRecorder) ErrorBody {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("decoding error body: %v\nbody: %s", err, w.Body)
	}
	return eb
}

const validRun = `{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16}`

func TestRunValidAndCached(t *testing.T) {
	s := New(Config{})
	w := postRun(t, s.Handler(), validRun)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", w.Code, w.Body)
	}
	first := decodeRun(t, w)
	if first.Cached {
		t.Fatal("first response marked cached")
	}
	if first.Time <= 0 {
		t.Fatalf("Time = %v, want > 0", first.Time)
	}
	if len(first.Ledger) == 0 {
		t.Fatal("ledger empty")
	}
	if len(first.Phases) == 0 {
		t.Fatal("phases empty for multi d=1")
	}
	if first.Bound <= 0 {
		t.Fatal("theorem1_bound missing")
	}

	w = postRun(t, s.Handler(), validRun)
	second := decodeRun(t, w)
	if !second.Cached {
		t.Fatal("identical repeat not served from cache")
	}
	if second.Time != first.Time {
		t.Fatalf("cached Time %v != original %v", second.Time, first.Time)
	}
	hits, _ := s.CacheStats()
	if hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
}

func TestRunDistinctConfigsNotAliased(t *testing.T) {
	s := New(Config{})
	a := decodeRun(t, postRun(t, s.Handler(), `{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16}`))
	b := decodeRun(t, postRun(t, s.Handler(), `{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"no_rearrange": true}}`))
	if b.Cached {
		t.Fatal("request with different config served from cache")
	}
	if a.Time == b.Time && a.PrepTime == b.PrepTime {
		t.Fatal("ablated run identical to full run — config not reaching the scheme")
	}
}

// Regression: the cache key used to serialize the raw request tuple, so
// semantically identical spellings — theta omitted vs explicitly 1,
// theta_seed defaulted vs explicit 0, guest omitted vs "mixca" — split
// into distinct cache entries and duplicate executions. Canonicalization
// must collapse the whole equivalence class onto ONE entry and ONE
// execution.
func TestCacheKeyCanonicalizesDefaults(t *testing.T) {
	s := New(Config{})
	var calls atomic.Int64
	s.runScheme = func(_ context.Context, req RunRequest) (*RunResponse, error) {
		calls.Add(1)
		return &RunResponse{Scheme: req.Scheme, Time: 42}, nil
	}
	spellings := []string{
		`{"scheme": "multi-theta", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16}`,
		`{"scheme": "multi-theta", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"theta": 1}}`,
		`{"scheme": "multi-theta", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"theta": 1, "theta_seed": 0}}`,
		// theta_seed only selects delay draws when a Θ-model is active;
		// at the lockstep-equivalent Θ = 1 it is inert.
		`{"scheme": "multi-theta", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"theta": 1, "theta_seed": 7}}`,
		`{"scheme": "multi-theta", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "guest": "mixca"}`,
		// fault_seed only selects fault draws when the density is
		// nonzero; at the default faults = 0 it is inert.
		`{"scheme": "multi-theta", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"fault_seed": 9}}`,
	}
	for i, body := range spellings {
		w := postRun(t, s.Handler(), body)
		if w.Code != http.StatusOK {
			t.Fatalf("spelling %d: status = %d; body: %s", i, w.Code, w.Body)
		}
		resp := decodeRun(t, w)
		if i == 0 && resp.Cached {
			t.Fatal("first spelling marked cached")
		}
		if i > 0 && !resp.Cached {
			t.Fatalf("spelling %d executed instead of hitting the canonical cache entry: %s", i, spellings[i])
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 for %d equivalent spellings", got, len(spellings))
	}
	if got := s.cache.Len(); got != 1 {
		t.Fatalf("cache entries = %d, want 1 for %d equivalent spellings", got, len(spellings))
	}
	// A genuinely different theta still gets its own entry and run.
	w := postRun(t, s.Handler(), `{"scheme": "multi-theta", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"theta": 2, "theta_seed": 7}}`)
	if resp := decodeRun(t, w); resp.Cached {
		t.Fatal("theta=2 aliased the lockstep-default entry")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("executions after theta=2 = %d, want 2", got)
	}
	if got := s.cache.Len(); got != 2 {
		t.Fatalf("cache entries after theta=2 = %d, want 2", got)
	}
	// Validation still judges the request as written: the lockstep multi
	// scheme rejects an explicit theta even though canonicalization would
	// have erased a theta of 1.
	w = postRun(t, s.Handler(), `{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"theta": 1}}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("lockstep multi with explicit theta: status = %d, want 400", w.Code)
	}
}

func TestRunInvalidParams(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name, body, field string
	}{
		{"non-square n for naive d=2", `{"scheme": "naive", "d": 2, "n": 10, "p": 1, "m": 4, "steps": 4}`, "n"},
		{"p does not divide n", `{"scheme": "multi", "d": 1, "n": 64, "p": 5, "m": 4, "steps": 8}`, "p"},
		{"zero m", `{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 0, "steps": 8}`, "m"},
		{"negative steps", `{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 4, "steps": -1}`, "steps"},
		{"unidc needs m=1", `{"scheme": "unidc", "d": 1, "n": 64, "p": 1, "m": 4, "steps": 8}`, "m"},
		{"over server n cap", `{"scheme": "multi", "d": 1, "n": 1048576, "p": 4, "m": 4, "steps": 8}`, "n"},
		{"unknown guest", `{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 8, "guest": "life"}`, "guest"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postRun(t, s.Handler(), tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body: %s", w.Code, w.Body)
			}
			eb := decodeError(t, w)
			if eb.Error.Kind != "param" {
				t.Fatalf("kind = %q, want param", eb.Error.Kind)
			}
			if eb.Error.Param == nil || eb.Error.Param.Field != tc.field {
				t.Fatalf("param = %+v, want field %q", eb.Error.Param, tc.field)
			}
		})
	}
}

func TestRunUnknownScheme(t *testing.T) {
	s := New(Config{})
	w := postRun(t, s.Handler(), `{"scheme": "quantum", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 8}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", w.Code)
	}
	eb := decodeError(t, w)
	if eb.Error.Param == nil || eb.Error.Param.Field != "scheme" {
		t.Fatalf("param = %+v, want field scheme", eb.Error.Param)
	}
}

func TestRunMalformedBody(t *testing.T) {
	s := New(Config{})
	for _, body := range []string{`{"scheme": `, `{"scheme": "multi", "bogus_field": 1}`} {
		w := postRun(t, s.Handler(), body)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("status = %d for %q, want 400", w.Code, body)
		}
		if eb := decodeError(t, w); eb.Error.Kind != "body" {
			t.Fatalf("kind = %q, want body", eb.Error.Kind)
		}
	}
}

func TestRunMethodNotAllowed(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/run", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", w.Code)
	}
}

// TestRunStormOfInvalidRequests is the headline bugfix scenario: a storm
// of malformed tuples (the exact shapes that panicked internal
// constructors before the validation boundary) must all come back as
// structured 400s with the daemon still healthy.
func TestRunStormOfInvalidRequests(t *testing.T) {
	s := New(Config{})
	bodies := []string{
		`{"scheme": "naive", "d": 2, "n": 10, "p": 1, "m": 4, "steps": 4}`,
		`{"scheme": "blocked", "d": 2, "n": 10, "p": 1, "m": 1, "steps": 4}`,
		`{"scheme": "blocked", "d": 3, "n": 10, "p": 1, "m": 1, "steps": 4}`,
		`{"scheme": "multi", "d": 2, "n": 10, "p": 2, "m": 1, "steps": 4}`,
		`{"scheme": "multi", "d": 1, "n": 64, "p": 7, "m": 4, "steps": 4}`,
		`{"scheme": "unidc", "d": 1, "n": 64, "p": 2, "m": 1, "steps": 4}`,
		`{"scheme": "naive", "d": 1, "n": 0, "p": 1, "m": 1, "steps": 1}`,
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, b := range bodies {
				w := postRun(t, s.Handler(), b)
				if w.Code != http.StatusBadRequest {
					t.Errorf("storm body %s: status %d, want 400", b, w.Code)
				}
			}
		}()
	}
	wg.Wait()
	// The daemon still serves valid traffic.
	if w := postRun(t, s.Handler(), validRun); w.Code != http.StatusOK {
		t.Fatalf("valid request after storm: status %d", w.Code)
	}
}

func TestRunCoalescesConcurrentDuplicates(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 16})
	var calls atomic.Int64
	release := make(chan struct{})
	s.runScheme = func(_ context.Context, req RunRequest) (*RunResponse, error) {
		calls.Add(1)
		<-release
		return &RunResponse{Scheme: req.Scheme, Time: 1}, nil
	}
	const clients = 6
	var wg sync.WaitGroup
	codes := make([]int, clients)
	coalesced := make([]bool, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postRun(t, s.Handler(), validRun)
			codes[i] = w.Code
			if w.Code == http.StatusOK {
				coalesced[i] = decodeRun(t, w).Coalesced
			}
		}(i)
	}
	// Wait for the leader to start, give duplicates time to attach.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("simulation ran %d times for %d identical concurrent requests, want 1", n, clients)
	}
	var shared int
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("client %d: status %d", i, c)
		}
		if coalesced[i] {
			shared++
		}
	}
	if shared != clients-1 {
		t.Fatalf("%d responses marked coalesced, want %d", shared, clients-1)
	}
}

func TestRunQueueFull429(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: -1})
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	s.runScheme = func(_ context.Context, req RunRequest) (*RunResponse, error) {
		started <- struct{}{}
		<-release
		return &RunResponse{Time: 1}, nil
	}
	// Distinct bodies so coalescing cannot absorb the burst.
	body := func(i int) string {
		return fmt.Sprintf(`{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 4, "steps": %d}`, 8+i)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Occupy the lone worker; with no queue the submission itself can
		// shed if the worker has not parked yet, so retry until it lands.
		for {
			w := postRun(t, s.Handler(), body(0))
			if w.Code != http.StatusTooManyRequests {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	<-started

	deadline := time.Now().Add(2 * time.Second)
	got429 := false
	for i := 1; !got429; i++ {
		w := postRun(t, s.Handler(), body(i))
		switch w.Code {
		case http.StatusTooManyRequests:
			if eb := decodeError(t, w); eb.Error.Kind != "queue_full" {
				t.Fatalf("kind = %q, want queue_full", eb.Error.Kind)
			}
			got429 = true
		case http.StatusOK:
			t.Fatalf("request %d succeeded while worker blocked", i)
		}
		if time.Now().After(deadline) {
			t.Fatal("never observed 429")
		}
	}
	close(release)
	wg.Wait()
}

func TestRunDeadline504(t *testing.T) {
	s := New(Config{RequestTimeout: 30 * time.Millisecond})
	release := make(chan struct{})
	s.runScheme = func(_ context.Context, req RunRequest) (*RunResponse, error) {
		<-release
		return &RunResponse{Time: 1}, nil
	}
	w := postRun(t, s.Handler(), validRun)
	close(release)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body: %s", w.Code, w.Body)
	}
	if eb := decodeError(t, w); eb.Error.Kind != "deadline" {
		t.Fatalf("kind = %q, want deadline", eb.Error.Kind)
	}
}

// A cancelled context (client disconnect, sweep abort) is not a missed
// deadline: it must classify as "cancelled" and leave deadline_timeouts
// untouched — a disconnected sweep would otherwise bump that counter
// once per in-flight grid point.
func TestClassifyCancelledNotDeadline(t *testing.T) {
	s := New(Config{})
	status, detail := s.classifyRunError(context.Canceled)
	if status != 499 || detail.Kind != "cancelled" {
		t.Fatalf("canceled -> (%d, %q), want (499, cancelled)", status, detail.Kind)
	}
	if v := s.vars.Get("deadline_timeouts"); v != nil && v.String() != "0" {
		t.Fatalf("deadline_timeouts = %s after cancel, want 0", v)
	}
	status, detail = s.classifyRunError(context.DeadlineExceeded)
	if status != http.StatusGatewayTimeout || detail.Kind != "deadline" {
		t.Fatalf("deadline -> (%d, %q), want (504, deadline)", status, detail.Kind)
	}
}

func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 2})
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s.runScheme = func(_ context.Context, req RunRequest) (*RunResponse, error) {
		once.Do(func() { close(started) })
		<-release
		return &RunResponse{Time: 1}, nil
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postRun(t, s.Handler(), validRun) }()
	<-started

	// Shutdown concurrently with the in-flight run.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Wait for the drain flag to be visible, then verify new requests are
	// refused (posting earlier could enqueue behind the blocked worker and
	// stall for the full request timeout).
	deadline := time.Now().Add(2 * time.Second)
	for !s.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("Shutdown never set the draining flag")
		}
		time.Sleep(time.Millisecond)
	}
	if w := postRun(t, s.Handler(), `{"scheme": "multi", "d": 1, "n": 32, "p": 4, "m": 4, "steps": 8}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("run while draining = %d, want 503", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", w.Code)
	}

	close(release) // let the in-flight simulation finish
	if w := <-done; w.Code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", w.Code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestRecoverMiddleware(t *testing.T) {
	s := New(Config{})
	s.runScheme = func(_ context.Context, req RunRequest) (*RunResponse, error) { panic("boom") }
	w := postRun(t, s.Handler(), validRun)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", w.Code)
	}
	if eb := decodeError(t, w); eb.Error.Kind != "internal" {
		t.Fatalf("kind = %q, want internal", eb.Error.Kind)
	}
	// The daemon survives and serves the next request.
	s.runScheme = s.execute
	if w := postRun(t, s.Handler(), validRun); w.Code != http.StatusOK {
		t.Fatalf("request after recovered panic: status %d", w.Code)
	}
}

func TestBounds(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/bounds?d=1&n=4096&p=16&m=4", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d; body: %s", w.Code, w.Body)
	}
	var br BoundsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &br); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if br.A < 1 || br.Slowdown < br.Brent || br.OptimalS <= 0 {
		t.Fatalf("implausible bounds payload: %+v", br)
	}

	for _, q := range []string{"", "d=1&n=4096&p=16", "d=1&n=4096&p=16&m=x", "d=9&n=4096&p=16&m=4", "d=1&n=16&p=32&m=4"} {
		req := httptest.NewRequest(http.MethodGet, "/v1/bounds?"+q, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", q, w.Code)
		}
	}
}

func TestSchemes(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/schemes", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var list []SchemeInfo
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(list) != 18 {
		t.Fatalf("got %d schemes, want 18", len(list))
	}
}

// The Θ-model scheme serves through the same handler stack: the theta
// config field reaches the engine (slower run, echoed back), distinct
// Θ values never alias in the cache, and a sub-1 ratio is a 400 with a
// typed param error before any execution.
func TestRunThetaScheme(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	base := postRun(t, h, `{"scheme": "multi-theta", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16}`)
	if base.Code != http.StatusOK {
		t.Fatalf("theta default: status = %d; body: %s", base.Code, base.Body)
	}
	slow := postRun(t, h, `{"scheme": "multi-theta", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"theta": 3, "theta_seed": 7}}`)
	if slow.Code != http.StatusOK {
		t.Fatalf("theta=3: status = %d; body: %s", slow.Code, slow.Body)
	}
	rb, rs := decodeRun(t, base), decodeRun(t, slow)
	if rs.Theta != 3 {
		t.Errorf("theta echo = %v, want 3", rs.Theta)
	}
	if rs.Cached {
		t.Error("theta=3 run hit the cache of the theta-default run")
	}
	if rs.Time <= rb.Time {
		t.Errorf("theta=3 Time %v not above default %v", rs.Time, rb.Time)
	}
	bad := postRun(t, h, `{"scheme": "multi-theta", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"theta": 0.5}}`)
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("theta=0.5: status = %d, want 400; body: %s", bad.Code, bad.Body)
	}
	if eb := decodeError(t, bad); eb.Error.Param == nil || eb.Error.Param.Field != "theta" {
		t.Errorf("theta=0.5 error = %+v, want param error on theta", eb)
	}
	lockBad := postRun(t, h, `{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"theta": 2}}`)
	if lockBad.Code != http.StatusBadRequest {
		t.Fatalf("multi with theta: status = %d, want 400; body: %s", lockBad.Code, lockBad.Body)
	}
}

// The fault-masked scheme serves through the same handler stack: the
// faults config reaches the engine (echoed back with a fault report,
// slower run), a zero-density run reproduces the lockstep multi times
// bit-identically, distinct densities never alias in the cache, and a
// density outside [0, 1) is a 400 with a typed param error before any
// execution — as is a density handed to a fault-free scheme.
func TestRunFaultyScheme(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	lock := decodeRun(t, postRun(t, h, validRun))
	base := postRun(t, h, `{"scheme": "multi-faulty", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16}`)
	if base.Code != http.StatusOK {
		t.Fatalf("faults default: status = %d; body: %s", base.Code, base.Body)
	}
	rb := decodeRun(t, base)
	if rb.Time != lock.Time || rb.PrepTime != lock.PrepTime {
		t.Errorf("zero-fault multi-faulty (%v, %v) != multi (%v, %v)", rb.Time, rb.PrepTime, lock.Time, lock.PrepTime)
	}
	if rb.FaultReport == nil || rb.FaultReport.DeadProcs != 0 || rb.FaultReport.EffectiveP != 4 {
		t.Errorf("zero-fault report = %+v, want all-alive identity", rb.FaultReport)
	}
	faulty := postRun(t, h, `{"scheme": "multi-faulty", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"faults": 0.25, "fault_seed": 3}}`)
	if faulty.Code != http.StatusOK {
		t.Fatalf("faults=0.25: status = %d; body: %s", faulty.Code, faulty.Body)
	}
	rf := decodeRun(t, faulty)
	if rf.Faults != 0.25 {
		t.Errorf("faults echo = %v, want 0.25", rf.Faults)
	}
	if rf.Cached {
		t.Error("faults=0.25 run hit the cache of the zero-fault run")
	}
	if rf.Time <= rb.Time {
		t.Errorf("faults=0.25 Time %v not above fault-free %v", rf.Time, rb.Time)
	}
	if rf.FaultReport == nil || (rf.FaultReport.DeadProcs == 0 && rf.FaultReport.DeadCells == 0) {
		t.Errorf("faults=0.25 report = %+v, want sampled faults", rf.FaultReport)
	}
	bad := postRun(t, h, `{"scheme": "multi-faulty", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"faults": 1.5}}`)
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("faults=1.5: status = %d, want 400; body: %s", bad.Code, bad.Body)
	}
	if eb := decodeError(t, bad); eb.Error.Param == nil || eb.Error.Param.Field != "faults" {
		t.Errorf("faults=1.5 error = %+v, want param error on faults", eb)
	}
	lockBad := postRun(t, h, `{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"faults": 0.1}}`)
	if lockBad.Code != http.StatusBadRequest {
		t.Fatalf("multi with faults: status = %d, want 400; body: %s", lockBad.Code, lockBad.Body)
	}
}

// Chaos satellite: a fault-masked run cancelled mid-flight upholds the
// cancellation contract — the simulation stops at its next checkpoint,
// runs_cancelled counts it, the inflight gauge drains to zero, and the
// pool slot is released for the next request.
func TestRunFaultyCancelMidRun(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// A heavy fault-masked run: the d = 2 span calibrations plus the
	// 4096-node replay keep it in flight long enough to cancel.
	body := `{"scheme": "multi-faulty", "d": 2, "n": 4096, "p": 4, "m": 4, "steps": 256, "config": {"faults": 0.25, "fault_seed": 7}}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait until the run is actually in flight, then disconnect.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var inflight int
		fmt.Sscanf(expvarInt(t, srv.URL, "inflight_runs"), "%d", &inflight)
		if inflight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fault-masked run never showed up in inflight_runs")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	for {
		var cancelled, inflight int
		fmt.Sscanf(expvarInt(t, srv.URL, "runs_cancelled"), "%d", &cancelled)
		fmt.Sscanf(expvarInt(t, srv.URL, "inflight_runs"), "%d", &inflight)
		if cancelled >= 1 && inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancellation not reflected: runs_cancelled=%d inflight_runs=%d", cancelled, inflight)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The single worker slot must be free again: a fresh run completes.
	w := postRun(t, s.Handler(), validRun)
	if w.Code != http.StatusOK {
		t.Fatalf("run after cancelled fault run: status %d, body %s", w.Code, w.Body)
	}
	if got := s.pool.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after cancel = %d, want 0", got)
	}
}

// The analytic scheme serves through the same handler stack: no guest
// outputs exist, but the response only carries times and ledger, so a
// blocked-analytic run is a regular 200.
func TestRunAnalyticScheme(t *testing.T) {
	s := New(Config{})
	w := postRun(t, s.Handler(), `{"scheme": "blocked-analytic", "d": 1, "n": 1024, "p": 1, "m": 8, "steps": 64}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d; body: %s", w.Code, w.Body)
	}
	resp := decodeRun(t, w)
	if resp.Time <= 0 {
		t.Errorf("analytic run Time = %v, want > 0", resp.Time)
	}
	if resp.Ledger["compute"] != float64(1024*65) {
		t.Errorf("analytic compute ledger = %v, want %d", resp.Ledger["compute"], 1024*65)
	}
}

// MemoCapacity wires through to the process-wide store: negative
// disables, positive rebinds.
func TestConfigMemoCapacity(t *testing.T) {
	defer bsmp.SetMemoCapacity(bsmp.MemoCapacity())
	New(Config{MemoCapacity: -1})
	if c := bsmp.MemoCapacity(); c > 0 {
		t.Errorf("MemoCapacity(-1) left capacity %d, want disabled", c)
	}
	New(Config{MemoCapacity: 99})
	if c := bsmp.MemoCapacity(); c != 99 {
		t.Errorf("MemoCapacity(99) set capacity %d", c)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := New(Config{})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz = %d", w.Code)
	}

	postRun(t, s.Handler(), validRun)
	postRun(t, s.Handler(), validRun) // cache hit

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	var metrics struct {
		Bsmp map[string]json.RawMessage `json:"bsmp"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &metrics); err != nil {
		t.Fatalf("metrics not JSON: %v\nbody: %s", err, w.Body)
	}
	if !bytes.Equal(metrics.Bsmp["cache_hits"], []byte("1")) {
		t.Fatalf("cache_hits = %s, want 1; metrics: %s", metrics.Bsmp["cache_hits"], w.Body)
	}
	if !bytes.Equal(metrics.Bsmp["runs"], []byte("1")) {
		t.Fatalf("runs = %s, want 1", metrics.Bsmp["runs"])
	}
}
