package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull reports that the worker pool's bounded queue had no room
// for the job — the daemon's load-shedding signal, mapped to HTTP 429.
var ErrQueueFull = errors.New("serve: worker queue full")

// ErrDraining reports a submission after shutdown began, mapped to 503.
var ErrDraining = errors.New("serve: server draining")

// PanicError wraps a panic recovered inside a pool job. Jobs run on
// worker goroutines, outside the HTTP handler's recover middleware, so
// an unrecovered panic there would kill the whole process; the pool
// converts it to an error the handler maps to a structured 500.
type PanicError struct{ Value any }

func (e *PanicError) Error() string { return fmt.Sprintf("serve: panic in pool job: %v", e.Value) }

// Pool is a bounded worker pool: a fixed number of workers draining a
// fixed-depth queue. Simulations are CPU-bound and can run for seconds,
// so unbounded handler concurrency would let a burst of expensive
// queries grind every request to a halt; the pool caps concurrent
// simulation work at Workers, absorbs a short burst in the queue, and
// sheds anything beyond that immediately with ErrQueueFull.
type Pool struct {
	jobs chan poolJob
	wg   sync.WaitGroup

	// queued counts jobs enqueued and not yet settled — the queue-depth
	// gauge. A job settles when a worker dequeues it OR when its
	// requester gives up while it is still queued, whichever comes
	// first, so an abandoned job leaves the gauge the moment nobody is
	// waiting on it rather than when a worker eventually skips it.
	queued atomic.Int64

	mu          sync.Mutex
	closed      bool
	observeWait func(seconds float64)
}

type poolJob struct {
	ctx  context.Context
	fn   func(ctx context.Context) (any, error)
	done chan poolResult
	// submitted and observeWait feed the queue-wait histogram: the
	// observer is copied into the job under the pool mutex at submission
	// so SetQueueWaitObserver never races a worker.
	submitted   time.Time
	observeWait func(seconds float64)
	// queued points at the pool's depth gauge; settled guarantees the
	// decrement + wait observation happen exactly once even though both
	// the worker (at dequeue) and the requester (on cancellation while
	// queued) race to settle the job.
	queued  *atomic.Int64
	settled *atomic.Bool
}

// settle ends the job's queue residency exactly once: it decrements the
// depth gauge and observes the queue wait. Both the dequeuing worker and
// a requester abandoning a still-queued job call it; the CAS makes the
// second call a no-op.
func (j *poolJob) settle() {
	if !j.settled.CompareAndSwap(false, true) {
		return
	}
	j.queued.Add(-1)
	if j.observeWait != nil {
		j.observeWait(time.Since(j.submitted).Seconds())
	}
}

type poolResult struct {
	val any
	err error
}

// NewPool starts workers goroutines serving a queue of depth slots
// beyond the jobs actively running.
func NewPool(workers, depth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	p := &Pool{jobs: make(chan poolJob, depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// SetQueueWaitObserver registers f to receive, for every dequeued job,
// the seconds it spent waiting for a worker. The serving layer points
// this at its queue-wait histogram.
func (p *Pool) SetQueueWaitObserver(f func(seconds float64)) {
	p.mu.Lock()
	p.observeWait = f
	p.mu.Unlock()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		// Queue residency ends at dequeue — unless the requester already
		// settled the job when it gave up while queued.
		j.settle()
		// A job whose requester already gave up (deadline passed while
		// queued) is skipped rather than computed for nobody.
		if err := j.ctx.Err(); err != nil {
			j.done <- poolResult{err: err}
			continue
		}
		val, err := runJob(j.ctx, j.fn)
		j.done <- poolResult{val: val, err: err}
	}
}

func runJob(ctx context.Context, fn func(ctx context.Context) (any, error)) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r}
		}
	}()
	return fn(ctx)
}

// Do submits fn and waits for its result or ctx expiry. A full queue
// fails fast with ErrQueueFull; a closed pool with ErrDraining. The
// worker invokes fn with the request's ctx, so a context-aware job
// observes the caller's cancellation and stops at its next checkpoint —
// releasing the worker slot promptly instead of burning CPU for a
// requester that already gave up. When ctx expires, Do returns ctx.Err()
// immediately; the buffered done channel lets the worker move on as soon
// as the (now-cancelled) job unwinds.
func (p *Pool) Do(ctx context.Context, fn func(ctx context.Context) (any, error)) (any, error) {
	j := poolJob{
		ctx: ctx, fn: fn, done: make(chan poolResult, 1), submitted: time.Now(),
		queued: &p.queued, settled: new(atomic.Bool),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrDraining
	}
	j.observeWait = p.observeWait
	// The gauge covers the enqueue attempt itself so a worker dequeuing
	// (and settling) the job immediately can never drive it negative.
	p.queued.Add(1)
	select {
	case p.jobs <- j:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		p.queued.Add(-1)
		return nil, ErrQueueFull
	}
	select {
	case r := <-j.done:
		return r.val, r.err
	case <-ctx.Done():
		// The requester abandons a possibly-still-queued job. The job
		// keeps its channel slot until a worker drains it, but its queue
		// residency — depth gauge and wait sample — is accounted here,
		// exactly once, even if a worker dequeues it concurrently.
		j.settle()
		return nil, ctx.Err()
	}
}

// QueueDepth reports the number of jobs currently waiting for a worker.
// Abandoned jobs leave the count when their requester gives up, not when
// a worker eventually drains them.
func (p *Pool) QueueDepth() int64 { return p.queued.Load() }

// Close stops accepting jobs and blocks until every queued and running
// job has finished — the graceful-drain half of server shutdown.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
