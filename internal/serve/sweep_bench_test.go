package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkSweepStream measures one cold /v1/sweep round-trip over a
// small real-engine grid: expansion, dedup planning, pool-backed
// execution, and NDJSON streaming. A fresh server per iteration keeps
// the result LRU cold so the benchmark tracks the full sweep path, not
// cache echo (process-global kernel/memo caches warm up once and stay
// stable, as they do in a long-lived daemon).
func BenchmarkSweepStream(b *testing.B) {
	const body = `{"schemes": ["multi"], "d": 1, "n": 64, "p": [2, 4], "m": [4, 8], "steps": 16}`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(Config{})
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", w.Code, w.Body)
		}
		if !strings.Contains(w.Body.String(), `"done":true`) {
			b.Fatalf("sweep did not complete: %s", w.Body)
		}
	}
}
