package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchRunRegistry measures one cold /v1/run round-trip — validation,
// pool execution, the real multi-scheme engine, response encoding —
// with the run registry either live (recording every execution, record
// tracer attached) or disabled. The paired Off/On results bound the
// flight recorder's overhead on the serving path; the engine dominates,
// so the pair should be within run-to-run jitter of each other.
func benchRunRegistry(b *testing.B, registryCap int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(Config{RegistryCapacity: registryCap})
		req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(validRun))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status = %d: %s", w.Code, w.Body)
		}
	}
}

func BenchmarkRunRegistryOff(b *testing.B) { benchRunRegistry(b, -1) }
func BenchmarkRunRegistryOn(b *testing.B)  { benchRunRegistry(b, 0) }

// BenchmarkRunsListing measures GET /v1/runs over a populated registry:
// 64 completed records snapshotted, filtered and paginated per request.
func BenchmarkRunsListing(b *testing.B) {
	s := New(Config{})
	s.runScheme = func(ctx context.Context, req RunRequest) (*RunResponse, error) {
		return &RunResponse{Scheme: req.Scheme, N: req.N, Time: float64(req.N)}, nil
	}
	for n := 0; n < 64; n++ {
		body := fmt.Sprintf(`{"scheme": "multi", "d": 1, "n": %d, "p": 4, "m": 4, "steps": 16}`, 64+4*n)
		req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("seed run status = %d: %s", w.Code, w.Body)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, "/v1/runs?state=done&limit=50", nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("listing status = %d", w.Code)
		}
	}
}
