package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bsmp"
	"bsmp/internal/cost"
	"bsmp/internal/obs"

	"encoding/json"
)

// RunRequest is the POST /v1/run body: a full scheme-registry tuple plus
// the guest selection and per-run SchemeConfig knobs.
type RunRequest struct {
	Scheme string `json:"scheme"`
	D      int    `json:"d"`
	N      int    `json:"n"`
	P      int    `json:"p"`
	M      int    `json:"m"`
	Steps  int    `json:"steps"`
	// Guest selects the workload: "mixca" (default, any m) or "rule90".
	Guest string `json:"guest,omitempty"`
	// Seed perturbs the guest's initial condition.
	Seed   uint64    `json:"seed,omitempty"`
	Config RunConfig `json:"config,omitempty"`
	// Trace requests the span timeline inline in the response. Set via
	// the ?trace=1 query parameter, not the body: a traced response must
	// come from a real execution, so the flag also bypasses the result
	// cache (but still coalesces with identical concurrent traced
	// queries).
	Trace bool `json:"-"`
}

// RunConfig mirrors bsmp.SchemeConfig field by field for the JSON
// surface.
type RunConfig struct {
	Leaf         int  `json:"leaf,omitempty"`
	StripWidth   int  `json:"strip_width,omitempty"`
	SpanOverride int  `json:"span_override,omitempty"`
	NoRearrange  bool `json:"no_rearrange,omitempty"`
	NoCooperate  bool `json:"no_cooperate,omitempty"`
	// Theta is the Θ-model delay ratio for the multi-theta scheme:
	// message delays are drawn in [distance, Θ·distance]. Must be a
	// finite value >= 1; 0 leaves the scheme default (Θ = 1).
	Theta float64 `json:"theta,omitempty"`
	// ThetaSeed selects the deterministic delay draw sequence.
	ThetaSeed uint64 `json:"theta_seed,omitempty"`
	// Faults is the static fault density for the multi-faulty scheme:
	// the fraction of processors and memory cells sampled dead. Must lie
	// in [0, 1); 0 means fault-free (and is the only value the
	// fault-free schemes accept).
	Faults float64 `json:"faults,omitempty"`
	// FaultSeed selects the deterministic fault sample.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
}

// schemeConfig maps the JSON config onto the registry's SchemeConfig —
// the single translation used by both validation and execution, so the
// daemon can never validate one tuple and run another.
func (req RunRequest) schemeConfig() bsmp.SchemeConfig {
	return bsmp.SchemeConfig{
		Leaf: req.Config.Leaf,
		Multi: bsmp.MultiOptions{
			StripWidth:   req.Config.StripWidth,
			SpanOverride: req.Config.SpanOverride,
			NoRearrange:  req.Config.NoRearrange,
			NoCooperate:  req.Config.NoCooperate,
			Theta:        req.Config.Theta,
			ThetaSeed:    req.Config.ThetaSeed,
			Faults:       req.Config.Faults,
			FaultSeed:    req.Config.FaultSeed,
		},
	}
}

// PhaseTime is one entry of the per-phase makespan attribution.
type PhaseTime struct {
	Name string  `json:"name"`
	Time float64 `json:"time"`
}

// RunResponse reports a simulation: the echoed tuple, the virtual-time
// accounting, and the serving metadata (cache/coalescing provenance).
type RunResponse struct {
	Scheme string `json:"scheme"`
	D      int    `json:"d"`
	N      int    `json:"n"`
	P      int    `json:"p"`
	M      int    `json:"m"`
	Steps  int    `json:"steps"`
	Guest  string `json:"guest"`
	Seed   uint64 `json:"seed"`
	// Theta echoes the requested Θ-model delay ratio (0 when the run
	// used the lockstep default).
	Theta float64 `json:"theta,omitempty"`
	// Faults echoes the requested fault density (0 = fault-free), and
	// FaultReport carries the sampled mask's accounting for a
	// multi-faulty run.
	Faults      float64           `json:"faults,omitempty"`
	FaultReport *bsmp.FaultReport `json:"fault_report,omitempty"`

	// Time is the host's elapsed virtual time; PrepTime the one-time
	// rearrangement cost (multiprocessor schemes).
	Time     float64 `json:"time"`
	PrepTime float64 `json:"prep_time,omitempty"`
	// Slowdown is Time over the analytic guest time is not measured
	// here; Bound is Theorem 1's closed-form (n/p)·A(n, m, p) for
	// context.
	Bound float64 `json:"theorem1_bound"`

	StripWidth    int         `json:"strip_width,omitempty"`
	Span          int         `json:"span,omitempty"`
	Regime1Levels int         `json:"regime1_levels,omitempty"`
	Domains       int         `json:"domains,omitempty"`
	Phases        []PhaseTime `json:"phases,omitempty"`
	// Ledger attributes Time by cost category.
	Ledger map[string]float64 `json:"ledger"`

	// RunID names this execution's record in the run registry; join it
	// against GET /v1/runs/{id} for the full lifecycle record (queue and
	// wall timings, per-phase spans, progress counters). Cached responses
	// carry the ORIGINAL execution's ID — the record that actually ran.
	// Empty when the registry is disabled.
	RunID string `json:"run_id,omitempty"`

	// Cached reports an LRU hit; Coalesced that this response shares a
	// concurrent identical query's execution.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced,omitempty"`

	// Trace is the run's span timeline (?trace=1 only): nested spans
	// with wall durations and virtual-time attributes.
	Trace []*bsmp.Span `json:"trace,omitempty"`

	// traceEpoch is the row tracer's construction time (zero point of
	// Trace's StartNS offsets); the sweep endpoint uses it to rebase
	// per-row timelines under one sweep root. Not serialized.
	traceEpoch time.Time
}

// BoundsResponse is the closed-form Theorem 1 payload for /v1/bounds.
type BoundsResponse struct {
	D int `json:"d"`
	N int `json:"n"`
	P int `json:"p"`
	M int `json:"m"`

	A          float64 `json:"a"`
	Slowdown   float64 `json:"slowdown"`
	Brent      float64 `json:"brent"`
	NaiveBound float64 `json:"naive_bound"`
	OptimalS   float64 `json:"optimal_s"`
	// Boundaries are the three m-range boundaries of Theorem 1.
	Boundaries [3]float64 `json:"range_boundaries"`
}

// SchemeInfo is one /v1/schemes registry entry.
type SchemeInfo struct {
	Name        string `json:"name"`
	D           int    `json:"d"`
	Multiproc   bool   `json:"multiproc"`
	Description string `json:"description"`
}

// maxRunBody bounds the /v1/run request body; the whole tuple fits in a
// few hundred bytes.
const maxRunBody = 1 << 16

// handleRun serves POST /v1/run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method", "use POST", nil)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", "server is shutting down", nil)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRunBody))
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "body", fmt.Sprintf("malformed request body: %v", err), nil)
		return
	}
	if req.Guest == "" {
		req.Guest = "mixca"
	}
	if req.Guest != "mixca" && req.Guest != "rule90" {
		writeError(w, http.StatusBadRequest, "param", "unknown guest",
			&bsmp.ParamError{Scheme: req.Scheme, Field: "guest",
				Constraint: `must be "mixca" or "rule90"`, Got: req.Guest})
		return
	}
	if pe := s.checkCaps(req); pe != nil {
		writeError(w, http.StatusBadRequest, "param", pe.Error(), pe)
		return
	}
	if err := bsmp.ValidateParams(req.Scheme, req.D, req.N, req.P, req.M, req.Steps, req.schemeConfig()); err != nil {
		var pe *bsmp.ParamError
		if !errors.As(err, &pe) {
			// Registry lookup failure: surface it on the scheme field.
			pe = &bsmp.ParamError{Scheme: req.Scheme, Field: "scheme",
				Constraint: "must be a registered (scheme, d) pair", Got: req.Scheme}
		}
		writeError(w, http.StatusBadRequest, "param", err.Error(), pe)
		return
	}

	req.Trace = r.URL.Query().Get("trace") == "1"

	// Canonicalize AFTER validation: "theta": 1 spelled out and theta
	// omitted are the same lockstep-equivalent simulation (and an unused
	// theta_seed is inert), so they must share one cache entry and one
	// execution instead of duplicating both.
	req = req.canonical()
	key := cacheKey(req)
	if req.Trace {
		// Traced runs bypass the cache in both directions — the timeline
		// must come from a real execution — but share a distinct flight
		// key so identical concurrent traced queries still coalesce.
		key += "|trace"
		s.vars.Add("traced_runs", 1)
	} else {
		if v, ok := s.cache.Get(key); ok {
			s.vars.Add("cache_hits", 1)
			resp := *v.(*RunResponse)
			resp.Cached = true
			// Attribute the hit to the execution whose result this is; the
			// response keeps that original run's ID, so the client can still
			// join the row to the record that actually ran.
			s.registry.Get(resp.RunID).AddCacheHit()
			writeJSON(w, http.StatusOK, resp)
			return
		}
		s.vars.Add("cache_misses", 1)
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	// Tie the request to the server's lifetime: a hard shutdown cancels
	// every in-flight simulation through the same context chain.
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	v, err, shared := s.flight.Do(ctx, key, func() (any, error) {
		// One registry record per execution, created inside the flight
		// closure: coalesced followers share the leader's record.
		rec := s.beginRun(req, "run")
		v, err := s.pool.Do(ctx, func(jctx context.Context) (any, error) {
			rec.h.Running()
			resp, err := s.runScheme(rec.attach(jctx), req)
			if err == nil {
				s.vars.Add("runs", 1)
				resp.RunID = rec.h.ID()
				if !req.Trace {
					s.cache.Add(key, resp)
				}
			}
			return resp, err
		})
		resp, _ := v.(*RunResponse)
		s.finishRun(rec, resp, err)
		return v, err
	})
	if shared {
		s.vars.Add("coalesced", 1)
	}
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	resp := *v.(*RunResponse)
	resp.Coalesced = shared
	writeJSON(w, http.StatusOK, resp)
}

// classifyRunError maps an execution failure onto the HTTP surface — the
// status code and structured error detail — and counts it. Shared by the
// single-run handler (which writes it as the whole response) and the
// sweep handler (which embeds it in the failing row).
func (s *Server) classifyRunError(err error) (int, ErrorDetail) {
	var pe *bsmp.ParamError
	var pz *PanicError
	switch {
	case errors.As(err, &pz):
		s.vars.Add("panics_recovered", 1)
		return http.StatusInternalServerError, ErrorDetail{Kind: "internal", Message: err.Error()}
	case errors.Is(err, ErrQueueFull):
		s.vars.Add("queue_rejects", 1)
		return http.StatusTooManyRequests, ErrorDetail{Kind: "queue_full", Message: err.Error()}
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, ErrorDetail{Kind: "draining", Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		s.vars.Add("deadline_timeouts", 1)
		return http.StatusGatewayTimeout, ErrorDetail{Kind: "deadline", Message: "request deadline exceeded"}
	case errors.Is(err, context.Canceled):
		// A cancelled context is the caller abandoning the request (client
		// disconnect, sweep abort, shutdown hard-stop), not a deadline:
		// keep it out of deadline_timeouts — a disconnected sweep would
		// otherwise inflate that counter once per in-flight grid point.
		// Cancellation is already counted where it is detected
		// (runs_cancelled in execute, sweeps_cancelled per sweep). The
		// status follows the nginx 499 convention; the peer is usually
		// gone before it is written.
		return 499, ErrorDetail{Kind: "cancelled", Message: "request cancelled"}
	case errors.As(err, &pe):
		return http.StatusBadRequest, ErrorDetail{Kind: "param", Message: err.Error(), Param: pe}
	default:
		// Remaining failures are tuple/config mismatches reported by the
		// scheme itself (e.g. a strip width that does not divide n/p).
		return http.StatusBadRequest, ErrorDetail{Kind: "param", Message: err.Error()}
	}
}

// writeRunError maps an execution failure onto the HTTP surface.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	status, detail := s.classifyRunError(err)
	writeError(w, status, detail.Kind, detail.Message, detail.Param)
}

// checkCaps enforces the server-side size limits — valid paper geometry
// can still be too big to simulate on request-serving budgets.
func (s *Server) checkCaps(req RunRequest) *bsmp.ParamError {
	switch {
	case req.N > s.cfg.MaxN:
		return &bsmp.ParamError{Scheme: req.Scheme, Field: "n",
			Constraint: fmt.Sprintf("exceeds server limit %d", s.cfg.MaxN), Got: req.N}
	case req.M > s.cfg.MaxM:
		return &bsmp.ParamError{Scheme: req.Scheme, Field: "m",
			Constraint: fmt.Sprintf("exceeds server limit %d", s.cfg.MaxM), Got: req.M}
	case req.Steps > s.cfg.MaxSteps:
		return &bsmp.ParamError{Scheme: req.Scheme, Field: "steps",
			Constraint: fmt.Sprintf("exceeds server limit %d", s.cfg.MaxSteps), Got: req.Steps}
	}
	return nil
}

// canonical maps every spelling of the same simulation onto one request
// value, so the cache key (and flight key) below cannot split
// semantically identical requests into distinct entries. Applied AFTER
// validation — validation judges the request as written (lockstep
// schemes still reject an explicit theta), canonicalization only
// collapses spellings the engines treat identically:
//
//   - guest "" is the documented mixca default;
//   - theta 1 is exactly the lockstep default the multi-theta scheme
//     normalizes an unset (0) theta to, bit-identical by the Θ = 1
//     golden tests;
//   - theta_seed selects delay draws only when a Θ-model is active
//     (theta != 0 after the rule above), so under lockstep it is inert
//     and resets to 0;
//   - fault_seed selects fault draws only when the density is nonzero
//     (a zero-density mask kills nothing for every seed, bit-identical
//     by the fault golden tests), so it resets to 0 with faults 0.
func (req RunRequest) canonical() RunRequest {
	if req.Guest == "" {
		req.Guest = "mixca"
	}
	if req.Config.Theta == 1 {
		req.Config.Theta = 0
	}
	if req.Config.Theta == 0 {
		req.Config.ThetaSeed = 0
	}
	if req.Config.Faults == 0 {
		req.Config.FaultSeed = 0
	}
	return req
}

// cacheKey serializes the full request tuple — scheme, dimension, sizes,
// guest, seed, and every SchemeConfig knob — so distinct runs never
// alias. Callers key canonical() requests: the tuple identifies the
// simulation, not its JSON spelling.
func cacheKey(req RunRequest) string {
	return fmt.Sprintf("%s|d=%d|n=%d|p=%d|m=%d|steps=%d|g=%s|seed=%d|leaf=%d|sw=%d|so=%d|nr=%t|nc=%t|th=%g|ths=%d|fl=%g|fls=%d",
		req.Scheme, req.D, req.N, req.P, req.M, req.Steps, req.Guest, req.Seed,
		req.Config.Leaf, req.Config.StripWidth, req.Config.SpanOverride,
		req.Config.NoRearrange, req.Config.NoCooperate,
		req.Config.Theta, req.Config.ThetaSeed,
		req.Config.Faults, req.Config.FaultSeed)
}

// buildGuest constructs the requested workload with the grid geometry d
// requires (n's shape is already validated).
func buildGuest(req RunRequest) bsmp.Program {
	var g interface {
		InitAt(x, y int, mem []bsmp.Word) bsmp.Word
		Address(node, step, memSize int) int
		Step2(node, step int, cell bsmp.Word, prev []bsmp.Word) (bsmp.Word, bsmp.Word)
	}
	if req.Guest == "rule90" {
		g = bsmp.Rule90{Seed: req.Seed}
	} else {
		g = bsmp.MixCA{Seed: req.Seed}
	}
	side := 0
	switch req.D {
	case 2:
		for side*side < req.N {
			side++
		}
		return bsmp.AsNetwork{G: g, Side: side}
	case 3:
		for side*side*side < req.N {
			side++
		}
		return bsmp.AsNetwork{G: g, CubeSide: side}
	}
	return bsmp.AsNetwork{G: g}
}

// ledgerCategories is the cost-category order reported in responses.
var ledgerCategories = []cost.Category{cost.Compute, cost.Access, cost.Transfer, cost.Message, cost.Sync}

// registrySpanCap bounds the span tracer attached to untraced runs for
// the flight recorder: enough for the scheme/calibrate/schedule/phase
// skeleton every record wants, without the per-domain span flood a
// deep blocked recursion emits (?trace=1 runs keep the full default
// cap).
const registrySpanCap = 256

// runRecord bundles one execution's registry handle with its telemetry
// sources (progress meter + span tracer) from admission to the
// terminal transition.
type runRecord struct {
	h    *obs.RunHandle
	prog *bsmp.Progress
	tr   *bsmp.Tracer
}

// beginRun admits one execution into the run registry: a queued record
// under a fresh run ID, with read-only samplers over the run's
// Progress atomics and Tracer span stack — the record (and the SSE
// stream polling it) observes the simulation without ever touching a
// cost meter, so registered runs stay bit-identical to bare ones.
// With the registry disabled the record handle is nil (all its methods
// no-ops) but the progress meter still feeds the inflight gauges.
func (s *Server) beginRun(req RunRequest, source string) *runRecord {
	rec := &runRecord{prog: new(bsmp.Progress)}
	if req.Trace {
		rec.tr = bsmp.NewTracer()
	} else if s.registry != nil {
		rec.tr = obs.NewTracerCap(registrySpanCap)
	}
	if s.registry != nil {
		id := fmt.Sprintf("r-%s-%d", s.bootID, s.runSeq.Add(1))
		// req is the canonical tuple; Trace is json:"-" so the stored
		// params serialize exactly like the request body.
		rec.h = s.registry.Begin(id, source, req.Scheme, req)
		prog, tr := rec.prog, rec.tr
		rec.h.SetSamplers(
			func() (int64, int64) { return prog.Vertices.Load(), prog.Phases.Load() },
			tr.Current,
		)
	}
	return rec
}

// attach injects the record's telemetry into the job context; execute
// picks both up instead of allocating its own.
func (rec *runRecord) attach(ctx context.Context) context.Context {
	ctx = bsmp.WithProgress(ctx, rec.prog)
	if rec.tr != nil {
		ctx = bsmp.WithTracer(ctx, rec.tr)
	}
	return ctx
}

// finishRun lands the execution's terminal record: lifecycle state from
// the error classification, virtual times, per-phase attribution with
// wall durations joined from the span timeline, the cost ledger, and
// the span tree itself for the full-record endpoint.
func (s *Server) finishRun(rec *runRecord, resp *RunResponse, err error) {
	if rec == nil || rec.h == nil {
		return
	}
	var state string
	switch {
	case err == nil:
		state = obs.RunDone
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		state = obs.RunShed
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		state = obs.RunCancelled
	default:
		state = obs.RunFailed
	}
	roots := rec.tr.Roots()
	rec.h.Finish(state, func(info *obs.RunInfo) {
		if err != nil {
			info.Error = err.Error()
		}
		info.Trace = roots
		if resp == nil {
			return
		}
		info.Time = resp.Time
		info.PrepTime = resp.PrepTime
		info.Ledger = resp.Ledger
		info.PhaseTimes = phaseSummaries(resp.Phases, roots)
	})
}

// phaseSummaries joins the response's virtual-time phase attribution
// with wall durations summed from the matching "phase:" spans.
func phaseSummaries(phases []PhaseTime, roots []*bsmp.Span) []obs.PhaseSummary {
	wall := make(map[string]float64)
	var walk func(sp *bsmp.Span)
	walk = func(sp *bsmp.Span) {
		if name, ok := strings.CutPrefix(sp.Name, "phase:"); ok {
			wall[name] += float64(sp.DurNS) / 1e6
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	out := make([]obs.PhaseSummary, 0, len(phases))
	for _, ph := range phases {
		out = append(out, obs.PhaseSummary{Name: ph.Name, VTime: ph.Time, WallMS: wall[ph.Name]})
	}
	return out
}

// execute runs a validated request through the scheme registry — the
// production runScheme implementation. The simulation runs under ctx
// with a registered Progress, so cancelling ctx (client disconnect,
// deadline, hard shutdown) stops it at its next checkpoint and /metrics
// sees its live step counters while it runs.
func (s *Server) execute(ctx context.Context, req RunRequest) (*RunResponse, error) {
	cfg := req.schemeConfig()
	// The run-registry wrapper (beginRun.attach) usually supplies the
	// progress meter and tracer so the record samples the same telemetry
	// the engines feed; allocate them here only when execute is driven
	// directly (registry disabled, or tests calling runScheme).
	prog := bsmp.ProgressFrom(ctx)
	if prog == nil {
		prog = new(bsmp.Progress)
		ctx = bsmp.WithProgress(ctx, prog)
	}
	tr := bsmp.TracerFrom(ctx)
	if tr == nil && req.Trace {
		tr = bsmp.NewTracer()
		ctx = bsmp.WithTracer(ctx, tr)
	}
	id := RequestIDFrom(ctx)
	s.log.Info("run start", "id", id, "scheme", req.Scheme, "d", req.D,
		"n", req.N, "p", req.P, "m", req.M, "steps", req.Steps,
		"theta", req.Config.Theta, "traced", req.Trace)
	s.inflightMu.Lock()
	s.inflight[prog] = struct{}{}
	s.inflightMu.Unlock()
	defer func() {
		s.inflightMu.Lock()
		delete(s.inflight, prog)
		s.inflightMu.Unlock()
	}()
	start := time.Now()
	res, err := bsmp.RunSchemeContext(ctx, req.Scheme, req.D, req.N, req.P, req.M, req.Steps, buildGuest(req), cfg)
	elapsed := time.Since(start)
	if err != nil {
		if ctx.Err() != nil {
			s.vars.Add("runs_cancelled", 1)
		}
		s.log.Warn("run failed", "id", id, "scheme", req.Scheme,
			"dur_ms", float64(elapsed.Nanoseconds())/1e6, "err", err.Error())
		return nil, err
	}
	s.latHist.Observe(elapsed.Seconds())
	if cfg.Multi.Theta != 0 {
		// Θ-model runs get their own latency series: the event queue has a
		// different cost profile than the lockstep barrier, and mixing the
		// two in one histogram would hide a regression in either.
		s.thetaHist.Observe(elapsed.Seconds())
	}
	s.sizeHist.Observe(float64(req.N) * float64(req.Steps))
	s.log.Info("run done", "id", id, "scheme", req.Scheme,
		"dur_ms", float64(elapsed.Nanoseconds())/1e6,
		"time", float64(res.Time), "prep_time", float64(res.PrepTime))
	ledger := make(map[string]float64, len(ledgerCategories))
	for _, cat := range ledgerCategories {
		if t := res.Ledger.Total(cat); t != 0 {
			ledger[cat.String()] = t
		}
	}
	var phases []PhaseTime
	for _, ph := range res.Phases {
		phases = append(phases, PhaseTime{Name: ph.Name, Time: ph.Time})
	}
	resp := &RunResponse{
		Scheme: req.Scheme, D: req.D, N: req.N, P: req.P, M: req.M, Steps: req.Steps,
		Guest: req.Guest, Seed: req.Seed, Theta: req.Config.Theta,
		Faults: req.Config.Faults, FaultReport: res.Faults,
		Time:       res.Time,
		PrepTime:   res.PrepTime,
		Bound:      bsmp.Slowdown(req.D, req.N, req.M, req.P),
		StripWidth: res.StripWidth, Span: res.Span,
		Regime1Levels: res.Regime1Levels, Domains: res.Domains,
		Phases: phases, Ledger: ledger,
	}
	// The inline timeline stays opt-in: untraced runs may still carry a
	// registry tracer for the flight recorder, but their responses (and
	// cache entries) must not grow a span tree nobody asked for.
	if req.Trace && tr != nil {
		resp.Trace = tr.Roots()
		resp.traceEpoch = tr.Epoch()
	}
	return resp, nil
}

// handleBounds serves GET /v1/bounds?d=&n=&p=&m= — the closed-form
// Theorem 1 quantities, no simulation.
func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method", "use GET", nil)
		return
	}
	q := r.URL.Query()
	get := func(name string) (int, *bsmp.ParamError) {
		raw := q.Get(name)
		if raw == "" {
			return 0, &bsmp.ParamError{Field: name, Constraint: "query parameter required", Got: raw}
		}
		v, err := strconv.Atoi(raw)
		if err != nil {
			return 0, &bsmp.ParamError{Field: name, Constraint: "must be an integer", Got: raw}
		}
		return v, nil
	}
	var d, n, p, m int
	for _, f := range []struct {
		name string
		dst  *int
	}{{"d", &d}, {"n", &n}, {"p", &p}, {"m", &m}} {
		v, pe := get(f.name)
		if pe != nil {
			writeError(w, http.StatusBadRequest, "param", pe.Error(), pe)
			return
		}
		*f.dst = v
	}
	var pe *bsmp.ParamError
	switch {
	case d < 1 || d > 3:
		pe = &bsmp.ParamError{Field: "d", Constraint: "mesh dimension must be 1, 2 or 3", Got: d}
	case n < 1:
		pe = &bsmp.ParamError{Field: "n", Constraint: "machine volume must be >= 1", Got: n}
	case p < 1:
		pe = &bsmp.ParamError{Field: "p", Constraint: "host processor count must be >= 1", Got: p}
	case p > n:
		pe = &bsmp.ParamError{Field: "p", Constraint: fmt.Sprintf("must satisfy p <= n = %d", n), Got: p}
	case m < 1:
		pe = &bsmp.ParamError{Field: "m", Constraint: "memory density must be >= 1", Got: m}
	}
	if pe != nil {
		writeError(w, http.StatusBadRequest, "param", pe.Error(), pe)
		return
	}
	b12, b23, b34 := bsmp.Boundaries(d, n, p)
	writeJSON(w, http.StatusOK, BoundsResponse{
		D: d, N: n, P: p, M: m,
		A:          bsmp.A(d, n, m, p),
		Slowdown:   bsmp.Slowdown(d, n, m, p),
		Brent:      bsmp.BrentSlowdown(n, p),
		NaiveBound: bsmp.NaiveSlowdownBound(d, n, p),
		OptimalS:   bsmp.OptimalS(n, m, p),
		Boundaries: [3]float64{b12, b23, b34},
	})
}

// handleSchemes serves GET /v1/schemes: registry introspection.
func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method", "use GET", nil)
		return
	}
	var out []SchemeInfo
	for _, sc := range bsmp.Schemes() {
		out = append(out, SchemeInfo{
			Name: sc.Name, D: sc.D, Multiproc: sc.Multiproc, Description: sc.Description,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz reports liveness; during graceful shutdown it flips to
// 503 so load balancers stop routing here while in-flight work drains.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the expvar map as JSON under the "bsmp" key.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"bsmp\": %s}\n", s.vars.String())
}
