package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// postSweep issues a /v1/sweep request against the in-memory handler and
// returns the recorder (which implements http.Flusher, so streaming
// works end to end).
func postSweep(t *testing.T, h http.Handler, body, query string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/sweep"+query, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// decodeSweep splits an NDJSON sweep response into its data rows and the
// terminal summary line, checking every line is valid JSON.
func decodeSweep(t *testing.T, body string) ([]SweepRow, SweepSummary) {
	t.Helper()
	var rows []SweepRow
	var sum SweepSummary
	sawSummary := false
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if sawSummary {
			t.Fatalf("line after summary: %s", line)
		}
		if strings.Contains(line, `"done"`) {
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				t.Fatalf("summary line not valid JSON: %v\n%s", err, line)
			}
			sawSummary = true
			continue
		}
		var row SweepRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row not valid JSON: %v\n%s", err, line)
		}
		rows = append(rows, row)
	}
	if !sawSummary {
		sum.Done = false
	}
	return rows, sum
}

// A sweep over a real grid streams one row per point, every virtual time
// bit-identical to the same tuple's /v1/run answer from an independent
// server (same process-global kernel/memo caches, but a separate result
// LRU — so the equality checks real execution determinism, not cache
// echo).
func TestSweepStreamsGrid(t *testing.T) {
	s := New(Config{})
	body := `{"schemes": ["multi"], "d": 1, "n": 64, "p": [2, 4], "m": [4, 8], "steps": 16}`
	w := postSweep(t, s.Handler(), body, "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d; body: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	rows, sum := decodeSweep(t, w.Body.String())
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	if !sum.Done || sum.Points != 4 || sum.Rows != 4 || sum.Errors != 0 {
		t.Fatalf("summary = %+v, want done with 4/4 rows", sum)
	}
	seen := make(map[int]*RunResponse)
	for _, row := range rows {
		if row.Error != nil {
			t.Fatalf("row %d errored: %+v", row.Index, row.Error)
		}
		if row.Result == nil || row.Result.Time <= 0 {
			t.Fatalf("row %d has no positive time: %+v", row.Index, row.Result)
		}
		seen[row.Index] = row.Result
	}
	// Expansion order is deterministic: index 1 is (n=64, p=2, m=8),
	// index 2 is (n=64, p=4, m=4).
	if seen[1].P != 2 || seen[1].M != 8 || seen[2].P != 4 || seen[2].M != 4 {
		t.Fatalf("expansion order wrong: idx1 p=%d m=%d, idx2 p=%d m=%d", seen[1].P, seen[1].M, seen[2].P, seen[2].M)
	}
	// Bit-identical golden check against single runs on a fresh server.
	s2 := New(Config{})
	for idx, want := range seen {
		body := fmt.Sprintf(`{"scheme": "multi", "d": 1, "n": 64, "p": %d, "m": %d, "steps": 16}`, want.P, want.M)
		got := decodeRun(t, postRun(t, s2.Handler(), body))
		if got.Time != want.Time || got.PrepTime != want.PrepTime {
			t.Fatalf("row %d (p=%d m=%d): sweep time %v/%v != run time %v/%v",
				idx, want.P, want.M, want.Time, want.PrepTime, got.Time, got.PrepTime)
		}
	}
}

// Grid points whose canonical tuples coincide run once and stream as
// deduped copies; a repeated sweep is served entirely from the result
// cache with zero new executions.
func TestSweepDedupAndCacheReuse(t *testing.T) {
	s := New(Config{})
	var calls atomic.Int64
	s.runScheme = func(_ context.Context, req RunRequest) (*RunResponse, error) {
		calls.Add(1)
		return &RunResponse{Scheme: req.Scheme, P: req.P, Time: float64(req.P)}, nil
	}
	// n appears twice and theta [1] duplicates the lockstep default
	// after canonicalization: 2 (n) × 2 (p) × 1 × 1 × 1 (theta) = 4
	// points but only 2 distinct tuples.
	body := `{"schemes": ["multi-theta"], "d": 1, "n": [64, 64], "p": [4, 8], "m": 4, "steps": 16, "theta": [1]}`
	w := postSweep(t, s.Handler(), body, "")
	rows, sum := decodeSweep(t, w.Body.String())
	if len(rows) != 4 || !sum.Done {
		t.Fatalf("rows = %d, done = %v; want 4, true", len(rows), sum.Done)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("executions = %d, want 2 (intra-grid dedup)", got)
	}
	if sum.Deduped != 2 {
		t.Fatalf("summary deduped = %d, want 2", sum.Deduped)
	}
	deduped := 0
	for _, row := range rows {
		if row.Deduped {
			deduped++
			if row.Result == nil {
				t.Fatalf("deduped row %d carries no result", row.Index)
			}
		}
	}
	if deduped != 2 {
		t.Fatalf("deduped rows = %d, want 2", deduped)
	}

	// The repeat sweep hits the LRU for every point.
	w = postSweep(t, s.Handler(), body, "")
	rows, sum = decodeSweep(t, w.Body.String())
	if len(rows) != 4 || !sum.Done {
		t.Fatalf("repeat rows = %d, done = %v; want 4, true", len(rows), sum.Done)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("executions after repeat = %d, want still 2", got)
	}
	if sum.CacheHits == 0 {
		t.Fatalf("repeat sweep summary reports no cache hits: %+v", sum)
	}
	for _, row := range rows {
		if !row.Deduped && (row.Result == nil || !row.Result.Cached) {
			t.Fatalf("repeat row %d not served from cache: %+v", row.Index, row.Result)
		}
	}
	// A sweep and a plain /v1/run share one cache: the single-run
	// spelling of a swept tuple is a hit too.
	got := decodeRun(t, postRun(t, s.Handler(), `{"scheme": "multi-theta", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16, "config": {"theta": 1}}`))
	if !got.Cached {
		t.Fatal("swept tuple not visible to /v1/run through the shared cache")
	}
}

func TestSweepMalformedGrid(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		name, body string
		kind       string
		field      string
	}{
		{"no scheme", `{"d": 1, "n": 64, "p": 4, "m": 4, "steps": 16}`, "param", "schemes"},
		{"empty axis", `{"scheme": "multi", "d": 1, "n": 64, "p": 4, "m": 4, "steps": []}`, "param", "steps"},
		{"invalid point", `{"scheme": "multi", "d": 1, "n": 64, "p": [4, 7], "m": 4, "steps": 16}`, "param", "p"},
		{"grid too large", `{"scheme": "multi", "d": 1, "n": {"from": 2, "to": 65536, "mul": 2}, "p": 1, "m": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16], "steps": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16], "theta": [1,2]}`, "param", "grid"},
		// Four maximal 65536-value range axes multiply to 65536^4 = 2^64,
		// which wraps to exactly 0 in a naive int product and would slip
		// past the MaxSweepPoints guard into an ~1.8e19-iteration
		// expansion; the running-product check must reject it up front.
		{"grid size overflows int", `{"scheme": "multi", "d": 1, "n": {"from": 1, "to": 65536, "add": 1}, "p": {"from": 1, "to": 65536, "add": 1}, "m": {"from": 1, "to": 65536, "add": 1}, "steps": {"from": 1, "to": 65536, "add": 1}, "skip_invalid": true}`, "param", "grid"},
		{"bad axis syntax", `{"scheme": "multi", "d": 1, "n": "sixtyfour", "p": 4, "m": 4, "steps": 16}`, "body", ""},
		{"range both steps", `{"scheme": "multi", "d": 1, "n": {"from": 2, "to": 8, "add": 2, "mul": 2}, "p": 1, "m": 4, "steps": 16}`, "body", ""},
		{"unknown scheme", `{"scheme": "warp", "d": 1, "n": 64, "p": 4, "m": 4, "steps": 16}`, "param", "scheme"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postSweep(t, s.Handler(), tc.body, "")
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body: %s", w.Code, w.Body)
			}
			eb := decodeError(t, w)
			if eb.Error.Kind != tc.kind {
				t.Fatalf("kind = %q, want %q (%s)", eb.Error.Kind, tc.kind, w.Body)
			}
			if tc.field != "" && (eb.Error.Param == nil || eb.Error.Param.Field != tc.field) {
				t.Fatalf("param field = %+v, want %q", eb.Error.Param, tc.field)
			}
		})
	}

	// skip_invalid turns the in-grid invalid point into an error row.
	w := postSweep(t, s.Handler(), `{"scheme": "multi", "d": 1, "n": 64, "p": [4, 7], "m": 4, "steps": 16, "skip_invalid": true}`, "")
	if w.Code != http.StatusOK {
		t.Fatalf("skip_invalid status = %d, want 200; body: %s", w.Code, w.Body)
	}
	rows, sum := decodeSweep(t, w.Body.String())
	if len(rows) != 2 || !sum.Done || sum.Errors != 1 {
		t.Fatalf("skip_invalid rows = %d, errors = %d; want 2 rows, 1 error", len(rows), sum.Errors)
	}
	for _, row := range rows {
		if row.Result != nil && row.Error != nil {
			t.Fatalf("row %d has both result and error", row.Index)
		}
	}
}

// Axis range syntax expands deterministically.
func TestAxisRanges(t *testing.T) {
	var a Axis
	if err := json.Unmarshal([]byte(`{"from": 2, "to": 16, "mul": 2}`), &a); err != nil {
		t.Fatal(err)
	}
	if want := (Axis{2, 4, 8, 16}); fmt.Sprint(a) != fmt.Sprint(want) {
		t.Fatalf("mul range = %v, want %v", a, want)
	}
	if err := json.Unmarshal([]byte(`{"from": 8, "to": 20, "add": 4}`), &a); err != nil {
		t.Fatal(err)
	}
	if want := (Axis{8, 12, 16, 20}); fmt.Sprint(a) != fmt.Sprint(want) {
		t.Fatalf("add range = %v, want %v", a, want)
	}
	var f FloatAxis
	if err := json.Unmarshal([]byte(`{"from": 1, "to": 4, "mul": 2}`), &f); err != nil {
		t.Fatal(err)
	}
	if len(f) != 3 || f[0] != 1 || f[2] != 4 {
		t.Fatalf("float range = %v, want [1 2 4]", f)
	}
}

// A traced sweep nests every row's scheme span under one synthetic
// "sweep" root, each annotated with its grid index.
func TestSweepTraceMergesRows(t *testing.T) {
	s := New(Config{})
	body := `{"schemes": ["multi"], "d": 1, "n": 64, "p": [2, 4], "m": 4, "steps": 16}`
	w := postSweep(t, s.Handler(), body, "?trace=1")
	rows, sum := decodeSweep(t, w.Body.String())
	if len(rows) != 2 || !sum.Done {
		t.Fatalf("rows = %d, done = %v", len(rows), sum.Done)
	}
	if len(sum.Trace) != 1 || sum.Trace[0].Name != "sweep" {
		t.Fatalf("summary trace roots = %+v, want one 'sweep' root", sum.Trace)
	}
	root := sum.Trace[0]
	if len(root.Children) != 2 {
		t.Fatalf("sweep root children = %d, want 2", len(root.Children))
	}
	seenIdx := map[float64]bool{}
	for _, c := range root.Children {
		if !strings.HasPrefix(c.Name, "scheme:") {
			t.Fatalf("child span %q, want scheme:*", c.Name)
		}
		if c.StartNS < 0 {
			t.Fatalf("child span StartNS = %d, want >= 0 after rebasing", c.StartNS)
		}
		seenIdx[c.Attrs["index"]] = true
	}
	if !seenIdx[0] || !seenIdx[1] {
		t.Fatalf("child spans index attrs = %v, want {0, 1}", seenIdx)
	}
	// Traced sweeps bypass the cache: rows are never Cached and a
	// repeat re-executes (mirrors /v1/run?trace=1 semantics).
	for _, row := range rows {
		if row.Result.Cached {
			t.Fatalf("traced row %d served from cache", row.Index)
		}
	}
}

// Mid-stream client disconnect (satellite): rows already flushed stay
// valid JSON, all in-flight grid points cancel — runs_cancelled rises by
// their count and inflight_runs returns to zero — and no pool slots
// leak.
func TestSweepClientDisconnectCancelsInflight(t *testing.T) {
	s := New(Config{Workers: 4, SweepParallel: 4})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Real engine, heavy rows: steps=2 completes quickly (the flushed
	// row); the three 512-step blocked d=2 runs take long enough to
	// still be executing when the client disconnects.
	body := `{"scheme": "blocked", "d": 2, "n": 4096, "p": 1, "m": 4, "steps": [2, 512, 513, 514]}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading first streamed row: %v", err)
	}
	var row SweepRow
	if err := json.Unmarshal([]byte(line), &row); err != nil {
		t.Fatalf("flushed row not valid JSON: %v\n%s", err, line)
	}
	if row.Error != nil || row.Result == nil {
		t.Fatalf("first row not a result: %+v", row)
	}
	cancel() // client disconnects mid-stream

	// All in-flight rows must cancel: runs_cancelled counts them and the
	// inflight gauge drains. (The steps=2 row may or may not have been
	// the only completion; at least the heavy rows were in flight.)
	deadline := time.Now().Add(15 * time.Second)
	for {
		var cancelled, inflight int
		fmt.Sscanf(expvarInt(t, srv.URL, "runs_cancelled"), "%d", &cancelled)
		fmt.Sscanf(expvarInt(t, srv.URL, "inflight_runs"), "%d", &inflight)
		if cancelled >= 3 && inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancellation not reflected: runs_cancelled=%d inflight_runs=%d", cancelled, inflight)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := expvarInt(t, srv.URL, "sweeps_cancelled"); got != "1" {
		t.Fatalf("sweeps_cancelled = %s, want 1", got)
	}
	// No leaked pool slots: a fresh run completes on the same pool.
	w := postRun(t, s.Handler(), validRun)
	if w.Code != http.StatusOK {
		t.Fatalf("run after cancelled sweep: status %d, body %s", w.Code, w.Body)
	}
	if got := s.pool.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after cancelled sweep = %d, want 0", got)
	}
}

// expvarInt fetches one numeric counter from the live /metrics endpoint.
func expvarInt(t *testing.T, base, name string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Bsmp map[string]json.RawMessage `json:"bsmp"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(string(payload.Bsmp[name]))
}

// Shutting the server down mid-sweep cancels the stream through baseCtx
// without wedging Shutdown.
func TestSweepServerShutdownCancels(t *testing.T) {
	s := New(Config{Workers: 2})
	release := make(chan struct{})
	var blocked atomic.Int64
	s.runScheme = func(ctx context.Context, req RunRequest) (*RunResponse, error) {
		blocked.Add(1)
		select {
		case <-release:
			return &RunResponse{Time: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- postSweep(t, s.Handler(), `{"scheme": "multi", "d": 1, "n": 64, "p": [2, 4], "m": 4, "steps": 16}`, "")
	}()
	for blocked.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	s.Shutdown(ctx)
	close(release)
	select {
	case w := <-done:
		rows, sum := decodeSweep(t, w.Body.String())
		if sum.Done && sum.Errors == 0 && len(rows) == 2 {
			return // sweep won the race and completed before drain — fine
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sweep handler did not return after Shutdown")
	}
}
