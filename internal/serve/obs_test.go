package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"bsmp"
)

// postRunTraced is postRun against /v1/run?trace=1.
func postRunTraced(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/run?trace=1", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestRunTraceInlineTimeline(t *testing.T) {
	s := New(Config{})
	w := postRunTraced(t, s.Handler(), validRun)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", w.Code, w.Body)
	}
	resp := decodeRun(t, w)
	if len(resp.Trace) == 0 {
		t.Fatal("traced response carries no spans")
	}
	root := resp.Trace[0]
	if !strings.HasPrefix(root.Name, "scheme:") {
		t.Errorf("root span = %q, want scheme:*", root.Name)
	}
	if len(root.Children) == 0 {
		t.Fatal("root span has no children")
	}

	// The schedule span's phase children telescope to the makespan.
	full := resp.Time + resp.PrepTime
	found := false
	var walk func(sp *bsmp.Span) bool
	walk = func(sp *bsmp.Span) bool {
		if sp.Name == "schedule" && len(sp.Children) > 0 {
			var sum float64
			for _, c := range sp.Children {
				sum += c.Attrs["vtime"]
			}
			if math.Abs(sum-full) > 1e-9*full {
				t.Errorf("phase vtimes sum to %v, want %v", sum, full)
			}
			return true
		}
		for _, c := range sp.Children {
			if walk(c) {
				return true
			}
		}
		return false
	}
	for _, r := range resp.Trace {
		if walk(r) {
			found = true
		}
	}
	if !found {
		t.Error("no schedule span with phase children in timeline")
	}

	// A traced run never comes from or fills the cache.
	w2 := postRunTraced(t, s.Handler(), validRun)
	if resp2 := decodeRun(t, w2); resp2.Cached {
		t.Error("second traced response served from cache")
	}
	w3 := postRun(t, s.Handler(), validRun)
	if resp3 := decodeRun(t, w3); resp3.Cached {
		t.Error("untraced response served from a traced run's cache entry")
	}
}

func TestMetricsPromFormat(t *testing.T) {
	s := New(Config{})
	// Execute one run so every histogram has at least one observation.
	if w := postRun(t, s.Handler(), validRun); w.Code != http.StatusOK {
		t.Fatalf("run status = %d; body: %s", w.Code, w.Body)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics.prom", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	body := w.Body.String()

	line := regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|NaN))$`)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		if l := sc.Text(); l != "" && !line.MatchString(l) {
			t.Errorf("malformed exposition line: %q", l)
		}
	}
	for _, hist := range []string{"bsmpd_run_latency_seconds", "bsmpd_queue_wait_seconds", "bsmpd_run_vertices"} {
		if !strings.Contains(body, "# TYPE "+hist+" histogram") {
			t.Errorf("missing TYPE line for %s", hist)
		}
		if !strings.Contains(body, hist+`_bucket{le="+Inf"} `) {
			t.Errorf("missing +Inf bucket for %s", hist)
		}
		if strings.Contains(body, hist+"_count 0\n") {
			t.Errorf("%s has no observations after a run", hist)
		}
	}
	// The plain counters ride along as gauges.
	if !strings.Contains(body, "bsmpd_requests ") {
		t.Error("missing bsmpd_requests gauge")
	}
	// The unified memo store's scalar gauges render numerically, and the
	// per-(kind, level) breakdown renders as labeled series (a run through
	// the blocked engine touches at least one level).
	for _, g := range []string{"bsmpd_memo_entries ", "bsmpd_memo_hits ", "bsmpd_memo_misses ", "bsmpd_memo_evictions ", "bsmpd_memo_capacity "} {
		if !strings.Contains(body, g) {
			t.Errorf("missing %s gauge", strings.TrimSpace(g))
		}
	}
	if !strings.Contains(body, `bsmpd_memo_level_hits{kind=`) {
		t.Error("missing per-level memo series")
	}
}

func TestRequestIDAndAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))})

	w := postRun(t, s.Handler(), validRun)
	id := w.Header().Get("X-Request-Id")
	if id == "" {
		t.Fatal("response missing X-Request-Id")
	}

	var access, runStart, runDone bool
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", sc.Text(), err)
		}
		if rec["id"] != id {
			continue
		}
		switch rec["msg"] {
		case "request":
			access = true
			if rec["path"] != "/v1/run" {
				t.Errorf("access log path = %v", rec["path"])
			}
			if rec["status"] != float64(200) {
				t.Errorf("access log status = %v", rec["status"])
			}
		case "run start":
			runStart = true
		case "run done":
			runDone = true
		}
	}
	if !access {
		t.Error("no access log line with the response's request ID")
	}
	if !runStart || !runDone {
		t.Errorf("lifecycle lines: start=%t done=%t, want both", runStart, runDone)
	}

	// IDs are unique per request.
	w2 := postRun(t, s.Handler(), validRun)
	if id2 := w2.Header().Get("X-Request-Id"); id2 == "" || id2 == id {
		t.Errorf("second request ID %q, want distinct non-empty", id2)
	}
}
