package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"bsmp"
)

// ErrorBody is the structured error payload every non-2xx response
// carries.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail names the failure class and, for parameter rejections, the
// typed ParamError so clients can point at the offending field.
type ErrorDetail struct {
	// Kind is one of "param", "body", "method", "not_found",
	// "queue_full", "deadline", "draining", "internal".
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// Param carries the validation boundary's typed rejection.
	Param *bsmp.ParamError `json:"param,omitempty"`
}

// writeJSON writes v with the given status; encoding failures fall back
// to a plain 500 (the payloads here are all marshalable by construction).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encoding response: %v", err)
	}
}

// writeError writes a structured error payload.
func writeError(w http.ResponseWriter, status int, kind, msg string, pe *bsmp.ParamError) {
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{Kind: kind, Message: msg, Param: pe}})
}

// withRecover is the defense-in-depth boundary behind ValidateParams: if
// a handler panics anyway, the panic is logged and converted to a
// structured 500 instead of unwinding the whole daemon. The HTTP server
// would confine the panic to the one connection regardless, but a typed
// payload plus an expvar counter beats a silently dropped connection.
func (s *Server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.vars.Add("panics_recovered", 1)
				log.Printf("serve: recovered panic serving %s %s: %v", r.Method, r.URL.Path, rec)
				// Best effort: if the handler already wrote a partial
				// body this write is a no-op on the status line.
				writeError(w, http.StatusInternalServerError, "internal",
					fmt.Sprintf("internal error: %v", rec), nil)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// reqIDKeyType keys the per-request ID in the request context.
type reqIDKeyType struct{}

// RequestIDFrom returns the request ID the middleware assigned, or "".
// The ID flows through the handler's context into the pool job, so run
// lifecycle log lines correlate with the access line (coalesced
// requests log the executing request's ID).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKeyType{}).(string)
	return id
}

// withCounters maintains the request-level expvar counters, assigns
// each request an ID (echoed in the X-Request-Id header and threaded
// through the context), and emits one structured access-log line per
// request.
func (s *Server) withCounters(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.vars.Add("requests", 1)
		id := fmt.Sprintf("%s-%d", s.bootID, s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), reqIDKeyType{}, id))
		start := time.Now()
		cw := &countingWriter{ResponseWriter: w}
		next.ServeHTTP(cw, r)
		status := cw.status()
		switch {
		case status >= 500:
			s.vars.Add("responses_5xx", 1)
		case status >= 400:
			s.vars.Add("responses_4xx", 1)
		default:
			s.vars.Add("responses_2xx", 1)
		}
		s.log.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"bytes", cw.bytes,
			"dur_ms", float64(time.Since(start).Nanoseconds())/1e6,
			"remote", r.RemoteAddr)
	})
}

// countingWriter records the response status and body size for the
// counters and the access log.
type countingWriter struct {
	http.ResponseWriter
	wrote bool
	code  int
	bytes int64
}

func (c *countingWriter) WriteHeader(code int) {
	if !c.wrote {
		c.wrote = true
		c.code = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(b []byte) (int, error) {
	if !c.wrote {
		c.wrote = true
		c.code = http.StatusOK
	}
	n, err := c.ResponseWriter.Write(b)
	c.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so streaming handlers (the
// /v1/sweep NDJSON rows) can flush through the counting middleware.
func (c *countingWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (c *countingWriter) status() int {
	if !c.wrote {
		return http.StatusOK
	}
	return c.code
}
