package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bsmp"
)

// This file is the /v1/sweep endpoint: server-side evaluation of a
// parameter grid — the processor-time tradeoff *surface* the paper is
// about, instead of one (scheme, n, p, m, steps, Θ) point per request.
// The grid expands into a deterministic work plan, deduplicates against
// itself and the LRU result cache, runs the misses on the shared worker
// pool (one guest calibration, one memo store, one flight group across
// all points — and across concurrent /v1/run traffic), and streams rows
// back as NDJSON the moment each completes. A dropped connection cancels
// every in-flight grid point through the request context and releases
// their pool slots.

// maxSweepBody bounds the /v1/sweep request body; even a maximal grid
// spec is a few KB of axis lists.
const maxSweepBody = 1 << 20

// maxAxisValues bounds one axis expansion so a malicious range cannot
// allocate unboundedly before the grid-size cap is checked.
const maxAxisValues = 1 << 16

// Axis is one integer sweep dimension. Its JSON accepts three spellings:
//
//	64                          a single value
//	[64, 256, 1024]             an explicit list
//	{"from": 64, "to": 1024, "mul": 4}   a geometric range (or "add"
//	                            for an arithmetic one), inclusive of
//	                            "to" when the progression lands on it
type Axis []int

// axisRange is the range-object spelling of an Axis or FloatAxis.
type axisRange struct {
	From float64 `json:"from"`
	To   float64 `json:"to"`
	Add  float64 `json:"add,omitempty"`
	Mul  float64 `json:"mul,omitempty"`
}

// expand walks the progression from From to To (inclusive).
func (r axisRange) expand() ([]float64, error) {
	switch {
	case r.Mul != 0 && r.Add != 0:
		return nil, fmt.Errorf(`range takes "add" or "mul", not both`)
	case r.Mul == 0 && r.Add == 0:
		return nil, fmt.Errorf(`range requires an "add" or "mul" step`)
	case r.Mul != 0 && r.Mul <= 1:
		return nil, fmt.Errorf(`range "mul" must be > 1, got %g`, r.Mul)
	case r.Add < 0:
		return nil, fmt.Errorf(`range "add" must be > 0, got %g`, r.Add)
	case r.To < r.From:
		return nil, fmt.Errorf(`range "to" (%g) below "from" (%g)`, r.To, r.From)
	}
	var out []float64
	for v := r.From; v <= r.To; {
		out = append(out, v)
		if len(out) > maxAxisValues {
			return nil, fmt.Errorf("range expands past %d values", maxAxisValues)
		}
		if r.Mul != 0 {
			v *= r.Mul
		} else {
			v += r.Add
		}
	}
	return out, nil
}

// unmarshalAxis dispatches on the three accepted spellings.
func unmarshalAxis(b []byte, single func() error, list func() error, ranged func(axisRange) error) error {
	b = bytes.TrimSpace(b)
	if len(b) == 0 {
		return fmt.Errorf("empty axis")
	}
	switch b[0] {
	case '[':
		return list()
	case '{':
		dec := json.NewDecoder(bytes.NewReader(b))
		dec.DisallowUnknownFields()
		var r axisRange
		if err := dec.Decode(&r); err != nil {
			return err
		}
		return ranged(r)
	default:
		return single()
	}
}

func (a *Axis) UnmarshalJSON(b []byte) error {
	return unmarshalAxis(b,
		func() error {
			var v int
			if err := json.Unmarshal(b, &v); err != nil {
				return err
			}
			*a = Axis{v}
			return nil
		},
		func() error {
			var vs []int
			if err := json.Unmarshal(b, &vs); err != nil {
				return err
			}
			*a = vs
			return nil
		},
		func(r axisRange) error {
			vs, err := r.expand()
			if err != nil {
				return err
			}
			out := make(Axis, len(vs))
			for i, v := range vs {
				out[i] = int(v)
				if float64(out[i]) != v {
					return fmt.Errorf("range value %g is not an integer", v)
				}
			}
			*a = out
			return nil
		})
}

// FloatAxis is Axis for the real-valued Θ dimension.
type FloatAxis []float64

func (a *FloatAxis) UnmarshalJSON(b []byte) error {
	return unmarshalAxis(b,
		func() error {
			var v float64
			if err := json.Unmarshal(b, &v); err != nil {
				return err
			}
			*a = FloatAxis{v}
			return nil
		},
		func() error {
			var vs []float64
			if err := json.Unmarshal(b, &vs); err != nil {
				return err
			}
			*a = vs
			return nil
		},
		func(r axisRange) error {
			vs, err := r.expand()
			if err != nil {
				return err
			}
			*a = vs
			return nil
		})
}

// SweepRequest is the POST /v1/sweep body: the cross product of the
// scheme list and every axis, with the scalar fields shared by all grid
// points. Expansion order is deterministic — scheme-major, then n, p, m,
// steps, theta — and the row index identifies the point.
type SweepRequest struct {
	// Scheme or Schemes selects the scheme axis (both may be given; the
	// single Scheme is prepended).
	Scheme  string   `json:"scheme,omitempty"`
	Schemes []string `json:"schemes,omitempty"`

	D     int  `json:"d"`
	N     Axis `json:"n"`
	P     Axis `json:"p"`
	M     Axis `json:"m"`
	Steps Axis `json:"steps"`
	// Theta is the Θ axis; empty sweeps only Config.Theta (usually 0,
	// the lockstep default).
	Theta FloatAxis `json:"theta,omitempty"`

	Guest  string    `json:"guest,omitempty"`
	Seed   uint64    `json:"seed,omitempty"`
	Config RunConfig `json:"config,omitempty"`

	// SkipInvalid streams per-point validation failures as error rows
	// instead of rejecting the whole grid with a 400.
	SkipInvalid bool `json:"skip_invalid,omitempty"`
}

// SweepRow is one NDJSON line of the sweep response: the grid point's
// index plus either its run result or its structured error.
type SweepRow struct {
	Index int `json:"index"`
	// Deduped marks a point whose tuple duplicated an earlier grid
	// point after canonicalization; its result is shared, not re-run.
	Deduped bool         `json:"deduped,omitempty"`
	Result  *RunResponse `json:"result,omitempty"`
	Error   *ErrorDetail `json:"error,omitempty"`
}

// SweepSummary is the terminal NDJSON line: aggregate counters and, for
// traced sweeps, the merged span timeline under one "sweep" root.
type SweepSummary struct {
	Done      bool         `json:"done"`
	Points    int          `json:"points"`
	Rows      int          `json:"rows"`
	CacheHits int          `json:"cache_hits"`
	Deduped   int          `json:"deduped"`
	Errors    int          `json:"errors"`
	ElapsedMS float64      `json:"elapsed_ms"`
	Trace     []*bsmp.Span `json:"trace,omitempty"`
}

// sweepPoint is one expanded grid tuple, with its validation verdict.
type sweepPoint struct {
	req RunRequest
	err *ErrorDetail // non-nil: the point is invalid (skip_invalid mode)
}

// sweepUnit is the unit of execution after intra-grid deduplication: one
// canonical tuple and every grid index that maps to it.
type sweepUnit struct {
	key     string
	req     RunRequest
	err     *ErrorDetail
	indices []int
}

// sweepProgress tracks one live sweep for the /metrics gauges.
type sweepProgress struct {
	total int
	done  atomic.Int64
}

// expandSweep builds the grid in deterministic order and validates every
// point. A grid-shape problem (no scheme, empty axis, too many points)
// or — without skip_invalid — the first invalid point aborts with a
// non-nil ErrorDetail.
func (s *Server) expandSweep(req SweepRequest) ([]sweepPoint, *ErrorDetail) {
	schemes := req.Schemes
	if req.Scheme != "" {
		schemes = append([]string{req.Scheme}, schemes...)
	}
	if len(schemes) == 0 {
		return nil, &ErrorDetail{Kind: "param", Message: "sweep requires at least one scheme",
			Param: &bsmp.ParamError{Field: "schemes", Constraint: "at least one scheme required", Got: 0}}
	}
	for _, ax := range []struct {
		name string
		vals Axis
	}{{"n", req.N}, {"p", req.P}, {"m", req.M}, {"steps", req.Steps}} {
		if len(ax.vals) == 0 {
			return nil, &ErrorDetail{Kind: "param",
				Message: fmt.Sprintf("sweep axis %q requires at least one value", ax.name),
				Param:   &bsmp.ParamError{Field: ax.name, Constraint: "axis requires at least one value", Got: 0}}
		}
	}
	thetas := []float64(req.Theta)
	if len(thetas) == 0 {
		thetas = []float64{req.Config.Theta}
	}
	// Accumulate the grid size factor by factor, rejecting as soon as the
	// running product exceeds the cap: the naive six-way product can wrap
	// around int (four 65536-value axes multiply to exactly 0 on 64-bit)
	// and slip past the guard into an effectively unbounded expansion
	// loop. Checking after every multiply keeps each intermediate product
	// ≤ MaxSweepPoints·(one axis length), far from overflow.
	total := 1
	for _, f := range []int{len(schemes), len(req.N), len(req.P), len(req.M), len(req.Steps), len(thetas)} {
		total *= f
		if total > s.cfg.MaxSweepPoints {
			return nil, &ErrorDetail{Kind: "param",
				Message: fmt.Sprintf("grid expands to at least %d points, server limit %d", total, s.cfg.MaxSweepPoints),
				Param: &bsmp.ParamError{Field: "grid",
					Constraint: fmt.Sprintf("at most %d points per sweep", s.cfg.MaxSweepPoints), Got: total}}
		}
	}
	guest := req.Guest
	if guest == "" {
		guest = "mixca"
	}
	if guest != "mixca" && guest != "rule90" {
		return nil, &ErrorDetail{Kind: "param", Message: "unknown guest",
			Param: &bsmp.ParamError{Field: "guest", Constraint: `must be "mixca" or "rule90"`, Got: guest}}
	}

	points := make([]sweepPoint, 0, total)
	for _, sc := range schemes {
		for _, n := range req.N {
			for _, p := range req.P {
				for _, m := range req.M {
					for _, st := range req.Steps {
						for _, th := range thetas {
							cfg := req.Config
							cfg.Theta = th
							pt := RunRequest{
								Scheme: sc, D: req.D, N: n, P: p, M: m, Steps: st,
								Guest: guest, Seed: req.Seed, Config: cfg,
							}
							detail := s.validateSweepPoint(pt)
							if detail != nil && !req.SkipInvalid {
								detail.Message = fmt.Sprintf("grid point %d: %s", len(points), detail.Message)
								return nil, detail
							}
							points = append(points, sweepPoint{req: pt, err: detail})
						}
					}
				}
			}
		}
	}
	return points, nil
}

// validateSweepPoint applies the single-run validation chain — server
// caps then registry validation — to one grid point.
func (s *Server) validateSweepPoint(pt RunRequest) *ErrorDetail {
	if pe := s.checkCaps(pt); pe != nil {
		return &ErrorDetail{Kind: "param", Message: pe.Error(), Param: pe}
	}
	if err := bsmp.ValidateParams(pt.Scheme, pt.D, pt.N, pt.P, pt.M, pt.Steps, pt.schemeConfig()); err != nil {
		var pe *bsmp.ParamError
		if !errors.As(err, &pe) {
			pe = &bsmp.ParamError{Scheme: pt.Scheme, Field: "scheme",
				Constraint: "must be a registered (scheme, d) pair", Got: pt.Scheme}
		}
		return &ErrorDetail{Kind: "param", Message: err.Error(), Param: pe}
	}
	return nil
}

// planSweep deduplicates the expanded grid against itself: points whose
// canonical tuples coincide share one execution, later indices marked
// Deduped. Invalid points stay their own unit (they only emit an error
// row).
func planSweep(points []sweepPoint, trace bool) []*sweepUnit {
	units := make([]*sweepUnit, 0, len(points))
	byKey := make(map[string]*sweepUnit, len(points))
	for i, pt := range points {
		if pt.err != nil {
			units = append(units, &sweepUnit{err: pt.err, indices: []int{i}})
			continue
		}
		key := cacheKey(pt.req.canonical())
		if trace {
			key += "|trace"
		}
		if u, ok := byKey[key]; ok {
			u.indices = append(u.indices, i)
			continue
		}
		u := &sweepUnit{key: key, req: pt.req, indices: []int{i}}
		byKey[key] = u
		units = append(units, u)
	}
	return units
}

// sweepRowOut is one completed unit on its way to the response writer.
type sweepRowOut struct {
	unit *sweepUnit
	resp *RunResponse  // nil on error
	err  *ErrorDetail  // nil on success
	wait time.Duration // completion latency as seen by the sweep; 0 for cache hits
	hit  bool          // served from the result LRU
}

// handleSweep serves POST /v1/sweep[?trace=1]: NDJSON rows as grid
// points complete, then one summary line. Cancellation (client gone,
// server shutdown) stops all in-flight points; rows already flushed
// remain valid JSON lines.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method", "use POST", nil)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", "server is shutting down", nil)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSweepBody))
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "body", fmt.Sprintf("malformed sweep body: %v", err), nil)
		return
	}
	points, gridErr := s.expandSweep(req)
	if gridErr != nil {
		writeError(w, http.StatusBadRequest, gridErr.Kind, gridErr.Message, gridErr.Param)
		return
	}
	trace := r.URL.Query().Get("trace") == "1"
	units := planSweep(points, trace)

	s.vars.Add("sweeps", 1)
	prog := &sweepProgress{total: len(points)}
	s.sweepMu.Lock()
	s.sweepsLive[prog] = struct{}{}
	s.sweepMu.Unlock()
	defer func() {
		s.sweepMu.Lock()
		delete(s.sweepsLive, prog)
		s.sweepMu.Unlock()
	}()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	start := time.Now()
	results := make(chan sweepRowOut)
	var wg sync.WaitGroup
	for _, u := range units {
		wg.Add(1)
		go func(u *sweepUnit) {
			defer wg.Done()
			results <- s.runSweepUnit(ctx, u, trace)
		}(u)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Single writer: one JSON line per completed unit index, flushed as
	// it lands. After a write failure (client gone) or cancellation the
	// loop keeps draining so every goroutine can finish its accounting.
	sum := SweepSummary{Points: len(points)}
	writeOK := true
	var rowTraces []tracedRow
	for out := range results {
		prog.done.Add(int64(len(out.unit.indices)))
		for k, idx := range out.unit.indices {
			row := SweepRow{Index: idx, Deduped: k > 0}
			switch {
			case out.err != nil:
				row.Error = out.err
				sum.Errors++
				s.vars.Add("sweep_row_errors", 1)
			default:
				resp := *out.resp
				row.Result = &resp
				if out.hit {
					sum.CacheHits++
					s.vars.Add("sweep_rows_cached", 1)
				}
			}
			if k > 0 {
				sum.Deduped++
				s.vars.Add("sweep_rows_deduped", 1)
			}
			s.vars.Add("sweep_rows", 1)
			if row.Result != nil && trace && k == 0 && out.resp.Trace != nil {
				rowTraces = append(rowTraces, tracedRow{index: idx, resp: out.resp})
			}
			if !writeOK || ctx.Err() != nil {
				continue
			}
			line, err := json.Marshal(row)
			if err != nil {
				continue
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				writeOK = false
				cancel()
				continue
			}
			sum.Rows++
			if flusher != nil {
				flusher.Flush()
			}
		}
		if out.wait > 0 {
			s.sweepRowHist.Observe(out.wait.Seconds())
		}
	}
	sum.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6
	if !writeOK || ctx.Err() != nil {
		s.vars.Add("sweeps_cancelled", 1)
		return
	}
	sum.Done = true
	if trace {
		sum.Trace = mergeSweepTraces(start, time.Since(start), rowTraces)
	}
	if line, err := json.Marshal(sum); err == nil {
		if _, err := w.Write(append(line, '\n')); err == nil && flusher != nil {
			flusher.Flush()
		}
	}
}

// runSweepUnit resolves one deduplicated grid unit: cache probe, then a
// pool-backed execution shared with identical concurrent runs or sweep
// units through the flight group.
func (s *Server) runSweepUnit(ctx context.Context, u *sweepUnit, trace bool) sweepRowOut {
	if u.err != nil {
		return sweepRowOut{unit: u, err: u.err}
	}
	creq := u.req.canonical()
	if !trace {
		if v, ok := s.cache.Get(u.key); ok {
			resp := *v.(*RunResponse)
			resp.Cached = true
			// The row keeps the original execution's run_id; attribute the
			// hit to that record rather than minting a new one.
			s.registry.Get(resp.RunID).AddCacheHit()
			return sweepRowOut{unit: u, resp: &resp, hit: true}
		}
	}
	select {
	case s.sweepSem <- struct{}{}:
		defer func() { <-s.sweepSem }()
	case <-ctx.Done():
		_, detail := s.classifyRunError(ctx.Err())
		return sweepRowOut{unit: u, err: &detail}
	}
	start := time.Now()
	rreq := creq
	rreq.Trace = trace
	v, err, shared := s.flight.Do(ctx, u.key, func() (any, error) {
		// One registry record per executed grid point, shared with any
		// /v1/run or concurrent sweep coalescing on the same flight key.
		rec := s.beginRun(rreq, "sweep")
		v, err := s.poolDoRetry(ctx, func(jctx context.Context) (any, error) {
			rctx, rcancel := context.WithTimeout(jctx, s.cfg.RequestTimeout)
			defer rcancel()
			rec.h.Running()
			resp, err := s.runScheme(rec.attach(rctx), rreq)
			if err == nil {
				s.vars.Add("runs", 1)
				resp.RunID = rec.h.ID()
				if !trace {
					s.cache.Add(u.key, resp)
				}
			}
			return resp, err
		})
		resp, _ := v.(*RunResponse)
		s.finishRun(rec, resp, err)
		return v, err
	})
	wait := time.Since(start)
	if err != nil {
		_, detail := s.classifyRunError(err)
		return sweepRowOut{unit: u, err: &detail, wait: wait}
	}
	resp := *v.(*RunResponse)
	resp.Coalesced = shared
	return sweepRowOut{unit: u, resp: &resp, wait: wait}
}

// poolDoRetry submits fn to the worker pool, riding out transient
// queue-full rejections: a sweep is a long-lived server-side job, so
// instead of shedding rows under momentary pool pressure it backs off
// briefly and retries until its context is cancelled. Interactive
// /v1/run traffic keeps its fail-fast 429 behavior.
func (s *Server) poolDoRetry(ctx context.Context, fn func(ctx context.Context) (any, error)) (any, error) {
	for {
		v, err := s.pool.Do(ctx, fn)
		if !errors.Is(err, ErrQueueFull) {
			return v, err
		}
		s.vars.Add("sweep_queue_retries", 1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// tracedRow pairs a grid index with its traced response for the merge.
type tracedRow struct {
	index int
	resp  *RunResponse
}

// mergeSweepTraces rebases every row's span timeline onto the sweep's
// epoch and nests them under one synthetic "sweep" root, each row root
// annotated with its grid index. Spans are deep-copied: row trees may be
// shared with concurrent coalesced /v1/run responses, so shifting them
// in place would corrupt someone else's timeline.
func mergeSweepTraces(epoch time.Time, dur time.Duration, rows []tracedRow) []*bsmp.Span {
	root := &bsmp.Span{Name: "sweep", DurNS: dur.Nanoseconds()}
	for _, tr := range rows {
		off := tr.resp.traceEpoch.Sub(epoch).Nanoseconds()
		for _, sp := range tr.resp.Trace {
			c := shiftSpan(sp, off)
			attrs := make(map[string]float64, len(c.Attrs)+1)
			for k, v := range c.Attrs {
				attrs[k] = v
			}
			attrs["index"] = float64(tr.index)
			c.Attrs = attrs
			root.Children = append(root.Children, c)
		}
	}
	return []*bsmp.Span{root}
}

// shiftSpan deep-copies a span tree with StartNS rebased by off.
func shiftSpan(sp *bsmp.Span, off int64) *bsmp.Span {
	c := &bsmp.Span{
		Name:    sp.Name,
		StartNS: sp.StartNS + off,
		DurNS:   sp.DurNS,
		Attrs:   sp.Attrs,
	}
	for _, ch := range sp.Children {
		c.Children = append(c.Children, shiftSpan(ch, off))
	}
	return c
}
