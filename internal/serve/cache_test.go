package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Add("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Get("a") // refresh a: b is now least recently used
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c (just added) was evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCacheRefreshExisting(t *testing.T) {
	c := NewCache(2)
	c.Add("a", 1)
	c.Add("a", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Add, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("Get(a) = %v, want refreshed value 2", v)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache Len = %d, want 0", c.Len())
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]bool, waiters)
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, err, shared := g.Do(context.Background(), "k", func() (any, error) {
			calls.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if err != nil || v.(int) != 42 || shared {
			t.Errorf("leader got %v, %v, shared=%v", v, err, shared)
		}
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do(context.Background(), "k", func() (any, error) {
				calls.Add(1)
				return -1, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("waiter %d got %v, %v", i, v, err)
			}
			results[i] = shared
		}(i)
	}
	// Give the waiters a moment to attach to the in-flight call.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone

	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	for i, shared := range results {
		if !shared {
			t.Errorf("waiter %d not marked shared", i)
		}
	}
}

func TestFlightGroupWaiterDeadline(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	started := make(chan struct{})
	go g.Do(context.Background(), "k", func() (any, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err, shared := g.Do(ctx, "k", func() (any, error) { return -1, nil })
	close(release)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if !shared {
		t.Fatal("expired waiter should still report shared")
	}
}

func TestFlightGroupSequentialCallsRunSeparately(t *testing.T) {
	var g flightGroup
	var calls int
	for i := 0; i < 3; i++ {
		_, _, shared := g.Do(context.Background(), "k", func() (any, error) {
			calls++
			return nil, nil
		})
		if shared {
			t.Fatalf("sequential call %d marked shared", i)
		}
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3 (no concurrency, no coalescing)", calls)
	}
}
