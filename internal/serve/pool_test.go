package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(2, 4)
	defer p.Close()
	v, err := p.Do(context.Background(), func(context.Context) (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("Do = %v, %v; want 7, nil", v, err)
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	started := make(chan struct{})

	// Occupy the single worker...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), func(context.Context) (any, error) {
			close(started)
			<-release
			return nil, nil
		})
	}()
	<-started
	// ...and the single queue slot: the submission enqueues, then its
	// deadline fires while the worker is still busy, so Do returns but
	// the job keeps the slot.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Do(ctx, func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Do = %v, want DeadlineExceeded", err)
	}
	// Worker busy + queue slot held: the next submission sheds.
	if _, err := p.Do(context.Background(), func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("burst Do = %v, want ErrQueueFull", err)
	}
	close(release)
	wg.Wait()
	p.Close()
}

// A job that ignores its context (non-cooperative) still runs to
// completion after the caller's deadline fires; only Close waits for it.
func TestPoolDeadlineWhileRunning(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	var finished atomic.Bool

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := p.Do(ctx, func(context.Context) (any, error) {
			close(started)
			<-release
			finished.Store(true)
			return 1, nil
		})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("err = %v, want DeadlineExceeded", err)
		}
	}()
	<-started
	<-done // caller gave up at its deadline while the job still runs
	if finished.Load() {
		t.Fatal("job finished before the caller's deadline fired")
	}
	close(release)
	p.Close() // drains: waits for the abandoned job to finish
	if !finished.Load() {
		t.Fatal("Close returned before the running job completed")
	}
}

// A cooperative job observes the request context the worker hands it:
// cancelling the request stops the job and frees the worker slot
// immediately, so the next submission runs without waiting for the
// abandoned job's natural completion.
func TestPoolCancelReleasesSlot(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	jobStopped := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := p.Do(ctx, func(jctx context.Context) (any, error) {
			close(started)
			<-jctx.Done() // a cooperative simulation: stops when cancelled
			close(jobStopped)
			return nil, jctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled Do = %v, want Canceled", err)
		}
	}()
	<-started
	cancel()
	<-done
	select {
	case <-jobStopped:
	case <-time.After(2 * time.Second):
		t.Fatal("job did not observe cancellation via the worker-provided context")
	}
	// The slot must be free: a fresh job on the single worker completes.
	v, err := p.Do(context.Background(), func(context.Context) (any, error) { return 42, nil })
	if err != nil || v.(int) != 42 {
		t.Fatalf("Do after cancel = %v, %v; want 42, nil", v, err)
	}
}

// A request cancelled while its job is still queued (never started) must
// still settle its queue accounting: the depth gauge decrements the
// moment the requester gives up — not when a worker eventually drains
// the abandoned slot — and the queue-wait observer fires exactly once
// for the job, never twice (requester and worker racing to settle).
func TestPoolQueuedCancelSettlesOnce(t *testing.T) {
	p := NewPool(1, 2)
	var waits atomic.Int64
	p.SetQueueWaitObserver(func(float64) { waits.Add(1) })

	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), func(context.Context) (any, error) {
			close(started)
			<-release
			return nil, nil
		})
	}()
	<-started // the single worker is busy; its job settled at dequeue

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := p.Do(ctx, func(context.Context) (any, error) { ran.Store(true); return nil, nil })
		done <- err
	}()
	for p.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel() // expire the job while it is still queued
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-then-cancelled Do = %v, want Canceled", err)
	}
	// The gauge drops immediately — the worker is still busy and has not
	// touched the abandoned job.
	if d := p.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth after queued cancel = %d, want 0", d)
	}
	if w := waits.Load(); w != 2 {
		t.Fatalf("queue-wait observations = %d, want 2 (occupying job + cancelled job)", w)
	}
	close(release)
	wg.Wait()
	p.Close() // the worker drains (and skips) the abandoned slot
	if ran.Load() {
		t.Fatal("worker ran a job whose requester had already given up")
	}
	// The worker's dequeue of the abandoned job must NOT re-observe its
	// wait or re-decrement the gauge.
	if w := waits.Load(); w != 2 {
		t.Fatalf("queue-wait observations after drain = %d, want 2 (abandoned job settled twice)", w)
	}
	if d := p.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth after drain = %d, want 0", d)
	}
}

func TestPoolSkipsExpiredQueuedJobs(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	queued := make(chan struct{})
	go func() {
		close(queued)
		p.Do(ctx, func(context.Context) (any, error) { ran.Store(true); return nil, nil })
	}()
	<-queued
	time.Sleep(10 * time.Millisecond) // let the job enter the queue
	cancel()                          // expire it while queued
	close(release)
	p.Close()
	if ran.Load() {
		t.Fatal("worker ran a job whose requester had already given up")
	}
}

func TestPoolCloseRejectsAndDrains(t *testing.T) {
	p := NewPool(2, 2)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func(context.Context) (any, error) {
				time.Sleep(10 * time.Millisecond)
				ran.Add(1)
				return nil, nil
			})
		}()
	}
	time.Sleep(5 * time.Millisecond)
	p.Close()
	wg.Wait()
	if _, err := p.Do(context.Background(), func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do after Close = %v, want ErrDraining", err)
	}
	if ran.Load() == 0 {
		t.Fatal("Close drained without running any accepted job")
	}
	p.Close() // second Close must be safe
}
