package serve

// counterNames is the canonical list of every expvar counter the
// serving layer bumps with vars.Add. Each is pre-declared at server
// construction so it renders (as 0) on /metrics and /metrics.prom from
// boot instead of materializing on its first increment — dashboards and
// alerts can rely on the full series set existing, and
// scripts/promlint.sh cross-checks this list against the Add call sites
// so a new counter cannot silently drift off the Prometheus surface.
//
// Gauges (expvar.Func) are not listed: they are registered eagerly in
// registerGauges and cannot drift.
var counterNames = []string{
	// request middleware
	"requests",
	"responses_2xx",
	"responses_4xx",
	"responses_5xx",
	"panics_recovered",

	// /v1/run lifecycle
	"runs",
	"runs_cancelled",
	"traced_runs",
	"cache_hits",
	"cache_misses",
	"coalesced",
	"queue_rejects",
	"deadline_timeouts",

	// /v1/sweep lifecycle
	"sweeps",
	"sweeps_cancelled",
	"sweep_rows",
	"sweep_rows_cached",
	"sweep_rows_deduped",
	"sweep_row_errors",
	"sweep_queue_retries",

	// run registry / flight recorder
	"run_events_streams",

	// shutdown
	"draining",
}

// declareCounters materializes every known counter at zero.
func (s *Server) declareCounters() {
	for _, name := range counterNames {
		s.vars.Add(name, 0)
	}
}
