package serve

import (
	"container/list"
	"context"
	"sync"
)

// Cache is a mutex-guarded LRU over fully-keyed query results. The key
// is the complete request tuple — scheme, d, n, p, m, steps, guest,
// seed, and every SchemeConfig knob — so two requests share an entry
// only when their simulations would be bit-identical (everything in the
// simulator is deterministic, which is what makes result caching sound
// at all).
type Cache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key string
	val any
}

// NewCache builds an LRU holding up to capacity entries; capacity < 1
// disables caching (every Get misses, Add is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, refreshing its recency.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// Add inserts (or refreshes) key, evicting the least recently used entry
// when over capacity.
func (c *Cache) Add(key string, val any) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len reports the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// flightGroup coalesces concurrent calls with the same key into one
// execution: the first caller (the leader) runs fn, every concurrent
// duplicate blocks until the leader finishes and shares its result. A
// waiter whose context expires abandons the wait (the leader still
// completes and fills the cache). This is the storm-absorber in front of
// the worker pool: a thousand identical in-flight queries cost one
// simulation slot.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
	dups int
}

// Do executes fn once per key among concurrent callers. It returns fn's
// value and error, and whether the result was shared from another
// caller's execution.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (any, error)) (any, error, bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.dups++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
