package serve

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"bsmp"
	"bsmp/internal/obs"
)

// handleMetricsProm serves GET /metrics.prom: the serving histograms in
// Prometheus text exposition format, plus every numeric expvar from
// /metrics as an untyped gauge. Rendered by hand — the repository takes
// no client-library dependency for three histograms and a counter map.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writePromHist(w, "bsmpd_run_latency_seconds",
		"End-to-end execution latency of completed /v1/run simulations.", s.latHist)
	writePromHist(w, "bsmpd_queue_wait_seconds",
		"Time pool jobs spent queued before a worker picked them up.", s.waitHist)
	writePromHist(w, "bsmpd_run_vertices",
		"Guest size n*steps of completed simulations.", s.sizeHist)
	writePromHist(w, "bsmpd_theta_run_latency_seconds",
		"Execution latency of Θ-model (theta != 0) runs only.", s.thetaHist)
	writePromHist(w, "bsmpd_sweep_row_latency_seconds",
		"Completion latency of executed /v1/sweep grid rows (cache hits excluded).", s.sweepRowHist)
	writePromMemoLevels(w)
	s.vars.Do(func(kv expvar.KeyValue) {
		// Non-scalar vars (the histogram snapshots above and the memo
		// level breakdown) don't parse and are skipped; they already have
		// first-class renderings.
		v, err := strconv.ParseFloat(kv.Value.String(), 64)
		if err != nil {
			return
		}
		name := "bsmpd_" + kv.Key
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(v))
	})
}

// writePromMemoLevels renders the unified memo store's per-(kind, level)
// counters as labeled gauge series, one metric per counter.
func writePromMemoLevels(w io.Writer) {
	stats := bsmp.MemoStatsSnapshot()
	if len(stats.Levels) == 0 {
		return
	}
	for _, m := range []struct {
		name, help string
		value      func(bsmp.MemoLevelStats) int64
	}{
		{"bsmpd_memo_level_entries", "Resident memo entries per (kind, size level).",
			func(l bsmp.MemoLevelStats) int64 { return int64(l.Entries) }},
		{"bsmpd_memo_level_hits", "Lifetime memo hits per (kind, size level).",
			func(l bsmp.MemoLevelStats) int64 { return l.Hits }},
		{"bsmpd_memo_level_misses", "Lifetime memo misses per (kind, size level).",
			func(l bsmp.MemoLevelStats) int64 { return l.Misses }},
		{"bsmpd_memo_level_evictions", "Lifetime memo evictions per (kind, size level).",
			func(l bsmp.MemoLevelStats) int64 { return l.Evictions }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", m.name, m.help, m.name)
		for _, l := range stats.Levels {
			fmt.Fprintf(w, "%s{kind=%q,level=\"%d\"} %d\n", m.name, l.Kind, l.Level, m.value(l))
		}
	}
}

// writePromHist renders one histogram: cumulative buckets, sum, count.
func writePromHist(w io.Writer, name, help string, h *obs.Histogram) {
	snap := h.Snapshot()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, b := range snap.Bounds {
		cum += snap.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b), cum)
	}
	cum += snap.Counts[len(snap.Bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(snap.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
