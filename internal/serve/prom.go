package serve

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"bsmp"
	"bsmp/internal/obs"
)

// handleMetricsProm serves GET /metrics.prom: the serving histograms in
// Prometheus text exposition format, plus every numeric expvar from
// /metrics as an untyped gauge. Rendered by hand — the repository takes
// no client-library dependency for three histograms and a counter map.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writePromHist(w, "bsmpd_run_latency_seconds",
		"End-to-end execution latency of completed /v1/run simulations.", s.latHist)
	writePromHist(w, "bsmpd_queue_wait_seconds",
		"Time pool jobs spent queued before a worker picked them up.", s.waitHist)
	writePromHist(w, "bsmpd_run_vertices",
		"Guest size n*steps of completed simulations.", s.sizeHist)
	writePromHist(w, "bsmpd_theta_run_latency_seconds",
		"Execution latency of Θ-model (theta != 0) runs only.", s.thetaHist)
	writePromHist(w, "bsmpd_sweep_row_latency_seconds",
		"Completion latency of executed /v1/sweep grid rows (cache hits excluded).", s.sweepRowHist)
	writePromMemoLevels(w)
	writePromRegistry(w, s.registry)
	s.vars.Do(func(kv expvar.KeyValue) {
		// Non-scalar vars (the histogram snapshots above and the memo
		// level breakdown) don't parse and are skipped; they already have
		// first-class renderings.
		v, err := strconv.ParseFloat(kv.Value.String(), 64)
		if err != nil {
			return
		}
		name := "bsmpd_" + kv.Key
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(v))
	})
}

// writePromMemoLevels renders the unified memo store's per-(kind, level)
// counters as labeled gauge series, one metric per counter.
func writePromMemoLevels(w io.Writer) {
	stats := bsmp.MemoStatsSnapshot()
	if len(stats.Levels) == 0 {
		return
	}
	for _, m := range []struct {
		name, help string
		value      func(bsmp.MemoLevelStats) int64
	}{
		{"bsmpd_memo_level_entries", "Resident memo entries per (kind, size level).",
			func(l bsmp.MemoLevelStats) int64 { return int64(l.Entries) }},
		{"bsmpd_memo_level_hits", "Lifetime memo hits per (kind, size level).",
			func(l bsmp.MemoLevelStats) int64 { return l.Hits }},
		{"bsmpd_memo_level_misses", "Lifetime memo misses per (kind, size level).",
			func(l bsmp.MemoLevelStats) int64 { return l.Misses }},
		{"bsmpd_memo_level_evictions", "Lifetime memo evictions per (kind, size level).",
			func(l bsmp.MemoLevelStats) int64 { return l.Evictions }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", m.name, m.help, m.name)
		for _, l := range stats.Levels {
			fmt.Fprintf(w, "%s{kind=%q,level=\"%d\"} %d\n", m.name, l.Kind, l.Level, m.value(l))
		}
	}
}

// writePromRegistry renders the run registry's Prometheus surface:
// live-run gauges by (state, scheme), lifetime terminal-state
// counters, and the per-phase wall-duration histograms aggregated from
// completed records. No-op on a disabled (nil) registry.
func writePromRegistry(w io.Writer, r *obs.Registry) {
	if r == nil {
		return
	}
	fmt.Fprint(w, "# HELP bsmpd_runs_active Live runs in the registry by lifecycle state and scheme.\n# TYPE bsmpd_runs_active gauge\n")
	for _, ac := range r.ActiveCounts() {
		fmt.Fprintf(w, "bsmpd_runs_active{state=%q,scheme=%q} %d\n", ac.State, ac.Scheme, ac.Count)
	}
	fmt.Fprint(w, "# HELP bsmpd_runs_completed_total Lifetime completed runs by terminal state.\n# TYPE bsmpd_runs_completed_total counter\n")
	completed := r.CompletedCounts()
	for _, state := range []string{obs.RunDone, obs.RunCancelled, obs.RunFailed, obs.RunShed} {
		fmt.Fprintf(w, "bsmpd_runs_completed_total{state=%q} %d\n", state, completed[state])
	}
	phases := r.PhaseHists()
	if len(phases) == 0 {
		return
	}
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	const phaseMetric = "bsmpd_run_phase_seconds"
	fmt.Fprintf(w, "# HELP %s Wall duration of completed schedule phases, by phase, derived from run-registry records.\n# TYPE %s histogram\n", phaseMetric, phaseMetric)
	for _, name := range names {
		snap := phases[name]
		writePromBuckets(w, phaseMetric, fmt.Sprintf("phase=%q,", name), snap)
	}
}

// writePromHist renders one histogram: cumulative buckets, sum, count,
// plus p50/p95/p99 estimates as companion _quantile gauges (linear
// interpolation within the winning bucket; omitted while empty).
func writePromHist(w io.Writer, name, help string, h *obs.Histogram) {
	snap := h.Snapshot()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	writePromBuckets(w, name, "", snap)
	if snap.Count > 0 {
		fmt.Fprintf(w, "# TYPE %s_quantile gauge\n", name)
		for _, q := range [...]float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(w, "%s_quantile{q=%q} %s\n", name, promFloat(q), promFloat(snap.Quantile(q)))
		}
	}
}

// writePromBuckets renders one histogram series — cumulative buckets,
// sum, count — with extraLabels (either empty or `label="v",`) spliced
// into every label set.
func writePromBuckets(w io.Writer, name, extraLabels string, snap obs.HistSnapshot) {
	var cum int64
	for i, b := range snap.Bounds {
		cum += snap.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, extraLabels, promFloat(b), cum)
	}
	cum += snap.Counts[len(snap.Bounds)]
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extraLabels, cum)
	if extraLabels == "" {
		fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(snap.Sum), name, snap.Count)
	} else {
		labels := extraLabels[:len(extraLabels)-1] // drop the trailing comma
		fmt.Fprintf(w, "%s_sum{%s} %s\n%s_count{%s} %d\n", name, labels, promFloat(snap.Sum), name, labels, snap.Count)
	}
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
