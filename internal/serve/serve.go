// Package serve is the bsmpd serving layer: an HTTP JSON surface over
// the scheme registry and the closed-form Theorem 1 bounds, hardened for
// adversarial traffic. The layering, outermost first:
//
//   - middleware: panic recovery (defense in depth behind the validation
//     boundary — no request can take the daemon down) and expvar request
//     accounting;
//   - validation: bsmp.ValidateParams plus server-side size caps turn
//     every malformed or oversized tuple into a structured 4xx before
//     any machinery is constructed;
//   - result cache: an LRU keyed on the full request tuple, with
//     singleflight coalescing so a storm of identical queries costs one
//     simulation;
//   - worker pool: a bounded queue with per-request deadlines — load
//     beyond Workers+QueueDepth is shed with 429, never buffered
//     unboundedly;
//   - graceful shutdown: /healthz flips to 503 draining, in-flight
//     simulations finish, then the listener closes.
//
// Endpoints: POST /v1/run, POST /v1/sweep (NDJSON-streamed parameter
// grids), GET /v1/runs (+ /v1/runs/{id}, /v1/runs/{id}/events — the run
// registry's introspection surface), GET /v1/bounds, GET /v1/schemes,
// GET /healthz, GET /metrics (expvar-style JSON), GET /metrics.prom.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"expvar"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bsmp"
	"bsmp/internal/obs"
)

// Config sizes the daemon. The zero value of any field selects its
// default.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// Workers caps concurrently running simulations (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth is the number of requests that may wait for a worker
	// beyond those running; further ones get 429 (default 64; negative
	// means no queue at all).
	QueueDepth int
	// CacheEntries sizes the result LRU (default 512; negative
	// disables caching).
	CacheEntries int
	// RequestTimeout is the per-request deadline for /v1/run (default
	// 30s). Requests that exceed it get 504; their simulation finishes
	// in the background and still fills the cache.
	RequestTimeout time.Duration
	// MaxN, MaxM, MaxSteps cap request parameters so a single query
	// cannot exhaust memory; violations get a structured 400 (defaults
	// 1<<16, 1<<12, 1<<12).
	MaxN, MaxM, MaxSteps int
	// MemoCapacity bounds the process-wide unified memo store (kernel
	// values plus subtree replay records). 0 keeps the library default
	// (simulate.DefaultMemoCapacity); a negative value disables
	// memoization entirely.
	MemoCapacity int
	// MaxSweepPoints caps how many grid points one /v1/sweep may expand
	// to (default 4096); larger grids get a structured 400.
	MaxSweepPoints int
	// SweepParallel bounds how many grid points may occupy pool slots at
	// once across ALL concurrent sweeps combined (one server-wide
	// semaphore, not a per-sweep budget), so sweep traffic as a whole
	// cannot monopolize the queue against interactive /v1/run traffic
	// (default Workers).
	SweepParallel int
	// RegistryCapacity bounds the run registry's flight recorder — how
	// many completed run records /v1/runs retains (live runs are always
	// tracked). 0 selects the default (obs.DefaultRegistryCapacity); a
	// negative value disables the registry entirely, turning the
	// introspection endpoints into 404s and removing the per-run
	// record-keeping from the hot path.
	RegistryCapacity int
	// Logger receives the daemon's structured JSON records: one access
	// line per request (with its generated request ID) and run
	// start/done/failed lifecycle lines. Nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxN == 0 {
		c.MaxN = 1 << 16
	}
	if c.MaxM == 0 {
		c.MaxM = 1 << 12
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 1 << 12
	}
	if c.MaxSweepPoints == 0 {
		c.MaxSweepPoints = 4096
	}
	if c.SweepParallel < 1 {
		c.SweepParallel = c.Workers
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	return c
}

// Server is the bsmpd daemon state.
type Server struct {
	cfg      Config
	cache    *Cache
	pool     *Pool
	flight   flightGroup
	vars     *expvar.Map
	handler  http.Handler
	httpSrv  *http.Server
	draining atomic.Bool

	// log is the structured logger; bootID + reqSeq generate the
	// per-request IDs stamped on responses and every log record.
	log    *slog.Logger
	bootID string
	reqSeq atomic.Uint64

	// registry is the run registry + flight recorder behind /v1/runs;
	// nil when Config.RegistryCapacity < 0 (every obs call site is
	// nil-safe). runSeq numbers run IDs within this boot.
	registry *obs.Registry
	runSeq   atomic.Uint64

	// Serving-quality histograms, exposed on /metrics (JSON snapshots)
	// and /metrics.prom (Prometheus text format).
	latHist   *obs.Histogram // end-to-end run execution latency, seconds
	waitHist  *obs.Histogram // pool queue wait, seconds
	sizeHist  *obs.Histogram // executed run size, guest vertices n*steps
	thetaHist *obs.Histogram // latency of Θ-model (theta != 0) runs only, seconds

	// baseCtx is the server's lifetime context: every request context is
	// tied to it, so cancelling baseCancel hard-stops every in-flight
	// simulation at its next cooperative checkpoint. Shutdown pulls this
	// lever when its drain budget expires.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// inflight registers the Progress of every simulation currently
	// executing; /metrics sums it into live gauges.
	inflightMu sync.Mutex
	inflight   map[*bsmp.Progress]struct{}

	// sweepsLive registers every streaming sweep for the live gauges;
	// sweepSem bounds total sweep-held pool slots across all concurrent
	// sweeps; sweepRowHist feeds bsmpd_sweep_row_latency_seconds.
	sweepMu      sync.Mutex
	sweepsLive   map[*sweepProgress]struct{}
	sweepSem     chan struct{}
	sweepRowHist *obs.Histogram

	// runScheme executes a validated run request under ctx; tests
	// substitute it to inject blocking or panicking work behind the full
	// middleware, cache, and pool stack.
	runScheme func(ctx context.Context, req RunRequest) (*RunResponse, error)
}

// New builds a Server from cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     NewCache(cfg.CacheEntries),
		pool:      NewPool(cfg.Workers, cfg.QueueDepth),
		vars:      new(expvar.Map).Init(),
		inflight:  make(map[*bsmp.Progress]struct{}),
		log:       cfg.Logger,
		bootID:    newBootID(),
		latHist:   obs.NewHistogram(0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30),
		waitHist:  obs.NewHistogram(0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5),
		sizeHist:  obs.NewHistogram(1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8),
		thetaHist: obs.NewHistogram(0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30),

		sweepsLive:   make(map[*sweepProgress]struct{}),
		sweepRowHist: obs.NewHistogram(0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30),
	}
	s.sweepSem = make(chan struct{}, cfg.SweepParallel)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.runScheme = s.execute
	if cfg.RegistryCapacity >= 0 {
		s.registry = obs.NewRegistry(cfg.RegistryCapacity)
	}
	if cfg.MemoCapacity != 0 {
		bsmp.SetMemoCapacity(cfg.MemoCapacity)
	}
	s.pool.SetQueueWaitObserver(s.waitHist.Observe)
	s.declareCounters()
	s.registerGauges()

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/runs", s.handleRuns)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRunRecord)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	mux.HandleFunc("/v1/bounds", s.handleBounds)
	mux.HandleFunc("/v1/schemes", s.handleSchemes)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.prom", s.handleMetricsProm)
	s.handler = s.withRecover(s.withCounters(mux))
	return s
}

// Handler returns the fully wrapped HTTP handler (also used by the
// httptest-based unit tests).
func (s *Server) Handler() http.Handler { return s.handler }

// ListenAndServe serves until the listener fails or Shutdown runs.
func (s *Server) ListenAndServe() error {
	s.httpSrv = &http.Server{
		Addr:              s.cfg.Addr,
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	err := s.httpSrv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains the daemon gracefully: /healthz flips to draining, the
// HTTP server stops accepting and waits for in-flight handlers (each of
// which waits for its simulation), then the pool's remaining queue is
// drained. ctx bounds the graceful phase; when it expires, Shutdown
// hard-cancels the server's base context so every in-flight simulation
// stops at its next cooperative checkpoint, then waits for the pool to
// unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.vars.Add("draining", 1)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	done := make(chan struct{})
	go func() {
		s.pool.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Drain budget exhausted: stop in-flight simulations instead of
		// abandoning them mid-CPU-burn. Every request context descends
		// from baseCtx, so the pool drains promptly.
		s.baseCancel()
		<-done
		if err == nil {
			err = ctx.Err()
		}
	}
	s.baseCancel()
	return err
}

// registerGauges installs the live expvar gauges: in-flight run progress
// and the multiprocessor kernel-cache counters. expvar.Func re-evaluates
// on every /metrics render, so the values are current, not snapshots.
func (s *Server) registerGauges() {
	s.vars.Set("inflight_runs", expvar.Func(func() any {
		s.inflightMu.Lock()
		defer s.inflightMu.Unlock()
		return len(s.inflight)
	}))
	s.vars.Set("inflight_vertices", expvar.Func(func() any {
		s.inflightMu.Lock()
		defer s.inflightMu.Unlock()
		var v int64
		for p := range s.inflight {
			v += p.Vertices.Load()
		}
		return v
	}))
	s.vars.Set("inflight_phases", expvar.Func(func() any {
		s.inflightMu.Lock()
		defer s.inflightMu.Unlock()
		var v int64
		for p := range s.inflight {
			v += p.Phases.Load()
		}
		return v
	}))
	s.vars.Set("queue_depth", expvar.Func(func() any {
		return s.pool.QueueDepth()
	}))
	s.vars.Set("kernel_cache_entries", expvar.Func(func() any {
		e, _, _, _ := bsmp.KernelCacheStats()
		return e
	}))
	s.vars.Set("kernel_cache_hits", expvar.Func(func() any {
		_, h, _, _ := bsmp.KernelCacheStats()
		return h
	}))
	s.vars.Set("kernel_cache_misses", expvar.Func(func() any {
		_, _, m, _ := bsmp.KernelCacheStats()
		return m
	}))
	s.vars.Set("kernel_cache_evictions", expvar.Func(func() any {
		_, _, _, e := bsmp.KernelCacheStats()
		return e
	}))
	// Unified memo store gauges (kernels + subtree replay records). The
	// scalar counters render on both endpoints; the per-(kind, level)
	// breakdown renders as JSON here and as labeled series on
	// /metrics.prom.
	s.vars.Set("memo_capacity", expvar.Func(func() any {
		return bsmp.MemoStatsSnapshot().Capacity
	}))
	s.vars.Set("memo_entries", expvar.Func(func() any {
		return bsmp.MemoStatsSnapshot().Entries
	}))
	s.vars.Set("memo_hits", expvar.Func(func() any {
		return bsmp.MemoStatsSnapshot().Hits
	}))
	s.vars.Set("memo_misses", expvar.Func(func() any {
		return bsmp.MemoStatsSnapshot().Misses
	}))
	s.vars.Set("memo_evictions", expvar.Func(func() any {
		return bsmp.MemoStatsSnapshot().Evictions
	}))
	s.vars.Set("memo_levels", expvar.Func(func() any {
		return bsmp.MemoStatsSnapshot().Levels
	}))
	// Histogram snapshots render inline in the /metrics JSON; the
	// Prometheus endpoint serves the same data in text format.
	s.vars.Set("run_latency_seconds", expvar.Func(func() any { return s.latHist.Snapshot() }))
	s.vars.Set("queue_wait_seconds", expvar.Func(func() any { return s.waitHist.Snapshot() }))
	s.vars.Set("run_vertices", expvar.Func(func() any { return s.sizeHist.Snapshot() }))
	s.vars.Set("theta_run_latency_seconds", expvar.Func(func() any { return s.thetaHist.Snapshot() }))
	s.vars.Set("sweep_row_latency_seconds", expvar.Func(func() any { return s.sweepRowHist.Snapshot() }))
	// Run registry occupancy: live (queued + running) records and the
	// completed records the flight recorder retains. The per-(state,
	// scheme) breakdown renders as labeled bsmpd_runs_active series on
	// /metrics.prom.
	s.vars.Set("registry_live_runs", expvar.Func(func() any {
		live, _ := s.registry.Len()
		return live
	}))
	s.vars.Set("registry_retained_runs", expvar.Func(func() any {
		_, retained := s.registry.Len()
		return retained
	}))
	// Live sweep progress: how many sweeps are streaming right now and
	// how many of their grid points are still unresolved.
	s.vars.Set("inflight_sweeps", expvar.Func(func() any {
		s.sweepMu.Lock()
		defer s.sweepMu.Unlock()
		return len(s.sweepsLive)
	}))
	s.vars.Set("sweep_rows_pending", expvar.Func(func() any {
		s.sweepMu.Lock()
		defer s.sweepMu.Unlock()
		var v int64
		for p := range s.sweepsLive {
			v += int64(p.total) - p.done.Load()
		}
		return v
	}))
}

// newBootID returns the random prefix of this process's request IDs, so
// IDs from distinct daemon incarnations never collide in aggregated
// logs.
func newBootID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// CacheStats exposes the result cache counters (smoke and unit tests).
func (s *Server) CacheStats() (hits, misses uint64) { return s.cache.Stats() }
