package sched

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestOrdering pins the (time, proc, seq) dispatch order.
func TestOrdering(t *testing.T) {
	q := New()
	var got []int
	rec := func(id int) func() { return func() { got = append(got, id) } }
	// Scheduled deliberately out of dispatch order.
	q.At(2.0, 0, rec(4))
	q.At(1.0, 1, rec(1))
	q.At(1.0, 0, rec(0))
	q.At(1.0, 1, rec(2)) // same (time, proc) as id 1, later seq
	q.At(1.5, 3, rec(3))
	q.At(3.0, 2, rec(5))
	q.Run()
	want := []int{0, 1, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dispatch order %v, want %v", got, want)
	}
	if q.Now() != 3.0 {
		t.Fatalf("Now() = %v after run, want 3", q.Now())
	}
	if q.Dispatched() != 6 {
		t.Fatalf("Dispatched() = %d, want 6", q.Dispatched())
	}
}

// TestCausalBatches checks that events scheduled during a batch — even
// at the batch's own instant — run in a later batch, after the whole
// producing batch finished.
func TestCausalBatches(t *testing.T) {
	q := New()
	var got []string
	q.At(1.0, 1, func() {
		got = append(got, "b")
	})
	q.At(1.0, 0, func() {
		got = append(got, "a")
		// Same instant, lower proc than "b": would dispatch before "b"
		// if it joined the current batch. It must not.
		q.At(1.0, 0, func() { got = append(got, "a-child") })
	})
	if !q.Step() {
		t.Fatal("Step() = false on non-empty queue")
	}
	want := []string{"a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("first batch %v, want %v", got, want)
	}
	q.Run()
	want = []string{"a", "b", "a-child"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after run %v, want %v", got, want)
	}
}

// TestStepEmpty checks Step on an empty queue.
func TestStepEmpty(t *testing.T) {
	q := New()
	if q.Step() {
		t.Fatal("Step() = true on empty queue")
	}
	if q.Len() != 0 || q.Now() != 0 {
		t.Fatalf("empty queue Len=%d Now=%v", q.Len(), q.Now())
	}
}

// TestPanics checks the scheduling guard rails.
func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(q *Queue)
	}{
		{"nan", func(q *Queue) { q.At(math.NaN(), 0, func() {}) }},
		{"past", func(q *Queue) {
			q.At(5, 0, func() {})
			q.Step()
			q.At(4, 0, func() {})
		}},
		{"negative-proc", func(q *Queue) { q.At(1, -1, func() {}) }},
		{"nil-fn", func(q *Queue) { q.At(1, 0, nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.fn(New())
		})
	}
}

// TestSameInstantSchedulingAllowed checks that scheduling at exactly
// Now() is legal (it forms the next batch), only strictly-past times
// panic.
func TestSameInstantSchedulingAllowed(t *testing.T) {
	q := New()
	ran := false
	q.At(1, 0, func() {
		q.At(1, 0, func() { ran = true })
	})
	q.Run()
	if !ran {
		t.Fatal("same-instant follow-up event did not run")
	}
}

// dispatchKey is the observable identity of a dispatch, used to compare
// event orders across runs.
type dispatchKey struct {
	Time float64
	Proc int
	Seq  uint64
}

// randomWorkload schedules a reproducible random cascade: root events
// that reschedule follow-ups while running. Returns the dispatch order.
func randomWorkload(seed int64) []dispatchKey {
	rng := rand.New(rand.NewSource(seed))
	q := New()
	var order []dispatchKey
	q.SetObserver(func(e Event) {
		order = append(order, dispatchKey{e.Time, e.Proc, e.Seq})
	})
	var cascade func(depth int) func()
	cascade = func(depth int) func() {
		return func() {
			if depth <= 0 {
				return
			}
			k := rng.Intn(3)
			for i := 0; i < k; i++ {
				dt := float64(rng.Intn(4)) // 0 is legal: next batch
				q.At(q.Now()+dt, rng.Intn(8), cascade(depth-1))
			}
		}
	}
	for i := 0; i < 32; i++ {
		q.At(float64(rng.Intn(16)), rng.Intn(8), cascade(3))
	}
	q.Run()
	return order
}

// TestDeterministicDispatch is the event-order determinism property:
// identical scheduling decisions (same seed) produce identical dispatch
// sequences, including cascades that schedule from inside events.
func TestDeterministicDispatch(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := randomWorkload(seed)
		b := randomWorkload(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: dispatch orders differ (%d vs %d events)", seed, len(a), len(b))
		}
	}
}

// FuzzDeterministicDispatch extends the determinism property to
// arbitrary seeds under go test -fuzz.
func FuzzDeterministicDispatch(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		a := randomWorkload(seed)
		b := randomWorkload(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: dispatch orders differ", seed)
		}
	})
}

// TestMonotoneTime checks that dispatch times never go backwards and
// that ties dispatch in (proc, seq) order.
func TestMonotoneTime(t *testing.T) {
	order := randomWorkload(99)
	for i := 1; i < len(order); i++ {
		prev, cur := order[i-1], order[i]
		if cur.Time < prev.Time {
			t.Fatalf("time went backwards at %d: %v after %v", i, cur, prev)
		}
	}
}

func BenchmarkQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		q := New()
		for j := 0; j < 1024; j++ {
			q.At(float64(j%37), j%8, func() {})
		}
		q.Run()
	}
}
