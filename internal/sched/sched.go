// Package sched is the event-driven scheduler core that replaces the
// per-phase barrier of the lockstep engines: a min-heap event queue over
// virtual time with deterministic tie-breaking.
//
// Events are keyed (time, proc, seq): earliest virtual time first, ties
// broken by processor index, then by scheduling order (a globally
// monotone sequence number). The dispatch order of any schedule is
// therefore a pure function of the scheduling calls — never of heap
// layout or map iteration — so two runs that schedule the same events
// dispatch them identically, which is the property the Θ-model
// simulations rely on for seeded reproducibility.
//
// Dispatch is batched per instant: Step drains every event at the
// minimal queued time into a per-processor ready list and runs the whole
// batch in (proc, seq) order before looking at the heap again. Events
// scheduled *during* a batch — even at the current instant — join the
// next batch, so causally dependent same-time events never interleave
// with the batch that produced them.
package sched

import (
	"fmt"
	"math"
)

// Event is one scheduled unit of work on a processor's virtual-time
// line. The key fields are exported so observers (determinism tests,
// trace tooling) can record dispatch orders; Fn is dispatched by Run.
type Event struct {
	// Time is the virtual time at which the event fires.
	Time float64
	// Proc is the processor the event belongs to; batches at one
	// instant run in ascending Proc order.
	Proc int
	// Seq is the globally monotone scheduling sequence number, the
	// final tie-breaker: same-(time, proc) events run in the order they
	// were scheduled.
	Seq uint64
	// Fn is the work to run at dispatch.
	Fn func()
}

// key orders events by (Time, Proc, Seq).
func (e *Event) before(o *Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	if e.Proc != o.Proc {
		return e.Proc < o.Proc
	}
	return e.Seq < o.Seq
}

// Queue is a deterministic event queue over virtual time. The zero
// value is ready to use. Queues are single-goroutine structures: the
// engines that own them are serial, so no locking is provided.
type Queue struct {
	heap []*Event
	seq  uint64
	now  float64
	// batch is the per-instant ready list, reused across Step calls.
	batch []*Event
	// dispatched counts events run so far (observability + tests).
	dispatched uint64
	// observer, when set, sees every event as it is dispatched, in
	// dispatch order. Used by the determinism property tests to pin
	// event orders across runs.
	observer func(Event)
}

// New returns an empty queue at virtual time 0.
func New() *Queue { return &Queue{} }

// Now reports the queue's current virtual time: the time of the last
// dispatched batch (0 before any dispatch).
func (q *Queue) Now() float64 { return q.now }

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Dispatched reports the number of events dispatched so far.
func (q *Queue) Dispatched() uint64 { return q.dispatched }

// SetObserver installs (or clears, with nil) the dispatch observer.
func (q *Queue) SetObserver(fn func(Event)) { q.observer = fn }

// At schedules fn to run at virtual time t on processor proc. It panics
// on NaN or past times and on negative processor indices: a past event
// would silently reorder history, which is exactly the class of bug the
// deterministic queue exists to exclude.
func (q *Queue) At(t float64, proc int, fn func()) {
	if math.IsNaN(t) {
		panic("sched: NaN event time")
	}
	if t < q.now {
		panic(fmt.Sprintf("sched: event time %v before current time %v", t, q.now))
	}
	if proc < 0 {
		panic(fmt.Sprintf("sched: negative processor index %d", proc))
	}
	if fn == nil {
		panic("sched: nil event function")
	}
	e := &Event{Time: t, Proc: proc, Seq: q.seq, Fn: fn}
	q.seq++
	q.push(e)
}

// Step dispatches the entire batch of events at the minimal queued time
// and advances Now to it. It reports whether any event was dispatched
// (false on an empty queue). Events scheduled during the batch — even
// at the current instant — land in a later batch.
func (q *Queue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	t := q.heap[0].Time
	q.now = t
	q.batch = q.batch[:0]
	for len(q.heap) > 0 && q.heap[0].Time == t {
		q.batch = append(q.batch, q.pop())
	}
	// The heap pops in full (time, proc, seq) order, so the batch is
	// already sorted by (proc, seq): the per-processor ready lists are
	// simply the contiguous runs of equal Proc in this slice.
	for _, e := range q.batch {
		q.dispatched++
		if q.observer != nil {
			q.observer(*e)
		}
		e.Fn()
	}
	return true
}

// Run dispatches batches until the queue is empty.
func (q *Queue) Run() {
	for q.Step() {
	}
}

// push inserts e into the binary min-heap.
func (q *Queue) push(e *Event) {
	q.heap = append(q.heap, e)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.heap[i].before(q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// pop removes and returns the minimal event.
func (q *Queue) pop() *Event {
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = nil
	q.heap = q.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q.heap) && q.heap[l].before(q.heap[min]) {
			min = l
		}
		if r < len(q.heap) && q.heap[r].before(q.heap[min]) {
			min = r
		}
		if min == i {
			break
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
	return top
}
