// Package topology is the pluggable geometry layer of the Md machines:
// the d-dimensional near-neighbor mesh of Definition 2 (Bilardi &
// Preparata, SPAA 1995) factored out of network.Machine so the host
// interconnection can vary — fault-masked meshes here, partitioned-bus
// or reconfigurable meshes later — without every engine knowing.
//
// The canonical implementations Mesh1/Mesh2/Mesh3 reproduce the
// historical network.Machine geometry expression-for-expression:
// the spacing (n/p)^(1/d) is the exact math.Pow form the machine
// constructor used, coordinate↔index maps keep the same arithmetic, and
// Neighbors appends in the same -x, +x, -y, +y, -z, +z clipped order.
// Golden virtual times are bit-identical across the extraction because
// every float produced here is the same float the inlined code produced.
package topology

import (
	"fmt"
	"math"
)

// Topology is the geometry a machine or engine consumes: node
// coordinates, the index map, geometric distance, neighbor enumeration
// and the near-neighbor spacing. Implementations must be immutable
// after construction; all methods are safe for concurrent use.
type Topology interface {
	// Dim is the mesh dimension (1, 2 or 3).
	Dim() int
	// Nodes is the number of nodes.
	Nodes() int
	// Side is the mesh side: Nodes^(1/Dim) nodes per axis.
	Side() int
	// Spacing is the geometric near-neighbor distance (n/p)^(1/d).
	Spacing() float64
	// Coord maps node index i to grid coordinates (gz suppressed);
	// for d = 3 use Coord3.
	Coord(i int) (gx, gy int)
	// Coord3 maps node index i to full grid coordinates.
	Coord3(i int) (gx, gy, gz int)
	// Index maps grid coordinates to the node index; inverse of Coord.
	Index(gx, gy int) int
	// Index3 maps full grid coordinates to the node index; inverse of
	// Coord3.
	Index3(gx, gy, gz int) int
	// Dist is the geometric distance between nodes i and j: Manhattan
	// grid distance times the spacing, the routed wire length. It is a
	// metric (symmetric, zero iff i == j, triangle inequality).
	Dist(i, j int) float64
	// Neighbors appends the node indices adjacent to i in -x, +x, -y,
	// +y, -z, +z order, clipped to the mesh boundary.
	Neighbors(i int, buf []int) []int
}

// mesh is the shared body of the three canonical meshes: p nodes of a
// d-dimensional grid embedded in a volume-n machine.
type mesh struct {
	d, nodes, side int
	spacing        float64
}

// newMesh validates and builds the shared mesh body. The constraints
// and the spacing expression mirror network.New exactly.
func newMesh(d, n, p int) mesh {
	if d < 1 || d > 3 {
		panic(fmt.Sprintf("topology: dimension %d not in {1,2,3}", d))
	}
	if p < 1 || n < p {
		panic(fmt.Sprintf("topology: need 1 <= p <= n, got p=%d n=%d", p, n))
	}
	if n%p != 0 {
		panic(fmt.Sprintf("topology: p=%d must divide n=%d", p, n))
	}
	side := p
	if d == 2 {
		side = intSqrt(p)
		if side*side != p {
			panic(fmt.Sprintf("topology: d=2 needs square p, got %d", p))
		}
		if s := intSqrt(n); s*s != n {
			panic(fmt.Sprintf("topology: d=2 needs square n, got %d", n))
		}
	}
	if d == 3 {
		side = intCbrt(p)
		if side*side*side != p {
			panic(fmt.Sprintf("topology: d=3 needs cubic p, got %d", p))
		}
		if s := intCbrt(n); s*s*s != n {
			panic(fmt.Sprintf("topology: d=3 needs cubic n, got %d", n))
		}
	}
	return mesh{
		d: d, nodes: p, side: side,
		spacing: math.Pow(float64(n)/float64(p), 1/float64(d)),
	}
}

func (m *mesh) Dim() int         { return m.d }
func (m *mesh) Nodes() int       { return m.nodes }
func (m *mesh) Side() int        { return m.side }
func (m *mesh) Spacing() float64 { return m.spacing }

func (m *mesh) Coord(i int) (gx, gy int) {
	if m.d == 1 {
		return i, 0
	}
	return i % m.side, (i / m.side) % m.side
}

func (m *mesh) Coord3(i int) (gx, gy, gz int) {
	switch m.d {
	case 1:
		return i, 0, 0
	case 2:
		return i % m.side, i / m.side, 0
	default:
		return i % m.side, (i / m.side) % m.side, i / (m.side * m.side)
	}
}

func (m *mesh) Index(gx, gy int) int {
	if m.d == 1 {
		return gx
	}
	return gy*m.side + gx
}

func (m *mesh) Index3(gx, gy, gz int) int {
	switch m.d {
	case 1:
		return gx
	case 2:
		return gy*m.side + gx
	default:
		return (gz*m.side+gy)*m.side + gx
	}
}

func (m *mesh) Dist(i, j int) float64 {
	xi, yi, zi := m.Coord3(i)
	xj, yj, zj := m.Coord3(j)
	return float64(abs(xi-xj)+abs(yi-yj)+abs(zi-zj)) * m.spacing
}

func (m *mesh) Neighbors(i int, buf []int) []int {
	gx, gy, gz := m.Coord3(i)
	if gx > 0 {
		buf = append(buf, m.Index3(gx-1, gy, gz))
	}
	if gx < m.side-1 {
		buf = append(buf, m.Index3(gx+1, gy, gz))
	}
	if m.d >= 2 {
		if gy > 0 {
			buf = append(buf, m.Index3(gx, gy-1, gz))
		}
		if gy < m.side-1 {
			buf = append(buf, m.Index3(gx, gy+1, gz))
		}
	}
	if m.d >= 3 {
		if gz > 0 {
			buf = append(buf, m.Index3(gx, gy, gz-1))
		}
		if gz < m.side-1 {
			buf = append(buf, m.Index3(gx, gy, gz+1))
		}
	}
	return buf
}

// Mesh1 is the linear array M1: p nodes at spacing n/p.
type Mesh1 struct{ mesh }

// NewMesh1 builds the p-node linear array of a volume-n machine.
func NewMesh1(n, p int) *Mesh1 { return &Mesh1{newMesh(1, n, p)} }

// Mesh2 is the square mesh M2: √p × √p nodes at spacing (n/p)^(1/2).
type Mesh2 struct{ mesh }

// NewMesh2 builds the p-node square mesh of a volume-n machine; n and p
// must be perfect squares with p | n.
func NewMesh2(n, p int) *Mesh2 { return &Mesh2{newMesh(2, n, p)} }

// Mesh3 is the cube mesh M3: ∛p per axis at spacing (n/p)^(1/3).
type Mesh3 struct{ mesh }

// NewMesh3 builds the p-node cube mesh of a volume-n machine; n and p
// must be perfect cubes with p | n.
func NewMesh3(n, p int) *Mesh3 { return &Mesh3{newMesh(3, n, p)} }

// NewMesh dispatches on the dimension: the p-node d-mesh of a volume-n
// machine. It panics on malformed geometry exactly like network.New —
// callers on the service boundary validate first (simulate.ValidateParams).
func NewMesh(d, n, p int) Topology {
	switch d {
	case 1:
		return NewMesh1(n, p)
	case 2:
		return NewMesh2(n, p)
	default:
		return NewMesh3(n, p)
	}
}

// Root is the dimension-matched d-th root used by the engines' cost
// geometry: identity for d = 1, math.Sqrt for d = 2, math.Cbrt for
// d = 3. The per-dimension functions — not math.Pow(x, 1/d) — are what
// the historical cost formulas used, and math.Pow(x, 1/3.0) differs
// from math.Cbrt(x) in the last ulp for some x, so centralizing the
// exact forms here is what keeps the extraction bit-identical. (The
// mesh spacing keeps the machine constructor's math.Pow form for the
// same reason: each caller gets the float it always got.)
func Root(d int, x float64) float64 {
	switch d {
	case 1:
		return x
	case 2:
		return math.Sqrt(x)
	default:
		return math.Cbrt(x)
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func intSqrt(n int) int {
	if n < 0 {
		return -1
	}
	r := int(math.Sqrt(float64(n)))
	for r*r > n {
		r--
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func intCbrt(n int) int {
	if n < 0 {
		return -1
	}
	r := int(math.Cbrt(float64(n)))
	for r*r*r > n {
		r--
	}
	for (r+1)*(r+1)*(r+1) <= n {
		r++
	}
	return r
}
