package topology

import (
	"math"
	"testing"
	"testing/quick"
)

// meshes under test: one per dimension, plus fault-masked variants.
func testMeshes(t *testing.T) map[string]Topology {
	t.Helper()
	m1 := NewMesh1(16, 16)
	m2 := NewMesh2(64, 16)
	m3 := NewMesh3(512, 64)
	out := map[string]Topology{"mesh1": m1, "mesh2": m2, "mesh3": m3}
	for name, base := range map[string]Topology{"mesh1": m1, "mesh2": m2, "mesh3": m3} {
		fm, err := NewFaultMask(base, 0.25, 7, 4)
		if err != nil {
			t.Fatalf("NewFaultMask(%s): %v", name, err)
		}
		out["fault-"+name] = fm
	}
	return out
}

// Property: Dist is a metric (symmetry, identity, triangle inequality)
// for every canonical mesh AND under the FaultMask decorator — the
// topology-level half of network's TestPropertyDistanceMetric.
func TestPropertyDistMetric(t *testing.T) {
	for name, topo := range testMeshes(t) {
		topo := topo
		f := func(raw [3]uint16) bool {
			i := int(raw[0]) % topo.Nodes()
			j := int(raw[1]) % topo.Nodes()
			k := int(raw[2]) % topo.Nodes()
			dij, dji := topo.Dist(i, j), topo.Dist(j, i)
			if dij != dji {
				return false
			}
			if (i == j) != (dij == 0) {
				return false
			}
			return topo.Dist(i, k) <= dij+topo.Dist(j, k)+1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: Index3/Coord3 are inverse bijections on every mesh.
func TestPropertyIndexCoordInverse(t *testing.T) {
	for name, topo := range testMeshes(t) {
		for i := 0; i < topo.Nodes(); i++ {
			gx, gy, gz := topo.Coord3(i)
			if got := topo.Index3(gx, gy, gz); got != i {
				t.Fatalf("%s: Index3(Coord3(%d)) = %d", name, i, got)
			}
			if topo.Dim() < 3 { // Coord drops gz; d = 3 uses Coord3
				cx, cy := topo.Coord(i)
				if got := topo.Index(cx, cy); got != i {
					t.Fatalf("%s: Index(Coord(%d)) = %d", name, i, got)
				}
			}
		}
	}
}

// The mesh spacing is the machine constructor's exact expression.
func TestSpacingExpression(t *testing.T) {
	for _, tc := range []struct{ d, n, p int }{{1, 64, 4}, {2, 256, 16}, {3, 512, 8}} {
		topo := NewMesh(tc.d, tc.n, tc.p)
		want := math.Pow(float64(tc.n)/float64(tc.p), 1/float64(tc.d))
		if got := topo.Spacing(); got != want {
			t.Errorf("d=%d: spacing %v, want %v", tc.d, got, want)
		}
	}
}

// Neighbors enumerate in -x, +x, -y, +y, -z, +z order, clipped; the
// fault mask preserves that order while dropping dead nodes.
func TestNeighborsOrder(t *testing.T) {
	m2 := NewMesh2(64, 16) // side 4
	c := m2.Index(1, 1)
	want := []int{m2.Index(0, 1), m2.Index(2, 1), m2.Index(1, 0), m2.Index(1, 2)}
	got := m2.Neighbors(c, nil)
	if len(got) != len(want) {
		t.Fatalf("neighbor count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbor order %v, want %v", got, want)
		}
	}
	fm, err := NewFaultMask(m2, 0.4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	masked := fm.Neighbors(c, nil)
	j := 0
	for _, u := range got {
		if fm.DeadProc(u) {
			continue
		}
		if j >= len(masked) || masked[j] != u {
			t.Fatalf("masked neighbors %v not the live subsequence of %v", masked, got)
		}
		j++
	}
	if j != len(masked) {
		t.Fatalf("masked neighbors %v carry extra entries beyond %v", masked, got)
	}
}

// Zero density is the identity decoration: nothing dead, every stretch
// factor exactly 1.0 (the bit-identity anchor of the zero-fault golden).
func TestFaultMaskZeroDensityIdentity(t *testing.T) {
	base := NewMesh1(64, 8)
	fm, err := NewFaultMask(base, 0, 12345, 16)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Alive() != 8 || fm.DeadProcs() != 0 || fm.TotalDeadCells() != 0 {
		t.Fatalf("zero density killed something: alive=%d deadProcs=%d deadCells=%d",
			fm.Alive(), fm.DeadProcs(), fm.TotalDeadCells())
	}
	if fm.DetourFactor() != 1 || fm.MemOverhead() != 1 {
		t.Fatalf("zero density stretch factors %v/%v, want exactly 1/1",
			fm.DetourFactor(), fm.MemOverhead())
	}
	for i := 0; i < 8; i++ {
		got := fm.Neighbors(i, nil)
		want := base.Neighbors(i, nil)
		if len(got) != len(want) {
			t.Fatalf("node %d: masked neighbors %v, want %v", i, got, want)
		}
	}
}

// Dead sets are nested across densities at a fixed seed (threshold
// sampling), which is what makes E-FAULT's slowdown monotone.
func TestFaultMaskNestedAcrossDensity(t *testing.T) {
	base := NewMesh2(256, 64)
	var prev *FaultMask
	for _, density := range []float64{0.05, 0.1, 0.2, 0.4, 0.6} {
		fm, err := NewFaultMask(base, density, 99, 8)
		if err != nil {
			t.Fatalf("density %v: %v", density, err)
		}
		if prev != nil {
			for i := 0; i < base.Nodes(); i++ {
				if prev.DeadProc(i) && !fm.DeadProc(i) {
					t.Fatalf("node %d dead at lower density but alive at %v", i, density)
				}
				if prev.DeadCells(i) > fm.DeadCells(i) {
					t.Fatalf("node %d dead cells shrank at %v", i, density)
				}
			}
			if fm.MaxDetour() < prev.MaxDetour() {
				t.Fatalf("max detour shrank: %d -> %d at %v", prev.MaxDetour(), fm.MaxDetour(), density)
			}
			if fm.MemOverhead() < prev.MemOverhead() {
				t.Fatalf("mem overhead shrank: %v -> %v at %v", prev.MemOverhead(), fm.MemOverhead(), density)
			}
		}
		prev = fm
	}
}

// Same (density, seed) reproduces the same mask; a different seed a
// different one (statistically: some node differs at density 0.5).
func TestFaultMaskDeterministic(t *testing.T) {
	base := NewMesh1(128, 128)
	a, err := NewFaultMask(base, 0.5, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFaultMask(base, 0.5, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewFaultMask(base, 0.5, 43, 4)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := 0; i < 128; i++ {
		if a.DeadProc(i) != b.DeadProc(i) || a.DeadCells(i) != b.DeadCells(i) {
			t.Fatalf("node %d: same seed, different mask", i)
		}
		if a.DeadProc(i) != c.DeadProc(i) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical processor masks")
	}
}

// Construction rejects bad densities and an all-dead mesh.
func TestFaultMaskErrors(t *testing.T) {
	base := NewMesh1(4, 4)
	for _, bad := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := NewFaultMask(base, bad, 1, 4); err == nil {
			t.Errorf("density %v accepted", bad)
		}
	}
	// A density close to 1 on a tiny mesh eventually kills everyone for
	// some seed; find one and assert the constructor reports it.
	found := false
	for seed := uint64(0); seed < 5000; seed++ {
		if _, err := NewFaultMask(base, 0.999, seed, 1); err != nil {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no seed in 0..5000 killed all 4 processors at density 0.999")
	}
}

// The detour bound covers the worst dead region: killing an interior
// node of a line yields detour 1, factor 3.
func TestFaultMaskDetour(t *testing.T) {
	base := NewMesh1(8, 8)
	// Find a seed that kills exactly one interior node.
	for seed := uint64(0); seed < 20000; seed++ {
		fm, err := NewFaultMask(base, 0.1, seed, 4)
		if err != nil {
			continue
		}
		if fm.DeadProcs() != 1 {
			continue
		}
		dead := -1
		for i := 0; i < 8; i++ {
			if fm.DeadProc(i) {
				dead = i
			}
		}
		if fm.MaxDetour() != 1 {
			t.Fatalf("seed %d: single dead node %d, detour %d, want 1", seed, dead, fm.MaxDetour())
		}
		if fm.DetourFactor() != 3 {
			t.Fatalf("seed %d: detour factor %v, want 3", seed, fm.DetourFactor())
		}
		return
	}
	t.Skip("no seed with exactly one dead node found")
}
