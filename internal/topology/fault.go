package topology

import (
	"fmt"
	"math"
)

// FaultMask decorates a Topology with static faults in the style of
// Chlebus–Gasieniec–Pelc (PRAM with static processor and memory
// faults): a seeded, density-parameterized set of dead processors and
// dead memory cells, fixed at construction and never changing during a
// run. The mask is a Topology — geometric distance is unchanged (wires
// do not move, so Dist stays the base metric), while Neighbors drops
// links into dead nodes — plus the planning quantities the fault-masked
// schemes charge: the routing detour bound around dead regions and the
// memory packing overhead of squeezing images into the surviving cells.
//
// Sampling is threshold-based: every processor and every cell draws one
// fixed uniform in [0, 1) from a splitmix64 hash of (seed, identity)
// and is dead iff its draw falls below the density. Draws do not depend
// on the density, so the dead sets at densities f1 <= f2 are NESTED —
// which is what makes the measured extra slowdown monotone in the
// density at a fixed seed (E-FAULT pins this). Density 0 kills nothing
// and every derived stretch factor is exactly 1.0, so a zero-fault plan
// is bit-identical to the fault-free one (x * 1.0 == x in IEEE).
type FaultMask struct {
	base     Topology
	density  float64
	seed     uint64
	cellsPer int

	dead      []bool // per node: processor dead
	deadCells []int  // per node: dead cell count (counted for every node)
	alive     int    // live processor count
	deadCellN int    // total dead cells on live nodes
	maxDetour int    // max hop distance from any dead node to a live one
	memOver   float64
}

// NewFaultMask samples a fault mask over base at the given density with
// cellsPerNode memory cells per node. Density must lie in [0, 1); a
// node whose cells all die is counted as a dead processor (a memory
// module with no live cell cannot hold any state). An error is returned
// only when the mask leaves no live processor.
func NewFaultMask(base Topology, density float64, seed uint64, cellsPerNode int) (*FaultMask, error) {
	if math.IsNaN(density) || density < 0 || density >= 1 {
		return nil, fmt.Errorf("topology: fault density %v not in [0, 1)", density)
	}
	if cellsPerNode < 1 {
		return nil, fmt.Errorf("topology: cells per node %d < 1", cellsPerNode)
	}
	p := base.Nodes()
	fm := &FaultMask{
		base: base, density: density, seed: seed, cellsPer: cellsPerNode,
		dead:      make([]bool, p),
		deadCells: make([]int, p),
		memOver:   1,
	}
	for i := 0; i < p; i++ {
		if density > 0 {
			if faultUnit(seed, procSalt, uint64(i)) < density {
				fm.dead[i] = true
			}
			d := 0
			for c := 0; c < cellsPerNode; c++ {
				if faultUnit(seed, cellSalt, uint64(i)<<32|uint64(c)) < density {
					d++
				}
			}
			fm.deadCells[i] = d
			if d == cellsPerNode {
				fm.dead[i] = true
			}
		}
		if !fm.dead[i] {
			fm.alive++
			fm.deadCellN += fm.deadCells[i]
		}
	}
	if fm.alive == 0 {
		return nil, fmt.Errorf("topology: fault density %v with seed %d left no live processor", density, seed)
	}
	// Memory packing overhead: a module that lost D of its C cells holds
	// its share in C-D cells, stretching every image traversal by
	// C/(C-D). The max is taken over ALL modules with a live cell — not
	// just live processors — so it grows monotonically with the nested
	// dead sets (a shrinking max could otherwise dip when the worst
	// module's processor dies). An upper bound, in the paper's spirit.
	for i := 0; i < p; i++ {
		if d := fm.deadCells[i]; d > 0 && d < cellsPerNode {
			if ov := float64(cellsPerNode) / float64(cellsPerNode-d); ov > fm.memOver {
				fm.memOver = ov
			}
		}
	}
	fm.maxDetour = fm.computeDetour()
	return fm, nil
}

// computeDetour runs a multi-source BFS from the live set over the base
// mesh and returns the maximum hop distance from any dead node to its
// nearest live node — deterministic (plain queue over ascending seeds),
// O(p) time and space.
func (fm *FaultMask) computeDetour() int {
	if fm.alive == fm.base.Nodes() {
		return 0
	}
	p := fm.base.Nodes()
	dist := make([]int, p)
	queue := make([]int, 0, p)
	for i := 0; i < p; i++ {
		if fm.dead[i] {
			dist[i] = -1
		} else {
			queue = append(queue, i)
		}
	}
	max := 0
	var buf []int
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		buf = fm.base.Neighbors(v, buf[:0])
		for _, u := range buf {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				if dist[u] > max {
					max = dist[u]
				}
				queue = append(queue, u)
			}
		}
	}
	// Dead nodes unreachable from any live node (a fully dead mesh
	// cannot occur: alive >= 1 and the mesh is connected).
	return max
}

// --- Topology implementation ---

// Dim reports the base dimension.
func (fm *FaultMask) Dim() int { return fm.base.Dim() }

// Nodes reports the base node count (dead nodes keep their indices).
func (fm *FaultMask) Nodes() int { return fm.base.Nodes() }

// Side reports the base mesh side.
func (fm *FaultMask) Side() int { return fm.base.Side() }

// Spacing reports the base near-neighbor spacing.
func (fm *FaultMask) Spacing() float64 { return fm.base.Spacing() }

// Coord delegates to the base geometry.
func (fm *FaultMask) Coord(i int) (gx, gy int) { return fm.base.Coord(i) }

// Coord3 delegates to the base geometry.
func (fm *FaultMask) Coord3(i int) (gx, gy, gz int) { return fm.base.Coord3(i) }

// Index delegates to the base geometry.
func (fm *FaultMask) Index(gx, gy int) int { return fm.base.Index(gx, gy) }

// Index3 delegates to the base geometry.
func (fm *FaultMask) Index3(gx, gy, gz int) int { return fm.base.Index3(gx, gy, gz) }

// Dist is the base geometric distance: faults kill processors, not
// wire length, so the metric properties are inherited unchanged. The
// routing stretch of steering around dead regions is accounted by
// DetourFactor, not folded into the metric.
func (fm *FaultMask) Dist(i, j int) float64 { return fm.base.Dist(i, j) }

// Neighbors appends the LIVE neighbors of i in base order: links into a
// dead node carry no traffic.
func (fm *FaultMask) Neighbors(i int, buf []int) []int {
	n := len(buf)
	buf = fm.base.Neighbors(i, buf)
	w := n
	for _, u := range buf[n:] {
		if !fm.dead[u] {
			buf[w] = u
			w++
		}
	}
	return buf[:w]
}

// --- fault accounting ---

// Density reports the sampling density.
func (fm *FaultMask) Density() float64 { return fm.density }

// Seed reports the sampling seed.
func (fm *FaultMask) Seed() uint64 { return fm.seed }

// DeadProc reports whether node i's processor is dead.
func (fm *FaultMask) DeadProc(i int) bool { return fm.dead[i] }

// Alive reports the live processor count.
func (fm *FaultMask) Alive() int { return fm.alive }

// DeadProcs reports the dead processor count.
func (fm *FaultMask) DeadProcs() int { return fm.base.Nodes() - fm.alive }

// DeadCells reports node i's dead cell count.
func (fm *FaultMask) DeadCells(i int) int { return fm.deadCells[i] }

// TotalDeadCells reports the dead cells summed over live nodes (dead
// processors take their whole module down with them).
func (fm *FaultMask) TotalDeadCells() int { return fm.deadCellN }

// CellsPerNode reports the per-node cell count the mask sampled over.
func (fm *FaultMask) CellsPerNode() int { return fm.cellsPer }

// MaxDetour reports the maximum hop distance from any dead node to its
// nearest live node — the radius of the worst dead region.
func (fm *FaultMask) MaxDetour() int { return fm.maxDetour }

// DetourFactor bounds the routing stretch around dead regions: a
// straight route hop landing on a dead node is replaced by at most
// 1 + 2·MaxDetour live hops (out to the nearest live node and back),
// so every distance-proportional charge stretches by at most this
// factor. Exactly 1.0 when nothing is dead.
func (fm *FaultMask) DetourFactor() float64 {
	if fm.maxDetour == 0 {
		return 1
	}
	return 1 + 2*float64(fm.maxDetour)
}

// MemOverhead bounds the memory packing stretch: the worst surviving
// module holds its image in C-D of C cells, so image traversals pay at
// most C/(C-D) more. Exactly 1.0 when no cell is dead.
func (fm *FaultMask) MemOverhead() float64 { return fm.memOver }

// Salts separate the processor and cell draw streams of one seed.
const (
	procSalt uint64 = 0x70726f63 // "proc"
	cellSalt uint64 = 0x63656c6c // "cell"
)

// faultUnit hashes (seed, salt, id) to a uniform in [0, 1) with the
// splitmix64 finalizer — the same idiom as the Θ-model's delay draws
// (cost.ThetaModel), kept local so topology stays dependency-free.
func faultUnit(seed, salt, id uint64) float64 {
	x := seed ^ mix64(salt) ^ mix64(id+0x9e3779b97f4a7c15)
	return float64(mix64(x)>>11) / (1 << 53)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
