package analytic

import "testing"

func TestRoundToPow2Divisor(t *testing.T) {
	cases := []struct {
		target float64
		limit  int
		want   int
	}{
		{7.9, 64, 8}, {0.3, 64, 1}, {100, 16, 16}, {5, 8, 4}, {1024, 32, 32},
		{1, 1, 1}, {6, 12, 4}, {16, 24, 8}, // non-pow2 limits: halve until divisor
	}
	for _, c := range cases {
		if got := RoundToPow2Divisor(c.target, c.limit); got != c.want {
			t.Errorf("RoundToPow2Divisor(%v, %d) = %d, want %d", c.target, c.limit, got, c.want)
		}
	}
}

func TestRoundToPow2DivisorAlwaysDivides(t *testing.T) {
	for limit := 1; limit <= 96; limit++ {
		for _, target := range []float64{0, 0.5, 1, 2.7, 9, 33, 1e6} {
			s := RoundToPow2Divisor(target, limit)
			if s < 1 || limit%s != 0 {
				t.Fatalf("RoundToPow2Divisor(%v, %d) = %d does not divide", target, limit, s)
			}
			if s&(s-1) != 0 {
				t.Fatalf("RoundToPow2Divisor(%v, %d) = %d not a power of two", target, limit, s)
			}
		}
	}
}

func TestIntSqrtExact(t *testing.T) {
	for _, c := range []struct{ n, want int }{{0, 0}, {1, 1}, {4, 2}, {64, 8}, {1024, 32}} {
		if got := IntSqrtExact(c.n); got != c.want {
			t.Errorf("IntSqrtExact(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestIntCbrtExact(t *testing.T) {
	for _, c := range []struct{ n, want int }{{0, 0}, {1, 1}, {8, 2}, {64, 4}, {512, 8}} {
		if got := IntCbrtExact(c.n); got != c.want {
			t.Errorf("IntCbrtExact(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestIntRootsPanicOnInexact(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("IntSqrtExact(63)", func() { IntSqrtExact(63) })
	mustPanic("IntCbrtExact(63)", func() { IntCbrtExact(63) })
}
