// Package analytic provides the closed-form bounds of Bilardi & Preparata
// (SPAA 1995) — Theorems 1 through 5, the locality-slowdown function A(s)
// and its per-range optimum s*, the Brent and naive-simulation baselines,
// and the Proposition 3 space/time constants — as executable formulas that
// the experiment suite compares against measured virtual times.
//
// Following the paper's footnote, Log(a) denotes log2(a+2) throughout, so
// Log(a) >= 1 for every non-negative a.
package analytic

import (
	"fmt"
	"math"
)

// Log is the paper's guarded logarithm: log2(a + 2).
func Log(a float64) float64 {
	if a < 0 {
		a = 0
	}
	return math.Log2(a + 2)
}

// Brent is the classical parallelism slowdown of Brent's principle:
// simulating n processors on p costs a factor ceil(n/p); no locality term.
func Brent(n, p int) float64 {
	return math.Ceil(float64(n) / float64(p))
}

// NaiveSlowdown is the slowdown of the naive step-by-step simulation of
// Md(n, n, m) by Md(n, p, m) (Proposition 1 and its parallel version in
// Section 4.2): (n/p)^(1+1/d). Each of the n/p simulated nodes per host
// step requires an access at distance Θ((n/p)^(1/d)).
func NaiveSlowdown(d, n, p int) float64 {
	np := float64(n) / float64(p)
	return np * math.Pow(np, 1/float64(d))
}

// Theorem2Slowdown is the d = 1, m = 1 uniprocessor bound: T1/Tn = O(n log n).
func Theorem2Slowdown(n int) float64 {
	return float64(n) * Log(float64(n))
}

// Theorem3Slowdown is the d = 1 uniprocessor bound for general m:
// T1/Tn = O(n · min(n, m·Log(n/m))).
func Theorem3Slowdown(n, m int) float64 {
	nf, mf := float64(n), float64(m)
	return nf * math.Min(nf, mf*Log(nf/mf))
}

// Theorem5Slowdown is the d = 2, m = 1 uniprocessor bound: T1/Tn = O(n log n).
func Theorem5Slowdown(n int) float64 {
	return float64(n) * Log(float64(n))
}

// Range identifies which of Theorem 1's four mechanisms dominates for a
// given memory density m.
type Range int

const (
	// Range1 is m <= (n/p)^(1/2d): rearrangement alone suffices; the
	// recursive divide-and-conquer dominates.
	Range1 Range = 1 + iota
	// Range2 is (n/p)^(1/2d) < m <= (np)^(1/2d): Regime 1 relocation
	// balanced against naive execution of D(m) diamonds.
	Range2
	// Range3 is (np)^(1/2d) < m <= n^(1/d): relocation recedes; naive
	// execution of large diamonds dominates.
	Range3
	// Range4 is m > n^(1/d): only the naive simulation is profitable.
	Range4
)

// String names the range.
func (r Range) String() string { return fmt.Sprintf("range%d", int(r)) }

// Boundaries returns Theorem 1's three range boundaries for dimension d:
// (n/p)^(1/2d), (np)^(1/2d), n^(1/d).
func Boundaries(d, n, p int) (b12, b23, b34 float64) {
	nf, pf, df := float64(n), float64(p), float64(d)
	b12 = math.Pow(nf/pf, 1/(2*df))
	b23 = math.Pow(nf*pf, 1/(2*df))
	b34 = math.Pow(nf, 1/df)
	return
}

// RangeOf classifies m into Theorem 1's ranges.
func RangeOf(d, n, m, p int) Range {
	b12, b23, b34 := Boundaries(d, n, p)
	mf := float64(m)
	switch {
	case mf <= b12:
		return Range1
	case mf <= b23:
		return Range2
	case mf <= b34:
		return Range3
	default:
		return Range4
	}
}

// A is the locality-slowdown term A(n, m, p) of Theorem 1 for dimension d:
// the total slowdown is (n/p) · A. The four ranges use the paper's
// expressions verbatim (with Log = log2(·+2)):
//
//	range 1: (m/p^(1/d))·Log(m) + m·Log(2·n^(1/d) / (p^(1/d)·m²))
//	range 2: (m/p)·Log((n/p)^(1/2d)) + 2·(n/p)^(1/2d)
//	range 3: (m/p^(1/d))·Log(2·n^(1/d)/m) + n^(1/d)/m
//	range 4: (n/p)^(1/d)
func A(d, n, m, p int) float64 {
	nf, mf, pf, df := float64(n), float64(m), float64(p), float64(d)
	switch RangeOf(d, n, m, p) {
	case Range1:
		p1d := math.Pow(pf, 1/df)
		n1d := math.Pow(nf, 1/df)
		return mf/p1d*Log(mf) + mf*Log(2*n1d/(p1d*mf*mf))
	case Range2:
		half := math.Pow(nf/pf, 1/(2*df))
		return mf/pf*Log(half) + 2*half
	case Range3:
		p1d := math.Pow(pf, 1/df)
		n1d := math.Pow(nf, 1/df)
		return mf/p1d*Log(2*n1d/mf) + n1d/mf
	default:
		return math.Pow(nf/pf, 1/df)
	}
}

// Slowdown is Theorem 1's full bound (n/p) · A(n, m, p).
func Slowdown(d, n, m, p int) float64 {
	return float64(n) / float64(p) * A(d, n, m, p)
}

// AOfS is the d = 1 locality-slowdown as a function of the strip width s
// from the proof of Theorem 4:
//
//	A(s) = (m/p)·Log(n/(p·s)) + min(s, m·Log(s/m)) + n/(p·s)
//
// (Regime 1 relocation + per-strip execution + cooperating-mode exchange).
func AOfS(n, m, p int, s float64) float64 {
	nf, mf, pf := float64(n), float64(m), float64(p)
	exec := math.Min(s, mf*Log(s/mf))
	return mf/pf*Log(nf/(pf*s)) + exec + nf/(pf*s)
}

// OptimalS is the minimizing strip width s* of A(s) per Theorem 4's
// analysis:
//
//	range 1: s* ≈ n/(m·p)      (width n/p at m = 1, shrinking to √(n/p))
//	range 2: s* = (n/p)^(1/2)
//	range 3: s* = m/p
//	range 4: s* = n/p          (naive only)
func OptimalS(n, m, p int) float64 {
	nf, mf, pf := float64(n), float64(m), float64(p)
	switch RangeOf(1, n, m, p) {
	case Range1:
		return nf / (mf * pf)
	case Range2:
		return math.Sqrt(nf / pf)
	case Range3:
		return mf / pf
	default:
		return nf / pf
	}
}

// SeparatorSpaceBound is Proposition 3's space constant: executing a set
// with a (c·x^γ, δ)-topological separator having q pieces takes space at
// most σ0·k^γ with σ0 = q·c·δ^γ/(1-δ^γ).
func SeparatorSpaceBound(q int, c, delta, gamma float64, k float64) float64 {
	dg := math.Pow(delta, gamma)
	sigma0 := float64(q) * c * dg / (1 - dg)
	return sigma0 * math.Pow(k, gamma)
}

// SeparatorTimeBound is Proposition 3's time bound τ0·k·Log(k) on an
// (a·x^α)-H-RAM with α <= (1-γ)/γ: τ0 = 4·q·a·σ0^α·c·δ^γ / log2(1/δ).
func SeparatorTimeBound(q int, a, alpha, c, delta, gamma float64, k float64) float64 {
	dg := math.Pow(delta, gamma)
	sigma0 := float64(q) * c * dg / (1 - dg)
	tau0 := 4 * float64(q) * a * math.Pow(sigma0, alpha) * c * dg / math.Log2(1/delta)
	return tau0 * k * Log(k)
}

// MatmulMeshTime is the intro example's mesh time: multiplying two
// √n × √n matrices on a √n × √n mesh takes Θ(√n) steps, each Θ(1) time.
func MatmulMeshTime(n int) float64 { return math.Sqrt(float64(n)) }

// MatmulNaiveUniTime is the intro example's straightforward uniprocessor
// time: Θ(n^(3/2)) operations, each paying the average access distance
// Θ(√n): Θ(n²) total.
func MatmulNaiveUniTime(n int) float64 { return math.Pow(float64(n), 2) }

// MatmulBlockedUniTime is the locality-aware uniprocessor time
// (the [AACS87] observation): Θ(n^(3/2)·log n).
func MatmulBlockedUniTime(n int) float64 {
	return math.Pow(float64(n), 1.5) * Log(float64(n))
}
