package analytic

import (
	"fmt"
	"math"
)

// Integer-geometry helpers shared by the simulation schemes: strip/span
// rounding and exact perfect-power roots. They live here (rather than in
// simulate, where they historically accumulated per-dimension copies)
// because they are part of the same closed-form layer as OptimalS and the
// range boundaries: the executable schemes quantize the analytic optima
// with them.

// RoundToPow2Divisor rounds target to the nearest power of two in
// [1, limit] (limit itself must be a power of two for exact
// divisibility); when limit is not a power of two, the result is further
// halved until it divides limit.
func RoundToPow2Divisor(target float64, limit int) int {
	if target < 1 {
		target = 1
	}
	e := math.Round(math.Log2(target))
	s := int(math.Exp2(e))
	if s < 1 {
		s = 1
	}
	for s > limit {
		s /= 2
	}
	// Ensure divisibility even when limit is not a power of two.
	for s > 1 && limit%s != 0 {
		s /= 2
	}
	return s
}

// IntSqrtExact returns √n for a perfect square n, and panics otherwise:
// the d = 2 schemes require a square mesh, and a silent rounding would
// misattribute every distance charge.
func IntSqrtExact(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	if r*r != n {
		panic(fmt.Sprintf("analytic: %d is not a perfect square", n))
	}
	return r
}

// IntCbrtExact returns ∛n for a perfect cube n, and panics otherwise.
func IntCbrtExact(n int) int {
	r := 0
	for (r+1)*(r+1)*(r+1) <= n {
		r++
	}
	if r*r*r != n {
		panic(fmt.Sprintf("analytic: %d is not a perfect cube", n))
	}
	return r
}
