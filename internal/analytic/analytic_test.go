package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogGuarded(t *testing.T) {
	if got := Log(0); got != 1 {
		t.Errorf("Log(0) = %v, want 1 (log2 of 2)", got)
	}
	if got := Log(2); got != 2 {
		t.Errorf("Log(2) = %v, want 2", got)
	}
	if got := Log(-5); got != 1 {
		t.Errorf("Log(-5) = %v, want clamp to 1", got)
	}
}

func TestBrent(t *testing.T) {
	if Brent(8, 2) != 4 {
		t.Error("Brent(8,2) != 4")
	}
	if Brent(9, 2) != 5 {
		t.Error("Brent(9,2) != 5 (ceil)")
	}
}

func TestNaiveSlowdown(t *testing.T) {
	if got := NaiveSlowdown(1, 16, 1); got != 256 {
		t.Errorf("d=1 naive = %v, want (n/p)² = 256", got)
	}
	if got := NaiveSlowdown(2, 16, 1); math.Abs(got-64) > 1e-9 {
		t.Errorf("d=2 naive = %v, want n^1.5 = 64", got)
	}
	if got := NaiveSlowdown(1, 16, 4); got != 16 {
		t.Errorf("d=1 p=4 naive = %v, want 16", got)
	}
}

func TestBoundaries(t *testing.T) {
	b12, b23, b34 := Boundaries(1, 1024, 16)
	if math.Abs(b12-8) > 1e-9 { // sqrt(64)
		t.Errorf("b12 = %v, want 8", b12)
	}
	if math.Abs(b23-128) > 1e-9 { // sqrt(16384)
		t.Errorf("b23 = %v, want 128", b23)
	}
	if math.Abs(b34-1024) > 1e-9 {
		t.Errorf("b34 = %v, want 1024", b34)
	}
	// d = 2: fourth roots and square root.
	b12, b23, b34 = Boundaries(2, 65536, 16)
	if math.Abs(b12-8) > 1e-9 { // (4096)^(1/4)
		t.Errorf("d2 b12 = %v, want 8", b12)
	}
	if math.Abs(b23-32) > 1e-9 { // (2^20)^(1/4)
		t.Errorf("d2 b23 = %v, want 32", b23)
	}
	if math.Abs(b34-256) > 1e-9 {
		t.Errorf("d2 b34 = %v, want 256", b34)
	}
}

func TestRangeOf(t *testing.T) {
	n, p := 1024, 16 // boundaries at 8, 128, 1024
	cases := map[int]Range{
		1: Range1, 8: Range1, 9: Range2, 128: Range2,
		129: Range3, 1024: Range3, 1025: Range4, 4096: Range4,
	}
	for m, want := range cases {
		if got := RangeOf(1, n, m, p); got != want {
			t.Errorf("RangeOf(m=%d) = %v, want %v", m, got, want)
		}
	}
}

func TestRange4IsNaive(t *testing.T) {
	// In range 4 the slowdown equals the naive bound (n/p)^(1+1/d).
	n, p := 256, 4
	m := 2 * n // range 4
	if got, want := Slowdown(1, n, m, p), NaiveSlowdown(1, n, p); math.Abs(got-want) > 1e-9 {
		t.Errorf("range-4 slowdown %v != naive %v", got, want)
	}
}

func TestSlowdownAtLeastBrent(t *testing.T) {
	// Locality can only add to the parallelism slowdown: A >= 1 wherever
	// defined, so Slowdown >= n/p.
	for _, d := range []int{1, 2} {
		for _, m := range []int{1, 4, 64, 1024, 1 << 20} {
			if got := Slowdown(d, 65536, m, 16); got < 4096 {
				t.Errorf("d=%d m=%d: slowdown %v below Brent n/p", d, m, got)
			}
		}
	}
}

func TestAContinuityAtBoundaries(t *testing.T) {
	// The four branches should agree within a constant factor at the
	// range boundaries (they describe the same mechanism changing over).
	n, p := 1<<20, 16
	b12, b23, b34 := Boundaries(1, n, p)
	for _, b := range []float64{b12, b23, b34} {
		lo := A(1, n, int(b), p)
		hi := A(1, n, int(b)+1, p)
		ratio := hi / lo
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("A discontinuous at m=%v: %v vs %v (ratio %v)", b, lo, hi, ratio)
		}
	}
}

func TestAOfSMinimizedNearOptimalS(t *testing.T) {
	// Sweeping s, the minimum of A(s) should be within a factor ~2 of
	// A(s*) for each range's representative m.
	n, p := 1<<16, 8
	for _, m := range []int{2, 64, 2048} {
		sStar := OptimalS(n, m, p)
		best := math.Inf(1)
		for s := 1.0; s <= float64(n)/float64(p); s *= 1.25 {
			if v := AOfS(n, m, p, s); v < best {
				best = v
			}
		}
		atStar := AOfS(n, m, p, sStar)
		if atStar > 2.5*best {
			t.Errorf("m=%d: A(s*=%v) = %v, swept min %v — s* not near-optimal",
				m, sStar, atStar, best)
		}
	}
}

func TestOptimalSContinuity(t *testing.T) {
	// s* is continuous at the range boundaries: n/(mp) -> sqrt(n/p) at
	// m = sqrt(n/p); m/p -> n/p is not continuous at m = n (the paper's
	// regime collapse), but sqrt(n/p) -> m/p matches at m = sqrt(np).
	n, p := 1<<16, 16
	b12, b23, _ := Boundaries(1, n, p)
	s1 := float64(n) / (b12 * float64(p))
	s2 := math.Sqrt(float64(n) / float64(p))
	if math.Abs(s1-s2)/s2 > 0.01 {
		t.Errorf("s* mismatch at b12: %v vs %v", s1, s2)
	}
	s3 := b23 / float64(p)
	if math.Abs(s3-s2)/s2 > 0.01 {
		t.Errorf("s* mismatch at b23: %v vs %v", s3, s2)
	}
}

func TestSeparatorBoundsPositive(t *testing.T) {
	// Diamond separator: q=4, c=2√2, δ=1/4, γ=1/2 on f(x)=x (a=1, α=1).
	k := 4096.0
	space := SeparatorSpaceBound(4, 2*math.Sqrt2, 0.25, 0.5, k)
	if space <= math.Sqrt(k) || space > 100*math.Sqrt(k) {
		t.Errorf("space bound %v implausible for √k = %v", space, math.Sqrt(k))
	}
	tm := SeparatorTimeBound(4, 1, 1, 2*math.Sqrt2, 0.25, 0.5, k)
	if tm <= k*Log(k) {
		t.Errorf("time bound %v should exceed k·Log k = %v", tm, k*Log(k))
	}
}

func TestMatmulBounds(t *testing.T) {
	n := 4096
	mesh := MatmulMeshTime(n)
	naive := MatmulNaiveUniTime(n)
	blocked := MatmulBlockedUniTime(n)
	if !(mesh < blocked && blocked < naive) {
		t.Errorf("ordering violated: mesh %v, blocked %v, naive %v", mesh, naive, blocked)
	}
	// Superlinear speedup: naive/mesh = n^1.5 >> n.
	if naive/mesh < float64(n) {
		t.Errorf("naive/mesh = %v, want > n = %d (superlinear)", naive/mesh, n)
	}
}

// Property: A is positive and the range classification is monotone in m.
func TestPropertyRangesMonotone(t *testing.T) {
	f := func(mRaw uint16, pRaw uint8) bool {
		n := 1 << 14
		p := 1 << (pRaw % 8)
		m1 := int(mRaw)%n + 1
		m2 := m1 + int(mRaw%100) + 1
		if RangeOf(1, n, m1, p) > RangeOf(1, n, m2, p) {
			return false
		}
		return A(1, n, m1, p) > 0 && A(2, n*n, m1, p*p) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Slowdown never beats Brent by construction and never exceeds
// the naive bound by more than the Log factors allow.
func TestPropertySlowdownSandwich(t *testing.T) {
	f := func(mRaw uint16, pExp uint8) bool {
		n := 1 << 12
		p := 1 << (pExp % 6)
		m := int(mRaw)%(4*n) + 1
		s := Slowdown(1, n, m, p)
		if s < Brent(n, p) {
			return false
		}
		// Upper sanity: A <= ~4·(naive locality term)·Log(n).
		return s <= NaiveSlowdown(1, n, p)*4*Log(float64(n))*Log(float64(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTheoremSlowdownForms(t *testing.T) {
	if Theorem2Slowdown(64) != 64*Log(64) {
		t.Error("Theorem2Slowdown mismatch")
	}
	// Small m: the m·Log branch wins; huge m: the n branch caps it.
	if got, want := Theorem3Slowdown(64, 2), 64*2*Log(32); got != want {
		t.Errorf("Theorem3Slowdown(64,2) = %v, want %v", got, want)
	}
	if got, want := Theorem3Slowdown(64, 1<<20), float64(64*64); got != want {
		t.Errorf("Theorem3Slowdown cap = %v, want %v", got, want)
	}
	if Theorem5Slowdown(64) != 64*Log(64) {
		t.Error("Theorem5Slowdown mismatch")
	}
}

func TestRangeString(t *testing.T) {
	if Range1.String() != "range1" || Range4.String() != "range4" {
		t.Error("Range.String mismatch")
	}
}
