package hram

import (
	"testing"

	"bsmp/internal/cost"
)

func BenchmarkReadWrite(b *testing.B) {
	var meter cost.Meter
	m := New(1<<16, Standard(1, 1), &meter)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Write(i%(1<<16), Word(i))
		m.Read(i % (1 << 16))
	}
}

func BenchmarkBlockCopyPerWord(b *testing.B) {
	var meter cost.Meter
	m := New(1<<16, Standard(1, 1), &meter)
	for i := 0; i < b.N; i++ {
		m.BlockCopy(0, 1<<15, 256)
	}
}

func BenchmarkBlockCopyPipelined(b *testing.B) {
	var meter cost.Meter
	m := New(1<<16, Standard(1, 1), &meter, WithPipelinedBlocks())
	for i := 0; i < b.N; i++ {
		m.BlockCopy(0, 1<<15, 256)
	}
}
