// Package hram implements the Hierarchical Random Access Machine of
// Definition 1 of Bilardi & Preparata (SPAA 1995): a RAM in which an access
// to address x costs f(x) time units. The physically motivated access
// function — memory laid out in d dimensions with density m cells per unit
// volume, signals traveling at bounded speed — is
//
//	f(x) = max(1, (x/m)^(1/d))
//
// with the paper's normalization that the unit of time is one instruction
// on address 0 and the unit of length is the distance reachable in unit
// time.
//
// An H-RAM charges its activity into a cost.Meter; it never consumes
// wall-clock resources proportional to the model cost.
package hram

import (
	"fmt"
	"math"

	"bsmp/internal/cost"
)

// Word is the H-RAM memory word. Integer words make functional
// verification of simulations exact.
type Word = uint64

// AccessFunc gives the access time f(x) for address x. Implementations
// must be non-negative and (for the theorems to apply) non-decreasing.
type AccessFunc func(x int) float64

// Standard returns the physical access function f(x) = max(1, (x/m)^(1/d))
// for a d-dimensional layout of density m (paper, Section 2). It panics
// unless d is 1, 2, or 3 and m >= 1.
func Standard(d, m int) AccessFunc {
	if d < 1 || d > 3 {
		panic(fmt.Sprintf("hram: dimension %d not in 1..3", d))
	}
	if m < 1 {
		panic(fmt.Sprintf("hram: density %d < 1", m))
	}
	fm := float64(m)
	switch d {
	case 1:
		return func(x int) float64 {
			return math.Max(1, float64(x)/fm)
		}
	case 2:
		return func(x int) float64 {
			return math.Max(1, math.Sqrt(float64(x)/fm))
		}
	default:
		return func(x int) float64 {
			return math.Max(1, math.Cbrt(float64(x)/fm))
		}
	}
}

// Uniform returns the unit-cost access function of the classical RAM —
// the "instantaneous technology" baseline against which the paper
// contrasts its model.
func Uniform() AccessFunc {
	return func(int) float64 { return 1 }
}

// Machine is an f(x)-H-RAM with a fixed-size memory. All activity is
// charged into the attached meter.
type Machine struct {
	mem       []Word
	f         AccessFunc
	meter     *cost.Meter
	pipelined bool
}

// Option configures a Machine.
type Option func(*Machine)

// WithPipelinedBlocks makes block copies cost latency + length
// (one f(·) charge for the farthest touched address plus one unit per
// word) instead of per-word access charges. This models the
// "memory enhanced with pipelining capabilities" discussed in the paper's
// conclusions and is used by the ablation benchmarks.
func WithPipelinedBlocks() Option {
	return func(m *Machine) { m.pipelined = true }
}

// New returns an H-RAM with size words of zeroed memory, access function f,
// charging into meter. It panics if size < 1 or any argument is nil.
func New(size int, f AccessFunc, meter *cost.Meter, opts ...Option) *Machine {
	if size < 1 {
		panic(fmt.Sprintf("hram: size %d < 1", size))
	}
	if f == nil || meter == nil {
		panic("hram: nil access function or meter")
	}
	m := &Machine{mem: make([]Word, size), f: f, meter: meter}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Size reports the memory size in words.
func (m *Machine) Size() int { return len(m.mem) }

// Meter returns the attached meter.
func (m *Machine) Meter() *cost.Meter { return m.meter }

// Pipelined reports whether block copies use the pipelined cost model.
func (m *Machine) Pipelined() bool { return m.pipelined }

// check panics on an out-of-bounds address.
func (m *Machine) check(addr int) {
	if addr < 0 || addr >= len(m.mem) {
		panic(fmt.Sprintf("hram: address %d out of bounds [0,%d)", addr, len(m.mem)))
	}
}

// Read returns the word at addr, charging f(addr) under Access.
func (m *Machine) Read(addr int) Word {
	m.check(addr)
	m.meter.Charge(cost.Access, m.f(addr))
	return m.mem[addr]
}

// Write stores w at addr, charging f(addr) under Access.
func (m *Machine) Write(addr int, w Word) {
	m.check(addr)
	m.meter.Charge(cost.Access, m.f(addr))
	m.mem[addr] = w
}

// Peek returns the word at addr without charging — for assertions and
// verification only, never inside a measured simulation path.
func (m *Machine) Peek(addr int) Word {
	m.check(addr)
	return m.mem[addr]
}

// Poke stores w at addr without charging — for test setup and loading
// initial inputs whose placement cost is accounted separately (or amortized
// away, as in the paper's preprocessing arguments).
func (m *Machine) Poke(addr int, w Word) {
	m.check(addr)
	m.mem[addr] = w
}

// Op charges one unit of Compute time — one RAM instruction's worth of
// local work (the operands are assumed already read via Read).
func (m *Machine) Op() {
	m.meter.Charge(cost.Compute, 1)
}

// BlockCopy copies k words from src.. to dst.. (non-overlapping or
// dst < src; verified), charging under Transfer. In the default per-word
// model each moved word costs f(source address) + f(destination address),
// matching the paper's "read from and written to a location with address
// lower than S(U)" accounting in Proposition 2. In the pipelined model the
// whole block costs f(highest touched address) + k.
func (m *Machine) BlockCopy(dst, src, k int) {
	if k < 0 {
		panic(fmt.Sprintf("hram: negative block length %d", k))
	}
	if k == 0 {
		return
	}
	m.check(src)
	m.check(src + k - 1)
	m.check(dst)
	m.check(dst + k - 1)
	if dst > src && dst < src+k {
		panic(fmt.Sprintf("hram: overlapping forward copy dst=%d src=%d k=%d", dst, src, k))
	}
	if m.pipelined {
		far := src + k - 1
		if dst+k-1 > far {
			far = dst + k - 1
		}
		m.meter.Charge(cost.Transfer, m.f(far)+float64(k))
	} else {
		var total float64
		for i := 0; i < k; i++ {
			total += m.f(src+i) + m.f(dst+i)
		}
		m.meter.Charge(cost.Transfer, total)
	}
	copy(m.mem[dst:dst+k], m.mem[src:src+k])
}

// MoveWord moves one word from src to dst charging f(src) + f(dst) under
// Transfer (a single-value relocation step of Proposition 2).
func (m *Machine) MoveWord(dst, src int) {
	m.check(src)
	m.check(dst)
	m.meter.Charge(cost.Transfer, m.f(src)+m.f(dst))
	m.mem[dst] = m.mem[src]
}
