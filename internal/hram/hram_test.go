package hram

import (
	"math"
	"testing"
	"testing/quick"

	"bsmp/internal/cost"
)

func TestStandardAccessFunc(t *testing.T) {
	cases := []struct {
		d, m int
		x    int
		want float64
	}{
		{1, 1, 0, 1},
		{1, 1, 5, 5},
		{1, 4, 8, 2},
		{2, 1, 16, 4},
		{2, 4, 16, 2},
		{3, 1, 27, 3},
		{3, 1, 1000000, 100},
	}
	for _, c := range cases {
		f := Standard(c.d, c.m)
		if got := f(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Standard(%d,%d)(%d) = %v, want %v", c.d, c.m, c.x, got, c.want)
		}
	}
}

func TestStandardClampsToUnit(t *testing.T) {
	f := Standard(2, 100)
	if got := f(4); got != 1 {
		t.Errorf("f(4) with m=100 = %v, want clamp to 1", got)
	}
}

func TestStandardPanics(t *testing.T) {
	for _, c := range []struct{ d, m int }{{0, 1}, {4, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Standard(%d,%d) did not panic", c.d, c.m)
				}
			}()
			Standard(c.d, c.m)
		}()
	}
}

func TestUniform(t *testing.T) {
	f := Uniform()
	if f(0) != 1 || f(1<<20) != 1 {
		t.Fatal("Uniform not unit cost")
	}
}

func newTest(size int, opts ...Option) (*Machine, *cost.Meter) {
	var m cost.Meter
	return New(size, Standard(1, 1), &m, opts...), &m
}

func TestReadWriteChargesAccess(t *testing.T) {
	m, meter := newTest(16)
	m.Write(10, 42)
	if got := m.Read(10); got != 42 {
		t.Fatalf("Read = %d, want 42", got)
	}
	// f(10) = 10 for write + 10 for read.
	if got := meter.Total(cost.Access); got != 20 {
		t.Fatalf("access total = %v, want 20", got)
	}
	if meter.Now() != 20 {
		t.Fatalf("clock = %v, want 20", meter.Now())
	}
}

func TestAddressZeroCostsUnit(t *testing.T) {
	m, meter := newTest(4)
	m.Read(0)
	if got := meter.Total(cost.Access); got != 1 {
		t.Fatalf("f(0) charge = %v, want 1 (paper's unit normalization)", got)
	}
}

func TestPeekPokeFree(t *testing.T) {
	m, meter := newTest(8)
	m.Poke(5, 7)
	if m.Peek(5) != 7 {
		t.Fatal("Peek after Poke mismatch")
	}
	if meter.Sum() != 0 {
		t.Fatalf("Peek/Poke charged %v", meter.Sum())
	}
}

func TestOpChargesCompute(t *testing.T) {
	m, meter := newTest(4)
	m.Op()
	m.Op()
	if got := meter.Total(cost.Compute); got != 2 {
		t.Fatalf("compute total = %v, want 2", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	m, _ := newTest(4)
	for name, fn := range map[string]func(){
		"read high":  func() { m.Read(4) },
		"read neg":   func() { m.Read(-1) },
		"write high": func() { m.Write(99, 0) },
		"poke neg":   func() { m.Poke(-2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBlockCopyMovesData(t *testing.T) {
	m, meter := newTest(32)
	for i := 0; i < 4; i++ {
		m.Poke(20+i, Word(i+1))
	}
	m.BlockCopy(2, 20, 4)
	for i := 0; i < 4; i++ {
		if m.Peek(2+i) != Word(i+1) {
			t.Fatalf("dst[%d] = %d", i, m.Peek(2+i))
		}
	}
	// Per-word: sum f(20..23) + f(2..5) = (20+21+22+23) + (2+3+4+5) = 100.
	if got := meter.Total(cost.Transfer); got != 100 {
		t.Fatalf("transfer = %v, want 100", got)
	}
}

func TestBlockCopyPipelinedCost(t *testing.T) {
	var meter cost.Meter
	m := New(32, Standard(1, 1), &meter, WithPipelinedBlocks())
	if !m.Pipelined() {
		t.Fatal("option not applied")
	}
	m.BlockCopy(2, 20, 4)
	// Pipelined: f(23) + 4 = 27.
	if got := meter.Total(cost.Transfer); got != 27 {
		t.Fatalf("pipelined transfer = %v, want 27", got)
	}
}

func TestBlockCopyZeroLength(t *testing.T) {
	m, meter := newTest(8)
	m.BlockCopy(0, 4, 0)
	if meter.Sum() != 0 {
		t.Fatal("zero-length copy charged")
	}
}

func TestBlockCopyOverlapPanics(t *testing.T) {
	m, _ := newTest(16)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping forward copy did not panic")
		}
	}()
	m.BlockCopy(5, 4, 4)
}

func TestBlockCopyBackwardOverlapAllowed(t *testing.T) {
	m, _ := newTest(16)
	for i := 0; i < 4; i++ {
		m.Poke(4+i, Word(i+10))
	}
	m.BlockCopy(3, 4, 4) // dst < src: copy() handles overlap correctly
	for i := 0; i < 4; i++ {
		if m.Peek(3+i) != Word(i+10) {
			t.Fatalf("backward overlap copy wrong at %d", i)
		}
	}
}

func TestMoveWord(t *testing.T) {
	m, meter := newTest(16)
	m.Poke(9, 5)
	m.MoveWord(1, 9)
	if m.Peek(1) != 5 {
		t.Fatal("MoveWord did not move")
	}
	if got := meter.Total(cost.Transfer); got != 10 {
		t.Fatalf("transfer = %v, want f(9)+f(1) = 10", got)
	}
}

func TestNewPanics(t *testing.T) {
	var meter cost.Meter
	for name, fn := range map[string]func(){
		"size 0":   func() { New(0, Uniform(), &meter) },
		"nil f":    func() { New(4, nil, &meter) },
		"nil mtr":  func() { New(4, Uniform(), nil) },
		"neg copy": func() { m := New(8, Uniform(), &meter); m.BlockCopy(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: the standard access function is non-decreasing and >= 1.
func TestPropertyStandardMonotone(t *testing.T) {
	f := func(d0, m0 uint8, xs []uint16) bool {
		d := int(d0%3) + 1
		m := int(m0%64) + 1
		f := Standard(d, m)
		prev := 0.0
		// Probe ascending addresses.
		x := 0
		for _, dx := range xs {
			x += int(dx % 1024)
			v := f(x)
			if v < 1 || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BlockCopy is value-equivalent to a loop of MoveWord, and the
// per-word cost model charges identically.
func TestPropertyBlockCopyEquivalence(t *testing.T) {
	f := func(seed uint8, kRaw uint8) bool {
		k := int(kRaw % 8)
		var mtr1, mtr2 cost.Meter
		a := New(64, Standard(1, 1), &mtr1)
		b := New(64, Standard(1, 1), &mtr2)
		for i := 0; i < k; i++ {
			w := Word(seed) + Word(i)*7
			a.Poke(40+i, w)
			b.Poke(40+i, w)
		}
		a.BlockCopy(8, 40, k)
		for i := 0; i < k; i++ {
			b.MoveWord(8+i, 40+i)
		}
		for i := 0; i < k; i++ {
			if a.Peek(8+i) != b.Peek(8+i) {
				return false
			}
		}
		return math.Abs(mtr1.Total(cost.Transfer)-mtr2.Total(cost.Transfer)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
