package separator

// Failure-injection tests: the executor must fail loudly — never
// fabricate operands — when the decomposition it is given violates the
// topological-partition contract or the memory allowance is wrong. These
// are the negative counterparts of Proposition 2's preconditions.

import (
	"strings"
	"testing"

	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
)

// reversedDomain wraps a domain and reverses its children order, breaking
// Definition 4 (later pieces' values are needed by earlier ones).
type reversedDomain struct {
	lattice.Domain
}

func (r reversedDomain) Children() []lattice.Domain {
	kids := r.Domain.Children()
	if kids == nil {
		return nil
	}
	out := make([]lattice.Domain, len(kids))
	for i, k := range kids {
		out[len(kids)-1-i] = reversedDomain{k}
	}
	return out
}

func TestReversedChildrenFailLoudly(t *testing.T) {
	g := dag.NewLineGraph(16, 16)
	root := reversedDomain{g.Domain()}
	space := SpaceNeeded(g, root, 8)
	var meter cost.Meter
	mach := hram.New(space, hram.Standard(1, 1), &meter)
	ex := &Executor{G: g, Prog: hashProg{}, LeafSize: 8}
	_, err := ex.Execute(mach, root)
	if err == nil {
		t.Fatal("reversed topological order executed without error")
	}
	if !strings.Contains(err.Error(), "unavailable") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// overlappingDomain duplicates its first child, so the same vertices are
// executed twice — the location map catches the second materialization's
// stale state via the staging budget or the duplicate live-outs.
type overlappingDomain struct {
	lattice.Domain
}

func (o overlappingDomain) Children() []lattice.Domain {
	kids := o.Domain.Children()
	if kids == nil {
		return nil
	}
	return append([]lattice.Domain{kids[0]}, kids...)
}

func TestOverlappingChildrenDetected(t *testing.T) {
	g := dag.NewLineGraph(8, 8)
	root := overlappingDomain{g.Domain()}
	// Space computed for the honest domain: the duplicated child must
	// blow the staging budget or produce an inconsistent result.
	space := SpaceNeeded(g, g.Domain(), 8)
	var meter cost.Meter
	mach := hram.New(space, hram.Standard(1, 1), &meter)
	ex := &Executor{G: g, Prog: hashProg{}, LeafSize: 8}
	res, err := ex.Execute(mach, root)
	if err == nil {
		// If it survives, the outputs must STILL be correct (idempotent
		// re-execution) — anything else is silent corruption.
		want := dag.Reference(g, hashProg{})
		for i := range want {
			if res.Outputs[i] != want[i] {
				t.Fatal("overlapping children corrupted outputs silently")
			}
		}
	}
}

// starvedMachine: a machine smaller than the allowance must be rejected
// up front (checked in Execute), and a machine of exactly the allowance
// must never index out of bounds (the hram would panic).
func TestExactAllowanceNeverOverflows(t *testing.T) {
	for _, n := range []int{8, 12, 16, 24} {
		g := dag.NewLineGraph(n, n)
		root := g.Domain()
		space := SpaceNeeded(g, root, 4)
		var meter cost.Meter
		mach := hram.New(space, hram.Standard(1, 1), &meter)
		ex := &Executor{G: g, Prog: hashProg{}, LeafSize: 4}
		if _, err := ex.Execute(mach, root); err != nil {
			t.Fatalf("n=%d: exact allowance failed: %v", n, err)
		}
	}
}

func TestZeroLeafSizeDefaults(t *testing.T) {
	g := dag.NewLineGraph(8, 8)
	root := g.Domain()
	var meter cost.Meter
	mach := hram.New(SpaceNeeded(g, root, 0), hram.Standard(1, 1), &meter)
	ex := &Executor{G: g, Prog: hashProg{}} // LeafSize unset
	res, err := ex.Execute(mach, root)
	if err != nil {
		t.Fatal(err)
	}
	want := dag.Reference(g, hashProg{})
	for i := range want {
		if res.Outputs[i] != want[i] {
			t.Fatal("default leaf size corrupted outputs")
		}
	}
}

// corruptProg returns wrong values on a specific vertex; the functional
// verification (not the executor) must catch it — this pins that our
// test oracle actually discriminates.
type corruptProg struct {
	hashProg
	target lattice.Point
}

func (c corruptProg) Step(v lattice.Point, ops []dag.Value) dag.Value {
	val := c.hashProg.Step(v, ops)
	if v == c.target {
		return val ^ 1
	}
	return val
}

func TestOracleDetectsSingleVertexCorruption(t *testing.T) {
	g := dag.NewLineGraph(12, 12)
	root := g.Domain()
	prog := corruptProg{target: lattice.Point{X: 5, T: 6}}
	var meter cost.Meter
	mach := hram.New(SpaceNeeded(g, root, 8), hram.Standard(1, 1), &meter)
	ex := &Executor{G: g, Prog: prog, LeafSize: 8}
	res, err := ex.Execute(mach, root)
	if err != nil {
		t.Fatal(err)
	}
	// Reference with the HONEST program: the corruption must surface.
	want := dag.Reference(g, hashProg{})
	same := true
	for i := range want {
		if res.Outputs[i] != want[i] {
			same = false
		}
	}
	if same {
		t.Fatal("single-vertex corruption did not propagate to outputs — oracle too weak")
	}
}
