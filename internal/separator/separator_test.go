package separator

import (
	"math"
	"testing"

	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/hram"
	"bsmp/internal/lattice"
)

// hashProg gives every vertex an exactly checkable value.
type hashProg struct{}

func (hashProg) Input(v lattice.Point) dag.Value {
	return dag.Value(v.X*2654435761+v.Y*97+13) | 1
}

func (hashProg) Step(v lattice.Point, ops []dag.Value) dag.Value {
	s := dag.Value(v.T) * 1099511628211
	for i, o := range ops {
		s = s*16777619 + o*dag.Value(2*i+3)
	}
	return s
}

// runLine executes an n-node, T-step line dag via the separator executor
// on an M1-style H-RAM (d = 1, density m) and returns the result + meter.
func runLine(t *testing.T, n, T, m, leaf int) (Result, *cost.Meter) {
	t.Helper()
	g := dag.NewLineGraph(n, T)
	root := g.Domain()
	space := SpaceNeeded(g, root, leaf)
	var meter cost.Meter
	mach := hram.New(space, hram.Standard(1, m), &meter)
	ex := &Executor{G: g, Prog: hashProg{}, LeafSize: leaf}
	res, err := ex.Execute(mach, root)
	if err != nil {
		t.Fatalf("Execute(n=%d,T=%d): %v", n, T, err)
	}
	return res, &meter
}

func runMesh(t *testing.T, side, T, m, leaf int) (Result, *cost.Meter) {
	t.Helper()
	g := dag.NewMeshGraph(side, T)
	root := g.Domain()
	space := SpaceNeeded(g, root, leaf)
	var meter cost.Meter
	mach := hram.New(space, hram.Standard(2, m), &meter)
	ex := &Executor{G: g, Prog: hashProg{}, LeafSize: leaf}
	res, err := ex.Execute(mach, root)
	if err != nil {
		t.Fatalf("Execute(side=%d,T=%d): %v", side, T, err)
	}
	return res, &meter
}

func TestLineOutputsMatchReference(t *testing.T) {
	for _, tc := range []struct{ n, T, leaf int }{
		{4, 4, 1}, {8, 8, 8}, {16, 16, 8}, {13, 9, 4}, {32, 32, 8}, {7, 20, 2},
	} {
		res, _ := runLine(t, tc.n, tc.T, 1, tc.leaf)
		want := dag.Reference(dag.NewLineGraph(tc.n, tc.T), hashProg{})
		for i := range want {
			if res.Outputs[i] != want[i] {
				t.Fatalf("n=%d T=%d leaf=%d: node %d: got %d, want %d",
					tc.n, tc.T, tc.leaf, i, res.Outputs[i], want[i])
			}
		}
	}
}

func TestMeshOutputsMatchReference(t *testing.T) {
	for _, tc := range []struct{ side, T, leaf int }{
		{3, 3, 8}, {4, 4, 8}, {6, 6, 8}, {5, 9, 4}, {8, 8, 16},
	} {
		res, _ := runMesh(t, tc.side, tc.T, 1, tc.leaf)
		want := dag.Reference(dag.NewMeshGraph(tc.side, tc.T), hashProg{})
		for i := range want {
			if res.Outputs[i] != want[i] {
				t.Fatalf("side=%d T=%d leaf=%d: node %d: got %d, want %d",
					tc.side, tc.T, tc.leaf, i, res.Outputs[i], want[i])
			}
		}
	}
}

func TestLeafSizeInvariance(t *testing.T) {
	// Different leaf sizes change cost constants but never outputs.
	want := dag.Reference(dag.NewLineGraph(12, 12), hashProg{})
	for _, leaf := range []int{1, 2, 4, 16, 64} {
		res, _ := runLine(t, 12, 12, 1, leaf)
		for i := range want {
			if res.Outputs[i] != want[i] {
				t.Fatalf("leaf=%d: node %d mismatch", leaf, i)
			}
		}
	}
}

func TestSpaceScalesAsSqrtForLine(t *testing.T) {
	// Prop 3 with γ = 1/2: σ(k) = O(√k), i.e. space O(n) for the n² dag.
	g16 := dag.NewLineGraph(16, 16)
	g64 := dag.NewLineGraph(64, 64)
	s16 := SpaceNeeded(g16, g16.Domain(), 8)
	s64 := SpaceNeeded(g64, g64.Domain(), 8)
	// Quadrupling n (16x the dag) should scale space ~4x, not 16x.
	ratio := float64(s64) / float64(s16)
	if ratio > 6.5 {
		t.Errorf("space ratio %v for 16x dag growth; want ~4 (σ = O(√k))", ratio)
	}
	if s64 < 64 {
		t.Errorf("space %d smaller than one row", s64)
	}
}

func TestSpaceScalesAsTwoThirdsForMesh(t *testing.T) {
	// γ = 2/3: σ(k) = O(k^(2/3)), i.e. space O(side²·...) — quadrupling the
	// side (64x the dag) scales space ~16x.
	g4 := dag.NewMeshGraph(4, 4)
	g16 := dag.NewMeshGraph(16, 16)
	s4 := SpaceNeeded(g4, g4.Domain(), 8)
	s16 := SpaceNeeded(g16, g16.Domain(), 8)
	ratio := float64(s16) / float64(s4)
	want := math.Pow(64, 2.0/3) // = 16
	if ratio > want*2 {
		t.Errorf("space ratio %v for 64x dag growth; want ~%v", ratio, want)
	}
}

func TestMaxAddrWithinSpace(t *testing.T) {
	res, _ := runLine(t, 24, 24, 1, 8)
	if res.MaxAddr >= res.Space {
		t.Fatalf("touched address %d beyond allowance %d", res.MaxAddr, res.Space)
	}
}

func TestMachineTooSmallErrors(t *testing.T) {
	g := dag.NewLineGraph(16, 16)
	var meter cost.Meter
	mach := hram.New(4, hram.Standard(1, 1), &meter)
	ex := &Executor{G: g, Prog: hashProg{}}
	if _, err := ex.Execute(mach, g.Domain()); err == nil {
		t.Fatal("undersized machine did not error")
	}
}

func TestTimeNearNSquaredLogN(t *testing.T) {
	// Theorem 2 shape: executing the n², T = n dag costs Θ(n² log n).
	// Two checks: the ratio τ/(n² log n) is drift-free across a dyadic
	// sweep, and the fitted log-log growth exponent is ~2 (up to the log
	// factor), clearly below the naive simulation's exponent 3.
	ns := []int{16, 32, 64, 128}
	var ratios, logN, logT []float64
	for _, n := range ns {
		_, meter := runLine(t, n, n, 1, 8)
		nn := float64(n)
		ratios = append(ratios, float64(meter.Now())/(nn*nn*math.Log2(nn)))
		logN = append(logN, math.Log2(nn))
		logT = append(logT, math.Log2(float64(meter.Now())))
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > ratios[i-1]*1.6 {
			t.Errorf("τ/(n² log n) drifting up: %v", ratios)
		}
	}
	slope := fitSlope(logN, logT)
	if slope < 1.7 || slope > 2.6 {
		t.Errorf("growth exponent %v, want ~2.1 (n² log n), far below naive's 3", slope)
	}
}

func TestPerLevelTransferFlat(t *testing.T) {
	// The k·log k bound decomposes as ~log k levels of O(k) transfer each
	// (Proposition 3's recurrence). The measured per-level Transfer time
	// should be within a modest band across the middle depths — neither
	// geometrically growing (which would give k^(1+ε)) nor collapsing.
	res, _ := runLine(t, 128, 128, 1, 8)
	if len(res.Levels) < 4 {
		t.Fatalf("only %d levels recorded", len(res.Levels))
	}
	// Skip the outermost and innermost level (boundary effects).
	mid := res.Levels[1 : len(res.Levels)-1]
	lo, hi := mid[0].TransferTime, mid[0].TransferTime
	for _, l := range mid {
		if l.TransferTime < lo {
			lo = l.TransferTime
		}
		if l.TransferTime > hi {
			hi = l.TransferTime
		}
	}
	if hi/lo > 6 {
		t.Errorf("per-level transfer band %.1fx across %d middle levels — not O(k) per level: %+v",
			hi/lo, len(mid), mid)
	}
	// Level structure sanity: domain counts grow ~4x per level for the
	// d = 1 quadtree.
	for i := 1; i < len(res.Levels)-1; i++ {
		if res.Levels[i].Domains < 2*res.Levels[i-1].Domains {
			t.Errorf("level %d has %d domains, want >= 2x previous %d",
				i, res.Levels[i].Domains, res.Levels[i-1].Domains)
		}
	}
}

// fitSlope returns the least-squares slope of y against x.
func fitSlope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

func TestTransferAndAccessBothCharged(t *testing.T) {
	_, meter := runLine(t, 16, 16, 1, 4)
	if meter.Total(cost.Transfer) == 0 {
		t.Error("no Transfer charges: preboundary copies not happening")
	}
	if meter.Total(cost.Access) == 0 {
		t.Error("no Access charges")
	}
	if meter.Total(cost.Compute) != 16*16 {
		t.Errorf("compute = %v, want one op per vertex = 256", meter.Total(cost.Compute))
	}
}

func TestExecuteSubdomainFailsWithoutPreboundary(t *testing.T) {
	// Executing an interior diamond without its preboundary loaded must
	// fail loudly, not silently fabricate operands.
	g := dag.NewLineGraph(16, 16)
	d := lattice.NewDiamond(10, -4, 6, lattice.ClipAll1D(16, 16))
	if d.Size() == 0 {
		t.Fatal("test domain empty")
	}
	var meter cost.Meter
	mach := hram.New(4096, hram.Standard(1, 1), &meter)
	ex := &Executor{G: g, Prog: hashProg{}}
	if _, err := ex.Execute(mach, d); err == nil {
		t.Fatal("interior domain executed without preboundary")
	}
}
