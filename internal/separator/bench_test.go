package separator

import (
	"testing"

	"bsmp/internal/cost"
	"bsmp/internal/dag"
	"bsmp/internal/hram"
)

func BenchmarkExecuteLine64(b *testing.B) {
	g := dag.NewLineGraph(64, 64)
	root := g.Domain()
	space := SpaceNeeded(g, root, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var meter cost.Meter
		mach := hram.New(space, hram.Standard(1, 1), &meter)
		ex := &Executor{G: g, Prog: hashProg{}, LeafSize: 8}
		if _, err := ex.Execute(mach, root); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpaceNeededMesh(b *testing.B) {
	g := dag.NewMeshGraph(16, 16)
	root := g.Domain()
	for i := 0; i < b.N; i++ {
		if SpaceNeeded(g, root, 8) == 0 {
			b.Fatal("zero space")
		}
	}
}

// BenchmarkExecutorAddressing measures the full address-management path
// (dense loc table, live-set scratch, override arenas) by reusing one
// Executor across iterations — the arena-warm steady state a sweep or
// experiment battery sees.
func BenchmarkExecutorAddressing(b *testing.B) {
	g := dag.NewLineGraph(64, 64)
	root := g.Domain()
	space := SpaceNeeded(g, root, 8)
	ex := &Executor{G: g, Prog: hashProg{}, LeafSize: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var meter cost.Meter
		mach := hram.New(space, hram.Standard(1, 1), &meter)
		if _, err := ex.Execute(mach, root); err != nil {
			b.Fatal(err)
		}
	}
}
